#ifndef ENTANGLED_API_SESSION_H_
#define ENTANGLED_API_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/delivery.h"
#include "system/engine.h"

namespace entangled {

/// \brief Identifier of a ClientSession within its SessionManager.
using SessionId = int64_t;

/// \brief Why a session refused a submission.  Typed so servers can map
/// rejections to protocol errors without parsing message strings.
enum class RejectReason : uint8_t {
  kNone = 0,        ///< not rejected
  kParseError,      ///< the text is not a well-formed entangled query
  kDuplicateHead,   ///< two head atoms of the query unify with each other
  kUnsafe,          ///< a postcondition unifies with >1 of the query's
                    ///< own heads (Definition 2, violated in isolation)
  kSessionClosed,   ///< the session was closed
  kInternal,        ///< the service failed for another reason
};

/// Stable lowercase name ("parse_error", "unsafe", ...).
const char* RejectReasonName(RejectReason reason);

/// \brief Typed outcome of ClientSession::Submit.
struct SubmitOutcome {
  QueryId id = -1;  ///< service-global id; valid when ok()
  RejectReason reason = RejectReason::kNone;
  std::string message;  ///< human-readable detail when rejected

  bool ok() const { return reason == RejectReason::kNone; }
  explicit operator bool() const { return ok(); }
};

/// \brief Typed outcome of ClientSession::SubmitBatch.  Admission is
/// all-or-nothing: on rejection nothing from the batch was admitted and
/// `rejected_index` names the offending text.
struct BatchOutcome {
  std::vector<QueryId> ids;  ///< in input order; valid when ok()
  RejectReason reason = RejectReason::kNone;
  std::string message;
  size_t rejected_index = 0;  ///< offending position when rejected

  bool ok() const { return reason == RejectReason::kNone; }
  explicit operator bool() const { return ok(); }
};

class SessionManager;

/// \brief One event routed to one session: a coordinating set that
/// includes at least one of the session's queries.  The Delivery is
/// shared (read-only) between every owning session; `own_queries` is
/// this session's slice of it.
struct SessionEvent {
  SessionId session = -1;
  std::shared_ptr<const Delivery> delivery;
  std::vector<QueryId> own_queries;  ///< this session's members, ascending
};

/// \brief Per-session admission policy.
struct SessionOptions {
  std::string label;  ///< display name for operators ("" = "s<id>")

  /// Reject queries that are defective in isolation *before* they reach
  /// the engine: a duplicate-head query double-books one answer slot,
  /// and a self-unsafe query (one of its own postconditions unifies
  /// with two of its own heads) poisons every component it ever joins —
  /// Definition 2 can never hold for a set containing it.  Both checks
  /// are per-query only, so they accept exactly what the engine accepts
  /// on any single-head query (in particular everything the workload
  /// generator emits); disable them to forward texts verbatim.
  bool reject_defective = true;
};

/// \brief A client's handle on the coordination service: the unit of
/// multi-tenant isolation the Youtopia module (§6.1) assumes.  All
/// traffic goes through the owning SessionManager's service; a session
/// adds ownership (you can only cancel or enumerate your own queries),
/// typed submit outcomes, and a per-session event stream.
///
/// Events can be consumed two ways:
///  * **Pull** — PollEvents() drains the buffered events.  This is the
///    front door for async servers and CLIs: polling happens outside
///    any engine call, so handlers are free to Submit/Cancel/Flush.
///  * **Push** — set_event_callback() observes each event at enqueue
///    time.  Push handlers run inside the service's delivery path and
///    must not re-enter it (same contract as
///    CoordinationService::set_delivery_callback).
/// Both observe the same stream in the same order: an event is always
/// buffered, and the push hook (when set) fires as it is buffered.
///
/// Sessions are created by SessionManager::Open and owned by the
/// manager; the manager must outlive every handle.  Like the services
/// beneath it, the session API is single-threaded.
class ClientSession {
 public:
  using EventCallback = std::function<void(const SessionEvent&)>;

  SessionId id() const { return id_; }
  const std::string& label() const { return options_.label; }
  bool open() const { return open_; }

  /// Submits one query in the paper's concrete syntax.  On success the
  /// query belongs to this session; rejection reasons are typed
  /// (RejectReason) instead of a bare status.
  ///
  /// When the underlying service admits deferred submissions
  /// (CoordinationService::AdmitsDeferred — an engine with an armed
  /// intake queue), the call validates and enqueues without waiting on
  /// any in-progress flush: the returned id is final, the query counts
  /// as pending immediately, but coordination happens at the service's
  /// next flush or read boundary rather than inside this call.
  SubmitOutcome Submit(const std::string& query_text);

  /// All-or-nothing batch submission (one Flush after the whole batch
  /// lands, exactly like CoordinationService::SubmitBatch).
  BatchOutcome SubmitBatch(const std::vector<std::string>& query_texts);

  /// Withdraws one of *this session's* pending queries.  False when the
  /// id is unknown, not pending, or owned by another session.
  bool Cancel(QueryId id);

  /// This session's pending queries, ascending.  Under deferred
  /// admission, queued-but-not-yet-drained submissions are included:
  /// "pending" means submitted and not yet delivered or cancelled,
  /// regardless of whether the service has drained its intake.
  std::vector<QueryId> PendingQueries() const;
  size_t num_pending() const { return pending_.size(); }
  /// Whether `id` is one of this session's *pending* queries (delivered
  /// and cancelled queries drop out; for lifetime ownership — which
  /// survives retirement — ask SessionManager::OwnerOf).
  bool HasPending(QueryId id) const { return pending_.count(id) > 0; }

  /// Drains the buffered events, in delivery order.
  std::vector<SessionEvent> PollEvents();
  size_t num_buffered_events() const { return events_.size(); }

  /// Optional push notification; see the class comment for the
  /// reentrancy contract.  Events already buffered are not replayed.
  void set_event_callback(EventCallback callback) {
    event_callback_ = std::move(callback);
  }

  /// Lifetime counters (for operator surfaces like the CLI `sessions`
  /// table).
  uint64_t submitted() const { return submitted_; }
  uint64_t deliveries() const { return deliveries_; }

  /// Closes the session: every pending query is bulk-cancelled, and
  /// further submissions are rejected with kSessionClosed.  Buffered
  /// events stay pollable so a disconnecting client can drain them.
  void Close();

 private:
  friend class SessionManager;
  ClientSession(SessionManager* manager, SessionId id, SessionOptions options)
      : manager_(manager), id_(id), options_(std::move(options)) {}

  SessionManager* manager_;
  SessionId id_;
  SessionOptions options_;
  bool open_ = true;
  std::unordered_set<QueryId> pending_;
  std::deque<SessionEvent> events_;
  EventCallback event_callback_;
  uint64_t submitted_ = 0;
  uint64_t deliveries_ = 0;
};

/// \brief The multi-client front door over any CoordinationService
/// (single or sharded): owns the client sessions, tracks which session
/// owns which query, and routes every Delivery to all owning sessions —
/// a coordinating set spanning sessions notifies every owner, each with
/// its own `own_queries` slice of the shared event.
///
/// The manager installs itself as the service's delivery callback on
/// construction and detaches on destruction.  While it is attached the
/// manager owns the service's traffic: submitting directly on the
/// service is unsupported (a direct query delivered *outside* any
/// session call is routed to nobody, but one delivered during a
/// session's Submit would be attributed to that session — the manager
/// cannot tell a mid-call id it has not registered yet from a foreign
/// one).
class SessionManager {
 public:
  explicit SessionManager(CoordinationService* service);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session.  The returned handle is owned by the manager and
  /// valid until the manager is destroyed (Close()d sessions keep their
  /// handle; ids are never reused).
  ClientSession* Open(SessionOptions options = {});

  /// Closes the session (bulk-cancelling its pending queries); false
  /// when the id is unknown or already closed.
  bool Close(SessionId id);

  /// The session with the given id (open or closed), or nullptr.
  ClientSession* Find(SessionId id);
  const ClientSession* Find(SessionId id) const;

  /// The session that submitted the query (still valid after the query
  /// delivered or cancelled), or -1 for queries the manager never saw.
  SessionId OwnerOf(QueryId id) const;

  /// Every session ever opened, ascending by id.
  std::vector<const ClientSession*> sessions() const;
  size_t num_sessions() const { return sessions_.size(); }
  size_t num_open_sessions() const { return num_open_; }

  // ----- service passthroughs (all sessions combined) -----
  size_t Flush() { return service_->Flush(); }
  void set_evaluate_every(size_t n) { service_->set_evaluate_every(n); }
  std::vector<QueryId> PendingQueries() const {
    return service_->PendingQueries();
  }
  size_t num_pending() const { return service_->num_pending(); }
  EngineStats StatsSnapshot() const { return service_->StatsSnapshot(); }
  CoordinationService* service() const { return service_; }

 private:
  friend class ClientSession;

  /// Service delivery hook: route the event to every owning session.
  void OnDelivery(const Delivery& delivery);

  /// Records `session` as the owner of `id` (and as pending when the
  /// service still holds it).
  void RegisterOwnership(QueryId id, ClientSession* session);

  SubmitOutcome SubmitFor(ClientSession* session,
                          const std::string& query_text);
  BatchOutcome SubmitBatchFor(ClientSession* session,
                              const std::vector<std::string>& query_texts);
  bool CancelFor(ClientSession* session, QueryId id);
  void CloseSession(ClientSession* session);

  CoordinationService* service_;
  std::vector<std::unique_ptr<ClientSession>> sessions_;  // index == id
  size_t num_open_ = 0;
  std::vector<SessionId> owner_;  // per service-global QueryId; -1 unknown
  /// Session whose Submit/SubmitBatch is currently inside the service:
  /// deliveries fired *during* that call can contain ids the manager
  /// has not registered yet (the service assigns them mid-call), and
  /// they all belong to this submitter.
  SessionId current_submitter_ = -1;
};

}  // namespace entangled

#endif  // ENTANGLED_API_SESSION_H_
