#include "graph/reachability.h"

#include <deque>

#include "common/logging.h"

namespace entangled {

std::vector<bool> ReachableFrom(const Digraph& graph, NodeId source) {
  ENTANGLED_CHECK(source >= 0 && source < graph.num_nodes());
  std::vector<bool> visited(static_cast<size_t>(graph.num_nodes()), false);
  std::deque<NodeId> queue;
  visited[static_cast<size_t>(source)] = true;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : graph.Successors(u)) {
      if (!visited[static_cast<size_t>(v)]) {
        visited[static_cast<size_t>(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return visited;
}

bool IsStronglyConnected(const Digraph& graph) {
  if (graph.num_nodes() <= 1) return true;
  std::vector<bool> forward = ReachableFrom(graph, 0);
  for (bool reachable : forward) {
    if (!reachable) return false;
  }
  std::vector<bool> backward = ReachableFrom(graph.Reversed(), 0);
  for (bool reachable : backward) {
    if (!reachable) return false;
  }
  return true;
}

namespace {

int CountSimplePathsRec(const Digraph& graph, NodeId current, NodeId target,
                        int limit, std::vector<bool>* visited) {
  if (current == target) return 1;
  int count = 0;
  for (NodeId next : graph.Successors(current)) {
    if ((*visited)[static_cast<size_t>(next)]) continue;
    (*visited)[static_cast<size_t>(next)] = true;
    count += CountSimplePathsRec(graph, next, target, limit - count,
                                 visited);
    (*visited)[static_cast<size_t>(next)] = false;
    if (count >= limit) return count;
  }
  return count;
}

}  // namespace

int CountSimplePaths(const Digraph& graph, NodeId source, NodeId target,
                     int limit) {
  ENTANGLED_CHECK(source >= 0 && source < graph.num_nodes());
  ENTANGLED_CHECK(target >= 0 && target < graph.num_nodes());
  ENTANGLED_CHECK_GT(limit, 0);
  std::vector<bool> visited(static_cast<size_t>(graph.num_nodes()), false);
  visited[static_cast<size_t>(source)] = true;
  return CountSimplePathsRec(graph, source, target, limit, &visited);
}

}  // namespace entangled
