#include "db/atom.h"

#include <sstream>

namespace entangled {

bool Atom::IsGround() const {
  for (const Term& t : terms) {
    if (t.is_variable()) return false;
  }
  return true;
}

void Atom::CollectVars(std::vector<VarId>* vars) const {
  for (const Term& t : terms) {
    if (t.is_variable()) vars->push_back(t.var());
  }
}

std::string Atom::ToString() const {
  std::ostringstream out;
  out << relation << "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out << ", ";
    out << terms[i];
  }
  out << ")";
  return out.str();
}

bool PositionwiseUnifiable(const Atom& a, const Atom& b) {
  if (a.relation != b.relation || a.arity() != b.arity()) return false;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (a.terms[i].is_constant() && b.terms[i].is_constant() &&
        a.terms[i].constant() != b.terms[i].constant()) {
      return false;
    }
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Atom& atom) {
  return os << atom.ToString();
}

std::string AtomListToString(const std::vector<Atom>& atoms,
                             const std::string& empty) {
  if (atoms.empty()) return empty;
  std::ostringstream out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out << ", ";
    out << atoms[i];
  }
  return out.str();
}

}  // namespace entangled
