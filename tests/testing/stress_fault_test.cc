// Negative coverage: the stress harness must *fail* when the engine
// under test is deliberately broken.  EngineFaultInjection::
// lose_dirty_on_cancel drops the re-evaluation marks a cancellation
// leaves behind, so the incremental engine silently misses deliveries
// the oracle makes — the harness has to report the divergence and
// shrink the stream to a reproducible prefix.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/stress_harness.h"
#include "workload/generator.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

WorkloadEvent Submit(const std::string& text) {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kSubmit;
  event.texts = {text};
  return event;
}

WorkloadEvent Cancel(size_t rank) {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kCancel;
  event.cancel_rank = rank;
  return event;
}

WorkloadEvent Flush() {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kFlush;
  return event;
}

WorkloadEvent EvalEvery(size_t n) {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kSetEvaluateEvery;
  event.evaluate_every = n;
  return event;
}

class StressFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }

  /// An unsafe triple (a's postcondition unifies with both b1's and
  /// b2's head) that only becomes deliverable once the cancellation
  /// removes one clashing head — exactly the transition the injected
  /// fault suppresses.
  std::vector<WorkloadEvent> UnsafeTripleStream() {
    return {
        EvalEvery(0),
        Submit("a: { U(B, x) } U(A, x) :- Users(x, 'user1')."),
        Submit("b1: { U(A, y) } U(B, y) :- Users(y, 'user1')."),
        Submit("b2: { U(A, z) } U(B, z) :- Users(z, 'user1')."),
        Flush(),       // unsafe: nothing delivered, component now clean
        Cancel(2),     // withdraw b2 (rank 2 of pending {0,1,2})
        Flush(),       // oracle delivers {a, b1}; faulty engine misses it
    };
  }

  Database db_;
};

TEST_F(StressFaultTest, CleanEnginePassesDirectedStream) {
  StressHarness harness;
  StressReport report = harness.VerifyEvents(db_, UnsafeTripleStream());
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.deliveries, 1u);
}

TEST_F(StressFaultTest, InjectedFaultIsCaughtAndShrunk) {
  StressOptions options;
  options.fault.lose_dirty_on_cancel = true;
  StressHarness harness(options);
  StressReport report = harness.VerifyEvents(db_, UnsafeTripleStream());
  ASSERT_FALSE(report.ok)
      << "a lost dirty mark must surface as a differential failure";
  // The divergence is a missed delivery, reported against the oracle.
  EXPECT_NE(report.failure.find("coordinating sets"), std::string::npos)
      << report.failure;
  // Shrinking produced a reproduction no larger than the input (the
  // cancel and both flushes are load-bearing, so it cannot collapse to
  // nearly nothing, but the unsafe triple itself must survive).
  EXPECT_GT(report.shrunk_events, 0u);
  EXPECT_LE(report.shrunk_events, UnsafeTripleStream().size() + 1);
  EXPECT_NE(report.reproduction.find("STRESS_REPRO"), std::string::npos);
  EXPECT_NE(report.reproduction.find("CANCEL"), std::string::npos)
      << report.reproduction;
}

TEST_F(StressFaultTest, GeneratedScenariosCatchTheFaultToo) {
  // The same fault must also be caught by purely generated workloads:
  // scan a handful of cancel-heavy seeds and require at least one
  // divergence (and that the same seeds are clean without the fault).
  GeneratorOptions gen;
  gen.topology = GraphTopology::kChain;
  gen.num_queries = 24;
  gen.cancel_rate = 0.5;
  gen.unsafe_rate = 0.4;
  gen.min_group = 3;

  StressOptions faulty;
  faulty.fault.lose_dirty_on_cancel = true;
  faulty.run_metamorphic = false;  // the base differential is the point
  StressHarness faulty_harness(faulty);
  StressHarness clean_harness;

  bool caught = false;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    gen.seed = seed;
    StressReport clean = clean_harness.RunScenario(gen);
    EXPECT_TRUE(clean.ok) << "seed " << seed
                          << " must pass without the fault: " << clean.failure;
    StressReport report = faulty_harness.RunScenario(gen);
    if (!report.ok) {
      caught = true;
      EXPECT_NE(report.reproduction.find("STRESS_REPRO"), std::string::npos);
      EXPECT_LE(report.shrunk_events, report.events + 1);
      break;
    }
  }
  EXPECT_TRUE(caught)
      << "no cancel-heavy seed in 1..12 exposed the injected fault";
}

}  // namespace
}  // namespace entangled
