#ifndef ENTANGLED_COMMON_INTERNER_H_
#define ENTANGLED_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace entangled {

/// \brief Integer handle for an interned string.  Symbols from the same
/// StringInterner compare equal iff the underlying strings are equal.
using Symbol = int32_t;

/// \brief Sentinel for "no symbol".
inline constexpr Symbol kInvalidSymbol = -1;

/// \brief A bidirectional string <-> integer map.
///
/// Strings are interned so that equality, hashing, and index probes
/// work on integers: string-valued database Values carry a Symbol into
/// the process-wide interner (GlobalValueInterner), and relation /
/// attribute names are interned for atom comparison and graph
/// construction.
///
/// Thread-safe: lookups of already-interned strings take a shared
/// lock; the exclusive lock is held only while a new string is added.
/// Returned string references are stable forever — the backing store
/// is a deque, which never moves elements, and interned strings are
/// never removed.
class StringInterner {
 public:
  StringInterner() = default;

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the symbol for `text`, interning it on first use.
  Symbol Intern(std::string_view text);

  /// Returns the symbol for `text`, or kInvalidSymbol if never interned.
  Symbol Lookup(std::string_view text) const;

  /// Returns the string for `symbol`; CHECK-fails on invalid symbols.
  /// The reference stays valid for the interner's lifetime.
  const std::string& ToString(Symbol symbol) const;

  /// Whether `symbol` names an interned string.
  bool Contains(Symbol symbol) const;

  /// Number of distinct interned strings.
  size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  // Keys are views into `strings_` elements (stable: deque never moves
  // an element, and nothing is ever erased).
  std::unordered_map<std::string_view, Symbol> index_;
  std::deque<std::string> strings_;
};

/// \brief The process-wide interner backing string-valued db::Values.
///
/// One shared namespace keeps Symbol comparison meaningful across
/// every Database, QuerySet, and thread in the process (values flow
/// freely between query sets and databases); Database::interner()
/// exposes the same instance for callers that want to pre-intern.
///
/// Interned strings are never evicted — that is what makes Value a
/// 16-byte POD with O(1) equality and stable AsString() references —
/// so process memory grows with the number of *distinct* strings ever
/// seen, not with data volume.  That suits this system's workloads
/// (handles, city names, relation constants: bounded vocabularies
/// reused across millions of rows and queries).  Feeding an unbounded
/// stream of unique strings (UUIDs, timestamps-as-text) through
/// Value::Str would grow the table monotonically; encode such data as
/// kInt values instead.
StringInterner& GlobalValueInterner();

}  // namespace entangled

#endif  // ENTANGLED_COMMON_INTERNER_H_
