#include "algo/generic_solver.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/validator.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class GenericSolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }
  Database db_;
};

TEST_F(GenericSolverTest, SolvesUnsafeFriendChoice) {
  // "Go with at least one of my friends": asker's postcondition unifies
  // with two heads — unsafe, out of scope for SccCoordinator, bread and
  // butter for the generic solver.
  QuerySet set;
  auto ids = ParseQueries(
      "asker: { R(f) } H(x)  :- Users(x, 'user0').\n"
      "a:     { }      R(ya) :- Users(ya, 'user1').\n"
      "b:     { }      R(yb) :- Users(yb, 'user2').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  GenericSolver solver(&db_);
  auto result = solver.FindContaining(set, (*ids)[0]);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());
  EXPECT_TRUE(result->Contains((*ids)[0]));
  // Exactly one friend gets pulled in.
  EXPECT_EQ(result->queries.size(), 2u);
}

TEST_F(GenericSolverTest, BacktracksOverFirstChoice) {
  // The first matching head (query a) leads to an unsatisfiable body;
  // the solver must fall back to b.
  QuerySet set;
  auto ids = ParseQueries(
      "asker: { R(f) } H(x)  :- Users(x, 'user0').\n"
      "a:     { }      R(ya) :- Users(ya, 'ghost').\n"
      "b:     { }      R(yb) :- Users(yb, 'user2').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  GenericSolver solver(&db_);
  auto result = solver.FindContaining(set, (*ids)[0]);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->Contains((*ids)[2]));
  EXPECT_FALSE(result->Contains((*ids)[1]));
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());
}

TEST_F(GenericSolverTest, PullsInTransitiveRequirements) {
  // asker -> a -> b: choosing a forces a's own postcondition, which
  // forces b.
  QuerySet set;
  auto ids = ParseQueries(
      "asker: { R(f) }  H(x)  :- Users(x, 'user0').\n"
      "a:     { S(g) }  R(ya) :- Users(ya, 'user1').\n"
      "b:     { }       S(yb) :- Users(yb, 'user2').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  GenericSolver solver(&db_);
  auto result = solver.FindContaining(set, (*ids)[0]);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries.size(), 3u);
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());
}

TEST_F(GenericSolverTest, NotFoundWhenNoHeadMatches) {
  QuerySet set;
  auto ids = ParseQueries(
      "asker: { Missing(f) } H(x) :- Users(x, 'user0').", &set);
  ASSERT_TRUE(ids.ok());
  GenericSolver solver(&db_);
  auto result = solver.FindAny(set);
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(GenericSolverTest, FindAnySkipsDoomedSeeds) {
  QuerySet set;
  auto ids = ParseQueries(
      "doomed: { Missing(f) } H(x) :- Users(x, 'user0').\n"
      "fine:   { }            K(y) :- Users(y, 'user1').",
      &set);
  ASSERT_TRUE(ids.ok());
  GenericSolver solver(&db_);
  auto result = solver.FindAny(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries, (std::vector<QueryId>{(*ids)[1]}));
}

TEST_F(GenericSolverTest, CyclicDependenciesResolve) {
  QuerySet set;
  auto ids = ParseQueries(
      "a: { R(B, x) } R(A, x) :- Users(x, 'user3').\n"
      "b: { R(A, y) } R(B, y) :- Users(y, 'user3').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  GenericSolver solver(&db_);
  auto result = solver.FindAny(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries.size(), 2u);
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());
}

TEST_F(GenericSolverTest, InvalidSeedRejected) {
  QuerySet set;
  GenericSolver solver(&db_);
  EXPECT_TRUE(
      solver.FindContaining(set, 0).status().IsInvalidArgument());
}

TEST_F(GenericSolverTest, BudgetExhaustionReported) {
  // A deliberately tiny budget trips on any instance with work to do.
  QuerySet set;
  auto ids = ParseQueries(
      "a: { R(B, x) } R(A, x) :- Users(x, 'user3').\n"
      "b: { R(A, y) } R(B, y) :- Users(y, 'user3').",
      &set);
  ASSERT_TRUE(ids.ok());
  GenericSolverOptions options;
  options.max_expansions = 1;
  GenericSolver solver(&db_, options);
  auto result = solver.FindContaining(set, 0);
  EXPECT_TRUE(result.status().IsOutOfRange());
}

TEST_F(GenericSolverTest, StatsCountWork) {
  QuerySet set;
  auto ids = ParseQueries(
      "asker: { R(f) } H(x)  :- Users(x, 'user0').\n"
      "a:     { }      R(ya) :- Users(ya, 'user1').",
      &set);
  ASSERT_TRUE(ids.ok());
  GenericSolver solver(&db_);
  ASSERT_TRUE(solver.FindAny(set).ok());
  EXPECT_GT(solver.stats().db_queries, 0u);
  EXPECT_GT(solver.stats().unifications, 0u);
}

}  // namespace
}  // namespace entangled
