#include "reductions/theorem1.h"

#include <gtest/gtest.h>

#include "algo/generic_solver.h"
#include "core/properties.h"
#include "core/validator.h"
#include "reductions/dpll.h"

namespace entangled {
namespace {

CnfFormula Parse(int num_vars, std::vector<std::vector<int>> clauses) {
  CnfFormula f;
  f.num_vars = num_vars;
  for (const auto& clause : clauses) {
    Clause c;
    for (int lit : clause) c.push_back(Literal{lit});
    f.clauses.push_back(std::move(c));
  }
  return f;
}

TEST(Theorem1Test, EncodingShape) {
  CnfFormula f = Parse(3, {{1, -2, 3}, {-1, 2, -3}});
  QuerySet set;
  Database db;
  Theorem1Encoding enc = EncodeTheorem1(f, &set, &db);

  // 1 clause-query + m val + m true + m false.
  EXPECT_EQ(set.size(), 1u + 3u * 3u);
  // The database is just D = {0, 1}: conjunctive queries over it are
  // trivially polynomial — the crisp separation of Theorem 1.
  EXPECT_EQ(db.relation_count(), 1u);
  EXPECT_EQ(db.Find("D")->size(), 2u);

  const EntangledQuery& clause_query = set.query(enc.clause_query);
  EXPECT_EQ(clause_query.postconditions.size(), 2u);  // one per clause
  EXPECT_TRUE(clause_query.body.empty());

  // x1 appears positively in C1, negatively in C2.
  const EntangledQuery& x1_true = set.query(enc.true_queries[0]);
  ASSERT_EQ(x1_true.head.size(), 1u);
  EXPECT_EQ(x1_true.head[0].relation, "C1");
  const EntangledQuery& x1_false = set.query(enc.false_queries[0]);
  ASSERT_EQ(x1_false.head.size(), 1u);
  EXPECT_EQ(x1_false.head[0].relation, "C2");

  // The instance is intentionally unsafe: clause postconditions have
  // multiple candidate heads.
  EXPECT_FALSE(IsSafeSet(set));
}

TEST(Theorem1Test, SatisfiableFormulaHasCoordinatingSet) {
  CnfFormula f = Parse(2, {{1, 2, -2}, {-1, 2, -2}});  // trivially sat
  QuerySet set;
  Database db;
  Theorem1Encoding enc = EncodeTheorem1(f, &set, &db);
  GenericSolver solver(&db);
  auto result = solver.FindContaining(set, enc.clause_query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(ValidateSolution(db, set, *result).ok());
  // The decoded assignment satisfies the formula (Appendix A).
  TruthAssignment assignment = enc.DecodeAssignment(f, *result);
  EXPECT_TRUE(Satisfies(f, assignment));
}

TEST(Theorem1Test, UnsatisfiableFormulaHasNone) {
  // The canonical unsatisfiable 3SAT core: all eight sign patterns over
  // three variables.
  std::vector<std::vector<int>> clauses;
  for (int mask = 0; mask < 8; ++mask) {
    clauses.push_back({(mask & 1) ? 1 : -1, (mask & 2) ? 2 : -2,
                       (mask & 4) ? 3 : -3});
  }
  CnfFormula f = Parse(3, clauses);
  ASSERT_FALSE(DpllSolver().Solve(f).has_value());

  QuerySet set;
  Database db;
  Theorem1Encoding enc = EncodeTheorem1(f, &set, &db);
  GenericSolver solver(&db);
  auto result = solver.FindContaining(set, enc.clause_query);
  EXPECT_TRUE(result.status().IsNotFound()) << result.status();
}

TEST(Theorem1Test, NonemptyCoordinatingSetsAllContainClauseQuery) {
  // Any coordinating set must contain the Clause-Query (Appendix A):
  // check by asking the generic solver for a set around a val-query.
  CnfFormula g = Parse(3, {{1, 2, 3}});
  QuerySet set;
  Database db;
  Theorem1Encoding enc = EncodeTheorem1(g, &set, &db);
  GenericSolver solver(&db);
  auto result = solver.FindContaining(set, enc.val_queries[0]);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->Contains(enc.clause_query));
  EXPECT_TRUE(ValidateSolution(db, set, *result).ok());
}

TEST(Theorem1Test, TrueAndFalseQueriesAreMutuallyExclusive) {
  CnfFormula f = Parse(2, {{1, 2, -1}});
  QuerySet set;
  Database db;
  Theorem1Encoding enc = EncodeTheorem1(f, &set, &db);
  GenericSolver solver(&db);
  auto result = solver.FindContaining(set, enc.clause_query);
  ASSERT_TRUE(result.ok()) << result.status();
  for (int v = 0; v < 2; ++v) {
    bool has_true = result->Contains(enc.true_queries[v]);
    bool has_false = result->Contains(enc.false_queries[v]);
    EXPECT_FALSE(has_true && has_false)
        << "x" << (v + 1) << " chosen both true and false";
  }
}

}  // namespace
}  // namespace entangled
