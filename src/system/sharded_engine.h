#ifndef ENTANGLED_SYSTEM_SHARDED_ENGINE_H_
#define ENTANGLED_SYSTEM_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "system/engine.h"
#include "system/relation_router.h"

namespace entangled {

/// \brief Options for ShardedCoordinationEngine.
struct ShardedEngineOptions {
  /// Configuration of the inner per-shard engines, except that
  /// `engine.evaluate_every` is interpreted as the *front door's*
  /// cadence (counted across all shards, exactly like a single engine
  /// counts it across all arrivals); the inner engines always run with
  /// automatic evaluation disabled and are driven explicitly.
  EngineOptions engine;

  /// Worker threads for Flush(): independent shards flush concurrently
  /// (1 = flush shards serially on the calling thread).  Outputs do not
  /// depend on this count — deliveries are applied in deterministic
  /// merged order.
  size_t shard_threads = 1;

  /// Retire a shard (and dissolve its relation group back into
  /// singleton groups) as soon as its last pending query is delivered
  /// or cancelled, so relations re-bridge along the footprints future
  /// traffic actually exhibits instead of accreting forever.
  bool gc_empty_shards = true;

  /// Merge policy fallback: rebuild the union of merging shards into a
  /// fresh engine (the historical behaviour) instead of migrating the
  /// smaller sides into the largest survivor.  Outputs are
  /// byte-identical either way — schedule keys make the solver
  /// order-independent of shard-local ids — but the rebuild does
  /// O(union) work and dooms the survivor's memoized component state,
  /// so this exists only as the differential/bench baseline.
  bool rebuild_merges = false;
};

/// \brief Counters specific to the sharded service.
struct ShardedStats {
  uint64_t shards_created = 0;    ///< inner engines ever constructed
  uint64_t shards_absorbed = 0;   ///< shards drained into a merge
  uint64_t shards_gced = 0;       ///< empty shards retired
  uint64_t group_merges = 0;      ///< footprints that united >1 shard
  /// Pending queries a merge physically moved between engines.  Under
  /// the small-into-large policy only the non-survivor sides count —
  /// the survivor's queries stay put and count as retained below.
  uint64_t queries_migrated = 0;
  uint64_t queries_retained = 0;    ///< survivor-side queries left in place
  uint64_t merge_events = 0;        ///< shard-merge operations performed
  uint64_t merge_migrated_max = 0;  ///< most queries any one merge moved
};

/// \brief The multi-tenant front door: a CoordinationService that
/// routes every arriving query to one of many inner CoordinationEngines
/// by its **relation footprint** (RelationRouter) and keeps the whole
/// ensemble byte-compatible with a single engine over the union.
///
/// The sharding invariant: a coordination edge requires a postcondition
/// and a head naming the same answer relation, so queries whose
/// footprints fall in disjoint relation groups can never coordinate —
/// one inner engine per live relation group partitions the pending set
/// with no lost deliveries.  Submit/SubmitBatch/Cancel route in
/// O(footprint · α); Flush() fans independent shards out on a shared
/// thread pool.
///
/// When an arrival's footprint spans k > 1 groups, the groups merge and
/// only the *smaller* shards' pending queries **migrate** into the
/// largest survivor (CoordinationEngine::ExtractPending plus one bulk
/// AdoptPending per source) — O(smaller side) per merge, not O(union).
/// Every query carries its global id as an explicit **schedule key**,
/// and the inner engines order all solver input, apply-heap, and
/// delivery-key decisions on keys rather than shard-local ids; the
/// survivor's local-id order therefore no longer needs to stay monotone
/// in global order, its translation tables and memoized component state
/// survive the merge untouched, and the solver's discovery-order
/// tie-breaks still see members in exact global submission order.
///
/// Determinism contract (enforced by the stress harness): for any event
/// stream, the delivery log, witnesses, and pending set are
/// byte-identical to a single CoordinationEngine, at any shard-pool
/// width.  Cross-shard delivery order is reconstructed by merging the
/// shards' delivery streams on the component schedule key
/// (CoordinationEngine::last_delivery_schedule_key), i.e.
/// merge-by-smallest-global-id.
///
/// The public API is single-threaded, like CoordinationEngine's; the
/// global↔shard translation tables (query ids and witness variables)
/// are maintained on the calling thread, and callbacks always fire on
/// the calling thread with global ids.
class ShardedCoordinationEngine : public CoordinationService {
 public:
  ShardedCoordinationEngine(const Database* db,
                            ShardedEngineOptions options = {});

  /// Callbacks must not re-enter the front door (same contract as
  /// CoordinationEngine::set_delivery_callback); delivered ids and
  /// witness variables are global, and the Delivery is fully owned —
  /// it survives any later Cancel/Flush/shard migration.
  void set_delivery_callback(DeliveryCallback callback) override {
    callback_ = std::move(callback);
  }

  void set_evaluate_every(size_t evaluate_every) override {
    options_.engine.evaluate_every = evaluate_every;
  }

  /// Recovery hook: pins the front door's per-arrival phase (no intake
  /// to drain here — admission is always inline at the front door).
  void RestoreCadencePhase(size_t phase) override { since_last_eval_ = phase; }

  Result<QueryId> Submit(const std::string& query_text) override;
  Result<std::vector<QueryId>> SubmitBatch(
      const std::vector<std::string>& query_texts) override;
  bool Cancel(QueryId id) override;
  size_t Flush() override;

  std::vector<QueryId> PendingQueries() const override;
  bool IsPending(QueryId id) const override;
  size_t num_pending() const override { return num_pending_; }
  std::vector<QueryId> ComponentOf(QueryId id) const override;

  /// Aggregate across the front door, every live shard, and every
  /// retired shard (EngineStats::operator+=): one snapshot a single
  /// engine over the same stream would agree with on the fields the
  /// delivery log determines.
  EngineStats StatsSnapshot() const override;

  /// Load gauges with one row per live shard (slot, pending,
  /// evaluations) plus the global merge/migration counters.  Passive —
  /// inner engines run inline intake (depth 0) and nothing drains.
  ServiceGauges GaugesSnapshot() const override;

  /// Global master query set (ids and variables as the callbacks and
  /// witnesses report them).
  const QuerySet& queries() const { return all_; }

  // ------------------------------------------------------------------
  // Introspection (tests, benches, operators)
  // ------------------------------------------------------------------

  const ShardedStats& sharded_stats() const { return sharded_stats_; }
  const RelationRouter& router() const { return router_; }

  /// Live inner engines right now.
  size_t num_live_shards() const { return num_live_shards_; }

  /// Whether two pending queries are currently routed to the same
  /// shard (component-mates always are; the converse need not hold).
  bool SameShard(QueryId a, QueryId b) const;

 private:
  /// Where a pending query lives: shard slot + shard-local id.
  struct Locator {
    size_t shard = 0;
    QueryId local = -1;
  };

  /// One delivery buffered during a shard flush, already translated to
  /// global ids/variables, keyed for the cross-shard merge.
  struct BufferedDelivery {
    QueryId key = -1;  ///< global schedule key (component smallest id)
    CoordinationSolution solution;
  };

  struct Shard {
    std::unique_ptr<CoordinationEngine> engine;  ///< null once retired
    RelationId group_root = -1;
    /// Local id -> global id.  Appended in adoption order — NOT
    /// globally sorted once a merge lands migrated queries: ordering
    /// correctness rides on schedule keys (== global ids), never on
    /// this table's monotonicity.
    std::vector<QueryId> local_to_global;
    std::vector<VarId> lvar_to_gvar;       ///< local var -> global var
    /// Filled by this shard's delivery callback (on whichever thread
    /// flushes the shard — each shard is flushed by exactly one
    /// thread), drained and merged on the calling thread.
    std::vector<BufferedDelivery> deliveries;
  };

  void CheckNotReentrant(const char* entry_point) const;

  /// Routes the freshly parsed global query `gid`: computes its
  /// footprint, unites the touched relation groups (merging shards when
  /// the footprint bridges several), adopts the query into the owning
  /// shard, and registers the global bookkeeping.  No evaluation.
  void RouteAndAdmit(QueryId gid);

  /// Fresh inner engine wired to this front door; returns its slot.
  size_t CreateShard();

  /// Merges the given live slots small-into-large: the slot with the
  /// most pending queries (ties -> smallest slot) survives with its
  /// engine, tables, and memoized component state intact, and every
  /// other slot's extract is adopted into it with one bulk AdoptPending
  /// call per source — O(sum of smaller sides) total.  Returns the
  /// surviving slot.  With options_.rebuild_merges the historical
  /// rebuild-into-a-fresh-engine shape runs instead (still bulk-adopted
  /// per source).
  size_t MergeShards(const std::vector<size_t>& slots);

  /// The rebuild_merges fallback body.
  size_t MergeShardsRebuild(const std::vector<size_t>& slots);

  /// Adopts one source extract into `into_slot`'s engine (single bulk
  /// AdoptPending) and rewires the id/variable translations and
  /// locators; `from_slot` names the source shard whose tables map the
  /// extract back to global space.  Returns the number of queries
  /// moved.
  uint64_t AdoptExtractIntoShard(
      size_t into_slot, size_t from_slot,
      const CoordinationEngine::PendingExtract& extract);

  /// Copies global query `gid` into `slot`'s engine and records the
  /// id/variable translations.
  void AdoptIntoShard(size_t slot, QueryId gid);

  /// Folds the shard's stats into the retired accumulator and destroys
  /// its engine.
  void RetireShard(size_t slot, bool absorbed);

  /// Shard-callback target: translate and buffer one delivery.
  void OnShardDelivery(size_t slot, const CoordinationSolution& solution);

  /// Merges the named slots' buffered deliveries by schedule key,
  /// updates the global pending set, and fires the outer callback per
  /// delivery.  Returns the number of deliveries.
  size_t DrainDeliveries(const std::vector<size_t>& slots);

  /// Retires any of the named slots that drained to zero pending
  /// queries, dissolving their relation groups (no-op unless
  /// options_.gc_empty_shards).
  void MaybeGcShards(const std::vector<size_t>& slots);

  const Database* db_;
  ShardedEngineOptions options_;

  QuerySet all_;               // global mirror: ids/vars match a single engine
  std::vector<bool> pending_;  // per global id
  size_t num_pending_ = 0;
  std::vector<Locator> locators_;  // per global id; valid while pending
  size_t since_last_eval_ = 0;

  RelationRouter router_;
  std::unordered_map<RelationId, size_t> group_shard_;  // group root -> slot
  std::vector<Shard> shards_;
  std::vector<size_t> free_slots_;  ///< retired slots awaiting reuse
  size_t num_live_shards_ = 0;
  /// Slots possibly holding dirty components (touched since their last
  /// flush); Flush() visits only these instead of every slot ever made.
  std::unordered_set<size_t> flush_candidates_;

  DeliveryCallback callback_;
  bool in_callback_ = false;
  uint64_t next_delivery_sequence_ = 0;
  EngineStats front_stats_;    // submitted is counted here, once, globally
  EngineStats retired_stats_;  // folded-in stats of destroyed shards
  ShardedStats sharded_stats_;
  std::unique_ptr<ThreadPool> pool_;  // lazily created by Flush()
};

}  // namespace entangled

#endif  // ENTANGLED_SYSTEM_SHARDED_ENGINE_H_
