#ifndef ENTANGLED_REDUCTIONS_APPENDIX_B_H_
#define ENTANGLED_REDUCTIONS_APPENDIX_B_H_

#include <vector>

#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"
#include "reductions/cnf.h"

namespace entangled {

/// \brief The Appendix-B construction: relaxing §5's "everyone
/// coordinates on the same attributes" brings NP-hardness back.  Some
/// queries coordinate on the flight date only, others on (date, flight);
/// 3SAT embeds via a circular dependency through a selection gadget.
///
/// Database: Fl(flight, date) with one flight on '1MAR' and one on
/// '2MAR'; Fr(clause, literal) lists which literal queries can satisfy
/// each clause.
///
///   qC  : {R(y1,C1),...,R(yk,Ck)} R(x,C)    :- Fl(x,1MAR), ⋀i Fl(yi,1MAR)
///   qCj : {R(y,f)}               R(x,Cj)    :- Fr(Cj,f), Fl(x,1MAR), Fl(y,d)
///   qXi : {R(y,Si)}              R(x,Xi)    :- Fl(x,1MAR), Fl(y,1MAR)
///   qXi*: {R(y,Si)}              R(x,Xi*)   :- Fl(x,2MAR), Fl(y,2MAR)
///   Si  : {R(y,C)}               R(x,Si)    :- Fl(x,d), Fl(y,d')
///
/// The Si gadget's single head forces at most one of {qXi, qXi*} into
/// any coordinating set (their bodies pin Si's flight to different
/// dates), encoding the truth value of xi.  The formula is satisfiable
/// iff a coordinating set exists.
struct AppendixBEncoding {
  QueryId qc;
  std::vector<QueryId> clause_queries;    ///< qCj, per clause
  std::vector<QueryId> positive_queries;  ///< qXi, per variable
  std::vector<QueryId> negative_queries;  ///< qXi*, per variable
  std::vector<QueryId> selector_queries;  ///< Si, per variable

  /// Variable i is true iff its positive-literal query participates.
  TruthAssignment DecodeAssignment(const CnfFormula& formula,
                                   const CoordinationSolution& sol) const;
};

/// \brief Builds the Appendix-B instance into `*set` / `*db` (relations
/// "Fl" and "Fr").
AppendixBEncoding EncodeAppendixB(const CnfFormula& formula, QuerySet* set,
                                  Database* db);

}  // namespace entangled

#endif  // ENTANGLED_REDUCTIONS_APPENDIX_B_H_
