#ifndef ENTANGLED_COMMON_ATOMIC_COUNTER_H_
#define ENTANGLED_COMMON_ATOMIC_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace entangled {

/// \brief A copyable uint64 counter with relaxed-atomic increments.
///
/// Stat structs (DatabaseStats in particular) are bumped from const
/// query-evaluation paths that may run on several worker threads at once
/// — the engine's parallel Flush() and ConsistentCoordinator's per-value
/// cleaning loop both evaluate against one shared read-only Database.
/// The counters are monotone tallies with no cross-counter invariants,
/// so relaxed ordering suffices; the type mimics a plain uint64_t
/// (implicit conversion, ++, +=, =) to keep call sites unchanged.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t value = 0) : value_(value) {}  // NOLINT: implicit

  RelaxedCounter(const RelaxedCounter& other) : value_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    store(other.load());
    return *this;
  }
  RelaxedCounter& operator=(uint64_t value) {
    store(value);
    return *this;
  }

  uint64_t load() const { return value_.load(std::memory_order_relaxed); }
  void store(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

  uint64_t operator++() {
    return value_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  uint64_t operator++(int) {
    return value_.fetch_add(1, std::memory_order_relaxed);
  }
  RelaxedCounter& operator+=(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

  /// Reads as a plain integer anywhere one is expected.
  operator uint64_t() const { return load(); }  // NOLINT: implicit

 private:
  std::atomic<uint64_t> value_;
};

}  // namespace entangled

#endif  // ENTANGLED_COMMON_ATOMIC_COUNTER_H_
