// Fault-injection recovery tests (storage/durable_service.h): a real
// recorded scenario is damaged on disk — bit-flipped WAL frames, torn
// tails, deleted or corrupted snapshots, missing segments — and every
// injection must be *detected and typed* in the RecoveryReport while
// recovery still lands on the newest consistent point.  Nothing here
// may crash, and nothing may silently skip damage.

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/value.h"
#include "storage/durable_service.h"
#include "storage/snapshot.h"
#include "system/engine.h"

namespace entangled {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/entangled_fault_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made;
  }
  ~TempDir() {
    DIR* dir = opendir(path_.c_str());
    if (dir != nullptr) {
      while (dirent* entry = readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void FillFacts(Database* db) {
  Relation* flights = *db->CreateRelation("Flights", {"flightId", "dest"});
  flights->Insert({Value::Int(101), Value::Str("Zurich")});
  flights->Insert({Value::Int(102), Value::Str("Zurich")});
}

/// Records the scenario every fault test damages:
///
///   wal-0:  p0+p1 (coordinate, delivery #0), s0 (stuck)
///   snapshot-1 via SnapshotNow()  — pending {2}, watermark 1
///   wal-1:  batch {p2, p3} (delivery #1), s1 (stuck)
///   crash (plain destruction, no shutdown)
///
/// Durable ids: p0=0 p1=1 s0=2 p2=3 p3=4 s1=5; final pending {2, 5}.
void RecordScenario(const std::string& dir) {
  Database db;
  FillFacts(&db);
  EngineOptions engine_options;
  engine_options.incremental = true;
  engine_options.evaluate_every = 1;
  CoordinationEngine inner(&db, engine_options);
  DurabilityOptions durability;
  durability.dir = dir;
  durability.fsync = FsyncPolicy::kNone;
  durability.initial_evaluate_every = 1;
  auto durable = DurableCoordinationService::Create(&inner, &db, durability);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  size_t deliveries = 0;
  (*durable)->set_delivery_callback(
      [&deliveries](const Delivery&) { ++deliveries; });

  ASSERT_TRUE(
      (*durable)
          ->Submit("p0: { R(B, x) } R(A, x) :- Flights(x, Zurich).")
          .ok());
  ASSERT_TRUE(
      (*durable)->Submit("p1: { } R(B, y) :- Flights(y, Zurich).").ok());
  ASSERT_TRUE(
      (*durable)
          ->Submit("s0: { R(Ghost, z) } R(S0, z) :- Flights(z, Zurich).")
          .ok());
  ASSERT_TRUE((*durable)->SnapshotNow().ok());
  ASSERT_TRUE((*durable)
                  ->SubmitBatch(
                      {"p2: { R(D, u) } R(C, u) :- Flights(u, Zurich).",
                       "p3: { } R(D, v) :- Flights(v, Zurich)."})
                  .ok());
  ASSERT_TRUE(
      (*durable)
          ->Submit("s1: { R(Ghost, w) } R(S1, w) :- Flights(w, Zurich).")
          .ok());
  ASSERT_EQ(deliveries, 2u);
  ASSERT_EQ((*durable)->num_pending(), 2u);
  // Scope exit = crash: destructors only, no rotation, no shutdown.
}

/// Recovers the directory and returns the rehydrated service; the
/// caller inspects the report and pending set.  Any *load* failure is
/// surfaced via `state_error` instead (service stays null).
struct Recovered {
  Database db;
  std::unique_ptr<CoordinationEngine> inner;
  std::unique_ptr<DurableCoordinationService> durable;
  size_t forwarded = 0;  ///< deliveries downstream saw during recovery
  Status state_error = Status::OK();
};

void Rehydrate(const std::string& dir, Recovered* out) {
  auto state = ReadDurableState(dir);
  if (!state.ok()) {
    out->state_error = state.status();
    return;
  }
  ASSERT_TRUE(BuildDatabaseFromSnapshot(state->snapshot, &out->db).ok());
  EngineOptions engine_options;
  engine_options.incremental = true;
  engine_options.evaluate_every = 1;
  out->inner = std::make_unique<CoordinationEngine>(&out->db, engine_options);
  DurabilityOptions durability;
  durability.dir = dir;
  durability.fsync = FsyncPolicy::kNone;
  durability.initial_evaluate_every = 1;
  auto durable =
      DurableCoordinationService::Create(out->inner.get(), &out->db,
                                         durability);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  out->durable = std::move(*durable);
  out->durable->set_delivery_callback(
      [out](const Delivery&) { ++out->forwarded; });
  Status recovered = out->durable->Recover(std::move(*state),
                                           /*sessions=*/nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
}

void FlipByte(const std::string& path, uint64_t offset, uint8_t mask) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  ASSERT_TRUE(f.good()) << path << " too short for offset " << offset;
  byte = static_cast<char>(byte ^ mask);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

uint64_t FileSize(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.good()) << path;
  return static_cast<uint64_t>(f.tellg());
}

TEST(RecoveryFaultTest, CleanRecoveryBaseline) {
  TempDir dir;
  RecordScenario(dir.path());
  Recovered r;
  Rehydrate(dir.path(), &r);
  ASSERT_NE(r.durable, nullptr);
  const RecoveryReport& report = r.durable->recovery_report();
  EXPECT_TRUE(report.used_snapshot);
  EXPECT_EQ(report.snapshot_epoch, 1u);
  EXPECT_EQ(report.snapshots_skipped, 0u);
  EXPECT_GT(report.replayed_events, 0u);
  EXPECT_EQ(report.recovered_pending, 1u);  // s0 rode the snapshot
  EXPECT_FALSE(report.torn_tail);
  EXPECT_FALSE(report.corruption_detected);
  EXPECT_EQ(report.anomalies, 0u);
  // The p2/p3 delivery was re-derived below the watermark: suppressed,
  // never re-forwarded to the (new) downstream.
  EXPECT_EQ(report.suppressed_deliveries, 1u);
  EXPECT_EQ(r.forwarded, 0u);
  EXPECT_EQ(report.resumed_sequence, 2u);
  EXPECT_EQ(r.durable->PendingQueries(), (std::vector<QueryId>{2, 5}));
}

TEST(RecoveryFaultTest, TornWalTailIsTruncatedAndReported) {
  TempDir dir;
  RecordScenario(dir.path());
  // Chop the live segment mid-record: s1's submit becomes a torn tail.
  const std::string wal1 = WalPath(dir.path(), 1);
  ASSERT_EQ(::truncate(wal1.c_str(),
                       static_cast<off_t>(FileSize(wal1) - 3)),
            0);
  Recovered r;
  Rehydrate(dir.path(), &r);
  ASSERT_NE(r.durable, nullptr);
  const RecoveryReport& report = r.durable->recovery_report();
  EXPECT_TRUE(report.torn_tail);
  EXPECT_GT(report.truncated_bytes, 0u);
  EXPECT_FALSE(report.corruption_detected);
  EXPECT_EQ(report.anomalies, 0u);
  // s1 was inside the torn record: gone; everything before it holds.
  EXPECT_EQ(r.durable->PendingQueries(), std::vector<QueryId>{2});
  // The service is live again: the next submission takes s1's id.
  auto id = r.durable->Submit(
      "s1b: { R(Ghost, w) } R(S1, w) :- Flights(w, Zurich).");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 5);
}

TEST(RecoveryFaultTest, BitFlippedWalFrameIsCorruptionNotATail) {
  TempDir dir;
  RecordScenario(dir.path());
  // Flip one payload bit of the *first* frame in wal-1 (the batch): a
  // non-final frame failing its CRC is corruption; the records beyond
  // it are unrecoverable and the report must say so.
  FlipByte(WalPath(dir.path(), 1), 20 + 8 + 4, 0x08);
  Recovered r;
  Rehydrate(dir.path(), &r);
  ASSERT_NE(r.durable, nullptr);
  const RecoveryReport& report = r.durable->recovery_report();
  EXPECT_TRUE(report.corruption_detected);
  EXPECT_FALSE(report.corruption_detail.empty());
  // Only the snapshot's state survived: the whole wal-1 tail is lost.
  EXPECT_EQ(r.durable->PendingQueries(), std::vector<QueryId>{2});
  EXPECT_EQ(r.forwarded, 0u);
}

TEST(RecoveryFaultTest, DeletedNewestSnapshotFallsBackToGenesis) {
  TempDir dir;
  RecordScenario(dir.path());
  ASSERT_EQ(::unlink(SnapshotPath(dir.path(), 1).c_str()), 0);
  Recovered r;
  Rehydrate(dir.path(), &r);
  ASSERT_NE(r.durable, nullptr);
  const RecoveryReport& report = r.durable->recovery_report();
  EXPECT_TRUE(report.used_snapshot);
  EXPECT_EQ(report.snapshot_epoch, 0u);  // the genesis snapshot
  EXPECT_EQ(report.segments_scanned, 2u);
  EXPECT_FALSE(report.corruption_detected);
  EXPECT_EQ(report.anomalies, 0u);
  // The full-log replay rebuilds the exact same state the newer
  // snapshot would have seeded: both stuck queries pending, both
  // pre-crash deliveries re-derived and suppressed.
  EXPECT_EQ(report.suppressed_deliveries, 2u);
  EXPECT_EQ(r.forwarded, 0u);
  EXPECT_EQ(r.durable->PendingQueries(), (std::vector<QueryId>{2, 5}));
  EXPECT_EQ(report.resumed_sequence, 2u);
}

TEST(RecoveryFaultTest, CorruptNewestSnapshotIsSkippedWithACount) {
  TempDir dir;
  RecordScenario(dir.path());
  FlipByte(SnapshotPath(dir.path(), 1), 40, 0x20);
  Recovered r;
  Rehydrate(dir.path(), &r);
  ASSERT_NE(r.durable, nullptr);
  const RecoveryReport& report = r.durable->recovery_report();
  EXPECT_EQ(report.snapshots_skipped, 1u);
  EXPECT_EQ(report.snapshot_epoch, 0u);
  EXPECT_EQ(r.durable->PendingQueries(), (std::vector<QueryId>{2, 5}));
}

TEST(RecoveryFaultTest, MissingWalSegmentIsAGapNotASkip) {
  TempDir dir;
  RecordScenario(dir.path());
  // Force the genesis fallback *and* remove wal-0: the segment chain
  // from the chosen snapshot has a hole, which is corruption — replay
  // must stop at the last consistent point (the snapshot itself), not
  // leap over the gap into wal-1.
  ASSERT_EQ(::unlink(SnapshotPath(dir.path(), 1).c_str()), 0);
  ASSERT_EQ(::unlink(WalPath(dir.path(), 0).c_str()), 0);
  Recovered r;
  Rehydrate(dir.path(), &r);
  ASSERT_NE(r.durable, nullptr);
  const RecoveryReport& report = r.durable->recovery_report();
  EXPECT_TRUE(report.corruption_detected);
  EXPECT_FALSE(report.corruption_detail.empty());
  EXPECT_EQ(report.replayed_events, 0u);
  EXPECT_TRUE(r.durable->PendingQueries().empty());
}

TEST(RecoveryFaultTest, NoLoadableSnapshotIsATypedErrorNotACrash) {
  TempDir dir;
  RecordScenario(dir.path());
  ASSERT_EQ(::unlink(SnapshotPath(dir.path(), 0).c_str()), 0);
  ASSERT_EQ(::unlink(SnapshotPath(dir.path(), 1).c_str()), 0);
  Recovered r;
  Rehydrate(dir.path(), &r);
  EXPECT_EQ(r.durable, nullptr);
  EXPECT_FALSE(r.state_error.ok());
  EXPECT_FALSE(r.state_error.message().empty());
}

TEST(RecoveryFaultTest, EmptyDirectoryIsATypedError) {
  TempDir dir;
  auto state = ReadDurableState(dir.path());
  EXPECT_FALSE(state.ok());
}

TEST(RecoveryFaultTest, RecoveredServiceRotatesAwayFromTheDamage) {
  // After recovering past a torn tail, the end-of-recovery rotation
  // must leave the directory in a state a *second* recovery reads
  // without seeing any damage (the report of run 2 is clean).
  TempDir dir;
  RecordScenario(dir.path());
  const std::string wal1 = WalPath(dir.path(), 1);
  ASSERT_EQ(::truncate(wal1.c_str(),
                       static_cast<off_t>(FileSize(wal1) - 3)),
            0);
  {
    Recovered first;
    Rehydrate(dir.path(), &first);
    ASSERT_NE(first.durable, nullptr);
    EXPECT_TRUE(first.durable->recovery_report().torn_tail);
  }
  Recovered second;
  Rehydrate(dir.path(), &second);
  ASSERT_NE(second.durable, nullptr);
  const RecoveryReport& report = second.durable->recovery_report();
  EXPECT_FALSE(report.torn_tail);
  EXPECT_FALSE(report.corruption_detected);
  EXPECT_EQ(second.durable->PendingQueries(), std::vector<QueryId>{2});
}

}  // namespace
}  // namespace entangled
