// Session front-door admission overhead: submissions/sec through a
// SessionManager with the production-hardening gates disarmed versus
// armed (per-session pending quota + overload shedding), on a seeded
// generator workload replayed round-robin across 4 sessions.
//
// The armed run is NOT an apples-to-apples throughput comparison — a
// quota's whole point is that some submissions bounce (cheaply, before
// any engine work) — so the series reports both the wall time and the
// bounce count.  What the bench gates informally is the *disarmed*
// overhead: with every limit at 0 the admission gate is a handful of
// integer compares, so quotas-off session throughput should track the
// pre-quota session layer.  The final record times Metrics() snapshots,
// which operators poll continuously.

#include <cstddef>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench_util.h"
#include "common/logging.h"
#include "system/engine.h"
#include "workload/generator.h"

namespace entangled {
namespace {

constexpr size_t kNumQueries = 1200;
constexpr size_t kSessions = 4;
constexpr size_t kQuotaMaxPending = 8;
constexpr int kReps = 3;

struct ReplayResult {
  size_t accepted = 0;
  size_t bounced = 0;
};

/// Replays the generated stream through quota-armed (or disarmed)
/// sessions; only quota bounces are tolerated.
ReplayResult ReplayOnce(const Database& db,
                        const std::vector<WorkloadEvent>& events,
                        const SessionOptions& session_options,
                        const ManagerOptions& manager_options) {
  ReplayResult result;
  EngineOptions engine_options;
  engine_options.evaluate_every = 0;  // admission cost, not solver cost
  CoordinationEngine engine(&db, engine_options);
  SessionManager manager(&engine, manager_options);
  std::vector<ClientSession*> sessions;
  for (size_t i = 0; i < kSessions; ++i) {
    sessions.push_back(manager.Open(session_options));
  }
  size_t next = 0;
  for (const WorkloadEvent& event : events) {
    switch (event.kind) {
      case WorkloadEvent::Kind::kSubmit: {
        SubmitOutcome outcome =
            sessions[next++ % kSessions]->Submit(event.texts.front());
        if (outcome.ok()) {
          ++result.accepted;
        } else {
          ENTANGLED_CHECK(outcome.reason == RejectReason::kQuotaPending ||
                          outcome.reason == RejectReason::kOverloaded)
              << outcome.message;
          ++result.bounced;
        }
        break;
      }
      case WorkloadEvent::Kind::kSubmitBatch: {
        BatchOutcome outcome =
            sessions[next++ % kSessions]->SubmitBatch(event.texts);
        if (outcome.ok()) {
          result.accepted += event.texts.size();
        } else {
          ENTANGLED_CHECK(outcome.reason == RejectReason::kQuotaPending ||
                          outcome.reason == RejectReason::kOverloaded)
              << outcome.message;
          result.bounced += event.texts.size();
        }
        break;
      }
      case WorkloadEvent::Kind::kCancel: {
        const std::vector<QueryId> pending = manager.PendingQueries();
        if (pending.empty()) break;
        const QueryId gid = pending[event.cancel_rank % pending.size()];
        const SessionId owner = manager.OwnerOf(gid);
        if (owner >= 0) manager.Find(owner)->Cancel(gid);
        break;
      }
      case WorkloadEvent::Kind::kSetEvaluateEvery:
        // Cadence toggles would reintroduce solver cost; skip.
        break;
      case WorkloadEvent::Kind::kFlush:
        break;
    }
  }
  for (ClientSession* session : sessions) session->PollEvents();
  return result;
}

}  // namespace
}  // namespace entangled

int main() {
  using namespace entangled;

  GeneratorOptions gen;
  gen.seed = 11;
  gen.num_queries = kNumQueries;
  WorkloadGenerator generator(gen);
  Database db;
  ENTANGLED_CHECK(generator.BuildDatabase(&db).ok());
  const GeneratedWorkload workload = generator.Generate();
  size_t total_texts = 0;
  for (const WorkloadEvent& event : workload.events) {
    total_texts += event.texts.size();
  }

  benchutil::PrintSeriesHeader(
      "Session admission: quotas disarmed vs armed",
      {"variant", "time_ms", "submits_per_sec", "accepted", "bounced"});

  const SessionOptions off;
  const ManagerOptions none;
  ReplayResult off_result;
  const double off_ms = benchutil::MeanMillis(
      kReps, [&] { off_result = ReplayOnce(db, workload.events, off, none); });
  std::printf("off,%.3f,%.0f,%zu,%zu\n", off_ms,
              1000.0 * static_cast<double>(total_texts) / off_ms,
              off_result.accepted, off_result.bounced);
  benchutil::PrintJsonRecord(
      "session_quota_off",
      {{"queries", static_cast<double>(total_texts)},
       {"time_ms", off_ms},
       {"submits_per_sec",
        1000.0 * static_cast<double>(total_texts) / off_ms},
       {"bounced", static_cast<double>(off_result.bounced)}});

  SessionOptions armed;
  armed.max_pending = kQuotaMaxPending;
  ManagerOptions shedding;
  shedding.shed_high_water = kSessions * kQuotaMaxPending;  // unreachable
  ReplayResult armed_result;
  const double armed_ms = benchutil::MeanMillis(kReps, [&] {
    armed_result = ReplayOnce(db, workload.events, armed, shedding);
  });
  std::printf("armed,%.3f,%.0f,%zu,%zu\n", armed_ms,
              1000.0 * static_cast<double>(total_texts) / armed_ms,
              armed_result.accepted, armed_result.bounced);
  ENTANGLED_CHECK(armed_result.bounced > 0)
      << "quota bench exercised no bounces; tighten kQuotaMaxPending";
  benchutil::PrintJsonRecord(
      "session_quota_armed",
      {{"queries", static_cast<double>(total_texts)},
       {"time_ms", armed_ms},
       {"submits_per_sec",
        1000.0 * static_cast<double>(total_texts) / armed_ms},
       {"bounced", static_cast<double>(armed_result.bounced)}});

  // Snapshot cost: what an operator dashboard pays per poll.
  {
    EngineOptions engine_options;
    engine_options.evaluate_every = 0;
    CoordinationEngine engine(&db, engine_options);
    SessionManager manager(&engine);
    ClientSession* session = manager.Open();
    for (const WorkloadEvent& event : workload.events) {
      if (event.kind == WorkloadEvent::Kind::kSubmit) {
        ENTANGLED_CHECK(session->Submit(event.texts.front()).ok());
      }
    }
    constexpr int kSnapshots = 200;
    std::string last_json;
    const double snap_ms = benchutil::MeanMillis(1, [&] {
      for (int i = 0; i < kSnapshots; ++i) {
        last_json = manager.Metrics().ToJson();
      }
    });
    std::printf("metrics_snapshot,%.4f,,,%zu\n", snap_ms / kSnapshots,
                last_json.size());
    benchutil::PrintJsonRecord(
        "session_metrics_snapshot",
        {{"snapshot_ms", snap_ms / kSnapshots},
         {"json_bytes", static_cast<double>(last_json.size())}});
  }
  return 0;
}
