#include "core/coordination_graph.h"

#include <sstream>

#include "common/logging.h"

namespace entangled {

ExtendedCoordinationGraph::ExtendedCoordinationGraph(const QuerySet& set) {
  const size_t n = set.size();
  out_.resize(n);
  for (QueryId from = 0; from < static_cast<QueryId>(n); ++from) {
    const EntangledQuery& q = set.query(from);
    for (size_t pi = 0; pi < q.postconditions.size(); ++pi) {
      const Atom& post = q.postconditions[pi];
      for (QueryId to = 0; to < static_cast<QueryId>(n); ++to) {
        const EntangledQuery& target = set.query(to);
        for (size_t hi = 0; hi < target.head.size(); ++hi) {
          if (!PositionwiseUnifiable(post, target.head[hi])) continue;
          out_[static_cast<size_t>(from)].push_back(edges_.size());
          edges_.push_back(ExtendedEdge{from, pi, to, hi});
        }
      }
    }
  }
}

const std::vector<size_t>& ExtendedCoordinationGraph::OutEdges(
    QueryId q) const {
  ENTANGLED_CHECK(q >= 0 && static_cast<size_t>(q) < out_.size());
  return out_[static_cast<size_t>(q)];
}

std::vector<size_t> ExtendedCoordinationGraph::EdgesOfPostcondition(
    QueryId q, size_t post_index) const {
  std::vector<size_t> result;
  for (size_t e : OutEdges(q)) {
    if (edges_[e].post_index == post_index) result.push_back(e);
  }
  return result;
}

Digraph ExtendedCoordinationGraph::Collapse() const {
  Digraph graph(static_cast<NodeId>(out_.size()));
  for (const ExtendedEdge& edge : edges_) {
    graph.AddEdgeUnique(edge.from, edge.to);
  }
  return graph;
}

std::string ExtendedCoordinationGraph::ToString(const QuerySet& set) const {
  std::ostringstream out;
  out << "ExtendedCoordinationGraph(" << edges_.size() << " edges)";
  for (const ExtendedEdge& edge : edges_) {
    const EntangledQuery& from = set.query(edge.from);
    const EntangledQuery& to = set.query(edge.to);
    out << "\n  (" << from.name << ", "
        << set.AtomToString(from.postconditions[edge.post_index]) << ") -> ("
        << to.name << ", " << set.AtomToString(to.head[edge.head_index])
        << ")";
  }
  return out.str();
}

Digraph BuildCoordinationGraph(const QuerySet& set) {
  return ExtendedCoordinationGraph(set).Collapse();
}

}  // namespace entangled
