#include "reductions/random_sat.h"

#include "common/logging.h"

namespace entangled {

CnfFormula RandomKSat(int32_t num_vars, int32_t num_clauses, int32_t k,
                      Rng* rng) {
  ENTANGLED_CHECK(rng != nullptr);
  ENTANGLED_CHECK_GE(k, 1);
  ENTANGLED_CHECK_GE(num_vars, k);
  CnfFormula formula;
  formula.num_vars = num_vars;
  formula.clauses.reserve(static_cast<size_t>(num_clauses));
  for (int32_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    std::vector<size_t> vars = rng->Sample(static_cast<size_t>(num_vars),
                                           static_cast<size_t>(k));
    for (size_t v : vars) {
      int32_t var = static_cast<int32_t>(v) + 1;
      clause.push_back(rng->NextBool() ? Literal::Pos(var)
                                       : Literal::Neg(var));
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

}  // namespace entangled
