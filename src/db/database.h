#ifndef ENTANGLED_DB_DATABASE_H_
#define ENTANGLED_DB_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/atomic_counter.h"
#include "common/interner.h"
#include "common/result.h"
#include "common/status.h"
#include "db/relation.h"

namespace entangled {

/// \brief Counters describing the work the database has performed.
///
/// The paper's cost model counts *database round-trips* ("|Q| queries to
/// the database", §4); these counters let benches and tests report that
/// hardware-independent figure next to wall time.
///
/// The counters are relaxed-atomic because read-only evaluation updates
/// them through const Database references from several threads at once
/// (the engine's parallel Flush() evaluates disjoint components against
/// one shared database; ConsistentCoordinator's cleaning loop shards
/// values across workers).
struct DatabaseStats {
  RelaxedCounter conjunctive_queries;  ///< FindOne / Satisfiable calls.
  RelaxedCounter enumerate_queries;    ///< EnumerateDistinct calls.
  RelaxedCounter rows_matched;  ///< Candidate rows tested by the joins.

  void Reset() { *this = DatabaseStats{}; }
  uint64_t total_queries() const {
    return conjunctive_queries + enumerate_queries;
  }
};

/// \brief A named collection of in-memory relations (the catalog).
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty relation; fails if the name is taken.
  Result<Relation*> CreateRelation(const std::string& name,
                                   std::vector<std::string> column_names);

  /// Looks up a relation; nullptr when absent.
  const Relation* Find(const std::string& name) const;
  Relation* FindMutable(const std::string& name);

  /// Looks up a relation; error Status when absent.
  Result<const Relation*> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return Find(name) != nullptr;
  }

  /// Relation names in creation order.
  const std::vector<std::string>& relation_names() const { return names_; }

  size_t relation_count() const { return relations_.size(); }

  /// Total number of tuples across all relations.
  size_t TotalRows() const;

  /// Catalog-wide monotone mutation counter: bumped by CreateRelation
  /// and by every Insert into any relation of this database.  Equal
  /// values returned by two reads bracket a window in which no fact
  /// changed, so delta-aware evaluation can prove "the database my
  /// cached result was computed against is still the database".
  uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// The mutation counter of one relation (0 when `name` is absent —
  /// indistinguishable from "exists but never inserted into", which is
  /// fine: both mean no facts to invalidate caches over).
  uint64_t version_of(const std::string& name) const {
    const Relation* relation = Find(name);
    return relation == nullptr ? 0 : relation->version();
  }

  /// Work counters; mutable because read-only query evaluation updates
  /// them through const Database references.
  DatabaseStats& stats() const { return stats_; }

  /// The interner backing string-valued Values (the process-wide
  /// instance — values flow freely between databases and query sets,
  /// so they share one symbol namespace).  Callers may pre-intern
  /// hot strings and build Values with Value::Sym.
  StringInterner& interner() const { return GlobalValueInterner(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Relation>> relations_;
  std::vector<std::string> names_;
  mutable DatabaseStats stats_;
  // Relations bump this through the pointer bound in CreateRelation;
  // atomic because inserts into distinct relations may race.
  std::atomic<uint64_t> version_{0};
};

}  // namespace entangled

#endif  // ENTANGLED_DB_DATABASE_H_
