#ifndef ENTANGLED_REDUCTIONS_CNF_H_
#define ENTANGLED_REDUCTIONS_CNF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace entangled {

/// \brief A propositional literal: variable index (1-based) with a sign.
/// DIMACS-style integer encoding: +v is the positive literal, -v the
/// negation.
struct Literal {
  int32_t encoded = 0;  ///< non-zero; sign = polarity

  static Literal Pos(int32_t var) { return Literal{var}; }
  static Literal Neg(int32_t var) { return Literal{-var}; }

  int32_t var() const { return encoded < 0 ? -encoded : encoded; }
  bool positive() const { return encoded > 0; }
  Literal Negated() const { return Literal{-encoded}; }

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.encoded == b.encoded;
  }
  std::string ToString() const {
    return (positive() ? "x" : "~x") + std::to_string(var());
  }
};

/// \brief A clause: a disjunction of literals.
using Clause = std::vector<Literal>;

/// \brief A CNF formula over variables 1..num_vars.
struct CnfFormula {
  int32_t num_vars = 0;
  std::vector<Clause> clauses;

  /// "(x1 | ~x2 | x3) & (...)".
  std::string ToString() const;

  /// Whether every clause has at least one literal of a variable in
  /// range; malformed formulas fail fast in the encoders.
  bool WellFormed() const;
};

/// \brief Truth assignment: values[v] is the value of variable v
/// (index 0 unused).
using TruthAssignment = std::vector<bool>;

/// \brief Whether `assignment` satisfies every clause of `formula`.
bool Satisfies(const CnfFormula& formula, const TruthAssignment& assignment);

}  // namespace entangled

#endif  // ENTANGLED_REDUCTIONS_CNF_H_
