#include "core/query.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(QueryTest, BuilderConstructsQuery) {
  QuerySet set;
  QueryBuilder b(&set, "q1");
  VarId x = b.Var("x");
  b.Post("R", {Term::Str("Chris"), Term::Var(x)});
  b.Head("R", {Term::Str("Gwyneth"), Term::Var(x)});
  b.Body("Flights", {Term::Var(x), Term::Str("Zurich")});
  QueryId id = b.Build();

  const EntangledQuery& q = set.query(id);
  EXPECT_EQ(q.name, "q1");
  EXPECT_EQ(q.postconditions.size(), 1u);
  EXPECT_EQ(q.head.size(), 1u);
  EXPECT_EQ(q.body.size(), 1u);
  EXPECT_EQ(q.id, id);
}

TEST(QueryTest, VariablesCollectsDistinctInOrder) {
  QuerySet set;
  QueryBuilder b(&set, "q");
  VarId x = b.Var("x");
  VarId y = b.Var("y");
  b.Post("P", {Term::Var(y)});
  b.Head("H", {Term::Var(x), Term::Var(y)});
  b.Body("B", {Term::Var(x), Term::Var(x)});
  QueryId id = b.Build();
  EXPECT_EQ(set.query(id).Variables(), (std::vector<VarId>{y, x}));
}

TEST(QueryTest, IdsAreSequential) {
  QuerySet set;
  QueryId a = QueryBuilder(&set, "a").Build();
  QueryId b = QueryBuilder(&set, "b").Build();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(set.size(), 2u);
}

TEST(QueryTest, FindByName) {
  QuerySet set;
  QueryBuilder(&set, "alpha").Build();
  QueryId beta = QueryBuilder(&set, "beta").Build();
  EXPECT_EQ(set.FindByName("beta"), beta);
  EXPECT_EQ(set.FindByName("gamma"), -1);
}

TEST(QueryTest, ToStringUsesVariableNames) {
  QuerySet set;
  QueryBuilder b(&set, "qC");
  VarId x1 = b.Var("x1");
  b.Post("R", {Term::Str("G"), Term::Var(x1)});
  b.Head("R", {Term::Str("C"), Term::Var(x1)});
  b.Body("F", {Term::Var(x1), Term::Str("Paris")});
  QueryId id = b.Build();
  EXPECT_EQ(set.QueryToString(id),
            "qC: {R('G', x1)} R('C', x1) :- F(x1, 'Paris').");
}

TEST(QueryTest, ToStringEmptyParts) {
  QuerySet set;
  QueryBuilder b(&set, "q");
  b.Head("H", {Term::Int(1)});
  QueryId id = b.Build();
  EXPECT_EQ(set.QueryToString(id), "q: {} H(1) :- .");
}

TEST(QueryTest, SubsetPreservesVariablesAndRenumbers) {
  QuerySet set;
  QueryBuilder b1(&set, "a");
  VarId x = b1.Var("x");
  b1.Head("H", {Term::Var(x)});
  b1.Body("B", {Term::Var(x)});
  QueryId qa = b1.Build();
  QueryBuilder b2(&set, "b");
  VarId y = b2.Var("y");
  b2.Head("H", {Term::Var(y)});
  QueryId qb = b2.Build();
  (void)qa;

  std::vector<QueryId> original;
  std::vector<VarId> original_vars;
  QuerySet subset = set.Subset({qb}, &original, &original_vars);
  EXPECT_EQ(subset.size(), 1u);
  EXPECT_EQ(original, (std::vector<QueryId>{qb}));
  EXPECT_EQ(subset.query(0).name, "b");
  EXPECT_EQ(subset.query(0).id, 0);
  // Variables are remapped densely: the subset carries only b's
  // variable, renumbered to 0, with its display name preserved and the
  // reverse map pointing back at y.
  EXPECT_EQ(subset.num_vars(), 1u);
  EXPECT_EQ(subset.query(0).head[0].terms[0].var(), 0);
  EXPECT_EQ(subset.var_name(0), "y");
  EXPECT_EQ(original_vars, (std::vector<VarId>{y}));
}

TEST(QueryTest, CheckWellFormedAcceptsProperQueries) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("F", {"id", "dest"}).ok());
  QuerySet set;
  QueryBuilder b(&set, "q");
  VarId x = b.Var("x");
  b.Post("R", {Term::Var(x)});
  b.Head("R", {Term::Var(x)});
  b.Body("F", {Term::Var(x), Term::Str("Paris")});
  b.Build();
  EXPECT_TRUE(set.CheckWellFormed(db).ok());
}

TEST(QueryTest, CheckWellFormedRejectsUnknownBodyRelation) {
  Database db;
  QuerySet set;
  QueryBuilder b(&set, "q");
  VarId x = b.Var("x");
  b.Head("R", {Term::Var(x)});
  b.Body("F", {Term::Var(x)});
  b.Build();
  Status status = set.CheckWellFormed(db);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("property (i)"), std::string::npos);
}

TEST(QueryTest, CheckWellFormedRejectsAnswerSchemaClash) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("F", {"id"}).ok());
  QuerySet set;
  QueryBuilder b(&set, "q");
  VarId x = b.Var("x");
  b.Head("F", {Term::Var(x)});  // head uses a schema relation
  b.Body("F", {Term::Var(x)});
  b.Build();
  Status status = set.CheckWellFormed(db);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("property (ii)"), std::string::npos);
}

TEST(QueryTest, CheckWellFormedRejectsBodyArityMismatch) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("F", {"id", "dest"}).ok());
  QuerySet set;
  QueryBuilder b(&set, "q");
  VarId x = b.Var("x");
  b.Head("R", {Term::Var(x)});
  b.Body("F", {Term::Var(x)});  // F has arity 2
  b.Build();
  EXPECT_TRUE(set.CheckWellFormed(db).IsInvalidArgument());
}

TEST(QueryTest, CheckWellFormedRejectsInconsistentAnswerArity) {
  Database db;
  QuerySet set;
  QueryBuilder b1(&set, "a");
  VarId x = b1.Var("x");
  b1.Head("R", {Term::Var(x)});
  b1.Build();
  QueryBuilder b2(&set, "b");
  VarId y = b2.Var("y");
  b2.Head("R", {Term::Var(y), Term::Var(y)});
  b2.Build();
  EXPECT_TRUE(set.CheckWellFormed(db).IsInvalidArgument());
}

TEST(QueryDeathTest, ForeignVariableAborts) {
  QuerySet set;
  EntangledQuery q;
  q.name = "bad";
  q.head.emplace_back("H", std::vector<Term>{Term::Var(99)});
  EXPECT_DEATH(set.AddQuery(std::move(q)), "foreign variable");
}

TEST(QueryDeathTest, DoubleBuildAborts) {
  QuerySet set;
  QueryBuilder b(&set, "q");
  b.Head("H", {Term::Int(1)});
  b.Build();
  EXPECT_DEATH(b.Build(), "Build called twice");
}

}  // namespace
}  // namespace entangled
