// Coverage for the session front door (api/session.h): typed submit
// outcomes, per-session ownership and cancellation, cross-session
// delivery routing, push-vs-poll stream equality, session teardown, and
// the same behaviour over the sharded engine.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "system/engine.h"
#include "system/sharded_engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 32).ok());
  }

  static std::string PairA(const std::string& rel) {
    return "a_" + rel + ": { " + rel + "(Bob, x) } " + rel +
           "(Alice, x) :- Users(x, 'user3').";
  }
  static std::string PairB(const std::string& rel) {
    return "b_" + rel + ": { " + rel + "(Alice, y) } " + rel +
           "(Bob, y) :- Users(y, 'user3').";
  }
  static std::string Stuck(const std::string& tag) {
    return "s_" + tag + ": { S(Never" + tag + ", x) } S(" + tag +
           ", x) :- Users(x, 'user7').";
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// Typed outcomes
// ---------------------------------------------------------------------------

TEST_F(SessionTest, TypedRejectionReasons) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();

  // Parse error.
  SubmitOutcome bad = session->Submit("not a query");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.reason, RejectReason::kParseError);
  EXPECT_FALSE(bad.message.empty());
  EXPECT_STREQ(RejectReasonName(bad.reason), "parse_error");

  // Duplicate heads: R(A, x) and R(A, y) book the same answer slot.
  SubmitOutcome dup = session->Submit(
      "dup: { } R(A, x), R(A, y) :- Users(x, 'user1'), Users(y, 'user1').");
  EXPECT_EQ(dup.reason, RejectReason::kDuplicateHead);

  // Self-unsafe: the postcondition R(p, q) unifies with both own heads
  // (which are not unifiable with each other — A vs B).
  SubmitOutcome unsafe = session->Submit(
      "selfunsafe: { R(p, q) } R(A, x), R(B, y) :- Users(x, 'user1'), "
      "Users(y, 'user1').");
  EXPECT_EQ(unsafe.reason, RejectReason::kUnsafe);

  // Nothing defective was admitted.
  EXPECT_EQ(manager.StatsSnapshot().submitted, 0u);
  EXPECT_EQ(session->num_pending(), 0u);

  // The checks are policy: a session that forwards verbatim admits the
  // same texts (the *set*-level unsafety is then the engine's business,
  // exactly as before the session layer existed).
  SessionOptions verbatim;
  verbatim.reject_defective = false;
  ClientSession* raw = manager.Open(verbatim);
  EXPECT_TRUE(raw->Submit(
                     "dup: { } R(A, x), R(A, y) :- Users(x, 'user1'), "
                     "Users(y, 'user1').")
                  .ok());
}

TEST_F(SessionTest, BatchOutcomeNamesTheOffendingText) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();

  BatchOutcome outcome = session->SubmitBatch(
      {PairA("P"), "garbage in the middle", PairB("P")});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.reason, RejectReason::kParseError);
  EXPECT_EQ(outcome.rejected_index, 1u);
  // All-or-nothing: nothing from the batch landed.
  EXPECT_EQ(manager.num_pending(), 0u);
  EXPECT_EQ(session->num_pending(), 0u);

  BatchOutcome good = session->SubmitBatch({PairA("P"), PairB("P")});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.ids.size(), 2u);
  // The pair coordinated inside the batch flush: one event, no pending.
  EXPECT_EQ(session->num_buffered_events(), 1u);
  EXPECT_EQ(session->num_pending(), 0u);
}

TEST_F(SessionTest, ClosedSessionRejectsSubmissions) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();
  ASSERT_TRUE(session->Submit(Stuck("T0")).ok());
  ASSERT_EQ(manager.num_pending(), 1u);

  session->Close();
  EXPECT_FALSE(session->open());
  // Teardown bulk-cancelled the pending query, in the engine too.
  EXPECT_EQ(manager.num_pending(), 0u);
  EXPECT_EQ(manager.StatsSnapshot().cancelled, 1u);

  SubmitOutcome rejected = session->Submit(Stuck("T1"));
  EXPECT_EQ(rejected.reason, RejectReason::kSessionClosed);
  EXPECT_EQ(session->SubmitBatch({Stuck("T1")}).reason,
            RejectReason::kSessionClosed);
  EXPECT_EQ(manager.num_open_sessions(), 0u);
  EXPECT_FALSE(manager.Close(session->id()));  // already closed
}

// ---------------------------------------------------------------------------
// Ownership & routing
// ---------------------------------------------------------------------------

TEST_F(SessionTest, CoordinatingSetSpanningSessionsNotifiesEveryOwner) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  SessionManager manager(&engine);
  ClientSession* alice = manager.Open({/*label=*/"alice"});
  ClientSession* bob = manager.Open({/*label=*/"bob"});

  SubmitOutcome a = alice->Submit(PairA("P"));
  SubmitOutcome b = bob->Submit(PairB("P"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(manager.OwnerOf(a.id), alice->id());
  EXPECT_EQ(manager.OwnerOf(b.id), bob->id());

  EXPECT_EQ(manager.Flush(), 1u);
  std::vector<SessionEvent> alice_events = alice->PollEvents();
  std::vector<SessionEvent> bob_events = bob->PollEvents();
  ASSERT_EQ(alice_events.size(), 1u);
  ASSERT_EQ(bob_events.size(), 1u);
  // Both observe the same self-contained event...
  EXPECT_EQ(alice_events[0].delivery->QueryIds(),
            (std::vector<QueryId>{a.id, b.id}));
  EXPECT_EQ(alice_events[0].delivery->sequence,
            bob_events[0].delivery->sequence);
  // ...each with its own slice.
  EXPECT_EQ(alice_events[0].own_queries, (std::vector<QueryId>{a.id}));
  EXPECT_EQ(bob_events[0].own_queries, (std::vector<QueryId>{b.id}));
  // Ownership survives retirement (operator introspection).
  EXPECT_EQ(manager.OwnerOf(a.id), alice->id());
}

TEST_F(SessionTest, CancelIsOwnershipScoped) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  ClientSession* alice = manager.Open();
  ClientSession* bob = manager.Open();
  SubmitOutcome stuck = alice->Submit(Stuck("T0"));
  ASSERT_TRUE(stuck.ok());

  EXPECT_FALSE(bob->Cancel(stuck.id));   // not bob's query
  EXPECT_TRUE(manager.service()->IsPending(stuck.id));
  EXPECT_TRUE(alice->Cancel(stuck.id));  // the owner may withdraw
  EXPECT_FALSE(manager.service()->IsPending(stuck.id));
  EXPECT_FALSE(alice->Cancel(stuck.id));  // no longer pending
}

TEST_F(SessionTest, ImmediateDeliveryDuringSubmitIsRoutedToSubmitter) {
  CoordinationEngine engine(&db_);  // evaluate_every = 1
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();
  // The loner coordinates *inside* Submit — before the session even
  // learns the id — and must still land in this session's stream.
  SubmitOutcome solo = session->Submit("solo: { } K(w) :- Users(w, 'user5').");
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(session->num_pending(), 0u);
  std::vector<SessionEvent> events = session->PollEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].own_queries, (std::vector<QueryId>{solo.id}));
  EXPECT_EQ(manager.OwnerOf(solo.id), session->id());
}

// ---------------------------------------------------------------------------
// Push vs pull
// ---------------------------------------------------------------------------

TEST_F(SessionTest, PushStreamEqualsPollDrain) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();
  std::vector<uint64_t> pushed;
  session->set_event_callback([&](const SessionEvent& event) {
    pushed.push_back(event.delivery->sequence);
  });

  ASSERT_TRUE(session->Submit(PairA("P")).ok());
  ASSERT_TRUE(session->Submit(PairB("P")).ok());
  ASSERT_TRUE(session->Submit("solo: { } K(w) :- Users(w, 'user5').").ok());
  EXPECT_EQ(manager.Flush(), 2u);

  std::vector<SessionEvent> polled = session->PollEvents();
  ASSERT_EQ(polled.size(), pushed.size());
  for (size_t i = 0; i < polled.size(); ++i) {
    EXPECT_EQ(polled[i].delivery->sequence, pushed[i]);
  }
  // The drain consumed the buffer.
  EXPECT_TRUE(session->PollEvents().empty());
  EXPECT_EQ(session->deliveries(), 2u);
}

// ---------------------------------------------------------------------------
// Sessions over the sharded front door
// ---------------------------------------------------------------------------

TEST_F(SessionTest, WorksUnchangedOverShardedEngine) {
  ShardedEngineOptions options;
  options.engine.evaluate_every = 0;
  ShardedCoordinationEngine engine(&db_, options);
  SessionManager manager(&engine);
  ClientSession* alice = manager.Open();
  ClientSession* bob = manager.Open();

  // Two pairs in footprint-disjoint relations: distinct shards, both
  // sessions entangled with each other in both.
  SubmitOutcome p1 = alice->Submit(PairA("P"));
  SubmitOutcome p2 = bob->Submit(PairB("P"));
  SubmitOutcome q1 = bob->Submit(PairA("Q"));
  SubmitOutcome q2 = alice->Submit(PairB("Q"));
  ASSERT_TRUE(p1.ok() && p2.ok() && q1.ok() && q2.ok());
  EXPECT_EQ(manager.Flush(), 2u);

  std::vector<SessionEvent> alice_events = alice->PollEvents();
  std::vector<SessionEvent> bob_events = bob->PollEvents();
  ASSERT_EQ(alice_events.size(), 2u);
  ASSERT_EQ(bob_events.size(), 2u);
  // Cross-shard deliveries arrive merged by global schedule key, so
  // both sessions observe the same order: P's set first.
  EXPECT_EQ(alice_events[0].delivery->QueryIds(),
            (std::vector<QueryId>{p1.id, p2.id}));
  EXPECT_EQ(alice_events[1].delivery->QueryIds(),
            (std::vector<QueryId>{q1.id, q2.id}));
  EXPECT_EQ(alice_events[0].own_queries, (std::vector<QueryId>{p1.id}));
  EXPECT_EQ(alice_events[1].own_queries, (std::vector<QueryId>{q2.id}));
  EXPECT_EQ(bob_events[0].own_queries, (std::vector<QueryId>{p2.id}));

  // Session teardown bulk-cancels across shards.
  SubmitOutcome s0 = alice->Submit(Stuck("T0"));
  SubmitOutcome s1 = alice->Submit("s_U: { U(NeverU, x) } U(TU, x) :- "
                                   "Users(x, 'user7').");
  ASSERT_TRUE(s0.ok() && s1.ok());
  ASSERT_EQ(manager.num_pending(), 2u);
  manager.Close(alice->id());
  EXPECT_EQ(manager.num_pending(), 0u);
  EXPECT_EQ(manager.StatsSnapshot().cancelled, 2u);
}

}  // namespace
}  // namespace entangled
