#ifndef ENTANGLED_WORKLOAD_CONSISTENT_WORKLOADS_H_
#define ENTANGLED_WORKLOAD_CONSISTENT_WORKLOADS_H_

#include <string>
#include <vector>

#include "algo/consistent.h"
#include "common/status.h"
#include "db/database.h"

namespace entangled {

/// \brief The flight schema of §6.2: Flights(fid, destination, day,
/// source, airline), coordination attributes = {destination, day}.
ConsistentSchema MakeFlightSchema(const std::string& flights_relation,
                                  const std::string& friends_relation);

/// \brief Installs a Flights relation with `num_rows` rows in which
/// every row carries a *distinct* (destination, day) pair — the paper's
/// worst case where |V(Q)| equals the table size (Figure 7).
Status InstallDistinctFlightsTable(Database* db, const std::string& name,
                                   size_t num_rows);

/// \brief Installs a Flights relation covering the cross product of
/// `destinations` x `days` with `flights_per_combo` flights each,
/// sources and airlines assigned round-robin from the given pools.
Status InstallFlightsGrid(Database* db, const std::string& name,
                          const std::vector<std::string>& destinations,
                          const std::vector<std::string>& days,
                          size_t flights_per_combo,
                          const std::vector<std::string>& sources,
                          const std::vector<std::string>& airlines);

/// \brief Installs a complete friendship graph over `users` (both
/// directions of every pair) — Figures 7/8 use a complete Friends
/// table.
Status InstallCompleteFriends(Database* db, const std::string& name,
                              const std::vector<std::string>& users);

/// \brief User names "user0".."user<n-1>".
std::vector<std::string> MakeUserNames(size_t n);

/// \brief The §6.2 stress queries: n users, every attribute a
/// "don't care" (every tuple satisfies every query) and one
/// any-friend partner each — nothing ever prunes, the algorithm's
/// worst case.
std::vector<ConsistentQuery> MakeWorstCaseConsistentQueries(
    size_t n, size_t num_attributes);

}  // namespace entangled

#endif  // ENTANGLED_WORKLOAD_CONSISTENT_WORKLOADS_H_
