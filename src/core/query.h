#ifndef ENTANGLED_CORE_QUERY_H_
#define ENTANGLED_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "db/atom.h"
#include "db/database.h"

namespace entangled {

/// \brief Identifier of an entangled query within a QuerySet.
using QueryId = int32_t;

/// \brief An entangled query {P} H :- B (paper §2.1): postconditions P
/// and head H over *answer* relations, body B over database relations.
///
/// A query is satisfied in a coordinating set S when its body grounds in
/// the database and each grounded postcondition atom equals a grounded
/// head atom of some query in S (Definition 1).
struct EntangledQuery {
  QueryId id = -1;
  std::string name;  ///< display name, e.g. "qC"

  std::vector<Atom> postconditions;
  std::vector<Atom> head;
  std::vector<Atom> body;

  /// All distinct variable ids, in first-occurrence order over
  /// (postconditions, head, body).
  std::vector<VarId> Variables() const;
};

/// \brief A set of entangled queries sharing one variable namespace.
///
/// Variable ids are unique across the whole set ("standardized apart"),
/// so atoms from different queries can be unified directly.  Queries are
/// built either programmatically through QueryBuilder or textually
/// through ParseQueries (core/parser.h).
class QuerySet {
 public:
  QuerySet() = default;

  /// Allocates a fresh variable with a display name (names need not be
  /// unique; ids are).
  VarId NewVar(std::string name);

  size_t num_vars() const { return var_names_.size(); }
  const std::string& var_name(VarId v) const;

  /// Adds a fully-formed query (id is overwritten); returns its id.
  QueryId AddQuery(EntangledQuery query);

  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }

  const EntangledQuery& query(QueryId id) const;
  /// Mutable access for editing a query in place.  Renaming through
  /// this accessor is not supported: FindByName resolves against the
  /// name the query was added under.
  EntangledQuery& mutable_query(QueryId id);
  const std::vector<EntangledQuery>& queries() const { return queries_; }

  /// Id of the query named `name`, or -1 (hash lookup keyed by the
  /// name at AddQuery time; the first query added under a name wins,
  /// matching the old linear scan).
  QueryId FindByName(const std::string& name) const;

  /// A new set containing copies of the given queries (renumbered
  /// 0..k-1, input order preserved) whose variables are remapped to a
  /// dense [0, k) id space in first-occurrence order.  The subset
  /// carries only its own variables, so downstream per-component work
  /// (Substitution tables, dense bindings) is O(component) instead of
  /// O(engine-wide variables).  `original_ids` (optional) receives the
  /// source id of each subset query; `original_vars` (optional)
  /// receives the source variable of each subset variable, i.e.
  /// (*original_vars)[subset_var] == original_var — use it to
  /// translate witnesses back into the parent set's variable space.
  QuerySet Subset(const std::vector<QueryId>& ids,
                  std::vector<QueryId>* original_ids = nullptr,
                  std::vector<VarId>* original_vars = nullptr) const;

  /// Pointer/length form of Subset, for callers whose id list lives in
  /// scratch storage other than a std::vector (e.g. a flush arena).
  QuerySet Subset(const QueryId* ids, size_t count,
                  std::vector<QueryId>* original_ids = nullptr,
                  std::vector<VarId>* original_vars = nullptr) const;

  /// Appends copies of `src`'s queries `ids` to this set (renumbered to
  /// fresh ids, input order preserved), allocating fresh variables here
  /// for every source variable in first-occurrence order over
  /// (postconditions, head, body) — the same traversal Subset and the
  /// parser use, so adopting a freshly parsed query reproduces the
  /// variable ids a direct parse into this set would have produced.
  /// Returns the new ids.  `var_map` (optional, cleared first) receives
  /// one (source variable, variable allocated here) pair per distinct
  /// source variable, in first-occurrence order — pairs rather than a
  /// dense table so the cost is O(adopted atoms), not O(src.num_vars()),
  /// no matter how large the source namespace is.  Together with Subset
  /// this is the migration round-trip: Subset detaches queries into a
  /// dense standalone set, AdoptQueries re-homes them in another set's
  /// namespace.
  std::vector<QueryId> AdoptQueries(
      const QuerySet& src, const std::vector<QueryId>& ids,
      std::vector<std::pair<VarId, VarId>>* var_map = nullptr);

  /// Whole-set form of AdoptQueries: appends copies of *every* query of
  /// `src` in id order, sharing one variable remap across the whole
  /// call.  This is the bulk half of the migration round-trip — a shard
  /// merge adopts an entire PendingExtract in one pass instead of one
  /// AdoptQueries call (and one remap map) per query.
  std::vector<QueryId> AdoptAll(
      const QuerySet& src,
      std::vector<std::pair<VarId, VarId>>* var_map = nullptr);

  /// Renders a term/atom/query with variable display names
  /// ("R('C', x1)" instead of "R('C', ?3)").
  std::string TermToString(const Term& term) const;
  std::string AtomToString(const Atom& atom) const;
  std::string AtomListToString(const std::vector<Atom>& atoms,
                               const std::string& empty = "{}") const;
  /// "qC: {P} H :- B."
  std::string QueryToString(QueryId id) const;
  /// All queries, one per line.
  std::string ToString() const;

  /// Checks the syntactic well-formedness conditions of §2.1 against a
  /// database: every body relation is in the schema, no head or
  /// postcondition relation is, and relation arities are consistent.
  Status CheckWellFormed(const Database& db) const;

 private:
  std::vector<EntangledQuery> queries_;
  std::vector<std::string> var_names_;
  // name -> id of the first query added under that name.
  std::unordered_map<std::string, QueryId> queries_by_name_;
};

/// \brief Fluent construction of one entangled query:
///
///     QueryBuilder b(&set, "qC");
///     VarId x1 = b.Var("x1"), x2 = b.Var("x2"), x = b.Var("x");
///     b.Post("R", {Term::Str("G"), Term::Var(x1)});
///     b.Head("R", {Term::Str("C"), Term::Var(x1)});
///     b.Body("F", {Term::Var(x1), Term::Var(x)});
///     QueryId qc = b.Build();
class QueryBuilder {
 public:
  QueryBuilder(QuerySet* set, std::string name);

  /// Fresh variable scoped to the enclosing set.
  VarId Var(std::string name);

  QueryBuilder& Post(std::string relation, std::vector<Term> terms);
  QueryBuilder& Head(std::string relation, std::vector<Term> terms);
  QueryBuilder& Body(std::string relation, std::vector<Term> terms);

  /// Adds the query to the set and returns its id.  The builder must not
  /// be reused afterwards.
  QueryId Build();

 private:
  QuerySet* set_;
  EntangledQuery query_;
  bool built_ = false;
};

}  // namespace entangled

#endif  // ENTANGLED_CORE_QUERY_H_
