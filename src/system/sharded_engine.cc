#include "system/sharded_engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "core/parser.h"

namespace entangled {

ShardedCoordinationEngine::ShardedCoordinationEngine(
    const Database* db, ShardedEngineOptions options)
    : db_(db), options_(std::move(options)) {
  ENTANGLED_CHECK(db != nullptr);
  // One scheduler for the whole front door: shard fan-out (Submit/Wait)
  // and every inner engine's chunked component evaluation share these
  // workers instead of spawning a pool per shard.  Created eagerly —
  // idle workers just park on the queue's condition variable.
  const size_t width =
      std::max(options_.shard_threads, options_.engine.flush_threads);
  if (width > 1) pool_ = std::make_unique<ThreadPool>(width);
  // Inner engines are driven synchronously on the routing thread (and
  // on pool workers during Flush); deferred admission belongs to the
  // front door, never to a shard.
  options_.engine.intake_capacity = 0;
  options_.engine.shared_pool = pool_.get();
}

void ShardedCoordinationEngine::CheckNotReentrant(
    const char* entry_point) const {
  ENTANGLED_CHECK(!in_callback_)
      << entry_point
      << " called from inside a delivery callback: callbacks must not "
         "re-enter the ShardedCoordinationEngine; defer the follow-up "
         "until the delivering call returns";
}

// ---------------------------------------------------------------------------
// Submission & routing
// ---------------------------------------------------------------------------

Result<QueryId> ShardedCoordinationEngine::Submit(
    const std::string& query_text) {
  CheckNotReentrant("Submit");
  auto id = ParseQuery(query_text, &all_);
  if (!id.ok()) {
    ++front_stats_.rejected;
    return id.status();
  }
  RouteAndAdmit(*id);
  ++front_stats_.submitted;

  if (options_.engine.evaluate_every > 0 &&
      ++since_last_eval_ >= options_.engine.evaluate_every) {
    since_last_eval_ = 0;
    // The §6.1 per-arrival step: evaluate exactly the arrival's
    // component, in its shard; nothing else is examined.
    const Locator loc = locators_[static_cast<size_t>(*id)];
    shards_[loc.shard].engine->EvaluateNow(loc.local);
    DrainDeliveries({loc.shard});
    MaybeGcShards({loc.shard});
  }
  return id;
}

Result<std::vector<QueryId>> ShardedCoordinationEngine::SubmitBatch(
    const std::vector<std::string>& query_texts) {
  CheckNotReentrant("SubmitBatch");
  // All-or-nothing admission, exactly like CoordinationEngine: validate
  // the whole batch against a staging set before admitting anything.
  {
    QuerySet staging;
    for (const std::string& text : query_texts) {
      auto id = ParseQuery(text, &staging);
      if (!id.ok()) {
        ++front_stats_.rejected;
        return id.status();
      }
    }
  }
  std::vector<QueryId> ids;
  ids.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    auto id = ParseQuery(text, &all_);
    ENTANGLED_CHECK(id.ok()) << "validated batch re-parse failed: "
                             << id.status().ToString();
    RouteAndAdmit(*id);
    ++front_stats_.submitted;
    ids.push_back(*id);
  }
  // The whole batch landed before any evaluation; now flush once, as a
  // single engine would.
  if (options_.engine.evaluate_every > 0) {
    since_last_eval_ = 0;
    Flush();
  }
  return ids;
}

void ShardedCoordinationEngine::RouteAndAdmit(QueryId gid) {
  std::vector<RelationId> footprint = router_.Footprint(all_, gid);
  if (footprint.empty()) {
    // No postconditions and no head atoms (unreachable through the
    // parser, which requires a head): the query can never gain a
    // coordination edge.  One shared sentinel relation groups such
    // loners — harmless, since co-sharding never creates edges — and
    // keeps the router's namespace bounded.
    footprint.push_back(router_.Intern("$lone"));
  }
  // Refresh the touched groups' weights (their shards' pending counts)
  // before uniting, so union-by-weight keeps the heavy shard's root as
  // the surviving group root.
  std::vector<RelationId> prior_roots;
  prior_roots.reserve(footprint.size());
  for (RelationId r : footprint) prior_roots.push_back(router_.Find(r));
  std::sort(prior_roots.begin(), prior_roots.end());
  prior_roots.erase(std::unique(prior_roots.begin(), prior_roots.end()),
                    prior_roots.end());
  for (RelationId r : prior_roots) {
    auto it = group_shard_.find(r);
    router_.SetWeight(
        r, it != group_shard_.end()
               ? shards_[it->second].engine->num_pending()
               : 0);
  }
  const RelationId root = router_.Unite(footprint);
  ENTANGLED_CHECK(!prior_roots.empty());

  // Live shards bound to the groups this footprint touched.
  std::vector<size_t> involved;
  for (RelationId r : prior_roots) {
    auto it = group_shard_.find(r);
    if (it != group_shard_.end()) {
      involved.push_back(it->second);
      group_shard_.erase(it);
    }
  }

  size_t slot;
  if (involved.empty()) {
    slot = CreateShard();
  } else if (involved.size() == 1) {
    slot = involved.front();
  } else {
    ++sharded_stats_.group_merges;
    slot = MergeShards(involved);
  }
  group_shard_[root] = slot;
  shards_[slot].group_root = root;

  AdoptIntoShard(slot, gid);
  pending_.resize(all_.size(), false);
  pending_[static_cast<size_t>(gid)] = true;
  ++num_pending_;
  flush_candidates_.insert(slot);
}

size_t ShardedCoordinationEngine::CreateShard() {
  EngineOptions inner = options_.engine;
  inner.evaluate_every = 0;  // the front door drives the cadence
  size_t slot;
  if (!free_slots_.empty()) {
    // Reuse a retired slot so the shard table stays proportional to
    // the number of *live* shards under create/GC churn.  Stale
    // locators_ entries naming this slot all belong to non-pending
    // queries, which every lookup path gates on IsPending first.
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    shards_.emplace_back();
    slot = shards_.size() - 1;
  }
  shards_[slot].engine = std::make_unique<CoordinationEngine>(db_, inner);
  // Capture the slot index, not the Shard: shards_ may reallocate as
  // new shards are created (never during a flush).  The *internal*
  // solution hook hands us the raw engine-space solution — the front
  // door owns the local->global translation and materializes public
  // Deliveries only after the cross-shard merge.
  shards_[slot].engine->set_internal_solution_callback(
      [this, slot](const QuerySet&, const CoordinationSolution& solution) {
        OnShardDelivery(slot, solution);
      });
  ++num_live_shards_;
  ++sharded_stats_.shards_created;
  return slot;
}

void ShardedCoordinationEngine::AdoptIntoShard(size_t slot, QueryId gid) {
  Shard& shard = shards_[slot];
  std::vector<VarId> dense_to_gvar;
  QuerySet staging = all_.Subset({gid}, nullptr, &dense_to_gvar);
  std::vector<std::pair<VarId, VarId>> adopted_vars;
  // The global id doubles as the schedule key: unique across shards and
  // monotone in submission order, which is all the inner engines need
  // to reproduce a single engine's tie-breaks.
  const std::vector<QueryId> keys{gid};
  const QueryId local =
      shard.engine->AdoptPending(staging, {0}, &adopted_vars, &keys).front();

  ENTANGLED_CHECK_EQ(static_cast<size_t>(local),
                     shard.local_to_global.size());
  shard.local_to_global.push_back(gid);
  for (const auto& [dense, lvar] : adopted_vars) {
    if (static_cast<size_t>(lvar) >= shard.lvar_to_gvar.size()) {
      shard.lvar_to_gvar.resize(static_cast<size_t>(lvar) + 1, -1);
    }
    shard.lvar_to_gvar[static_cast<size_t>(lvar)] =
        dense_to_gvar[static_cast<size_t>(dense)];
  }
  locators_.resize(all_.size());
  locators_[static_cast<size_t>(gid)] = Locator{slot, local};
}

size_t ShardedCoordinationEngine::MergeShards(
    const std::vector<size_t>& slots) {
  if (options_.rebuild_merges) return MergeShardsRebuild(slots);
  // Small-into-large: the slot with the most pending queries survives
  // with its engine, translation tables, and memoized component state
  // untouched; every other slot is drained and bulk-adopted into it —
  // O(sum of smaller sides) per merge, not O(union).  The survivor's
  // local ids stop being monotone in global ids, which is fine: the
  // schedule keys adopted alongside each query carry the global order,
  // and the inner engine breaks every tie on keys.
  ++sharded_stats_.merge_events;
  size_t survivor = slots.front();
  for (size_t s : slots) {
    const size_t p = shards_[s].engine->num_pending();
    const size_t best = shards_[survivor].engine->num_pending();
    if (p > best || (p == best && s < survivor)) survivor = s;
  }
  sharded_stats_.queries_retained += shards_[survivor].engine->num_pending();

  uint64_t moved = 0;
  for (size_t s : slots) {
    if (s == survivor) continue;
    ENTANGLED_CHECK(shards_[s].deliveries.empty());
    const CoordinationEngine::PendingExtract extract =
        shards_[s].engine->ExtractPending();
    moved += AdoptExtractIntoShard(survivor, s, extract);
    RetireShard(s, /*absorbed=*/true);
    flush_candidates_.erase(s);
  }
  sharded_stats_.queries_migrated += moved;
  sharded_stats_.merge_migrated_max =
      std::max(sharded_stats_.merge_migrated_max, moved);
  flush_candidates_.insert(survivor);
  return survivor;
}

size_t ShardedCoordinationEngine::MergeShardsRebuild(
    const std::vector<size_t>& slots) {
  // Historical baseline: drain every participating shard and replay the
  // union into one fresh engine in ascending global id order.  Extracts
  // are taken (and adopted) per source in that order, so each source
  // still lands with a single bulk AdoptPending; the O(union) work and
  // the loss of every side's memoized state are the point — this is
  // what the small-into-large path is measured against.
  ++sharded_stats_.merge_events;
  struct Source {
    size_t slot;
    QueryId min_gid;
    CoordinationEngine::PendingExtract extract;
  };
  std::vector<Source> sources;
  sources.reserve(slots.size());
  uint64_t moved = 0;
  for (size_t s : slots) {
    ENTANGLED_CHECK(shards_[s].deliveries.empty());
    Source src{s, std::numeric_limits<QueryId>::max(),
               shards_[s].engine->ExtractPending()};
    for (QueryId gid : src.extract.keys) {
      src.min_gid = std::min(src.min_gid, gid);
    }
    moved += src.extract.original.size();
    sources.push_back(std::move(src));
  }
  // Keys are global ids and each source extract is already ascending in
  // them (inner adoption order tracks submission order per shard), so
  // ordering sources by smallest key replays the union nearly sorted;
  // exact global order is restored by the schedule keys regardless.
  std::sort(sources.begin(), sources.end(),
            [](const Source& a, const Source& b) {
              return a.min_gid < b.min_gid;
            });

  const size_t merged_slot = CreateShard();
  for (const Source& src : sources) {
    AdoptExtractIntoShard(merged_slot, src.slot, src.extract);
  }
  for (const Source& src : sources) {
    RetireShard(src.slot, /*absorbed=*/true);
    flush_candidates_.erase(src.slot);
  }
  sharded_stats_.queries_migrated += moved;
  sharded_stats_.merge_migrated_max =
      std::max(sharded_stats_.merge_migrated_max, moved);
  flush_candidates_.insert(merged_slot);
  return merged_slot;
}

uint64_t ShardedCoordinationEngine::AdoptExtractIntoShard(
    size_t into_slot, size_t from_slot,
    const CoordinationEngine::PendingExtract& extract) {
  Shard& into = shards_[into_slot];
  const Shard& from = shards_[from_slot];
  std::vector<std::pair<VarId, VarId>> adopted_vars;
  const std::vector<QueryId> locals =
      into.engine->AdoptPending(extract, &adopted_vars);
  for (size_t j = 0; j < locals.size(); ++j) {
    // The extract's keys are this front door's global ids (AdoptIntoShard
    // planted them), so no source-table lookup is needed for ids.
    const QueryId gid = extract.keys[j];
    ENTANGLED_CHECK_EQ(static_cast<size_t>(locals[j]),
                       into.local_to_global.size());
    into.local_to_global.push_back(gid);
    locators_[static_cast<size_t>(gid)] = Locator{into_slot, locals[j]};
  }
  for (const auto& [dense, lvar] : adopted_vars) {
    // dense var -> source shard var -> global var.
    const VarId old_lvar =
        extract.original_vars[static_cast<size_t>(dense)];
    const VarId gvar = from.lvar_to_gvar[static_cast<size_t>(old_lvar)];
    if (static_cast<size_t>(lvar) >= into.lvar_to_gvar.size()) {
      into.lvar_to_gvar.resize(static_cast<size_t>(lvar) + 1, -1);
    }
    into.lvar_to_gvar[static_cast<size_t>(lvar)] = gvar;
  }
  return static_cast<uint64_t>(locals.size());
}

void ShardedCoordinationEngine::RetireShard(size_t slot, bool absorbed) {
  Shard& shard = shards_[slot];
  ENTANGLED_CHECK(shard.engine != nullptr);
  ENTANGLED_CHECK(shard.deliveries.empty());
  retired_stats_ += shard.engine->stats();
  shard.engine.reset();
  shard.local_to_global.clear();
  shard.local_to_global.shrink_to_fit();
  shard.lvar_to_gvar.clear();
  shard.lvar_to_gvar.shrink_to_fit();
  shard.group_root = -1;
  free_slots_.push_back(slot);
  --num_live_shards_;
  if (absorbed) {
    ++sharded_stats_.shards_absorbed;
  } else {
    ++sharded_stats_.shards_gced;
  }
}

// ---------------------------------------------------------------------------
// Cancellation & lookups
// ---------------------------------------------------------------------------

bool ShardedCoordinationEngine::Cancel(QueryId id) {
  CheckNotReentrant("Cancel");
  if (!IsPending(id)) return false;
  const Locator loc = locators_[static_cast<size_t>(id)];
  const bool cancelled = shards_[loc.shard].engine->Cancel(loc.local);
  ENTANGLED_CHECK(cancelled) << "shard disagreed about pending query " << id;
  pending_[static_cast<size_t>(id)] = false;
  --num_pending_;
  // Shrinking a component can make it coordinable; the shard now holds
  // dirty fragments.
  flush_candidates_.insert(loc.shard);
  MaybeGcShards({loc.shard});
  return true;
}

bool ShardedCoordinationEngine::IsPending(QueryId id) const {
  return id >= 0 && static_cast<size_t>(id) < pending_.size() &&
         pending_[static_cast<size_t>(id)];
}

std::vector<QueryId> ShardedCoordinationEngine::PendingQueries() const {
  std::vector<QueryId> pending;
  pending.reserve(num_pending_);
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i]) pending.push_back(static_cast<QueryId>(i));
  }
  return pending;
}

std::vector<QueryId> ShardedCoordinationEngine::ComponentOf(
    QueryId id) const {
  ENTANGLED_CHECK(IsPending(id)) << "query " << id << " is not pending";
  const Locator loc = locators_[static_cast<size_t>(id)];
  const Shard& shard = shards_[loc.shard];
  std::vector<QueryId> component = shard.engine->ComponentOf(loc.local);
  for (QueryId& q : component) {
    q = shard.local_to_global[static_cast<size_t>(q)];
  }
  // Local ids need not be monotone in global ids after a merge, so sort
  // to restore the ascending order ComponentOf promises.
  std::sort(component.begin(), component.end());
  return component;
}

bool ShardedCoordinationEngine::SameShard(QueryId a, QueryId b) const {
  ENTANGLED_CHECK(IsPending(a)) << "query " << a << " is not pending";
  ENTANGLED_CHECK(IsPending(b)) << "query " << b << " is not pending";
  return locators_[static_cast<size_t>(a)].shard ==
         locators_[static_cast<size_t>(b)].shard;
}

EngineStats ShardedCoordinationEngine::StatsSnapshot() const {
  EngineStats stats = front_stats_;
  stats += retired_stats_;
  for (const Shard& shard : shards_) {
    if (shard.engine != nullptr) stats += shard.engine->stats();
  }
  return stats;
}

ServiceGauges ShardedCoordinationEngine::GaugesSnapshot() const {
  ServiceGauges gauges;
  gauges.pending = num_pending_;
  gauges.live_shards = num_live_shards_;
  gauges.group_merges = sharded_stats_.group_merges;
  gauges.queries_migrated = sharded_stats_.queries_migrated;
  gauges.queries_retained = sharded_stats_.queries_retained;
  gauges.merge_events = sharded_stats_.merge_events;
  gauges.merge_migrated_max = sharded_stats_.merge_migrated_max;
  gauges.shards.reserve(num_live_shards_);
  for (size_t slot = 0; slot < shards_.size(); ++slot) {
    const Shard& shard = shards_[slot];
    if (shard.engine == nullptr) continue;
    ShardGauge row;
    row.slot = static_cast<int64_t>(slot);
    row.pending = shard.engine->num_pending();
    row.evaluations = shard.engine->stats().evaluations;
    gauges.shards.push_back(row);
  }
  return gauges;
}

// ---------------------------------------------------------------------------
// Flushing & delivery
// ---------------------------------------------------------------------------

void ShardedCoordinationEngine::OnShardDelivery(
    size_t slot, const CoordinationSolution& solution) {
  // Runs on whichever thread is flushing this shard; touches only the
  // shard's own tables and buffer, so concurrent shard flushes never
  // share state.
  Shard& shard = shards_[slot];
  BufferedDelivery delivery;
  // The inner engine's schedule keys ARE this front door's global ids,
  // so the delivery key needs no table lookup.
  delivery.key = shard.engine->last_delivery_schedule_key();
  delivery.solution.queries.reserve(solution.queries.size());
  for (QueryId local : solution.queries) {
    delivery.solution.queries.push_back(
        shard.local_to_global[static_cast<size_t>(local)]);
  }
  // Local ids lose global monotonicity once a merge lands migrated
  // queries, so restore the ascending global order a single engine's
  // deliveries report.
  std::sort(delivery.solution.queries.begin(),
            delivery.solution.queries.end());
  solution.assignment.ForEach([&](VarId lvar, const Value& value) {
    delivery.solution.assignment.emplace(
        shard.lvar_to_gvar[static_cast<size_t>(lvar)], value);
  });
  shard.deliveries.push_back(std::move(delivery));
}

size_t ShardedCoordinationEngine::DrainDeliveries(
    const std::vector<size_t>& slots) {
  // Merge-by-smallest-global-id: every shard's buffer is already in
  // nondecreasing key order (inner flushes apply deliveries that way),
  // keys collide only within one shard (a fragment reusing its parent
  // component's smallest id), and the gather preserves buffer order —
  // so a stable sort on the key reconstructs exactly the delivery
  // order a single engine over the union would have produced.
  std::vector<BufferedDelivery> merged;
  for (size_t s : slots) {
    Shard& shard = shards_[s];
    for (BufferedDelivery& d : shard.deliveries) {
      merged.push_back(std::move(d));
    }
    shard.deliveries.clear();
  }
  if (merged.empty()) return 0;
  std::stable_sort(merged.begin(), merged.end(),
                   [](const BufferedDelivery& a, const BufferedDelivery& b) {
                     return a.key < b.key;
                   });
  for (BufferedDelivery& delivery : merged) {
    for (QueryId gid : delivery.solution.queries) {
      ENTANGLED_CHECK(pending_[static_cast<size_t>(gid)])
          << "query " << gid << " delivered twice";
      pending_[static_cast<size_t>(gid)] = false;
      --num_pending_;
    }
    const uint64_t sequence = next_delivery_sequence_++;
    if (callback_) {
      const Delivery event = MakeDelivery(all_, delivery.solution, sequence);
      in_callback_ = true;
      callback_(event);
      in_callback_ = false;
    }
  }
  return merged.size();
}

size_t ShardedCoordinationEngine::Flush() {
  CheckNotReentrant("Flush");
  // Only shards touched since their last flush can hold dirty
  // components; visit those, not every slot ever created.
  std::vector<size_t> slots;
  slots.reserve(flush_candidates_.size());
  for (size_t s : flush_candidates_) {
    if (shards_[s].engine != nullptr) slots.push_back(s);
  }
  flush_candidates_.clear();
  std::sort(slots.begin(), slots.end());

  if (slots.size() > 1 && options_.shard_threads > 1 && pool_ != nullptr) {
    // Each shard is flushed by exactly one thread (its delivery buffer
    // is single-writer); inner engines may additionally fan their own
    // component waves out on the same pool via RunChunked, whose
    // caller-participation guarantees progress even when every worker
    // here is occupied by a shard task.
    for (size_t s : slots) {
      pool_->Submit([this, s] { shards_[s].engine->Flush(); });
    }
    pool_->Wait();
  } else {
    for (size_t s : slots) shards_[s].engine->Flush();
  }

  const size_t delivered = DrainDeliveries(slots);
  MaybeGcShards(slots);
  return delivered;
}

void ShardedCoordinationEngine::MaybeGcShards(
    const std::vector<size_t>& slots) {
  if (!options_.gc_empty_shards) return;
  for (size_t s : slots) {
    Shard& shard = shards_[s];
    if (shard.engine == nullptr || shard.engine->num_pending() != 0) {
      continue;
    }
    // Drained: no pending query anywhere has a footprint inside this
    // group (the sharding invariant), so its relations can revert to
    // singletons and re-bridge along future traffic.
    router_.DissolveGroup(shard.group_root);
    group_shard_.erase(shard.group_root);
    RetireShard(s, /*absorbed=*/false);
    flush_candidates_.erase(s);
  }
}

}  // namespace entangled
