#include "common/interner.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(InternerTest, InternIsIdempotent) {
  StringInterner interner;
  Symbol a = interner.Intern("flights");
  Symbol b = interner.Intern("flights");
  EXPECT_EQ(a, b);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, DistinctStringsGetDistinctSymbols) {
  StringInterner interner;
  Symbol a = interner.Intern("a");
  Symbol b = interner.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, RoundTrip) {
  StringInterner interner;
  Symbol a = interner.Intern("hotels");
  EXPECT_EQ(interner.ToString(a), "hotels");
}

TEST(InternerTest, LookupWithoutIntern) {
  StringInterner interner;
  EXPECT_EQ(interner.Lookup("ghost"), kInvalidSymbol);
  interner.Intern("ghost");
  EXPECT_NE(interner.Lookup("ghost"), kInvalidSymbol);
}

TEST(InternerTest, ContainsChecksRange) {
  StringInterner interner;
  Symbol a = interner.Intern("x");
  EXPECT_TRUE(interner.Contains(a));
  EXPECT_FALSE(interner.Contains(kInvalidSymbol));
  EXPECT_FALSE(interner.Contains(a + 1));
}

TEST(InternerTest, EmptyStringIsInternable) {
  StringInterner interner;
  Symbol empty = interner.Intern("");
  EXPECT_EQ(interner.ToString(empty), "");
}

TEST(InternerDeathTest, ToStringOnUnknownSymbolAborts) {
  StringInterner interner;
  EXPECT_DEATH(interner.ToString(3), "unknown symbol");
}

}  // namespace
}  // namespace entangled
