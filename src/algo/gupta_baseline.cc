#include "algo/gupta_baseline.h"

#include <optional>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "core/coordination_graph.h"
#include "core/properties.h"
#include "core/unify.h"
#include "db/evaluator.h"
#include "graph/reachability.h"

namespace entangled {

GuptaBaseline::GuptaBaseline(const Database* db) : db_(db) {
  ENTANGLED_CHECK(db != nullptr);
}

Result<CoordinationSolution> GuptaBaseline::Solve(const QuerySet& set) {
  stats_.Reset();
  if (set.empty()) {
    return Status::NotFound("no coordinating set: the query set is empty");
  }
  WallTimer total_timer;
  WallTimer graph_timer;
  ExtendedCoordinationGraph ecg(set);
  if (!IsSafeSet(set, ecg)) {
    return Status::FailedPrecondition(
        "Gupta et al.'s algorithm requires a safe set (Definition 2)");
  }
  Digraph graph = ecg.Collapse();
  if (!IsStronglyConnected(graph)) {
    return Status::FailedPrecondition(
        "Gupta et al.'s algorithm requires a unique set (Definition 3)");
  }
  stats_.graph_nodes = static_cast<uint64_t>(graph.num_nodes());
  stats_.graph_edges = static_cast<uint64_t>(graph.num_edges());
  stats_.num_sccs = 1;
  stats_.graph_seconds = graph_timer.ElapsedSeconds();

  // MGU across every (postcondition, head) pair of the extended graph.
  Substitution subst(set.num_vars());
  for (const ExtendedEdge& edge : ecg.edges()) {
    const Atom& post = set.query(edge.from).postconditions[edge.post_index];
    const Atom& head = set.query(edge.to).head[edge.head_index];
    ++stats_.unifications;
    if (!subst.UnifyAtoms(post, head)) {
      stats_.total_seconds = total_timer.ElapsedSeconds();
      return Status::NotFound("no coordinating set: unification failed");
    }
  }

  // One combined query over all bodies.
  std::vector<QueryId> all;
  std::vector<Atom> body;
  std::unordered_set<std::string> seen;
  for (const EntangledQuery& query : set.queries()) {
    all.push_back(query.id);
    for (const Atom& atom : query.body) {
      Atom applied = subst.Apply(atom);
      std::string key = applied.ToString();
      if (seen.insert(std::move(key)).second) {
        body.push_back(std::move(applied));
      }
    }
  }
  Evaluator evaluator(db_);
  const uint64_t before = db_->stats().conjunctive_queries;
  std::optional<Binding> witness = evaluator.FindOne(body);
  stats_.db_queries = db_->stats().conjunctive_queries - before;
  if (!witness.has_value()) {
    stats_.total_seconds = total_timer.ElapsedSeconds();
    return Status::NotFound(
        "no coordinating set: the combined query has no witness");
  }
  CoordinationSolution solution;
  solution.queries = all;
  std::optional<Binding> assignment =
      CompleteAssignment(*db_, set, all, &subst, *witness);
  stats_.total_seconds = total_timer.ElapsedSeconds();
  if (!assignment.has_value()) {
    return Status::NotFound(
        "no coordinating set: the database domain is empty");
  }
  solution.assignment = std::move(*assignment);
  return solution;
}

}  // namespace entangled
