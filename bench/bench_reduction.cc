// Ablation A4 — the hardness is real: executing the Theorem-1
// reduction.
//
// Solving 3SAT through entangled-query coordination (GenericSolver on
// the Theorem-1 encoding) versus solving the same formula directly with
// DPLL.  Every conjunctive query in the encoding is trivial (the
// database is D = {0,1}); the blow-up lives entirely in choosing the
// coordinating set, exactly as Theorem 1 isolates it.  Expect the
// coordination route to fall behind quickly as formulas grow — this is
// the paper's motivation for restricting to tractable fragments.

#include <benchmark/benchmark.h>

#include "algo/generic_solver.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "reductions/dpll.h"
#include "reductions/random_sat.h"
#include "reductions/theorem1.h"

namespace entangled {
namespace {

constexpr int kSeedsPerSize = 3;
constexpr int kClauseRatio = 3;
constexpr uint64_t kSearchBudget = 2'000'000;  // expansions before giving up

struct Sample {
  double dpll_ms = 0;
  double coordination_ms = 0;
  int agreements = 0;   // decided instances matching DPLL
  int decided = 0;      // instances the coordination route finished
  int instances = 0;
};

Sample RunSize(int num_vars) {
  Sample sample;
  for (int seed = 1; seed <= kSeedsPerSize; ++seed) {
    Rng rng(static_cast<uint64_t>(num_vars * 1000 + seed));
    CnfFormula formula =
        Random3Sat(num_vars, kClauseRatio * num_vars, &rng);

    DpllSolver dpll;
    WallTimer dpll_timer;
    bool dpll_sat = dpll.Solve(formula).has_value();
    sample.dpll_ms += dpll_timer.ElapsedMillis();

    QuerySet set;
    Database db;
    Theorem1Encoding encoding = EncodeTheorem1(formula, &set, &db);
    GenericSolverOptions options;
    options.max_expansions = kSearchBudget;
    GenericSolver solver(&db, options);
    WallTimer coordination_timer;
    auto result = solver.FindContaining(set, encoding.clause_query);
    sample.coordination_ms += coordination_timer.ElapsedMillis();
    ENTANGLED_CHECK(result.ok() || result.status().IsNotFound() ||
                    result.status().IsOutOfRange())
        << result.status();

    ++sample.instances;
    if (!result.status().IsOutOfRange()) {
      ++sample.decided;
      if (result.ok() == dpll_sat) ++sample.agreements;
    }
  }
  sample.dpll_ms /= sample.instances;
  sample.coordination_ms /= sample.instances;
  return sample;
}

void PrintPaperSeries() {
  benchutil::PrintSeriesHeader(
      "Ablation A4: 3SAT direct (DPLL) vs through coordination "
      "(Theorem-1 encoding, GenericSolver); clause ratio 3.0, budget " +
          std::to_string(kSearchBudget) + " expansions",
      {"num_vars", "num_queries", "dpll_ms", "coordination_ms",
       "decided_fraction", "agreement_on_decided"});
  for (int num_vars : {3, 4, 5, 6}) {
    Sample sample = RunSize(num_vars);
    benchutil::PrintRow(
        {static_cast<double>(num_vars),
         static_cast<double>(1 + 3 * num_vars), sample.dpll_ms,
         sample.coordination_ms,
         static_cast<double>(sample.decided) / sample.instances,
         sample.decided == 0
             ? 1.0
             : static_cast<double>(sample.agreements) / sample.decided});
  }
  benchutil::PrintNote(
      "expected: agreement 1.0 whenever decided; the coordination route "
      "explodes (or exhausts its budget) orders of magnitude before "
      "DPLL notices the instance - Theorem 1 executed");
}

void BM_Theorem1Coordination(benchmark::State& state) {
  const int num_vars = static_cast<int>(state.range(0));
  Rng rng(static_cast<uint64_t>(num_vars));
  CnfFormula formula = Random3Sat(num_vars, kClauseRatio * num_vars, &rng);
  QuerySet set;
  Database db;
  Theorem1Encoding encoding = EncodeTheorem1(formula, &set, &db);
  GenericSolverOptions options;
  options.max_expansions = kSearchBudget;
  for (auto _ : state) {
    GenericSolver solver(&db, options);
    auto result = solver.FindContaining(set, encoding.clause_query);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_Theorem1Coordination)->Arg(3)->Arg(5);

void BM_Dpll(benchmark::State& state) {
  const int num_vars = static_cast<int>(state.range(0));
  Rng rng(static_cast<uint64_t>(num_vars));
  CnfFormula formula = Random3Sat(num_vars, kClauseRatio * num_vars, &rng);
  for (auto _ : state) {
    DpllSolver solver;
    benchmark::DoNotOptimize(solver.Solve(formula).has_value());
  }
}
BENCHMARK(BM_Dpll)->Arg(3)->Arg(5);

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
