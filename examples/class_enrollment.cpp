// Course enrollment with generalized coordination requirements.
//
// The paper's introduction motivates "enrolling in a class which one of
// your friends is also taking"; its §5 Discussion sketches two
// generalizations this example exercises:
//   * partners drawn from SEVERAL binary relations (friends vs. lab
//     partners), and
//   * "at least k friends" requirements — which the paper notes are
//     NOT even expressible in the entangled-query syntax, yet drop
//     straight into the consistent algorithm's cleaning phase.
//
// Build & run:  ./build/examples/class_enrollment

#include <iostream>

#include "algo/consistent.h"
#include "example_common.h"

using namespace entangled;
using namespace entangled::examples;

int main() {
  Database db;
  // Sections(section_id, course, slot, campus): students coordinate on
  // the course AND the time slot (they want to sit in the same room);
  // the campus is a personal constraint.
  Relation* sections =
      *db.CreateRelation("Sections", {"sid", "course", "slot", "campus"});
  int64_t sid = 100;
  for (const char* course : {"Databases", "Compilers", "Crypto"}) {
    for (const char* slot : {"Mon9am", "Wed2pm"}) {
      InsertOrDie(sections, {Value::Int(sid++), Value::Str(course),
                        Value::Str(slot), Value::Str("North")});
      InsertOrDie(sections, {Value::Int(sid++), Value::Str(course),
                        Value::Str(slot), Value::Str("South")});
    }
  }

  Relation* friends = *db.CreateRelation("Friends", {"user", "friend"});
  Relation* labmates = *db.CreateRelation("LabMates", {"user", "friend"});
  auto befriend = [&](Relation* r, const char* a, const char* b) {
    InsertOrDie(r, {Value::Str(a), Value::Str(b)});
    InsertOrDie(r, {Value::Str(b), Value::Str(a)});
  };
  befriend(friends, "Ada", "Barbara");
  befriend(friends, "Ada", "Grace");
  befriend(friends, "Barbara", "Grace");
  befriend(friends, "Grace", "Margaret");
  befriend(labmates, "Ada", "Margaret");
  befriend(labmates, "Barbara", "Margaret");

  ConsistentSchema schema;
  schema.thing_relation = "Sections";
  schema.friends_relation = "Friends";
  schema.coordination_attrs = {1, 2};  // course, slot

  std::vector<ConsistentQuery> students(4);
  // Ada: any course, but wants TWO friends in the room and her lab
  // mate too.
  students[0].user = "Ada";
  students[0].self_spec = {std::nullopt, std::nullopt, std::nullopt};
  students[0].partners = {PartnerSpec::KFriends(2),
                          PartnerSpec::AnyFriend("LabMates")};
  // Barbara: must be Databases, any friend.
  students[1].user = "Barbara";
  students[1].self_spec = {Value::Str("Databases"), std::nullopt,
                           std::nullopt};
  students[1].partners = {PartnerSpec::AnyFriend()};
  // Grace: any course but only on the North campus, any friend.
  students[2].user = "Grace";
  students[2].self_spec = {std::nullopt, std::nullopt,
                           Value::Str("North")};
  students[2].partners = {PartnerSpec::AnyFriend()};
  // Margaret: anything, as long as Grace is there.
  students[3].user = "Margaret";
  students[3].self_spec = {std::nullopt, std::nullopt, std::nullopt};
  students[3].partners = {PartnerSpec::User("Grace")};

  PrintBanner("Class enrollment with k-friends requirements");
  for (const ConsistentQuery& q : students) {
    std::cout << "  " << q.user << " wants";
    std::cout << (q.self_spec[0] ? " " + q.self_spec[0]->ToString()
                                 : std::string(" any course"));
    if (q.self_spec[2]) std::cout << " on campus " << *q.self_spec[2];
    for (const PartnerSpec& p : q.partners) {
      std::cout << ", with " << p.ToString();
    }
    std::cout << "\n";
  }

  ConsistentCoordinator coordinator(&db, schema);
  auto plan = coordinator.Solve(students);
  if (!plan.ok()) {
    std::cerr << "\nno joint enrollment: " << plan.status() << "\n";
    return 1;
  }

  std::cout << "\nEnrolled section: " << plan->agreed_value[0] << " at "
            << plan->agreed_value[1] << "  (" << plan->size() << " of "
            << students.size() << " students)\n";
  for (const ConsistentMember& member : plan->members) {
    RowView row = sections->row(member.self_row);
    std::cout << "  " << students[member.query_index].user
              << " -> section " << row[0] << " (" << row[3]
              << " campus), classmates:";
    for (const auto& group : member.partner_queries) {
      for (size_t j : group) std::cout << " " << students[j].user;
    }
    std::cout << "\n";
  }

  // Cross-check through the generic machinery (the k-friends part is a
  // relaxation there, see algo/consistent.h).
  QuerySet general;
  ConsistentConversion conversion =
      ToEntangledQueries(schema, students, &general);
  CoordinationSolution translated =
      ToCoordinationSolution(db, schema, students, conversion, *plan);
  return ReportValidation(ValidateSolution(db, general, translated));
}
