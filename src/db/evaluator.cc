#include "db/evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"

namespace entangled {
namespace {

/// Candidate row ids for `atom` under the current bindings: the most
/// selective bound column's index bucket, probed once per bound
/// column.  Returns nullptr to mean "all rows" (avoids materializing
/// 0..n-1).  The returned bucket reference is borrowed straight from
/// the relation's index cache — stable for the whole search, since
/// Insert (the only writer) must not run concurrently with readers.
const std::vector<RowId>* Candidates(const Relation& relation,
                                     const Atom& atom,
                                     const Binding& binding) {
  const std::vector<RowId>* best = nullptr;
  size_t best_bucket = relation.size() + 1;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    const Value* bound = nullptr;
    if (term.is_constant()) {
      bound = &term.constant();
    } else {
      bound = binding.Find(term.var());
    }
    if (bound == nullptr) continue;
    const std::vector<RowId>& bucket = relation.Probe(i, *bound);
    if (bucket.size() < best_bucket) {
      best_bucket = bucket.size();
      best = &bucket;
    }
    if (best_bucket == 0) break;  // cannot get more selective
  }
  return best;
}

/// Largest variable id occurring in `body`, or -1.
VarId MaxVar(const std::vector<Atom>& body) {
  VarId max_var = -1;
  for (const Atom& atom : body) {
    for (const Term& term : atom.terms) {
      if (term.is_variable() && term.var() > max_var) max_var = term.var();
    }
  }
  return max_var;
}

}  // namespace

Evaluator::Evaluator(const Database* db) : db_(db) {
  ENTANGLED_CHECK(db != nullptr);
}

Status Evaluator::Validate(const std::vector<Atom>& body) const {
  for (const Atom& atom : body) {
    const Relation* relation = db_->Find(atom.relation);
    if (relation == nullptr) {
      return Status::NotFound("body atom ", atom.ToString(),
                              " references unknown relation ", atom.relation);
    }
    if (relation->arity() != atom.arity()) {
      return Status::InvalidArgument(
          "body atom ", atom.ToString(), " has arity ", atom.arity(),
          " but relation ", atom.relation, " has arity ", relation->arity());
    }
  }
  return Status::OK();
}

std::vector<size_t> Evaluator::OrderAtoms(
    const std::vector<Atom>& body,
    const std::vector<const Relation*>& relations,
    const Binding& initial) const {
  // Ordering only matters when there is a choice; point lookups (one
  // atom) skip the greedy machinery and its scratch vectors entirely.
  if (body.size() <= 1) {
    return std::vector<size_t>(body.size(), 0);
  }
  // Greedy static join order: repeatedly pick the atom with the most
  // bound positions (constants + already-bound variables); break ties by
  // smaller relation.  Keeps the backtracking join selective.
  // Scratch is thread-local so steady-state ordering allocates nothing
  // (one FindOne per coordination probe makes this a per-query cost).
  static thread_local std::vector<bool> bound;
  static thread_local std::vector<bool> used;
  const VarId max_var = MaxVar(body);
  bound.assign(static_cast<size_t>(max_var + 1), false);
  initial.ForEach([&](VarId var, const Value&) {
    if (var <= max_var) bound[static_cast<size_t>(var)] = true;
  });

  std::vector<size_t> order;
  order.reserve(body.size());
  used.assign(body.size(), false);
  for (size_t step = 0; step < body.size(); ++step) {
    size_t best = body.size();
    size_t best_bound_count = 0;
    size_t best_size = 0;
    for (size_t i = 0; i < body.size(); ++i) {
      if (used[i]) continue;
      size_t bound_count = 0;
      for (const Term& term : body[i].terms) {
        if (term.is_constant() ||
            (term.is_variable() && bound[static_cast<size_t>(term.var())])) {
          ++bound_count;
        }
      }
      size_t size = relations[i]->size();
      if (best == body.size() || bound_count > best_bound_count ||
          (bound_count == best_bound_count && size < best_size)) {
        best = i;
        best_bound_count = bound_count;
        best_size = size;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (const Term& term : body[best].terms) {
      if (term.is_variable()) bound[static_cast<size_t>(term.var())] = true;
    }
  }
  return order;
}

template <typename Callback>
void Evaluator::Search(const std::vector<Atom>& body, const Binding& initial,
                       Callback&& on_solution) const {
  // Resolve each atom's relation once: the search below never hashes a
  // relation name again, no matter how many rows it visits.  Scratch is
  // thread-local (Search never re-enters itself: the callbacks are the
  // internal FindOne / EnumerateDistinct / CountSolutions lambdas).
  static thread_local std::vector<const Relation*> relations;
  relations.clear();
  relations.reserve(body.size());
  for (const Atom& atom : body) {
    const Relation* relation = db_->Find(atom.relation);
    ENTANGLED_CHECK(relation != nullptr)
        << "unknown relation " << atom.relation << "; call Validate() first";
    ENTANGLED_CHECK_EQ(relation->arity(), atom.arity())
        << "arity mismatch on " << atom.ToString();
    relations.push_back(relation);
  }

  std::vector<size_t> order = OrderAtoms(body, relations, initial);
  Binding binding = initial;
  binding.Reserve(static_cast<size_t>(MaxVar(body) + 1));
  // One shared trail instead of a per-frame vector: each frame unwinds
  // to its saved mark, so binding a row's variables costs no
  // allocation.
  static thread_local std::vector<VarId> trail;
  trail.clear();
  // Tallied locally and added to the shared (atomic) counters once per
  // query: an atomic fetch_add per candidate row in the innermost join
  // loop would have every parallel-flush worker ping-ponging one cache
  // line of the shared Database.
  uint64_t rows_matched = 0;

  auto recurse = [&](auto&& self, size_t depth) -> bool {
    if (depth == body.size()) return on_solution(binding);
    const Atom& atom = body[order[depth]];
    const Relation& relation = *relations[order[depth]];
    const size_t num_terms = atom.terms.size();

    auto try_row = [&](RowView row) -> bool {
      ++rows_matched;
      const size_t mark = trail.size();
      bool match = true;
      for (size_t i = 0; i < num_terms; ++i) {
        const Term& term = atom.terms[i];
        if (term.is_constant()) {
          match = (term.constant() == row[i]);
        } else {
          const VarId var = term.var();
          if (binding.emplace(var, row[i])) {
            trail.push_back(var);
          } else {
            match = (binding.at(var) == row[i]);
          }
        }
        if (!match) break;
      }
      bool stop = match && self(self, depth + 1);
      while (trail.size() > mark) {
        binding.erase(trail.back());
        trail.pop_back();
      }
      return stop;
    };

    const std::vector<RowId>* candidates =
        Candidates(relation, atom, binding);
    if (candidates == nullptr) {
      for (RowView row : relation.rows()) {
        if (try_row(row)) return true;
      }
    } else {
      for (RowId id : *candidates) {
        if (try_row(relation.row(id))) return true;
      }
    }
    return false;
  };
  recurse(recurse, 0);
  db_->stats().rows_matched += rows_matched;
}

std::optional<Binding> Evaluator::FindOne(const std::vector<Atom>& body,
                                          const Binding& initial) const {
  ++db_->stats().conjunctive_queries;
  std::optional<Binding> result;
  Search(body, initial, [&](Binding& solution) {
    // Steal the witness: the search stops here, and its unwinding
    // erases against the (empty) moved-from binding, which is a no-op.
    result = std::move(solution);
    return true;  // stop at the first witness (choose-1 semantics)
  });
  return result;
}

bool Evaluator::Satisfiable(const std::vector<Atom>& body,
                            const Binding& initial) const {
  return FindOne(body, initial).has_value();
}

std::vector<std::vector<Value>> Evaluator::EnumerateDistinct(
    const std::vector<Atom>& body, const std::vector<VarId>& projection,
    const Binding& initial) const {
  ++db_->stats().enumerate_queries;
  std::vector<std::vector<Value>> result;
  std::unordered_set<std::vector<Value>, VectorHash> seen;
  Search(body, initial, [&](const Binding& solution) {
    std::vector<Value> key;
    key.reserve(projection.size());
    for (VarId var : projection) {
      const Value* value = solution.Find(var);
      ENTANGLED_CHECK(value != nullptr)
          << "projection variable ?" << var << " does not occur in the body";
      key.push_back(*value);
    }
    if (seen.insert(key).second) result.push_back(std::move(key));
    return false;  // keep enumerating
  });
  return result;
}

uint64_t Evaluator::CountSolutions(const std::vector<Atom>& body,
                                   const Binding& initial) const {
  ++db_->stats().enumerate_queries;
  uint64_t count = 0;
  Search(body, initial, [&](const Binding&) {
    ++count;
    return false;
  });
  return count;
}

}  // namespace entangled
