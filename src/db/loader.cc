#include "db/loader.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace entangled {
namespace {

/// Minimal cursor over the .edb text with line/column tracking.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%' || (c == '/' && pos_ + 1 < text_.size() &&
                              text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipWhitespaceAndComments();
    return pos_ >= text_.size();
  }

  bool Consume(char expected) {
    SkipWhitespaceAndComments();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(char expected, const char* context) {
    if (Consume(expected)) return Status::OK();
    return Error(std::string("expected '") + expected + "' " + context);
  }

  Result<std::string> Identifier() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      Advance();
    }
    if (start == pos_) return Error("expected an identifier");
    return text_.substr(start, pos_ - start);
  }

  /// Parses a tuple value: integer, quoted string, or bare identifier.
  Result<Value> ParseValue() {
    SkipWhitespaceAndComments();
    if (pos_ >= text_.size()) return Error("expected a value");
    char c = text_[pos_];
    if (c == '\'' || c == '"') {
      char quote = c;
      Advance();
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        if (text_[pos_] == '\n') return Error("unterminated string");
        out.push_back(text_[pos_]);
        Advance();
      }
      if (pos_ >= text_.size()) return Error("unterminated string");
      Advance();
      return Value::Str(std::move(out));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      size_t start = pos_;
      if (c == '-') Advance();
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Advance();
      }
      return Value::Int(std::stoll(text_.substr(start, pos_ - start)));
    }
    auto ident = Identifier();
    if (!ident.ok()) return ident.status();
    return Value::Str(std::move(ident).value());
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("line ", line_, ":", column_, ": ",
                                   message);
  }

 private:
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Status LoadDatabase(const std::string& text, Database* db) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  Cursor cursor(text);
  while (!cursor.AtEnd()) {
    auto keyword = cursor.Identifier();
    if (!keyword.ok()) return keyword.status();
    if (*keyword != "relation") {
      return cursor.Error("expected the keyword 'relation', found '" +
                          *keyword + "'");
    }
    auto name = cursor.Identifier();
    if (!name.ok()) return name.status();

    ENTANGLED_RETURN_IF_ERROR(
        cursor.Expect('(', "to open the column list"));
    std::vector<std::string> columns;
    if (!cursor.Consume(')')) {
      while (true) {
        auto column = cursor.Identifier();
        if (!column.ok()) return column.status();
        columns.push_back(std::move(column).value());
        if (cursor.Consume(')')) break;
        ENTANGLED_RETURN_IF_ERROR(
            cursor.Expect(',', "between column names"));
      }
    }
    Relation* relation = db->FindMutable(*name);
    if (relation == nullptr) {
      auto created = db->CreateRelation(*name, columns);
      if (!created.ok()) return created.status();
      relation = *created;
    } else if (relation->arity() != columns.size()) {
      return cursor.Error("relation " + *name + " redeclared with arity " +
                          std::to_string(columns.size()) + " (was " +
                          std::to_string(relation->arity()) + ")");
    }

    ENTANGLED_RETURN_IF_ERROR(
        cursor.Expect('{', "to open the tuple block"));
    while (!cursor.Consume('}')) {
      ENTANGLED_RETURN_IF_ERROR(cursor.Expect('(', "to open a tuple"));
      Tuple tuple;
      if (!cursor.Consume(')')) {
        while (true) {
          auto value = cursor.ParseValue();
          if (!value.ok()) return value.status();
          tuple.push_back(std::move(value).value());
          if (cursor.Consume(')')) break;
          ENTANGLED_RETURN_IF_ERROR(
              cursor.Expect(',', "between tuple values"));
        }
      }
      if (tuple.size() != relation->arity()) {
        return cursor.Error("tuple " + TupleToString(tuple) +
                            " does not match the arity of " + *name);
      }
      ENTANGLED_RETURN_IF_ERROR(relation->Insert(std::move(tuple)));
    }
  }
  return Status::OK();
}

Status LoadDatabaseFile(const std::string& path, Database* db) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return LoadDatabase(*text, db);
}

std::string DumpDatabase(const Database& db) {
  std::ostringstream out;
  for (const std::string& name : db.relation_names()) {
    const Relation& relation = *db.Find(name);
    out << "relation " << name << "(";
    for (size_t c = 0; c < relation.column_names().size(); ++c) {
      if (c > 0) out << ", ";
      out << relation.column_names()[c];
    }
    out << ") {\n";
    for (RowView row : relation.rows()) {
      out << "  " << TupleToString(row) << "\n";
    }
    out << "}\n";
  }
  return out.str();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream input(path, std::ios::binary);
  if (!input) {
    return Status::NotFound("cannot open file ", path);
  }
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return buffer.str();
}

}  // namespace entangled
