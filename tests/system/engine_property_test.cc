// Engine order-independence: for workloads made of independent
// coordinating groups, the set of retired queries after the full stream
// must not depend on arrival order or on the evaluation policy
// (eager per-arrival vs one final flush).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

/// A workload of independent groups: pairs (2-cycles), triangles
/// (3-cycles) and loners, each over its own answer relation, plus some
/// forever-stuck queries.  Returns the query texts and, parallel to
/// them, whether each query should end up coordinated.
struct Stream {
  std::vector<std::string> texts;
  std::vector<bool> should_coordinate;
};

Stream MakeStream(uint64_t seed) {
  Rng rng(seed);
  Stream stream;
  int group = 0;
  size_t num_groups = 3 + rng.NextBounded(4);
  for (size_t g = 0; g < num_groups; ++g) {
    const std::string rel = "G" + std::to_string(group++);
    const std::string handle =
        "'user" + std::to_string(rng.NextBounded(8)) + "'";
    switch (rng.NextBounded(4)) {
      case 0:  // loner
        stream.texts.push_back(rel + "solo: { } " + rel +
                               "(s) :- Users(s, " + handle + ").");
        stream.should_coordinate.push_back(true);
        break;
      case 1:  // stuck: postcondition nobody answers
        stream.texts.push_back(rel + "stuck: { Nobody" + rel +
                               "(m) } " + rel + "(s) :- Users(s, " +
                               handle + ").");
        stream.should_coordinate.push_back(false);
        break;
      case 2:  // pair
        stream.texts.push_back(rel + "a: { " + rel + "(B, x) } " + rel +
                               "(A, x) :- Users(x, " + handle + ").");
        stream.texts.push_back(rel + "b: { " + rel + "(A, y) } " + rel +
                               "(B, y) :- Users(y, " + handle + ").");
        stream.should_coordinate.push_back(true);
        stream.should_coordinate.push_back(true);
        break;
      default:  // triangle
        stream.texts.push_back(rel + "a: { " + rel + "(B, x) } " + rel +
                               "(A, x) :- Users(x, " + handle + ").");
        stream.texts.push_back(rel + "b: { " + rel + "(Cc, y) } " + rel +
                               "(B, y) :- Users(y, " + handle + ").");
        stream.texts.push_back(rel + "c: { " + rel + "(A, z) } " + rel +
                               "(Cc, z) :- Users(z, " + handle + ").");
        for (int i = 0; i < 3; ++i) stream.should_coordinate.push_back(true);
        break;
    }
  }
  return stream;
}

/// Runs the stream in the given order; returns the sorted names of the
/// queries that got coordinated.
std::vector<std::string> RunStream(const Database& db,
                                   const Stream& stream,
                                   const std::vector<size_t>& order,
                                   bool eager) {
  EngineOptions options;
  options.evaluate_every = eager ? 1 : 0;
  CoordinationEngine engine(&db, options);
  std::vector<std::string> coordinated;
  engine.set_delivery_callback([&](const Delivery& delivery) {
    for (const DeliveredQuery& q : delivery.queries) {
      coordinated.push_back(q.name);
    }
  });
  for (size_t index : order) {
    auto id = engine.Submit(stream.texts[index]);
    EXPECT_TRUE(id.ok()) << stream.texts[index] << ": " << id.status();
  }
  if (!eager) engine.Flush();
  std::sort(coordinated.begin(), coordinated.end());
  return coordinated;
}

class EngineOrderIndependence : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(EngineOrderIndependence, RetirementIsOrderAndPolicyInvariant) {
  Database db;
  ASSERT_TRUE(InstallSocialTable(&db, "Users", 16).ok());
  Stream stream = MakeStream(GetParam() * 331);

  // Expected coordinated names straight from the generator.
  std::vector<std::string> expected;
  for (size_t i = 0; i < stream.texts.size(); ++i) {
    if (stream.should_coordinate[i]) {
      std::string name = stream.texts[i].substr(
          0, stream.texts[i].find(':'));
      expected.push_back(name);
    }
  }
  std::sort(expected.begin(), expected.end());

  std::vector<size_t> order(stream.texts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  Rng rng(GetParam() * 17);
  for (int shuffle = 0; shuffle < 4; ++shuffle) {
    EXPECT_EQ(RunStream(db, stream, order, /*eager=*/true), expected)
        << "eager, shuffle " << shuffle;
    EXPECT_EQ(RunStream(db, stream, order, /*eager=*/false), expected)
        << "batched, shuffle " << shuffle;
    rng.Shuffle(&order);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, EngineOrderIndependence,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace entangled
