#include "core/validator.h"

#include <gtest/gtest.h>

#include "core/parser.h"

namespace entangled {
namespace {

/// Gwyneth/Chris fixture (§2.1): two queries, Flights(101, Zurich).
class ValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* flights = *db_.CreateRelation("Flights", {"id", "dest"});
    ASSERT_TRUE(
        flights->Insert({Value::Int(101), Value::Str("Zurich")}).ok());
    ASSERT_TRUE(
        flights->Insert({Value::Int(102), Value::Str("Paris")}).ok());
    auto ids = ParseQueries(
        "q1: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).\n"
        "q2: { } R(Chris, y) :- Flights(y, Zurich).",
        &set_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    q1_ = (*ids)[0];
    q2_ = (*ids)[1];
    x_ = set_.query(q1_).head[0].terms[1].var();
    y_ = set_.query(q2_).head[0].terms[1].var();
  }

  Database db_;
  QuerySet set_;
  QueryId q1_, q2_;
  VarId x_, y_;
};

TEST_F(ValidatorTest, PairWithSharedFlightIsValid) {
  CoordinationSolution solution;
  solution.queries = {q1_, q2_};
  solution.assignment.emplace(x_, Value::Int(101));
  solution.assignment.emplace(y_, Value::Int(101));
  EXPECT_TRUE(ValidateSolution(db_, set_, solution).ok());
}

TEST_F(ValidatorTest, DifferentFlightsViolateCondition3) {
  // q1's postcondition R(Chris, 101) has no matching grounded head when
  // Chris flies 102... but 102 goes to Paris so condition 2 fires
  // first; use two Zurich flights to isolate condition 3.
  Relation* flights = db_.FindMutable("Flights");
  ASSERT_TRUE(flights->Insert({Value::Int(103), Value::Str("Zurich")}).ok());
  CoordinationSolution solution;
  solution.queries = {q1_, q2_};
  solution.assignment.emplace(x_, Value::Int(101));
  solution.assignment.emplace(y_, Value::Int(103));
  Status status = ValidateSolution(db_, set_, solution);
  ASSERT_TRUE(status.IsFailedPrecondition());
  EXPECT_NE(status.message().find("condition (3)"), std::string::npos);
}

TEST_F(ValidatorTest, BodyAtomNotInDatabaseViolatesCondition2) {
  CoordinationSolution solution;
  solution.queries = {q1_, q2_};
  solution.assignment.emplace(x_, Value::Int(102));  // Paris, not Zurich
  solution.assignment.emplace(y_, Value::Int(102));
  Status status = ValidateSolution(db_, set_, solution);
  ASSERT_TRUE(status.IsFailedPrecondition());
  EXPECT_NE(status.message().find("condition (2)"), std::string::npos);
}

TEST_F(ValidatorTest, MissingAssignmentViolatesCondition1) {
  CoordinationSolution solution;
  solution.queries = {q1_, q2_};
  solution.assignment.emplace(x_, Value::Int(101));
  Status status = ValidateSolution(db_, set_, solution);
  ASSERT_TRUE(status.IsFailedPrecondition());
  EXPECT_NE(status.message().find("condition (1)"), std::string::npos);
}

TEST_F(ValidatorTest, EmptySubsetRejected) {
  CoordinationSolution solution;
  EXPECT_TRUE(ValidateSolution(db_, set_, solution).IsInvalidArgument());
}

TEST_F(ValidatorTest, DuplicateQueryRejected) {
  CoordinationSolution solution;
  solution.queries = {q2_, q2_};
  solution.assignment.emplace(y_, Value::Int(101));
  EXPECT_TRUE(ValidateSolution(db_, set_, solution).IsInvalidArgument());
}

TEST_F(ValidatorTest, SingletonWithoutPostconditionsIsValid) {
  CoordinationSolution solution;
  solution.queries = {q2_};
  solution.assignment.emplace(y_, Value::Int(101));
  EXPECT_TRUE(ValidateSolution(db_, set_, solution).ok());
}

TEST_F(ValidatorTest, SingletonWithUnmetPostconditionInvalid) {
  CoordinationSolution solution;
  solution.queries = {q1_};
  solution.assignment.emplace(x_, Value::Int(101));
  // R(Chris, 101) is not among q1's own heads.
  EXPECT_TRUE(ValidateSolution(db_, set_, solution).IsFailedPrecondition());
}

TEST_F(ValidatorTest, WitnessSearchFindsThePair) {
  auto witness = FindCoordinatingWitness(db_, set_, {q1_, q2_});
  ASSERT_TRUE(witness.has_value());
  // Whatever flight was chosen, the full solution must validate.
  CoordinationSolution solution;
  solution.queries = {q1_, q2_};
  solution.assignment = *witness;
  EXPECT_TRUE(ValidateSolution(db_, set_, solution).ok());
  EXPECT_EQ(witness->at(x_), witness->at(y_));
}

TEST_F(ValidatorTest, WitnessSearchRejectsLoneQ1) {
  EXPECT_FALSE(FindCoordinatingWitness(db_, set_, {q1_}).has_value());
  EXPECT_TRUE(FindCoordinatingWitness(db_, set_, {q2_}).has_value());
}

TEST_F(ValidatorTest, WitnessSearchFailsWhenNoFlight) {
  Database empty_db;
  ASSERT_TRUE(empty_db.CreateRelation("Flights", {"id", "dest"}).ok());
  EXPECT_FALSE(
      FindCoordinatingWitness(empty_db, set_, {q1_, q2_}).has_value());
}

TEST_F(ValidatorTest, GroundedHeadsCarryTheAnswer) {
  auto witness = FindCoordinatingWitness(db_, set_, {q1_, q2_});
  ASSERT_TRUE(witness.has_value());
  CoordinationSolution solution{{q1_, q2_}, *witness};
  std::vector<Atom> heads = solution.GroundedHeads(set_, q1_);
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0].relation, "R");
  EXPECT_EQ(heads[0].terms[0], Term::Str("Gwyneth"));
  EXPECT_EQ(heads[0].terms[1], Term::Int(101));
}

TEST_F(ValidatorTest, SolutionToStringMentionsQueriesAndValues) {
  auto witness = FindCoordinatingWitness(db_, set_, {q1_, q2_});
  ASSERT_TRUE(witness.has_value());
  CoordinationSolution solution{{q1_, q2_}, *witness};
  std::string rendered = SolutionToString(set_, solution);
  EXPECT_NE(rendered.find("q1"), std::string::npos);
  EXPECT_NE(rendered.find("101"), std::string::npos);
}

/// A postcondition can be satisfied by the query's own head.
TEST(ValidatorSelfTest, SelfSatisfiedPostcondition) {
  Database db;
  Relation* d = *db.CreateRelation("D", {"v"});
  ASSERT_TRUE(d->Insert({Value::Int(1)}).ok());
  QuerySet set;
  auto id = ParseQuery("q: { H(x) } H(x) :- D(x).", &set);
  ASSERT_TRUE(id.ok());
  auto witness = FindCoordinatingWitness(db, set, {*id});
  ASSERT_TRUE(witness.has_value());
  CoordinationSolution solution{{*id}, *witness};
  EXPECT_TRUE(ValidateSolution(db, set, solution).ok());
}

/// Head-only variables may take any domain value (condition (1)).
TEST(ValidatorSelfTest, UnconstrainedHeadVariableGetsDomainValue) {
  Database db;
  Relation* d = *db.CreateRelation("D", {"v"});
  ASSERT_TRUE(d->Insert({Value::Int(7)}).ok());
  QuerySet set;
  auto id = ParseQuery("q: { } H(z) :- .", &set);
  ASSERT_TRUE(id.ok());
  auto witness = FindCoordinatingWitness(db, set, {*id});
  ASSERT_TRUE(witness.has_value());
  VarId z = set.query(*id).head[0].terms[0].var();
  EXPECT_EQ(witness->at(z), Value::Int(7));
}

/// ... but an empty database has an empty domain: condition (1) is
/// unsatisfiable for a free variable.
TEST(ValidatorSelfTest, EmptyDomainMeansNoWitness) {
  Database db;
  QuerySet set;
  auto id = ParseQuery("q: { } H(z) :- .", &set);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(FindCoordinatingWitness(db, set, {*id}).has_value());
}

}  // namespace
}  // namespace entangled
