#include "system/engine.h"

#include <algorithm>
#include <deque>
#include <future>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "core/parser.h"

namespace entangled {

CoordinationEngine::CoordinationEngine(const Database* db,
                                       EngineOptions options)
    : db_(db), options_(options) {
  ENTANGLED_CHECK(db != nullptr);
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

void CoordinationEngine::Deliver(const CoordinationSolution& solution) {
  const uint64_t sequence = next_delivery_sequence_++;
  if (internal_callback_) {
    in_callback_ = true;
    internal_callback_(all_, solution);
    in_callback_ = false;
  } else if (callback_) {
    // Materialize only when somebody listens: texts and grounded heads
    // cost allocations the silent path should not pay.
    const Delivery delivery = MakeDelivery(all_, solution, sequence);
    in_callback_ = true;
    callback_(delivery);
    in_callback_ = false;
  }
}

void CoordinationEngine::CheckNotReentrant(const char* entry_point) const {
  ENTANGLED_CHECK(!in_callback_)
      << entry_point
      << " called from inside a delivery callback: callbacks must not "
         "re-enter the CoordinationEngine; defer the follow-up until the "
         "delivering call returns";
}

Result<QueryId> CoordinationEngine::Submit(const std::string& query_text) {
  CheckNotReentrant("Submit");
  auto id = ParseQuery(query_text, &all_);
  if (!id.ok()) return id.status();
  // The parser already appended the query; run the shared admission
  // path without re-adding.
  Admit(*id);
  return id;
}

QueryId CoordinationEngine::SubmitQuery(EntangledQuery query) {
  CheckNotReentrant("SubmitQuery");
  QueryId id = all_.AddQuery(std::move(query));
  Admit(id);
  return id;
}

Result<std::vector<QueryId>> CoordinationEngine::SubmitBatch(
    const std::vector<std::string>& query_texts) {
  CheckNotReentrant("SubmitBatch");
  // Admission is all-or-nothing: parse the whole batch against a
  // staging set first, so a mid-batch syntax error leaves no orphaned
  // half-batch pending with ids the caller never received.
  {
    QuerySet staging;
    for (const std::string& text : query_texts) {
      auto id = ParseQuery(text, &staging);
      if (!id.ok()) return id.status();
    }
  }
  std::vector<QueryId> ids;
  ids.reserve(query_texts.size());
  // Suspend per-arrival evaluation while the batch is admitted: the
  // whole batch lands in the graph first, then one Flush() examines the
  // (merged) dirty components once instead of once per arrival.
  const size_t evaluate_every = options_.evaluate_every;
  options_.evaluate_every = 0;
  for (const std::string& text : query_texts) {
    auto id = ParseQuery(text, &all_);
    ENTANGLED_CHECK(id.ok()) << "validated batch re-parse failed: "
                             << id.status().ToString();
    Admit(*id);
    ids.push_back(*id);
  }
  options_.evaluate_every = evaluate_every;
  if (evaluate_every > 0) {
    since_last_eval_ = 0;
    Flush();
  }
  return ids;
}

void CoordinationEngine::IndexQuery(QueryId id) {
  const size_t n = all_.size();
  pending_.resize(n, false);
  pending_[static_cast<size_t>(id)] = true;
  ++num_pending_;

  if (options_.incremental) {
    // Every new id starts as its own singleton component.
    while (uf_parent_.size() < n) {
      QueryId q = static_cast<QueryId>(uf_parent_.size());
      uf_parent_.push_back(q);
      uf_size_.push_back(1);
      comp_min_.push_back(q);
      comp_members_.push_back({q});
    }
    // Index the arrival; its incident edges are exactly the new ones.
    graph_.AddQuery(all_, id);
    for (size_t e : graph_.OutEdges(id)) {
      UnionComps(id, graph_.edge(e).to);
    }
    for (size_t e : graph_.InEdges(id)) {
      UnionComps(id, graph_.edge(e).from);
    }
    dirty_roots_.insert(FindRoot(id));
  }
}

void CoordinationEngine::Admit(QueryId id) {
  ++stats_.submitted;
  IndexQuery(id);

  if (options_.evaluate_every > 0 &&
      ++since_last_eval_ >= options_.evaluate_every) {
    since_last_eval_ = 0;
    if (options_.incremental) {
      EvaluateComponentOf(id);
    } else {
      LegacyEvaluateComponentOf(id);
    }
  }
}

bool CoordinationEngine::Cancel(QueryId id) {
  CheckNotReentrant("Cancel");
  if (!IsPending(id)) return false;
  pending_[static_cast<size_t>(id)] = false;
  --num_pending_;
  ++stats_.cancelled;
  if (options_.incremental) {
    std::vector<QueryId> fragment_roots = RetireAndRepartition({id});
    if (options_.fault.lose_dirty_on_cancel) {
      // Test-only fault: drop the re-evaluation marks the repartition
      // just made (see EngineFaultInjection::lose_dirty_on_cancel).
      for (QueryId root : fragment_roots) dirty_roots_.erase(root);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Pending bookkeeping
// ---------------------------------------------------------------------------

std::vector<QueryId> CoordinationEngine::PendingQueries() const {
  std::vector<QueryId> pending;
  pending.reserve(num_pending_);
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i]) pending.push_back(static_cast<QueryId>(i));
  }
  return pending;
}

bool CoordinationEngine::IsPending(QueryId id) const {
  return id >= 0 && static_cast<size_t>(id) < pending_.size() &&
         pending_[static_cast<size_t>(id)];
}

std::vector<QueryId> CoordinationEngine::ComponentOf(QueryId id) const {
  ENTANGLED_CHECK(IsPending(id)) << "query " << id << " is not pending";
  if (!options_.incremental) return LegacyComponentOf(id);
  std::vector<QueryId> component =
      comp_members_[static_cast<size_t>(FindRoot(id))];
  std::sort(component.begin(), component.end());
  return component;
}

// ---------------------------------------------------------------------------
// Union-find over weakly connected components
// ---------------------------------------------------------------------------

QueryId CoordinationEngine::FindRoot(QueryId q) const {
  QueryId root = q;
  while (uf_parent_[static_cast<size_t>(root)] != root) {
    root = uf_parent_[static_cast<size_t>(root)];
  }
  // Path compression.
  while (uf_parent_[static_cast<size_t>(q)] != root) {
    QueryId next = uf_parent_[static_cast<size_t>(q)];
    uf_parent_[static_cast<size_t>(q)] = root;
    q = next;
  }
  return root;
}

void CoordinationEngine::UnionComps(QueryId a, QueryId b) {
  QueryId ra = FindRoot(a);
  QueryId rb = FindRoot(b);
  if (ra == rb) return;
  // Dirtiness survives merging: membership of the merged component has
  // certainly changed.
  bool dirty = dirty_roots_.erase(ra) > 0;
  dirty = dirty_roots_.erase(rb) > 0 || dirty;
  if (uf_size_[static_cast<size_t>(ra)] < uf_size_[static_cast<size_t>(rb)]) {
    std::swap(ra, rb);
  }
  uf_parent_[static_cast<size_t>(rb)] = ra;
  uf_size_[static_cast<size_t>(ra)] += uf_size_[static_cast<size_t>(rb)];
  comp_min_[static_cast<size_t>(ra)] = std::min(
      comp_min_[static_cast<size_t>(ra)], comp_min_[static_cast<size_t>(rb)]);
  auto& into = comp_members_[static_cast<size_t>(ra)];
  auto& from = comp_members_[static_cast<size_t>(rb)];
  into.insert(into.end(), from.begin(), from.end());
  from.clear();
  from.shrink_to_fit();
  if (dirty) dirty_roots_.insert(ra);
}

std::vector<QueryId> CoordinationEngine::RetireAndRepartition(
    const std::vector<QueryId>& retired) {
  ENTANGLED_CHECK(!retired.empty());
  // All retired queries belong to one component (a coordinating set is
  // connected; Cancel retires a single query).
  QueryId root = FindRoot(retired[0]);
  dirty_roots_.erase(root);

  std::vector<QueryId> survivors;
  for (QueryId m : comp_members_[static_cast<size_t>(root)]) {
    if (pending_[static_cast<size_t>(m)]) survivors.push_back(m);
  }
  graph_.RetireQueries(retired);
  comp_members_[static_cast<size_t>(root)].clear();

  // Rebuild the union-find partition of the survivors from the live
  // edges — a retirement can split its component but never touches any
  // other component, so the rebuild is local.
  for (QueryId m : survivors) {
    uf_parent_[static_cast<size_t>(m)] = m;
    uf_size_[static_cast<size_t>(m)] = 1;
    comp_min_[static_cast<size_t>(m)] = m;
    comp_members_[static_cast<size_t>(m)] = {m};
  }
  for (QueryId m : survivors) {
    // Every intra-component edge is some survivor's out-edge, so one
    // direction suffices for weak connectivity.
    for (size_t e : graph_.OutEdges(m)) {
      UnionComps(m, graph_.edge(e).to);
    }
  }
  std::unordered_set<QueryId> distinct_roots;
  for (QueryId m : survivors) distinct_roots.insert(FindRoot(m));
  std::vector<QueryId> fragment_roots(distinct_roots.begin(),
                                      distinct_roots.end());
  std::sort(fragment_roots.begin(), fragment_roots.end(),
            [this](QueryId a, QueryId b) {
              return comp_min_[static_cast<size_t>(a)] <
                     comp_min_[static_cast<size_t>(b)];
            });
  // Membership changed: these components may now coordinate (or, having
  // shed an unsafe sibling, may have become safe).
  for (QueryId r : fragment_roots) dirty_roots_.insert(r);
  return fragment_roots;
}

// ---------------------------------------------------------------------------
// Incremental evaluation
// ---------------------------------------------------------------------------

CoordinationEngine::EvalTask CoordinationEngine::BuildTask(
    QueryId root) const {
  EvalTask task;
  std::vector<QueryId> members =
      comp_members_[static_cast<size_t>(FindRoot(root))];
  std::sort(members.begin(), members.end());
  ENTANGLED_CHECK(!members.empty());
  task.min_id = members.front();
  task.subset = all_.Subset(members, &task.original, &task.original_vars);

  auto local_id = [&members](QueryId engine_id) {
    auto it = std::lower_bound(members.begin(), members.end(), engine_id);
    ENTANGLED_CHECK(it != members.end() && *it == engine_id);
    return static_cast<QueryId>(it - members.begin());
  };
  // Slice the component's edges out of the persistent graph instead of
  // re-deriving them, renumbered to subset-local ids.  A component is
  // weakly closed, so every out-edge of a member targets a member.
  for (QueryId m : members) {
    for (size_t e : graph_.OutEdges(m)) {
      const ExtendedEdge& edge = graph_.edge(e);
      task.edges.push_back(ExtendedEdge{local_id(edge.from), edge.post_index,
                                        local_id(edge.to), edge.head_index});
    }
  }
  // Canonical order — byte-identical to what a batch graph build over
  // the same subset would enumerate, so both engine paths hand the
  // solver bit-identical inputs.
  std::sort(task.edges.begin(), task.edges.end(),
            [](const ExtendedEdge& a, const ExtendedEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.post_index != b.post_index)
                return a.post_index < b.post_index;
              if (a.to != b.to) return a.to < b.to;
              return a.head_index < b.head_index;
            });
  return task;
}

CoordinationEngine::EvalOutcome CoordinationEngine::RunTask(
    const EvalTask& task) const {
  // Runs on a worker thread in parallel flushes: touches only the task,
  // the read-only database, and a private coordinator.
  EvalOutcome outcome;
  SccCoordinator coordinator(db_, options_.scc);
  auto result = coordinator.Solve(task.subset, task.edges);
  outcome.db_queries = coordinator.stats().db_queries;
  if (result.ok()) {
    outcome.ok = true;
    outcome.solution = std::move(*result);
  } else {
    outcome.unsafe = result.status().IsFailedPrecondition();
  }
  return outcome;
}

bool CoordinationEngine::ApplyOutcome(const EvalTask& task,
                                      EvalOutcome outcome,
                                      std::vector<QueryId>* new_roots) {
  stats_.db_queries += outcome.db_queries;
  if (!outcome.ok) {
    if (outcome.unsafe) ++stats_.unsafe_components;
    return false;
  }
  // Translate subset ids — queries and witness variables — back to
  // engine ids and retire the winners.
  CoordinationSolution solution;
  outcome.solution.assignment.ForEach([&](VarId local, const Value& value) {
    solution.assignment.emplace(
        task.original_vars[static_cast<size_t>(local)], value);
  });
  for (QueryId local : outcome.solution.queries) {
    QueryId engine_id = task.original[static_cast<size_t>(local)];
    solution.queries.push_back(engine_id);
    pending_[static_cast<size_t>(engine_id)] = false;
    --num_pending_;
  }
  std::sort(solution.queries.begin(), solution.queries.end());
  std::vector<QueryId> fragment_roots = RetireAndRepartition(solution.queries);
  if (new_roots != nullptr) *new_roots = std::move(fragment_roots);
  stats_.coordinated_queries += solution.queries.size();
  ++stats_.coordinating_sets;
  last_delivery_key_ = task.min_id;
  Deliver(solution);
  return true;
}

bool CoordinationEngine::EvaluateComponentOf(QueryId root) {
  if (!IsPending(root)) return false;
  dirty_roots_.erase(FindRoot(root));
  EvalTask task = BuildTask(root);
  ++stats_.evaluations;
  return ApplyOutcome(task, RunTask(task));
}

size_t CoordinationEngine::IncrementalFlush() {
  if (pool_ == nullptr && options_.flush_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.flush_threads);
  }

  // One entry per dispatched component evaluation.  Deque: references
  // handed to worker closures must survive later emplace_backs.
  struct PendingEval {
    EvalTask task;
    std::optional<EvalOutcome> outcome;      // serial mode
    std::future<EvalOutcome> future;         // pooled mode
  };
  std::deque<PendingEval> evals;

  // Results are applied strictly in ascending smallest-member order —
  // the order the reference path discovers components in — so delivery
  // order is deterministic and thread-count-independent.
  using HeapItem = std::pair<QueryId, size_t>;  // (min_id, evals index)
  std::priority_queue<HeapItem, std::vector<HeapItem>,
                      std::greater<HeapItem>>
      apply_order;

  auto dispatch = [&](QueryId root) {
    evals.emplace_back();
    PendingEval& eval = evals.back();
    eval.task = BuildTask(root);
    ++stats_.evaluations;
    if (pool_ != nullptr) {
      auto work = std::make_shared<std::packaged_task<EvalOutcome()>>(
          [this, &eval] { return RunTask(eval.task); });
      eval.future = work->get_future();
      pool_->Submit([work] { (*work)(); });
    } else {
      eval.outcome = RunTask(eval.task);
    }
    apply_order.push({eval.task.min_id, evals.size() - 1});
  };

  // Seed with every dirty component; components untouched since their
  // last evaluation are provably still failures and are skipped.
  std::vector<QueryId> seeds(dirty_roots_.begin(), dirty_roots_.end());
  std::sort(seeds.begin(), seeds.end(), [this](QueryId a, QueryId b) {
    return comp_min_[static_cast<size_t>(a)] <
           comp_min_[static_cast<size_t>(b)];
  });
  dirty_roots_.clear();
  for (QueryId root : seeds) dispatch(root);

  size_t delivered = 0;
  while (!apply_order.empty()) {
    auto [min_id, index] = apply_order.top();
    apply_order.pop();
    (void)min_id;
    PendingEval& eval = evals[index];
    EvalOutcome outcome = eval.outcome.has_value() ? std::move(*eval.outcome)
                                                   : eval.future.get();
    std::vector<QueryId> fragment_roots;
    if (ApplyOutcome(eval.task, std::move(outcome), &fragment_roots)) {
      ++delivered;
      // A delivery shrank its component; the surviving fragments may
      // coordinate on their own — evaluate them within this flush.
      for (QueryId root : fragment_roots) {
        dirty_roots_.erase(root);
        dispatch(root);
      }
    }
  }
  return delivered;
}

size_t CoordinationEngine::Flush() {
  CheckNotReentrant("Flush");
  return options_.incremental ? IncrementalFlush() : LegacyFlush();
}

bool CoordinationEngine::EvaluateNow(QueryId id) {
  CheckNotReentrant("EvaluateNow");
  if (!IsPending(id)) return false;
  return options_.incremental ? EvaluateComponentOf(id)
                              : LegacyEvaluateComponentOf(id);
}

// ---------------------------------------------------------------------------
// Pending-query migration
// ---------------------------------------------------------------------------

CoordinationEngine::PendingExtract CoordinationEngine::ExtractPending() {
  CheckNotReentrant("ExtractPending");
  PendingExtract extract;
  extract.original = PendingQueries();
  extract.queries =
      all_.Subset(extract.original, nullptr, &extract.original_vars);
  // Detach: the queries stay in all_ (ids are never reused) but leave
  // every live structure, as if they had never been admitted.
  for (QueryId id : extract.original) {
    pending_[static_cast<size_t>(id)] = false;
  }
  num_pending_ = 0;
  if (options_.incremental) {
    graph_ = ExtendedCoordinationGraph();
    uf_parent_.clear();
    uf_size_.clear();
    comp_min_.clear();
    comp_members_.clear();
    dirty_roots_.clear();
  }
  return extract;
}

std::vector<QueryId> CoordinationEngine::AdoptPending(
    const QuerySet& src, const std::vector<QueryId>& ids,
    std::vector<std::pair<VarId, VarId>>* var_map) {
  CheckNotReentrant("AdoptPending");
  std::vector<QueryId> adopted = all_.AdoptQueries(src, ids, var_map);
  // Index without counting submissions or touching the cadence: a
  // migrated query was already counted where it first arrived, and the
  // caller decides when evaluation happens.  Components gaining adopted
  // members are conservatively dirty (IndexQuery), which can only add
  // provably-failing re-evaluations, never change what is delivered.
  for (QueryId id : adopted) IndexQuery(id);
  return adopted;
}

// ---------------------------------------------------------------------------
// From-scratch reference path: rebuilds the coordination graph over the
// whole pending set for every evaluation.  Kept as the differential
//-testing oracle and as the baseline bench_incremental_stream measures
// the incremental core against.
// ---------------------------------------------------------------------------

std::vector<QueryId> CoordinationEngine::LegacyComponentOf(
    QueryId root) const {
  // Weak connectivity over the coordination graph of the pending
  // queries, rebuilt from scratch.
  std::vector<QueryId> pending = PendingQueries();
  std::vector<QueryId> original;
  QuerySet subset = all_.Subset(pending, &original);
  Digraph graph = BuildCoordinationGraph(subset);

  // Locate root within the subset: `original` is ascending (Subset
  // preserves PendingQueries' order), so binary search replaces the old
  // linear scan.
  auto it = std::lower_bound(original.begin(), original.end(), root);
  ENTANGLED_CHECK(it != original.end() && *it == root)
      << "root query is not pending";
  NodeId root_node = static_cast<NodeId>(it - original.begin());

  std::vector<bool> visited(static_cast<size_t>(graph.num_nodes()), false);
  std::deque<NodeId> queue{root_node};
  visited[static_cast<size_t>(root_node)] = true;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (const auto& neighbours :
         {graph.Successors(u), graph.Predecessors(u)}) {
      for (NodeId v : neighbours) {
        if (!visited[static_cast<size_t>(v)]) {
          visited[static_cast<size_t>(v)] = true;
          queue.push_back(v);
        }
      }
    }
  }
  std::vector<QueryId> component;
  for (size_t i = 0; i < visited.size(); ++i) {
    if (visited[i]) component.push_back(original[i]);
  }
  return component;
}

bool CoordinationEngine::LegacyEvaluateComponentOf(QueryId root) {
  if (!IsPending(root)) return false;
  std::vector<QueryId> component = LegacyComponentOf(root);
  std::vector<QueryId> original;
  std::vector<VarId> original_vars;
  QuerySet subset = all_.Subset(component, &original, &original_vars);

  SccCoordinator coordinator(db_, options_.scc);
  ++stats_.evaluations;
  auto result = coordinator.Solve(subset);
  stats_.db_queries += coordinator.stats().db_queries;
  if (!result.ok()) {
    if (result.status().IsFailedPrecondition()) ++stats_.unsafe_components;
    return false;
  }

  // Translate subset ids — queries and witness variables — back to
  // engine ids and retire the winners.
  CoordinationSolution solution;
  result->assignment.ForEach([&](VarId local, const Value& value) {
    solution.assignment.emplace(
        original_vars[static_cast<size_t>(local)], value);
  });
  for (QueryId local : result->queries) {
    QueryId engine_id = original[static_cast<size_t>(local)];
    solution.queries.push_back(engine_id);
    pending_[static_cast<size_t>(engine_id)] = false;
    --num_pending_;
  }
  std::sort(solution.queries.begin(), solution.queries.end());
  stats_.coordinated_queries += solution.queries.size();
  ++stats_.coordinating_sets;
  // `component` is sorted ascending, so its front is the schedule key.
  last_delivery_key_ = component.front();
  Deliver(solution);
  return true;
}

size_t CoordinationEngine::LegacyFlush() {
  size_t delivered = 0;
  // Evaluate components in ascending pending-id order; every delivery
  // can leave a smaller component that coordinates on its own, so
  // restart the scan until a full pass delivers nothing.
  bool progress = true;
  while (progress) {
    progress = false;
    for (QueryId id : PendingQueries()) {
      if (!IsPending(id)) continue;  // retired earlier in this pass
      if (LegacyEvaluateComponentOf(id)) {
        ++delivered;
        progress = true;
        break;
      }
    }
  }
  return delivered;
}

}  // namespace entangled
