#ifndef ENTANGLED_DB_RELATION_H_
#define ENTANGLED_DB_RELATION_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "db/value.h"

namespace entangled {

/// \brief Row identifier within a relation (index into the row store).
using RowId = uint32_t;

/// \brief A database tuple.
using Tuple = std::vector<Value>;

/// "(v1, v2, ...)".
std::string TupleToString(const Tuple& tuple);

/// \brief An in-memory relation: a named, fixed-arity bag of tuples with
/// lazily-built hash indexes.
///
/// Indexes are caches: they are built on first probe of a column (or
/// column group) and kept consistent by Insert.  Building them is
/// logically const, matching how the evaluator — which only reads the
/// database — accelerates its scans.  Cache access is guarded by a
/// reader-writer lock so concurrent read-only evaluation (the engine's
/// parallel Flush(), ConsistentCoordinator's worker threads) is safe:
/// steady-state probes of an already-built index take only the shared
/// lock; the exclusive lock is held just while an index is built.
/// Returned references stay valid after the lock drops because the
/// cache maps are node-based and an inner index is never mutated once
/// built (Insert, the only writer, must not run concurrently with
/// readers).
class Relation {
 public:
  Relation(std::string name, std::vector<std::string> column_names);

  // Copy/move transplant the data and caches under the source's index
  // lock; the destination starts with a fresh (unlocked) mutex.
  Relation(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(const Relation&) = delete;
  Relation& operator=(Relation&&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  size_t arity() const { return column_names_.size(); }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Index of the column called `name`, if any.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Appends a tuple; fails on arity mismatch.
  Status Insert(Tuple tuple);

  /// Appends Insert(...) for each tuple; stops at the first failure.
  Status InsertAll(std::vector<Tuple> tuples);

  const Tuple& row(RowId id) const;
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Row ids whose `column` equals `value` (hash-index probe; builds the
  /// index on first use).
  const std::vector<RowId>& Probe(size_t column, const Value& value) const;

  /// Row ids matching `pattern`, where disengaged positions are
  /// wildcards.  Uses the most selective single-column index among the
  /// engaged positions, then filters.
  std::vector<RowId> SelectWhere(
      const std::vector<std::optional<Value>>& pattern) const;

  /// Whether at least one row matches `pattern`.
  bool AnyMatch(const std::vector<std::optional<Value>>& pattern) const;

  /// Distinct values appearing in `column`, in first-seen row order.
  std::vector<Value> DistinctValues(size_t column) const;

  /// Groups rows by their projection onto `columns`; the map is cached.
  /// Iteration over the returned map is unordered; use GroupKeys for a
  /// deterministic ordering.
  const std::unordered_map<std::vector<Value>, std::vector<RowId>,
                           VectorHash>&
  GroupBy(const std::vector<size_t>& columns) const;

  /// Distinct projections onto `columns`, in first-seen row order
  /// (deterministic companion of GroupBy).
  std::vector<std::vector<Value>> GroupKeys(
      const std::vector<size_t>& columns) const;

 private:
  using ColumnIndexMap = std::unordered_map<Value, std::vector<RowId>>;
  using GroupIndexMap =
      std::unordered_map<std::vector<Value>, std::vector<RowId>, VectorHash>;

  const ColumnIndexMap& EnsureColumnIndex(size_t column) const;

  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<Tuple> rows_;

  // Lazily-built caches (see class comment).
  mutable std::shared_mutex index_mutex_;
  mutable std::unordered_map<size_t, ColumnIndexMap> column_indexes_;
  mutable std::unordered_map<std::vector<size_t>, GroupIndexMap, VectorHash>
      group_indexes_;
};

}  // namespace entangled

#endif  // ENTANGLED_DB_RELATION_H_
