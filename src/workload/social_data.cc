#include "workload/social_data.h"

namespace entangled {

Status InstallSocialTable(Database* db, const std::string& name,
                          size_t num_rows) {
  auto relation = db->CreateRelation(name, {"id", "handle"});
  if (!relation.ok()) return relation.status();
  for (size_t i = 0; i < num_rows; ++i) {
    ENTANGLED_RETURN_IF_ERROR((*relation)->Insert(
        {Value::Int(static_cast<int64_t>(i)), Value::Str(SocialHandle(i))}));
  }
  return Status::OK();
}

std::string SocialHandle(size_t index) {
  return "user" + std::to_string(index);
}

}  // namespace entangled
