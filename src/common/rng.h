#ifndef ENTANGLED_COMMON_RNG_H_
#define ENTANGLED_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace entangled {

/// \brief Deterministic pseudo-random number generator (xoshiro256**,
/// seeded via SplitMix64).
///
/// All stochastic workload generation flows through this class so that
/// every experiment in the repository is reproducible bit-for-bit across
/// platforms.  (std::mt19937 is deterministic, but the standard
/// *distributions* are not specified, so we implement our own draws.)
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform integer in [0, bound), bound > 0.  Uses rejection sampling
  /// (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive, lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p in [0, 1].
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    ENTANGLED_CHECK(items != nullptr);
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    ENTANGLED_CHECK(!items.empty());
    return items[static_cast<size_t>(NextBounded(items.size()))];
  }

  /// Draws k distinct indices from [0, n) in random order (k <= n).
  std::vector<size_t> Sample(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

}  // namespace entangled

#endif  // ENTANGLED_COMMON_RNG_H_
