#include "algo/single_connected.h"

#include "common/logging.h"
#include "common/timer.h"
#include "core/properties.h"

namespace entangled {

SingleConnectedSolver::SingleConnectedSolver(const Database* db) : db_(db) {
  ENTANGLED_CHECK(db != nullptr);
}

Result<CoordinationSolution> SingleConnectedSolver::Solve(
    const QuerySet& set) {
  stats_.Reset();
  if (set.empty()) {
    return Status::NotFound("no coordinating set: the query set is empty");
  }
  WallTimer timer;
  if (!IsSingleConnected(set)) {
    return Status::FailedPrecondition(
        "the query set is not single-connected (Definition 6)");
  }
  GenericSolver solver(db_);
  auto result = solver.FindAny(set);
  stats_ = solver.stats();
  stats_.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace entangled
