// Regression coverage for the documented callback-reentrancy contract
// (src/system/engine.h): delivery callbacks are notifications, not
// extension points — every mutating entry point must CHECK-fail when
// invoked from inside a delivery, on both engine paths.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/query.h"
#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class EngineReentrancyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }

  /// Delivers immediately: a loner query with no postconditions.
  static const char* Loner() {
    return "solo: { } K(w) :- Users(w, 'user5').";
  }

  Database db_;
};

using EngineReentrancyDeathTest = EngineReentrancyTest;

TEST_F(EngineReentrancyDeathTest, SubmitInsideCallbackDies) {
  CoordinationEngine engine(&db_);
  engine.set_delivery_callback([&engine](const Delivery&) {
    (void)engine.Submit("late: { } K(v) :- Users(v, 'user1').");
  });
  // The CHECK names the violating entry point.
  EXPECT_DEATH(engine.Submit(Loner()),
               "Submit called from inside a delivery callback");
}

TEST_F(EngineReentrancyDeathTest, SubmitQueryInsideCallbackDies) {
  CoordinationEngine engine(&db_);
  engine.set_delivery_callback([&engine](const Delivery&) {
    QueryBuilder builder(engine.mutable_queries(), "late");
    VarId v = builder.Var("v");
    builder.Head("K", {Term::Var(v)});
    builder.Body("Users", {Term::Var(v), Term::Str("user1")});
    EntangledQuery query = engine.mutable_queries()->query(builder.Build());
    engine.SubmitQuery(query);
  });
  EXPECT_DEATH(engine.Submit(Loner()),
               "SubmitQuery called from inside a delivery callback");
}

TEST_F(EngineReentrancyDeathTest, SubmitBatchInsideCallbackDies) {
  CoordinationEngine engine(&db_);
  engine.set_delivery_callback([&engine](const Delivery&) {
    (void)engine.SubmitBatch({"late: { } K(v) :- Users(v, 'user1')."});
  });
  EXPECT_DEATH(engine.Submit(Loner()),
               "SubmitBatch called from inside a delivery callback");
}

TEST_F(EngineReentrancyDeathTest, CancelInsideCallbackDies) {
  CoordinationEngine engine(&db_);
  engine.set_delivery_callback(
      [&engine](const Delivery&) { engine.Cancel(0); });
  EXPECT_DEATH(engine.Submit(Loner()),
               "Cancel called from inside a delivery callback");
}

TEST_F(EngineReentrancyDeathTest, FlushInsideCallbackDies) {
  CoordinationEngine engine(&db_);
  engine.set_delivery_callback(
      [&engine](const Delivery&) { engine.Flush(); });
  EXPECT_DEATH(engine.Submit(Loner()),
               "Flush called from inside a delivery callback");
}

TEST_F(EngineReentrancyDeathTest, LegacyPathRejectsReentryToo) {
  EngineOptions options;
  options.incremental = false;
  CoordinationEngine engine(&db_, options);
  engine.set_delivery_callback(
      [&engine](const Delivery&) { engine.Flush(); });
  EXPECT_DEATH(engine.Submit(Loner()),
               "Flush called from inside a delivery callback");
}

/// The contract's positive side: deferring the follow-up until the
/// delivering call returns is legal.
TEST_F(EngineReentrancyTest, DeferredFollowUpWorks) {
  CoordinationEngine engine(&db_);
  std::vector<std::string> follow_ups;
  engine.set_delivery_callback([&follow_ups](const Delivery&) {
    follow_ups.push_back("late: { } K(v) :- Users(v, 'user1').");
  });
  ASSERT_TRUE(engine.Submit(Loner()).ok());
  ASSERT_EQ(follow_ups.size(), 1u);
  for (const std::string& text : follow_ups) {
    EXPECT_TRUE(engine.Submit(text).ok());
  }
  EXPECT_EQ(engine.stats().coordinating_sets, 2u);
}

}  // namespace
}  // namespace entangled
