#ifndef ENTANGLED_CORE_PROPERTIES_H_
#define ENTANGLED_CORE_PROPERTIES_H_

#include "core/coordination_graph.h"
#include "core/query.h"

namespace entangled {

/// \brief Whether query q is *safe* in its set (Definition 2): none of
/// its postcondition atoms unifies with more than one head atom
/// appearing anywhere in the set (its own head included).
bool IsSafeQuery(const ExtendedCoordinationGraph& graph, QueryId q,
                 const QuerySet& set);

/// \brief Whether every query in the set is safe.
bool IsSafeSet(const QuerySet& set);
bool IsSafeSet(const QuerySet& set, const ExtendedCoordinationGraph& graph);

/// \brief Whether a *safe* set is *unique* (Definition 3): its
/// coordination graph has a directed path between every two vertices,
/// i.e. is strongly connected.  (The paper defines uniqueness only for
/// safe sets; this predicate checks just the connectivity condition.)
bool IsUniqueSet(const QuerySet& set);

/// \brief Whether the set is single-connected (Definition 6): every
/// query has at most one postcondition atom and the coordination graph
/// has at most one simple path between every ordered pair of queries.
/// Exponential-time check in the worst case; intended for small sets and
/// tests (the class exists for Theorem 3, not for production workloads).
bool IsSingleConnected(const QuerySet& set);

}  // namespace entangled

#endif  // ENTANGLED_CORE_PROPERTIES_H_
