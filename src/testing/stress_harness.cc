#include "testing/stress_harness.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "api/session.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/validator.h"
#include "storage/durable_service.h"
#include "storage/snapshot.h"

namespace entangled {
namespace {

constexpr uint64_t kPermutationSalt = 0x9e37be7a5a17ULL;
constexpr uint64_t kRowShuffleSalt = 0x205bade5eedULL;

std::string IdsToString(const std::vector<QueryId>& ids) {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < ids.size(); ++i) {
    out << (i == 0 ? "" : ",") << ids[i];
  }
  out << "}";
  return out.str();
}

std::string LogToString(const std::vector<StressDelivery>& log) {
  std::ostringstream out;
  for (const StressDelivery& d : log) out << IdsToString(d.queries) << " ";
  return out.str();
}

/// One engine configuration a scenario is replayed on: the from-scratch
/// oracle, an incremental CoordinationEngine, or the sharded front
/// door.
struct EngineVariant {
  bool sharded = false;
  EngineOptions engine;
  size_t shard_threads = 1;      ///< sharded only
  bool rebuild_merges = false;   ///< sharded only: rebuild-merge baseline
};

EngineVariant OracleVariant() {
  EngineVariant variant;
  variant.engine.incremental = false;
  variant.engine.evaluate_every = 1;
  return variant;
}

EngineVariant IncrementalVariant(size_t threads,
                                 const EngineFaultInjection& fault,
                                 size_t intake_capacity = 0,
                                 size_t flush_chunk = 0,
                                 bool delta_eval = true) {
  EngineVariant variant;
  variant.engine.incremental = true;
  variant.engine.evaluate_every = 1;
  variant.engine.flush_threads = threads;
  variant.engine.intake_capacity = intake_capacity;
  if (flush_chunk > 0) variant.engine.flush_chunk = flush_chunk;
  variant.engine.delta_eval = delta_eval;
  variant.engine.fault = fault;
  return variant;
}

EngineVariant ShardedVariant(size_t shard_threads,
                             const EngineFaultInjection& fault,
                             bool delta_eval = true,
                             bool rebuild_merges = false) {
  EngineVariant variant;
  variant.sharded = true;
  variant.engine.incremental = true;
  variant.engine.evaluate_every = 1;
  variant.engine.delta_eval = delta_eval;
  variant.engine.fault = fault;
  variant.shard_threads = shard_threads;
  variant.rebuild_merges = rebuild_merges;
  return variant;
}

/// A constructed engine plus access to its master query set — the
/// harness validates deliveries against Definition 1, which needs the
/// original query structure the public event surface (deliberately)
/// no longer exposes.
struct EngineInstance {
  std::unique_ptr<CoordinationService> service;
  std::function<const QuerySet&()> master;
};

EngineInstance MakeEngine(const Database& db, const EngineVariant& variant) {
  EngineInstance instance;
  if (variant.sharded) {
    ShardedEngineOptions options;
    options.engine = variant.engine;
    options.shard_threads = variant.shard_threads;
    options.rebuild_merges = variant.rebuild_merges;
    auto engine = std::make_unique<ShardedCoordinationEngine>(&db, options);
    auto* raw = engine.get();
    instance.service = std::move(engine);
    instance.master = [raw]() -> const QuerySet& { return raw->queries(); };
    return instance;
  }
  auto engine = std::make_unique<CoordinationEngine>(&db, variant.engine);
  auto* raw = engine.get();
  instance.service = std::move(engine);
  instance.master = [raw]() -> const QuerySet& { return raw->queries(); };
  return instance;
}

/// Replays the event stream on one engine, validating every delivery
/// against Definition 1 as it lands.
StressReplay Replay(const Database& db, const EngineVariant& variant,
                    const std::vector<WorkloadEvent>& events) {
  EngineInstance engine = MakeEngine(db, variant);
  StressReplay run;
  engine.service->set_delivery_callback([&](const Delivery& delivery) {
    if (delivery.sequence != run.log.size() && run.error.empty()) {
      run.error = "delivery sequence " + std::to_string(delivery.sequence) +
                  " but " + std::to_string(run.log.size()) +
                  " deliveries observed before it";
    }
    CoordinationSolution solution = SolutionFromDelivery(delivery);
    Status valid = ValidateSolution(db, engine.master(), solution);
    if (!valid.ok() && run.error.empty()) {
      run.error = "delivery " + IdsToString(solution.queries) +
                  " failed Definition-1 validation: " + valid.ToString();
    }
    run.log.push_back(StressDelivery{std::move(solution.queries),
                                     std::move(solution.assignment)});
  });
  std::string replay_error = ReplayWorkloadEvents(engine.service.get(), events);
  if (!replay_error.empty() && run.error.empty()) run.error = replay_error;
  run.final_pending = engine.service->PendingQueries();
  run.pending_count = engine.service->num_pending();
  run.stats = engine.service->StatsSnapshot();
  return run;
}

// ---------------------------------------------------------------------------
// Session front-door replay: the same event stream driven through a
// SessionManager, with submissions round-robined across N sessions.
// ---------------------------------------------------------------------------

/// One session event deep-copied at observation time, so the push
/// stream and the PollEvents() drain can be compared byte for byte.
struct ObservedEvent {
  uint64_t sequence = 0;
  std::vector<QueryId> set;  ///< the full coordinating set
  Binding witness;
  std::vector<QueryId> own;  ///< the observing session's slice
};

ObservedEvent ObserveEvent(const SessionEvent& event) {
  ObservedEvent observed;
  observed.sequence = event.delivery->sequence;
  observed.set = event.delivery->QueryIds();
  observed.witness = event.delivery->witness;
  observed.own = event.own_queries;
  return observed;
}

bool ObservedEqual(const ObservedEvent& a, const ObservedEvent& b) {
  return a.sequence == b.sequence && a.set == b.set && a.own == b.own &&
         a.witness == b.witness;
}

struct SessionReplayRun {
  StressReplay flat;  ///< the sessions' merged view, oracle-comparable
  std::string error;  ///< session-layer divergence (push vs poll, ...)
};

/// Bookkeeping of a quota-armed session replay: the filtered stream an
/// oracle can be fed (accepted submissions only; cancels stay
/// rank-addressed, which resolves identically because the pending sets
/// agree), plus the bounce accounting the caller cross-checks against
/// the manager's metrics snapshot.
struct QuotaObservations {
  std::vector<WorkloadEvent> accepted;
  size_t bounced_calls = 0;  ///< Submit/SubmitBatch calls refused
  size_t bounced_texts = 0;  ///< query texts those calls carried
  uint64_t counted = 0;      ///< manager metric "reject.quota_pending"
};

uint64_t FindCounter(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [key, value] : snap.counters) {
    if (key == name) return value;
  }
  return 0;
}

/// Replays `events` through a SessionManager over the given engine
/// variant.  Checks internal to the session layer (push-vs-poll
/// equality, pending tiling, cross-session event consistency) land in
/// `error`; the merged stream lands in `flat` for the oracle
/// differential.  When `quota` is non-null the sessions run with
/// `session_options` armed and typed kQuotaPending bounces are recorded
/// instead of failing the replay (any *other* rejection still fails).
SessionReplayRun ReplayThroughSessions(const Database& db,
                                       const EngineVariant& variant,
                                       const std::vector<WorkloadEvent>& events,
                                       size_t session_count,
                                       const SessionOptions& session_options =
                                           SessionOptions{},
                                       QuotaObservations* quota = nullptr) {
  SessionReplayRun run;
  EngineInstance engine = MakeEngine(db, variant);
  SessionManager manager(engine.service.get());
  std::vector<ClientSession*> sessions;
  std::vector<std::vector<ObservedEvent>> pushed(session_count);
  sessions.reserve(session_count);
  for (size_t i = 0; i < session_count; ++i) {
    sessions.push_back(manager.Open(session_options));
    sessions.back()->set_event_callback([&pushed, i](const SessionEvent& e) {
      pushed[i].push_back(ObserveEvent(e));
    });
  }

  auto fail = [&run](std::string message) {
    if (run.error.empty()) run.error = std::move(message);
  };
  auto accept = [&quota](const WorkloadEvent& event) {
    if (quota != nullptr) quota->accepted.push_back(event);
  };
  auto bounce = [&quota, &fail](RejectReason reason, const std::string& message,
                                size_t texts) {
    if (quota == nullptr || reason != RejectReason::kQuotaPending) {
      fail(std::string("session rejected a generated submission (") +
           RejectReasonName(reason) + "): " + message);
      return;
    }
    ++quota->bounced_calls;
    quota->bounced_texts += texts;
  };

  size_t next_session = 0;
  for (const WorkloadEvent& event : events) {
    if (!run.error.empty()) break;
    switch (event.kind) {
      case WorkloadEvent::Kind::kSubmit: {
        ClientSession* s = sessions[next_session++ % session_count];
        SubmitOutcome outcome = s->Submit(event.texts.front());
        if (outcome.ok()) {
          accept(event);
        } else {
          bounce(outcome.reason, outcome.message, 1);
        }
        break;
      }
      case WorkloadEvent::Kind::kSubmitBatch: {
        ClientSession* s = sessions[next_session++ % session_count];
        BatchOutcome outcome = s->SubmitBatch(event.texts);
        if (outcome.ok()) {
          accept(event);
        } else {
          bounce(outcome.reason, outcome.message, event.texts.size());
        }
        break;
      }
      case WorkloadEvent::Kind::kCancel: {
        // Same rank addressing as the service-level replay, resolved to
        // the owning session: streams stay aligned while engines agree
        // (under a quota the filtered-oracle pending set matches this
        // run's, so the rank resolves to the same query there too).
        accept(event);
        std::vector<QueryId> pending = manager.PendingQueries();
        if (pending.empty()) break;
        const QueryId gid = pending[event.cancel_rank % pending.size()];
        const SessionId owner = manager.OwnerOf(gid);
        if (owner < 0) {
          fail("pending query " + std::to_string(gid) + " has no owner");
          break;
        }
        if (!manager.Find(owner)->Cancel(gid)) {
          fail("owner session refused to cancel pending query " +
               std::to_string(gid));
        }
        break;
      }
      case WorkloadEvent::Kind::kSetEvaluateEvery:
        accept(event);
        manager.set_evaluate_every(event.evaluate_every);
        break;
      case WorkloadEvent::Kind::kFlush:
        accept(event);
        manager.Flush();
        break;
    }
  }
  if (quota != nullptr) {
    quota->counted = FindCounter(manager.Metrics(), "reject.quota_pending");
  }

  // Settle any queued submissions before the final accounting: the
  // drain routes trailing deliveries through OnDelivery, so the
  // per-session event buffers and pending sets read below are final.
  manager.num_pending();

  // Drain every session and hold the two consumption modes to the same
  // stream, then merge the per-session views back into one delivery
  // log (sessions sharing a coordinating set observe the same event).
  std::map<uint64_t, StressDelivery> merged;
  std::unordered_set<QueryId> session_pending_union;
  for (size_t i = 0; i < session_count; ++i) {
    ClientSession* s = sessions[i];
    std::vector<SessionEvent> polled = s->PollEvents();
    if (polled.size() != pushed[i].size()) {
      fail("session " + std::to_string(s->id()) + ": push callback saw " +
           std::to_string(pushed[i].size()) + " events but PollEvents() " +
           "drained " + std::to_string(polled.size()));
    }
    for (size_t j = 0; j < polled.size() && run.error.empty(); ++j) {
      if (polled[j].session != s->id()) {
        fail("session " + std::to_string(s->id()) +
             " drained an event routed to session " +
             std::to_string(polled[j].session));
        break;
      }
      ObservedEvent drained = ObserveEvent(polled[j]);
      if (!ObservedEqual(pushed[i][j], drained)) {
        fail("session " + std::to_string(s->id()) + " event " +
             std::to_string(j) +
             ": push stream and PollEvents() drain diverged");
        break;
      }
      if (drained.own.empty()) {
        fail("session " + std::to_string(s->id()) +
             " received an event containing none of its queries");
        break;
      }
      auto [it, inserted] = merged.emplace(
          drained.sequence, StressDelivery{drained.set, drained.witness});
      if (!inserted && (it->second.queries != drained.set ||
                        !(it->second.assignment == drained.witness))) {
        fail("sessions disagree about delivery sequence " +
             std::to_string(drained.sequence));
        break;
      }
    }
    const std::vector<QueryId> session_pending = s->PendingQueries();
    if (session_pending.size() != s->num_pending()) {
      fail("session " + std::to_string(s->id()) + " num_pending()=" +
           std::to_string(s->num_pending()) + " but enumerated " +
           std::to_string(session_pending.size()));
    }
    for (QueryId q : session_pending) {
      if (!session_pending_union.insert(q).second) {
        fail("query " + std::to_string(q) +
             " pending in two sessions at once");
      }
    }
  }

  // The sessions' pending sets must tile the service's pending set.
  run.flat.final_pending = manager.PendingQueries();
  run.flat.pending_count = manager.num_pending();
  run.flat.stats = manager.StatsSnapshot();
  if (run.error.empty() &&
      session_pending_union.size() != run.flat.final_pending.size()) {
    fail("sessions hold " + std::to_string(session_pending_union.size()) +
         " pending queries but the service holds " +
         std::to_string(run.flat.final_pending.size()));
  }
  for (QueryId q : run.flat.final_pending) {
    if (!run.error.empty()) break;
    if (session_pending_union.count(q) == 0) {
      fail("service-pending query " + std::to_string(q) +
           " is pending in no session");
    }
  }

  uint64_t expected_sequence = 0;
  for (auto& [sequence, delivery] : merged) {
    if (sequence != expected_sequence++ && run.error.empty()) {
      fail("delivery sequences are not contiguous at " +
           std::to_string(sequence));
    }
    run.flat.log.push_back(std::move(delivery));
  }
  run.flat.error = run.error;
  return run;
}

/// Engine-internal bookkeeping must agree with the observed log.
std::string CheckInvariants(const std::string& label,
                            const StressReplay& run) {
  if (!run.error.empty()) return label + ": " + run.error;
  const EngineStats& s = run.stats;
  if (run.pending_count != run.final_pending.size()) {
    return label + ": num_pending()=" + std::to_string(run.pending_count) +
           " but PendingQueries() enumerated " +
           std::to_string(run.final_pending.size());
  }
  size_t delivered_queries = 0;
  std::unordered_set<QueryId> seen;
  for (const StressDelivery& d : run.log) {
    delivered_queries += d.queries.size();
    for (QueryId q : d.queries) {
      if (!seen.insert(q).second) {
        return label + ": query " + std::to_string(q) +
               " delivered in two coordinating sets";
      }
    }
  }
  if (s.coordinating_sets != run.log.size()) {
    return label + ": stats.coordinating_sets=" +
           std::to_string(s.coordinating_sets) + " but " +
           std::to_string(run.log.size()) + " deliveries observed";
  }
  if (s.coordinated_queries != delivered_queries) {
    return label + ": stats.coordinated_queries=" +
           std::to_string(s.coordinated_queries) + " but deliveries retired " +
           std::to_string(delivered_queries) + " queries";
  }
  const int64_t submitted = static_cast<int64_t>(s.submitted);
  const int64_t cancelled = static_cast<int64_t>(s.cancelled);
  const int64_t coordinated = static_cast<int64_t>(s.coordinated_queries);
  if (coordinated > submitted - cancelled) {
    return label + ": coordinated_queries=" + std::to_string(coordinated) +
           " exceeds submitted-cancelled=" +
           std::to_string(submitted - cancelled);
  }
  if (static_cast<int64_t>(run.final_pending.size()) !=
      submitted - cancelled - coordinated) {
    return label + ": " + std::to_string(run.final_pending.size()) +
           " pending but submitted-cancelled-coordinated=" +
           std::to_string(submitted - cancelled - coordinated);
  }
  return "";
}

/// Byte-level differential: same sets, same order, same witnesses.
std::string CompareRuns(const std::string& a_label, const StressReplay& a,
                        const std::string& b_label, const StressReplay& b) {
  if (a.log.size() != b.log.size()) {
    return b_label + " delivered " + std::to_string(b.log.size()) +
           " coordinating sets, " + a_label + " delivered " +
           std::to_string(a.log.size()) + "\n  " + a_label + ": " +
           LogToString(a.log) + "\n  " + b_label + ": " + LogToString(b.log);
  }
  for (size_t i = 0; i < a.log.size(); ++i) {
    if (a.log[i].queries != b.log[i].queries) {
      return "delivery " + std::to_string(i) + " diverged: " + a_label +
             " retired " + IdsToString(a.log[i].queries) + ", " + b_label +
             " retired " + IdsToString(b.log[i].queries);
    }
    if (a.log[i].assignment != b.log[i].assignment) {
      return "delivery " + std::to_string(i) + " " +
             IdsToString(a.log[i].queries) + ": witness assignments differ " +
             "between " + a_label + " and " + b_label;
    }
  }
  if (a.final_pending != b.final_pending) {
    return "final pending sets diverged: " + a_label + " " +
           IdsToString(a.final_pending) + ", " + b_label + " " +
           IdsToString(b.final_pending);
  }
  if (a.stats.cancelled != b.stats.cancelled) {
    return "cancellation counts diverged: " + a_label + " " +
           std::to_string(a.stats.cancelled) + ", " + b_label + " " +
           std::to_string(b.stats.cancelled);
  }
  return "";
}

/// Order-insensitive canonical form of a delivery log, with ids mapped
/// through `translate` (empty = identity).
std::vector<std::vector<QueryId>> CanonicalSets(
    const std::vector<StressDelivery>& log, const std::vector<QueryId>& translate) {
  std::vector<std::vector<QueryId>> sets;
  sets.reserve(log.size());
  for (const StressDelivery& d : log) {
    std::vector<QueryId> ids;
    ids.reserve(d.queries.size());
    for (QueryId q : d.queries) {
      ids.push_back(translate.empty() ? q
                                      : translate[static_cast<size_t>(q)]);
    }
    std::sort(ids.begin(), ids.end());
    sets.push_back(std::move(ids));
  }
  std::sort(sets.begin(), sets.end());
  return sets;
}

bool HasCancel(const std::vector<WorkloadEvent>& events) {
  for (const WorkloadEvent& event : events) {
    if (event.kind == WorkloadEvent::Kind::kCancel) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Kill-and-rehydrate differential
// ---------------------------------------------------------------------------

/// Throwaway storage directory for one crash-recovery replay,
/// recursively unlinked on scope exit (best-effort).
class ScopedTempDir {
 public:
  ScopedTempDir() {
    char tmpl[] = "/tmp/entangled_crash_XXXXXX";
    char* made = mkdtemp(tmpl);
    if (made != nullptr) path_ = made;
  }
  ~ScopedTempDir() {
    if (path_.empty()) return;
    DIR* dir = opendir(path_.c_str());
    if (dir != nullptr) {
      while (dirent* entry = readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;
  const std::string& path() const { return path_; }
  bool ok() const { return !path_.empty(); }

 private:
  std::string path_;
};

/// Replays `events` with a crash in the middle: a durable-wrapped
/// engine runs the first `crash_index` events and is then destroyed
/// where it stands (no snapshot, no shutdown); a fresh engine is
/// rehydrated from the storage directory (latest snapshot + WAL tail)
/// and runs the remainder.  The returned StressReplay holds the
/// *concatenated* pre-crash + post-recovery delivery stream in durable
/// ids — which are the oracle's global ids — so CompareRuns can hold it
/// to the uninterrupted oracle byte for byte.  Delivery sequences must
/// resume, not restart, across the crash; the recording callback
/// enforces that directly.
StressReplay CrashRecoveryReplay(const Database& db,
                                 const EngineVariant& variant,
                                 const std::vector<WorkloadEvent>& events,
                                 size_t crash_index) {
  StressReplay run;
  ScopedTempDir dir;
  if (!dir.ok()) {
    run.error = "crash: mkdtemp failed";
    return run;
  }
  const std::vector<WorkloadEvent> prefix(events.begin(),
                                          events.begin() + crash_index);
  const std::vector<WorkloadEvent> suffix(events.begin() + crash_index,
                                          events.end());

  DurabilityOptions durability;
  durability.dir = dir.path();
  // The "crash" is in-process (destructors run, the page cache is
  // coherent), so no fsync is needed for the differential — and kNone
  // keeps the deep sweep fast.
  durability.fsync = FsyncPolicy::kNone;
  durability.snapshot_every_events = 7;  // exercise rotation mid-stream
  durability.initial_evaluate_every = variant.engine.evaluate_every;

  auto record = [&run](const Delivery& delivery) {
    if (delivery.sequence != run.log.size() && run.error.empty()) {
      run.error = "crash: delivery sequence " +
                  std::to_string(delivery.sequence) + " but " +
                  std::to_string(run.log.size()) +
                  " deliveries observed before it (sequences must resume "
                  "across recovery, not restart)";
    }
    CoordinationSolution solution = SolutionFromDelivery(delivery);
    run.log.push_back(StressDelivery{std::move(solution.queries),
                                     std::move(solution.assignment)});
  };

  uint64_t pre_cancelled = 0;
  {
    EngineInstance inner = MakeEngine(db, variant);
    auto durable = DurableCoordinationService::Create(inner.service.get(),
                                                      &db, durability);
    if (!durable.ok()) {
      run.error = "crash: Create failed: " + durable.status().ToString();
      return run;
    }
    (*durable)->set_delivery_callback(record);
    std::string err = ReplayWorkloadEvents(durable->get(), prefix);
    if (!err.empty()) {
      run.error = "crash (pre-crash half): " + err;
      return run;
    }
    pre_cancelled = (*durable)->StatsSnapshot().cancelled;
    // Crash: scope exit destroys the decorator and the inner engine
    // with whatever the WAL holds — no rotation, no final snapshot.
  }

  auto state = ReadDurableState(dir.path());
  if (!state.ok()) {
    run.error = "crash: ReadDurableState failed: " + state.status().ToString();
    return run;
  }
  if (state->report.corruption_detected) {
    run.error = "crash: clean log misread as corrupt: " +
                state->report.corruption_detail;
    return run;
  }
  // Replayed tail cancels were already counted by the pre-crash engine;
  // subtract them so the concatenated stats.cancelled matches an
  // uninterrupted run (a clean log re-applies every one: anomalies==0).
  uint64_t tail_cancels = 0;
  for (const WalRecord& tail_record : state->tail) {
    if (tail_record.kind == WalRecord::Kind::kCancel) ++tail_cancels;
  }

  Database recovered_db;
  Status facts = BuildDatabaseFromSnapshot(state->snapshot, &recovered_db);
  if (!facts.ok()) {
    run.error = "crash: BuildDatabaseFromSnapshot failed: " + facts.ToString();
    return run;
  }
  EngineInstance inner = MakeEngine(recovered_db, variant);
  auto durable = DurableCoordinationService::Create(inner.service.get(),
                                                    &recovered_db, durability);
  if (!durable.ok()) {
    run.error = "crash: re-Create failed: " + durable.status().ToString();
    return run;
  }
  (*durable)->set_delivery_callback(record);
  Status recovered = (*durable)->Recover(std::move(*state),
                                         /*sessions=*/nullptr);
  if (!recovered.ok()) {
    run.error = "crash: Recover failed: " + recovered.ToString();
    return run;
  }
  const RecoveryReport& report = (*durable)->recovery_report();
  if (report.anomalies > 0) {
    run.error = "crash: " + std::to_string(report.anomalies) +
                " replay anomalies on a clean log: " + report.ToString();
    return run;
  }
  std::string err = ReplayWorkloadEvents(durable->get(), suffix);
  if (!err.empty()) {
    run.error = "crash (post-recovery half): " + err;
    return run;
  }
  run.final_pending = (*durable)->PendingQueries();
  run.pending_count = (*durable)->num_pending();
  run.stats = (*durable)->StatsSnapshot();
  run.stats.cancelled += pre_cancelled;
  run.stats.cancelled -= tail_cancels;
  return run;
}

}  // namespace

std::string ReplayWorkloadEvents(CoordinationService* engine,
                                 const std::vector<WorkloadEvent>& events) {
  ENTANGLED_CHECK(engine != nullptr);
  for (const WorkloadEvent& event : events) {
    switch (event.kind) {
      case WorkloadEvent::Kind::kSubmit: {
        auto id = engine->Submit(event.texts.front());
        if (!id.ok()) {
          return "Submit rejected a generated query: " +
                 id.status().ToString();
        }
        break;
      }
      case WorkloadEvent::Kind::kSubmitBatch: {
        auto ids = engine->SubmitBatch(event.texts);
        if (!ids.ok()) {
          return "SubmitBatch rejected a generated batch: " +
                 ids.status().ToString();
        }
        break;
      }
      case WorkloadEvent::Kind::kCancel: {
        // Rank-addressed so every engine being compared cancels the
        // same query id (pending sets agree while the engines agree).
        std::vector<QueryId> pending = engine->PendingQueries();
        if (!pending.empty()) {
          engine->Cancel(pending[event.cancel_rank % pending.size()]);
        }
        break;
      }
      case WorkloadEvent::Kind::kSetEvaluateEvery:
        engine->set_evaluate_every(event.evaluate_every);
        break;
      case WorkloadEvent::Kind::kFlush:
        engine->Flush();
        break;
    }
  }
  return "";
}

StressHarness::StressHarness(StressOptions options)
    : options_(std::move(options)) {
  ENTANGLED_CHECK(!options_.flush_thread_counts.empty());
}

std::string StressHarness::CheckOnce(const Database& db,
                                     const std::vector<WorkloadEvent>& events,
                                     size_t* oracle_deliveries,
                                     StressReplay* single_thread,
                                     size_t* quota_bounces) const {
  StressReplay oracle = Replay(db, OracleVariant(), events);
  if (oracle_deliveries != nullptr) *oracle_deliveries = oracle.log.size();
  std::string err = CheckInvariants("oracle", oracle);
  if (!err.empty()) return err;
  // Incremental variants: every flush-thread count crossed with every
  // intake capacity, and (for multi-threaded flushes only) every chunk
  // size.  All of them promise the oracle's byte-identical output.
  const std::vector<size_t> kInlineOnly = {0};
  const std::vector<size_t>& capacities =
      options_.intake_capacities.empty() ? kInlineOnly
                                         : options_.intake_capacities;
  for (size_t threads : options_.flush_thread_counts) {
    const std::vector<size_t> kDefaultChunk = {0};
    const std::vector<size_t>& chunks =
        (threads > 1 && !options_.flush_chunks.empty()) ? options_.flush_chunks
                                                        : kDefaultChunk;
    for (size_t capacity : capacities) {
      for (size_t chunk : chunks) {
        std::string label =
            "incremental[flush_threads=" + std::to_string(threads) +
            ",intake=" + std::to_string(capacity);
        if (chunk > 0) label += ",chunk=" + std::to_string(chunk);
        label += "]";
        StressReplay run = Replay(
            db, IncrementalVariant(threads, options_.fault, capacity, chunk),
            events);
        err = CheckInvariants(label, run);
        if (!err.empty()) return err;
        err = CompareRuns("oracle", oracle, label, run);
        if (!err.empty()) return err;
        if (threads == 1 && capacity == 0 && single_thread != nullptr) {
          *single_thread = std::move(run);
        }
      }
    }
  }
  // The sharded front door promises the same byte-identical contract at
  // any shard-pool width; hold it to that on every stream.
  for (size_t threads : options_.shard_thread_counts) {
    const std::string label =
        "sharded[shard_threads=" + std::to_string(threads) + "]";
    StressReplay run =
        Replay(db, ShardedVariant(threads, options_.fault), events);
    err = CheckInvariants(label, run);
    if (!err.empty()) return err;
    err = CompareRuns("oracle", oracle, label, run);
    if (!err.empty()) return err;
  }
  // Kill-and-rehydrate: wrap one inline incremental, one
  // deferred-intake incremental, and one sharded variant in the
  // durability decorator, crash after a stream-dependent prefix,
  // recover from disk, and require the concatenated delivery stream —
  // ids, witnesses, resumed sequences, final pending set — to be
  // byte-identical to the uninterrupted oracle.
  if (options_.crash_at_event > 0) {
    const size_t crash_index = options_.crash_at_event % (events.size() + 1);
    std::vector<std::pair<std::string, EngineVariant>> crashed;
    const size_t inc_threads = options_.flush_thread_counts.front();
    crashed.emplace_back(
        "crash[incremental,flush_threads=" + std::to_string(inc_threads) + "]",
        IncrementalVariant(inc_threads, options_.fault));
    for (size_t capacity : capacities) {
      if (capacity == 0) continue;
      crashed.emplace_back("crash[incremental,intake=" +
                               std::to_string(capacity) + "]",
                           IncrementalVariant(1, options_.fault, capacity));
      break;
    }
    if (!options_.shard_thread_counts.empty()) {
      const size_t threads = options_.shard_thread_counts.front();
      crashed.emplace_back(
          "crash[sharded,shard_threads=" + std::to_string(threads) + "]",
          ShardedVariant(threads, options_.fault));
    }
    for (const auto& [label, variant] : crashed) {
      StressReplay run = CrashRecoveryReplay(db, variant, events, crash_index);
      if (!run.error.empty()) {
        return label + "@" + std::to_string(crash_index) + ": " + run.error;
      }
      err = CompareRuns("oracle", oracle,
                        label + "@" + std::to_string(crash_index), run);
      if (!err.empty()) return err;
    }
  }
  // Rebuild-merge baseline: the small-into-large migration policy and
  // the historical rebuild-everything policy must be byte-identical
  // (the schedule keys make merge mechanics unobservable).  One width
  // suffices — merge policy is orthogonal to the flush pool.
  if (options_.cross_rebuild_merges &&
      !options_.shard_thread_counts.empty()) {
    const size_t threads = options_.shard_thread_counts.front();
    const std::string label = "sharded[shard_threads=" +
                              std::to_string(threads) + ",rebuild_merges]";
    StressReplay run =
        Replay(db,
               ShardedVariant(threads, options_.fault, /*delta_eval=*/true,
                              /*rebuild_merges=*/true),
               events);
    err = CheckInvariants(label, run);
    if (!err.empty()) return err;
    err = CompareRuns("oracle", oracle, label, run);
    if (!err.empty()) return err;
  }
  // Delta-aware evaluation off: the memoization/skip machinery must be
  // a pure optimization — disabling it cannot change any outcome.  One
  // incremental variant per flush-thread count plus one sharded width.
  if (options_.cross_delta_eval) {
    for (size_t threads : options_.flush_thread_counts) {
      const std::string label =
          "incremental[flush_threads=" + std::to_string(threads) +
          ",delta_eval=off]";
      StressReplay run = Replay(
          db,
          IncrementalVariant(threads, options_.fault, /*intake_capacity=*/0,
                             /*flush_chunk=*/0, /*delta_eval=*/false),
          events);
      err = CheckInvariants(label, run);
      if (!err.empty()) return err;
      err = CompareRuns("oracle", oracle, label, run);
      if (!err.empty()) return err;
    }
    if (!options_.shard_thread_counts.empty()) {
      const size_t threads = options_.shard_thread_counts.back();
      const std::string label = "sharded[shard_threads=" +
                                std::to_string(threads) + ",delta_eval=off]";
      StressReplay run = Replay(
          db, ShardedVariant(threads, options_.fault, /*delta_eval=*/false),
          events);
      err = CheckInvariants(label, run);
      if (!err.empty()) return err;
      err = CompareRuns("oracle", oracle, label, run);
      if (!err.empty()) return err;
    }
  }
  // The session front door must be a transparent overlay on every
  // variant: per-session push streams equal to the PollEvents() drains,
  // and the merged view byte-identical to the oracle.
  if (options_.session_count > 0) {
    std::vector<std::pair<std::string, EngineVariant>> wrapped;
    for (size_t threads : options_.flush_thread_counts) {
      wrapped.emplace_back(
          "sessions[incremental,flush_threads=" + std::to_string(threads) +
              "]",
          IncrementalVariant(threads, options_.fault));
    }
    // One armed-intake session variant: the session layer registers
    // queued ids optimistically and relies on drain-time OnDelivery to
    // settle them, which only an AdmitsDeferred service exercises.
    for (size_t capacity : capacities) {
      if (capacity == 0) continue;
      wrapped.emplace_back(
          "sessions[incremental,flush_threads=1,intake=" +
              std::to_string(capacity) + "]",
          IncrementalVariant(1, options_.fault, capacity));
      break;
    }
    for (size_t threads : options_.shard_thread_counts) {
      wrapped.emplace_back(
          "sessions[sharded,shard_threads=" + std::to_string(threads) + "]",
          ShardedVariant(threads, options_.fault));
    }
    for (const auto& [label, variant] : wrapped) {
      SessionReplayRun run =
          ReplayThroughSessions(db, variant, events, options_.session_count);
      if (!run.error.empty()) return label + ": " + run.error;
      err = CheckInvariants(label, run.flat);
      if (!err.empty()) return err;
      err = CompareRuns("oracle", oracle, label, run.flat);
      if (!err.empty()) return err;
    }
  }
  // Quota-armed session differential: rejected submissions never reach
  // the service, so the armed run must be byte-identical to an oracle
  // fed only the accepted events — and every bounce must surface as a
  // typed, metrics-counted kQuotaPending outcome (no silent drops).
  if (options_.session_count > 0 && options_.quota_max_session_pending > 0) {
    SessionOptions armed;
    armed.max_pending = options_.quota_max_session_pending;
    std::vector<std::pair<std::string, EngineVariant>> armed_variants;
    armed_variants.emplace_back(
        "sessions[quota,incremental]",
        IncrementalVariant(1, options_.fault));
    if (!options_.shard_thread_counts.empty()) {
      armed_variants.emplace_back(
          "sessions[quota,sharded]",
          ShardedVariant(options_.shard_thread_counts.front(),
                         options_.fault));
    }
    for (const auto& [label, variant] : armed_variants) {
      QuotaObservations quota;
      SessionReplayRun run = ReplayThroughSessions(
          db, variant, events, options_.session_count, armed, &quota);
      if (!run.error.empty()) return label + ": " + run.error;
      err = CheckInvariants(label, run.flat);
      if (!err.empty()) return err;
      StressReplay filtered = Replay(db, OracleVariant(), quota.accepted);
      err = CheckInvariants("oracle[accepted-only]", filtered);
      if (!err.empty()) return err;
      err = CompareRuns("oracle[accepted-only]", filtered, label, run.flat);
      if (!err.empty()) return err;
      size_t total_texts = 0;
      for (const WorkloadEvent& event : events) {
        total_texts += event.texts.size();
      }
      size_t accepted_texts = 0;
      for (const WorkloadEvent& event : quota.accepted) {
        accepted_texts += event.texts.size();
      }
      if (accepted_texts + quota.bounced_texts != total_texts) {
        return label + ": " + std::to_string(total_texts) +
               " texts submitted but " + std::to_string(accepted_texts) +
               " accepted + " + std::to_string(quota.bounced_texts) +
               " bounced (a submission was silently dropped)";
      }
      if (quota.counted != quota.bounced_calls) {
        return label + ": metrics counted " + std::to_string(quota.counted) +
               " quota_pending rejections but the replay observed " +
               std::to_string(quota.bounced_calls);
      }
      if (quota_bounces != nullptr) {
        *quota_bounces = std::max(*quota_bounces, quota.bounced_calls);
      }
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Metamorphic variants
// ---------------------------------------------------------------------------

std::string StressHarness::RunMetamorphic(
    const GeneratorOptions& gen, const Database& db,
    const GeneratedWorkload& workload, const StressReplay& base) const {
  // --- (1) within-batch submission-order permutation -------------------
  // Permuting a batch renumbers its queries, so the permuted stream is
  // verified differentially in its own right; delivered *sets* are
  // additionally compared up to the renaming for structures where the
  // engine is provably order-invariant.  (Stars and random graphs can
  // hold several equal-size coordinating sets — the solver's documented
  // tie-break follows discovery order, which tracks submission order —
  // and cancels are rank-addressed, so strict set equality would
  // over-assert there.)
  {
    Rng rng(gen.seed ^ kPermutationSalt);
    std::vector<WorkloadEvent> permuted = workload.events;
    std::vector<QueryId> perm_to_base;  // permuted id -> baseline id
    QueryId next_id = 0;
    bool any_batch = false;
    for (WorkloadEvent& event : permuted) {
      if (event.kind == WorkloadEvent::Kind::kSubmit) {
        perm_to_base.push_back(next_id++);
      } else if (event.kind == WorkloadEvent::Kind::kSubmitBatch) {
        const size_t n = event.texts.size();
        std::vector<size_t> order(n);
        std::iota(order.begin(), order.end(), size_t{0});
        rng.Shuffle(&order);
        std::vector<std::string> texts(n);
        for (size_t i = 0; i < n; ++i) {
          texts[i] = event.texts[order[i]];
          perm_to_base.push_back(next_id + static_cast<QueryId>(order[i]));
        }
        any_batch = any_batch || n > 1;
        event.texts = std::move(texts);
        next_id += static_cast<QueryId>(n);
      }
    }
    if (any_batch) {
      std::string err = CheckOnce(db, permuted, nullptr);
      if (!err.empty()) {
        return "metamorphic[batch permutation]: permuted stream diverged: " +
               err;
      }
      const bool order_invariant =
          !HasCancel(workload.events) && gen.sharing_density == 0 &&
          (gen.topology == GraphTopology::kChain ||
           gen.topology == GraphTopology::kClique);
      if (order_invariant) {
        StressReplay perm =
            Replay(db, IncrementalVariant(1, options_.fault), permuted);
        if (CanonicalSets(base.log, {}) !=
            CanonicalSets(perm.log, perm_to_base)) {
          return "metamorphic[batch permutation]: delivered coordinating "
                 "sets changed under within-batch permutation\n  base:     " +
                 LogToString(base.log) + "\n  permuted: " +
                 LogToString(perm.log);
        }
        std::vector<QueryId> pending;
        for (QueryId q : perm.final_pending) {
          pending.push_back(perm_to_base[static_cast<size_t>(q)]);
        }
        std::sort(pending.begin(), pending.end());
        if (pending != base.final_pending) {
          return "metamorphic[batch permutation]: final pending set changed "
                 "under within-batch permutation";
        }
      }
    }
  }

  // --- (2) relation row shuffling --------------------------------------
  // Row order affects which witness the evaluator finds, never whether
  // one exists: the delivered sets, their order, and the pending set
  // must be identical; witnesses are revalidated inside the replay.
  {
    GeneratorOptions shuffled = gen;
    shuffled.row_shuffle_seed = gen.seed ^ kRowShuffleSalt;
    if (shuffled.row_shuffle_seed == 0) shuffled.row_shuffle_seed = 1;
    Database shuffled_db;
    Status built = WorkloadGenerator(shuffled).BuildDatabase(&shuffled_db);
    ENTANGLED_CHECK(built.ok()) << built.ToString();
    StressReplay variant = Replay(
        shuffled_db, IncrementalVariant(1, options_.fault), workload.events);
    if (!variant.error.empty()) {
      return "metamorphic[row shuffle]: " + variant.error;
    }
    if (base.log.size() != variant.log.size()) {
      return "metamorphic[row shuffle]: delivery count changed under row "
             "shuffling: " +
             std::to_string(base.log.size()) + " vs " +
             std::to_string(variant.log.size());
    }
    for (size_t i = 0; i < base.log.size(); ++i) {
      if (base.log[i].queries != variant.log[i].queries) {
        return "metamorphic[row shuffle]: delivery " + std::to_string(i) +
               " changed under row shuffling: " +
               IdsToString(base.log[i].queries) + " vs " +
               IdsToString(variant.log[i].queries);
      }
    }
    if (base.final_pending != variant.final_pending) {
      return "metamorphic[row shuffle]: final pending set changed under "
             "row shuffling";
    }
  }

  // --- (3) symbol renaming through the interner ------------------------
  // Prefixing every generated string constant yields the same scenario
  // up to an injective renaming: identical delivered sets in identical
  // order, witnesses equal after mapping string values through the
  // renaming (integers untouched).
  {
    GeneratorOptions renamed = gen;
    renamed.symbol_prefix = "Rn" + gen.symbol_prefix;
    WorkloadGenerator renamed_generator(renamed);
    Database renamed_db;
    Status built = renamed_generator.BuildDatabase(&renamed_db);
    ENTANGLED_CHECK(built.ok()) << built.ToString();
    GeneratedWorkload renamed_workload = renamed_generator.Generate();
    if (renamed_workload.events.size() != workload.events.size()) {
      return "metamorphic[symbol renaming]: generator is not "
             "prefix-invariant (event counts differ)";
    }
    StressReplay variant =
        Replay(renamed_db, IncrementalVariant(1, options_.fault),
               renamed_workload.events);
    if (!variant.error.empty()) {
      return "metamorphic[symbol renaming]: " + variant.error;
    }
    if (base.log.size() != variant.log.size()) {
      return "metamorphic[symbol renaming]: delivery count changed under "
             "renaming: " +
             std::to_string(base.log.size()) + " vs " +
             std::to_string(variant.log.size());
    }
    for (size_t i = 0; i < base.log.size(); ++i) {
      if (base.log[i].queries != variant.log[i].queries) {
        return "metamorphic[symbol renaming]: delivery " + std::to_string(i) +
               " changed under renaming: " +
               IdsToString(base.log[i].queries) + " vs " +
               IdsToString(variant.log[i].queries);
      }
      const Binding& base_witness = base.log[i].assignment;
      const Binding& renamed_witness = variant.log[i].assignment;
      if (base_witness.size() != renamed_witness.size()) {
        return "metamorphic[symbol renaming]: witness arity changed at "
               "delivery " +
               std::to_string(i);
      }
      std::string mismatch;
      base_witness.ForEach([&](VarId var, const Value& value) {
        if (!mismatch.empty()) return;
        const Value* other = renamed_witness.Find(var);
        if (other == nullptr) {
          mismatch = "variable ?" + std::to_string(var) +
                     " unbound in the renamed witness";
          return;
        }
        if (value.is_int()) {
          if (*other != value) {
            mismatch = "integer witness value changed under renaming";
          }
        } else if (!other->is_string() ||
                   other->AsString() != "Rn" + value.AsString()) {
          mismatch = "string witness '" + value.AsString() +
                     "' did not map to its renamed form";
        }
      });
      if (!mismatch.empty()) {
        return "metamorphic[symbol renaming]: delivery " + std::to_string(i) +
               ": " + mismatch;
      }
    }
    if (base.final_pending != variant.final_pending) {
      return "metamorphic[symbol renaming]: final pending set changed "
             "under renaming";
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

std::vector<WorkloadEvent> StressHarness::Shrink(
    const Database& db, const std::vector<WorkloadEvent>& events) const {
  size_t budget = options_.max_shrink_replays;
  auto fails = [&](const std::vector<WorkloadEvent>& candidate) {
    if (budget == 0) return false;  // exhausted: stop improving
    --budget;
    return !CheckOnce(db, candidate, nullptr).empty();
  };
  WorkloadEvent flush;
  flush.kind = WorkloadEvent::Kind::kFlush;
  auto prefix_of = [&](size_t n) {
    std::vector<WorkloadEvent> prefix(events.begin(),
                                      events.begin() +
                                          static_cast<std::ptrdiff_t>(n));
    // A trailing flush surfaces divergence hiding in pending work.
    prefix.push_back(flush);
    return prefix;
  };

  // Binary search for a small failing prefix.  Divergence is not
  // strictly monotonic in prefix length, so the result is re-verified
  // and the search is best-effort.
  size_t lo = 1, hi = events.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (fails(prefix_of(mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<WorkloadEvent> best = prefix_of(lo);
  if (!fails(best)) return events;  // non-monotonic case: keep the original

  // Greedy single-event removal to a local minimum.
  for (size_t i = best.size(); i-- > 0;) {
    if (best.size() <= 2) break;
    std::vector<WorkloadEvent> candidate = best;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
    if (fails(candidate)) best = std::move(candidate);
  }
  return best;
}

std::string FormatReproduction(const GeneratorOptions* gen,
                               const std::vector<WorkloadEvent>& events,
                               size_t original_events) {
  std::ostringstream out;
  out << "STRESS_REPRO ";
  if (gen != nullptr) {
    out << "seed=" << gen->seed << " topology=" << TopologyName(gen->topology)
        << " queries=" << gen->num_queries << " ";
  } else {
    out << "directed-stream ";
  }
  out << "events=" << events.size() << "/" << original_events << "\n";
  GeneratedWorkload view;
  view.events = events;
  out << WorkloadToString(view);
  return out.str();
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

StressReport StressHarness::VerifyEvents(
    const Database& db, const std::vector<WorkloadEvent>& events) const {
  StressReport report;
  report.events = events.size();
  for (const WorkloadEvent& event : events) {
    report.submitted += event.texts.size();
  }
  report.failure = CheckOnce(db, events, &report.deliveries,
                             /*single_thread=*/nullptr,
                             &report.quota_bounces);
  report.ok = report.failure.empty();
  if (!report.ok && options_.shrink_on_failure) {
    std::vector<WorkloadEvent> shrunk = Shrink(db, events);
    report.shrunk_events = shrunk.size();
    report.reproduction = FormatReproduction(nullptr, shrunk, events.size());
  }
  return report;
}

StressReport StressHarness::RunScenario(const GeneratorOptions& gen) const {
  WorkloadGenerator generator(gen);
  GeneratedWorkload workload = generator.Generate();
  Database db;
  Status built = generator.BuildDatabase(&db);
  ENTANGLED_CHECK(built.ok()) << built.ToString();

  StressReport report;
  report.events = workload.events.size();
  report.submitted = workload.num_queries;
  StressReplay single_thread;
  bool have_single_thread =
      std::find(options_.flush_thread_counts.begin(),
                options_.flush_thread_counts.end(),
                size_t{1}) != options_.flush_thread_counts.end();
  report.failure = CheckOnce(db, workload.events, &report.deliveries,
                             &single_thread, &report.quota_bounces);
  const bool base_failed = !report.failure.empty();
  if (!base_failed && options_.run_metamorphic) {
    if (!have_single_thread) {
      single_thread =
          Replay(db, IncrementalVariant(1, options_.fault), workload.events);
    }
    report.failure = RunMetamorphic(gen, db, workload, single_thread);
  }
  report.ok = report.failure.empty();
  if (!report.ok && options_.shrink_on_failure) {
    // Metamorphic failures are reported unshrunk (the shrinking
    // predicate is the base differential); engine bugs and injected
    // faults surface there, so those streams do shrink.
    std::vector<WorkloadEvent> shrunk =
        base_failed ? Shrink(db, workload.events) : workload.events;
    report.shrunk_events = shrunk.size();
    report.reproduction =
        FormatReproduction(&gen, shrunk, workload.events.size());
  }
  return report;
}

}  // namespace entangled
