#ifndef ENTANGLED_COMMON_ARENA_H_
#define ENTANGLED_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace entangled {

/// \brief Bump allocator for flush-local scratch.
///
/// One flush builds thousands of tiny, identically-scoped allocations
/// (wave lists, heap storage, member scratch); Arena turns each of them
/// into a pointer bump and frees them all at once with Reset().  Not
/// thread-safe: each worker owns its own arena.
///
/// Layout: one primary block (the construction capacity, retained
/// across Reset) plus overflow blocks allocated geometrically when the
/// primary fills.  Requests larger than half the next block size get a
/// dedicated block so they never strand bump space.  Reset() drops every
/// overflow block but keeps the primary, so a warmed-up arena serves a
/// steady-state flush without touching the global heap at all.
class Arena {
 public:
  explicit Arena(size_t initial_capacity = 16 * 1024)
      : primary_size_(initial_capacity < kMinBlock ? kMinBlock
                                                   : initial_capacity) {
    primary_.reset(new char[primary_size_]);
    cursor_ = primary_.get();
    end_ = cursor_ + primary_size_;
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two,
  /// at most alignof(std::max_align_t) honored from the block base).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    ENTANGLED_CHECK(align != 0 && (align & (align - 1)) == 0)
        << "Arena alignment must be a power of two, got " << align;
    if (bytes == 0) bytes = 1;
    uintptr_t p = reinterpret_cast<uintptr_t>(cursor_);
    uintptr_t aligned = (p + align - 1) & ~(uintptr_t{align} - 1);
    size_t padding = aligned - p;
    if (padding + bytes <= static_cast<size_t>(end_ - cursor_)) {
      cursor_ = reinterpret_cast<char*>(aligned) + bytes;
      bytes_used_ += padding + bytes;
      return reinterpret_cast<void*>(aligned);
    }
    return AllocateSlow(bytes, align);
  }

  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Constructs a T in arena storage.  The arena never runs
  /// destructors — only use for trivially destructible scratch or
  /// objects whose teardown the caller handles before Reset().
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    return ::new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Frees everything at once: overflow blocks are released, the
  /// primary block is retained and the bump cursor rewinds to its base.
  void Reset() {
    overflow_.clear();
    cursor_ = primary_.get();
    end_ = cursor_ + primary_size_;
    bytes_used_ = 0;
  }

  /// Bytes handed out (including alignment padding) since the last
  /// Reset().
  size_t bytes_used() const { return bytes_used_; }

  /// Bytes of backing storage currently owned (primary + overflow).
  size_t bytes_reserved() const {
    size_t total = primary_size_;
    for (const Block& b : overflow_) total += b.size;
    return total;
  }

  /// Overflow blocks live right now (0 after Reset or while the
  /// primary block suffices).
  size_t overflow_blocks() const { return overflow_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  static constexpr size_t kMinBlock = 1024;
  static constexpr size_t kMaxBlock = 1 << 20;

  void* AllocateSlow(size_t bytes, size_t align) {
    // Oversized requests get a dedicated block and leave the current
    // bump region untouched, so one large outlier does not strand the
    // remaining primary space.
    size_t next = next_block_size_;
    if (bytes + align > next / 2) {
      Block block;
      block.size = bytes + align;
      block.data.reset(new char[block.size]);
      uintptr_t p = reinterpret_cast<uintptr_t>(block.data.get());
      uintptr_t aligned = (p + align - 1) & ~(uintptr_t{align} - 1);
      overflow_.push_back(std::move(block));
      bytes_used_ += bytes;
      return reinterpret_cast<void*>(aligned);
    }
    Block block;
    block.size = next;
    block.data.reset(new char[block.size]);
    cursor_ = block.data.get();
    end_ = cursor_ + block.size;
    overflow_.push_back(std::move(block));
    if (next_block_size_ < kMaxBlock) next_block_size_ *= 2;
    return Allocate(bytes, align);
  }

  std::unique_ptr<char[]> primary_;
  size_t primary_size_;
  char* cursor_ = nullptr;
  char* end_ = nullptr;
  std::vector<Block> overflow_;
  size_t next_block_size_ = kMinBlock * 4;
  size_t bytes_used_ = 0;
};

/// \brief Minimal C++17 allocator over an Arena, for STL containers
/// whose lifetime is one flush (deallocate is a no-op; Reset() reclaims
/// the storage wholesale).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T*, size_t) {}  // reclaimed by Arena::Reset()

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_;
};

}  // namespace entangled

#endif  // ENTANGLED_COMMON_ARENA_H_
