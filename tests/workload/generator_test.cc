// Unit coverage of the randomized workload generator: determinism,
// knob behaviour, parseability and well-formedness of every generated
// query, topology shapes over the resulting coordination graph, and
// the metamorphic hooks (symbol_prefix, row_shuffle_seed) the stress
// harness builds on.

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/coordination_graph.h"
#include "core/parser.h"
#include "core/query.h"
#include "db/database.h"
#include "workload/generator.h"

namespace entangled {
namespace {

std::vector<std::string> AllTexts(const GeneratedWorkload& workload) {
  std::vector<std::string> texts;
  for (const WorkloadEvent& event : workload.events) {
    for (const std::string& text : event.texts) texts.push_back(text);
  }
  return texts;
}

TEST(WorkloadGeneratorTest, GenerationIsDeterministic) {
  GeneratorOptions options;
  options.seed = 42;
  options.topology = GraphTopology::kErdosRenyi;
  WorkloadGenerator a(options);
  WorkloadGenerator b(options);
  GeneratedWorkload wa = a.Generate();
  GeneratedWorkload wb = b.Generate();
  EXPECT_EQ(WorkloadToString(wa), WorkloadToString(wb));
  EXPECT_EQ(wa.num_queries, wb.num_queries);

  Database da, db;
  ASSERT_TRUE(a.BuildDatabase(&da).ok());
  ASSERT_TRUE(b.BuildDatabase(&db).ok());
  ASSERT_EQ(da.relation_names(), db.relation_names());
  for (const std::string& name : da.relation_names()) {
    const Relation* ra = da.Find(name);
    const Relation* rb = db.Find(name);
    ASSERT_EQ(ra->size(), rb->size());
    for (RowId r = 0; r < ra->size(); ++r) {
      EXPECT_EQ(ra->row(r).ToTuple(), rb->row(r).ToTuple());
    }
  }
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions a;
  a.seed = 1;
  GeneratorOptions b;
  b.seed = 2;
  EXPECT_NE(WorkloadToString(WorkloadGenerator(a).Generate()),
            WorkloadToString(WorkloadGenerator(b).Generate()));
}

TEST(WorkloadGeneratorTest, EveryQueryParsesAndIsWellFormed) {
  for (GraphTopology topology : AllTopologies()) {
    GeneratorOptions options;
    options.seed = 7;
    options.topology = topology;
    options.num_queries = 30;
    options.sharing_density = 0.5;
    options.unsafe_rate = 0.3;
    WorkloadGenerator generator(options);
    Database db;
    ASSERT_TRUE(generator.BuildDatabase(&db).ok());
    GeneratedWorkload workload = generator.Generate();

    QuerySet set;
    for (const std::string& text : AllTexts(workload)) {
      auto id = ParseQuery(text, &set);
      ASSERT_TRUE(id.ok()) << TopologyName(topology) << ": " << text << "\n"
                           << id.status();
    }
    EXPECT_EQ(set.size(), workload.num_queries);
    EXPECT_TRUE(set.CheckWellFormed(db).ok()) << TopologyName(topology);
  }
}

TEST(WorkloadGeneratorTest, StreamEndsWithFlushAndCountsSubmissions) {
  GeneratorOptions options;
  options.seed = 11;
  options.num_queries = 20;
  GeneratedWorkload workload = WorkloadGenerator(options).Generate();
  ASSERT_FALSE(workload.events.empty());
  EXPECT_EQ(workload.events.back().kind, WorkloadEvent::Kind::kFlush);
  EXPECT_EQ(AllTexts(workload).size(), workload.num_queries);
  EXPECT_GE(workload.num_queries, options.num_queries);
}

TEST(WorkloadGeneratorTest, BatchMixKnobControlsBatches) {
  GeneratorOptions never;
  never.seed = 5;
  never.batch_rate = 0.0;
  for (const WorkloadEvent& event : WorkloadGenerator(never).Generate().events) {
    EXPECT_NE(event.kind, WorkloadEvent::Kind::kSubmitBatch);
  }

  GeneratorOptions always;
  always.seed = 5;
  always.batch_rate = 1.0;
  size_t batches = 0;
  for (const WorkloadEvent& event :
       WorkloadGenerator(always).Generate().events) {
    if (event.kind == WorkloadEvent::Kind::kSubmitBatch) {
      ++batches;
      EXPECT_GE(event.texts.size(), 2u);
      EXPECT_LE(event.texts.size(), always.max_batch);
    }
  }
  EXPECT_GT(batches, 0u);
}

TEST(WorkloadGeneratorTest, CancelRateKnobControlsCancels) {
  GeneratorOptions none;
  none.seed = 9;
  none.cancel_rate = 0.0;
  for (const WorkloadEvent& event : WorkloadGenerator(none).Generate().events) {
    EXPECT_NE(event.kind, WorkloadEvent::Kind::kCancel);
  }
  GeneratorOptions heavy;
  heavy.seed = 9;
  heavy.cancel_rate = 1.0;
  size_t cancels = 0;
  for (const WorkloadEvent& event :
       WorkloadGenerator(heavy).Generate().events) {
    if (event.kind == WorkloadEvent::Kind::kCancel) ++cancels;
  }
  EXPECT_GT(cancels, 0u);
}

/// The generated query-sharing structure actually follows the
/// requested topology: parse everything, build the batch coordination
/// graph, and check the per-group edge shapes.
TEST(WorkloadGeneratorTest, TopologyShapesTheCoordinationGraph) {
  struct Expectation {
    GraphTopology topology;
    // Per group of size k (no twins/bridges): expected edge count.
    std::function<size_t(size_t)> edges;
  };
  const std::vector<Expectation> expectations = {
      {GraphTopology::kChain, [](size_t k) { return k - 1; }},
      {GraphTopology::kStar, [](size_t k) { return k - 1; }},
      {GraphTopology::kClique, [](size_t k) { return k * (k - 1); }},
  };
  for (const Expectation& expectation : expectations) {
    GeneratorOptions options;
    options.seed = 21;
    options.topology = expectation.topology;
    options.num_queries = 18;
    options.sharing_density = 0.0;
    options.unsafe_rate = 0.0;
    GeneratedWorkload workload = WorkloadGenerator(options).Generate();

    QuerySet set;
    auto ids = ParseQueries(
        [&] {
          std::string all;
          for (const std::string& text : AllTexts(workload)) {
            all += text + "\n";
          }
          return all;
        }(),
        &set);
    ASSERT_TRUE(ids.ok()) << ids.status();

    // Group queries by name prefix ("q<g>_"), count intra-group edges.
    ExtendedCoordinationGraph graph(set);
    std::map<std::string, size_t> group_sizes;
    for (const EntangledQuery& query : set.queries()) {
      group_sizes[query.name.substr(0, query.name.find('_'))]++;
    }
    std::map<std::string, size_t> group_edges;
    for (const ExtendedEdge& edge : graph.edges()) {
      const std::string from = set.query(edge.from).name;
      const std::string to = set.query(edge.to).name;
      const std::string group = from.substr(0, from.find('_'));
      ASSERT_EQ(group, to.substr(0, to.find('_')))
          << "sharing_density=0 must not produce cross-group edges";
      group_edges[group]++;
    }
    for (const auto& [group, size] : group_sizes) {
      EXPECT_EQ(group_edges[group], expectation.edges(size))
          << TopologyName(expectation.topology) << " group " << group
          << " of size " << size;
    }
  }
}

TEST(WorkloadGeneratorTest, UnsafeRateProducesDuplicateHeadTwins) {
  GeneratorOptions options;
  options.seed = 33;
  options.topology = GraphTopology::kClique;
  options.num_queries = 30;
  options.unsafe_rate = 1.0;
  GeneratedWorkload workload = WorkloadGenerator(options).Generate();
  size_t twins = 0;
  for (const std::string& text : AllTexts(workload)) {
    if (text.find("_t") != std::string::npos) ++twins;
  }
  EXPECT_GT(twins, 0u);
  EXPECT_GT(workload.num_queries, options.num_queries);
}

TEST(WorkloadGeneratorTest, SymbolPrefixRenamesWithoutRestructuring) {
  GeneratorOptions base;
  base.seed = 13;
  base.num_queries = 16;
  GeneratorOptions renamed = base;
  renamed.symbol_prefix = "Zz";

  GeneratedWorkload base_workload = WorkloadGenerator(base).Generate();
  GeneratedWorkload renamed_workload = WorkloadGenerator(renamed).Generate();
  ASSERT_EQ(base_workload.events.size(), renamed_workload.events.size());
  for (size_t i = 0; i < base_workload.events.size(); ++i) {
    const WorkloadEvent& a = base_workload.events[i];
    const WorkloadEvent& b = renamed_workload.events[i];
    EXPECT_EQ(a.kind, b.kind);
    ASSERT_EQ(a.texts.size(), b.texts.size());
    for (size_t t = 0; t < a.texts.size(); ++t) {
      // Stripping the prefix everywhere recovers the base text.
      std::string stripped = b.texts[t];
      size_t at = 0;
      while ((at = stripped.find("Zz", at)) != std::string::npos) {
        stripped.erase(at, 2);
      }
      EXPECT_EQ(stripped, a.texts[t]);
    }
  }
}

TEST(WorkloadGeneratorTest, RowShuffleKeepsRowMultiset) {
  GeneratorOptions base;
  base.seed = 17;
  GeneratorOptions shuffled = base;
  shuffled.row_shuffle_seed = 999;

  Database a, b;
  ASSERT_TRUE(WorkloadGenerator(base).BuildDatabase(&a).ok());
  ASSERT_TRUE(WorkloadGenerator(shuffled).BuildDatabase(&b).ok());
  ASSERT_EQ(a.relation_names(), b.relation_names());
  bool any_reordered = false;
  for (const std::string& name : a.relation_names()) {
    const Relation* ra = a.Find(name);
    const Relation* rb = b.Find(name);
    ASSERT_EQ(ra->size(), rb->size());
    std::multiset<std::string> rows_a, rows_b;
    bool same_order = true;
    for (RowId r = 0; r < ra->size(); ++r) {
      rows_a.insert(TupleToString(ra->row(r)));
      rows_b.insert(TupleToString(rb->row(r)));
      same_order = same_order &&
                   TupleToString(ra->row(r)) == TupleToString(rb->row(r));
    }
    EXPECT_EQ(rows_a, rows_b) << name;
    any_reordered = any_reordered || !same_order;
  }
  EXPECT_TRUE(any_reordered) << "shuffle seed had no effect on any relation";
}

TEST(WorkloadGeneratorTest, EventRenderingCoversEveryKind) {
  WorkloadEvent submit;
  submit.kind = WorkloadEvent::Kind::kSubmit;
  submit.texts = {"q: { } A(B, x) :- ."};
  EXPECT_NE(EventToString(submit).find("SUBMIT"), std::string::npos);

  WorkloadEvent cancel;
  cancel.kind = WorkloadEvent::Kind::kCancel;
  cancel.cancel_rank = 5;
  EXPECT_EQ(EventToString(cancel), "CANCEL rank=5");

  WorkloadEvent cadence;
  cadence.kind = WorkloadEvent::Kind::kSetEvaluateEvery;
  cadence.evaluate_every = 3;
  EXPECT_EQ(EventToString(cadence), "EVAL_EVERY 3");

  WorkloadEvent flush;
  flush.kind = WorkloadEvent::Kind::kFlush;
  EXPECT_EQ(EventToString(flush), "FLUSH");
}

}  // namespace
}  // namespace entangled
