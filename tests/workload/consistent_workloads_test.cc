#include "workload/consistent_workloads.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "common/hash.h"

namespace entangled {
namespace {

TEST(ConsistentWorkloadTest, DistinctFlightsHaveDistinctCoordPairs) {
  Database db;
  ASSERT_TRUE(InstallDistinctFlightsTable(&db, "Flights", 250).ok());
  const Relation* flights = db.Find("Flights");
  ASSERT_NE(flights, nullptr);
  EXPECT_EQ(flights->size(), 250u);
  EXPECT_EQ(flights->arity(), 5u);
  // (destination, day) pairs are all distinct: |groups| == |rows|.
  EXPECT_EQ(flights->GroupBy({1, 2}).size(), 250u);
}

TEST(ConsistentWorkloadTest, GridCoversCrossProduct) {
  Database db;
  ASSERT_TRUE(InstallFlightsGrid(&db, "Flights", {"A", "B", "C"},
                                 {"d1", "d2"}, 4, {"NYC"}, {"Air"})
                  .ok());
  const Relation* flights = db.Find("Flights");
  EXPECT_EQ(flights->size(), 3u * 2u * 4u);
  EXPECT_EQ(flights->GroupBy({1, 2}).size(), 6u);
  for (const auto& [key, rows] : flights->GroupBy({1, 2})) {
    EXPECT_EQ(rows.size(), 4u);
  }
}

TEST(ConsistentWorkloadTest, GridRejectsEmptyPools) {
  Database db;
  EXPECT_TRUE(InstallFlightsGrid(&db, "Flights", {}, {"d"}, 1, {"s"},
                                 {"a"})
                  .IsInvalidArgument());
}

TEST(ConsistentWorkloadTest, CompleteFriendsHasAllPairs) {
  Database db;
  auto users = MakeUserNames(5);
  ASSERT_TRUE(InstallCompleteFriends(&db, "Friends", users).ok());
  const Relation* friends = db.Find("Friends");
  EXPECT_EQ(friends->size(), 5u * 4u);
  // No self-friendship.
  for (RowView row : friends->rows()) {
    EXPECT_NE(row[0], row[1]);
  }
}

TEST(ConsistentWorkloadTest, UserNamesAreSequential) {
  auto users = MakeUserNames(3);
  EXPECT_EQ(users,
            (std::vector<std::string>{"user0", "user1", "user2"}));
}

TEST(ConsistentWorkloadTest, WorstCaseQueriesAreAllWildcards) {
  auto queries = MakeWorstCaseConsistentQueries(4, 4);
  ASSERT_EQ(queries.size(), 4u);
  for (const ConsistentQuery& q : queries) {
    EXPECT_EQ(q.self_spec.size(), 4u);
    for (const auto& spec : q.self_spec) {
      EXPECT_FALSE(spec.has_value());
    }
    ASSERT_EQ(q.partners.size(), 1u);
    EXPECT_TRUE(q.partners[0].is_friend_variable());
  }
}

TEST(ConsistentWorkloadTest, FlightSchemaCoordinatesOnDestinationDay) {
  ConsistentSchema schema = MakeFlightSchema("Flights", "Friends");
  EXPECT_EQ(schema.thing_relation, "Flights");
  EXPECT_EQ(schema.friends_relation, "Friends");
  EXPECT_EQ(schema.coordination_attrs, (std::vector<size_t>{1, 2}));
}

}  // namespace
}  // namespace entangled
