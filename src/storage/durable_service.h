#ifndef ENTANGLED_STORAGE_DURABLE_SERVICE_H_
#define ENTANGLED_STORAGE_DURABLE_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "system/engine.h"

namespace entangled {

class SessionManager;

/// \brief Knobs of the durability decorator.
struct DurabilityOptions {
  /// Storage directory (must already exist).  An empty directory is
  /// initialized with a genesis snapshot (epoch 0, capturing the
  /// database facts present at Create time) plus an empty WAL segment;
  /// a non-empty one must be rehydrated through Recover() before use.
  std::string dir;

  FsyncPolicy fsync = FsyncPolicy::kEveryFlush;

  /// Rotate to a fresh snapshot + WAL segment after this many logged
  /// events (0 = only explicit SnapshotNow() calls).  Shorter intervals
  /// trade snapshot cost for shorter replay tails at recovery.
  uint64_t snapshot_every_events = 0;

  /// The evaluate_every the *inner* service was constructed with; the
  /// decorator mirrors the cadence phase (it never reads engine
  /// internals) and needs the initial rate to mirror from.
  size_t initial_evaluate_every = 1;
};

/// \brief What one Recover() did — the typed account fault-injection
/// tests assert on (corruption is detected and reported, never crashed
/// on and never silently skipped past).
struct RecoveryReport {
  bool used_snapshot = false;
  uint64_t snapshot_epoch = 0;
  /// Snapshots that failed to load (bad CRC / malformed) and were
  /// fallen past toward an older consistent point.
  uint64_t snapshots_skipped = 0;
  uint64_t segments_scanned = 0;
  uint64_t replayed_events = 0;    ///< WAL records re-applied
  uint64_t recovered_pending = 0;  ///< pending queries resubmitted
  /// Deliveries re-derived by the replay that had already reached
  /// clients pre-crash (below the watermark) and were therefore not
  /// re-forwarded.
  uint64_t suppressed_deliveries = 0;
  /// Deliveries re-derived by the replay *beyond* the watermark: they
  /// were in flight at the crash and are forwarded now.
  uint64_t reforwarded_deliveries = 0;
  bool torn_tail = false;
  uint64_t truncated_bytes = 0;  ///< torn-tail bytes dropped on open
  /// A non-tail frame failed its CRC (or decoded to garbage): real
  /// corruption.  Recovery still completes from the consistent prefix;
  /// records beyond the damage are unrecoverable and said so here.
  bool corruption_detected = false;
  std::string corruption_detail;
  /// Logged records that could not be re-applied (e.g. a cancel whose
  /// target is not pending) — zero on every non-corrupt log.
  uint64_t anomalies = 0;
  uint64_t resumed_sequence = 0;  ///< next delivery sequence after recovery

  std::string ToString() const;
};

/// \brief Everything read off disk ahead of a Recover(): the chosen
/// snapshot, the WAL tail past it, and the partially-filled report.
/// Produced by ReadDurableState so the caller can rebuild the fact
/// Database (BuildDatabaseFromSnapshot) and construct the inner engine
/// over it *before* wiring the decorator.
struct DurableState {
  SnapshotState snapshot;
  std::vector<WalRecord> tail;
  uint64_t next_epoch = 1;  ///< first epoch not used by any file on disk
  RecoveryReport report;
};

/// Scans a storage directory: picks the newest loadable snapshot
/// (falling past damaged ones), then reads the contiguous WAL segments
/// from the snapshot's epoch forward, classifying torn tails and
/// corruption.  Fails only when the directory is unreadable or no
/// snapshot loads at all (facts would be unrecoverable).
Result<DurableState> ReadDurableState(const std::string& dir);

/// \brief Write-ahead-logging decorator over any CoordinationService
/// (single-engine or sharded).
///
/// Every admitted event is logged *after* admission checks (parse
/// validation, pending probes) but *before* it is applied to the inner
/// service, so the log holds exactly the accepted intent stream.  The
/// decorator owns a durable id/variable namespace that survives
/// restarts: inner ids and variables are remapped on the way out
/// (deliveries) and in (cancels), by pure arithmetic — admission order
/// determines both namespaces, so the maps extend without ever reading
/// engine internals.
///
/// Recovery = load latest snapshot + resubmit its pending queries with
/// evaluation suspended + replay the WAL tail at the recorded cadence.
/// Delivery sequences RESUME (the snapshot records the watermark);
/// deliveries re-derived below the watermark are suppressed, ones
/// beyond it are forwarded as new.  Crashes at event boundaries recover
/// exactly-once; a crash mid-call can lose the trailing delivery mark
/// and re-forward at most the deliveries of that one call
/// (at-least-once).
///
/// Single-threaded front door, same as SessionManager.
class DurableCoordinationService : public CoordinationService {
 public:
  /// Wraps `inner` (borrowed; must outlive the decorator), whose fact
  /// database is `db` (borrowed; facts must be loaded before Create so
  /// the genesis snapshot captures them).
  static Result<std::unique_ptr<DurableCoordinationService>> Create(
      CoordinationService* inner, const Database* db,
      DurabilityOptions options);

  // ----- CoordinationService ----------------------------------------------
  void set_delivery_callback(DeliveryCallback callback) override {
    downstream_ = std::move(callback);
  }
  void set_evaluate_every(size_t evaluate_every) override;
  Result<QueryId> Submit(const std::string& query_text) override;
  Result<std::vector<QueryId>> SubmitBatch(
      const std::vector<std::string>& query_texts) override;
  bool Cancel(QueryId id) override;
  size_t Flush() override;
  std::vector<QueryId> PendingQueries() const override;
  bool IsPending(QueryId id) const override;
  size_t num_pending() const override { return inner_->num_pending(); }
  std::vector<QueryId> ComponentOf(QueryId id) const override;
  bool AdmitsDeferred() const override { return inner_->AdmitsDeferred(); }
  EngineStats StatsSnapshot() const override;
  size_t IntakeDepth() const override { return inner_->IntakeDepth(); }
  ServiceGauges GaugesSnapshot() const override {
    return inner_->GaugesSnapshot();
  }
  void set_session_tag(int64_t tag) override { session_tag_ = tag; }
  void AppendCounters(
      std::vector<std::pair<std::string, uint64_t>>* counters) const override;

  // ----- durability entry points ------------------------------------------

  /// Rehydrates from `state` (ReadDurableState of the same directory),
  /// adopting session ownership through `sessions` (may be null for
  /// direct-service use; unknown or closed session tags leave orphaned
  /// queries service-pending).  Must be called exactly once, before any
  /// submission, on a decorator whose Create found a non-empty
  /// directory.  Ends by rotating into a fresh snapshot + segment, so a
  /// second recovery replays the rotated state, not the old log
  /// (double-recovery idempotence).
  Status Recover(DurableState state, SessionManager* sessions);

  /// Forces a rotation now: settle queued intake, snapshot live state,
  /// start a fresh WAL segment.
  Status SnapshotNow();

  const RecoveryReport& recovery_report() const { return report_; }
  /// Lifetime append/durability counters across every segment written.
  WalStats wal_stats() const;
  uint64_t snapshot_count() const { return snapshot_count_; }
  uint64_t epoch() const { return epoch_; }
  const DurabilityOptions& options() const { return options_; }

 private:
  /// One live (admitted, not yet retired or cancelled) query.
  struct LiveQuery {
    int64_t session = -1;
    int64_t var_start = 0;
    uint32_t var_count = 0;
    std::string text;
  };

  DurableCoordinationService(CoordinationService* inner, const Database* db,
                             DurabilityOptions options);

  Status LogRecord(const WalRecord& record);
  void OnInnerDelivery(const Delivery& delivery);
  /// Extends both id namespaces and the variable map for one admission.
  void AdoptAdmitted(int64_t durable_id, int64_t session,
                     const std::string& text, QueryId inner_id,
                     size_t var_count, int64_t var_start);
  void TickSubmitPhase();
  void MaybeAutoSnapshot();
  Status RotateWithSnapshot(uint64_t new_epoch);
  void ApplyReplayed(const WalRecord& record, SessionManager* sessions);

  CoordinationService* inner_;
  const Database* db_;
  DurabilityOptions options_;
  DeliveryCallback downstream_;

  std::unique_ptr<WalWriter> wal_;
  WalStats closed_wal_stats_;  ///< folded-in stats of rotated-out segments
  uint64_t epoch_ = 0;
  uint64_t snapshot_count_ = 0;
  uint64_t total_events_ = 0;        ///< logged records (marks excluded)
  uint64_t last_snapshot_events_ = 0;
  bool ready_ = false;      ///< genesis written or Recover() completed
  bool replaying_ = false;  ///< inside Recover(): no logging, suppression on
  /// Recover()'s session manager, wired only while replaying: a
  /// suppressed delivery never reaches the manager's callback, so the
  /// replay must clear the retired queries' session-pending entries
  /// itself.
  SessionManager* replay_sessions_ = nullptr;

  // Durable namespaces and their inner translations.
  int64_t next_durable_id_ = 0;
  int64_t next_durable_var_ = 0;
  std::vector<int64_t> inner_to_durable_;     ///< indexed by inner QueryId
  std::vector<QueryId> durable_to_inner_;     ///< indexed by durable id; -1 gone
  std::vector<VarId> inner_var_to_durable_;   ///< indexed by inner VarId
  std::map<int64_t, LiveQuery> live_;         ///< durable id -> admitted intent

  // Delivery sequencing: durable sequence = offset + inner sequence.
  uint64_t sequence_offset_ = 0;
  uint64_t delivered_next_ = 0;   ///< next durable sequence to be assigned
  uint64_t suppress_below_ = 0;   ///< recovery watermark (replay only)

  // Cadence mirror (never reads engine internals).
  size_t evaluate_every_ = 1;
  size_t cadence_phase_ = 0;

  int64_t session_tag_ = -1;  ///< set by SessionManager around calls
  uint64_t rejected_ = 0;     ///< pre-validation rejections (never logged)
  RecoveryReport report_;
};

}  // namespace entangled

#endif  // ENTANGLED_STORAGE_DURABLE_SERVICE_H_
