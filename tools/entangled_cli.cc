// entangled_cli — command-line front door for entangled-query
// coordination, built on the session API (api/session.h).
//
//   entangled_cli [--help] [--version]
//   entangled_cli coordinate --data FILE.edb --queries FILE.eq
//                 [--algorithm scc|gupta|generic|single] [--quiet]
//   entangled_cli sessions   --data FILE.edb --queries FILE.eq
//                 [--sessions N] [--sharded] [--evaluate-every K]
//                 [--record DIR] [--quiet]
//   entangled_cli metrics    [--seed N] [--num-queries N] [--sessions N]
//                 [--max-pending N] [--sharded] [--evaluate-every K]
//                 [--record DIR]
//   entangled_cli replay     DIR [--sharded] [--quiet]
//
// `coordinate` (the default when flags are given without a subcommand)
// loads a database (db/loader.h format), parses entangled queries in
// the paper's syntax (core/parser.h), streams them through a
// ClientSession over the coordination engine, drains the delivered
// events with PollEvents(), independently validates every delivery
// against Definition 1, and prints each participant's grounded
// answers.  `--algorithm` values other than `scc` run the matching
// reference solver directly on the whole set instead (those algorithms
// have no streaming engine).
//
// `sessions` distributes the queries round-robin across N client
// sessions of one shared engine (optionally the sharded front door),
// coordinates, and prints each session's delivered events plus a
// per-session table of pending counts — the multi-tenant view.
//
// `metrics` needs no input files: it drives a seeded generator workload
// (workload/generator.h) through N client sessions — optionally armed
// with a per-session pending quota so rejection counters are exercised —
// and prints the manager's observability snapshot as one JSON document
// (SessionManager::Metrics; schema documented in the README).  The
// document is stable: two runs with the same flags agree on every field
// except wall-clock timings (keys ending `_ns`, histogram `buckets`).
//
// `--record DIR` (sessions and metrics) wraps the engine in the
// write-ahead-logging decorator (storage/durable_service.h): every
// admitted event is logged to DIR, which must be empty — the run
// leaves behind a genesis snapshot plus the WAL segment(s).
//
// `replay DIR` rehydrates a recorded directory: loads the newest
// snapshot, replays the WAL tail through a SessionManager (delivery
// sequences resume, not restart), prints the recovery report to
// stderr and the observability snapshot as JSON to stdout.  Recovery
// rotates the directory to a fresh snapshot, so a damaged tail is
// healed in place and a second replay reads clean state.
//
// Exit codes: 0 = coordinating set(s) found; 2 = none exists;
//             1 = usage/parse/validation error.

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algo/generic_solver.h"
#include "algo/gupta_baseline.h"
#include "algo/scc_coordination.h"
#include "algo/single_connected.h"
#include "api/session.h"
#include "core/parser.h"
#include "core/properties.h"
#include "core/validator.h"
#include "db/loader.h"
#include "storage/durable_service.h"
#include "storage/snapshot.h"
#include "system/engine.h"
#include "system/sharded_engine.h"
#include "workload/generator.h"

namespace {

using namespace entangled;

constexpr const char* kVersion = "0.6.0";

struct CliOptions {
  std::string command = "coordinate";
  std::string data_path;
  std::string queries_path;
  std::string algorithm = "scc";
  size_t num_sessions = 4;
  size_t evaluate_every = 0;
  bool sharded = false;
  bool quiet = false;
  // metrics command only
  uint64_t seed = 1;
  size_t num_queries = 48;
  size_t max_pending = 0;
  // storage: --record DIR (sessions/metrics) or the replay directory
  std::string storage_dir;
};

void PrintVersion() {
  std::cout << "entangled_cli " << kVersion
            << " (The Complexity of Social Coordination, VLDB 2012)\n";
}

void PrintUsage() {
  std::cerr
      << "usage: entangled_cli [--help] [--version]\n"
      << "       entangled_cli coordinate --data FILE.edb --queries "
         "FILE.eq\n"
      << "                     [--algorithm scc|gupta|generic|single] "
         "[--quiet]\n"
      << "       entangled_cli sessions --data FILE.edb --queries FILE.eq\n"
      << "                     [--sessions N] [--sharded] "
         "[--evaluate-every K]\n"
      << "                     [--record DIR] [--quiet]\n"
      << "       entangled_cli metrics [--seed N] [--num-queries N] "
         "[--sessions N]\n"
      << "                     [--max-pending N] [--sharded] "
         "[--evaluate-every K]\n"
      << "                     [--record DIR]\n"
      << "       entangled_cli replay DIR [--sharded] [--quiet]\n\n"
      << "commands:\n"
      << "  coordinate   stream the queries through one client session,\n"
      << "               coordinate, validate, print grounded answers\n"
      << "               (default when only flags are given)\n"
      << "  sessions     round-robin the queries across N client sessions\n"
      << "               and show each session's deliveries and pending\n"
      << "               counts\n"
      << "  metrics      drive a seeded generator workload through N\n"
      << "               sessions and print the observability snapshot\n"
      << "               as one JSON document (no input files needed)\n"
      << "  replay       rehydrate a recorded storage directory (latest\n"
      << "               snapshot + WAL tail) through a SessionManager\n"
      << "               and print the observability snapshot as JSON;\n"
      << "               the recovery report goes to stderr\n\n"
      << "options:\n"
      << "  --data            database instance (relation blocks; see "
         "docs)\n"
      << "  --queries         entangled queries, one '{P} H :- B.' each\n"
      << "  --algorithm       scc      streaming engine + SCC algorithm\n"
      << "                             (default; safe sets, uniqueness\n"
      << "                             not required)\n"
      << "                    gupta    Gupta et al. baseline (safe + "
         "unique)\n"
      << "                    generic  complete exponential search\n"
      << "                    single   single-connected solver (Thm. 3)\n"
      << "  --sessions N      client sessions to spread queries over "
         "(default 4)\n"
      << "  --sharded         serve from the sharded multi-tenant front "
         "door\n"
      << "  --evaluate-every K  per-arrival evaluation cadence (default "
         "0:\n"
      << "                    admit everything, then flush once)\n"
      << "  --seed N          metrics: workload generator seed (default 1)\n"
      << "  --num-queries N   metrics: query texts to generate (default "
         "48)\n"
      << "  --max-pending N   metrics: per-session pending quota (default "
         "0:\n"
      << "                    unlimited; bounces are typed and counted)\n"
      << "  --record DIR      sessions/metrics: write-ahead-log every\n"
      << "                    admitted event to DIR (created if missing,\n"
      << "                    must hold no prior recording); replay the\n"
      << "                    result with 'entangled_cli replay DIR'\n"
      << "  --quiet           print only the coordinating sets\n"
      << "  --help, -h        this text\n"
      << "  --version         version string\n";
}

bool ParseArgs(int argc, char** argv, CliOptions* options, int* exit_code) {
  *exit_code = 1;
  bool saw_command = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (v == nullptr) return false;
      options->data_path = v;
    } else if (arg == "--queries") {
      const char* v = next();
      if (v == nullptr) return false;
      options->queries_path = v;
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (v == nullptr) return false;
      options->algorithm = v;
    } else if (arg == "--sessions") {
      const char* v = next();
      const long n = v == nullptr ? 0 : std::atol(v);
      if (n <= 0 || n > 100000) {
        std::cerr << "--sessions wants a count in [1, 100000]\n";
        return false;
      }
      options->num_sessions = static_cast<size_t>(n);
    } else if (arg == "--evaluate-every") {
      const char* v = next();
      const long n = v == nullptr ? -1 : std::atol(v);
      if (n < 0) {
        std::cerr << "--evaluate-every wants a cadence >= 0\n";
        return false;
      }
      options->evaluate_every = static_cast<size_t>(n);
    } else if (arg == "--seed") {
      const char* v = next();
      const long long n = v == nullptr ? -1 : std::atoll(v);
      if (n < 0) {
        std::cerr << "--seed wants a value >= 0\n";
        return false;
      }
      options->seed = static_cast<uint64_t>(n);
    } else if (arg == "--num-queries") {
      const char* v = next();
      const long n = v == nullptr ? 0 : std::atol(v);
      if (n <= 0 || n > 1000000) {
        std::cerr << "--num-queries wants a count in [1, 1000000]\n";
        return false;
      }
      options->num_queries = static_cast<size_t>(n);
    } else if (arg == "--max-pending") {
      const char* v = next();
      const long n = v == nullptr ? -1 : std::atol(v);
      if (n < 0) {
        std::cerr << "--max-pending wants a quota >= 0\n";
        return false;
      }
      options->max_pending = static_cast<size_t>(n);
    } else if (arg == "--record") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::cerr << "--record wants a directory path\n";
        return false;
      }
      options->storage_dir = v;
    } else if (arg == "--sharded") {
      options->sharded = true;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      *exit_code = 0;
      return false;
    } else if (arg == "--version") {
      PrintVersion();
      *exit_code = 0;
      return false;
    } else if (!saw_command && !arg.empty() && arg[0] != '-') {
      options->command = arg;
      saw_command = true;
    } else if (saw_command && options->command == "replay" && !arg.empty() &&
               arg[0] != '-' && options->storage_dir.empty()) {
      options->storage_dir = arg;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (options->command != "coordinate" && options->command != "sessions" &&
      options->command != "metrics" && options->command != "replay") {
    std::cerr << "unknown command: " << options->command << "\n";
    return false;
  }
  if (options->command != "coordinate" && options->algorithm != "scc") {
    std::cerr << "the " << options->command
              << " front door serves the streaming engine (scc) only; "
                 "--algorithm " << options->algorithm
              << " is a coordinate-command reference path\n";
    return false;
  }
  if (options->command == "coordinate" && !options->storage_dir.empty()) {
    std::cerr << "--record applies to the sessions and metrics front "
                 "doors\n";
    return false;
  }
  if (options->command == "replay") {
    if (options->storage_dir.empty()) {
      std::cerr << "replay wants a storage directory: entangled_cli "
                   "replay DIR\n";
      return false;
    }
    if (!options->data_path.empty() || !options->queries_path.empty()) {
      std::cerr << "replay reads everything from the storage directory; "
                   "--data/--queries do not apply\n";
      return false;
    }
    return true;
  }
  if (options->command == "metrics") {
    if (!options->data_path.empty() || !options->queries_path.empty()) {
      std::cerr << "metrics generates its own workload; --data/--queries "
                   "do not apply\n";
      return false;
    }
    return true;
  }
  if (options->data_path.empty() || options->queries_path.empty()) {
    PrintUsage();
    return false;
  }
  return true;
}

/// Loads the database and parses the query file; returns false (after
/// printing the error) when anything is malformed.
bool LoadInputs(const CliOptions& options, Database* db, QuerySet* queries) {
  if (Status status = LoadDatabaseFile(options.data_path, db);
      !status.ok()) {
    std::cerr << options.data_path << ": " << status << "\n";
    return false;
  }
  auto query_text = ReadFileToString(options.queries_path);
  if (!query_text.ok()) {
    std::cerr << options.queries_path << ": " << query_text.status() << "\n";
    return false;
  }
  auto ids = ParseQueries(*query_text, queries);
  if (!ids.ok()) {
    std::cerr << options.queries_path << ": " << ids.status() << "\n";
    return false;
  }
  if (Status status = queries->CheckWellFormed(*db); !status.ok()) {
    std::cerr << "ill-formed queries: " << status << "\n";
    return false;
  }
  return true;
}

/// Re-renders each parsed query in the paper's syntax — the per-query
/// texts a session submits one at a time (constants are quoted and
/// parser-produced variable names are lowercase, so rendering
/// round-trips through the parser).
std::vector<std::string> QueryTexts(const QuerySet& queries) {
  std::vector<std::string> texts;
  texts.reserve(queries.size());
  for (QueryId id = 0; id < static_cast<QueryId>(queries.size()); ++id) {
    texts.push_back(queries.QueryToString(id));
  }
  return texts;
}

/// Re-validates a delivered event against Definition 1 using the
/// engine's master set; returns false (printing the failure) on a
/// solver bug.
bool ValidateDelivered(const Database& db, const QuerySet& master,
                       const Delivery& delivery) {
  if (Status valid = ValidateSolution(db, master, SolutionFromDelivery(delivery));
      !valid.ok()) {
    std::cerr << "INTERNAL ERROR: engine delivered an invalid solution: "
              << valid << "\n";
    return false;
  }
  return true;
}

/// Ensures `--record DIR` points at a usable, empty recording target:
/// creates the directory when missing and refuses one that already
/// holds a recording (overwriting a prior log silently would defeat
/// the point of durability).
bool PrepareRecordingDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::cerr << "--record " << dir << ": cannot create directory\n";
    return false;
  }
  auto listing = ListStorageDir(dir);
  if (!listing.ok()) {
    std::cerr << "--record " << dir << ": " << listing.status() << "\n";
    return false;
  }
  if (!listing->snapshot_epochs.empty() || !listing->wal_epochs.empty()) {
    std::cerr << "--record " << dir
              << ": directory already holds a recording; replay it with "
                 "'entangled_cli replay " << dir
              << "' or point --record somewhere fresh\n";
    return false;
  }
  return true;
}

/// Wraps `inner` in the write-ahead-logging decorator recording to
/// `dir` (fresh genesis, so durable ids coincide with inner ids and
/// Definition-1 validation against the inner master set still holds).
bool WrapWithRecorder(
    CoordinationService* inner, const Database& db, const std::string& dir,
    size_t evaluate_every,
    std::unique_ptr<DurableCoordinationService>* recorder) {
  DurabilityOptions durability;
  durability.dir = dir;
  durability.fsync = FsyncPolicy::kEveryFlush;
  durability.initial_evaluate_every = evaluate_every;
  auto created = DurableCoordinationService::Create(inner, &db, durability);
  if (!created.ok()) {
    std::cerr << "--record " << dir << ": " << created.status() << "\n";
    return false;
  }
  *recorder = std::move(*created);
  return true;
}

void PrintDelivery(const Delivery& delivery, bool quiet) {
  if (quiet) {
    std::cout << "{";
    for (size_t i = 0; i < delivery.queries.size(); ++i) {
      std::cout << (i == 0 ? "" : ", ") << delivery.queries[i].name;
    }
    std::cout << "}\n";
    return;
  }
  std::cout << delivery.ToString() << "\n";
}

int RunCoordinate(const CliOptions& options, const Database& db,
                  QuerySet& queries) {
  if (!options.quiet) {
    std::cout << "database: " << db.relation_count() << " relations, "
              << db.TotalRows() << " tuples\n"
              << "queries:  " << queries.size() << " ("
              << (IsSafeSet(queries) ? "safe" : "UNSAFE") << ", "
              << (IsUniqueSet(queries) ? "unique" : "not unique")
              << ")\n\n";
  }

  // The reference solvers have no streaming engine: run them directly
  // on the whole set (the paper's batch formulation).
  if (options.algorithm != "scc") {
    std::string stats_line;
    Result<CoordinationSolution> solution = [&]() {
      if (options.algorithm == "gupta") {
        GuptaBaseline solver(&db);
        auto result = solver.Solve(queries);
        stats_line = solver.stats().ToString();
        return result;
      }
      if (options.algorithm == "generic") {
        GenericSolver solver(&db);
        auto result = solver.FindAny(queries);
        stats_line = solver.stats().ToString();
        return result;
      }
      if (options.algorithm == "single") {
        SingleConnectedSolver solver(&db);
        auto result = solver.Solve(queries);
        stats_line = solver.stats().ToString();
        return result;
      }
      return Result<CoordinationSolution>(Status::InvalidArgument(
          "unknown algorithm '", options.algorithm, "'"));
    }();
    if (!solution.ok()) {
      if (solution.status().IsNotFound()) {
        std::cout << "no coordinating set: " << solution.status().message()
                  << "\n";
        return 2;
      }
      std::cerr << "error: " << solution.status() << "\n";
      return 1;
    }
    if (Status valid = ValidateSolution(db, queries, *solution);
        !valid.ok()) {
      std::cerr << "INTERNAL ERROR: solver returned an invalid solution: "
                << valid << "\n";
      return 1;
    }
    std::cout << "coordinating set: " << SolutionToString(queries, *solution)
              << "\n";
    if (!options.quiet) {
      for (QueryId id : solution->queries) {
        for (const Atom& answer : solution->GroundedHeads(queries, id)) {
          std::cout << "  " << queries.query(id).name << " <- " << answer
                    << "\n";
        }
      }
      std::cout << "stats: " << stats_line << "\n";
    }
    return 0;
  }

  // The production path: one client session over the streaming engine.
  EngineOptions engine_options;
  engine_options.evaluate_every = options.evaluate_every;
  CoordinationEngine engine(&db, engine_options);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open({/*label=*/"cli"});
  for (const std::string& text : QueryTexts(queries)) {
    SubmitOutcome outcome = session->Submit(text);
    if (!outcome.ok()) {
      std::cerr << "rejected (" << RejectReasonName(outcome.reason)
                << "): " << text << "\n  " << outcome.message << "\n";
      return 1;
    }
  }
  manager.Flush();

  size_t delivered = 0;
  for (const SessionEvent& event : session->PollEvents()) {
    if (!ValidateDelivered(db, engine.queries(), *event.delivery)) return 1;
    ++delivered;
    PrintDelivery(*event.delivery, options.quiet);
  }
  if (!options.quiet) {
    const EngineStats stats = manager.StatsSnapshot();
    std::cout << "still pending: " << session->num_pending() << " of "
              << stats.submitted << " submitted\n"
              << "stats: evaluations=" << stats.evaluations
              << " db_queries=" << stats.db_queries
              << " coordinating_sets=" << stats.coordinating_sets << "\n";
  }
  if (delivered == 0) {
    std::cout << "no coordinating set\n";
    return 2;
  }
  return 0;
}

int RunSessions(const CliOptions& options, const Database& db,
                QuerySet& queries) {
  std::unique_ptr<CoordinationService> service;
  std::function<const QuerySet&()> master;
  if (options.sharded) {
    ShardedEngineOptions sharded_options;
    sharded_options.engine.evaluate_every = options.evaluate_every;
    auto engine =
        std::make_unique<ShardedCoordinationEngine>(&db, sharded_options);
    auto* raw = engine.get();
    master = [raw]() -> const QuerySet& { return raw->queries(); };
    service = std::move(engine);
  } else {
    EngineOptions engine_options;
    engine_options.evaluate_every = options.evaluate_every;
    auto engine = std::make_unique<CoordinationEngine>(&db, engine_options);
    auto* raw = engine.get();
    master = [raw]() -> const QuerySet& { return raw->queries(); };
    service = std::move(engine);
  }

  std::unique_ptr<DurableCoordinationService> recorder;
  CoordinationService* front = service.get();
  if (!options.storage_dir.empty()) {
    if (!PrepareRecordingDir(options.storage_dir)) return 1;
    if (!WrapWithRecorder(service.get(), db, options.storage_dir,
                          options.evaluate_every, &recorder)) {
      return 1;
    }
    front = recorder.get();
  }

  SessionManager manager(front);
  std::vector<ClientSession*> sessions;
  for (size_t i = 0; i < options.num_sessions; ++i) {
    sessions.push_back(manager.Open());
  }
  const std::vector<std::string> texts = QueryTexts(queries);
  for (size_t i = 0; i < texts.size(); ++i) {
    ClientSession* session = sessions[i % sessions.size()];
    SubmitOutcome outcome = session->Submit(texts[i]);
    if (!outcome.ok()) {
      std::cerr << "rejected (" << RejectReasonName(outcome.reason)
                << "): " << texts[i] << "\n  " << outcome.message << "\n";
      return 1;
    }
  }
  manager.Flush();

  size_t delivered_events = 0;
  for (ClientSession* session : sessions) {
    std::vector<SessionEvent> events = session->PollEvents();
    if (events.empty()) continue;
    if (!options.quiet) {
      std::cout << "== session " << session->id() << " ("
                << session->label() << ") ==\n";
    }
    for (const SessionEvent& event : events) {
      if (!ValidateDelivered(db, master(), *event.delivery)) return 1;
      ++delivered_events;
      PrintDelivery(*event.delivery, options.quiet);
    }
  }

  // The multi-tenant table the command exists for: per-session pending
  // counts after coordination settled.
  std::cout << "\nsession  label     submitted  delivered  pending\n";
  for (const ClientSession* session : manager.sessions()) {
    std::cout << "  " << session->id() << "      " << session->label()
              << "        " << session->submitted() << "          "
              << session->deliveries() << "          "
              << session->num_pending();
    if (session->num_pending() > 0 && !options.quiet) {
      std::cout << "   (";
      const std::vector<QueryId> pending = session->PendingQueries();
      for (size_t i = 0; i < pending.size(); ++i) {
        std::cout << (i == 0 ? "" : ", ")
                  << master().query(pending[i]).name;
      }
      std::cout << ")";
    }
    std::cout << "\n";
  }
  std::cout << "total pending: " << manager.num_pending() << "\n";
  if (recorder != nullptr && !options.quiet) {
    const WalStats wal = recorder->wal_stats();
    std::cout << "recorded " << wal.appended_records << " events ("
              << wal.bytes << " bytes) to " << options.storage_dir << "\n";
  }
  return delivered_events > 0 ? 0 : 2;
}

int RunMetrics(const CliOptions& options) {
  GeneratorOptions gen;
  gen.seed = options.seed;
  gen.num_queries = options.num_queries;
  WorkloadGenerator generator(gen);
  Database db;
  if (Status built = generator.BuildDatabase(&db); !built.ok()) {
    std::cerr << "generator: " << built << "\n";
    return 1;
  }
  const GeneratedWorkload workload = generator.Generate();

  std::unique_ptr<CoordinationService> service;
  if (options.sharded) {
    ShardedEngineOptions sharded_options;
    sharded_options.engine.evaluate_every = options.evaluate_every;
    service = std::make_unique<ShardedCoordinationEngine>(&db,
                                                          sharded_options);
  } else {
    EngineOptions engine_options;
    engine_options.evaluate_every = options.evaluate_every;
    service = std::make_unique<CoordinationEngine>(&db, engine_options);
  }
  std::unique_ptr<DurableCoordinationService> recorder;
  CoordinationService* front = service.get();
  if (!options.storage_dir.empty()) {
    if (!PrepareRecordingDir(options.storage_dir)) return 1;
    if (!WrapWithRecorder(service.get(), db, options.storage_dir,
                          options.evaluate_every, &recorder)) {
      return 1;
    }
    front = recorder.get();
  }
  SessionManager manager(front);
  SessionOptions session_options;
  session_options.max_pending = options.max_pending;
  std::vector<ClientSession*> sessions;
  for (size_t i = 0; i < options.num_sessions; ++i) {
    sessions.push_back(manager.Open(session_options));
  }

  // Replay the generated stream round-robin across the sessions.  With
  // a quota armed some submissions legitimately bounce — the snapshot
  // printed below counts them; any *other* rejection of a generated
  // query is an internal error.
  size_t next_session = 0;
  for (const WorkloadEvent& event : workload.events) {
    switch (event.kind) {
      case WorkloadEvent::Kind::kSubmit:
      case WorkloadEvent::Kind::kSubmitBatch: {
        ClientSession* session = sessions[next_session++ % sessions.size()];
        RejectReason reason = RejectReason::kNone;
        std::string message;
        if (event.kind == WorkloadEvent::Kind::kSubmit) {
          SubmitOutcome outcome = session->Submit(event.texts.front());
          reason = outcome.reason;
          message = outcome.message;
        } else {
          BatchOutcome outcome = session->SubmitBatch(event.texts);
          reason = outcome.reason;
          message = outcome.message;
        }
        const bool quota_bounce = reason == RejectReason::kQuotaPending ||
                                  reason == RejectReason::kQuotaRate ||
                                  reason == RejectReason::kQuotaFootprint ||
                                  reason == RejectReason::kOverloaded;
        if (reason != RejectReason::kNone && !quota_bounce) {
          std::cerr << "INTERNAL ERROR: generated query rejected ("
                    << RejectReasonName(reason) << "): " << message << "\n";
          return 1;
        }
        break;
      }
      case WorkloadEvent::Kind::kCancel: {
        const std::vector<QueryId> pending = manager.PendingQueries();
        if (pending.empty()) break;
        const QueryId gid = pending[event.cancel_rank % pending.size()];
        const SessionId owner = manager.OwnerOf(gid);
        if (owner >= 0) manager.Find(owner)->Cancel(gid);
        break;
      }
      case WorkloadEvent::Kind::kSetEvaluateEvery:
        manager.set_evaluate_every(event.evaluate_every);
        break;
      case WorkloadEvent::Kind::kFlush:
        manager.Flush();
        break;
    }
  }
  manager.Flush();
  for (ClientSession* session : sessions) session->PollEvents();

  std::cout << manager.Metrics().ToJson() << "\n";
  return 0;
}

int RunReplay(const CliOptions& options) {
  auto state = ReadDurableState(options.storage_dir);
  if (!state.ok()) {
    std::cerr << options.storage_dir << ": " << state.status() << "\n";
    return 1;
  }

  // Rebuild the fact database the snapshot captured, then stand up the
  // same stack a recording run uses: inner engine -> durability
  // decorator -> session manager.
  Database db;
  if (Status built = BuildDatabaseFromSnapshot(state->snapshot, &db);
      !built.ok()) {
    std::cerr << options.storage_dir << ": " << built << "\n";
    return 1;
  }
  std::unique_ptr<CoordinationService> service;
  if (options.sharded) {
    ShardedEngineOptions sharded_options;
    sharded_options.engine.evaluate_every = 1;
    service =
        std::make_unique<ShardedCoordinationEngine>(&db, sharded_options);
  } else {
    EngineOptions engine_options;
    engine_options.evaluate_every = 1;
    service = std::make_unique<CoordinationEngine>(&db, engine_options);
  }
  DurabilityOptions durability;
  durability.dir = options.storage_dir;
  durability.fsync = FsyncPolicy::kEveryFlush;
  auto durable = DurableCoordinationService::Create(service.get(), &db,
                                                    durability);
  if (!durable.ok()) {
    std::cerr << options.storage_dir << ": " << durable.status() << "\n";
    return 1;
  }

  // Session tags in the log are manager-assigned ids (0-based), so
  // reopening max_tag + 1 sessions reproduces the original addressing.
  int64_t max_tag = -1;
  for (const SnapshotPendingQuery& pending : state->snapshot.pending) {
    max_tag = std::max(max_tag, pending.session);
  }
  for (const WalRecord& record : state->tail) {
    max_tag = std::max(max_tag, record.session);
  }
  SessionManager manager((*durable).get());
  std::vector<ClientSession*> sessions;
  for (int64_t tag = 0; tag <= max_tag; ++tag) {
    sessions.push_back(manager.Open());
  }

  if (Status recovered = (*durable)->Recover(std::move(*state), &manager);
      !recovered.ok()) {
    std::cerr << options.storage_dir << ": " << recovered << "\n";
    return 1;
  }
  const RecoveryReport& report = (*durable)->recovery_report();
  if (!options.quiet) std::cerr << report.ToString() << "\n";

  // Drain the reforwarded (in-flight-at-crash) deliveries so the
  // printed snapshot reflects settled per-session state.
  for (ClientSession* session : sessions) session->PollEvents();

  std::cout << manager.Metrics().ToJson() << "\n";
  return report.corruption_detected ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  int exit_code = 1;
  if (!ParseArgs(argc, argv, &options, &exit_code)) return exit_code;

  if (options.command == "metrics") return RunMetrics(options);
  if (options.command == "replay") return RunReplay(options);

  Database db;
  QuerySet queries;
  if (!LoadInputs(options, &db, &queries)) return 1;

  return options.command == "sessions" ? RunSessions(options, db, queries)
                                       : RunCoordinate(options, db, queries);
}
