#ifndef ENTANGLED_SYSTEM_ENGINE_H_
#define ENTANGLED_SYSTEM_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "algo/scc_coordination.h"
#include "api/delivery.h"
#include "common/arena.h"
#include "common/metrics.h"
#include "common/mpsc_queue.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/coordination_graph.h"
#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"

namespace entangled {

/// \brief Engine work counters.
struct EngineStats {
  uint64_t submitted = 0;            ///< queries accepted
  uint64_t cancelled = 0;            ///< pending queries withdrawn
  uint64_t evaluations = 0;          ///< component evaluations run
  uint64_t coordinated_queries = 0;  ///< queries retired in solutions
  uint64_t coordinating_sets = 0;    ///< solutions delivered
  uint64_t unsafe_components = 0;    ///< components skipped as unsafe
  uint64_t db_queries = 0;           ///< conjunctive queries issued
  uint64_t eval_cache_hits = 0;      ///< sweep steps served by an EvalMemo
  uint64_t evaluations_avoided = 0;  ///< dirty components skipped via stamps
  uint64_t rejected = 0;             ///< submissions refused (parse errors)

  /// Wall-clock time of every component evaluation the engine ran
  /// (solver + memo sweeps; skipped evaluations do not record).  Merged
  /// field-wise like the counters, so a sharded snapshot aggregates the
  /// per-shard histograms — including shards already drained and
  /// destroyed — into one engine-wide distribution.
  LatencyHistogram eval_latency;

  /// Field-wise accumulation, so per-shard counters aggregate into one
  /// engine-wide snapshot (system/sharded_engine.h).
  EngineStats& operator+=(const EngineStats& other) {
    submitted += other.submitted;
    cancelled += other.cancelled;
    evaluations += other.evaluations;
    coordinated_queries += other.coordinated_queries;
    coordinating_sets += other.coordinating_sets;
    unsafe_components += other.unsafe_components;
    db_queries += other.db_queries;
    eval_cache_hits += other.eval_cache_hits;
    evaluations_avoided += other.evaluations_avoided;
    rejected += other.rejected;
    eval_latency += other.eval_latency;
    return *this;
  }
  friend EngineStats operator+(EngineStats a, const EngineStats& b) {
    a += b;
    return a;
  }
};

/// \brief Test-only fault injection.  Each flag disables one
/// maintenance step of the incremental core so the stress harness's
/// negative tests (tests/testing/) can prove the differential harness
/// actually detects the resulting divergence.  Never set in
/// production code.
struct EngineFaultInjection {
  /// Cancel() still retires the query from the incremental index, but
  /// the surviving fragments of its component lose their dirty marks —
  /// so a component that a cancellation made safe (or coordinable) is
  /// never re-examined, and the engine silently misses deliveries the
  /// from-scratch oracle makes.
  bool lose_dirty_on_cancel = false;

  /// The delta-eval skip path ignores the members-changed bit of the
  /// component fingerprint: a component that gained a member since its
  /// last failing evaluation is wrongly skipped as "provably the same
  /// failure", so deliveries the new member enabled are silently
  /// missed.  Proves the stress harness detects a broken cache
  /// invalidation discipline.
  bool poison_eval_cache = false;
};

/// \brief Options for CoordinationEngine.
struct EngineOptions {
  /// Evaluate the arriving query's connected component after every
  /// `evaluate_every` submissions (1 = the Youtopia behaviour described
  /// in §6.1: "when a new query arrives ... calls an evaluation method
  /// on the connected component").  0 disables automatic evaluation;
  /// call Flush().
  size_t evaluate_every = 1;

  /// Maintain the coordination graph and its weakly-connected-component
  /// partition incrementally (persistent per-relation unification index,
  /// union-find component lookup, dirty-component scheduling).  When
  /// false the engine falls back to the from-scratch path — rebuild the
  /// graph over all pending queries on every evaluation — which exists
  /// as the reference implementation for differential tests and as the
  /// baseline for bench_incremental_stream.  Both paths deliver
  /// identical coordinating sets in identical order.
  bool incremental = true;

  /// Worker threads used by Flush() to evaluate independent dirty
  /// components concurrently (1 = evaluate on the calling thread).
  /// Components are disjoint query sets evaluated against the shared
  /// read-only database, and results are *applied* in deterministic
  /// component order, so outputs do not depend on the thread count.
  /// Only the incremental path parallelizes.  The flushing thread
  /// itself participates in evaluation, so `flush_threads = n` runs at
  /// most n compute threads.
  size_t flush_threads = 1;

  /// Dirty components claimed per atomic operation by the chunked
  /// work-stealing flush (ThreadPool::RunChunked): each participant
  /// grabs `flush_chunk` consecutive evaluation slots at a time instead
  /// of one closure per component.  Purely a scheduling knob — outputs
  /// never depend on it.
  size_t flush_chunk = 8;

  /// Capacity of the deferred-admission intake queue.  0 (the default)
  /// admits inline, exactly as before.  > 0 arms a bounded MPSC queue
  /// in front of the engine: Submit/SubmitBatch parse + validate on the
  /// calling thread, enqueue the admitted event, and return its
  /// predicted id without ever blocking on an in-progress Flush();
  /// the owning thread drains the queue in arrival order at the next
  /// flush/read boundary, reproducing the inline engine's admission
  /// cadence byte for byte.  See CoordinationEngine::DrainIntake for
  /// the threading contract.
  size_t intake_capacity = 0;

  /// Borrowed scheduler for Flush() fan-out (not owned; must outlive
  /// the engine).  When null and flush_threads > 1 the engine lazily
  /// creates its own pool.  The sharded front door points every inner
  /// engine here so shard fan-out and component evaluation share one
  /// set of workers instead of spawning a pool per shard.
  ThreadPool* shared_pool = nullptr;

  /// Delta-aware component evaluation (incremental path only): each
  /// live component keeps a persistent dense subset (extended in place
  /// on arrivals instead of rebuilt per flush), an EvalMemo of per-R(c)
  /// sweep verdicts keyed on relation version stamps, and a failure
  /// fingerprint that lets a dirty-but-unchanged component skip the
  /// solver entirely (EngineStats::evaluations_avoided).  Outcomes are
  /// byte-identical to delta_eval = false at every setting — the cache
  /// is only consulted where a recompute is provably identical.
  bool delta_eval = true;

  /// Passed through to the SCC Coordination Algorithm.
  SccOptions scc;

  /// Test-only fault injection (see EngineFaultInjection).
  EngineFaultInjection fault;
};

/// \brief The streaming coordination surface: everything a front door
/// needs to accept, withdraw, and flush entangled queries, without
/// committing to how the work is partitioned behind it.  Implemented by
/// CoordinationEngine (one graph, one id namespace) and by
/// ShardedCoordinationEngine (a relation-footprint router fanning out to
/// many inner engines, system/sharded_engine.h); the stress harness and
/// benches replay workloads against either through this interface.
class CoordinationService {
 public:
  /// Invoked once per delivered coordinating set with a self-contained
  /// Delivery event (api/delivery.h): owned query texts, names,
  /// grounded answers, and witness values — never a reference into
  /// engine internals.  Callbacks must not re-enter the service
  /// (Submit/Cancel/Flush CHECK-fail when called from inside one);
  /// clients that cannot guarantee that should consume deliveries
  /// through the pull-based session front door instead
  /// (api/session.h, ClientSession::PollEvents).
  using DeliveryCallback = std::function<void(const Delivery&)>;

  virtual ~CoordinationService() = default;

  virtual void set_delivery_callback(DeliveryCallback callback) = 0;
  virtual void set_evaluate_every(size_t evaluate_every) = 0;

  virtual Result<QueryId> Submit(const std::string& query_text) = 0;
  virtual Result<std::vector<QueryId>> SubmitBatch(
      const std::vector<std::string>& query_texts) = 0;
  virtual bool Cancel(QueryId id) = 0;
  virtual size_t Flush() = 0;

  virtual std::vector<QueryId> PendingQueries() const = 0;
  virtual bool IsPending(QueryId id) const = 0;
  virtual size_t num_pending() const = 0;
  virtual std::vector<QueryId> ComponentOf(QueryId id) const = 0;

  /// True when Submit/SubmitBatch defer admission to an intake queue
  /// drained at the service's flush/read boundaries instead of
  /// admitting inline (EngineOptions::intake_capacity).  Front doors
  /// that interleave bookkeeping with submission (api/session.h) use
  /// this to avoid read calls that would force a premature drain.
  virtual bool AdmitsDeferred() const { return false; }

  /// Work counters; by value because a sharded service aggregates
  /// per-shard counters on demand (EngineStats::operator+=).
  virtual EngineStats StatsSnapshot() const = 0;

  /// Validated-but-undrained intake submissions, O(1) and passive — it
  /// never forces a drain, so admission-control callers (overload
  /// shedding in api/session.h) can poll it on every Submit without
  /// defeating the non-blocking intake.  0 for inline services.
  virtual size_t IntakeDepth() const { return 0; }

  /// Point-in-time load view (common/metrics.h): pending including
  /// queued intake, intake depth, and per-shard rows for sharded
  /// services.  Passive like IntakeDepth — reading gauges never drains
  /// or flushes.  The default covers single-partition services.
  virtual ServiceGauges GaugesSnapshot() const {
    ServiceGauges gauges;
    gauges.pending = num_pending();
    gauges.live_shards = 1;
    return gauges;
  }

  /// Restores the per-arrival evaluation phase — submissions admitted
  /// since the last automatic evaluation — after a recovery replay
  /// (storage/durable_service.h), so the resumed stream evaluates on
  /// exactly the arrivals the uninterrupted stream would have.  Both
  /// engines override; services without a cadence ignore it.
  virtual void RestoreCadencePhase(size_t phase) { (void)phase; }

  /// Declares the session on whose behalf the next calls are made (-1 =
  /// direct use).  A durability decorator records the tag alongside each
  /// logged event so recovery can rebuild session ownership; plain
  /// engines ignore it.  Set by SessionManager around service calls.
  virtual void set_session_tag(int64_t tag) { (void)tag; }

  /// Appends service-specific monotone counters to a metrics snapshot
  /// (SessionManager::Metrics). Plain engines add nothing; the durable
  /// decorator reports its WAL/snapshot/recovery counters here.
  virtual void AppendCounters(
      std::vector<std::pair<std::string, uint64_t>>* counters) const {
    (void)counters;
  }
};

/// \brief The Youtopia-style coordination module (§6.1): queries arrive
/// one at a time, the engine maintains the coordination graph
/// incrementally, evaluates the affected connected component with the
/// SCC Coordination Algorithm, delivers any coordinating set found
/// through a callback, and retires its queries.
///
/// The incremental core keeps three persistent structures in sync:
///
///  * an ExtendedCoordinationGraph over the pending queries, updated per
///    arrival through its per-relation unification index (AddQuery) and
///    per delivery (RetireQueries);
///  * a union-find over the graph's weakly connected components, so
///    "which component does this query belong to" is an index lookup
///    instead of a graph rebuild + BFS;
///  * a dirty-component worklist: only components whose membership
///    changed since their last evaluation are re-examined by Flush().
///
/// Submission is amortized near O(degree of the arriving query); the
/// from-scratch path this replaces was O(pending²) per arrival.
///
/// The public API is single-threaded; Flush() may fan evaluation out to
/// an internal thread pool (EngineOptions::flush_threads), but callbacks
/// always run on the calling thread (and must not re-enter the engine —
/// see set_delivery_callback).  The database outlives the engine and
/// must not be mutated while the engine runs.
class CoordinationEngine : public CoordinationService {
 public:
  CoordinationEngine(const Database* db, EngineOptions options = {});

  /// Deliveries are notifications, not extension points: the callback
  /// must not re-enter the engine (Submit/Cancel/Flush CHECK-fail when
  /// called from inside it, since in-flight component evaluations would
  /// be applied against state the callback just changed).  Queue any
  /// follow-up work and run it after the delivering call returns.  The
  /// Delivery is fully owned — capturing it outlives any later
  /// Cancel/Flush/migration.
  void set_delivery_callback(DeliveryCallback callback) override {
    callback_ = std::move(callback);
  }

  /// Changes the automatic-evaluation cadence at runtime (e.g. admit a
  /// large backlog without evaluation, then switch to per-arrival).
  /// Drains any queued intake first, so earlier submissions keep the
  /// cadence that was in force when they arrived.
  void set_evaluate_every(size_t evaluate_every) override {
    DrainIntake();
    options_.evaluate_every = evaluate_every;
  }

  /// Submits one query in the paper's concrete syntax (core/parser.h).
  Result<QueryId> Submit(const std::string& query_text) override;

  /// Submits a pre-built query whose variables were allocated through
  /// NewVar() on mutable_queries().
  QueryId SubmitQuery(EntangledQuery query);

  /// Admits a whole batch of queries before any evaluation runs, then —
  /// when automatic evaluation is enabled — flushes once.  Returns the
  /// ids of all admitted queries, or the first parse error.  Admission
  /// is all-or-nothing: on error nothing from the batch was admitted.
  Result<std::vector<QueryId>> SubmitBatch(
      const std::vector<std::string>& query_texts) override;

  /// Withdraws a pending query (a user abandoning a request).  Returns
  /// false when the id is unknown or no longer pending.  The rest of its
  /// component is re-marked dirty: shrinking a component can turn an
  /// unsafe set safe, so it may coordinate on the next evaluation.
  bool Cancel(QueryId id) override;

  /// Evaluates every dirty pending component (every pending component on
  /// the from-scratch path); returns the number of coordinating sets
  /// delivered.
  size_t Flush() override;

  /// Evaluates just the component of `id` right now — the per-arrival
  /// evaluation step, exposed so an external scheduler (the sharded
  /// front door) can drive the cadence itself across many engines while
  /// each arrival still gets exactly the §6.1 treatment.  Returns
  /// whether a coordinating set was delivered; no-op when `id` is not
  /// pending.  Other dirty components stay dirty.
  bool EvaluateNow(QueryId id);

  // ------------------------------------------------------------------
  // Pending-query migration (shard merges, system/sharded_engine.h)
  // ------------------------------------------------------------------

  /// The detachable form of an engine's pending queries: a standalone
  /// QuerySet with dense ids/vars (QuerySet::Subset) plus the maps back
  /// into the source engine's namespaces.
  struct PendingExtract {
    QuerySet queries;
    std::vector<QueryId> original;     ///< dense id -> source engine id
    std::vector<VarId> original_vars;  ///< dense var -> source engine var
    /// dense id -> source schedule key.  Keys travel with the queries,
    /// so adopting an extract preserves the global ordering the source
    /// engine scheduled them under (see AdoptPending).
    std::vector<QueryId> keys;
  };

  /// Detaches every pending query: returns them as a PendingExtract
  /// (ascending source-id order) and drops them from this engine — the
  /// pending flags, the incremental graph, the component index, and the
  /// dirty marks are all cleared, as if the queries had never been
  /// admitted.  Counters other than the pending count are untouched;
  /// callers that destroy the drained engine should fold stats() into
  /// their aggregate first.
  PendingExtract ExtractPending();

  /// Admits copies of `src`'s queries `ids` — typically another
  /// engine's PendingExtract — renumbered into this engine's query and
  /// variable namespaces (QuerySet::AdoptQueries; `var_map` receives
  /// that call's (source var, adopted var) pairs).  Adopted queries are
  /// indexed into the incremental structures and their components
  /// marked dirty, but adoption never triggers evaluation and never
  /// counts as a submission: the caller owns the cadence and the
  /// submission accounting.  Returns the new ids, in input order.
  ///
  /// `keys` (optional, parallel to `ids`) assigns each adopted query an
  /// explicit schedule key; null defaults keys to the adopted local
  /// ids.  Keys must be unique engine-wide and a caller that passes
  /// explicit keys anywhere must pass them everywhere (the sharded
  /// front door keys every query by its global id) — mixing keyed and
  /// default-keyed admissions can collide.  All scheduling order —
  /// solver tie-breaks, the flush apply heap, last_delivery_schedule_key
  /// — follows keys, never local ids, which is what lets a merge append
  /// queries to a survivor engine out of local-id order and still
  /// reproduce the single-engine behaviour byte for byte.
  std::vector<QueryId> AdoptPending(
      const QuerySet& src, const std::vector<QueryId>& ids,
      std::vector<std::pair<VarId, VarId>>* var_map = nullptr,
      const std::vector<QueryId>* keys = nullptr);

  /// Bulk adoption of a whole PendingExtract: one QuerySet::AdoptAll
  /// call (one variable-remap pass, no per-query Subset), carrying the
  /// extract's schedule keys across.  O(extract) total — this is the
  /// O(smaller-side) path shard merges migrate through.
  std::vector<QueryId> AdoptPending(
      const PendingExtract& extract,
      std::vector<std::pair<VarId, VarId>>* var_map = nullptr);

  /// Master query set (all queries ever submitted; retired ones keep
  /// their slots).  Use NewVar() here before SubmitQuery.
  QuerySet* mutable_queries() { return &all_; }
  const QuerySet& queries() const { return all_; }

  /// Queries awaiting coordination.
  std::vector<QueryId> PendingQueries() const override;
  bool IsPending(QueryId id) const override;
  /// How many queries are pending, O(1) (after draining any queued
  /// intake — reads always observe every accepted submission).
  size_t num_pending() const override {
    DrainIntakeConst();
    return num_pending_;
  }

  /// Whether deferred admission is armed (EngineOptions::intake_capacity).
  bool AdmitsDeferred() const override { return intake_ != nullptr; }

  /// Recovery hook: drains queued intake (its events carry the cadence
  /// they arrived under), then pins the per-arrival phase so the next
  /// submission counts from exactly where the snapshot froze it.
  void RestoreCadencePhase(size_t phase) override {
    DrainIntake();
    since_last_eval_ = phase;
  }

  /// Tickets claimed but not yet adopted by DrainIntake — a passive
  /// atomic read; never drains.
  size_t IntakeDepth() const override {
    if (intake_ == nullptr) return 0;
    return static_cast<size_t>(intake_->next_ticket() - intake_drained_);
  }

  /// Passive load view: `pending` counts adopted pending queries plus
  /// queued intake (every accepted submission not yet retired), without
  /// forcing a drain the way num_pending() does.
  ServiceGauges GaugesSnapshot() const override {
    ServiceGauges gauges;
    gauges.pending = num_pending_ + IntakeDepth();
    gauges.intake_depth = IntakeDepth();
    gauges.live_shards = 1;
    return gauges;
  }

  /// Pending queries weakly connected to `id` in the coordination graph
  /// (including `id`, which must be pending), sorted ascending.  An
  /// index lookup on the incremental path; a graph rebuild + BFS on the
  /// from-scratch path.
  std::vector<QueryId> ComponentOf(QueryId id) const override;

  const EngineStats& stats() const { return stats_; }
  EngineStats StatsSnapshot() const override {
    DrainIntakeConst();
    EngineStats stats = stats_;
    stats.rejected = rejected_.load(std::memory_order_relaxed);
    return stats;
  }

  /// Scheduling key of the most recent delivery: the smallest schedule
  /// key over the component the coordinating set was carved from (whose
  /// holder may not itself be in the set).  Keys default to local ids;
  /// AdoptPending can assign explicit ones (the sharded front door uses
  /// global ids), in which case this returns the caller's key directly.
  /// Deliveries within one Flush() are applied in nondecreasing key
  /// order, so a front door that merges several engines' delivery
  /// streams by this key reproduces the order a single engine over the
  /// union would have produced.  Valid inside and after a delivery
  /// callback; -1 before the first delivery.
  QueryId last_delivery_schedule_key() const { return last_delivery_key_; }

 private:
  /// The sharded front door consumes raw engine-space solutions (it
  /// must translate shard-local ids/variables to global ones and merge
  /// several shards' streams before materializing public Deliveries),
  /// so it taps this internal hook instead of the public callback.
  /// Deliberately private: no public callback or event may expose the
  /// engine-internal QuerySet/CoordinationSolution types.
  friend class ShardedCoordinationEngine;
  using InternalSolutionCallback =
      std::function<void(const QuerySet&, const CoordinationSolution&)>;
  void set_internal_solution_callback(InternalSolutionCallback callback) {
    internal_callback_ = std::move(callback);
  }

  /// Fires the delivery hooks for one engine-space solution (reentrancy
  /// guard included): the internal hook when set, else the public
  /// Delivery callback.  Advances the delivery sequence either way.
  void Deliver(const CoordinationSolution& solution);

  /// A component evaluation prepared on the coordinating thread: the
  /// component's queries renumbered into a standalone QuerySet plus the
  /// matching slice of the persistent graph, so workers touch no shared
  /// engine state.
  /// Members are ordered by schedule key (ascending), so the dense
  /// subset handed to the solver is monotone in global submission order
  /// even when engine-local ids are not — the discovery-order
  /// tie-breaks inside SccCoordinator then reproduce exactly what a
  /// single engine over the union would decide.
  struct EvalTask {
    QueryId min_key = -1;             ///< smallest member schedule key
    std::vector<QueryId> original;    ///< local id -> engine id, key order
    std::vector<VarId> original_vars; ///< local var -> engine var
    QuerySet subset;
    std::vector<ExtendedEdge> edges;  ///< local ids, canonical order
  };

  /// What a worker hands back; applied on the coordinating thread.
  struct EvalOutcome {
    bool ok = false;
    CoordinationSolution solution;  ///< local ids; valid when ok
    bool unsafe = false;            ///< FailedPrecondition (safety)
    uint64_t db_queries = 0;
    uint64_t memo_hits = 0;         ///< sweep steps served by the memo
    int64_t eval_nanos = 0;         ///< solver wall time (worker-side)
  };

  /// Persistent per-component evaluation state (delta_eval), keyed by
  /// union-find root.  The task's dense subset/maps/edges are extended
  /// in place when an arrival joins exactly this component — appending
  /// the newest (largest schedule key) member reproduces byte for byte
  /// what a rebuild over the key-ordered member list would produce, so
  /// local ids and variables stay stable and the memo's keys stay
  /// meaningful.  Any
  /// other structure change (multi-component merge, cancel or delivery
  /// repartition, migration) drops the state; it is lazily rebuilt at
  /// the next evaluation.
  struct ComponentState {
    EvalTask task;
    EvalMemo memo;  ///< per-R(c) sweep verdicts (algo/scc_coordination.h)
    bool members_changed = true;  ///< membership changed since last eval
    bool clean_failure = false;   ///< last eval completed, delivered nothing
    /// (relation, version) for every relation read by the last failing
    /// evaluation; all unchanged + membership unchanged ⇒ the same
    /// failure is provable without running the solver.
    std::vector<std::pair<const Relation*, uint64_t>> stamps;
  };

  /// One reusable evaluation slot: task built on the coordinating
  /// thread, outcome written by whichever participant claims the slot's
  /// chunk, applied on the coordinating thread in min-id heap order.
  /// Slots persist across flushes so a steady-state flush reuses their
  /// vector capacity instead of allocating per evaluation.  With
  /// delta_eval armed the slot borrows the component's persistent task
  /// (`task_ptr` into `state`) instead of building into its own.
  struct PendingEval {
    EvalTask task;
    const EvalTask* task_ptr = nullptr;  ///< &task, or &state->task
    ComponentState* state = nullptr;     ///< non-null on the delta path
    EvalOutcome outcome;
    bool ran = false;  ///< outcome valid (read only at wave barriers)
  };

  /// One deferred admission: a single parsed query (staging id 0)
  /// carried from the producing thread to the owner's drain, plus how
  /// it participates in the evaluation cadence.
  struct IntakeEvent {
    QuerySet staging;
    bool cadence = true;      ///< counts toward evaluate_every at drain
    bool batch_tail = false;  ///< last member of a batch: flush after
  };

  /// Shared admission path after `id` was appended to all_: counts the
  /// submission, indexes the query, and applies the evaluation cadence.
  void Admit(QueryId id);

  /// The indexing half of admission (pending flag, incremental graph,
  /// component union, dirty mark) — shared by Admit and AdoptPending,
  /// which must not count submissions or trigger evaluation.
  void IndexQuery(QueryId id);

  /// CHECK-fails when called from inside a solution callback;
  /// `entry_point` names the violating call in the failure message.
  void CheckNotReentrant(const char* entry_point) const;

  /// Grows schedule_keys_ to cover ids [0, n) with identity keys.
  /// Queries adopted with explicit keys are overwritten right after.
  void EnsureScheduleKeys(size_t n) {
    if (schedule_keys_.size() >= n) return;
    schedule_keys_.reserve(n);
    while (schedule_keys_.size() < n) {
      schedule_keys_.push_back(static_cast<QueryId>(schedule_keys_.size()));
    }
  }
  QueryId key_of(QueryId id) const {
    return schedule_keys_[static_cast<size_t>(id)];
  }

  /// Union-find over engine ids (weak connectivity of pending queries).
  QueryId FindRoot(QueryId q) const;
  void UnionComps(QueryId a, QueryId b);

  /// Removes delivered/cancelled queries from the incremental index and
  /// re-partitions the survivors of their component.  The resulting
  /// component roots are marked dirty and returned (sorted by smallest
  /// member id).
  std::vector<QueryId> RetireAndRepartition(
      const std::vector<QueryId>& retired);

  /// Builds `root`'s component evaluation into `*task`, reusing the
  /// task's vector capacity; member scratch comes from flush_arena_.
  void BuildTask(QueryId root, EvalTask* task) const;
  EvalOutcome RunTask(const EvalTask& task, EvalMemo* memo = nullptr) const;

  // ---- delta-aware evaluation (options_.delta_eval) ------------------

  /// The persistent state of `root`'s component, built on first use.
  ComponentState* EnsureComponentState(QueryId root);
  /// Appends arrival `id` — which must carry the largest schedule key
  /// in its component — to `root`'s persistent subset/edges, if a state
  /// exists (no-op otherwise; the state is lazily built at the next
  /// evaluation).  An id out of key order degrades to a rebuild.
  void ExtendComponentState(QueryId root, QueryId id);
  /// Whether the stamp fingerprint proves re-evaluating `state` would
  /// reproduce its last failure (EngineStats::evaluations_avoided).
  bool CanSkipEvaluation(const ComponentState& state) const;
  /// Records a completed no-delivery evaluation: arms the skip
  /// fingerprint with the current relation stamps.
  void RecordCleanFailure(ComponentState* state) const;
  /// Moves `root`'s state (if any) to doomed_states_, which keeps the
  /// task storage alive until the current evaluation round finishes —
  /// ApplyOutcome holds references into it across the repartition.
  void DoomComponentState(QueryId root);
  /// Applies one outcome: delivers + retires on success.  Returns
  /// whether a coordinating set was delivered; on delivery the
  /// repartitioned fragment roots land in `new_roots` when non-null.
  bool ApplyOutcome(const EvalTask& task, EvalOutcome outcome,
                    std::vector<QueryId>* new_roots = nullptr);

  /// Evaluates the (single) component of `root` on the calling thread.
  bool EvaluateComponentOf(QueryId root);

  size_t IncrementalFlush();

  /// The scheduler Flush() fans out on: the borrowed shared pool, the
  /// lazily created owned pool (flush_threads - 1 workers; the flushing
  /// thread is the remaining participant), or null for the serial path.
  ThreadPool* FlushPool();

  // ---- deferred admission (intake_ != nullptr) -----------------------
  //
  // Producers (any thread): parse into a private staging QuerySet,
  // claim a queue ticket with one atomic op, and derive the adopted id
  // from it (id = intake_base_ + ticket) — the ticket fixes both the
  // FIFO position and the id, so concurrent producers can never hand
  // out ids out of arrival order.  The owner thread drains at every
  // flush/read boundary and replays the inline admission path
  // (AdoptQueries + IndexQuery + cadence), so the delivery log is
  // byte-identical to an inline engine fed the same arrival order.
  //
  // Owner-only surface: everything except Submit / non-empty
  // SubmitBatch must be called on the thread that constructed the
  // engine while producers are in flight.

  Result<QueryId> SubmitDeferred(const std::string& query_text);
  Result<std::vector<QueryId>> SubmitBatchDeferred(
      const std::vector<std::string>& query_texts);
  /// Enqueues; on a full ring the owner drains inline (it is the
  /// consumer — blocking would deadlock), other producers spin-wait.
  uint64_t PushIntake(IntakeEvent event);
  /// Owner thread: adopts every queued event in ticket order.  No-op
  /// while already draining or inside a delivery callback.
  void DrainIntake();
  void DrainIntakeConst() const {
    const_cast<CoordinationEngine*>(this)->DrainIntake();
  }
  /// Re-derives intake_base_ after all_ grew outside the drain path
  /// (SubmitQuery/AdoptPending); requires producer quiescence.
  void ResyncIntakeBase();

  // ---- from-scratch reference path (options_.incremental == false) ----
  bool LegacyEvaluateComponentOf(QueryId root);
  std::vector<QueryId> LegacyComponentOf(QueryId root) const;
  size_t LegacyFlush();

  const Database* db_;
  EngineOptions options_;
  QuerySet all_;
  std::vector<bool> pending_;  // per query id in all_
  /// Per query id: the monotone schedule key every ordering decision
  /// (solver member order, apply heap, delivery merge key) is taken on.
  /// Identity unless AdoptPending assigned explicit keys.
  std::vector<QueryId> schedule_keys_;
  size_t num_pending_ = 0;     // population count of pending_
  size_t since_last_eval_ = 0;
  DeliveryCallback callback_;
  InternalSolutionCallback internal_callback_;
  bool in_callback_ = false;
  EngineStats stats_;
  /// Refused submissions (parse failures).  Atomic — and outside
  /// stats_ — because deferred producers reject on their own threads;
  /// StatsSnapshot() folds it into EngineStats::rejected.
  std::atomic<uint64_t> rejected_{0};
  QueryId last_delivery_key_ = -1;
  uint64_t next_delivery_sequence_ = 0;

  // ---- incremental core ----
  ExtendedCoordinationGraph graph_;      // over pending queries only
  mutable std::vector<QueryId> uf_parent_;
  std::vector<uint32_t> uf_size_;
  std::vector<QueryId> comp_min_;        // at roots: smallest member key
  std::vector<std::vector<QueryId>> comp_members_;  // at roots
  std::unordered_set<QueryId> dirty_roots_;
  std::unique_ptr<ThreadPool> pool_;     // lazily created by FlushPool()

  // ---- delta-aware evaluation state ----
  bool delta_armed_ = false;             // incremental && delta_eval
  uint64_t last_db_version_ = 0;         // db_->version() at last flush
  std::unordered_map<QueryId, std::unique_ptr<ComponentState>> comp_states_;
  std::vector<std::unique_ptr<ComponentState>> doomed_states_;

  // ---- flush scratch (coordinating thread; reset per flush) ----
  std::deque<PendingEval> eval_slots_;   // stable refs; reused per flush
  size_t eval_slots_used_ = 0;
  EvalTask arrival_task_;                // per-arrival evaluation slot
  mutable Arena flush_arena_;            // heap/wave/member scratch

  // ---- deferred admission ----
  std::unique_ptr<MpscQueue<IntakeEvent>> intake_;  // null = inline
  std::atomic<int64_t> intake_base_{0};  // adopted id = base + ticket
  uint64_t intake_drained_ = 0;          // next ticket the drain adopts
  std::thread::id owner_thread_;         // constructor thread = consumer
  bool draining_ = false;                // re-entrancy guard for drains
};

}  // namespace entangled

#endif  // ENTANGLED_SYSTEM_ENGINE_H_
