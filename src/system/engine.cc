#include "system/engine.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "core/coordination_graph.h"
#include "core/parser.h"

namespace entangled {

CoordinationEngine::CoordinationEngine(const Database* db,
                                       EngineOptions options)
    : db_(db), options_(options) {
  ENTANGLED_CHECK(db != nullptr);
}

Result<QueryId> CoordinationEngine::Submit(const std::string& query_text) {
  auto id = ParseQuery(query_text, &all_);
  if (!id.ok()) return id.status();
  // The parser already appended the query; run the shared admission
  // path without re-adding.
  pending_.resize(all_.size(), false);
  pending_[static_cast<size_t>(*id)] = true;
  ++stats_.submitted;
  if (options_.evaluate_every > 0 &&
      ++since_last_eval_ >= options_.evaluate_every) {
    since_last_eval_ = 0;
    EvaluateComponentOf(*id);
  }
  return id;
}

QueryId CoordinationEngine::SubmitQuery(EntangledQuery query) {
  QueryId id = all_.AddQuery(std::move(query));
  pending_.resize(all_.size(), false);
  pending_[static_cast<size_t>(id)] = true;
  ++stats_.submitted;
  if (options_.evaluate_every > 0 &&
      ++since_last_eval_ >= options_.evaluate_every) {
    since_last_eval_ = 0;
    EvaluateComponentOf(id);
  }
  return id;
}

std::vector<QueryId> CoordinationEngine::PendingQueries() const {
  std::vector<QueryId> pending;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i]) pending.push_back(static_cast<QueryId>(i));
  }
  return pending;
}

bool CoordinationEngine::IsPending(QueryId id) const {
  return id >= 0 && static_cast<size_t>(id) < pending_.size() &&
         pending_[static_cast<size_t>(id)];
}

std::vector<QueryId> CoordinationEngine::ComponentOf(QueryId root) const {
  // Weak connectivity over the coordination graph of the pending
  // queries.  The graph is rebuilt over the pending subset; incremental
  // maintenance would only matter once components grow far beyond the
  // workloads of §6.
  std::vector<QueryId> pending = PendingQueries();
  std::vector<QueryId> original;
  QuerySet subset = all_.Subset(pending, &original);
  Digraph graph = BuildCoordinationGraph(subset);

  // Locate root within the subset.
  NodeId root_node = -1;
  for (size_t i = 0; i < original.size(); ++i) {
    if (original[i] == root) root_node = static_cast<NodeId>(i);
  }
  ENTANGLED_CHECK_GE(root_node, 0) << "root query is not pending";

  std::vector<bool> visited(static_cast<size_t>(graph.num_nodes()), false);
  std::deque<NodeId> queue{root_node};
  visited[static_cast<size_t>(root_node)] = true;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (const auto& neighbours :
         {graph.Successors(u), graph.Predecessors(u)}) {
      for (NodeId v : neighbours) {
        if (!visited[static_cast<size_t>(v)]) {
          visited[static_cast<size_t>(v)] = true;
          queue.push_back(v);
        }
      }
    }
  }
  std::vector<QueryId> component;
  for (size_t i = 0; i < visited.size(); ++i) {
    if (visited[i]) component.push_back(original[i]);
  }
  return component;
}

bool CoordinationEngine::EvaluateComponentOf(QueryId root) {
  if (!IsPending(root)) return false;
  std::vector<QueryId> component = ComponentOf(root);
  std::vector<QueryId> original;
  QuerySet subset = all_.Subset(component, &original);

  SccCoordinator coordinator(db_, options_.scc);
  ++stats_.evaluations;
  auto result = coordinator.Solve(subset);
  stats_.db_queries += coordinator.stats().db_queries;
  if (!result.ok()) {
    if (result.status().IsFailedPrecondition()) ++stats_.unsafe_components;
    return false;
  }

  // Translate subset ids back to engine ids and retire the winners.
  CoordinationSolution solution;
  solution.assignment = result->assignment;  // var ids are shared
  for (QueryId local : result->queries) {
    QueryId engine_id = original[static_cast<size_t>(local)];
    solution.queries.push_back(engine_id);
    pending_[static_cast<size_t>(engine_id)] = false;
  }
  std::sort(solution.queries.begin(), solution.queries.end());
  stats_.coordinated_queries += solution.queries.size();
  ++stats_.coordinating_sets;
  if (callback_) callback_(all_, solution);
  return true;
}

size_t CoordinationEngine::Flush() {
  size_t delivered = 0;
  bool progress = true;
  // Re-evaluate until no component coordinates: retiring one set can
  // leave a smaller component that still coordinates on its own.
  while (progress) {
    progress = false;
    for (QueryId id : PendingQueries()) {
      if (!IsPending(id)) continue;  // retired by an earlier evaluation
      if (EvaluateComponentOf(id)) {
        ++delivered;
        progress = true;
      }
    }
  }
  return delivered;
}

}  // namespace entangled
