#ifndef ENTANGLED_GRAPH_DIGRAPH_H_
#define ENTANGLED_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace entangled {

/// \brief Node identifier within a Digraph (dense, 0-based).
using NodeId = int32_t;

/// \brief A directed graph over a fixed node set, stored as forward and
/// reverse adjacency lists.
///
/// This is the JGraphT substitute: coordination graphs, condensations
/// and the synthetic social networks are all Digraphs.  Parallel edges
/// are allowed unless callers use AddEdgeUnique; self-loops are allowed
/// (a query whose postcondition unifies with its own head).
class Digraph {
 public:
  /// An empty graph with `num_nodes` isolated nodes.
  explicit Digraph(NodeId num_nodes = 0);

  NodeId num_nodes() const { return static_cast<NodeId>(out_.size()); }
  int64_t num_edges() const { return num_edges_; }

  /// Appends a new isolated node and returns its id.
  NodeId AddNode();

  /// Adds the edge u -> v (parallel edges permitted).
  void AddEdge(NodeId u, NodeId v);

  /// Adds u -> v unless it is already present; returns whether an edge
  /// was added.  O(out-degree(u)).
  bool AddEdgeUnique(NodeId u, NodeId v);

  /// Whether the edge u -> v is present.  O(out-degree(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  const std::vector<NodeId>& Successors(NodeId u) const;
  const std::vector<NodeId>& Predecessors(NodeId v) const;

  size_t OutDegree(NodeId u) const { return Successors(u).size(); }
  size_t InDegree(NodeId v) const { return Predecessors(v).size(); }

  /// The subgraph induced by nodes with keep[v] == true.  Kept nodes are
  /// renumbered densely in increasing id order; `old_to_new` (optional)
  /// receives the mapping with -1 for dropped nodes.
  Digraph InducedSubgraph(const std::vector<bool>& keep,
                          std::vector<NodeId>* old_to_new = nullptr) const;

  /// The graph with every edge reversed.
  Digraph Reversed() const;

  /// Multi-line human-readable dump (for test failure messages).
  std::string ToString() const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  int64_t num_edges_ = 0;
};

}  // namespace entangled

#endif  // ENTANGLED_GRAPH_DIGRAPH_H_
