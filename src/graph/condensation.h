#ifndef ENTANGLED_GRAPH_CONDENSATION_H_
#define ENTANGLED_GRAPH_CONDENSATION_H_

#include "graph/digraph.h"
#include "graph/scc.h"

namespace entangled {

/// \brief The components graph G' of the paper (§4): one node per SCC,
/// an edge S1 -> S2 when some u in S1 has an edge to some v in S2,
/// parallel edges collapsed and self-loops dropped.
///
/// `scc` must come from TarjanScc/NaiveScc over the same `graph`.  The
/// result is a DAG whose node c corresponds to scc.members[c].
Digraph Condense(const Digraph& graph, const SccResult& scc);

}  // namespace entangled

#endif  // ENTANGLED_GRAPH_CONDENSATION_H_
