// Streaming-engine throughput: incremental coordination core versus
// the from-scratch-rebuild reference path.
//
// Scenario: a backlog of `pending` stuck queries (each waiting on a
// postcondition nobody answers — the §6.1 steady state of requests that
// have not coordinated yet) sits in the engine while a stream of
// mutually-entangled pairs arrives under the eager per-arrival policy.
// The incremental core admits an arrival through its per-relation
// unification index and evaluates just the arrival's component (a
// union-find lookup); the reference path rebuilds the coordination
// graph over the whole pending set for every arrival, which is
// O(pending²) atom-pair work per submission.
//
// A second series measures Flush() fan-out: N independent coordinating
// components evaluated by 1 vs. several worker threads.

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

constexpr size_t kSocialRows = 4096;

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    ENTANGLED_CHECK(InstallSocialTable(database, "Users", kSocialRows).ok());
    return database;
  }();
  return *db;
}

std::string StuckQuery(size_t i) {
  return "w" + std::to_string(i) + ": { Dead" + std::to_string(i) +
         "(m) } W" + std::to_string(i) + "(s) :- Users(s, 'user" +
         std::to_string(i % 97) + "').";
}

/// Pair i coordinates with itself through answer relation P{i}.
std::vector<std::string> PairQueries(size_t i) {
  const std::string rel = "P" + std::to_string(i);
  const std::string handle = "'user" + std::to_string(i % 97) + "'";
  return {
      "a" + std::to_string(i) + ": { " + rel + "(Bob, x) } " + rel +
          "(Alice, x) :- Users(x, " + handle + ").",
      "b" + std::to_string(i) + ": { " + rel + "(Alice, y) } " + rel +
          "(Bob, y) :- Users(y, " + handle + ").",
  };
}

struct StreamOutcome {
  double seconds = 0;
  size_t arrivals = 0;
  uint64_t sets = 0;
  uint64_t db_queries = 0;
  double qps() const { return arrivals / seconds; }
};

/// Preloads the stuck backlog without evaluation, switches to the eager
/// per-arrival policy, then streams pair arrivals until `max_arrivals`
/// or the time budget runs out (the rebuild path is far too slow to
/// stream thousands of arrivals at a 10k backlog).
StreamOutcome RunStream(bool incremental, size_t pending,
                        size_t max_arrivals, double budget_seconds) {
  EngineOptions options;
  options.incremental = incremental;
  options.evaluate_every = 0;
  CoordinationEngine engine(&SocialDb(), options);
  for (size_t i = 0; i < pending; ++i) {
    auto id = engine.Submit(StuckQuery(i));
    ENTANGLED_CHECK(id.ok()) << id.status();
  }
  engine.set_evaluate_every(1);

  StreamOutcome outcome;
  const uint64_t db_before = engine.stats().db_queries;
  WallTimer timer;
  size_t pair = 0;
  while (outcome.arrivals < max_arrivals &&
         (outcome.arrivals < 2 ||
          timer.ElapsedSeconds() < budget_seconds)) {
    for (const std::string& text : PairQueries(pair++)) {
      auto id = engine.Submit(text);
      ENTANGLED_CHECK(id.ok()) << id.status();
      ++outcome.arrivals;
    }
  }
  outcome.seconds = timer.ElapsedSeconds();
  outcome.sets = engine.stats().coordinating_sets;
  outcome.db_queries = engine.stats().db_queries - db_before;
  ENTANGLED_CHECK_EQ(outcome.sets, static_cast<uint64_t>(pair))
      << "every pair must coordinate on its second arrival";
  ENTANGLED_CHECK_EQ(engine.PendingQueries().size(), pending)
      << "the stuck backlog must survive untouched";
  return outcome;
}

void StreamSeries() {
  benchutil::PrintSeriesHeader(
      "Incremental stream: sustained submissions/sec vs pending backlog, "
      "eager per-arrival evaluation",
      {"pending", "incremental_qps", "rebuild_qps", "speedup"});
  double speedup_at_10k = 0;
  for (size_t pending : {size_t{1000}, size_t{10000}}) {
    StreamOutcome fast = RunStream(/*incremental=*/true, pending,
                                   /*max_arrivals=*/2000,
                                   /*budget_seconds=*/5.0);
    StreamOutcome slow = RunStream(/*incremental=*/false, pending,
                                   /*max_arrivals=*/2000,
                                   /*budget_seconds=*/2.0);
    const double speedup = fast.qps() / slow.qps();
    if (pending == 10000) speedup_at_10k = speedup;
    benchutil::PrintRow({static_cast<double>(pending), fast.qps(),
                         slow.qps(), speedup});
    benchutil::PrintJsonRecord(
        "incremental_stream",
        {{"pending", static_cast<double>(pending)},
         {"incremental_qps", fast.qps()},
         {"incremental_arrivals", static_cast<double>(fast.arrivals)},
         {"incremental_db_queries", static_cast<double>(fast.db_queries)},
         {"rebuild_qps", slow.qps()},
         {"rebuild_arrivals", static_cast<double>(slow.arrivals)},
         {"rebuild_db_queries", static_cast<double>(slow.db_queries)},
         {"speedup", speedup}});
  }
  benchutil::PrintNote(
      "the reference path rebuilds the coordination graph over the whole "
      "pending set per arrival; the incremental index touches only the "
      "arrival's relation buckets and component");
  ENTANGLED_CHECK_GE(speedup_at_10k, 5.0)
      << "incremental core must beat the from-scratch rebuild by >= 5x "
         "sustained submissions/sec at a 10k pending backlog";
}

void ParallelFlushSeries() {
  benchutil::PrintSeriesHeader(
      "Parallel flush: N independent coordinating pairs per flush, "
      "1 vs 4 worker threads",
      {"components", "t1_ms", "t4_ms", "t1_qps", "t4_qps"});
  for (size_t components : {size_t{64}, size_t{256}}) {
    double ms[2];
    for (size_t mode = 0; mode < 2; ++mode) {
      EngineOptions options;
      options.evaluate_every = 0;
      options.flush_threads = mode == 0 ? 1 : 4;
      CoordinationEngine engine(&SocialDb(), options);
      for (size_t i = 0; i < components; ++i) {
        for (const std::string& text : PairQueries(i)) {
          ENTANGLED_CHECK(engine.Submit(text).ok());
        }
      }
      WallTimer timer;
      size_t delivered = engine.Flush();
      ms[mode] = timer.ElapsedMillis();
      ENTANGLED_CHECK_EQ(delivered, components);
    }
    const double n = static_cast<double>(2 * components);
    benchutil::PrintRow({static_cast<double>(components), ms[0], ms[1],
                         n / (ms[0] / 1e3), n / (ms[1] / 1e3)});
    benchutil::PrintJsonRecord(
        "parallel_flush",
        {{"components", static_cast<double>(components)},
         {"t1_ms", ms[0]},
         {"t4_ms", ms[1]},
         {"t1_qps", n / (ms[0] / 1e3)},
         {"t4_qps", n / (ms[1] / 1e3)}});
  }
  benchutil::PrintNote(
      "disjoint dirty components evaluate on the pool; results apply in "
      "deterministic component order, so outputs match the serial flush "
      "bit for bit (gains require hardware parallelism)");
}

}  // namespace
}  // namespace entangled

int main() {
  entangled::StreamSeries();
  entangled::ParallelFlushSeries();
  return 0;
}
