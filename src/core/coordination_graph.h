#ifndef ENTANGLED_CORE_COORDINATION_GRAPH_H_
#define ENTANGLED_CORE_COORDINATION_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "graph/digraph.h"

namespace entangled {

/// \brief One edge of the extended coordination graph (§2.3): the
/// postcondition atom `postconditions[post_index]` of query `from`
/// unifies (positionwise) with the head atom `head[head_index]` of query
/// `to` — i.e. `from` potentially needs `to`'s head to be satisfied.
struct ExtendedEdge {
  QueryId from;
  size_t post_index;
  QueryId to;
  size_t head_index;

  friend bool operator==(const ExtendedEdge& a, const ExtendedEdge& b) {
    return a.from == b.from && a.post_index == b.post_index &&
           a.to == b.to && a.head_index == b.head_index;
  }
};

/// \brief The extended coordination graph: a directed multigraph over
/// the query set, with one edge per unifiable (postcondition, head)
/// pair.
///
/// Two construction modes share one representation:
///
///  * **Batch** (the paper's §2.3 definition): the one-argument
///    constructor builds the graph over every query of a set at once.
///  * **Incremental** (the streaming engine, §6.1): default-construct,
///    then AddQuery() per arrival and RetireQueries() per delivered
///    coordinating set.  A per-relation unification index buckets live
///    head and postcondition atoms by relation name, so admitting a
///    query unifies only against candidate buckets — near O(degree) for
///    realistic workloads instead of rescanning every pending atom.
///
/// After a retirement the edge *array* keeps freed slots for reuse, so
/// edges() is only meaningful for never-retired graphs (the batch use);
/// incremental consumers walk OutEdges()/InEdges() + edge(), which are
/// always exact.
class ExtendedCoordinationGraph {
 public:
  /// An empty incremental graph; grow it with AddQuery().
  ExtendedCoordinationGraph() = default;

  /// Batch mode: builds the graph over all queries of `set` (quadratic
  /// in the number of atoms; in realistic workloads the graph is very
  /// sparse, §4).
  explicit ExtendedCoordinationGraph(const QuerySet& set);

  // ------------------------------------------------------------------
  // Incremental API
  // ------------------------------------------------------------------

  /// Admits query `q` of `set` (not currently live here): unifies its
  /// postconditions against the live head buckets and its heads against
  /// the live postcondition buckets, adding one edge per match
  /// (self-edges included).  Afterwards OutEdges(q)/InEdges(q) are
  /// exactly q's incident edges.  Cost: O(candidate atoms sharing a
  /// relation name), not O(all pending atoms).
  void AddQuery(const QuerySet& set, QueryId q);

  /// Removes the given live queries and every edge incident to them;
  /// their atoms leave the unification index.  Freed edge slots are
  /// reused by later AddQuery calls.
  void RetireQueries(const std::vector<QueryId>& ids);

  /// Whether q has been added and not retired.
  bool IsLive(QueryId q) const {
    return q >= 0 && static_cast<size_t>(q) < live_.size() &&
           live_[static_cast<size_t>(q)];
  }

  /// Number of live (added, not retired) queries.
  size_t num_live() const { return num_live_; }

  /// The edge stored in slot e (slots come from OutEdges/InEdges).
  const ExtendedEdge& edge(size_t e) const { return edges_[e]; }

  /// Edge slots leaving query q (one per matching (post, head) pair).
  const std::vector<size_t>& OutEdges(QueryId q) const;

  /// Edge slots entering query q.
  const std::vector<size_t>& InEdges(QueryId q) const;

  // ------------------------------------------------------------------
  // Batch accessors
  // ------------------------------------------------------------------

  /// All edge slots in creation order.  Exact for graphs that never
  /// retired a query; after retirement freed slots may hold stale
  /// entries — use OutEdges()/InEdges() + edge() instead.
  const std::vector<ExtendedEdge>& edges() const { return edges_; }

  size_t num_queries() const { return out_.size(); }

  /// Edge slots leaving the specific postcondition `post_index` of
  /// query q; the paper's safety condition is |this| <= 1 for every
  /// postcondition (Definition 2).
  std::vector<size_t> EdgesOfPostcondition(QueryId q,
                                           size_t post_index) const;

  /// The (collapsed) coordination graph: one node per query, an edge
  /// (q, q') when some postcondition of q unifies with some head of q'.
  /// Self-loops are kept (they collapse inside SCCs anyway).  Retired
  /// queries remain as isolated vertices.
  Digraph Collapse() const;

  std::string ToString(const QuerySet& set) const;

 private:
  /// A live head or postcondition atom: query + index within its list.
  struct AtomRef {
    QueryId query;
    size_t index;
  };

  /// Stores the edge (reusing a freed slot when available) and links it
  /// into both endpoint lists; returns the slot.
  size_t AddEdgeSlot(QueryId from, size_t post_index, QueryId to,
                     size_t head_index);

  /// Grows the per-query tables to cover ids 0..n-1.
  void EnsureCapacity(size_t n);

  /// Registers q's atoms in the unification index.
  void IndexAtoms(const QuerySet& set, QueryId q);

  std::vector<ExtendedEdge> edges_;
  std::vector<bool> edge_live_;       // parallel to edges_
  std::vector<size_t> free_slots_;    // dead entries of edges_
  std::vector<std::vector<size_t>> out_;  // per query, edge slots
  std::vector<std::vector<size_t>> in_;   // per query, edge slots
  std::vector<bool> live_;
  size_t num_live_ = 0;

  // The unification index: live atoms bucketed by relation name (arity
  // mismatches are rejected by PositionwiseUnifiable during the scan).
  // Buckets hold queries in admission order.  indexed_relations_
  // remembers, per query, which buckets its atoms landed in, so
  // retirement scrubs only those buckets instead of the whole index.
  std::unordered_map<std::string, std::vector<AtomRef>> head_buckets_;
  std::unordered_map<std::string, std::vector<AtomRef>> post_buckets_;
  std::vector<std::vector<std::string>> indexed_relations_;  // per query
};

/// \brief Convenience: the collapsed coordination graph of a query set.
Digraph BuildCoordinationGraph(const QuerySet& set);

}  // namespace entangled

#endif  // ENTANGLED_CORE_COORDINATION_GRAPH_H_
