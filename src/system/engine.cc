#include "system/engine.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "core/parser.h"

namespace entangled {

CoordinationEngine::CoordinationEngine(const Database* db,
                                       EngineOptions options)
    : db_(db),
      options_(options),
      owner_thread_(std::this_thread::get_id()) {
  ENTANGLED_CHECK(db != nullptr);
  delta_armed_ = options_.incremental && options_.delta_eval;
  last_db_version_ = db_->version();
  if (options_.intake_capacity > 0) {
    intake_ =
        std::make_unique<MpscQueue<IntakeEvent>>(options_.intake_capacity);
    // all_ is empty and no ticket has been claimed: base = 0.
  }
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

void CoordinationEngine::Deliver(const CoordinationSolution& solution) {
  const uint64_t sequence = next_delivery_sequence_++;
  if (internal_callback_) {
    in_callback_ = true;
    internal_callback_(all_, solution);
    in_callback_ = false;
  } else if (callback_) {
    // Materialize only when somebody listens: texts and grounded heads
    // cost allocations the silent path should not pay.
    const Delivery delivery = MakeDelivery(all_, solution, sequence);
    in_callback_ = true;
    callback_(delivery);
    in_callback_ = false;
  }
}

void CoordinationEngine::CheckNotReentrant(const char* entry_point) const {
  ENTANGLED_CHECK(!in_callback_)
      << entry_point
      << " called from inside a delivery callback: callbacks must not "
         "re-enter the CoordinationEngine; defer the follow-up until the "
         "delivering call returns";
}

Result<QueryId> CoordinationEngine::Submit(const std::string& query_text) {
  if (intake_ != nullptr) return SubmitDeferred(query_text);
  CheckNotReentrant("Submit");
  auto id = ParseQuery(query_text, &all_);
  if (!id.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return id.status();
  }
  // The parser already appended the query; run the shared admission
  // path without re-adding.
  Admit(*id);
  return id;
}

QueryId CoordinationEngine::SubmitQuery(EntangledQuery query) {
  CheckNotReentrant("SubmitQuery");
  // Owner-thread inline mutator: queued intake must land first so ids
  // stay in arrival order, and the id base must resync afterwards
  // because this growth bypasses the ticket accounting.
  DrainIntake();
  QueryId id = all_.AddQuery(std::move(query));
  Admit(id);
  ResyncIntakeBase();
  return id;
}

Result<std::vector<QueryId>> CoordinationEngine::SubmitBatch(
    const std::vector<std::string>& query_texts) {
  if (intake_ != nullptr && !query_texts.empty()) {
    return SubmitBatchDeferred(query_texts);
  }
  CheckNotReentrant("SubmitBatch");
  DrainIntake();  // empty deferred batch: flush below covers the queue
  // Admission is all-or-nothing: parse the whole batch against a
  // staging set first, so a mid-batch syntax error leaves no orphaned
  // half-batch pending with ids the caller never received.
  {
    QuerySet staging;
    for (const std::string& text : query_texts) {
      auto id = ParseQuery(text, &staging);
      if (!id.ok()) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return id.status();
      }
    }
  }
  std::vector<QueryId> ids;
  ids.reserve(query_texts.size());
  // Suspend per-arrival evaluation while the batch is admitted: the
  // whole batch lands in the graph first, then one Flush() examines the
  // (merged) dirty components once instead of once per arrival.
  const size_t evaluate_every = options_.evaluate_every;
  options_.evaluate_every = 0;
  for (const std::string& text : query_texts) {
    auto id = ParseQuery(text, &all_);
    ENTANGLED_CHECK(id.ok()) << "validated batch re-parse failed: "
                             << id.status().ToString();
    Admit(*id);
    ids.push_back(*id);
  }
  options_.evaluate_every = evaluate_every;
  if (evaluate_every > 0) {
    since_last_eval_ = 0;
    Flush();
  }
  return ids;
}

// ---------------------------------------------------------------------------
// Deferred admission (EngineOptions::intake_capacity > 0)
// ---------------------------------------------------------------------------

Result<QueryId> CoordinationEngine::SubmitDeferred(
    const std::string& query_text) {
  // in_callback_ is owner-thread state; producers on other threads
  // cannot read it (and cannot be inside a callback anyway).
  if (std::this_thread::get_id() == owner_thread_) CheckNotReentrant("Submit");
  IntakeEvent event;
  auto id = ParseQuery(query_text, &event.staging);
  if (!id.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return id.status();
  }
  const uint64_t ticket = PushIntake(std::move(event));
  return static_cast<QueryId>(intake_base_.load(std::memory_order_relaxed) +
                              static_cast<int64_t>(ticket));
}

Result<std::vector<QueryId>> CoordinationEngine::SubmitBatchDeferred(
    const std::vector<std::string>& query_texts) {
  if (std::this_thread::get_id() == owner_thread_) {
    CheckNotReentrant("SubmitBatch");
  }
  // All-or-nothing: validate every text before enqueuing anything, so
  // a mid-batch syntax error admits nothing.
  std::vector<IntakeEvent> events;
  events.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    IntakeEvent event;
    auto id = ParseQuery(text, &event.staging);
    if (!id.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return id.status();
    }
    // Batch members do not tick the cadence; the tail flushes once —
    // the same suspend-then-flush the inline path performs.
    event.cadence = false;
    events.push_back(std::move(event));
  }
  events.back().batch_tail = true;
  std::vector<QueryId> ids;
  ids.reserve(events.size());
  const int64_t base = intake_base_.load(std::memory_order_relaxed);
  for (IntakeEvent& event : events) {
    const uint64_t ticket = PushIntake(std::move(event));
    ids.push_back(static_cast<QueryId>(base + static_cast<int64_t>(ticket)));
  }
  return ids;
}

uint64_t CoordinationEngine::PushIntake(IntakeEvent event) {
  uint64_t ticket = 0;
  if (std::this_thread::get_id() == owner_thread_) {
    // The owner is the queue's consumer: on a full ring it drains
    // inline instead of blocking on itself.
    ENTANGLED_CHECK(!draining_)
        << "intake push from inside the drain path";
    while (!intake_->TryPush(std::move(event), &ticket)) DrainIntake();
  } else {
    ticket = intake_->Push(std::move(event));
  }
  return ticket;
}

void CoordinationEngine::DrainIntake() {
  if (intake_ == nullptr || draining_ || in_callback_) return;
  draining_ = true;
  IntakeEvent event;
  while (intake_->TryPop(&event)) {
    const QueryId predicted = static_cast<QueryId>(
        intake_base_.load(std::memory_order_relaxed) +
        static_cast<int64_t>(intake_drained_++));
    // Replay the inline admission path: adopt the staged query (same
    // query/variable ids a direct parse would have produced), index it,
    // and apply the cadence the event carried.
    std::vector<QueryId> adopted = all_.AdoptQueries(event.staging, {0});
    ENTANGLED_CHECK_EQ(adopted.size(), size_t{1});
    ENTANGLED_CHECK_EQ(adopted.front(), predicted)
        << "intake drain order diverged from ticket order";
    ++stats_.submitted;
    IndexQuery(predicted);
    if (event.cadence && options_.evaluate_every > 0 &&
        ++since_last_eval_ >= options_.evaluate_every) {
      since_last_eval_ = 0;
      if (options_.incremental) {
        EvaluateComponentOf(predicted);
      } else {
        LegacyEvaluateComponentOf(predicted);
      }
    }
    if (event.batch_tail && options_.evaluate_every > 0) {
      since_last_eval_ = 0;
      if (options_.incremental) {
        IncrementalFlush();
      } else {
        LegacyFlush();
      }
    }
  }
  draining_ = false;
}

void CoordinationEngine::ResyncIntakeBase() {
  if (intake_ == nullptr) return;
  intake_base_.store(static_cast<int64_t>(all_.size()) -
                         static_cast<int64_t>(intake_->next_ticket()),
                     std::memory_order_relaxed);
}

void CoordinationEngine::IndexQuery(QueryId id) {
  const size_t n = all_.size();
  pending_.resize(n, false);
  // Identity keys for directly submitted queries; AdoptPending already
  // overwrote the adopted range when the caller passed explicit keys.
  EnsureScheduleKeys(n);
  pending_[static_cast<size_t>(id)] = true;
  ++num_pending_;

  if (options_.incremental) {
    // Every new id starts as its own singleton component.
    while (uf_parent_.size() < n) {
      QueryId q = static_cast<QueryId>(uf_parent_.size());
      uf_parent_.push_back(q);
      uf_size_.push_back(1);
      comp_min_.push_back(key_of(q));
      comp_members_.push_back({q});
    }
    // Index the arrival; its incident edges are exactly the new ones.
    graph_.AddQuery(all_, id);

    // Persistent-subset maintenance must see the component partition
    // *before* the arrival's unions: an arrival joining exactly one
    // existing component extends its state in place (appending the
    // newest id reproduces a rebuild byte for byte); an arrival gluing
    // several components together invalidates all their states — the
    // concatenation would not be the ascending-id dense subset a
    // rebuild produces.
    QueryId extended_root = -1;
    if (delta_armed_) {
      std::vector<QueryId> neighbour_roots;
      auto note = [&](QueryId neighbour) {
        if (neighbour == id) return;  // self-loop: no pre-existing root
        QueryId root = FindRoot(neighbour);
        for (QueryId seen : neighbour_roots) {
          if (seen == root) return;
        }
        neighbour_roots.push_back(root);
      };
      for (size_t e : graph_.OutEdges(id)) note(graph_.edge(e).to);
      for (size_t e : graph_.InEdges(id)) note(graph_.edge(e).from);
      if (neighbour_roots.size() == 1) {
        ExtendComponentState(neighbour_roots.front(), id);
        extended_root = neighbour_roots.front();
      } else if (neighbour_roots.size() > 1) {
        for (QueryId root : neighbour_roots) DoomComponentState(root);
      }
    }

    for (size_t e : graph_.OutEdges(id)) {
      UnionComps(id, graph_.edge(e).to);
    }
    for (size_t e : graph_.InEdges(id)) {
      UnionComps(id, graph_.edge(e).from);
    }
    const QueryId new_root = FindRoot(id);
    if (extended_root >= 0 && new_root != extended_root) {
      // The union picked the arrival as the surviving root (two
      // singletons): re-key the extended state under it.
      auto it = comp_states_.find(extended_root);
      if (it != comp_states_.end()) {
        auto state = std::move(it->second);
        comp_states_.erase(it);
        comp_states_.emplace(new_root, std::move(state));
      }
    }
    dirty_roots_.insert(new_root);
  }
}

void CoordinationEngine::Admit(QueryId id) {
  ++stats_.submitted;
  IndexQuery(id);

  if (options_.evaluate_every > 0 &&
      ++since_last_eval_ >= options_.evaluate_every) {
    since_last_eval_ = 0;
    if (options_.incremental) {
      EvaluateComponentOf(id);
    } else {
      LegacyEvaluateComponentOf(id);
    }
  }
}

bool CoordinationEngine::Cancel(QueryId id) {
  CheckNotReentrant("Cancel");
  // Cancels apply inline (the caller needs the exact boolean), after
  // any queued submissions that arrived before it.
  DrainIntake();
  doomed_states_.clear();  // previous round's references are released
  if (!IsPending(id)) return false;
  pending_[static_cast<size_t>(id)] = false;
  --num_pending_;
  ++stats_.cancelled;
  if (options_.incremental) {
    std::vector<QueryId> fragment_roots = RetireAndRepartition({id});
    if (options_.fault.lose_dirty_on_cancel) {
      // Test-only fault: drop the re-evaluation marks the repartition
      // just made (see EngineFaultInjection::lose_dirty_on_cancel).
      for (QueryId root : fragment_roots) dirty_roots_.erase(root);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Pending bookkeeping
// ---------------------------------------------------------------------------

std::vector<QueryId> CoordinationEngine::PendingQueries() const {
  // Reads observe every accepted submission: the deferred-admission
  // queue only ever buffers between an accepted Submit and the next
  // flush/read boundary, so the pending set is never torn.
  DrainIntakeConst();
  std::vector<QueryId> pending;
  pending.reserve(num_pending_);
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i]) pending.push_back(static_cast<QueryId>(i));
  }
  return pending;
}

bool CoordinationEngine::IsPending(QueryId id) const {
  DrainIntakeConst();
  return id >= 0 && static_cast<size_t>(id) < pending_.size() &&
         pending_[static_cast<size_t>(id)];
}

std::vector<QueryId> CoordinationEngine::ComponentOf(QueryId id) const {
  ENTANGLED_CHECK(IsPending(id)) << "query " << id << " is not pending";
  if (!options_.incremental) return LegacyComponentOf(id);
  std::vector<QueryId> component =
      comp_members_[static_cast<size_t>(FindRoot(id))];
  std::sort(component.begin(), component.end());
  return component;
}

// ---------------------------------------------------------------------------
// Union-find over weakly connected components
// ---------------------------------------------------------------------------

QueryId CoordinationEngine::FindRoot(QueryId q) const {
  QueryId root = q;
  while (uf_parent_[static_cast<size_t>(root)] != root) {
    root = uf_parent_[static_cast<size_t>(root)];
  }
  // Path compression.
  while (uf_parent_[static_cast<size_t>(q)] != root) {
    QueryId next = uf_parent_[static_cast<size_t>(q)];
    uf_parent_[static_cast<size_t>(q)] = root;
    q = next;
  }
  return root;
}

void CoordinationEngine::UnionComps(QueryId a, QueryId b) {
  QueryId ra = FindRoot(a);
  QueryId rb = FindRoot(b);
  if (ra == rb) return;
  // Dirtiness survives merging: membership of the merged component has
  // certainly changed.
  bool dirty = dirty_roots_.erase(ra) > 0;
  dirty = dirty_roots_.erase(rb) > 0 || dirty;
  if (uf_size_[static_cast<size_t>(ra)] < uf_size_[static_cast<size_t>(rb)]) {
    std::swap(ra, rb);
  }
  uf_parent_[static_cast<size_t>(rb)] = ra;
  uf_size_[static_cast<size_t>(ra)] += uf_size_[static_cast<size_t>(rb)];
  comp_min_[static_cast<size_t>(ra)] = std::min(
      comp_min_[static_cast<size_t>(ra)], comp_min_[static_cast<size_t>(rb)]);
  auto& into = comp_members_[static_cast<size_t>(ra)];
  auto& from = comp_members_[static_cast<size_t>(rb)];
  into.insert(into.end(), from.begin(), from.end());
  from.clear();
  from.shrink_to_fit();
  if (dirty) dirty_roots_.insert(ra);
}

std::vector<QueryId> CoordinationEngine::RetireAndRepartition(
    const std::vector<QueryId>& retired) {
  ENTANGLED_CHECK(!retired.empty());
  // All retired queries belong to one component (a coordinating set is
  // connected; Cancel retires a single query).
  QueryId root = FindRoot(retired[0]);
  dirty_roots_.erase(root);
  // Retirement re-densifies the fragments' id spaces, so the persistent
  // subset (and the memo keyed on its local ids) cannot survive.
  DoomComponentState(root);

  std::vector<QueryId> survivors;
  for (QueryId m : comp_members_[static_cast<size_t>(root)]) {
    if (pending_[static_cast<size_t>(m)]) survivors.push_back(m);
  }
  graph_.RetireQueries(retired);
  comp_members_[static_cast<size_t>(root)].clear();

  // Rebuild the union-find partition of the survivors from the live
  // edges — a retirement can split its component but never touches any
  // other component, so the rebuild is local.
  for (QueryId m : survivors) {
    uf_parent_[static_cast<size_t>(m)] = m;
    uf_size_[static_cast<size_t>(m)] = 1;
    comp_min_[static_cast<size_t>(m)] = key_of(m);
    comp_members_[static_cast<size_t>(m)] = {m};
  }
  for (QueryId m : survivors) {
    // Every intra-component edge is some survivor's out-edge, so one
    // direction suffices for weak connectivity.
    for (size_t e : graph_.OutEdges(m)) {
      UnionComps(m, graph_.edge(e).to);
    }
  }
  std::unordered_set<QueryId> distinct_roots;
  for (QueryId m : survivors) distinct_roots.insert(FindRoot(m));
  std::vector<QueryId> fragment_roots(distinct_roots.begin(),
                                      distinct_roots.end());
  std::sort(fragment_roots.begin(), fragment_roots.end(),
            [this](QueryId a, QueryId b) {
              return comp_min_[static_cast<size_t>(a)] <
                     comp_min_[static_cast<size_t>(b)];
            });
  // Membership changed: these components may now coordinate (or, having
  // shed an unsafe sibling, may have become safe).
  for (QueryId r : fragment_roots) dirty_roots_.insert(r);
  return fragment_roots;
}

// ---------------------------------------------------------------------------
// Incremental evaluation
// ---------------------------------------------------------------------------

void CoordinationEngine::BuildTask(QueryId root, EvalTask* task) const {
  // Member scratch dies with the flush: one arena bump instead of a
  // heap vector per evaluation.  The task's own vectors are reused
  // (capacity retained across flushes by the slot pool).
  const std::vector<QueryId>& src =
      comp_members_[static_cast<size_t>(FindRoot(root))];
  ENTANGLED_CHECK(!src.empty());
  std::vector<QueryId, ArenaAllocator<QueryId>> members(
      src.begin(), src.end(), ArenaAllocator<QueryId>(&flush_arena_));
  // Order members by schedule key, not engine id: keys are monotone in
  // global submission order even when local ids are not (queries merged
  // into this engine mid-life), so the dense subset — and with it every
  // discovery-order tie-break inside the solver — is byte-identical to
  // what a single engine over the union would build.
  std::sort(members.begin(), members.end(), [this](QueryId a, QueryId b) {
    return key_of(a) < key_of(b);
  });
  task->min_key = key_of(members.front());
  task->original.clear();
  task->original_vars.clear();
  task->edges.clear();
  task->subset = all_.Subset(members.data(), members.size(), &task->original,
                             &task->original_vars);

  auto local_id = [this, &members](QueryId engine_id) {
    const QueryId key = key_of(engine_id);
    auto it = std::lower_bound(members.begin(), members.end(), key,
                               [this](QueryId member, QueryId k) {
                                 return key_of(member) < k;
                               });
    ENTANGLED_CHECK(it != members.end() && *it == engine_id);
    return static_cast<QueryId>(it - members.begin());
  };
  // Slice the component's edges out of the persistent graph instead of
  // re-deriving them, renumbered to subset-local ids.  A component is
  // weakly closed, so every out-edge of a member targets a member.
  for (QueryId m : members) {
    for (size_t e : graph_.OutEdges(m)) {
      const ExtendedEdge& edge = graph_.edge(e);
      task->edges.push_back(ExtendedEdge{local_id(edge.from), edge.post_index,
                                         local_id(edge.to), edge.head_index});
    }
  }
  // Canonical order — byte-identical to what a batch graph build over
  // the same subset would enumerate, so both engine paths hand the
  // solver bit-identical inputs.
  std::sort(task->edges.begin(), task->edges.end(),
            [](const ExtendedEdge& a, const ExtendedEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.post_index != b.post_index)
                return a.post_index < b.post_index;
              if (a.to != b.to) return a.to < b.to;
              return a.head_index < b.head_index;
            });
}

CoordinationEngine::EvalOutcome CoordinationEngine::RunTask(
    const EvalTask& task, EvalMemo* memo) const {
  // Runs on a worker thread in parallel flushes: touches only the task,
  // its component's private memo, the read-only database, and a private
  // coordinator.
  EvalOutcome outcome;
  WallTimer timer;
  SccCoordinator coordinator(db_, options_.scc);
  auto result = coordinator.Solve(task.subset, task.edges, memo);
  outcome.eval_nanos = timer.ElapsedNanos();
  outcome.db_queries = coordinator.stats().db_queries;
  outcome.memo_hits = coordinator.stats().memo_hits;
  if (result.ok()) {
    outcome.ok = true;
    outcome.solution = std::move(*result);
  } else {
    outcome.unsafe = result.status().IsFailedPrecondition();
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Delta-aware evaluation (EngineOptions::delta_eval)
// ---------------------------------------------------------------------------

CoordinationEngine::ComponentState* CoordinationEngine::EnsureComponentState(
    QueryId root) {
  root = FindRoot(root);
  auto it = comp_states_.find(root);
  if (it != comp_states_.end()) return it->second.get();
  auto state = std::make_unique<ComponentState>();
  BuildTask(root, &state->task);
  ComponentState* ptr = state.get();
  comp_states_.emplace(root, std::move(state));
  return ptr;
}

void CoordinationEngine::ExtendComponentState(QueryId root, QueryId id) {
  auto it = comp_states_.find(root);
  if (it == comp_states_.end()) return;  // lazily rebuilt at next eval
  ComponentState* state = it->second.get();
  EvalTask* task = &state->task;
  if (!task->original.empty() && key_of(task->original.back()) >= key_of(id)) {
    // Appending would break the ascending-key invariant the dense
    // subset depends on (an arrival normally carries the largest key —
    // but a merge can adopt interleaved keys; degrade to a rebuild
    // rather than corrupt the subset).
    DoomComponentState(root);
    return;
  }
  // Adopt the arrival into the persistent subset.  AdoptQueries
  // allocates dense variables in the same first-occurrence order
  // Subset uses and queries never share variables, so the extended
  // subset is byte-identical to a rebuild over the grown member list.
  std::vector<std::pair<VarId, VarId>> var_map;
  std::vector<QueryId> adopted = task->subset.AdoptQueries(all_, {id},
                                                           &var_map);
  ENTANGLED_CHECK_EQ(adopted.size(), size_t{1});
  const QueryId arrival_local = adopted.front();
  task->original.push_back(id);
  task->original_vars.resize(task->subset.num_vars());
  for (const auto& [source_var, local_var] : var_map) {
    task->original_vars[static_cast<size_t>(local_var)] = source_var;
  }
  // min_key is unchanged: the arrival carries the largest key.

  auto local_id = [this, task](QueryId engine_id) {
    const QueryId key = key_of(engine_id);
    auto pos = std::lower_bound(task->original.begin(), task->original.end(),
                                key, [this](QueryId member, QueryId k) {
                                  return key_of(member) < k;
                                });
    ENTANGLED_CHECK(pos != task->original.end() && *pos == engine_id);
    return static_cast<QueryId>(pos - task->original.begin());
  };
  // The arrival's incident edges are exactly the new ones; a self-loop
  // shows up in both directions but is one edge.
  for (size_t e : graph_.OutEdges(id)) {
    const ExtendedEdge& edge = graph_.edge(e);
    task->edges.push_back(ExtendedEdge{arrival_local, edge.post_index,
                                       local_id(edge.to), edge.head_index});
  }
  for (size_t e : graph_.InEdges(id)) {
    const ExtendedEdge& edge = graph_.edge(e);
    if (edge.from == id) continue;  // self-loop already appended above
    task->edges.push_back(ExtendedEdge{local_id(edge.from), edge.post_index,
                                       arrival_local, edge.head_index});
  }
  // Restore the canonical order BuildTask establishes (nearly sorted:
  // only the appended tail is out of place).
  std::sort(task->edges.begin(), task->edges.end(),
            [](const ExtendedEdge& a, const ExtendedEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.post_index != b.post_index)
                return a.post_index < b.post_index;
              if (a.to != b.to) return a.to < b.to;
              return a.head_index < b.head_index;
            });
  state->members_changed = true;
}

bool CoordinationEngine::CanSkipEvaluation(const ComponentState& state) const {
  if (!state.clean_failure) return false;
  if (state.members_changed && !options_.fault.poison_eval_cache) {
    return false;
  }
  // Membership (hence the edge slice) is unchanged, so the outcome can
  // only differ if a relation some member's body reads has changed.
  for (const auto& [relation, version] : state.stamps) {
    const uint64_t now =
        relation != nullptr ? relation->version() : db_->version();
    if (now != version) return false;
  }
  return true;
}

void CoordinationEngine::RecordCleanFailure(ComponentState* state) const {
  state->clean_failure = true;
  state->members_changed = false;
  state->stamps.clear();
  // Stamp every relation the evaluation could have read: failing
  // evaluations touch the database only through member bodies (the
  // domain scan of CompleteAssignment runs only on deliveries, which
  // destroy the state anyway).  A body naming an absent relation pins
  // the catalog version instead, so a later CreateRelation invalidates.
  std::unordered_set<std::string> seen;
  const QuerySet& subset = state->task.subset;
  for (QueryId q = 0; q < static_cast<QueryId>(subset.size()); ++q) {
    for (const Atom& atom : subset.query(q).body) {
      if (!seen.insert(atom.relation).second) continue;
      const Relation* relation = db_->Find(atom.relation);
      state->stamps.emplace_back(
          relation,
          relation != nullptr ? relation->version() : db_->version());
    }
  }
}

void CoordinationEngine::DoomComponentState(QueryId root) {
  auto it = comp_states_.find(root);
  if (it == comp_states_.end()) return;
  doomed_states_.push_back(std::move(it->second));
  comp_states_.erase(it);
}

bool CoordinationEngine::ApplyOutcome(const EvalTask& task,
                                      EvalOutcome outcome,
                                      std::vector<QueryId>* new_roots) {
  stats_.db_queries += outcome.db_queries;
  stats_.eval_cache_hits += outcome.memo_hits;
  stats_.eval_latency.Record(outcome.eval_nanos);
  if (!outcome.ok) {
    if (outcome.unsafe) ++stats_.unsafe_components;
    return false;
  }
  // Translate subset ids — queries and witness variables — back to
  // engine ids and retire the winners.
  CoordinationSolution solution;
  outcome.solution.assignment.ForEach([&](VarId local, const Value& value) {
    solution.assignment.emplace(
        task.original_vars[static_cast<size_t>(local)], value);
  });
  for (QueryId local : outcome.solution.queries) {
    QueryId engine_id = task.original[static_cast<size_t>(local)];
    solution.queries.push_back(engine_id);
    pending_[static_cast<size_t>(engine_id)] = false;
    --num_pending_;
  }
  std::sort(solution.queries.begin(), solution.queries.end());
  std::vector<QueryId> fragment_roots = RetireAndRepartition(solution.queries);
  if (new_roots != nullptr) *new_roots = std::move(fragment_roots);
  stats_.coordinated_queries += solution.queries.size();
  ++stats_.coordinating_sets;
  last_delivery_key_ = task.min_key;
  Deliver(solution);
  return true;
}

bool CoordinationEngine::EvaluateComponentOf(QueryId root) {
  if (!IsPending(root)) return false;
  doomed_states_.clear();  // previous round's references are released
  dirty_roots_.erase(FindRoot(root));
  flush_arena_.Reset();
  if (delta_armed_) {
    ComponentState* state = EnsureComponentState(root);
    if (CanSkipEvaluation(*state)) {
      ++stats_.evaluations_avoided;
      return false;
    }
    ++stats_.evaluations;
    const bool delivered =
        ApplyOutcome(state->task, RunTask(state->task, &state->memo));
    // On delivery the state was doomed by the repartition; on failure
    // it survives — arm the skip fingerprint.
    if (!delivered) RecordCleanFailure(state);
    return delivered;
  }
  BuildTask(root, &arrival_task_);
  ++stats_.evaluations;
  return ApplyOutcome(arrival_task_, RunTask(arrival_task_));
}

ThreadPool* CoordinationEngine::FlushPool() {
  if (options_.flush_threads <= 1) return nullptr;
  if (options_.shared_pool != nullptr) return options_.shared_pool;
  if (pool_ == nullptr) {
    // The flushing thread participates in RunChunked, so n configured
    // threads means n - 1 pool workers.
    pool_ = std::make_unique<ThreadPool>(options_.flush_threads - 1);
  }
  return pool_.get();
}

size_t CoordinationEngine::IncrementalFlush() {
  // Per-flush scratch: the apply heap, the seed list, and every
  // BuildTask member copy come from the arena; evaluation slots are
  // pooled in eval_slots_.  A steady-state flush therefore performs no
  // per-component heap allocation for its own bookkeeping — at any
  // flush_threads, including the serial path.
  doomed_states_.clear();  // previous round's references are released
  flush_arena_.Reset();
  eval_slots_used_ = 0;
  size_t ran_watermark = 0;  // slots below this have outcomes

  // Facts changed since the last flush: every pending component's last
  // verdict is potentially stale, exactly as the from-scratch reference
  // path (which re-examines everything each Flush) would discover.
  // Mark all live components dirty — independent of delta_eval, so both
  // settings stay byte-identical to the oracle; with delta_eval armed
  // the stamp fingerprints below prune the flood back down to the
  // components that actually read a mutated relation.
  if (db_->version() != last_db_version_) {
    last_db_version_ = db_->version();
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i]) {
        dirty_roots_.insert(FindRoot(static_cast<QueryId>(i)));
      }
    }
  }

  // Results are applied strictly in ascending smallest-member-key order
  // — the order the reference path discovers components in — so
  // delivery order is deterministic and thread-count-independent.
  using HeapItem = std::pair<QueryId, size_t>;  // (min_key, slot index)
  using HeapVec = std::vector<HeapItem, ArenaAllocator<HeapItem>>;
  std::priority_queue<HeapItem, HeapVec, std::greater<HeapItem>> apply_order{
      std::greater<HeapItem>(), HeapVec(ArenaAllocator<HeapItem>(&flush_arena_))};

  auto dispatch = [&](QueryId root) {
    ComponentState* state = nullptr;
    if (delta_armed_) {
      state = EnsureComponentState(root);
      if (CanSkipEvaluation(*state)) {
        // Provably the same failure as last time: skip the solver.
        ++stats_.evaluations_avoided;
        return;
      }
    }
    if (eval_slots_used_ == eval_slots_.size()) eval_slots_.emplace_back();
    PendingEval& eval = eval_slots_[eval_slots_used_];
    eval.state = state;
    if (state != nullptr) {
      eval.task_ptr = &state->task;
    } else {
      BuildTask(root, &eval.task);
      eval.task_ptr = &eval.task;
    }
    eval.ran = false;
    ++stats_.evaluations;
    apply_order.push({eval.task_ptr->min_key, eval_slots_used_});
    ++eval_slots_used_;
  };

  // Runs every built-but-unrun slot — always the contiguous tail
  // [ran_watermark, eval_slots_used_): dispatch only appends, and each
  // wave retires the whole tail.  Chunked across the pool when one is
  // configured; a barrier, so outcomes are safe to read after.
  auto run_wave = [&] {
    const size_t begin = ran_watermark;
    const size_t n = eval_slots_used_ - begin;
    ThreadPool* pool = n > 1 ? FlushPool() : nullptr;
    if (pool == nullptr) {
      for (size_t i = begin; i < eval_slots_used_; ++i) {
        PendingEval& eval = eval_slots_[i];
        eval.outcome = RunTask(*eval.task_ptr,
                               eval.state ? &eval.state->memo : nullptr);
        eval.ran = true;
      }
    } else {
      // Workers write into disjoint pre-sized slots; no slot is created
      // or destroyed while the wave runs, so the deque is stable (and
      // each component's state/memo is touched by exactly one worker).
      pool->RunChunked(n, options_.flush_chunk, [this, begin](size_t i) {
        PendingEval& eval = eval_slots_[begin + i];
        eval.outcome = RunTask(*eval.task_ptr,
                               eval.state ? &eval.state->memo : nullptr);
        eval.ran = true;
      });
    }
    ran_watermark = eval_slots_used_;
  };

  // Seed with every dirty component; components untouched since their
  // last evaluation are provably still failures and are skipped.
  std::vector<QueryId, ArenaAllocator<QueryId>> seeds(
      dirty_roots_.begin(), dirty_roots_.end(),
      ArenaAllocator<QueryId>(&flush_arena_));
  std::sort(seeds.begin(), seeds.end(), [this](QueryId a, QueryId b) {
    return comp_min_[static_cast<size_t>(a)] <
           comp_min_[static_cast<size_t>(b)];
  });
  dirty_roots_.clear();
  for (QueryId root : seeds) dispatch(root);

  size_t delivered = 0;
  while (!apply_order.empty()) {
    const size_t index = apply_order.top().second;
    // The heap's next slot needs an outcome: run the pending wave
    // (covers this slot — it is in the unrun tail by construction).
    if (!eval_slots_[index].ran) run_wave();
    apply_order.pop();
    PendingEval& eval = eval_slots_[index];
    std::vector<QueryId> fragment_roots;
    if (ApplyOutcome(*eval.task_ptr, std::move(eval.outcome),
                     &fragment_roots)) {
      ++delivered;
      // A delivery shrank its component; the surviving fragments may
      // coordinate on their own — evaluate them within this flush.
      for (QueryId root : fragment_roots) {
        dirty_roots_.erase(root);
        dispatch(root);
      }
    } else if (eval.state != nullptr) {
      RecordCleanFailure(eval.state);
    }
  }
  return delivered;
}

size_t CoordinationEngine::Flush() {
  CheckNotReentrant("Flush");
  DrainIntake();
  return options_.incremental ? IncrementalFlush() : LegacyFlush();
}

bool CoordinationEngine::EvaluateNow(QueryId id) {
  CheckNotReentrant("EvaluateNow");
  DrainIntake();
  if (!IsPending(id)) return false;
  return options_.incremental ? EvaluateComponentOf(id)
                              : LegacyEvaluateComponentOf(id);
}

// ---------------------------------------------------------------------------
// Pending-query migration
// ---------------------------------------------------------------------------

CoordinationEngine::PendingExtract CoordinationEngine::ExtractPending() {
  CheckNotReentrant("ExtractPending");
  DrainIntake();  // queued submissions are pending too: extract them
  PendingExtract extract;
  extract.original = PendingQueries();
  extract.queries =
      all_.Subset(extract.original, nullptr, &extract.original_vars);
  // Schedule keys travel with the queries, so whichever engine adopts
  // this extract keeps scheduling them in the same global order.
  extract.keys.reserve(extract.original.size());
  for (QueryId id : extract.original) extract.keys.push_back(key_of(id));
  // Detach: the queries stay in all_ (ids are never reused) but leave
  // every live structure, as if they had never been admitted.
  for (QueryId id : extract.original) {
    pending_[static_cast<size_t>(id)] = false;
  }
  num_pending_ = 0;
  if (options_.incremental) {
    graph_ = ExtendedCoordinationGraph();
    uf_parent_.clear();
    uf_size_.clear();
    comp_min_.clear();
    comp_members_.clear();
    dirty_roots_.clear();
    // Migration invalidates the delta caches wholesale: the extracted
    // queries get new dense ids wherever they land, so neither the
    // persistent subsets nor the memo keys mean anything there.
    comp_states_.clear();
    doomed_states_.clear();
  }
  return extract;
}

std::vector<QueryId> CoordinationEngine::AdoptPending(
    const QuerySet& src, const std::vector<QueryId>& ids,
    std::vector<std::pair<VarId, VarId>>* var_map,
    const std::vector<QueryId>* keys) {
  CheckNotReentrant("AdoptPending");
  DrainIntake();
  std::vector<QueryId> adopted = all_.AdoptQueries(src, ids, var_map);
  ResyncIntakeBase();  // adoption grew all_ outside the ticket flow
  // Keys must land before IndexQuery: component bookkeeping (comp_min_,
  // persistent-subset extension guards) is key-ordered from the start.
  EnsureScheduleKeys(all_.size());
  if (keys != nullptr) {
    ENTANGLED_CHECK_EQ(keys->size(), adopted.size());
    for (size_t i = 0; i < adopted.size(); ++i) {
      schedule_keys_[static_cast<size_t>(adopted[i])] = (*keys)[i];
    }
  }
  // Index without counting submissions or touching the cadence: a
  // migrated query was already counted where it first arrived, and the
  // caller decides when evaluation happens.  Components gaining adopted
  // members are conservatively dirty (IndexQuery), which can only add
  // provably-failing re-evaluations, never change what is delivered.
  for (QueryId id : adopted) IndexQuery(id);
  return adopted;
}

std::vector<QueryId> CoordinationEngine::AdoptPending(
    const PendingExtract& extract,
    std::vector<std::pair<VarId, VarId>>* var_map) {
  CheckNotReentrant("AdoptPending");
  DrainIntake();
  // One AdoptAll call: a single variable-remap pass over the whole
  // extract, instead of one AdoptQueries (and one remap map) per query.
  std::vector<QueryId> adopted = all_.AdoptAll(extract.queries, var_map);
  ResyncIntakeBase();
  EnsureScheduleKeys(all_.size());
  if (!extract.keys.empty()) {
    ENTANGLED_CHECK_EQ(extract.keys.size(), adopted.size());
    for (size_t i = 0; i < adopted.size(); ++i) {
      schedule_keys_[static_cast<size_t>(adopted[i])] = extract.keys[i];
    }
  }
  for (QueryId id : adopted) IndexQuery(id);
  return adopted;
}

// ---------------------------------------------------------------------------
// From-scratch reference path: rebuilds the coordination graph over the
// whole pending set for every evaluation.  Kept as the differential
//-testing oracle and as the baseline bench_incremental_stream measures
// the incremental core against.
// ---------------------------------------------------------------------------

std::vector<QueryId> CoordinationEngine::LegacyComponentOf(
    QueryId root) const {
  // Weak connectivity over the coordination graph of the pending
  // queries, rebuilt from scratch.
  std::vector<QueryId> pending = PendingQueries();
  std::vector<QueryId> original;
  QuerySet subset = all_.Subset(pending, &original);
  Digraph graph = BuildCoordinationGraph(subset);

  // Locate root within the subset: `original` is ascending (Subset
  // preserves PendingQueries' order), so binary search replaces the old
  // linear scan.
  auto it = std::lower_bound(original.begin(), original.end(), root);
  ENTANGLED_CHECK(it != original.end() && *it == root)
      << "root query is not pending";
  NodeId root_node = static_cast<NodeId>(it - original.begin());

  std::vector<bool> visited(static_cast<size_t>(graph.num_nodes()), false);
  std::deque<NodeId> queue{root_node};
  visited[static_cast<size_t>(root_node)] = true;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (const auto& neighbours :
         {graph.Successors(u), graph.Predecessors(u)}) {
      for (NodeId v : neighbours) {
        if (!visited[static_cast<size_t>(v)]) {
          visited[static_cast<size_t>(v)] = true;
          queue.push_back(v);
        }
      }
    }
  }
  std::vector<QueryId> component;
  for (size_t i = 0; i < visited.size(); ++i) {
    if (visited[i]) component.push_back(original[i]);
  }
  return component;
}

bool CoordinationEngine::LegacyEvaluateComponentOf(QueryId root) {
  if (!IsPending(root)) return false;
  std::vector<QueryId> component = LegacyComponentOf(root);
  // Solver input is ordered by schedule key (identical to ascending id
  // for a never-adopted engine), matching the incremental path.
  std::sort(component.begin(), component.end(),
            [this](QueryId a, QueryId b) { return key_of(a) < key_of(b); });
  std::vector<QueryId> original;
  std::vector<VarId> original_vars;
  QuerySet subset = all_.Subset(component, &original, &original_vars);

  SccCoordinator coordinator(db_, options_.scc);
  ++stats_.evaluations;
  WallTimer timer;
  auto result = coordinator.Solve(subset);
  stats_.eval_latency.Record(timer.ElapsedNanos());
  stats_.db_queries += coordinator.stats().db_queries;
  if (!result.ok()) {
    if (result.status().IsFailedPrecondition()) ++stats_.unsafe_components;
    return false;
  }

  // Translate subset ids — queries and witness variables — back to
  // engine ids and retire the winners.
  CoordinationSolution solution;
  result->assignment.ForEach([&](VarId local, const Value& value) {
    solution.assignment.emplace(
        original_vars[static_cast<size_t>(local)], value);
  });
  for (QueryId local : result->queries) {
    QueryId engine_id = original[static_cast<size_t>(local)];
    solution.queries.push_back(engine_id);
    pending_[static_cast<size_t>(engine_id)] = false;
    --num_pending_;
  }
  std::sort(solution.queries.begin(), solution.queries.end());
  stats_.coordinated_queries += solution.queries.size();
  ++stats_.coordinating_sets;
  // `component` is sorted by key, so its front carries the schedule key.
  last_delivery_key_ = key_of(component.front());
  Deliver(solution);
  return true;
}

size_t CoordinationEngine::LegacyFlush() {
  size_t delivered = 0;
  // Evaluate components in ascending schedule-key order; every delivery
  // can leave a smaller component that coordinates on its own, so
  // restart the scan until a full pass delivers nothing.
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<QueryId> scan = PendingQueries();
    std::sort(scan.begin(), scan.end(),
              [this](QueryId a, QueryId b) { return key_of(a) < key_of(b); });
    for (QueryId id : scan) {
      if (!IsPending(id)) continue;  // retired earlier in this pass
      if (LegacyEvaluateComponentOf(id)) {
        ++delivered;
        progress = true;
        break;
      }
    }
  }
  return delivered;
}

}  // namespace entangled
