// Unit coverage for the engine refactor behind shard migration:
// QuerySet::AdoptQueries variable re-homing, the
// ExtractPending()/AdoptPending() round-trip, EvaluateNow as the
// externally driven per-arrival step, the O(1) pending count, and
// EngineStats aggregation.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/query.h"
#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

TEST(AdoptQueriesTest, RehomesVariablesInParseOrder) {
  QuerySet src;
  ASSERT_TRUE(
      ParseQuery("q0: { A(T, p) } B(U, q) :- Users(p, q).", &src).ok());
  ASSERT_TRUE(ParseQuery("q1: { } C(V, r) :- Users(r, 'x').", &src).ok());

  QuerySet dst;
  // Pre-existing variables shift the adopted ids; the mapping reports
  // where each source variable landed.
  dst.NewVar("pre");
  std::vector<std::pair<VarId, VarId>> var_map;
  std::vector<QueryId> adopted = dst.AdoptQueries(src, {0, 1}, &var_map);
  ASSERT_EQ(adopted, (std::vector<QueryId>{0, 1}));
  // q0 uses p then q (first occurrence over posts, head, body), q1 uses
  // r: adopted as dst vars 1, 2, 3 after the pre-existing one.
  EXPECT_EQ(var_map, (std::vector<std::pair<VarId, VarId>>{
                         {0, 1}, {1, 2}, {2, 3}}));
  EXPECT_EQ(dst.var_name(1), src.var_name(0));
  // The adopted queries render identically modulo the renumbering.
  EXPECT_EQ(dst.query(0).name, "q0");
  EXPECT_EQ(dst.query(1).name, "q1");
  EXPECT_EQ(dst.QueryToString(1), src.QueryToString(1));
}

TEST(AdoptQueriesTest, SubsetOfQueriesMapsOnlyTheirVariables) {
  QuerySet src;
  ASSERT_TRUE(ParseQuery("q0: { } A(T, p) :- Users(p, 'x').", &src).ok());
  ASSERT_TRUE(ParseQuery("q1: { } B(U, q) :- Users(q, 'y').", &src).ok());

  QuerySet dst;
  std::vector<std::pair<VarId, VarId>> var_map;
  std::vector<QueryId> adopted = dst.AdoptQueries(src, {1}, &var_map);
  ASSERT_EQ(adopted, (std::vector<QueryId>{0}));
  // Only q1's variable appears; q0's was never touched.
  EXPECT_EQ(var_map, (std::vector<std::pair<VarId, VarId>>{{1, 0}}));
}

class EngineMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }

  static std::vector<std::string> Pair(const std::string& rel) {
    return {
        "a_" + rel + ": { " + rel + "(Bob, x) } " + rel +
            "(Alice, x) :- Users(x, 'user3').",
        "b_" + rel + ": { " + rel + "(Alice, y) } " + rel +
            "(Bob, y) :- Users(y, 'user3').",
    };
  }

  Database db_;
};

TEST_F(EngineMigrationTest, ExtractAdoptRoundTripPreservesCoordination) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine source(&db_, options);
  // An entangled pair plus an unrelated singleton, all pending.
  for (const std::string& text : Pair("P")) {
    ASSERT_TRUE(source.Submit(text).ok());
  }
  ASSERT_TRUE(
      source.Submit("lone: { Z(Never, v) } Z(T, v) :- Users(v, 'user2').")
          .ok());
  ASSERT_EQ(source.num_pending(), 3u);

  CoordinationEngine::PendingExtract extract = source.ExtractPending();
  EXPECT_EQ(extract.original, (std::vector<QueryId>{0, 1, 2}));
  EXPECT_EQ(extract.queries.size(), 3u);
  // The source forgot them completely.
  EXPECT_EQ(source.num_pending(), 0u);
  EXPECT_TRUE(source.PendingQueries().empty());
  EXPECT_EQ(source.Flush(), 0u);

  CoordinationEngine target(&db_, options);
  std::vector<std::pair<VarId, VarId>> var_map;
  std::vector<QueryId> adopted =
      target.AdoptPending(extract.queries, {0, 1, 2}, &var_map);
  EXPECT_EQ(adopted, (std::vector<QueryId>{0, 1, 2}));
  EXPECT_EQ(target.num_pending(), 3u);
  // Adoption is not a submission...
  EXPECT_EQ(target.stats().submitted, 0u);
  // ...but the adopted components are dirty: the pair coordinates on
  // the next flush while the singleton stays stuck.
  size_t deliveries = 0;
  target.set_delivery_callback([&deliveries](const Delivery& d) {
    ++deliveries;
    EXPECT_EQ(d.QueryIds(), (std::vector<QueryId>{0, 1}));
    EXPECT_EQ(d.queries[0].name, "a_P");
  });
  EXPECT_EQ(target.Flush(), 1u);
  EXPECT_EQ(deliveries, 1u);
  EXPECT_EQ(target.PendingQueries(), (std::vector<QueryId>{2}));
  EXPECT_EQ(target.ComponentOf(2), (std::vector<QueryId>{2}));
}

TEST_F(EngineMigrationTest, EvaluateNowEvaluatesOnlyThatComponent) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  for (const std::string& text : Pair("P")) {
    ASSERT_TRUE(engine.Submit(text).ok());
  }
  std::vector<std::string> q = Pair("Q");
  for (const std::string& text : q) {
    ASSERT_TRUE(engine.Submit(text).ok());
  }
  size_t deliveries = 0;
  engine.set_delivery_callback(
      [&deliveries](const Delivery&) { ++deliveries; });
  // Only P's component is evaluated; Q's stays dirty and pending.
  EXPECT_TRUE(engine.EvaluateNow(0));
  EXPECT_EQ(deliveries, 1u);
  EXPECT_EQ(engine.last_delivery_schedule_key(), 0);
  EXPECT_EQ(engine.PendingQueries(), (std::vector<QueryId>{2, 3}));
  // Retired queries are no-ops.
  EXPECT_FALSE(engine.EvaluateNow(0));
  EXPECT_EQ(engine.Flush(), 1u);
  EXPECT_EQ(deliveries, 2u);
  EXPECT_EQ(engine.last_delivery_schedule_key(), 2);
}

TEST_F(EngineMigrationTest, NumPendingTracksEveryTransition) {
  CoordinationEngine engine(&db_);
  ASSERT_TRUE(
      engine.Submit("s: { S(Never, v) } S(T, v) :- Users(v, 'user2').").ok());
  EXPECT_EQ(engine.num_pending(), 1u);
  ASSERT_TRUE(engine.Submit(Pair("P")[0]).ok());
  ASSERT_TRUE(engine.Submit(Pair("P")[1]).ok());  // pair delivers eagerly
  EXPECT_EQ(engine.num_pending(), 1u);
  EXPECT_TRUE(engine.Cancel(0));
  EXPECT_EQ(engine.num_pending(), 0u);
  EXPECT_EQ(engine.PendingQueries().size(), engine.num_pending());
}

TEST(EngineStatsTest, AccumulationSumsEveryField) {
  EngineStats a;
  a.submitted = 1;
  a.cancelled = 2;
  a.evaluations = 3;
  a.coordinated_queries = 4;
  a.coordinating_sets = 5;
  a.unsafe_components = 6;
  a.db_queries = 7;
  EngineStats b = a;
  b += a;
  EXPECT_EQ(b.submitted, 2u);
  EXPECT_EQ(b.cancelled, 4u);
  EXPECT_EQ(b.evaluations, 6u);
  EXPECT_EQ(b.coordinated_queries, 8u);
  EXPECT_EQ(b.coordinating_sets, 10u);
  EXPECT_EQ(b.unsafe_components, 12u);
  EXPECT_EQ(b.db_queries, 14u);
  const EngineStats c = a + a;
  EXPECT_EQ(c.db_queries, 14u);
}

}  // namespace
}  // namespace entangled
