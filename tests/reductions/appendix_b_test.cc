#include "reductions/appendix_b.h"

#include <gtest/gtest.h>

#include "algo/generic_solver.h"
#include "core/properties.h"
#include "core/validator.h"
#include "reductions/dpll.h"

namespace entangled {
namespace {

CnfFormula Parse(int num_vars, std::vector<std::vector<int>> clauses) {
  CnfFormula f;
  f.num_vars = num_vars;
  for (const auto& clause : clauses) {
    Clause c;
    for (int lit : clause) c.push_back(Literal{lit});
    f.clauses.push_back(std::move(c));
  }
  return f;
}

TEST(AppendixBTest, EncodingShape) {
  CnfFormula f = Parse(2, {{1, -2}});
  QuerySet set;
  Database db;
  AppendixBEncoding enc = EncodeAppendixB(f, &set, &db);
  // qC + 1 clause + 2 * (pos + neg + selector).
  EXPECT_EQ(set.size(), 1u + 1u + 3u * 2u);
  EXPECT_EQ(db.Find("Fl")->size(), 2u);  // one flight per date
  EXPECT_EQ(db.Find("Fr")->size(), 2u);  // two literals in the clause
  // Unsafe: the clause query's R(y, f) has a variable friend slot.
  EXPECT_FALSE(IsSafeSet(set));
  (void)enc;
}

TEST(AppendixBTest, SatisfiableFormulaCoordinates) {
  CnfFormula f = Parse(2, {{1, -2}});
  ASSERT_TRUE(DpllSolver().Solve(f).has_value());
  QuerySet set;
  Database db;
  AppendixBEncoding enc = EncodeAppendixB(f, &set, &db);
  GenericSolver solver(&db);
  auto result = solver.FindContaining(set, enc.qc);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(ValidateSolution(db, set, *result).ok());
  TruthAssignment decoded = enc.DecodeAssignment(f, *result);
  EXPECT_TRUE(Satisfies(f, decoded));
}

TEST(AppendixBTest, SelectionGadgetForbidsBothPolarities) {
  CnfFormula f = Parse(1, {{1}});
  QuerySet set;
  Database db;
  AppendixBEncoding enc = EncodeAppendixB(f, &set, &db);
  GenericSolver solver(&db);
  auto result = solver.FindContaining(set, enc.qc);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->Contains(enc.positive_queries[0]) &&
               result->Contains(enc.negative_queries[0]));
}

TEST(AppendixBTest, UnsatisfiableCoreHasNoCoordinatingSetAroundQc) {
  // (x1) & (~x1): the positive query needs the selector on 1MAR, the
  // negative one on 2MAR — qC needs both clauses, but their literal
  // queries pin the same selector's flight to different dates.
  CnfFormula f = Parse(1, {{1}, {-1}});
  ASSERT_FALSE(DpllSolver().Solve(f).has_value());
  QuerySet set;
  Database db;
  AppendixBEncoding enc = EncodeAppendixB(f, &set, &db);
  GenericSolver solver(&db);
  auto result = solver.FindContaining(set, enc.qc);
  EXPECT_TRUE(result.status().IsNotFound()) << result.status();
}

TEST(AppendixBTest, CircularDependencyPullsEverythingIn) {
  // Any coordinating set containing a literal query also contains its
  // selector, qC, and every clause query (the circular dependency of
  // Appendix B).
  CnfFormula f = Parse(2, {{1, 2}});
  QuerySet set;
  Database db;
  AppendixBEncoding enc = EncodeAppendixB(f, &set, &db);
  GenericSolver solver(&db);
  auto result = solver.FindContaining(set, enc.positive_queries[0]);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->Contains(enc.qc));
  EXPECT_TRUE(result->Contains(enc.selector_queries[0]));
  EXPECT_TRUE(result->Contains(enc.clause_queries[0]));
  EXPECT_TRUE(ValidateSolution(db, set, *result).ok());
}

}  // namespace
}  // namespace entangled
