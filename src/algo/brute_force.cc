#include "algo/brute_force.h"

#include <algorithm>

#include "common/logging.h"
#include "core/validator.h"

namespace entangled {
namespace {

constexpr size_t kMaxQueries = 20;

/// Enumerates all k-subsets of {0..n-1} in lexicographic order.
template <typename Callback>
bool ForEachSubsetOfSize(size_t n, size_t k, Callback&& callback) {
  std::vector<QueryId> subset(k);
  for (size_t i = 0; i < k; ++i) subset[i] = static_cast<QueryId>(i);
  while (true) {
    if (callback(subset)) return true;
    // Advance to the next combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (subset[i] < static_cast<QueryId>(n - k + i)) {
        ++subset[i];
        for (size_t j = i + 1; j < k; ++j) {
          subset[j] = subset[j - 1] + 1;
        }
        break;
      }
      if (i == 0) return false;
    }
    if (k == 0) return false;
  }
}

}  // namespace

BruteForceSolver::BruteForceSolver(const Database* db) : db_(db) {
  ENTANGLED_CHECK(db != nullptr);
}

std::optional<CoordinationSolution> BruteForceSolver::FindBySize(
    const QuerySet& set, bool largest_first) {
  const size_t n = set.size();
  ENTANGLED_CHECK_LE(n, kMaxQueries)
      << "BruteForceSolver is an oracle for small instances";
  std::optional<CoordinationSolution> found;
  auto try_size = [&](size_t k) {
    return ForEachSubsetOfSize(n, k, [&](const std::vector<QueryId>& sub) {
      std::optional<Binding> witness =
          FindCoordinatingWitness(*db_, set, sub);
      if (!witness.has_value()) return false;
      found = CoordinationSolution{sub, std::move(*witness)};
      return true;
    });
  };
  if (largest_first) {
    for (size_t k = n; k >= 1; --k) {
      if (try_size(k)) break;
    }
  } else {
    for (size_t k = 1; k <= n; ++k) {
      if (try_size(k)) break;
    }
  }
  return found;
}

std::optional<CoordinationSolution> BruteForceSolver::FindMaximum(
    const QuerySet& set) {
  return FindBySize(set, /*largest_first=*/true);
}

std::optional<CoordinationSolution> BruteForceSolver::FindAny(
    const QuerySet& set) {
  return FindBySize(set, /*largest_first=*/false);
}

std::vector<std::vector<QueryId>> BruteForceSolver::AllCoordinatingSets(
    const QuerySet& set) {
  const size_t n = set.size();
  ENTANGLED_CHECK_LE(n, kMaxQueries);
  std::vector<std::vector<QueryId>> result;
  for (size_t k = 1; k <= n; ++k) {
    ForEachSubsetOfSize(n, k, [&](const std::vector<QueryId>& sub) {
      if (FindCoordinatingWitness(*db_, set, sub).has_value()) {
        result.push_back(sub);
      }
      return false;  // keep enumerating
    });
  }
  return result;
}

}  // namespace entangled
