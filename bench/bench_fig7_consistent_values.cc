// Figure 7 — "Processing Time as a Function of Possible Values" (§6.2).
//
// Consistent Coordination Algorithm stress test: 50 A-consistent
// queries, complete friendship graph, Flights table of 100..1000 rows
// in which every row carries a distinct (destination, day) pair and
// every row satisfies every query — the absolute worst case, where
// |V(Q)| equals the table size and nothing ever prunes.  The paper
// reports time linear in the number of candidate values.

#include <benchmark/benchmark.h>

#include <memory>

#include "algo/consistent.h"
#include "bench_util.h"
#include "common/logging.h"
#include "workload/consistent_workloads.h"

namespace entangled {
namespace {

constexpr size_t kNumQueries = 50;

std::unique_ptr<Database> MakeDb(size_t table_rows) {
  auto db = std::make_unique<Database>();
  ENTANGLED_CHECK(
      InstallDistinctFlightsTable(db.get(), "Flights", table_rows).ok());
  ENTANGLED_CHECK(InstallCompleteFriends(db.get(), "Friends",
                                         MakeUserNames(kNumQueries))
                      .ok());
  return db;
}

SolverStats RunOnce(const Database& db) {
  ConsistentCoordinator coordinator(&db,
                                    MakeFlightSchema("Flights", "Friends"));
  auto result =
      coordinator.Solve(MakeWorstCaseConsistentQueries(kNumQueries, 4));
  ENTANGLED_CHECK(result.ok()) << result.status();
  ENTANGLED_CHECK_EQ(result->size(), kNumQueries);
  return coordinator.stats();
}

void PrintPaperSeries() {
  benchutil::PrintSeriesHeader(
      "Figure 7: consistent algorithm processing time vs number of "
      "possible coordination values (50 queries, complete friendships)",
      {"table_rows", "time_ms", "candidate_values", "db_queries"});
  for (size_t rows = 100; rows <= 1000; rows += 100) {
    std::unique_ptr<Database> db = MakeDb(rows);
    SolverStats stats;
    double ms = benchutil::MeanMillis(3, [&] { stats = RunOnce(*db); });
    benchutil::PrintRow({static_cast<double>(rows), ms,
                         static_cast<double>(stats.candidate_values),
                         static_cast<double>(stats.db_queries)});
  }
  benchutil::PrintNote(
      "expected shape: linear in the number of candidate values "
      "(= table size in this worst case)");
}

void BM_ConsistentValues(benchmark::State& state) {
  std::unique_ptr<Database> db =
      MakeDb(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RunOnce(*db);
  }
}
BENCHMARK(BM_ConsistentValues)->Arg(100)->Arg(500)->Arg(1000);

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
