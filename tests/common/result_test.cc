#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace entangled {
namespace {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive: ", x);
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(ParsePositive(5).value_or(-1), 5);
  EXPECT_EQ(ParsePositive(-5).value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r = std::string("a");
  r.value() += "b";
  *r += "c";
  EXPECT_EQ(*r, "abc");
}

Result<int> Doubled(int x) {
  ENTANGLED_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto r = Doubled(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH(r.value(), "Result::value");
}

TEST(ResultDeathTest, OkStatusWithoutValueAborts) {
  EXPECT_DEATH((Result<int>(Status::OK())), "OK status");
}

}  // namespace
}  // namespace entangled
