#include "common/interner.h"

#include "common/logging.h"

namespace entangled {

Symbol StringInterner::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  Symbol symbol = static_cast<Symbol>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), symbol);
  return symbol;
}

Symbol StringInterner::Lookup(std::string_view text) const {
  auto it = index_.find(std::string(text));
  return it == index_.end() ? kInvalidSymbol : it->second;
}

const std::string& StringInterner::ToString(Symbol symbol) const {
  ENTANGLED_CHECK(Contains(symbol)) << "unknown symbol " << symbol;
  return strings_[static_cast<size_t>(symbol)];
}

}  // namespace entangled
