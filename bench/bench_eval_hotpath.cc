// Evaluation hot path: FindOne-heavy workloads over string-keyed
// relations, the innermost loop every coordination algorithm bottoms
// out in (each coordination decision issues conjunctive queries whose
// candidate rows are produced by index probes and matched term by
// term).
//
// Bodies are prebuilt outside the timed region — the series measure
// the evaluator, not query-text construction.  Three series, all
// string-heavy on purpose; the data-layout work (interned POD values,
// dense bindings, columnar row storage) is aimed exactly at workloads
// where every probe used to hash a full std::string and every binding
// used to copy one:
//
//   point:  single-atom FindOne through a string-keyed index probe.
//   fof:    friend-of-friend join, string-valued variables threaded
//           through three atoms (bind -> probe -> match per row).
//   enum:   EnumerateDistinct bucket scan with a string constant.
//
// Emits BENCH_JSON records (see tools/run_benches.sh); the committed
// BENCH_eval_hotpath.json at the repo root is the perf trajectory.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "db/evaluator.h"

namespace entangled {
namespace {

constexpr size_t kUsers = 50000;
constexpr size_t kCities = 317;
constexpr size_t kFriendsPerUser = 2;
constexpr int kPointQueries = 4000;
constexpr int kFofQueries = 600;
constexpr int kEnumQueries = 400;

std::string Handle(size_t i) { return "user_" + std::to_string(i); }
std::string City(size_t i) { return "city_" + std::to_string(i % kCities); }

const Database& HotpathDb() {
  static Database* db = [] {
    auto* database = new Database();
    Relation* users =
        *database->CreateRelation("Users", {"id", "handle", "city"});
    for (size_t i = 0; i < kUsers; ++i) {
      ENTANGLED_CHECK(users
                          ->Insert({Value::Int(static_cast<int64_t>(i)),
                                    Value::Str(Handle(i)),
                                    Value::Str(City(i))})
                          .ok());
    }
    Relation* friends = *database->CreateRelation("Friends", {"a", "b"});
    for (size_t i = 0; i < kUsers; ++i) {
      for (size_t k = 1; k <= kFriendsPerUser; ++k) {
        ENTANGLED_CHECK(
            friends
                ->Insert({Value::Str(Handle(i)),
                          Value::Str(Handle((i * 7 + 13 * k) % kUsers))})
                .ok());
      }
    }
    return database;
  }();
  return *db;
}

/// Single-atom point lookups: Users(x, 'user_k', c).  Every query
/// probes the handle column's hash index with a string key and binds
/// two variables from the matching row.
double PointSeries(const Evaluator& evaluator) {
  std::vector<std::vector<Atom>> bodies;
  bodies.reserve(kPointQueries);
  for (int k = 0; k < kPointQueries; ++k) {
    bodies.push_back({Atom(
        "Users", {Term::Var(0),
                  Term::Str(Handle(static_cast<size_t>(k) * 11 % kUsers)),
                  Term::Var(1)})});
  }
  double ms = benchutil::MeanMillis(3, [&] {
    for (const std::vector<Atom>& body : bodies) {
      auto witness = evaluator.FindOne(body);
      ENTANGLED_CHECK(witness.has_value());
      ENTANGLED_CHECK(witness->at(0).is_int());
    }
  });
  return kPointQueries / (ms / 1e3);
}

/// Friend-of-friend join: Friends('user_k', f), Friends(f, g),
/// Users(u, g, c).  String-valued variables f and g thread through
/// three atoms; each candidate row costs a binding lookup, an index
/// probe keyed by the bound string, and per-term matches.
double FofSeries(const Evaluator& evaluator) {
  std::vector<std::vector<Atom>> bodies;
  bodies.reserve(kFofQueries);
  for (int k = 0; k < kFofQueries; ++k) {
    bodies.push_back({
        Atom("Friends",
             {Term::Str(Handle(static_cast<size_t>(k) * 29 % kUsers)),
              Term::Var(0)}),
        Atom("Friends", {Term::Var(0), Term::Var(1)}),
        Atom("Users", {Term::Var(2), Term::Var(1), Term::Var(3)}),
    });
  }
  double ms = benchutil::MeanMillis(3, [&] {
    for (const std::vector<Atom>& body : bodies) {
      auto witness = evaluator.FindOne(body);
      ENTANGLED_CHECK(witness.has_value());
      ENTANGLED_CHECK(witness->at(1).is_string());
    }
  });
  return kFofQueries / (ms / 1e3);
}

/// Bucket scans: all users of one city, projected onto their ids.
/// ~kUsers/kCities candidate rows per query, each matched against a
/// string constant and two variables.
double EnumSeries(const Evaluator& evaluator) {
  std::vector<std::vector<Atom>> bodies;
  bodies.reserve(kEnumQueries);
  for (int k = 0; k < kEnumQueries; ++k) {
    bodies.push_back({Atom("Users",
                           {Term::Var(0), Term::Var(1),
                            Term::Str(City(static_cast<size_t>(k)))})});
  }
  double ms = benchutil::MeanMillis(3, [&] {
    for (int k = 0; k < kEnumQueries; ++k) {
      auto ids = evaluator.EnumerateDistinct(bodies[static_cast<size_t>(k)],
                                             {0});
      const size_t expected =
          kUsers / kCities +
          (static_cast<size_t>(k) % kCities < kUsers % kCities ? 1 : 0);
      ENTANGLED_CHECK_EQ(ids.size(), expected);
    }
  });
  return kEnumQueries / (ms / 1e3);
}

}  // namespace
}  // namespace entangled

int main() {
  using namespace entangled;
  const Database& db = HotpathDb();
  Evaluator evaluator(&db);
  db.stats().Reset();

  benchutil::PrintSeriesHeader(
      "Evaluation hot path: FindOne-heavy string workloads",
      {"series", "queries_per_sec"});

  const double point_qps = PointSeries(evaluator);
  benchutil::PrintRow({0, point_qps});
  const double fof_qps = FofSeries(evaluator);
  benchutil::PrintRow({1, fof_qps});
  const double enum_qps = EnumSeries(evaluator);
  benchutil::PrintRow({2, enum_qps});

  const uint64_t rows = db.stats().rows_matched;
  benchutil::PrintJsonRecord(
      "eval_hotpath",
      {{"users", static_cast<double>(kUsers)},
       {"point_qps", point_qps},
       {"fof_qps", fof_qps},
       {"enum_qps", enum_qps},
       {"rows_matched", static_cast<double>(rows)}});
  benchutil::PrintNote(
      "point: string-keyed index probe per query; fof: string variables "
      "threaded through a 3-atom join; enum: bucket scan with a string "
      "constant");
  return 0;
}
