// Content coverage for the self-contained Delivery event
// (api/delivery.h): names, re-rendered texts, grounded answers, witness
// values and display names, sequence numbering, and the lookup helpers.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/delivery.h"
#include "core/parser.h"
#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class DeliveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }
  Database db_;
};

TEST_F(DeliveryTest, MaterializesEverythingAClientNeeds) {
  CoordinationEngine engine(&db_);
  std::vector<Delivery> delivered;
  engine.set_delivery_callback(
      [&](const Delivery& d) { delivered.push_back(d); });
  auto a = engine.Submit("a: { R(B, x) } R(A, x) :- Users(x, 'user1').");
  auto b = engine.Submit("b: { R(A, y) } R(B, y) :- Users(y, 'user1').");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(delivered.size(), 1u);

  const Delivery& d = delivered[0];
  EXPECT_EQ(d.sequence, 0u);
  ASSERT_EQ(d.queries.size(), 2u);
  EXPECT_EQ(d.queries[0].id, *a);
  EXPECT_EQ(d.queries[0].name, "a");
  EXPECT_EQ(d.queries[1].name, "b");
  EXPECT_EQ(d.QueryIds(), (std::vector<QueryId>{*a, *b}));
  EXPECT_EQ(d.Find(*b), &d.queries[1]);
  EXPECT_EQ(d.Find(999), nullptr);

  // The texts round-trip through the parser (quoted constants,
  // lowercase variable names).
  QuerySet reparsed;
  for (const DeliveredQuery& q : d.queries) {
    EXPECT_TRUE(ParseQuery(q.text, &reparsed).ok()) << q.text;
  }

  // Grounded answers: one head atom each, fully ground, on the answer
  // relation.
  for (const DeliveredQuery& q : d.queries) {
    ASSERT_EQ(q.answers.size(), 1u);
    EXPECT_EQ(q.answers[0].relation, "R");
    EXPECT_TRUE(q.answers[0].IsGround());
  }
  // Both queries coordinate on the same value: answer terms agree.
  EXPECT_EQ(d.queries[0].answers[0].terms[1],
            d.queries[1].answers[0].terms[1]);

  // Witness names align with the witness bindings, ascending.
  ASSERT_EQ(d.witness_names.size(), d.witness.size());
  for (const auto& [var, name] : d.witness_names) {
    EXPECT_NE(d.witness.Find(var), nullptr);
    EXPECT_FALSE(name.empty());
  }
  EXPECT_EQ(d.witness_names[0].second, "x");
  EXPECT_EQ(d.witness_names[1].second, "y");

  // Rendering mentions both participants.
  const std::string rendered = d.ToString();
  EXPECT_NE(rendered.find("{a, b}"), std::string::npos);
  EXPECT_NE(rendered.find("witness"), std::string::npos);
}

TEST_F(DeliveryTest, SequenceNumbersTheDeliveryStream) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  std::vector<uint64_t> sequences;
  engine.set_delivery_callback(
      [&](const Delivery& d) { sequences.push_back(d.sequence); });
  ASSERT_TRUE(engine.Submit("s1: { } K(w) :- Users(w, 'user5').").ok());
  ASSERT_TRUE(engine.Submit("s2: { } L(w) :- Users(w, 'user6').").ok());
  ASSERT_TRUE(engine.Submit("s3: { } M(w) :- Users(w, 'user7').").ok());
  EXPECT_EQ(engine.Flush(), 3u);
  EXPECT_EQ(sequences, (std::vector<uint64_t>{0, 1, 2}));
}

TEST_F(DeliveryTest, SequenceAdvancesEvenWithoutAListener) {
  CoordinationEngine engine(&db_);
  // First delivery happens unobserved...
  ASSERT_TRUE(engine.Submit("s1: { } K(w) :- Users(w, 'user5').").ok());
  // ...the next observer still sees the true stream position.
  std::vector<uint64_t> sequences;
  engine.set_delivery_callback(
      [&](const Delivery& d) { sequences.push_back(d.sequence); });
  ASSERT_TRUE(engine.Submit("s2: { } L(w) :- Users(w, 'user6').").ok());
  EXPECT_EQ(sequences, (std::vector<uint64_t>{1}));
}

}  // namespace
}  // namespace entangled
