#include "db/evaluator.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

/// Fixture with the flight/hotel data of §2.2.
class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* flights = *db_.CreateRelation("F", {"id", "dest"});
    Relation* hotels = *db_.CreateRelation("H", {"id", "loc"});
    ASSERT_TRUE(flights->Insert({Value::Int(101), Value::Str("Paris")}).ok());
    ASSERT_TRUE(
        flights->Insert({Value::Int(102), Value::Str("Athens")}).ok());
    ASSERT_TRUE(
        flights->Insert({Value::Int(103), Value::Str("Zurich")}).ok());
    ASSERT_TRUE(hotels->Insert({Value::Int(201), Value::Str("Paris")}).ok());
    ASSERT_TRUE(
        hotels->Insert({Value::Int(202), Value::Str("Athens")}).ok());
  }

  Database db_;
};

TEST_F(EvaluatorTest, SingleAtomWithConstant) {
  Evaluator evaluator(&db_);
  // F(x, 'Paris')
  Atom atom("F", {Term::Var(0), Term::Str("Paris")});
  auto witness = evaluator.FindOne({atom});
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->at(0), Value::Int(101));
}

TEST_F(EvaluatorTest, UnsatisfiableConstant) {
  Evaluator evaluator(&db_);
  Atom atom("F", {Term::Var(0), Term::Str("Oslo")});
  EXPECT_FALSE(evaluator.FindOne({atom}).has_value());
  EXPECT_FALSE(evaluator.Satisfiable({atom}));
}

TEST_F(EvaluatorTest, JoinThroughSharedVariable) {
  Evaluator evaluator(&db_);
  // F(x, d), H(y, d): flight and hotel in the same city.
  std::vector<Atom> body = {
      Atom("F", {Term::Var(0), Term::Var(2)}),
      Atom("H", {Term::Var(1), Term::Var(2)}),
  };
  auto witness = evaluator.FindOne(body);
  ASSERT_TRUE(witness.has_value());
  // Whatever witness was chosen, it must satisfy the join.
  const Value& dest = witness->at(2);
  EXPECT_TRUE(dest == Value::Str("Paris") || dest == Value::Str("Athens"));
}

TEST_F(EvaluatorTest, JoinRespectsInitialBinding) {
  Evaluator evaluator(&db_);
  std::vector<Atom> body = {
      Atom("F", {Term::Var(0), Term::Var(2)}),
      Atom("H", {Term::Var(1), Term::Var(2)}),
  };
  Binding initial;
  initial.emplace(2, Value::Str("Athens"));
  auto witness = evaluator.FindOne(body, initial);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->at(0), Value::Int(102));
  EXPECT_EQ(witness->at(1), Value::Int(202));
}

TEST_F(EvaluatorTest, NoJoinPartner) {
  Evaluator evaluator(&db_);
  // Zurich has a flight but no hotel.
  std::vector<Atom> body = {
      Atom("F", {Term::Var(0), Term::Str("Zurich")}),
      Atom("H", {Term::Var(1), Term::Str("Zurich")}),
  };
  EXPECT_FALSE(evaluator.FindOne(body).has_value());
}

TEST_F(EvaluatorTest, RepeatedVariableWithinAtom) {
  Database db;
  Relation* r = *db.CreateRelation("R", {"a", "b"});
  ASSERT_TRUE(r->Insert({Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(r->Insert({Value::Int(3), Value::Int(3)}).ok());
  Evaluator evaluator(&db);
  // R(x, x) must only match the (3, 3) row.
  Atom atom("R", {Term::Var(0), Term::Var(0)});
  auto witness = evaluator.FindOne({atom});
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->at(0), Value::Int(3));
}

TEST_F(EvaluatorTest, EmptyBodyIsTriviallySatisfiable) {
  Evaluator evaluator(&db_);
  auto witness = evaluator.FindOne({});
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());
}

TEST_F(EvaluatorTest, GroundAtomLookup) {
  Evaluator evaluator(&db_);
  Atom present("F", {Term::Int(101), Term::Str("Paris")});
  Atom absent("F", {Term::Int(101), Term::Str("Athens")});
  EXPECT_TRUE(evaluator.Satisfiable({present}));
  EXPECT_FALSE(evaluator.Satisfiable({absent}));
}

TEST_F(EvaluatorTest, EnumerateDistinctProjectsAndDedupes) {
  Evaluator evaluator(&db_);
  // All destinations with a hotel: project the join onto d.
  std::vector<Atom> body = {
      Atom("F", {Term::Var(0), Term::Var(2)}),
      Atom("H", {Term::Var(1), Term::Var(2)}),
  };
  auto values = evaluator.EnumerateDistinct(body, {2});
  ASSERT_EQ(values.size(), 2u);
  // Distinct and complete.
  EXPECT_NE(values[0], values[1]);
}

TEST_F(EvaluatorTest, CountSolutions) {
  Evaluator evaluator(&db_);
  Atom any_flight("F", {Term::Var(0), Term::Var(1)});
  EXPECT_EQ(evaluator.CountSolutions({any_flight}), 3u);
  std::vector<Atom> cross = {
      Atom("F", {Term::Var(0), Term::Var(1)}),
      Atom("H", {Term::Var(2), Term::Var(3)}),
  };
  EXPECT_EQ(evaluator.CountSolutions(cross), 6u);
}

TEST_F(EvaluatorTest, ValidateCatchesUnknownRelationAndArity) {
  Evaluator evaluator(&db_);
  EXPECT_TRUE(evaluator.Validate({Atom("F", {Term::Var(0), Term::Var(1)})})
                  .ok());
  EXPECT_TRUE(evaluator.Validate({Atom("X", {Term::Var(0)})}).IsNotFound());
  EXPECT_TRUE(evaluator.Validate({Atom("F", {Term::Var(0)})})
                  .IsInvalidArgument());
}

TEST_F(EvaluatorTest, StatsCountQueries) {
  db_.stats().Reset();
  Evaluator evaluator(&db_);
  Atom atom("F", {Term::Var(0), Term::Str("Paris")});
  evaluator.FindOne({atom});
  evaluator.FindOne({atom});
  evaluator.EnumerateDistinct({atom}, {0});
  EXPECT_EQ(db_.stats().conjunctive_queries, 2u);
  EXPECT_EQ(db_.stats().enumerate_queries, 1u);
  EXPECT_EQ(db_.stats().total_queries(), 3u);
}

TEST_F(EvaluatorTest, DeterministicWitness) {
  Evaluator evaluator(&db_);
  Atom atom("F", {Term::Var(0), Term::Var(1)});
  auto first = evaluator.FindOne({atom});
  auto second = evaluator.FindOne({atom});
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_EQ(first->at(0), second->at(0));
}

/// The long-chain join the SCC algorithm produces for Figure 4: n
/// independent atoms over distinct variables must evaluate without
/// blowup thanks to index-backed candidate selection.
TEST_F(EvaluatorTest, ManyIndependentAtoms) {
  Database db;
  Relation* users = *db.CreateRelation("U", {"id", "handle"});
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(users
                    ->Insert({Value::Int(i),
                              Value::Str("u" + std::to_string(i))})
                    .ok());
  }
  Evaluator evaluator(&db);
  std::vector<Atom> body;
  for (int i = 0; i < 100; ++i) {
    body.emplace_back(
        "U", std::vector<Term>{Term::Var(i),
                               Term::Str("u" + std::to_string(i * 3))});
  }
  auto witness = evaluator.FindOne(body);
  ASSERT_TRUE(witness.has_value());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(witness->at(i), Value::Int(i * 3));
  }
}

}  // namespace
}  // namespace entangled
