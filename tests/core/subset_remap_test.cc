// Differential coverage of QuerySet::Subset's dense variable remap:
// evaluating a component through the remapped subset must produce —
// after translating witness variables back through the original_vars
// map — exactly the solution the pre-remap representation produces,
// while carrying only the component's own variables.
//
// The pre-remap path (PR 1 behaviour: copy the whole variable table so
// ids stay valid) is reconstructed explicitly here, since Subset no
// longer offers it.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/scc_coordination.h"
#include "core/parser.h"
#include "core/query.h"
#include "core/validator.h"
#include "db/database.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

/// The old Subset semantics: copy the chosen queries verbatim into a
/// set that owns a full copy of the parent's variable table.
QuerySet PreRemapSubset(const QuerySet& parent,
                        const std::vector<QueryId>& ids) {
  QuerySet subset;
  for (size_t v = 0; v < parent.num_vars(); ++v) {
    subset.NewVar(parent.var_name(static_cast<VarId>(v)));
  }
  for (QueryId id : ids) subset.AddQuery(parent.query(id));
  return subset;
}

class SubsetRemapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
    // Padding queries before and after the component inflate the
    // engine-wide variable count, so the density assertions below
    // demonstrate independence from it.
    for (int i = 0; i < 40; ++i) {
      const std::string n = std::to_string(i);
      ASSERT_TRUE(ParseQuery("pad" + n + ": { Dead" + n + "(m" + n +
                                 ") } Pad" + n + "(s" + n +
                                 ") :- Users(s" + n + ", 'user1').",
                             &set_)
                      .ok());
    }
    auto a = ParseQuery(
        "a: { R(B, x) } R(A, x) :- Users(x, 'user3').", &set_);
    auto b = ParseQuery(
        "b: { R(A, y) } R(B, y) :- Users(y, 'user3').", &set_);
    ASSERT_TRUE(a.ok() && b.ok());
    component_ = {*a, *b};
  }

  Database db_;
  QuerySet set_;
  std::vector<QueryId> component_;
};

TEST_F(SubsetRemapTest, SubsetCarriesOnlyComponentVariables) {
  std::vector<QueryId> original_ids;
  std::vector<VarId> original_vars;
  QuerySet subset = set_.Subset(component_, &original_ids, &original_vars);

  // The component uses exactly two variables (x and y); the padding
  // queries contributed 80+ to the parent set.
  EXPECT_EQ(subset.num_vars(), 2u);
  EXPECT_GT(set_.num_vars(), 80u);
  EXPECT_EQ(original_vars.size(), subset.num_vars());
  // The reverse map points at the parent's ids, names preserved.
  for (size_t v = 0; v < subset.num_vars(); ++v) {
    EXPECT_EQ(subset.var_name(static_cast<VarId>(v)),
              set_.var_name(original_vars[v]));
  }
  EXPECT_EQ(original_ids, component_);
}

TEST_F(SubsetRemapTest, RemappedEvaluationMatchesPreRemapPath) {
  std::vector<QueryId> original_ids;
  std::vector<VarId> original_vars;
  QuerySet remapped = set_.Subset(component_, &original_ids, &original_vars);
  QuerySet pre_remap = PreRemapSubset(set_, component_);

  SccCoordinator fast(&db_);
  SccCoordinator reference(&db_);
  auto fast_result = fast.Solve(remapped);
  auto reference_result = reference.Solve(pre_remap);
  ASSERT_TRUE(fast_result.ok()) << fast_result.status();
  ASSERT_TRUE(reference_result.ok()) << reference_result.status();

  // Same coordinating set (local ids are 0..k-1 in both).
  EXPECT_EQ(fast_result->queries, reference_result->queries);

  // Same witness once the remapped assignment is translated through
  // original_vars into the parent variable space (where the pre-remap
  // path already lives).
  Binding translated;
  fast_result->assignment.ForEach([&](VarId local, const Value& value) {
    translated.emplace(original_vars[static_cast<size_t>(local)], value);
  });
  EXPECT_EQ(translated, reference_result->assignment);

  // Both validate against their own variable spaces.
  CoordinationSolution fast_in_parent;
  fast_in_parent.queries = component_;
  fast_in_parent.assignment = translated;
  EXPECT_TRUE(ValidateSolution(db_, set_, fast_in_parent).ok());
}

TEST_F(SubsetRemapTest, RemapIsDeterministicFirstOccurrenceOrder) {
  std::vector<VarId> vars_a;
  std::vector<VarId> vars_b;
  QuerySet first = set_.Subset(component_, nullptr, &vars_a);
  QuerySet second = set_.Subset(component_, nullptr, &vars_b);
  EXPECT_EQ(vars_a, vars_b);
  EXPECT_EQ(first.ToString(), second.ToString());
}

}  // namespace
}  // namespace entangled
