#include "reductions/appendix_b.h"

#include "common/logging.h"

namespace entangled {
namespace {

std::string ClauseName(size_t index) { return "C" + std::to_string(index + 1); }
std::string PosLiteralName(int32_t var) { return "X" + std::to_string(var); }
std::string NegLiteralName(int32_t var) {
  return "X" + std::to_string(var) + "*";
}
std::string SelectorName(int32_t var) { return "S" + std::to_string(var); }

}  // namespace

AppendixBEncoding EncodeAppendixB(const CnfFormula& formula, QuerySet* set,
                                  Database* db) {
  ENTANGLED_CHECK(set != nullptr);
  ENTANGLED_CHECK(db != nullptr);
  ENTANGLED_CHECK(formula.WellFormed());

  // Fl(flight, date): one flight per date.
  if (!db->Contains("Fl")) {
    Relation* fl = *db->CreateRelation("Fl", {"flight", "date"});
    ENTANGLED_CHECK(fl->Insert({Value::Int(1), Value::Str("1MAR")}).ok());
    ENTANGLED_CHECK(fl->Insert({Value::Int(2), Value::Str("2MAR")}).ok());
  }
  // Fr(clause, literal): which literal queries can witness each clause.
  Relation* fr = db->FindMutable("Fr");
  if (fr == nullptr) fr = *db->CreateRelation("Fr", {"clause", "literal"});
  for (size_t c = 0; c < formula.clauses.size(); ++c) {
    for (const Literal& literal : formula.clauses[c]) {
      ENTANGLED_CHECK(
          fr->Insert({Value::Str(ClauseName(c)),
                      Value::Str(literal.positive()
                                     ? PosLiteralName(literal.var())
                                     : NegLiteralName(literal.var()))})
              .ok());
    }
  }

  AppendixBEncoding encoding;
  const Term t1mar = Term::Str("1MAR");
  const Term t2mar = Term::Str("2MAR");

  // qC: requires every clause, all flying on 1MAR.
  {
    EntangledQuery q;
    q.name = "qC";
    VarId x = set->NewVar("x_C");
    q.head.emplace_back("R",
                        std::vector<Term>{Term::Var(x), Term::Str("C")});
    q.body.emplace_back("Fl", std::vector<Term>{Term::Var(x), t1mar});
    for (size_t c = 0; c < formula.clauses.size(); ++c) {
      VarId y = set->NewVar("y_C_" + std::to_string(c + 1));
      q.postconditions.emplace_back(
          "R", std::vector<Term>{Term::Var(y), Term::Str(ClauseName(c))});
      q.body.emplace_back("Fl", std::vector<Term>{Term::Var(y), t1mar});
    }
    encoding.qc = set->AddQuery(std::move(q));
  }

  // qCj: satisfied through any of the clause's literal "friends".
  for (size_t c = 0; c < formula.clauses.size(); ++c) {
    EntangledQuery q;
    q.name = "q" + ClauseName(c);
    VarId x = set->NewVar("x_" + ClauseName(c));
    VarId y = set->NewVar("y_" + ClauseName(c));
    VarId f = set->NewVar("f_" + ClauseName(c));
    VarId d = set->NewVar("d_" + ClauseName(c));
    q.postconditions.emplace_back(
        "R", std::vector<Term>{Term::Var(y), Term::Var(f)});
    q.head.emplace_back(
        "R", std::vector<Term>{Term::Var(x), Term::Str(ClauseName(c))});
    q.body.emplace_back(
        "Fr", std::vector<Term>{Term::Str(ClauseName(c)), Term::Var(f)});
    q.body.emplace_back("Fl", std::vector<Term>{Term::Var(x), t1mar});
    q.body.emplace_back("Fl",
                        std::vector<Term>{Term::Var(y), Term::Var(d)});
    encoding.clause_queries.push_back(set->AddQuery(std::move(q)));
  }

  // qXi / qXi* / Si per variable: the selection gadget.
  for (int32_t v = 1; v <= formula.num_vars; ++v) {
    {
      EntangledQuery q;
      q.name = "q" + PosLiteralName(v);
      VarId x = set->NewVar("x_X" + std::to_string(v));
      VarId y = set->NewVar("y_X" + std::to_string(v));
      q.postconditions.emplace_back(
          "R",
          std::vector<Term>{Term::Var(y), Term::Str(SelectorName(v))});
      q.head.emplace_back(
          "R",
          std::vector<Term>{Term::Var(x), Term::Str(PosLiteralName(v))});
      q.body.emplace_back("Fl", std::vector<Term>{Term::Var(x), t1mar});
      q.body.emplace_back("Fl", std::vector<Term>{Term::Var(y), t1mar});
      encoding.positive_queries.push_back(set->AddQuery(std::move(q)));
    }
    {
      EntangledQuery q;
      q.name = "q" + NegLiteralName(v);
      VarId x = set->NewVar("x_X" + std::to_string(v) + "s");
      VarId y = set->NewVar("y_X" + std::to_string(v) + "s");
      q.postconditions.emplace_back(
          "R",
          std::vector<Term>{Term::Var(y), Term::Str(SelectorName(v))});
      q.head.emplace_back(
          "R",
          std::vector<Term>{Term::Var(x), Term::Str(NegLiteralName(v))});
      q.body.emplace_back("Fl", std::vector<Term>{Term::Var(x), t2mar});
      q.body.emplace_back("Fl", std::vector<Term>{Term::Var(y), t2mar});
      encoding.negative_queries.push_back(set->AddQuery(std::move(q)));
    }
    {
      EntangledQuery q;
      q.name = SelectorName(v);
      VarId x = set->NewVar("x_S" + std::to_string(v));
      VarId y = set->NewVar("y_S" + std::to_string(v));
      VarId d = set->NewVar("d_S" + std::to_string(v));
      VarId d2 = set->NewVar("d2_S" + std::to_string(v));
      q.postconditions.emplace_back(
          "R", std::vector<Term>{Term::Var(y), Term::Str("C")});
      q.head.emplace_back(
          "R",
          std::vector<Term>{Term::Var(x), Term::Str(SelectorName(v))});
      q.body.emplace_back("Fl",
                          std::vector<Term>{Term::Var(x), Term::Var(d)});
      q.body.emplace_back("Fl",
                          std::vector<Term>{Term::Var(y), Term::Var(d2)});
      encoding.selector_queries.push_back(set->AddQuery(std::move(q)));
    }
  }
  return encoding;
}

TruthAssignment AppendixBEncoding::DecodeAssignment(
    const CnfFormula& formula, const CoordinationSolution& sol) const {
  TruthAssignment assignment(static_cast<size_t>(formula.num_vars) + 1,
                             true);
  for (int32_t v = 1; v <= formula.num_vars; ++v) {
    const size_t index = static_cast<size_t>(v - 1);
    if (sol.Contains(negative_queries[index]) &&
        !sol.Contains(positive_queries[index])) {
      assignment[static_cast<size_t>(v)] = false;
    }
  }
  return assignment;
}

}  // namespace entangled
