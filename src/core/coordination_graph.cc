#include "core/coordination_graph.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace entangled {

void ExtendedCoordinationGraph::EnsureCapacity(size_t n) {
  if (out_.size() < n) {
    out_.resize(n);
    in_.resize(n);
    live_.resize(n, false);
    indexed_relations_.resize(n);
  }
}

void ExtendedCoordinationGraph::IndexAtoms(const QuerySet& set, QueryId q) {
  const EntangledQuery& query = set.query(q);
  auto& touched = indexed_relations_[static_cast<size_t>(q)];
  for (size_t pi = 0; pi < query.postconditions.size(); ++pi) {
    post_buckets_[query.postconditions[pi].relation].push_back(
        AtomRef{q, pi});
    touched.push_back(query.postconditions[pi].relation);
  }
  for (size_t hi = 0; hi < query.head.size(); ++hi) {
    head_buckets_[query.head[hi].relation].push_back(AtomRef{q, hi});
    touched.push_back(query.head[hi].relation);
  }
}

size_t ExtendedCoordinationGraph::AddEdgeSlot(QueryId from, size_t post_index,
                                              QueryId to, size_t head_index) {
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    edges_[slot] = ExtendedEdge{from, post_index, to, head_index};
    edge_live_[slot] = true;
  } else {
    slot = edges_.size();
    edges_.push_back(ExtendedEdge{from, post_index, to, head_index});
    edge_live_.push_back(true);
  }
  out_[static_cast<size_t>(from)].push_back(slot);
  in_[static_cast<size_t>(to)].push_back(slot);
  return slot;
}

ExtendedCoordinationGraph::ExtendedCoordinationGraph(const QuerySet& set) {
  // Batch mode: index every query first, then emit edges in the
  // canonical (from, post_index, to, head_index) lexicographic order the
  // batch algorithms and their tests rely on.
  const size_t n = set.size();
  EnsureCapacity(n);
  for (QueryId q = 0; q < static_cast<QueryId>(n); ++q) {
    live_[static_cast<size_t>(q)] = true;
    IndexAtoms(set, q);
  }
  num_live_ = n;
  for (QueryId from = 0; from < static_cast<QueryId>(n); ++from) {
    const EntangledQuery& q = set.query(from);
    for (size_t pi = 0; pi < q.postconditions.size(); ++pi) {
      const Atom& post = q.postconditions[pi];
      for (QueryId to = 0; to < static_cast<QueryId>(n); ++to) {
        const EntangledQuery& target = set.query(to);
        for (size_t hi = 0; hi < target.head.size(); ++hi) {
          if (!PositionwiseUnifiable(post, target.head[hi])) continue;
          AddEdgeSlot(from, pi, to, hi);
        }
      }
    }
  }
}

void ExtendedCoordinationGraph::AddQuery(const QuerySet& set, QueryId q) {
  ENTANGLED_CHECK(q >= 0 && static_cast<size_t>(q) < set.size())
      << "query " << q << " is not in the set";
  EnsureCapacity(set.size());
  ENTANGLED_CHECK(!live_[static_cast<size_t>(q)])
      << "query " << q << " is already live";
  live_[static_cast<size_t>(q)] = true;
  ++num_live_;
  IndexAtoms(set, q);

  const EntangledQuery& query = set.query(q);
  // q's postconditions against every live head sharing a relation name
  // (q's own heads included — they were indexed just above).
  for (size_t pi = 0; pi < query.postconditions.size(); ++pi) {
    const Atom& post = query.postconditions[pi];
    auto bucket = head_buckets_.find(post.relation);
    if (bucket == head_buckets_.end()) continue;
    for (const AtomRef& ref : bucket->second) {
      const Atom& head = set.query(ref.query).head[ref.index];
      if (!PositionwiseUnifiable(post, head)) continue;
      AddEdgeSlot(q, pi, ref.query, ref.index);
    }
  }
  // Live postconditions of *other* queries against q's heads (q's own
  // postconditions were fully handled above).
  for (size_t hi = 0; hi < query.head.size(); ++hi) {
    const Atom& head = query.head[hi];
    auto bucket = post_buckets_.find(head.relation);
    if (bucket == post_buckets_.end()) continue;
    for (const AtomRef& ref : bucket->second) {
      if (ref.query == q) continue;
      const Atom& post = set.query(ref.query).postconditions[ref.index];
      if (!PositionwiseUnifiable(post, head)) continue;
      AddEdgeSlot(ref.query, ref.index, q, hi);
    }
  }
}

void ExtendedCoordinationGraph::RetireQueries(
    const std::vector<QueryId>& ids) {
  if (ids.empty()) return;
  std::unordered_set<QueryId> retiring;
  for (QueryId q : ids) {
    ENTANGLED_CHECK(IsLive(q)) << "query " << q << " is not live";
    retiring.insert(q);
  }
  // Collect incident edge slots once (a self-loop sits in both lists).
  std::unordered_set<size_t> dead_slots;
  for (QueryId q : ids) {
    for (size_t e : out_[static_cast<size_t>(q)]) dead_slots.insert(e);
    for (size_t e : in_[static_cast<size_t>(q)]) dead_slots.insert(e);
  }
  // Unlink dead slots from surviving endpoints' lists.
  auto unlink = [](std::vector<size_t>* slots, size_t e) {
    auto it = std::find(slots->begin(), slots->end(), e);
    ENTANGLED_CHECK(it != slots->end());
    *it = slots->back();
    slots->pop_back();
  };
  for (size_t e : dead_slots) {
    const ExtendedEdge& edge = edges_[e];
    if (retiring.count(edge.from) == 0) {
      unlink(&out_[static_cast<size_t>(edge.from)], e);
    }
    if (retiring.count(edge.to) == 0) {
      unlink(&in_[static_cast<size_t>(edge.to)], e);
    }
    edge_live_[e] = false;
    free_slots_.push_back(e);
  }
  // Drop the retired queries' own lists, liveness, and index entries.
  for (QueryId q : ids) {
    out_[static_cast<size_t>(q)].clear();
    in_[static_cast<size_t>(q)].clear();
    live_[static_cast<size_t>(q)] = false;
    --num_live_;
  }
  // Scrub only the buckets the retired queries' atoms actually landed
  // in — not the whole index — so retirement stays proportional to the
  // retired queries' footprint.
  auto scrub = [&retiring](std::vector<AtomRef>* bucket) {
    bucket->erase(std::remove_if(bucket->begin(), bucket->end(),
                                 [&retiring](const AtomRef& ref) {
                                   return retiring.count(ref.query) > 0;
                                 }),
                  bucket->end());
  };
  std::unordered_set<std::string> touched_relations;
  for (QueryId q : ids) {
    auto& touched = indexed_relations_[static_cast<size_t>(q)];
    touched_relations.insert(touched.begin(), touched.end());
    touched.clear();
    touched.shrink_to_fit();
  }
  for (const std::string& relation : touched_relations) {
    auto head_bucket = head_buckets_.find(relation);
    if (head_bucket != head_buckets_.end()) scrub(&head_bucket->second);
    auto post_bucket = post_buckets_.find(relation);
    if (post_bucket != post_buckets_.end()) scrub(&post_bucket->second);
  }
}

const std::vector<size_t>& ExtendedCoordinationGraph::OutEdges(
    QueryId q) const {
  ENTANGLED_CHECK(q >= 0 && static_cast<size_t>(q) < out_.size());
  return out_[static_cast<size_t>(q)];
}

const std::vector<size_t>& ExtendedCoordinationGraph::InEdges(
    QueryId q) const {
  ENTANGLED_CHECK(q >= 0 && static_cast<size_t>(q) < in_.size());
  return in_[static_cast<size_t>(q)];
}

std::vector<size_t> ExtendedCoordinationGraph::EdgesOfPostcondition(
    QueryId q, size_t post_index) const {
  std::vector<size_t> result;
  for (size_t e : OutEdges(q)) {
    if (edges_[e].post_index == post_index) result.push_back(e);
  }
  return result;
}

Digraph ExtendedCoordinationGraph::Collapse() const {
  Digraph graph(static_cast<NodeId>(out_.size()));
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (!edge_live_[e]) continue;
    graph.AddEdgeUnique(edges_[e].from, edges_[e].to);
  }
  return graph;
}

std::string ExtendedCoordinationGraph::ToString(const QuerySet& set) const {
  std::ostringstream out;
  out << "ExtendedCoordinationGraph(" << edges_.size() - free_slots_.size()
      << " edges)";
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (!edge_live_[e]) continue;
    const ExtendedEdge& edge = edges_[e];
    const EntangledQuery& from = set.query(edge.from);
    const EntangledQuery& to = set.query(edge.to);
    out << "\n  (" << from.name << ", "
        << set.AtomToString(from.postconditions[edge.post_index]) << ") -> ("
        << to.name << ", " << set.AtomToString(to.head[edge.head_index])
        << ")";
  }
  return out.str();
}

Digraph BuildCoordinationGraph(const QuerySet& set) {
  return ExtendedCoordinationGraph(set).Collapse();
}

}  // namespace entangled
