#include "algo/scc_coordination.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "core/coordination_graph.h"
#include "core/unify.h"
#include "db/evaluator.h"
#include "graph/condensation.h"
#include "graph/scc.h"
#include "graph/topological.h"

namespace entangled {

CoordinationScore MaxSizeScore() {
  return [](const QuerySet&, const std::vector<QueryId>& queries) {
    return static_cast<double>(queries.size());
  };
}

CoordinationScore VipScore(QueryId vip) {
  return [vip](const QuerySet&, const std::vector<QueryId>& queries) {
    double score = static_cast<double>(queries.size());
    for (QueryId q : queries) {
      if (q == vip) {
        // Dominates any size difference: |Q| is bounded by the score of
        // the instance, so 1e9 outranks every VIP-less set.
        score += 1e9;
      }
    }
    return score;
  };
}

CoordinationScore WeightedScore(std::vector<double> weights,
                                double default_weight) {
  return [weights = std::move(weights), default_weight](
             const QuerySet&, const std::vector<QueryId>& queries) {
    double score = 0;
    for (QueryId q : queries) {
      score += static_cast<size_t>(q) < weights.size()
                   ? weights[static_cast<size_t>(q)]
                   : default_weight;
    }
    return score;
  };
}

SccCoordinator::SccCoordinator(const Database* db, SccOptions options)
    : db_(db), options_(options) {
  ENTANGLED_CHECK(db != nullptr);
}

Result<CoordinationSolution> SccCoordinator::Solve(const QuerySet& set) {
  WallTimer total_timer;
  WallTimer graph_timer;
  stats_.Reset();
  successful_sets_.clear();
  if (set.empty()) {
    return Status::NotFound("no coordinating set: the query set is empty");
  }
  // ---- Graph construction (measured for Figure 6) ----
  ExtendedCoordinationGraph ecg(set);
  return SolveWithEdges(set, ecg.edges(), total_timer, graph_timer);
}

Result<CoordinationSolution> SccCoordinator::Solve(
    const QuerySet& set, const std::vector<ExtendedEdge>& edges,
    EvalMemo* memo) {
  WallTimer total_timer;
  WallTimer graph_timer;
  stats_.Reset();
  successful_sets_.clear();
  if (set.empty()) {
    return Status::NotFound("no coordinating set: the query set is empty");
  }
  return SolveWithEdges(set, edges, total_timer, graph_timer, memo);
}

namespace {

/// Whether every relation stamp in `entry` still matches the live
/// database.  A (nullptr, v) stamp means "this body named a relation
/// absent from the catalog at compute time" and pins the catalog-wide
/// version instead, so a later CreateRelation invalidates the entry.
bool StampsCurrent(const EvalMemo::Entry& entry, const Database& db) {
  for (const auto& [relation, version] : entry.stamps) {
    const uint64_t now = relation != nullptr ? relation->version()
                                             : db.version();
    if (now != version) return false;
  }
  return true;
}

}  // namespace

Result<CoordinationSolution> SccCoordinator::SolveWithEdges(
    const QuerySet& set, const std::vector<ExtendedEdge>& edges,
    const WallTimer& total_timer, const WallTimer& graph_timer,
    EvalMemo* memo) {
  // The memo's soundness contract (see EvalMemo) leans on safety (each
  // postcondition has at most one target overall) and pre-cleaning (each
  // live postcondition has exactly one live target, necessarily inside
  // R(c)); without both, an identical R(c) key no longer implies an
  // identical unifier, so the memo disarms itself.
  const bool use_memo = memo != nullptr && options_.check_safety &&
                        options_.prune_postconditions;
  const QueryId n = static_cast<QueryId>(set.size());

  // Per-postcondition target lists, and pre-cleaning: a query whose
  // postcondition has no live target head can never be satisfied; its
  // removal can orphan further queries, so iterate to a fixpoint.
  std::vector<std::vector<std::vector<QueryId>>> post_targets(
      static_cast<size_t>(n));
  for (QueryId q = 0; q < n; ++q) {
    const EntangledQuery& query = set.query(q);
    post_targets[static_cast<size_t>(q)].resize(query.postconditions.size());
  }
  for (const ExtendedEdge& edge : edges) {
    post_targets[static_cast<size_t>(edge.from)][edge.post_index].push_back(
        edge.to);
  }
  if (options_.check_safety) {
    // Definition 2 straight off the edge multiplicities: a postcondition
    // unifying with more than one head in the set breaks safety.
    for (QueryId q = 0; q < n; ++q) {
      for (const auto& targets : post_targets[static_cast<size_t>(q)]) {
        if (targets.size() > 1) {
          return Status::FailedPrecondition(
              "the query set is not safe (Definition 2); use GenericSolver "
              "or ConsistentCoordinator for unsafe sets");
        }
      }
    }
  }
  std::vector<bool> alive(static_cast<size_t>(n), true);
  if (options_.prune_postconditions) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (QueryId q = 0; q < n; ++q) {
        if (!alive[static_cast<size_t>(q)]) continue;
        for (const auto& targets : post_targets[static_cast<size_t>(q)]) {
          bool satisfiable = false;
          for (QueryId t : targets) {
            if (alive[static_cast<size_t>(t)]) {
              satisfiable = true;
              break;
            }
          }
          if (!satisfiable) {
            alive[static_cast<size_t>(q)] = false;
            changed = true;
            break;
          }
        }
      }
    }
  }

  // Coordination graph restricted to live queries (dead queries stay as
  // isolated vertices and their singleton components are skipped below).
  Digraph graph(n);
  for (const ExtendedEdge& edge : edges) {
    if (alive[static_cast<size_t>(edge.from)] &&
        alive[static_cast<size_t>(edge.to)]) {
      graph.AddEdgeUnique(edge.from, edge.to);
    }
  }
  SccResult scc = TarjanScc(graph);
  Digraph components = Condense(graph, scc);
  stats_.graph_nodes = static_cast<uint64_t>(graph.num_nodes());
  stats_.graph_edges = static_cast<uint64_t>(graph.num_edges());
  stats_.num_sccs = static_cast<uint64_t>(scc.num_components());
  stats_.graph_seconds = graph_timer.ElapsedSeconds();

  // ---- Reverse-topological sweep over the components DAG ----
  auto order = ReverseTopologicalOrder(components);
  ENTANGLED_CHECK(order.ok()) << "condensation must be acyclic: "
                              << order.status().ToString();

  const NodeId num_components = scc.num_components();
  std::vector<bool> failed(static_cast<size_t>(num_components), false);
  // R(c): queries of c plus everything reachable — the candidate
  // coordinating set of component c (sorted ascending).
  std::vector<std::vector<QueryId>> reach(
      static_cast<size_t>(num_components));

  // Database round-trips are tallied locally (not by diffing the shared
  // Database counters) so concurrent Solve calls — the engine's parallel
  // Flush() evaluates disjoint components on worker threads — attribute
  // their own work exactly.
  Evaluator evaluator(db_);

  struct Best {
    std::vector<QueryId> queries;
    Substitution subst;
    Binding witness;
    double score;
  };
  std::optional<Best> best;
  const CoordinationScore score =
      options_.score ? options_.score : MaxSizeScore();

  for (NodeId c : *order) {
    const std::vector<QueryId>& members = scc.members[static_cast<size_t>(c)];
    // Dead queries cannot participate in any coordinating set.
    bool any_dead = false;
    for (QueryId q : members) {
      if (!alive[static_cast<size_t>(q)]) any_dead = true;
    }
    if (any_dead) {
      failed[static_cast<size_t>(c)] = true;
      continue;
    }
    // A failed successor dooms every component that depends on it.
    bool successor_failed = false;
    for (NodeId s : components.Successors(c)) {
      if (failed[static_cast<size_t>(s)]) successor_failed = true;
    }
    if (successor_failed) {
      failed[static_cast<size_t>(c)] = true;
      continue;
    }
    // R(c) = members(c)  ∪  ⋃ R(successors).
    std::vector<QueryId>& r = reach[static_cast<size_t>(c)];
    r = members;
    for (NodeId s : components.Successors(c)) {
      const auto& rs = reach[static_cast<size_t>(s)];
      r.insert(r.end(), rs.begin(), rs.end());
    }
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());

    // Memoized verdict for this exact R(c) with current relation
    // stamps: replay it instead of re-unifying and re-grounding.
    if (use_memo) {
      auto it = memo->entries.find(r);
      if (it != memo->entries.end() && StampsCurrent(it->second, *db_)) {
        ++stats_.memo_hits;
        const EvalMemo::Entry& entry = it->second;
        if (!entry.unified || !entry.grounded) {
          failed[static_cast<size_t>(c)] = true;
          continue;
        }
        successful_sets_.push_back(r);
        double r_score = score(set, r);
        if (!best.has_value() || r_score > best->score) {
          // Copies: CompleteAssignment path-compresses the winning
          // substitution, and the entry must stay pristine.
          best = Best{r, entry.subst, entry.witness, r_score};
        }
        continue;
      }
    }

    // Unify every postcondition in R(c) with its (unique, by safety)
    // live target head.
    Substitution subst(set.num_vars());
    bool unified = true;
    for (QueryId q : r) {
      const EntangledQuery& query = set.query(q);
      for (size_t pi = 0; pi < query.postconditions.size() && unified;
           ++pi) {
        const Atom& post = query.postconditions[pi];
        // The live target; safety guarantees at most one candidate
        // overall.  With pre-cleaning enabled a live target always
        // exists; without it, a targetless postcondition simply fails
        // the component here.
        QueryId target = -1;
        for (QueryId t : post_targets[static_cast<size_t>(q)][pi]) {
          if (alive[static_cast<size_t>(t)]) {
            target = t;
            break;
          }
        }
        if (target < 0) {
          unified = false;
          break;
        }
        // Recover which head atom the edge points at.
        bool matched = false;
        for (const Atom& head : set.query(target).head) {
          if (!PositionwiseUnifiable(post, head)) continue;
          ++stats_.unifications;
          if (subst.UnifyAtoms(post, head)) matched = true;
          break;  // safety: a postcondition has at most one such head
        }
        if (!matched) unified = false;
      }
      if (!unified) break;
    }
    if (!unified) {
      if (use_memo) {
        // A failed unifier is database-independent: valid (no stamps)
        // for as long as the key matches.
        memo->entries[r] = EvalMemo::Entry{};
      }
      failed[static_cast<size_t>(c)] = true;
      continue;
    }

    // Combined conjunctive query: all bodies of R(c) under the unifier,
    // with exact duplicates dropped (overlapping successor sets).
    std::vector<Atom> body;
    std::unordered_set<std::string> seen;
    for (QueryId q : r) {
      for (const Atom& atom : set.query(q).body) {
        Atom applied = subst.Apply(atom);
        std::string key = applied.ToString();
        if (seen.insert(std::move(key)).second) {
          body.push_back(std::move(applied));
        }
      }
    }
    ++stats_.db_queries;
    std::optional<Binding> witness = evaluator.FindOne(body);
    if (use_memo) {
      EvalMemo::Entry entry;
      entry.unified = true;
      entry.grounded = witness.has_value();
      entry.subst = subst;
      if (witness.has_value()) entry.witness = *witness;
      std::unordered_set<std::string> stamped;
      for (const Atom& atom : body) {
        if (!stamped.insert(atom.relation).second) continue;
        const Relation* relation = db_->Find(atom.relation);
        entry.stamps.emplace_back(
            relation, relation != nullptr ? relation->version()
                                          : db_->version());
      }
      memo->entries[r] = std::move(entry);
    }
    if (!witness.has_value()) {
      failed[static_cast<size_t>(c)] = true;
      continue;
    }
    successful_sets_.push_back(r);
    double r_score = score(set, r);
    if (!best.has_value() || r_score > best->score) {
      best = Best{r, subst, std::move(*witness), r_score};
    }
  }

  stats_.total_seconds = total_timer.ElapsedSeconds();

  if (!best.has_value()) {
    return Status::NotFound("no coordinating set exists for this instance");
  }
  CoordinationSolution solution;
  solution.queries = best->queries;
  std::optional<Binding> assignment = CompleteAssignment(
      *db_, set, best->queries, &best->subst, best->witness);
  if (!assignment.has_value()) {
    return Status::NotFound(
        "no coordinating set: the database domain is empty, so head-only "
        "variables cannot be assigned (Definition 1, condition (1))");
  }
  solution.assignment = std::move(*assignment);
  return solution;
}

}  // namespace entangled
