#ifndef ENTANGLED_ALGO_GENERIC_SOLVER_H_
#define ENTANGLED_ALGO_GENERIC_SOLVER_H_

#include <cstdint>

#include "algo/stats.h"
#include "common/result.h"
#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"

namespace entangled {

/// \brief Options for GenericSolver.
struct GenericSolverOptions {
  /// Upper bound on explored search nodes before giving up with
  /// OutOfRange.  Entangled(Qall) is NP-complete (Theorem 1) — a budget
  /// keeps pathological instances from hanging tests.
  uint64_t max_expansions = 10'000'000;
};

/// \brief Complete backtracking solver for arbitrary — unsafe and
/// non-unique — sets of entangled queries (the class Qall of §3).
///
/// The search grows a candidate set S from a seed query: it picks the
/// next unsatisfied postcondition, branches over every head in Q it
/// unifies with (pulling the head's owner into S), and at a complete
/// matching grounds the combined body of S with one database query.
/// This decides Entangled(Qall) exactly; worst-case exponential time, as
/// it must be unless P = NP.  It exists to execute the paper's hardness
/// constructions (§3, Appendix A/B) and to cross-check the polynomial
/// algorithms on small instances — production workloads should use
/// SccCoordinator or ConsistentCoordinator.
class GenericSolver {
 public:
  explicit GenericSolver(const Database* db,
                         GenericSolverOptions options = {});

  /// Any coordinating set (tries every seed in id order).  NotFound when
  /// none exists; OutOfRange when the expansion budget is exhausted.
  Result<CoordinationSolution> FindAny(const QuerySet& set);

  /// A coordinating set containing `seed`, if one exists.
  Result<CoordinationSolution> FindContaining(const QuerySet& set,
                                              QueryId seed);

  const SolverStats& stats() const { return stats_; }

 private:
  const Database* db_;
  GenericSolverOptions options_;
  SolverStats stats_;
};

}  // namespace entangled

#endif  // ENTANGLED_ALGO_GENERIC_SOLVER_H_
