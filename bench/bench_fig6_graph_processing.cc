// Figure 6 — "Graph Processing Time in Scale Free Network" (§6.1).
//
// Stress test of graph construction and preprocessing alone: scale-free
// coordination structures of n = 100..1000 queries, ten random graphs
// per size.  Measured time covers exactly the SCC algorithm's graph
// phase — extended-coordination-graph construction, safety checking,
// postcondition pre-cleaning, Tarjan SCC and condensation — via the
// solver's graph_seconds counter.  The paper finds this "negligible,
// and grows very slowly".

#include <benchmark/benchmark.h>

#include "algo/scc_coordination.h"
#include "bench_util.h"
#include "common/logging.h"
#include "core/coordination_graph.h"
#include "graph/condensation.h"
#include "graph/generators.h"
#include "graph/scc.h"
#include "workload/entangled_workloads.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

constexpr int kEdgesPerNode = 2;
constexpr int kGraphsPerSize = 10;

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    // Graph processing does not touch the data; a small table keeps the
    // (untimed) grounding phase cheap.
    ENTANGLED_CHECK(InstallSocialTable(database, "Users", 2048).ok());
    return database;
  }();
  return *db;
}

QuerySet MakeWorkload(int n, uint64_t seed) {
  Rng rng(seed);
  QuerySet set;
  MakeScaleFreeWorkload(n, kEdgesPerNode, "Users", &rng, &set);
  return set;
}

void PrintPaperSeries() {
  benchutil::PrintSeriesHeader(
      "Figure 6: graph construction + preprocessing time, scale-free "
      "networks (mean of 10 graphs)",
      {"num_queries", "graph_ms", "total_ms", "edges"});
  for (int n = 100; n <= 1000; n += 100) {
    double graph_ms = 0;
    double total_ms = 0;
    double edges = 0;
    for (uint64_t seed = 1; seed <= kGraphsPerSize; ++seed) {
      QuerySet set = MakeWorkload(n, seed);
      SccCoordinator coordinator(&SocialDb());
      WallTimer timer;
      auto result = coordinator.Solve(set);
      ENTANGLED_CHECK(result.ok()) << result.status();
      total_ms += timer.ElapsedMillis();
      graph_ms += coordinator.stats().graph_seconds * 1e3;
      edges += static_cast<double>(coordinator.stats().graph_edges);
    }
    benchutil::PrintRow({static_cast<double>(n), graph_ms / kGraphsPerSize,
                         total_ms / kGraphsPerSize,
                         edges / kGraphsPerSize});
  }
  benchutil::PrintNote(
      "expected shape: graph_ms negligible relative to total, slow "
      "growth in n");
}

/// Microbenchmark of the pure graph kernels (no queries involved):
/// Tarjan + condensation on scale-free digraphs.
void BM_TarjanCondense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  Digraph graph = MakeScaleFree(n, kEdgesPerNode, &rng);
  for (auto _ : state) {
    SccResult scc = TarjanScc(graph);
    Digraph condensed = Condense(graph, scc);
    benchmark::DoNotOptimize(condensed.num_edges());
  }
}
BENCHMARK(BM_TarjanCondense)->Arg(100)->Arg(500)->Arg(1000);

/// Microbenchmark of extended-coordination-graph construction (the
/// quadratic unifiability sweep).
void BM_ExtendedGraphBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  QuerySet set = MakeWorkload(n, /*seed=*/3);
  for (auto _ : state) {
    ExtendedCoordinationGraph ecg(set);
    benchmark::DoNotOptimize(ecg.edges().size());
  }
}
BENCHMARK(BM_ExtendedGraphBuild)->Arg(100)->Arg(500)->Arg(1000);

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
