#ifndef ENTANGLED_REDUCTIONS_THEOREM2_H_
#define ENTANGLED_REDUCTIONS_THEOREM2_H_

#include <vector>

#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"
#include "reductions/cnf.h"

namespace entangled {

/// \brief The Theorem-2 construction: reduces 3SAT to
/// EntangledMax(Qsafe) — the produced set is *safe*, yet finding a
/// maximum coordinating set decides satisfiability.
///
/// Per variable xj:     q(xj)      = {}                         Rj(xj) :- D(xj)
/// Per clause C = l1∨l2∨l3 (writing l = x^v, ¬0=1, ¬1=0):
///   first literal:  {Rj1(v1)}                       C(1) :- ∅
///   second literal: {Rj2(v2), Rj1(¬v1)}             C(1) :- ∅
///   third literal:  {Rj3(v3), Rj2(¬v2), Rj1(¬v1)}   C(1) :- ∅
///
/// The staircase of postconditions makes the three queries mutually
/// exclusive, so each clause contributes at most one query to any
/// coordinating set: the maximum size is k + m iff the formula is
/// satisfiable (Figure 9 / Appendix A).
struct Theorem2Encoding {
  std::vector<QueryId> var_queries;                  ///< q(xj), per variable
  std::vector<std::vector<QueryId>> clause_queries;  ///< 3 per clause

  /// k + m: the target size that certifies satisfiability.
  size_t SatisfiableSize(const CnfFormula& formula) const {
    return formula.clauses.size() +
           static_cast<size_t>(formula.num_vars);
  }

  /// Reads the assignment off the chosen literal queries: variable v is
  /// true when some clause query whose own literal is positive-v
  /// participates (unconstrained variables default to true).
  TruthAssignment DecodeAssignment(const CnfFormula& formula,
                                   const CoordinationSolution& sol) const;
};

/// \brief Builds the Theorem-2 instance into `*set` / `*db` (relation
/// "D" = {0,1}).  The theorem is stated for 3SAT; the staircase gadget
/// works for any clause width, so the encoder only requires the
/// literals of a clause to use distinct variables (tests exploit this:
/// the smallest unsatisfiable 3SAT instance needs 8 clauses, which
/// pushes the brute-force EntangledMax oracle out of reach, while an
/// unsatisfiable 2SAT core stays tiny).
Theorem2Encoding EncodeTheorem2(const CnfFormula& formula, QuerySet* set,
                                Database* db);

}  // namespace entangled

#endif  // ENTANGLED_REDUCTIONS_THEOREM2_H_
