#include "db/value.h"

#include <cstring>
#include <string>
#include <type_traits>
#include <unordered_set>

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(-42);
  EXPECT_TRUE(v.is_int());
  EXPECT_FALSE(v.is_string());
  EXPECT_EQ(v.kind(), Value::Kind::kInt);
  EXPECT_EQ(v.AsInt(), -42);
}

TEST(ValueTest, StringRoundTrip) {
  Value v = Value::Str("Zurich");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "Zurich");
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, EqualityWithinKind) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
}

TEST(ValueTest, CrossKindNeverEqual) {
  EXPECT_NE(Value::Int(0), Value::Str("0"));
  EXPECT_NE(Value::Int(0), Value::Str(""));
}

TEST(ValueTest, OrderingIsTotal) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  // Ints sort before strings (variant index order).
  EXPECT_LT(Value::Int(999), Value::Str("a"));
}

TEST(ValueTest, ToStringQuoting) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Str("LAX").ToString(), "LAX");
  EXPECT_EQ(Value::Str("LAX").ToString(/*quote=*/true), "'LAX'");
  EXPECT_EQ(Value::Int(7).ToString(/*quote=*/true), "7");
}

TEST(ValueTest, HashDistinguishesKinds) {
  // Not a strict requirement of hashing, but the representations used
  // here keep int 0 and "" distinct, and equal values hash equal.
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
  EXPECT_NE(Value::Int(0).Hash(), Value::Str("").Hash());
}

TEST(ValueTest, UsableInUnorderedSet) {
  std::unordered_set<Value> values;
  values.insert(Value::Int(1));
  values.insert(Value::Int(1));
  values.insert(Value::Str("1"));
  EXPECT_EQ(values.size(), 2u);
  EXPECT_TRUE(values.count(Value::Int(1)) > 0);
  EXPECT_TRUE(values.count(Value::Str("1")) > 0);
  EXPECT_EQ(values.count(Value::Int(2)), 0u);
}

TEST(ValueDeathTest, WrongAccessorAborts) {
  EXPECT_DEATH(Value::Int(1).AsString(), "not a string");
  EXPECT_DEATH(Value::Str("x").AsInt(), "not an int");
}

// ---------------------------------------------------------------------------
// POD / interning semantics: Value is a 16-byte trivially-copyable
// handle; strings live in the process-wide interner.
// ---------------------------------------------------------------------------

TEST(ValuePodTest, IsTriviallyCopyableAndSmall) {
  static_assert(std::is_trivially_copyable_v<Value>);
  static_assert(sizeof(Value) <= 16);
  // memcpy-style copies preserve meaning (what the columnar row arena
  // and dense bindings rely on).
  Value original = Value::Str("pod_copy");
  Value copy;
  std::memcpy(static_cast<void*>(&copy), static_cast<const void*>(&original),
              sizeof(Value));
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.AsString(), "pod_copy");
}

TEST(ValuePodTest, EqualStringsShareOneSymbol) {
  Value a = Value::Str("interned_once");
  Value b = Value::Str(std::string("interned_once"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.AsSymbol(), b.AsSymbol());
  // The AsString reference is the interner's single stored copy.
  EXPECT_EQ(&a.AsString(), &b.AsString());
}

TEST(ValuePodTest, SymRoundTrip) {
  Symbol s = GlobalValueInterner().Intern("presymbolized");
  Value v = Value::Sym(s);
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsSymbol(), s);
  EXPECT_EQ(v, Value::Str("presymbolized"));
}

TEST(ValuePodTest, StringOrderIsLexicographicNotSymbolOrder) {
  // Intern in anti-lexicographic order: comparison must still follow
  // the strings, not the symbol ids.
  Value z = Value::Str("zz_interned_late_comparand");
  Value a = Value::Str("aa_interned_late_comparand");
  EXPECT_LT(a, z);
  EXPECT_FALSE(z < a);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace entangled
