#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "algo/consistent.h"
#include "algo/scc_coordination.h"
#include "common/rng.h"
#include "core/properties.h"
#include "core/validator.h"
#include "graph/generators.h"
#include "workload/consistent_workloads.h"
#include "workload/entangled_workloads.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

/// Property: on random *safe* instances (random coordination structure,
/// some bodies unsatisfiable), the SCC Coordination Algorithm
///  (a) finds a coordinating set iff the brute-force oracle does,
///  (b) returns only valid solutions (independent Definition-1 check),
///  (c) never exceeds the oracle's maximum size.
class SccVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SccVsBruteForce, AgreesWithOracle) {
  Rng rng(GetParam());
  Database db;
  ASSERT_TRUE(InstallSocialTable(&db, "Users", 32).ok());

  const int n = 2 + static_cast<int>(rng.NextBounded(7));  // 2..8 queries
  Digraph structure = MakeErdosRenyi(n, rng.NextDouble() * 0.5, &rng);
  QuerySet set;
  std::vector<QueryId> ids = MakeStructuredWorkload(structure, "Users", &set);
  // Poison some bodies: the handle "ghost" matches no row.
  for (QueryId id : ids) {
    if (rng.NextBool(0.25)) {
      set.mutable_query(id).body[0].terms[1] = Term::Str("ghost");
    }
  }
  ASSERT_TRUE(IsSafeSet(set));

  SccCoordinator scc(&db);
  auto scc_result = scc.Solve(set);
  BruteForceSolver brute(&db);
  auto oracle_any = brute.FindAny(set);
  auto oracle_max = brute.FindMaximum(set);

  EXPECT_EQ(scc_result.ok(), oracle_any.has_value())
      << "structure:\n" << structure.ToString() << "\nqueries:\n"
      << set.ToString() << "scc: " << scc_result.status();
  if (scc_result.ok()) {
    EXPECT_TRUE(ValidateSolution(db, set, *scc_result).ok())
        << set.ToString();
    ASSERT_TRUE(oracle_max.has_value());
    EXPECT_LE(scc_result->queries.size(), oracle_max->queries.size());
    // Every discovered reachable set must itself be a coordinating set.
    for (const auto& subset : scc.successful_sets()) {
      EXPECT_TRUE(FindCoordinatingWitness(db, set, subset).has_value())
          << set.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSafeInstances, SccVsBruteForce,
                         ::testing::Range(uint64_t{1}, uint64_t{31}));

/// Property: on random A-consistent instances, the Consistent
/// Coordination Algorithm finds a set iff the brute-force oracle finds
/// one on the converted general-form queries (Proposition 1), and its
/// translated solutions always validate.
class ConsistentVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistentVsBruteForce, AgreesWithOracle) {
  Rng rng(GetParam() * 7919);
  Database db;
  ConsistentSchema schema = MakeFlightSchema("Flights", "Friends");
  const std::vector<std::string> destinations = {"Paris", "Rome"};
  const std::vector<std::string> days = {"d1", "d2"};
  ASSERT_TRUE(InstallFlightsGrid(&db, "Flights", destinations, days, 1,
                                 {"NYC", "SFO"}, {"AirA"})
                  .ok());
  const size_t num_users = 2 + rng.NextBounded(3);  // 2..4 users
  auto users = MakeUserNames(num_users);

  // Random sparse friendships (directed).
  Relation* friends = *db.CreateRelation("Friends", {"user", "friend"});
  for (const std::string& a : users) {
    for (const std::string& b : users) {
      if (a != b && rng.NextBool(0.6)) {
        ASSERT_TRUE(friends->Insert({Value::Str(a), Value::Str(b)}).ok());
      }
    }
  }

  // Random queries: wildcard or pinned destination/day; partner is a
  // friend variable or a random named user.
  std::vector<ConsistentQuery> queries;
  for (size_t i = 0; i < num_users; ++i) {
    ConsistentQuery q;
    q.user = users[i];
    q.self_spec.assign(4, std::nullopt);
    if (rng.NextBool(0.4)) {
      q.self_spec[0] = Value::Str(destinations[rng.NextBounded(2)]);
    }
    if (rng.NextBool(0.3)) {
      q.self_spec[1] = Value::Str(days[rng.NextBounded(2)]);
    }
    if (rng.NextBool(0.7)) {
      q.partners.push_back(PartnerSpec::AnyFriend());
    } else {
      size_t j = rng.NextBounded(num_users);
      if (j != i) q.partners.push_back(PartnerSpec::User(users[j]));
    }
    queries.push_back(std::move(q));
  }

  ConsistentCoordinator coordinator(&db, schema);
  auto result = coordinator.Solve(queries);

  QuerySet converted_set;
  ConsistentConversion conversion =
      ToEntangledQueries(schema, queries, &converted_set);
  BruteForceSolver brute(&db);
  auto oracle = brute.FindAny(converted_set);

  EXPECT_EQ(result.ok(), oracle.has_value())
      << converted_set.ToString() << "consistent: " << result.status();
  if (result.ok()) {
    CoordinationSolution translated = ToCoordinationSolution(
        db, schema, queries, conversion, *result);
    EXPECT_TRUE(ValidateSolution(db, converted_set, translated).ok())
        << converted_set.ToString();
    // No coordinating set can beat the oracle's maximum.
    auto oracle_max = brute.FindMaximum(converted_set);
    ASSERT_TRUE(oracle_max.has_value());
    EXPECT_LE(result->size(), oracle_max->queries.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConsistentInstances, ConsistentVsBruteForce,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace entangled
