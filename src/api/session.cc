#include "api/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/timer.h"
#include "core/parser.h"
#include "db/atom.h"

namespace entangled {
namespace {

/// Two head atoms that can denote the same answer fact: the query
/// double-books one answer slot.
bool HasDuplicateHeads(const EntangledQuery& query) {
  for (size_t i = 0; i < query.head.size(); ++i) {
    for (size_t j = i + 1; j < query.head.size(); ++j) {
      if (PositionwiseUnifiable(query.head[i], query.head[j])) return true;
    }
  }
  return false;
}

/// Definition 2 restricted to the singleton set: a postcondition of the
/// query unifies with more than one of the query's own heads.  Such a
/// query is unsafe in every set that contains it.
bool IsSelfUnsafe(const EntangledQuery& query) {
  for (const Atom& post : query.postconditions) {
    size_t targets = 0;
    for (const Atom& head : query.head) {
      if (PositionwiseUnifiable(post, head) && ++targets > 1) return true;
    }
  }
  return false;
}

/// Per-query admission check; kNone when the text passes (or when the
/// session forwards verbatim).  `message` receives the detail.  The
/// scratch parse is the deliberate price of checking *before* the
/// engine sees the query; sessions with neither defect checks nor a
/// footprint quota (e.g. the stress harness default) skip it entirely.
RejectReason CheckText(const SessionOptions& options, const std::string& text,
                       std::string* message) {
  const bool check_defective = options.reject_defective;
  const bool check_footprint = options.max_body_atoms > 0;
  if (!check_defective && !check_footprint) return RejectReason::kNone;
  QuerySet scratch;
  auto parsed = ParseQuery(text, &scratch);
  if (!parsed.ok()) {
    // A footprint quota alone does not opt the session into pre-engine
    // validation: unparseable texts are forwarded verbatim and the
    // service's own rejection is classified as usual.
    if (!check_defective) return RejectReason::kNone;
    *message = parsed.status().message();
    return RejectReason::kParseError;
  }
  const EntangledQuery& query = scratch.query(*parsed);
  if (check_footprint && query.body.size() > options.max_body_atoms) {
    *message = "body of '" + query.name + "' has " +
               std::to_string(query.body.size()) +
               " atoms; this session's footprint quota is " +
               std::to_string(options.max_body_atoms);
    return RejectReason::kQuotaFootprint;
  }
  if (!check_defective) return RejectReason::kNone;
  if (HasDuplicateHeads(query)) {
    *message = "two head atoms of '" + query.name +
               "' unify with each other (one answer slot booked twice)";
    return RejectReason::kDuplicateHead;
  }
  if (IsSelfUnsafe(query)) {
    *message = "a postcondition of '" + query.name +
               "' unifies with more than one of its own heads; no set "
               "containing it can satisfy Definition 2";
    return RejectReason::kUnsafe;
  }
  return RejectReason::kNone;
}

RejectReason ClassifyServiceRejection(const Status& status) {
  return status.IsInvalidArgument() ? RejectReason::kParseError
                                    : RejectReason::kInternal;
}

/// Records the enclosing scope's wall time into one histogram.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram* histogram)
      : histogram_(histogram) {}
  ~ScopedLatency() { histogram_->Record(timer_.ElapsedNanos()); }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyHistogram* histogram_;
  WallTimer timer_;
};

}  // namespace

const char* RejectReasonName(RejectReason reason) {
  // Exhaustive on purpose — no default case, so adding a RejectReason
  // without naming it is a -Wswitch compile warning here, and the
  // trailing CHECK catches out-of-range values at runtime.
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kParseError:
      return "parse_error";
    case RejectReason::kDuplicateHead:
      return "duplicate_head";
    case RejectReason::kUnsafe:
      return "unsafe";
    case RejectReason::kSessionClosed:
      return "session_closed";
    case RejectReason::kQuotaPending:
      return "quota_pending";
    case RejectReason::kQuotaRate:
      return "quota_rate";
    case RejectReason::kQuotaFootprint:
      return "quota_footprint";
    case RejectReason::kOverloaded:
      return "overloaded";
    case RejectReason::kInternal:
      return "internal";
  }
  ENTANGLED_CHECK(false) << "unnamed RejectReason "
                         << static_cast<int>(reason);
  return nullptr;
}

// ---------------------------------------------------------------------------
// ClientSession: thin forwarding layer (the manager owns all state that
// spans sessions).
// ---------------------------------------------------------------------------

SubmitOutcome ClientSession::Submit(const std::string& query_text) {
  return manager_->SubmitFor(this, query_text);
}

BatchOutcome ClientSession::SubmitBatch(
    const std::vector<std::string>& query_texts) {
  return manager_->SubmitBatchFor(this, query_texts);
}

bool ClientSession::Cancel(QueryId id) {
  return manager_->CancelFor(this, id);
}

std::vector<QueryId> ClientSession::PendingQueries() const {
  std::vector<QueryId> pending(pending_.begin(), pending_.end());
  std::sort(pending.begin(), pending.end());
  return pending;
}

std::vector<SessionEvent> ClientSession::PollEvents() {
  ScopedLatency scoped(&manager_->lat_poll_events_);
  std::vector<SessionEvent> events(std::make_move_iterator(events_.begin()),
                                   std::make_move_iterator(events_.end()));
  events_.clear();
  return events;
}

void ClientSession::Close() {
  if (open_) manager_->CloseSession(this);
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

SessionManager::SessionManager(CoordinationService* service,
                               ManagerOptions options)
    : service_(service), options_(std::move(options)) {
  ENTANGLED_CHECK(service != nullptr);
  if (options_.shed_low_water == 0 && options_.shed_high_water > 0) {
    options_.shed_low_water = options_.shed_high_water / 2;
  }
  ENTANGLED_CHECK(options_.shed_high_water == 0 ||
                  options_.shed_low_water < options_.shed_high_water)
      << "shed_low_water must sit below shed_high_water";
  service_->set_delivery_callback(
      [this](const Delivery& delivery) { OnDelivery(delivery); });
}

SessionManager::~SessionManager() {
  service_->set_delivery_callback(nullptr);
}

ClientSession* SessionManager::Open(SessionOptions options) {
  const SessionId id = static_cast<SessionId>(sessions_.size());
  if (options.label.empty()) options.label = "s" + std::to_string(id);
  sessions_.emplace_back(
      new ClientSession(this, id, std::move(options)));
  ++num_open_;
  return sessions_.back().get();
}

bool SessionManager::Close(SessionId id) {
  ClientSession* session = Find(id);
  if (session == nullptr || !session->open()) return false;
  CloseSession(session);
  return true;
}

ClientSession* SessionManager::Find(SessionId id) {
  if (id < 0 || static_cast<size_t>(id) >= sessions_.size()) return nullptr;
  return sessions_[static_cast<size_t>(id)].get();
}

const ClientSession* SessionManager::Find(SessionId id) const {
  if (id < 0 || static_cast<size_t>(id) >= sessions_.size()) return nullptr;
  return sessions_[static_cast<size_t>(id)].get();
}

SessionId SessionManager::OwnerOf(QueryId id) const {
  if (id < 0 || static_cast<size_t>(id) >= owner_.size()) return -1;
  return owner_[static_cast<size_t>(id)];
}

std::vector<const ClientSession*> SessionManager::sessions() const {
  std::vector<const ClientSession*> all;
  all.reserve(sessions_.size());
  for (const auto& session : sessions_) all.push_back(session.get());
  return all;
}

size_t SessionManager::Flush() {
  ScopedLatency scoped(&lat_flush_);
  return service_->Flush();
}

// ----- quotas, shedding, and pending accounting ---------------------------

uint64_t SessionManager::NowNanos() const {
  if (options_.clock_nanos) return options_.clock_nanos();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SessionManager::RefillBucket(ClientSession* session) {
  const double rate = session->options_.max_queries_per_sec;
  const double burst = std::max(1.0, std::ceil(rate));
  const uint64_t now = NowNanos();
  if (!session->bucket_primed_) {
    session->tokens_ = burst;
    session->last_refill_ns_ = now;
    session->bucket_primed_ = true;
    return;
  }
  if (now <= session->last_refill_ns_) return;
  const double elapsed_sec =
      static_cast<double>(now - session->last_refill_ns_) * 1e-9;
  session->tokens_ = std::min(burst, session->tokens_ + elapsed_sec * rate);
  session->last_refill_ns_ = now;
}

void SessionManager::SpendTokens(ClientSession* session, double cost) {
  if (session->options_.max_queries_per_sec <= 0) return;
  RefillBucket(session);
  session->tokens_ = std::max(0.0, session->tokens_ - cost);
}

bool SessionManager::UpdateShedding() {
  const size_t high = options_.shed_high_water;
  const size_t intake_high = options_.shed_intake_high_water;
  if (high == 0 && intake_high == 0) return false;
  // IntakeDepth is passive (an atomic ticket read); this never forces a
  // drain on the submit path.
  const size_t intake_depth =
      intake_high > 0 ? service_->IntakeDepth() : 0;
  if (!shedding_) {
    const bool pending_over = high > 0 && tracked_pending_ >= high;
    const bool intake_over = intake_high > 0 && intake_depth >= intake_high;
    if (pending_over || intake_over) {
      shedding_ = true;
      ++shed_transitions_;
    }
  } else {
    const bool pending_recovered =
        high == 0 || tracked_pending_ <= options_.shed_low_water;
    const bool intake_recovered =
        intake_high == 0 || intake_depth <= intake_high / 2;
    if (pending_recovered && intake_recovered) shedding_ = false;
  }
  return shedding_;
}

RejectReason SessionManager::AdmissionCheck(ClientSession* session,
                                            size_t count,
                                            std::string* message) {
  if (UpdateShedding()) {
    *message = "shedding load: " + std::to_string(tracked_pending_) +
               " queries pending across all sessions (recovery at " +
               std::to_string(options_.shed_low_water) + ")";
    return RejectReason::kOverloaded;
  }
  if (options_.global_pending_ceiling > 0 &&
      tracked_pending_ + count > options_.global_pending_ceiling) {
    *message = "global pending ceiling of " +
               std::to_string(options_.global_pending_ceiling) +
               " reached (" + std::to_string(tracked_pending_) + " pending)";
    return RejectReason::kQuotaPending;
  }
  const SessionOptions& opts = session->options_;
  if (opts.max_pending > 0 &&
      session->pending_.size() + count > opts.max_pending) {
    *message = "session " + std::to_string(session->id_) + " holds " +
               std::to_string(session->pending_.size()) +
               " pending queries; its quota is " +
               std::to_string(opts.max_pending);
    return RejectReason::kQuotaPending;
  }
  if (opts.max_queries_per_sec > 0) {
    RefillBucket(session);
    if (session->tokens_ + 1e-9 < static_cast<double>(count)) {
      *message = "session " + std::to_string(session->id_) +
                 " exceeded its rate of " +
                 std::to_string(opts.max_queries_per_sec) + " queries/sec";
      return RejectReason::kQuotaRate;
    }
  }
  return RejectReason::kNone;
}

void SessionManager::MarkPending(ClientSession* session, QueryId id) {
  if (session->pending_.insert(id).second) ++tracked_pending_;
}

void SessionManager::UnmarkPending(ClientSession* session, QueryId id) {
  if (session->pending_.erase(id) > 0) --tracked_pending_;
}

void SessionManager::MarkRetired(QueryId id) {
  if (id < 0) return;
  const size_t idx = static_cast<size_t>(id);
  if (idx >= retired_.size()) retired_.resize(idx + 1, false);
  retired_[idx] = true;
}

bool SessionManager::IsRetired(QueryId id) const {
  return id >= 0 && static_cast<size_t>(id) < retired_.size() &&
         retired_[static_cast<size_t>(id)];
}

void SessionManager::CountReject(RejectReason reason) {
  ++reject_counts_[static_cast<size_t>(reason)];
}

// ----- delivery routing and ownership -------------------------------------

void SessionManager::RegisterOwnership(QueryId id, ClientSession* session) {
  if (static_cast<size_t>(id) >= owner_.size()) {
    owner_.resize(static_cast<size_t>(id) + 1, -1);
  }
  owner_[static_cast<size_t>(id)] = session->id();
  if (service_->AdmitsDeferred()) {
    // Deferred admission: the submission is queued, so probing
    // IsPending here would force a drain on every Submit, defeating the
    // non-blocking intake.  Register optimistically; OnDelivery erases
    // the entry the moment the queued query coordinates.  One guard:
    // nothing in the service contract says the id cannot retire *during
    // this very call* — pushing onto a full intake ring drains (and
    // delivers) earlier events inline, and whether an in-flight id can
    // be among them is a property of the engine's drain ordering, not
    // of this layer.  OnDelivery marks delivered ids retired;
    // re-inserting one here would be a phantom pending entry that never
    // clears and breaks the session/service pending tiling.
    if (!IsRetired(id)) MarkPending(session, id);
    return;
  }
  // The query may already have delivered inside the submitting call
  // (per-arrival evaluation); only still-pending queries are tracked.
  if (service_->IsPending(id)) MarkPending(session, id);
}

bool SessionManager::AdoptRecovered(SessionId session, QueryId id) {
  if (session < 0 || static_cast<size_t>(session) >= sessions_.size()) {
    return false;
  }
  ClientSession* owner = sessions_[static_cast<size_t>(session)].get();
  if (!owner->open_) return false;
  if (static_cast<size_t>(id) >= owner_.size()) {
    owner_.resize(static_cast<size_t>(id) + 1, -1);
  }
  owner_[static_cast<size_t>(id)] = session;
  // Same pending discipline as RegisterOwnership: optimistic under
  // deferred admission (OnDelivery erases on retirement), probed
  // otherwise.  MarkPending is idempotent, so the replay's second
  // adoption pass settles the entry without double counting.
  if (service_->AdmitsDeferred()) {
    if (!IsRetired(id)) MarkPending(owner, id);
  } else if (service_->IsPending(id)) {
    MarkPending(owner, id);
  }
  return true;
}

void SessionManager::UnadoptRecovered(QueryId id) {
  const SessionId owner = OwnerOf(id);
  if (owner < 0) return;
  UnmarkPending(sessions_[static_cast<size_t>(owner)].get(), id);
}

void SessionManager::OnDelivery(const Delivery& delivery) {
  // One shared, owned event; each owning session gets its own slice.
  // (This is the one deep copy of the materialized Delivery; avoiding
  // it would mean a shared_ptr-typed service callback for every
  // consumer, which is not worth it at delivery — not submission —
  // frequency.)
  auto shared = std::make_shared<const Delivery>(delivery);
  // session id -> that session's members, ascending (delivery.queries
  // is ascending and the map is ordered, so routing is deterministic).
  std::map<SessionId, std::vector<QueryId>> owners;
  for (const DeliveredQuery& q : delivery.queries) {
    MarkRetired(q.id);
    SessionId owner = OwnerOf(q.id);
    if (owner < 0) owner = current_submitter_;  // assigned mid-submit
    if (owner < 0) continue;  // submitted directly on the service
    if (static_cast<size_t>(q.id) >= owner_.size() ||
        owner_[static_cast<size_t>(q.id)] < 0) {
      owner_.resize(std::max(owner_.size(), static_cast<size_t>(q.id) + 1),
                    -1);
      owner_[static_cast<size_t>(q.id)] = owner;
    }
    owners[owner].push_back(q.id);
    UnmarkPending(sessions_[static_cast<size_t>(owner)].get(), q.id);
  }
  for (auto& [sid, own] : owners) {
    ClientSession* session = sessions_[static_cast<size_t>(sid)].get();
    SessionEvent event{sid, shared, std::move(own)};
    session->events_.push_back(event);
    ++session->deliveries_;
    // Push observes the event exactly as it is buffered, so the push
    // stream and a PollEvents() drain are byte-identical.  The handler
    // gets the stack copy, not a reference into events_: a push handler
    // may legally call PollEvents() (it touches no engine state), which
    // drains the deque out from under any buffered reference.
    if (session->event_callback_) {
      session->event_callback_(event);
    }
  }
}

// ----- submission / cancellation / close ----------------------------------

SubmitOutcome SessionManager::SubmitFor(ClientSession* session,
                                        const std::string& query_text) {
  ScopedLatency scoped(&lat_submit_);
  SubmitOutcome outcome;
  if (!session->open_) {
    outcome.reason = RejectReason::kSessionClosed;
    outcome.message = "session " + std::to_string(session->id_) + " is closed";
    CountReject(outcome.reason);
    return outcome;
  }
  outcome.reason = AdmissionCheck(session, 1, &outcome.message);
  if (!outcome.ok()) {
    CountReject(outcome.reason);
    return outcome;
  }
  outcome.reason = CheckText(session->options_, query_text, &outcome.message);
  if (!outcome.ok()) {
    CountReject(outcome.reason);
    return outcome;
  }

  current_submitter_ = session->id_;
  service_->set_session_tag(session->id_);
  auto id = service_->Submit(query_text);
  service_->set_session_tag(-1);
  current_submitter_ = -1;
  if (!id.ok()) {
    outcome.reason = ClassifyServiceRejection(id.status());
    outcome.message = id.status().message();
    CountReject(outcome.reason);
    return outcome;
  }
  ++session->submitted_;
  SpendTokens(session, 1.0);
  RegisterOwnership(*id, session);
  outcome.id = *id;
  return outcome;
}

BatchOutcome SessionManager::SubmitBatchFor(
    ClientSession* session, const std::vector<std::string>& query_texts) {
  ScopedLatency scoped(&lat_submit_batch_);
  BatchOutcome outcome;
  if (!session->open_) {
    outcome.reason = RejectReason::kSessionClosed;
    outcome.message = "session " + std::to_string(session->id_) + " is closed";
    CountReject(outcome.reason);
    return outcome;
  }
  // All-or-nothing: the whole batch must clear every quota before any
  // text reaches the service (one token / pending slot per member).
  outcome.reason =
      AdmissionCheck(session, query_texts.size(), &outcome.message);
  if (!outcome.ok()) {
    CountReject(outcome.reason);
    return outcome;
  }
  for (size_t i = 0; i < query_texts.size(); ++i) {
    outcome.reason =
        CheckText(session->options_, query_texts[i], &outcome.message);
    if (!outcome.ok()) {
      outcome.rejected_index = i;
      CountReject(outcome.reason);
      return outcome;
    }
  }

  current_submitter_ = session->id_;
  service_->set_session_tag(session->id_);
  auto ids = service_->SubmitBatch(query_texts);
  service_->set_session_tag(-1);
  current_submitter_ = -1;
  if (!ids.ok()) {
    outcome.reason = ClassifyServiceRejection(ids.status());
    outcome.message = ids.status().message();
    // The service reports only the first error; locate the offending
    // text so the typed outcome stays precise (error path only).
    for (size_t i = 0; i < query_texts.size(); ++i) {
      QuerySet scratch;
      if (!ParseQuery(query_texts[i], &scratch).ok()) {
        outcome.rejected_index = i;
        break;
      }
    }
    CountReject(outcome.reason);
    return outcome;
  }
  session->submitted_ += ids->size();
  SpendTokens(session, static_cast<double>(ids->size()));
  for (QueryId id : *ids) RegisterOwnership(id, session);
  outcome.ids = std::move(*ids);
  return outcome;
}

bool SessionManager::CancelFor(ClientSession* session, QueryId id) {
  ScopedLatency scoped(&lat_cancel_);
  if (!session->open_ || session->pending_.count(id) == 0) return false;
  if (service_->AdmitsDeferred()) {
    // Force the intake drain *before* deciding: queued submissions may
    // coordinate as they land, and each delivery routes through
    // OnDelivery, which erases the session's optimistic pending entry.
    // After the drain the session view is exact again.
    service_->IsPending(id);
    if (session->pending_.count(id) == 0) return false;  // just delivered
  }
  service_->set_session_tag(session->id_);
  const bool cancelled = service_->Cancel(id);
  service_->set_session_tag(-1);
  ENTANGLED_CHECK(cancelled)
      << "service disagreed about session-pending query " << id;
  UnmarkPending(session, id);
  return true;
}

void SessionManager::CloseSession(ClientSession* session) {
  ENTANGLED_CHECK(session->open_);
  // Settle any queued submissions first: draining may deliver optimistic
  // entries (OnDelivery erases them), so the snapshot below is exact and
  // every Cancel in the loop is guaranteed to succeed.
  if (service_->AdmitsDeferred()) service_->num_pending();
  // Bulk-cancel in ascending order (deterministic dirty-marking in the
  // engine regardless of hash-set iteration order).
  std::vector<QueryId> pending = session->PendingQueries();
  service_->set_session_tag(session->id_);
  for (QueryId id : pending) {
    const bool cancelled = service_->Cancel(id);
    ENTANGLED_CHECK(cancelled)
        << "service disagreed about session-pending query " << id;
    UnmarkPending(session, id);
  }
  service_->set_session_tag(-1);
  ENTANGLED_CHECK(session->pending_.empty());
  session->open_ = false;
  --num_open_;
  // Buffered events stay pollable (ClientSession::Close contract): a
  // disconnecting client drains them exactly once via PollEvents.
}

// ----- observability -------------------------------------------------------

MetricsSnapshot SessionManager::Metrics() const {
  MetricsSnapshot snap;
  // StatsSnapshot is a service read boundary: queued intake drains, so
  // the counters below agree with an inline-admission run.
  const EngineStats stats = service_->StatsSnapshot();
  snap.counters.emplace_back("engine.submitted", stats.submitted);
  snap.counters.emplace_back("engine.cancelled", stats.cancelled);
  snap.counters.emplace_back("engine.rejected", stats.rejected);
  snap.counters.emplace_back("engine.evaluations", stats.evaluations);
  snap.counters.emplace_back("engine.evaluations_avoided",
                             stats.evaluations_avoided);
  snap.counters.emplace_back("engine.coordinated_queries",
                             stats.coordinated_queries);
  snap.counters.emplace_back("engine.coordinating_sets",
                             stats.coordinating_sets);
  snap.counters.emplace_back("engine.unsafe_components",
                             stats.unsafe_components);
  snap.counters.emplace_back("engine.db_queries", stats.db_queries);
  snap.counters.emplace_back("engine.eval_cache_hits",
                             stats.eval_cache_hits);
  snap.counters.emplace_back("sessions.opened", sessions_.size());
  snap.counters.emplace_back("sessions.open", num_open_);
  for (size_t i = 0; i < kNumRejectReasons; ++i) {
    snap.counters.emplace_back(
        std::string("reject.") + RejectReasonName(kAllRejectReasons[i]),
        reject_counts_[static_cast<size_t>(kAllRejectReasons[i])]);
  }
  snap.counters.emplace_back(
      "shed.events",
      reject_counts_[static_cast<size_t>(RejectReason::kOverloaded)]);
  snap.counters.emplace_back("shed.transitions", shed_transitions_);
  snap.counters.emplace_back("shed.active", shedding_ ? 1 : 0);
  // Service-specific counters (a durable decorator adds its
  // WAL/snapshot/recovery totals; plain engines add nothing).
  service_->AppendCounters(&snap.counters);

  snap.latency.emplace_back("submit", lat_submit_);
  snap.latency.emplace_back("submit_batch", lat_submit_batch_);
  snap.latency.emplace_back("cancel", lat_cancel_);
  snap.latency.emplace_back("flush", lat_flush_);
  snap.latency.emplace_back("poll_events", lat_poll_events_);
  snap.latency.emplace_back("eval", stats.eval_latency);

  snap.gauges = service_->GaugesSnapshot();
  return snap;
}

}  // namespace entangled
