#ifndef ENTANGLED_GRAPH_GENERATORS_H_
#define ENTANGLED_GRAPH_GENERATORS_H_

#include "common/rng.h"
#include "graph/digraph.h"

namespace entangled {

/// Chain 0 -> 1 -> ... -> n-1 (the paper's Figure-4 "list structure":
/// each query coordinates with the next, the last with nobody).
Digraph MakeChain(NodeId n);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
Digraph MakeCycle(NodeId n);

/// Complete digraph: every ordered pair (u, v), u != v.
Digraph MakeComplete(NodeId n);

/// Erdős–Rényi G(n, p): each ordered pair independently with
/// probability p.
Digraph MakeErdosRenyi(NodeId n, double p, Rng* rng);

/// Directed Barabási–Albert scale-free network [Barabási & Albert 1999],
/// the paper's model for social coordination structure (§6.1): nodes
/// arrive one at a time and attach `edges_per_node` out-edges to earlier
/// nodes by preferential attachment on (in-degree + 1); the in-degree
/// distribution follows a power law.  Self-loops and parallel edges are
/// avoided.
Digraph MakeScaleFree(NodeId n, int edges_per_node, Rng* rng);

/// Each node draws k distinct out-neighbours uniformly (k capped at
/// n - 1).
Digraph MakeRandomKOut(NodeId n, int k, Rng* rng);

}  // namespace entangled

#endif  // ENTANGLED_GRAPH_GENERATORS_H_
