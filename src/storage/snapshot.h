#ifndef ENTANGLED_STORAGE_SNAPSHOT_H_
#define ENTANGLED_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/database.h"
#include "db/relation.h"

namespace entangled {

/// \brief One pending query as captured at snapshot time: exactly the
/// admitted intent (id, owner, text) plus the durable variable window
/// the decorator had assigned to it.
struct SnapshotPendingQuery {
  int64_t id = -1;        ///< service-global durable query id
  int64_t session = -1;   ///< owning session tag; -1 = direct submission
  int64_t var_start = 0;  ///< first durable VarId allocated to this query
  uint32_t var_count = 0;
  std::string text;  ///< paper-syntax round-trip of the query
};

/// \brief One relation's facts at snapshot time.
struct SnapshotRelation {
  std::string name;
  std::vector<std::string> columns;
  std::vector<Tuple> rows;  ///< insertion order preserved
};

/// \brief Minimal admitted state sufficient to rehydrate a
/// DurableCoordinationService: counters, facts, and pending query
/// texts — never engine internals (the deterministic engine re-derives
/// components, coordination sets, and answers on replay).
struct SnapshotState {
  uint64_t epoch = 0;  ///< storage epoch this snapshot begins
  int64_t next_durable_id = 0;
  int64_t next_durable_var = 0;
  /// Delivery-sequence watermark: deliveries below this already reached
  /// clients before the snapshot; recovery resumes numbering here.
  uint64_t next_sequence = 0;
  uint64_t evaluate_every = 0;
  uint64_t cadence_phase = 0;  ///< submissions since the last evaluation
  uint64_t total_events = 0;   ///< logged events folded into this snapshot
  std::vector<SnapshotRelation> relations;
  std::vector<SnapshotPendingQuery> pending;
};

/// Canonical file names inside a storage directory.  Epochs are
/// zero-padded so lexical order matches numeric order.
std::string SnapshotFileName(uint64_t epoch);
std::string WalFileName(uint64_t epoch);
std::string SnapshotPath(const std::string& dir, uint64_t epoch);
std::string WalPath(const std::string& dir, uint64_t epoch);

/// \brief Epochs present in a storage directory, ascending.
struct StorageDirListing {
  std::vector<uint64_t> snapshot_epochs;
  std::vector<uint64_t> wal_epochs;
  bool empty() const { return snapshot_epochs.empty() && wal_epochs.empty(); }
};

/// Lists snapshot-*.snap / wal-*.log epochs under `dir` (which must
/// exist); unrelated files are ignored.
Result<StorageDirListing> ListStorageDir(const std::string& dir);

/// Serializes `state` to `<dir>/<SnapshotFileName(epoch)>.tmp` and
/// fsyncs it, returning the temp path.  The snapshot is NOT visible to
/// recovery until CommitSnapshot renames it into place — a crash
/// between the two steps leaves only the ignorable temp file, which is
/// exactly the atomicity the crash-sim test exercises.
Result<std::string> WriteSnapshotToTemp(const SnapshotState& state,
                                        const std::string& dir);

/// Atomically publishes a temp snapshot: rename(2) onto the final path
/// followed by an fsync of the containing directory.
Status CommitSnapshot(const std::string& temp_path,
                      const std::string& final_path);

/// WriteSnapshotToTemp + CommitSnapshot in one step.
Status WriteSnapshot(const SnapshotState& state, const std::string& dir);

/// Loads and CRC-validates one snapshot file.  Any damage (bad magic,
/// bad checksum, malformed payload) is an error Status — the caller
/// falls back to an older snapshot and counts the skip.
Result<SnapshotState> LoadSnapshot(const std::string& path);

/// Recreates the fact relations of `state` inside an empty `db`.
Status BuildDatabaseFromSnapshot(const SnapshotState& state, Database* db);

/// Captures every relation of `db` (schema + rows, insertion order)
/// into `state->relations`.
void CaptureDatabaseFacts(const Database& db, SnapshotState* state);

}  // namespace entangled

#endif  // ENTANGLED_STORAGE_SNAPSHOT_H_
