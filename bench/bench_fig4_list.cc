// Figure 4 — "Processing Time in List Structure" (paper §6.1).
//
// Workload: a chain of n entangled queries over an 82,168-row social
// table; query i coordinates with query i+1, the last with nobody.
// This is the worst case for the SCC Coordination Algorithm: n
// singleton SCCs, a distinct coordinating set per suffix, and therefore
// n database queries.  The paper reports processing time growing
// linearly in n for n = 10..100; the reproduction prints the same
// series (plus the hardware-independent database-query count).

#include <benchmark/benchmark.h>

#include "algo/scc_coordination.h"
#include "bench_util.h"
#include "common/logging.h"
#include "workload/entangled_workloads.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    ENTANGLED_CHECK(
        InstallSocialTable(database, "Users", kSlashdotTableSize).ok());
    return database;
  }();
  return *db;
}

void RunOnce(int n, SolverStats* stats) {
  QuerySet set;
  MakeListWorkload(n, "Users", &set);
  SccCoordinator coordinator(&SocialDb());
  auto result = coordinator.Solve(set);
  ENTANGLED_CHECK(result.ok()) << result.status();
  ENTANGLED_CHECK_EQ(result->queries.size(), static_cast<size_t>(n));
  if (stats != nullptr) *stats = coordinator.stats();
}

void PrintPaperSeries() {
  benchutil::PrintSeriesHeader(
      "Figure 4: SCC algorithm processing time, list structure "
      "(82168-row table)",
      {"num_queries", "time_ms", "db_queries", "graph_ms"});
  for (int n = 10; n <= 100; n += 10) {
    SolverStats stats;
    double ms = benchutil::MeanMillis(5, [&] { RunOnce(n, &stats); });
    benchutil::PrintRow({static_cast<double>(n), ms,
                         static_cast<double>(stats.db_queries),
                         stats.graph_seconds * 1e3});
  }
  benchutil::PrintNote(
      "expected shape: linear in n; db_queries == n (one per suffix)");
}

void BM_SccListWorkload(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SolverStats stats;
  for (auto _ : state) {
    RunOnce(n, &stats);
  }
  state.counters["db_queries"] = static_cast<double>(stats.db_queries);
  state.counters["sccs"] = static_cast<double>(stats.num_sccs);
}
BENCHMARK(BM_SccListWorkload)->Arg(10)->Arg(40)->Arg(70)->Arg(100);

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
