#include "common/status.h"

namespace entangled {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace entangled
