#include "graph/topological.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace entangled {
namespace {

TEST(TopologicalTest, ChainOrders) {
  Digraph g = MakeChain(4);
  auto order = TopologicalOrder(g);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(TopologicalTest, ReverseChain) {
  auto order = ReverseTopologicalOrder(MakeChain(4));
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<NodeId>{3, 2, 1, 0}));
}

TEST(TopologicalTest, CycleIsRejected) {
  auto order = TopologicalOrder(MakeCycle(3));
  EXPECT_TRUE(order.status().IsFailedPrecondition());
}

TEST(TopologicalTest, SelfLoopIsRejected) {
  Digraph g(1);
  g.AddEdge(0, 0);
  EXPECT_FALSE(TopologicalOrder(g).ok());
}

TEST(TopologicalTest, DeterministicTieBreakBySmallerId) {
  // Diamond: 0 -> {1, 2} -> 3; 1 and 2 are both ready after 0.
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  auto order = TopologicalOrder(g);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(TopologicalTest, IsTopologicalOrderValidation) {
  Digraph g = MakeChain(3);
  EXPECT_TRUE(IsTopologicalOrder(g, {0, 1, 2}));
  EXPECT_FALSE(IsTopologicalOrder(g, {1, 0, 2}));
  EXPECT_FALSE(IsTopologicalOrder(g, {0, 1}));        // not a permutation
  EXPECT_FALSE(IsTopologicalOrder(g, {0, 0, 2}));     // duplicate
  EXPECT_FALSE(IsTopologicalOrder(g, {0, 1, 5}));     // out of range
}

TEST(TopologicalTest, RandomDagsValidate) {
  Rng rng(55);
  for (int trial = 0; trial < 25; ++trial) {
    // Random DAG: only forward edges i -> j with i < j.
    NodeId n = static_cast<NodeId>(2 + rng.NextBounded(30));
    Digraph g(n);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (rng.NextBool(0.2)) g.AddEdge(i, j);
      }
    }
    auto order = TopologicalOrder(g);
    ASSERT_TRUE(order.ok());
    EXPECT_TRUE(IsTopologicalOrder(g, *order));
  }
}

TEST(ReachabilityTest, ReachableFromChainHead) {
  std::vector<bool> reach = ReachableFrom(MakeChain(4), 1);
  EXPECT_EQ(reach, (std::vector<bool>{false, true, true, true}));
}

TEST(ReachabilityTest, StronglyConnectedDetection) {
  EXPECT_TRUE(IsStronglyConnected(MakeCycle(5)));
  EXPECT_FALSE(IsStronglyConnected(MakeChain(5)));
  EXPECT_TRUE(IsStronglyConnected(MakeComplete(4)));
  EXPECT_TRUE(IsStronglyConnected(Digraph(1)));
  EXPECT_TRUE(IsStronglyConnected(Digraph(0)));
  EXPECT_FALSE(IsStronglyConnected(Digraph(2)));  // two isolated nodes
}

TEST(ReachabilityTest, CountSimplePaths) {
  // Diamond has two simple paths 0 -> 3.
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  EXPECT_EQ(CountSimplePaths(g, 0, 3, 10), 2);
  EXPECT_EQ(CountSimplePaths(g, 0, 3, 2), 2);  // capped exactly
  EXPECT_EQ(CountSimplePaths(g, 3, 0, 10), 0);
  EXPECT_EQ(CountSimplePaths(g, 0, 0, 10), 1);  // trivial path
}

TEST(ReachabilityTest, CountSimplePathsRespectsLimit) {
  // Complete graph has many simple paths; the limit caps the work.
  Digraph g = MakeComplete(8);
  EXPECT_EQ(CountSimplePaths(g, 0, 7, 5), 5);
}

}  // namespace
}  // namespace entangled
