#include "algo/gupta_baseline.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/validator.h"
#include "workload/entangled_workloads.h"
#include "workload/scenarios.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class GuptaBaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 32).ok());
  }
  Database db_;
};

TEST_F(GuptaBaselineTest, SolvesSafeUniqueCycle) {
  QuerySet set;
  MakeCycleWorkload(6, "Users", &set);
  GuptaBaseline baseline(&db_);
  auto result = baseline.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries.size(), 6u);
  CoordinationSolution solution = *result;
  EXPECT_TRUE(ValidateSolution(db_, set, solution).ok());
  EXPECT_EQ(baseline.stats().db_queries, 1u);  // one combined query
}

TEST_F(GuptaBaselineTest, RejectsNonUniqueChain) {
  QuerySet set;
  MakeListWorkload(4, "Users", &set);
  GuptaBaseline baseline(&db_);
  auto result = baseline.Solve(set);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
  EXPECT_NE(result.status().message().find("unique"), std::string::npos);
}

TEST_F(GuptaBaselineTest, RejectsUnsafeSet) {
  QuerySet set;
  auto ids = ParseQueries(
      "asker: { R(x) } H(x) :- Users(u, 'user0').\n"
      "a: { H(y) } R(y) :- Users(v, 'user1').\n"
      "b: { H(z) } R(z) :- Users(w, 'user2').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  GuptaBaseline baseline(&db_);
  auto result = baseline.Solve(set);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
  EXPECT_NE(result.status().message().find("safe"), std::string::npos);
}

TEST_F(GuptaBaselineTest, NotFoundWhenBodyUnsatisfiable) {
  QuerySet set;
  auto ids = ParseQueries(
      "a: { R(B, x) } R(A, x) :- Users(x, 'user1').\n"
      "b: { R(A, y) } R(B, y) :- Users(y, 'nobody').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  GuptaBaseline baseline(&db_);
  auto result = baseline.Solve(set);
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(GuptaBaselineTest, NotFoundWhenUnificationClashes) {
  // b's postcondition R(A, 1, 2) is positionwise unifiable with a's
  // head R(A, x, x) — the coordination graph is a safe, unique cycle —
  // but true unification requires x = 1 and x = 2 simultaneously.
  QuerySet set;
  auto ids = ParseQueries(
      "a: { R(B, w) }    R(A, x, x) :- Users(u, 'user0').\n"
      "b: { R(A, 1, 2) } R(B, y)    :- Users(v, 'user1').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  GuptaBaseline baseline(&db_);
  auto result = baseline.Solve(set);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_NE(result.status().message().find("unification"),
            std::string::npos);
}

TEST_F(GuptaBaselineTest, EmptySetIsNotFound) {
  QuerySet set;
  GuptaBaseline baseline(&db_);
  EXPECT_TRUE(baseline.Solve(set).status().IsNotFound());
}

TEST_F(GuptaBaselineTest, AgreesWithSccAlgorithmOnUniqueSets) {
  // On safe+unique inputs the two algorithms must agree: same set (all
  // queries), both valid.
  for (int n : {2, 3, 5, 8}) {
    QuerySet set;
    MakeCycleWorkload(n, "Users", &set);
    GuptaBaseline baseline(&db_);
    auto result = baseline.Solve(set);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->queries.size(), static_cast<size_t>(n));
  }
}

}  // namespace
}  // namespace entangled
