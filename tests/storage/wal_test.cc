// WAL segment round-trips, reopen-for-append, the fsync-policy matrix,
// and torn-tail truncation (storage/wal.h).

#include "storage/wal.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace entangled {
namespace {

/// Throwaway file path inside a per-test temp dir.
class TempFile {
 public:
  explicit TempFile(const char* name) {
    char tmpl[] = "/tmp/entangled_wal_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    dir_ = made;
    path_ = dir_ + "/" + name;
  }
  ~TempFile() {
    ::unlink(path_.c_str());
    ::rmdir(dir_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string dir_;
  std::string path_;
};

std::vector<WalRecord> AllKinds() {
  std::vector<WalRecord> records;
  WalRecord submit;
  submit.kind = WalRecord::Kind::kSubmit;
  submit.id = 7;
  submit.session = 2;
  submit.text = "q7: answers(X) :- fact(X), other(X, Y)";
  records.push_back(submit);
  WalRecord batch;
  batch.kind = WalRecord::Kind::kSubmitBatch;
  batch.session = -1;
  batch.batch = {{8, "q8: a(X) :- b(X)"}, {9, "q9: c(Y) :- d(Y)"}};
  records.push_back(batch);
  WalRecord cancel;
  cancel.kind = WalRecord::Kind::kCancel;
  cancel.id = 8;
  cancel.session = 2;
  records.push_back(cancel);
  WalRecord rate;
  rate.kind = WalRecord::Kind::kSetEvaluateEvery;
  rate.value = 3;
  records.push_back(rate);
  WalRecord flush;
  flush.kind = WalRecord::Kind::kFlush;
  records.push_back(flush);
  WalRecord mark;
  mark.kind = WalRecord::Kind::kDeliveryMark;
  mark.value = 41;
  records.push_back(mark);
  return records;
}

TEST(WalTest, RoundTripsEveryRecordKind) {
  TempFile file("wal-0000000000.log");
  auto writer = WalWriter::Create(file.path(), 5, FsyncPolicy::kNone);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const std::vector<WalRecord> records = AllKinds();
  for (const WalRecord& record : records) {
    ASSERT_TRUE((*writer)->Append(record).ok());
  }
  EXPECT_EQ((*writer)->stats().appended_records, records.size());
  writer->reset();

  auto read = ReadWalSegment(file.path());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->epoch, 5u);
  EXPECT_FALSE(read->torn_tail);
  EXPECT_FALSE(read->corrupt);
  ASSERT_EQ(read->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(read->records[i] == records[i]) << "record " << i;
  }
}

TEST(WalTest, ReopenForAppendResumesTheSegment) {
  TempFile file("wal-0000000001.log");
  const std::vector<WalRecord> records = AllKinds();
  {
    auto writer = WalWriter::Create(file.path(), 1, FsyncPolicy::kNone);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(records[0]).ok());
    ASSERT_TRUE((*writer)->Append(records[1]).ok());
  }
  auto first = ReadWalSegment(file.path());
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->records.size(), 2u);

  // Reopen at the scanned frontier (the recovery path) and extend.
  auto writer = WalWriter::OpenForAppend(file.path(), first->valid_bytes,
                                         FsyncPolicy::kNone);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append(records[2]).ok());
  writer->reset();

  auto read = ReadWalSegment(file.path());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_TRUE(read->records[2] == records[2]);
}

TEST(WalTest, FsyncPolicyMatrix) {
  const std::vector<WalRecord> records = AllKinds();
  struct Case {
    FsyncPolicy policy;
    uint64_t expect_fsyncs;  // after N appends + one MarkFlush
  };
  // kEveryRecord syncs per append; kEveryFlush only at the marker;
  // kNone never (only the explicit Sync() used by rotation would).
  const Case cases[] = {
      {FsyncPolicy::kEveryRecord, records.size() + 0},
      {FsyncPolicy::kEveryFlush, 1},
      {FsyncPolicy::kNone, 0},
  };
  for (const Case& c : cases) {
    TempFile file("wal-0000000002.log");
    auto writer = WalWriter::Create(file.path(), 2, c.policy);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& record : records) {
      ASSERT_TRUE((*writer)->Append(record).ok());
    }
    ASSERT_TRUE((*writer)->MarkFlush().ok());
    EXPECT_EQ((*writer)->stats().fsyncs, c.expect_fsyncs)
        << FsyncPolicyName(c.policy);
    // The unconditional Sync (snapshot rotation) counts under every
    // policy.
    ASSERT_TRUE((*writer)->Sync().ok());
    EXPECT_EQ((*writer)->stats().fsyncs, c.expect_fsyncs + 1)
        << FsyncPolicyName(c.policy);
    EXPECT_GT((*writer)->stats().bytes, 0u);
  }
}

TEST(WalTest, TornTailIsTruncatedAndResumable) {
  TempFile file("wal-0000000003.log");
  const std::vector<WalRecord> records = AllKinds();
  uint64_t full_size = 0;
  {
    auto writer = WalWriter::Create(file.path(), 3, FsyncPolicy::kNone);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& record : records) {
      ASSERT_TRUE((*writer)->Append(record).ok());
    }
    full_size = (*writer)->stats().bytes;  // header + every frame
  }
  // Chop the final frame mid-payload: the classic crash artifact.
  ASSERT_EQ(::truncate(file.path().c_str(),
                       static_cast<off_t>(full_size - 3)),
            0);
  auto read = ReadWalSegment(file.path());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->torn_tail);
  EXPECT_FALSE(read->corrupt);
  EXPECT_GT(read->truncated_bytes, 0u);
  ASSERT_EQ(read->records.size(), records.size() - 1);

  // Recovery resumes by reopening at the consistent frontier; the
  // re-appended record replaces the torn one cleanly.
  auto writer = WalWriter::OpenForAppend(file.path(), read->valid_bytes,
                                         FsyncPolicy::kNone);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(records.back()).ok());
  writer->reset();
  auto reread = ReadWalSegment(file.path());
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread->torn_tail);
  EXPECT_EQ(reread->records.size(), records.size());
}

TEST(WalTest, MidSegmentBitFlipIsCorruptionNotATail) {
  TempFile file("wal-0000000004.log");
  const std::vector<WalRecord> records = AllKinds();
  {
    auto writer = WalWriter::Create(file.path(), 4, FsyncPolicy::kNone);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& record : records) {
      ASSERT_TRUE((*writer)->Append(record).ok());
    }
  }
  // Flip one payload bit in the *second* frame: a non-final frame
  // failing its CRC is data corruption, and the scan must keep exactly
  // the records before it.
  const std::vector<uint8_t> first = EncodeWalRecord(records[0]);
  const uint64_t offset = 20 + (8 + first.size()) + 8 + 2;
  {
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }
  auto read = ReadWalSegment(file.path());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->corrupt);
  EXPECT_FALSE(read->error.empty());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_TRUE(read->records[0] == records[0]);
}

TEST(WalTest, DamagedHeaderIsReportedNotCrashed) {
  TempFile file("wal-0000000005.log");
  {
    std::ofstream f(file.path(), std::ios::binary);
    f << "NOTAWAL!garbagegarbage";
  }
  auto read = ReadWalSegment(file.path());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->corrupt);
  EXPECT_TRUE(read->records.empty());
  EXPECT_FALSE(read->error.empty());
}

TEST(WalTest, Crc32cKnownVector) {
  // RFC 3720 test vector: 32 zero bytes.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // Chaining: crc(a+b) == crc(b, crc(a)).
  const char* text = "coordination";
  uint32_t whole = Crc32c(text, 12);
  uint32_t chained = Crc32c(text + 5, 7, Crc32c(text, 5));
  EXPECT_EQ(whole, chained);
}

}  // namespace
}  // namespace entangled
