#include "workload/scenarios.h"

#include <gtest/gtest.h>

#include "algo/consistent.h"
#include "core/properties.h"

namespace entangled {
namespace {

TEST(FlightHotelScenarioTest, MatchesFigure1Text) {
  Database db;
  QuerySet set;
  FlightHotelIds ids = BuildFlightHotelScenario(&db, &set);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_EQ(set.QueryToString(ids.qc),
            "qC: {R('G', x1)} R('C', x1), Q('C', x2) :- F(x1, x), "
            "H(x2, x).");
  EXPECT_EQ(set.QueryToString(ids.qg),
            "qG: {R('C', y1), Q('C', y2)} R('G', y1), Q('G', y2) :- "
            "F(y1, 'Paris'), H(y2, 'Paris').");
  EXPECT_TRUE(set.CheckWellFormed(db).ok());
  EXPECT_TRUE(IsSafeSet(set));
  EXPECT_FALSE(IsUniqueSet(set));
}

TEST(FlightHotelScenarioTest, DatabaseHasFlightsAndHotels) {
  Database db;
  QuerySet set;
  BuildFlightHotelScenario(&db, &set);
  EXPECT_TRUE(db.Contains("F"));
  EXPECT_TRUE(db.Contains("H"));
  EXPECT_GT(db.Find("F")->size(), 0u);
  // Paris has both a flight and a hotel (so qC+qG can succeed).
  EXPECT_TRUE(db.Find("F")->AnyMatch({std::nullopt, Value::Str("Paris")}));
  EXPECT_TRUE(db.Find("H")->AnyMatch({std::nullopt, Value::Str("Paris")}));
}

TEST(MovieScenarioTest, TablesMatchSection5) {
  Database db;
  MovieScenario scenario = BuildMovieScenario(&db);
  // Friendships as listed: Chris: Jonny, Guy; etc.
  const Relation* friends = db.Find("C");
  ASSERT_NE(friends, nullptr);
  EXPECT_EQ(friends->size(), 8u);
  EXPECT_TRUE(friends->AnyMatch({Value::Str("Jonny"), Value::Str("Will")}));
  EXPECT_FALSE(friends->AnyMatch({Value::Str("Jonny"), Value::Str("Guy")}));
  // Hugo plays at three cinemas.
  const Relation* movies = db.Find("M");
  EXPECT_EQ(movies->Probe(2, Value::Str("Hugo")).size(), 3u);
  // Four queries: Chris, Guy, Jonny, Will.
  ASSERT_EQ(scenario.queries.size(), 4u);
  EXPECT_EQ(scenario.queries[0].user, "Chris");
  EXPECT_FALSE(scenario.queries[0].partners[0].is_friend_variable());
  EXPECT_EQ(scenario.queries[0].partners[0].user, "Will");
  EXPECT_TRUE(scenario.queries[3].partners[0].is_friend_variable());
  EXPECT_EQ(scenario.schema.coordination_attrs, (std::vector<size_t>{1}));
}

TEST(ConcertScenarioTest, BuildsConsistentInstance) {
  Database db;
  Rng rng(42);
  ConcertScenario scenario = BuildConcertScenario(&db, 8, &rng);
  EXPECT_EQ(scenario.queries.size(), 8u);
  EXPECT_EQ(scenario.fans.size(), 8u);
  ASSERT_TRUE(db.Contains("Flights"));
  ASSERT_TRUE(db.Contains("Fans"));
  // Every fan has a home-city constraint (source, non-coordination).
  for (const ConsistentQuery& q : scenario.queries) {
    EXPECT_TRUE(q.self_spec[2].has_value());
    ASSERT_EQ(q.partners.size(), 1u);
    EXPECT_TRUE(q.partners[0].is_friend_variable());
  }
  ConsistentCoordinator coordinator(&db, scenario.schema);
  EXPECT_TRUE(coordinator.ValidateInput(scenario.queries).ok());
}

TEST(ConcertScenarioTest, CoordinationSucceedsForUnpinnedFans) {
  Database db;
  Rng rng(7);
  ConcertScenario scenario = BuildConcertScenario(&db, 6, &rng);
  ConsistentCoordinator coordinator(&db, scenario.schema);
  auto result = coordinator.Solve(scenario.queries);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->size(), 2u);
  // The agreed value is a (destination, day) pair over the tour stops.
  ASSERT_EQ(result->agreed_value.size(), 2u);
  bool known_stop = false;
  for (const std::string& stop : scenario.tour_stops) {
    if (result->agreed_value[0] == Value::Str(stop)) known_stop = true;
  }
  EXPECT_TRUE(known_stop);
}

}  // namespace
}  // namespace entangled
