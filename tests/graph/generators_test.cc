#include "graph/generators.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/reachability.h"

namespace entangled {
namespace {

TEST(GeneratorsTest, ChainShape) {
  Digraph g = MakeChain(4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(3, 0));
  EXPECT_EQ(MakeChain(0).num_edges(), 0);
  EXPECT_EQ(MakeChain(1).num_edges(), 0);
}

TEST(GeneratorsTest, CycleShape) {
  Digraph g = MakeCycle(4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.HasEdge(3, 0));
  EXPECT_TRUE(IsStronglyConnected(g));
  EXPECT_EQ(MakeCycle(0).num_nodes(), 0);
}

TEST(GeneratorsTest, CompleteShape) {
  Digraph g = MakeComplete(5);
  EXPECT_EQ(g.num_edges(), 20);
  for (NodeId v = 0; v < 5; ++v) EXPECT_FALSE(g.HasEdge(v, v));
}

TEST(GeneratorsTest, ErdosRenyiExtremes) {
  Rng rng(1);
  EXPECT_EQ(MakeErdosRenyi(10, 0.0, &rng).num_edges(), 0);
  EXPECT_EQ(MakeErdosRenyi(10, 1.0, &rng).num_edges(), 90);
}

TEST(GeneratorsTest, ErdosRenyiDeterministicUnderSeed) {
  Rng rng1(42), rng2(42);
  Digraph a = MakeErdosRenyi(20, 0.3, &rng1);
  Digraph b = MakeErdosRenyi(20, 0.3, &rng2);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < 20; ++u) {
    EXPECT_EQ(a.Successors(u), b.Successors(u));
  }
}

TEST(GeneratorsTest, ScaleFreeEdgeCount) {
  Rng rng(5);
  // Node v attaches min(m, v) edges: 1 + 2 + 2 + ... + 2.
  Digraph g = MakeScaleFree(50, 2, &rng);
  EXPECT_EQ(g.num_edges(), 1 + 2 * 48);
  // New nodes only point backwards.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Successors(u)) EXPECT_LT(v, u);
  }
}

TEST(GeneratorsTest, ScaleFreeNoSelfLoopsNoParallel) {
  Rng rng(6);
  Digraph g = MakeScaleFree(200, 3, &rng);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> succ = g.Successors(u);
    std::sort(succ.begin(), succ.end());
    EXPECT_TRUE(std::adjacent_find(succ.begin(), succ.end()) == succ.end())
        << "parallel edge at " << u;
    EXPECT_FALSE(g.HasEdge(u, u));
  }
}

TEST(GeneratorsTest, ScaleFreeIsSkewed) {
  // Preferential attachment should concentrate in-degree: the max
  // in-degree must clearly exceed the mean.
  Rng rng(7);
  Digraph g = MakeScaleFree(400, 2, &rng);
  size_t max_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  double mean_in =
      static_cast<double>(g.num_edges()) / static_cast<double>(400);
  EXPECT_GT(static_cast<double>(max_in), 5.0 * mean_in);
}

TEST(GeneratorsTest, RandomKOutDegrees) {
  Rng rng(8);
  Digraph g = MakeRandomKOut(30, 3, &rng);
  for (NodeId u = 0; u < 30; ++u) {
    EXPECT_EQ(g.OutDegree(u), 3u);
    EXPECT_FALSE(g.HasEdge(u, u));
    std::vector<NodeId> succ = g.Successors(u);
    std::sort(succ.begin(), succ.end());
    EXPECT_TRUE(std::adjacent_find(succ.begin(), succ.end()) == succ.end());
  }
}

TEST(GeneratorsTest, RandomKOutCapsAtNMinusOne) {
  Rng rng(9);
  Digraph g = MakeRandomKOut(4, 10, &rng);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(g.OutDegree(u), 3u);
}

}  // namespace
}  // namespace entangled
