// entangled_cli — batch driver for entangled-query coordination.
//
//   entangled_cli --data instance.edb --queries requests.eq
//                 [--algorithm scc|gupta|generic|single] [--quiet]
//
// Loads a database (db/loader.h format), parses entangled queries in
// the paper's syntax (core/parser.h), runs the chosen coordination
// algorithm, independently validates the result against Definition 1,
// and prints each participant's grounded answers.
//
// Exit codes: 0 = coordinating set found; 2 = none exists;
//             1 = usage/parse/validation error.

#include <iostream>
#include <string>

#include "algo/generic_solver.h"
#include "algo/gupta_baseline.h"
#include "algo/scc_coordination.h"
#include "algo/single_connected.h"
#include "core/parser.h"
#include "core/properties.h"
#include "core/validator.h"
#include "db/loader.h"

namespace {

using namespace entangled;

struct CliOptions {
  std::string data_path;
  std::string queries_path;
  std::string algorithm = "scc";
  bool quiet = false;
};

void PrintUsage() {
  std::cerr
      << "usage: entangled_cli --data FILE.edb --queries FILE.eq\n"
      << "                     [--algorithm scc|gupta|generic|single]\n"
      << "                     [--quiet]\n\n"
      << "  --data       database instance (relation blocks; see docs)\n"
      << "  --queries    entangled queries, one '{P} H :- B.' each\n"
      << "  --algorithm  scc      SCC Coordination Algorithm (default;\n"
      << "                        safe sets, uniqueness not required)\n"
      << "               gupta    Gupta et al. baseline (safe + unique)\n"
      << "               generic  complete exponential search (any set)\n"
      << "               single   single-connected solver (Theorem 3)\n"
      << "  --quiet      print only the coordinating set\n";
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (v == nullptr) return false;
      options->data_path = v;
    } else if (arg == "--queries") {
      const char* v = next();
      if (v == nullptr) return false;
      options->queries_path = v;
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (v == nullptr) return false;
      options->algorithm = v;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return !options->data_path.empty() && !options->queries_path.empty();
}

Result<CoordinationSolution> RunAlgorithm(const CliOptions& options,
                                          const Database& db,
                                          const QuerySet& queries,
                                          std::string* stats_line) {
  if (options.algorithm == "scc") {
    SccCoordinator solver(&db);
    auto result = solver.Solve(queries);
    *stats_line = solver.stats().ToString();
    return result;
  }
  if (options.algorithm == "gupta") {
    GuptaBaseline solver(&db);
    auto result = solver.Solve(queries);
    *stats_line = solver.stats().ToString();
    return result;
  }
  if (options.algorithm == "generic") {
    GenericSolver solver(&db);
    auto result = solver.FindAny(queries);
    *stats_line = solver.stats().ToString();
    return result;
  }
  if (options.algorithm == "single") {
    SingleConnectedSolver solver(&db);
    auto result = solver.Solve(queries);
    *stats_line = solver.stats().ToString();
    return result;
  }
  return Status::InvalidArgument("unknown algorithm '", options.algorithm,
                                 "'");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 1;
  }

  Database db;
  if (Status status = LoadDatabaseFile(options.data_path, &db);
      !status.ok()) {
    std::cerr << options.data_path << ": " << status << "\n";
    return 1;
  }

  auto query_text = ReadFileToString(options.queries_path);
  if (!query_text.ok()) {
    std::cerr << options.queries_path << ": " << query_text.status()
              << "\n";
    return 1;
  }
  QuerySet queries;
  auto ids = ParseQueries(*query_text, &queries);
  if (!ids.ok()) {
    std::cerr << options.queries_path << ": " << ids.status() << "\n";
    return 1;
  }
  if (Status status = queries.CheckWellFormed(db); !status.ok()) {
    std::cerr << "ill-formed queries: " << status << "\n";
    return 1;
  }

  if (!options.quiet) {
    std::cout << "database: " << db.relation_count() << " relations, "
              << db.TotalRows() << " tuples\n"
              << "queries:  " << queries.size() << " ("
              << (IsSafeSet(queries) ? "safe" : "UNSAFE") << ", "
              << (IsUniqueSet(queries) ? "unique" : "not unique")
              << ")\n\n";
  }

  std::string stats_line;
  auto solution = RunAlgorithm(options, db, queries, &stats_line);
  if (!solution.ok()) {
    if (solution.status().IsNotFound()) {
      std::cout << "no coordinating set: " << solution.status().message()
                << "\n";
      return 2;
    }
    std::cerr << "error: " << solution.status() << "\n";
    return 1;
  }

  if (Status valid = ValidateSolution(db, queries, *solution);
      !valid.ok()) {
    std::cerr << "INTERNAL ERROR: solver returned an invalid solution: "
              << valid << "\n";
    return 1;
  }

  std::cout << "coordinating set: "
            << SolutionToString(queries, *solution) << "\n";
  if (!options.quiet) {
    for (QueryId id : solution->queries) {
      for (const Atom& answer : solution->GroundedHeads(queries, id)) {
        std::cout << "  " << queries.query(id).name << " <- " << answer
                  << "\n";
      }
    }
    std::cout << "stats: " << stats_line << "\n";
  }
  return 0;
}
