#include "common/mpsc_queue.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(MpscQueueTest, FifoSingleProducer) {
  MpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    uint64_t ticket = 0;
    ASSERT_TRUE(q.TryPush(int{i}, &ticket));
    EXPECT_EQ(ticket, static_cast<uint64_t>(i));
  }
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(&out));
  EXPECT_TRUE(q.Empty());
}

TEST(MpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  MpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(MpscQueueTest, BoundedBackpressure) {
  MpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.TryPush(int{i}));
  EXPECT_FALSE(q.TryPush(99));  // full: TryPush fails, does not block
  int out = -1;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 0);
  uint64_t ticket = 0;
  ASSERT_TRUE(q.TryPush(99, &ticket));  // space freed by the pop
  EXPECT_EQ(ticket, 4u);
  // Drain preserves ticket order across the wraparound.
  for (int expect : {1, 2, 3, 99}) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, expect);
  }
}

// Multi-producer: pop order must equal ticket order, every element
// must surface exactly once, and each producer's own pushes must
// appear in its program order.
TEST(MpscQueueTest, MultiProducerTicketOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MpscQueue<std::pair<int, int>> q(64);  // small ring: forces contention
  std::vector<std::thread> producers;
  std::vector<std::vector<uint64_t>> tickets(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &tickets, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        tickets[p].push_back(q.Push({p, i}));
      }
    });
  }
  std::vector<std::pair<int, int>> popped;
  std::vector<int> next_from(kProducers, 0);
  while (popped.size() < kProducers * kPerProducer) {
    std::pair<int, int> item;
    if (q.TryPop(&item)) {
      // Per-producer FIFO: producer p's items arrive in push order.
      EXPECT_EQ(item.second, next_from[item.first]++);
      popped.push_back(item);
    }
  }
  for (auto& t : producers) t.join();
  std::pair<int, int> item;
  EXPECT_FALSE(q.TryPop(&item));
  // Tickets are a permutation of [0, N): pop order == ticket order
  // means producer p's i-th item was popped at position tickets[p][i].
  std::vector<char> seen(kProducers * kPerProducer, 0);
  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(tickets[p].size(), static_cast<size_t>(kPerProducer));
    for (int i = 0; i < kPerProducer; ++i) {
      uint64_t t = tickets[p][i];
      ASSERT_LT(t, seen.size());
      EXPECT_FALSE(seen[t]) << "duplicate ticket " << t;
      seen[t] = 1;
      EXPECT_EQ(popped[t], (std::pair<int, int>{p, i}))
          << "pop order diverged from ticket order at ticket " << t;
    }
  }
}

TEST(MpscQueueTest, DrainOnDestroyReleasesUnconsumedItems) {
  auto tracker = std::make_shared<int>(7);
  {
    MpscQueue<std::shared_ptr<int>> q(8);
    for (int i = 0; i < 6; ++i) q.Push(tracker);
    std::shared_ptr<int> out;
    ASSERT_TRUE(q.TryPop(&out));  // consume one, leave five enqueued
    EXPECT_EQ(tracker.use_count(), 7);
  }
  // Destructor destroyed the five unconsumed copies (and `out` died
  // with the scope): only the original reference remains.
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(MpscQueueTest, NextTicketTracksPushes) {
  MpscQueue<int> q(8);
  EXPECT_EQ(q.next_ticket(), 0u);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.next_ticket(), 2u);
  int out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(q.next_ticket(), 2u);  // pops do not move the enqueue cursor
}

}  // namespace
}  // namespace entangled
