#ifndef ENTANGLED_ALGO_SCC_COORDINATION_H_
#define ENTANGLED_ALGO_SCC_COORDINATION_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algo/stats.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/timer.h"
#include "core/coordination_graph.h"
#include "core/grounding.h"
#include "core/query.h"
#include "core/unify.h"
#include "db/database.h"

namespace entangled {

/// \brief Scores a candidate coordinating set; the sweep returns the
/// highest-scoring successful set (ties break towards the earlier
/// discovery).  Discovery order is the caller's subset-id order: the
/// engine hands the solver queries sorted by schedule key (global id in
/// the sharded service), so tie-breaks are deterministic and identical
/// across shard layouts.  §4 suggests application-specific criteria —
/// "the set with the most gold-status passengers", "the set containing
/// some VIP client" — all expressible as scores.
using CoordinationScore =
    std::function<double(const QuerySet&, const std::vector<QueryId>&)>;

/// The paper's default criterion: maximum size.
CoordinationScore MaxSizeScore();

/// Prefers sets containing `vip`, then larger sets: score is |S| plus a
/// dominating bonus when the VIP participates.
CoordinationScore VipScore(QueryId vip);

/// Weighted sum of per-query weights (e.g. gold-status passengers);
/// missing ids weigh `default_weight`.
CoordinationScore WeightedScore(std::vector<double> weights,
                                double default_weight = 0.0);

/// \brief Options for SccCoordinator.
struct SccOptions {
  /// Verify the safety precondition (Definition 2) and fail with
  /// FailedPrecondition when violated.  Benchmarks that construct
  /// safe-by-construction workloads may disable the check.
  bool check_safety = true;

  /// Iteratively drop queries owning a postcondition that unifies with
  /// no remaining head before building the components graph (the
  /// implementation's pre-processing step, §6.1).
  bool prune_postconditions = true;

  /// Selection criterion among the successful sets (null = MaxSizeScore,
  /// the paper's default).
  CoordinationScore score;
};

/// \brief Caller-owned cross-Solve cache of per-component sweep
/// outcomes (the streaming engine keeps one per live component).
///
/// An entry memoizes the expensive tail of one reverse-topological
/// sweep step — unifying R(c), building the combined body, and the
/// single database FindOne — keyed on the exact reachable member set
/// R(c).  Reuse is sound because the caller guarantees (a) QueryIds are
/// stable for the memo's lifetime (the engine's persistent component
/// subsets; the memo must be dropped whenever ids are re-densified) and
/// (b) queries are immutable once admitted, while the solver itself
/// requires check_safety + prune_postconditions, which pin every
/// postcondition of R(c) to exactly one live target inside R(c): an
/// identical key therefore replays the identical unifier and body, and
/// the stored relation version stamps prove the database slice is
/// unchanged, so the stored verdict (and witness) is byte-identical to
/// a recompute.  Entries whose stamps mismatch are recomputed in place.
struct EvalMemo {
  struct Entry {
    bool unified = false;   ///< the unifier of R(c) exists (DB-independent)
    bool grounded = false;  ///< FindOne succeeded; `witness` is valid
    Substitution subst{0};
    Binding witness;
    /// (relation, version at compute time) per distinct body relation.
    std::vector<std::pair<const Relation*, uint64_t>> stamps;
  };
  /// Keyed on R(c), sorted ascending.
  std::unordered_map<std::vector<QueryId>, Entry, VectorHash> entries;

  void Clear() { entries.clear(); }
  bool empty() const { return entries.empty(); }
};

/// \brief The SCC Coordination Algorithm (paper §4): finds a
/// coordinating set for a *safe* (but not necessarily unique) set of
/// entangled queries.
///
/// Pipeline: pre-clean unsatisfiable postconditions; build the
/// coordination graph; contract strongly connected components into the
/// components DAG G'; sweep G' in reverse topological order, unifying
/// each component with its successors' combined queries and grounding
/// the result with a single database query; finally return the
/// successful component with the largest reachable query set R(q).
///
/// Guarantee (paper §4): a coordinating set is found whenever one
/// exists, and the returned set has maximum size among
/// { R(q) | q in Q } — maximizing over *all* coordinating sets is
/// NP-hard (Theorem 2).
///
/// Cost: at most one database query per SCC plus O(|Q|^2) processing.
class SccCoordinator {
 public:
  explicit SccCoordinator(const Database* db, SccOptions options = {});

  /// Solves the instance.  Status outcomes:
  ///  * OK               — a coordinating set (with Definition-1 witness)
  ///  * NotFound         — no coordinating set exists among {R(q)}
  ///  * FailedPrecondition — the set is unsafe (when check_safety).
  Result<CoordinationSolution> Solve(const QuerySet& set);

  /// Same, but over a caller-supplied extended coordination graph view:
  /// `edges` must be exactly the unifiable (postcondition, head) pairs
  /// of `set` (e.g. sliced out of an incremental
  /// ExtendedCoordinationGraph, core/coordination_graph.h).  Skips the
  /// quadratic graph rebuild — the streaming engine's per-component
  /// evaluations stop re-deriving edges its persistent index already
  /// knows.  Safety is still checked from the edge multiplicities when
  /// options.check_safety, and for safe sets edge order does not affect
  /// the result (each postcondition has at most one target).  Callers
  /// that disable the safety check and pass an *unsafe* set should
  /// supply edges in the batch constructor's (from, post_index, to,
  /// head_index) lexicographic order to match Solve(set) exactly, since
  /// an ambiguous postcondition resolves to its first listed target.
  ///
  /// When `memo` is non-null (and the options keep check_safety and
  /// prune_postconditions on — otherwise it is ignored), sweep steps
  /// whose R(c) and relation stamps match a cached entry skip
  /// unification, body construction, and the database round-trip, and
  /// fresh steps populate the memo; see EvalMemo for the soundness
  /// contract the caller owes.
  Result<CoordinationSolution> Solve(const QuerySet& set,
                                     const std::vector<ExtendedEdge>& edges,
                                     EvalMemo* memo = nullptr);

  /// Work counters of the last Solve call.
  const SolverStats& stats() const { return stats_; }

  /// The reachable query sets of every component whose combined query
  /// grounded successfully during the last Solve (each is a coordinating
  /// set; Solve returned the largest).  Mirrors the paper's observation
  /// that the sweep discovers a *list* of coordinating sets.
  const std::vector<std::vector<QueryId>>& successful_sets() const {
    return successful_sets_;
  }

 private:
  /// Shared pipeline behind both Solve overloads; `graph_timer` covers
  /// whatever graph work already happened (batch ECG construction).
  Result<CoordinationSolution> SolveWithEdges(
      const QuerySet& set, const std::vector<ExtendedEdge>& edges,
      const WallTimer& total_timer, const WallTimer& graph_timer,
      EvalMemo* memo = nullptr);

  const Database* db_;
  SccOptions options_;
  SolverStats stats_;
  std::vector<std::vector<QueryId>> successful_sets_;
};

}  // namespace entangled

#endif  // ENTANGLED_ALGO_SCC_COORDINATION_H_
