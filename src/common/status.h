#ifndef ENTANGLED_COMMON_STATUS_H_
#define ENTANGLED_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace entangled {

/// \brief Canonical error codes, modelled after the Arrow/RocksDB Status
/// idiom.  Library code reports recoverable failures through Status (or
/// Result<T>); exceptions are reserved for programmer errors via CHECK.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error outcome carrying a code and a message.
///
/// Status is cheap to copy in the OK case (no allocation) and supports
/// the usual factory functions:
///
///     Status DoThing() {
///       if (bad) return Status::InvalidArgument("bad thing: ", detail);
///       return Status::OK();
///     }
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status FailedPrecondition(Args&&... args) {
    return Make(StatusCode::kFailedPrecondition, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unimplemented(Args&&... args) {
    return Make(StatusCode::kUnimplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::string message;
    (AppendPiece(&message, std::forward<Args>(args)), ...);
    return Status(code, std::move(message));
  }
  static void AppendPiece(std::string* out, const std::string& piece) {
    out->append(piece);
  }
  static void AppendPiece(std::string* out, const char* piece) {
    out->append(piece);
  }
  static void AppendPiece(std::string* out, char piece) {
    out->push_back(piece);
  }
  template <typename T>
  static void AppendPiece(std::string* out, const T& piece) {
    out->append(std::to_string(piece));
  }

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

/// Propagates a non-OK Status from an expression out of the enclosing
/// function.
#define ENTANGLED_RETURN_IF_ERROR(expr)                    \
  do {                                                     \
    ::entangled::Status _status = (expr);                  \
    if (!_status.ok()) return _status;                     \
  } while (false)

}  // namespace entangled

#endif  // ENTANGLED_COMMON_STATUS_H_
