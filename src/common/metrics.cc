#include "common/metrics.h"

#include <cstdio>

namespace entangled {
namespace {

void AppendUint(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  *out += buf;
}

void AppendHistogram(std::string* out, const LatencyHistogram& h) {
  *out += "{\"count\":";
  AppendUint(out, h.count());
  *out += ",\"total_ns\":";
  AppendUint(out, h.total_ns());
  *out += ",\"max_ns\":";
  AppendUint(out, h.max_ns());
  *out += ",\"p50_ns\":";
  AppendUint(out, h.ApproxQuantileNs(0.5));
  *out += ",\"p99_ns\":";
  AppendUint(out, h.ApproxQuantileNs(0.99));
  // Buckets as [upper_edge_exponent, count] pairs for the non-empty
  // buckets only: the document stays compact and every entry is
  // self-describing (upper edge = 2^exponent ns).
  *out += ",\"buckets\":[";
  bool first = true;
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    if (!first) *out += ",";
    first = false;
    *out += "[";
    AppendUint(out, i);
    *out += ",";
    AppendUint(out, h.bucket(i));
    *out += "]";
  }
  *out += "]}";
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(counters[i].first) + "\":";
    AppendUint(&out, counters[i].second);
  }
  out += "},\"gauges\":{\"pending\":";
  AppendUint(&out, gauges.pending);
  out += ",\"intake_depth\":";
  AppendUint(&out, gauges.intake_depth);
  out += ",\"live_shards\":";
  AppendUint(&out, gauges.live_shards);
  out += ",\"group_merges\":";
  AppendUint(&out, gauges.group_merges);
  out += ",\"queries_migrated\":";
  AppendUint(&out, gauges.queries_migrated);
  out += ",\"queries_retained\":";
  AppendUint(&out, gauges.queries_retained);
  out += ",\"merge_events\":";
  AppendUint(&out, gauges.merge_events);
  out += ",\"merge_migrated_max\":";
  AppendUint(&out, gauges.merge_migrated_max);
  out += ",\"shards\":[";
  for (size_t i = 0; i < gauges.shards.size(); ++i) {
    if (i > 0) out += ",";
    const ShardGauge& s = gauges.shards[i];
    out += "{\"slot\":";
    AppendUint(&out, static_cast<uint64_t>(s.slot < 0 ? 0 : s.slot));
    out += ",\"pending\":";
    AppendUint(&out, s.pending);
    out += ",\"evaluations\":";
    AppendUint(&out, s.evaluations);
    out += "}";
  }
  out += "]},\"latency\":{";
  for (size_t i = 0; i < latency.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(latency[i].first) + "\":";
    AppendHistogram(&out, latency[i].second);
  }
  out += "}}";
  return out;
}

}  // namespace entangled
