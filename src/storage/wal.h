#ifndef ENTANGLED_STORAGE_WAL_H_
#define ENTANGLED_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace entangled {

/// CRC32C (Castagnoli) over `data`, software table implementation.
/// `seed` chains partial checksums: Crc32c(b, Crc32c(a)) == Crc32c(a+b).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// \brief When the write-ahead log calls fsync(2).
///
/// The policy trades the durability horizon against submission
/// throughput (bench_wal quantifies the gap):
///
///  * kEveryRecord — fsync after every appended record.  A crash loses
///    at most the record being appended (the classic torn tail).
///  * kEveryFlush — fsync at service flush markers and snapshots.  A
///    crash may lose the events since the last flush; recovery is still
///    consistent because the log is replayed strictly in order.
///  * kNone — never fsync (the OS flushes at its leisure).  Survives
///    process death (the page cache persists) but not power loss.
enum class FsyncPolicy : uint8_t {
  kNone = 0,
  kEveryFlush = 1,
  kEveryRecord = 2,
};

const char* FsyncPolicyName(FsyncPolicy policy);

/// \brief One logged admitted event.  The WAL records *admitted intent*
/// (texts, ids, session tags), never engine internals — the
/// deterministic engine re-derives everything else on replay.
struct WalRecord {
  enum class Kind : uint8_t {
    kSubmit = 1,         ///< one admitted query: id + session tag + text
    kSubmitBatch = 2,    ///< all-or-nothing batch: tag + (id, text) list
    kCancel = 3,         ///< withdrawal of a pending query: id + tag
    kSetEvaluateEvery = 4,  ///< cadence change: new rate in `value`
    kFlush = 5,             ///< explicit service flush marker
    /// Cumulative count of deliveries forwarded downstream, appended
    /// after any call that delivered.  Recovery replays the tail with
    /// deliveries below this watermark suppressed (they already reached
    /// clients) and re-forwards only the ones beyond it.
    kDeliveryMark = 6,
  };

  Kind kind = Kind::kFlush;
  int64_t id = -1;       ///< kSubmit / kCancel: service-global query id
  int64_t session = -1;  ///< owning session tag; -1 = direct submission
  std::string text;      ///< kSubmit: query text (paper syntax)
  /// kSubmitBatch: (global id, text) per member, in submission order.
  std::vector<std::pair<int64_t, std::string>> batch;
  uint64_t value = 0;  ///< kSetEvaluateEvery rate / kDeliveryMark count

  bool operator==(const WalRecord& other) const;
};

/// \brief Append/durability counters of one WalWriter (monotone over
/// the writer's lifetime; folded into MetricsSnapshot by the durable
/// service).
struct WalStats {
  uint64_t appended_records = 0;
  uint64_t bytes = 0;  ///< payload + framing + header bytes written
  uint64_t fsyncs = 0;

  /// Field-wise accumulation (rotated-out segments fold into totals).
  WalStats& operator+=(const WalStats& other) {
    appended_records += other.appended_records;
    bytes += other.bytes;
    fsyncs += other.fsyncs;
    return *this;
  }
};

/// \brief Appender for one WAL segment file: length-prefixed,
/// CRC32C-framed records behind a configurable fsync policy.
///
/// Layout: a 20-byte header (magic "EWAL0001", little-endian u64
/// epoch, u32 CRC32C of the preceding 16 bytes) followed by frames of
/// `u32 payload_len | u32 payload_crc | payload`.  All integers are
/// little-endian.
class WalWriter {
 public:
  /// Creates (or truncates) `path` and writes the segment header.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   uint64_t epoch,
                                                   FsyncPolicy policy);

  /// Reopens an existing segment for appending after `valid_bytes`
  /// (recovery truncates a torn tail this way before resuming).
  static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path, uint64_t valid_bytes, FsyncPolicy policy);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one framed record (fsyncs under kEveryRecord).
  Status Append(const WalRecord& record);

  /// Explicit durability point: fsync under kEveryFlush (kEveryRecord
  /// is already durable; kNone ignores this too).
  Status MarkFlush();

  /// Unconditional fsync (used by snapshot rotation regardless of
  /// policy, so a snapshot never outruns its log).
  Status Sync();

  const WalStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, FsyncPolicy policy)
      : path_(std::move(path)), fd_(fd), policy_(policy) {}

  Status WriteAll(const void* data, size_t size);

  std::string path_;
  int fd_ = -1;
  FsyncPolicy policy_;
  WalStats stats_;
};

/// \brief Everything one segment scan produced, with the tail/corruption
/// classification recovery needs to pick a consistent point.
struct WalReadResult {
  std::vector<WalRecord> records;  ///< the consistent prefix
  uint64_t epoch = 0;              ///< from the segment header
  /// Bytes of `path` covered by the header + the consistent prefix;
  /// recovery reopens the segment for append at this offset.
  uint64_t valid_bytes = 0;
  /// A partial final frame (or a CRC-failing final frame) was dropped:
  /// the classic torn tail of a crash mid-append.  `truncated_bytes`
  /// counts the dropped bytes.  Recovery proceeds from the prefix.
  bool torn_tail = false;
  uint64_t truncated_bytes = 0;
  /// A frame strictly before the tail failed its CRC (or carried a
  /// malformed payload): data corruption, not a crash artifact.  The
  /// scan stops at the last consistent record; records beyond the
  /// corruption are unrecoverable from this segment.
  bool corrupt = false;
  std::string error;  ///< human-readable detail for `corrupt` / bad header
};

/// Scans one segment, returning the longest consistent record prefix
/// plus the torn-tail/corruption classification.  Never fails hard on
/// damaged content — a missing or unreadable file is the only Status
/// error.
Result<WalReadResult> ReadWalSegment(const std::string& path);

/// Serialized frame payload of `record` (exposed for tests that build
/// corrupt segments byte by byte).
std::vector<uint8_t> EncodeWalRecord(const WalRecord& record);

}  // namespace entangled

#endif  // ENTANGLED_STORAGE_WAL_H_
