#include "reductions/theorem2.h"

#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "algo/scc_coordination.h"
#include "core/properties.h"
#include "core/validator.h"
#include "reductions/dpll.h"

namespace entangled {
namespace {

CnfFormula Parse(int num_vars, std::vector<std::vector<int>> clauses) {
  CnfFormula f;
  f.num_vars = num_vars;
  for (const auto& clause : clauses) {
    Clause c;
    for (int lit : clause) c.push_back(Literal{lit});
    f.clauses.push_back(std::move(c));
  }
  return f;
}

TEST(Theorem2Test, EncodingShapeAndSafety) {
  // The Figure-9 example: C1 = x1 | ~x2 | x3, C2 = x2 | ~x3 | ~x4.
  CnfFormula f = Parse(4, {{1, -2, 3}, {2, -3, -4}});
  QuerySet set;
  Database db;
  Theorem2Encoding enc = EncodeTheorem2(f, &set, &db);
  EXPECT_EQ(set.size(), 4u + 2u * 3u);
  EXPECT_EQ(enc.SatisfiableSize(f), 6u);
  // The whole point of Theorem 2: the set is SAFE yet max-coordination
  // is NP-hard.
  EXPECT_TRUE(IsSafeSet(set));

  // Staircase postcondition counts: 1, 2, 3.
  for (size_t c = 0; c < 2; ++c) {
    for (size_t pos = 0; pos < 3; ++pos) {
      EXPECT_EQ(set.query(enc.clause_queries[c][pos]).postconditions.size(),
                pos + 1);
    }
  }
}

TEST(Theorem2Test, MaxSetSizeEqualsKPlusMIffSatisfiable) {
  struct Case {
    CnfFormula formula;
    bool satisfiable;
  };
  std::vector<Case> cases;
  cases.push_back({Parse(4, {{1, -2, 3}, {2, -3, -4}}), true});
  cases.push_back({Parse(3, {{1, 2, 3}, {-1, -2, -3}}), true});
  // The smallest unsatisfiable 3SAT instance needs 8 clauses — beyond
  // the brute-force oracle — so use the 4-clause unsatisfiable 2SAT
  // core instead (the staircase gadget is width-agnostic).
  cases.push_back(
      {Parse(2, {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}), false});

  for (const Case& test_case : cases) {
    ASSERT_EQ(DpllSolver().Solve(test_case.formula).has_value(),
              test_case.satisfiable);
    QuerySet set;
    Database db;
    Theorem2Encoding enc = EncodeTheorem2(test_case.formula, &set, &db);
    BruteForceSolver solver(&db);
    auto maximum = solver.FindMaximum(set);
    ASSERT_TRUE(maximum.has_value());  // var queries alone coordinate
    if (test_case.satisfiable) {
      EXPECT_EQ(maximum->queries.size(),
                enc.SatisfiableSize(test_case.formula));
      TruthAssignment decoded =
          enc.DecodeAssignment(test_case.formula, *maximum);
      EXPECT_TRUE(Satisfies(test_case.formula, decoded));
    } else {
      EXPECT_LT(maximum->queries.size(),
                enc.SatisfiableSize(test_case.formula));
    }
    EXPECT_TRUE(ValidateSolution(db, set, *maximum).ok());
  }
}

TEST(Theorem2Test, AtMostOneLiteralQueryPerClause) {
  CnfFormula f = Parse(3, {{1, -2, 3}});
  QuerySet set;
  Database db;
  Theorem2Encoding enc = EncodeTheorem2(f, &set, &db);
  BruteForceSolver solver(&db);
  auto all = solver.AllCoordinatingSets(set);
  EXPECT_FALSE(all.empty());
  for (const auto& subset : all) {
    CoordinationSolution probe;
    probe.queries = subset;
    int witnesses = 0;
    for (QueryId q : enc.clause_queries[0]) {
      if (probe.Contains(q)) ++witnesses;
    }
    EXPECT_LE(witnesses, 1) << "clause doubly witnessed";
  }
}

TEST(Theorem2Test, SccAlgorithmOnlyGuaranteesReachableSets) {
  // Theorem 2 is exactly why the SCC algorithm's guarantee is capped at
  // max over {R(q)}: on the encoding, R(q) of a literal query is tiny
  // (itself + its var queries), far below k + m.
  CnfFormula f = Parse(4, {{1, -2, 3}, {2, -3, -4}});
  QuerySet set;
  Database db;
  Theorem2Encoding enc = EncodeTheorem2(f, &set, &db);
  SccCoordinator coordinator(&db);
  auto scc_result = coordinator.Solve(set);
  ASSERT_TRUE(scc_result.ok()) << scc_result.status();
  EXPECT_TRUE(ValidateSolution(db, set, *scc_result).ok());
  BruteForceSolver brute(&db);
  auto maximum = brute.FindMaximum(set);
  ASSERT_TRUE(maximum.has_value());
  EXPECT_LT(scc_result->queries.size(), maximum->queries.size());
}

TEST(Theorem2DeathTest, RejectsRepeatedVariablesInClause) {
  CnfFormula repeated = Parse(2, {{1, -1, 2}});
  QuerySet set;
  Database db;
  EXPECT_DEATH(EncodeTheorem2(repeated, &set, &db), "distinct variables");
}

}  // namespace
}  // namespace entangled
