#include "core/query.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace entangled {

std::vector<VarId> EntangledQuery::Variables() const {
  std::vector<VarId> vars;
  std::unordered_set<VarId> seen;
  auto collect = [&](const std::vector<Atom>& atoms) {
    for (const Atom& atom : atoms) {
      for (const Term& term : atom.terms) {
        if (term.is_variable() && seen.insert(term.var()).second) {
          vars.push_back(term.var());
        }
      }
    }
  };
  collect(postconditions);
  collect(head);
  collect(body);
  return vars;
}

VarId QuerySet::NewVar(std::string name) {
  var_names_.push_back(std::move(name));
  return static_cast<VarId>(var_names_.size() - 1);
}

const std::string& QuerySet::var_name(VarId v) const {
  ENTANGLED_CHECK(v >= 0 && static_cast<size_t>(v) < var_names_.size())
      << "unknown variable " << v;
  return var_names_[static_cast<size_t>(v)];
}

QueryId QuerySet::AddQuery(EntangledQuery query) {
  query.id = static_cast<QueryId>(queries_.size());
  // Every variable mentioned must have been allocated by this set.
  for (VarId v : query.Variables()) {
    ENTANGLED_CHECK(v >= 0 && static_cast<size_t>(v) < var_names_.size())
        << "query " << query.name << " uses foreign variable " << v;
  }
  queries_by_name_.emplace(query.name, query.id);  // first added wins
  queries_.push_back(std::move(query));
  return queries_.back().id;
}

const EntangledQuery& QuerySet::query(QueryId id) const {
  ENTANGLED_CHECK(id >= 0 && static_cast<size_t>(id) < queries_.size())
      << "unknown query " << id;
  return queries_[static_cast<size_t>(id)];
}

EntangledQuery& QuerySet::mutable_query(QueryId id) {
  ENTANGLED_CHECK(id >= 0 && static_cast<size_t>(id) < queries_.size())
      << "unknown query " << id;
  return queries_[static_cast<size_t>(id)];
}

QueryId QuerySet::FindByName(const std::string& name) const {
  auto it = queries_by_name_.find(name);
  return it == queries_by_name_.end() ? -1 : it->second;
}

QuerySet QuerySet::Subset(const std::vector<QueryId>& ids,
                          std::vector<QueryId>* original_ids,
                          std::vector<VarId>* original_vars) const {
  return Subset(ids.data(), ids.size(), original_ids, original_vars);
}

QuerySet QuerySet::Subset(const QueryId* ids, size_t count,
                          std::vector<QueryId>* original_ids,
                          std::vector<VarId>* original_vars) const {
  QuerySet subset;
  if (original_ids != nullptr) original_ids->clear();
  if (original_vars != nullptr) original_vars->clear();
  // Dense remap, allocated per first occurrence: touches only the
  // variables the chosen queries actually use — never the full
  // variable table, whose size grows with the whole engine.
  std::unordered_map<VarId, VarId> remap;
  auto remap_term = [&](const Term& term) {
    if (term.is_constant()) return term;
    const VarId v = term.var();
    auto [it, inserted] = remap.emplace(v, VarId{0});
    if (inserted) {
      it->second = subset.NewVar(var_name(v));
      if (original_vars != nullptr) original_vars->push_back(v);
    }
    return Term::Var(it->second);
  };
  auto remap_atoms = [&](std::vector<Atom>* atoms) {
    for (Atom& atom : *atoms) {
      for (Term& term : atom.terms) term = remap_term(term);
    }
  };
  for (size_t i = 0; i < count; ++i) {
    const QueryId id = ids[i];
    EntangledQuery copy = query(id);
    remap_atoms(&copy.postconditions);
    remap_atoms(&copy.head);
    remap_atoms(&copy.body);
    subset.AddQuery(std::move(copy));  // AddQuery renumbers
    if (original_ids != nullptr) original_ids->push_back(id);
  }
  return subset;
}

std::vector<QueryId> QuerySet::AdoptQueries(
    const QuerySet& src, const std::vector<QueryId>& ids,
    std::vector<std::pair<VarId, VarId>>* var_map) {
  ENTANGLED_CHECK(&src != this) << "cannot adopt queries from the same set";
  if (var_map != nullptr) var_map->clear();
  std::unordered_map<VarId, VarId> remap;
  auto remap_term = [&](const Term& term) {
    if (term.is_constant()) return term;
    const VarId v = term.var();
    auto [it, inserted] = remap.emplace(v, VarId{0});
    if (inserted) {
      it->second = NewVar(src.var_name(v));
      if (var_map != nullptr) var_map->emplace_back(v, it->second);
    }
    return Term::Var(it->second);
  };
  auto remap_atoms = [&](std::vector<Atom>* atoms) {
    for (Atom& atom : *atoms) {
      for (Term& term : atom.terms) term = remap_term(term);
    }
  };
  std::vector<QueryId> adopted;
  adopted.reserve(ids.size());
  for (QueryId id : ids) {
    EntangledQuery copy = src.query(id);
    // Postconditions, head, body: the first-occurrence order documented
    // in EntangledQuery::Variables (and followed by the parser).
    remap_atoms(&copy.postconditions);
    remap_atoms(&copy.head);
    remap_atoms(&copy.body);
    adopted.push_back(AddQuery(std::move(copy)));
  }
  return adopted;
}

std::vector<QueryId> QuerySet::AdoptAll(
    const QuerySet& src, std::vector<std::pair<VarId, VarId>>* var_map) {
  std::vector<QueryId> ids(src.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<QueryId>(i);
  return AdoptQueries(src, ids, var_map);
}

std::string QuerySet::TermToString(const Term& term) const {
  if (term.is_constant()) return term.constant().ToString(/*quote=*/true);
  return var_name(term.var());
}

std::string QuerySet::AtomToString(const Atom& atom) const {
  std::ostringstream out;
  out << atom.relation << "(";
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) out << ", ";
    out << TermToString(atom.terms[i]);
  }
  out << ")";
  return out.str();
}

std::string QuerySet::AtomListToString(const std::vector<Atom>& atoms,
                                       const std::string& empty) const {
  if (atoms.empty()) return empty;
  std::vector<std::string> pieces;
  pieces.reserve(atoms.size());
  std::ostringstream out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out << ", ";
    out << AtomToString(atoms[i]);
  }
  return out.str();
}

std::string QuerySet::QueryToString(QueryId id) const {
  const EntangledQuery& q = query(id);
  std::ostringstream out;
  if (!q.name.empty()) out << q.name << ": ";
  out << "{" << AtomListToString(q.postconditions, "") << "} "
      << AtomListToString(q.head, "") << " :- "
      << AtomListToString(q.body, "") << ".";
  return out.str();
}

std::string QuerySet::ToString() const {
  std::ostringstream out;
  for (const EntangledQuery& q : queries_) {
    out << QueryToString(q.id) << "\n";
  }
  return out.str();
}

Status QuerySet::CheckWellFormed(const Database& db) const {
  // Answer-relation arities must be consistent set-wide so that heads
  // and postconditions can unify.
  std::unordered_map<std::string, size_t> answer_arity;
  for (const EntangledQuery& q : queries_) {
    for (const Atom& atom : q.body) {
      const Relation* relation = db.Find(atom.relation);
      if (relation == nullptr) {
        return Status::InvalidArgument(
            "query ", q.name, ": body relation ", atom.relation,
            " is not in the database schema (property (i) of §2.1)");
      }
      if (relation->arity() != atom.arity()) {
        return Status::InvalidArgument(
            "query ", q.name, ": body atom ", atom.ToString(), " has arity ",
            atom.arity(), " but relation has arity ", relation->arity());
      }
    }
    auto check_answer = [&](const Atom& atom,
                            const char* where) -> Status {
      if (db.Contains(atom.relation)) {
        return Status::InvalidArgument(
            "query ", q.name, ": ", where, " relation ", atom.relation,
            " clashes with the database schema (property (ii) of §2.1)");
      }
      auto [it, inserted] = answer_arity.emplace(atom.relation, atom.arity());
      if (!inserted && it->second != atom.arity()) {
        return Status::InvalidArgument(
            "query ", q.name, ": answer relation ", atom.relation,
            " used with arities ", it->second, " and ", atom.arity());
      }
      return Status::OK();
    };
    for (const Atom& atom : q.postconditions) {
      ENTANGLED_RETURN_IF_ERROR(check_answer(atom, "postcondition"));
    }
    for (const Atom& atom : q.head) {
      ENTANGLED_RETURN_IF_ERROR(check_answer(atom, "head"));
    }
  }
  return Status::OK();
}

QueryBuilder::QueryBuilder(QuerySet* set, std::string name) : set_(set) {
  ENTANGLED_CHECK(set != nullptr);
  query_.name = std::move(name);
}

VarId QueryBuilder::Var(std::string name) {
  return set_->NewVar(std::move(name));
}

QueryBuilder& QueryBuilder::Post(std::string relation,
                                 std::vector<Term> terms) {
  query_.postconditions.emplace_back(std::move(relation), std::move(terms));
  return *this;
}

QueryBuilder& QueryBuilder::Head(std::string relation,
                                 std::vector<Term> terms) {
  query_.head.emplace_back(std::move(relation), std::move(terms));
  return *this;
}

QueryBuilder& QueryBuilder::Body(std::string relation,
                                 std::vector<Term> terms) {
  query_.body.emplace_back(std::move(relation), std::move(terms));
  return *this;
}

QueryId QueryBuilder::Build() {
  ENTANGLED_CHECK(!built_) << "QueryBuilder::Build called twice";
  built_ = true;
  return set_->AddQuery(std::move(query_));
}

}  // namespace entangled
