#ifndef ENTANGLED_GRAPH_REACHABILITY_H_
#define ENTANGLED_GRAPH_REACHABILITY_H_

#include <vector>

#include "graph/digraph.h"

namespace entangled {

/// Nodes reachable from `source` (including `source` itself), as a
/// characteristic vector.  BFS, O(V + E).
std::vector<bool> ReachableFrom(const Digraph& graph, NodeId source);

/// Whether every ordered pair of nodes is connected by a directed path —
/// the paper's *uniqueness* condition on coordination graphs (Def. 3).
bool IsStronglyConnected(const Digraph& graph);

/// Counts the simple paths from `source` to `target`, stopping early at
/// `limit`.  Exponential in the worst case; used by the
/// single-connectedness test (Def. 6) on small query sets.
int CountSimplePaths(const Digraph& graph, NodeId source, NodeId target,
                     int limit);

}  // namespace entangled

#endif  // ENTANGLED_GRAPH_REACHABILITY_H_
