#ifndef ENTANGLED_BENCH_BENCH_UTIL_H_
#define ENTANGLED_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace entangled {
namespace benchutil {

/// Mean wall-clock milliseconds of `reps` runs of `fn` (after one
/// untimed warm-up).
inline double MeanMillis(int reps, const std::function<void()>& fn) {
  fn();  // warm-up: first-touch allocations, lazy indexes
  WallTimer timer;
  for (int r = 0; r < reps; ++r) fn();
  return timer.ElapsedMillis() / reps;
}

/// Prints the header of a paper-series table:
///
///   === Figure 4: ... ===
///   n,time_ms,db_queries
inline void PrintSeriesHeader(const std::string& title,
                              const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : ",", columns[i].c_str());
  }
  std::printf("\n");
}

/// Prints one CSV row; integral-looking values print without decimals.
inline void PrintRow(const std::vector<double>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) std::printf(",");
    double v = values[i];
    if (v == static_cast<double>(static_cast<long long>(v))) {
      std::printf("%lld", static_cast<long long>(v));
    } else {
      std::printf("%.4f", v);
    }
  }
  std::printf("\n");
}

inline void PrintNote(const std::string& note) {
  std::printf("# %s\n", note.c_str());
}

/// Emits one machine-readable JSON record per line, tagged BENCH_JSON
/// so perf-tracking tooling can grep it out of the human-readable
/// output:
///
///   BENCH_JSON {"bench":"engine_eager","num_pairs":25,"qps":123.4}
///
/// Integral-looking values print without decimals (matching PrintRow).
/// Every record is stamped with the host's hardware_threads (unless the
/// caller already supplied one), so parallel-speedup trajectories can
/// be interpreted against the machine that produced them.
inline void PrintJsonRecord(
    const std::string& bench,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::printf("BENCH_JSON {\"bench\":\"%s\"", bench.c_str());
  bool has_hardware_threads = false;
  for (const auto& [key, value] : fields) {
    if (key == "hardware_threads") has_hardware_threads = true;
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::printf(",\"%s\":%lld", key.c_str(),
                  static_cast<long long>(value));
    } else {
      std::printf(",\"%s\":%.4f", key.c_str(), value);
    }
  }
  if (!has_hardware_threads) {
    std::printf(",\"hardware_threads\":%u",
                std::thread::hardware_concurrency());
  }
  std::printf("}\n");
}

}  // namespace benchutil
}  // namespace entangled

#endif  // ENTANGLED_BENCH_BENCH_UTIL_H_
