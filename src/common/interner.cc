#include "common/interner.h"

#include <mutex>

#include "common/logging.h"

namespace entangled {

Symbol StringInterner::Intern(std::string_view text) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = index_.find(text);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = index_.find(text);  // lost an intern race?
  if (it != index_.end()) return it->second;
  Symbol symbol = static_cast<Symbol>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), symbol);
  return symbol;
}

Symbol StringInterner::Lookup(std::string_view text) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = index_.find(text);
  return it == index_.end() ? kInvalidSymbol : it->second;
}

const std::string& StringInterner::ToString(Symbol symbol) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  ENTANGLED_CHECK(symbol >= 0 &&
                  static_cast<size_t>(symbol) < strings_.size())
      << "unknown symbol " << symbol;
  return strings_[static_cast<size_t>(symbol)];
}

bool StringInterner::Contains(Symbol symbol) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return symbol >= 0 && static_cast<size_t>(symbol) < strings_.size();
}

size_t StringInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return strings_.size();
}

StringInterner& GlobalValueInterner() {
  static StringInterner* interner = new StringInterner();
  return *interner;
}

}  // namespace entangled
