#ifndef ENTANGLED_CORE_GROUNDING_H_
#define ENTANGLED_CORE_GROUNDING_H_

#include <optional>
#include <string>
#include <vector>

#include "core/query.h"
#include "core/unify.h"
#include "db/evaluator.h"

namespace entangled {

/// \brief The outcome every coordination algorithm produces: a
/// coordinating set S (query ids) plus the witnessing assignment h of
/// Definition 1, total on the variables of S.
struct CoordinationSolution {
  std::vector<QueryId> queries;  ///< sorted ascending, non-empty
  Binding assignment;            ///< h: variables of `queries` -> values

  bool Contains(QueryId q) const;

  /// The grounded head atoms of query q under h — the "answers" returned
  /// to the user who posed q (e.g. R(101, 'Gwyneth') carries the chosen
  /// flight id).
  std::vector<Atom> GroundedHeads(const QuerySet& set, QueryId q) const;
};

/// \brief Replaces every variable by its assigned value; CHECK-fails on
/// unassigned variables.
Atom GroundAtom(const Atom& atom, const Binding& assignment);

/// Human-readable rendering of a solution ("{qC, qG} with h = {...}").
std::string SolutionToString(const QuerySet& set,
                             const CoordinationSolution& solution);

/// \brief Builds the total assignment h of Definition 1 for `queries`
/// from a unifier and a database witness: each variable resolves through
/// `subst` to a constant, to a witness-bound representative, or — when
/// truly unconstrained (head-only variables) — to an arbitrary value
/// from the domain of the instance.  Returns nullopt only when free
/// variables remain and the database is empty (empty domain).
///
/// `subst` is non-const because union-find resolution path-compresses.
std::optional<Binding> CompleteAssignment(const Database& db,
                                          const QuerySet& set,
                                          const std::vector<QueryId>& queries,
                                          Substitution* subst,
                                          const Binding& witness);

/// \brief Any value occurring in the database (the "domain of I"), or
/// nullopt when every relation is empty.
std::optional<Value> AnyDomainValue(const Database& db);

}  // namespace entangled

#endif  // ENTANGLED_CORE_GROUNDING_H_
