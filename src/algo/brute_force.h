#ifndef ENTANGLED_ALGO_BRUTE_FORCE_H_
#define ENTANGLED_ALGO_BRUTE_FORCE_H_

#include <optional>

#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"

namespace entangled {

/// \brief Subset-enumeration oracle: decides Entangled and
/// EntangledMax by testing every non-empty subset with the independent
/// Definition-1 witness search (core/validator.h).
///
/// Doubly exponential and proud of it — this is the ground truth the
/// property tests compare every polynomial algorithm against, and the
/// executable semantics of EntangledMax for the Theorem-2 reduction
/// tests.  CHECK-fails above 20 queries.
class BruteForceSolver {
 public:
  explicit BruteForceSolver(const Database* db);

  /// A maximum-size coordinating set (EntangledMax), or nullopt when no
  /// coordinating set exists.  Deterministic: among equal-size sets the
  /// lexicographically smallest id-vector wins.
  std::optional<CoordinationSolution> FindMaximum(const QuerySet& set);

  /// Any coordinating set (smallest first — cheap existence check).
  std::optional<CoordinationSolution> FindAny(const QuerySet& set);

  /// All coordinating subsets, as sorted id-vectors (tests only).
  std::vector<std::vector<QueryId>> AllCoordinatingSets(
      const QuerySet& set);

 private:
  std::optional<CoordinationSolution> FindBySize(const QuerySet& set,
                                                 bool largest_first);

  const Database* db_;
};

}  // namespace entangled

#endif  // ENTANGLED_ALGO_BRUTE_FORCE_H_
