#include "algo/brute_force.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/validator.h"
#include "workload/scenarios.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class BruteForceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }
  Database db_;
};

TEST_F(BruteForceTest, FindsMaximumOnFlightHotel) {
  Database db;
  QuerySet set;
  FlightHotelIds ids = BuildFlightHotelScenario(&db, &set);
  BruteForceSolver solver(&db);
  auto maximum = solver.FindMaximum(set);
  ASSERT_TRUE(maximum.has_value());
  // {qC, qG} is the unique maximum coordinating set (§4 walkthrough).
  EXPECT_EQ(maximum->queries, (std::vector<QueryId>{ids.qc, ids.qg}));
  EXPECT_TRUE(ValidateSolution(db, set, *maximum).ok());
}

TEST_F(BruteForceTest, FindAnyPrefersSmallSets) {
  QuerySet set;
  auto ids = ParseQueries(
      "solo: { }        K(w) :- Users(w, 'user5').\n"
      "a:    { R(B, x) } R(A, x) :- Users(x, 'user3').\n"
      "b:    { R(A, y) } R(B, y) :- Users(y, 'user3').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  BruteForceSolver solver(&db_);
  auto any = solver.FindAny(set);
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(any->queries.size(), 1u);  // the singleton comes first
  auto maximum = solver.FindMaximum(set);
  ASSERT_TRUE(maximum.has_value());
  EXPECT_EQ(maximum->queries.size(), 3u);
}

TEST_F(BruteForceTest, NoCoordinatingSetReturnsNullopt) {
  QuerySet set;
  auto ids = ParseQueries(
      "a: { Missing(x) } R(A, x) :- Users(x, 'user1').", &set);
  ASSERT_TRUE(ids.ok());
  BruteForceSolver solver(&db_);
  EXPECT_FALSE(solver.FindAny(set).has_value());
  EXPECT_FALSE(solver.FindMaximum(set).has_value());
  EXPECT_TRUE(solver.AllCoordinatingSets(set).empty());
}

TEST_F(BruteForceTest, AllCoordinatingSetsEnumerates) {
  QuerySet set;
  auto ids = ParseQueries(
      "solo1: { } K(w) :- Users(w, 'user5').\n"
      "solo2: { } L(v) :- Users(v, 'user6').",
      &set);
  ASSERT_TRUE(ids.ok());
  BruteForceSolver solver(&db_);
  auto all = solver.AllCoordinatingSets(set);
  // {solo1}, {solo2}, {solo1, solo2}.
  EXPECT_EQ(all.size(), 3u);
}

TEST_F(BruteForceTest, MaximumIsDeterministicOnTies) {
  QuerySet set;
  auto ids = ParseQueries(
      "solo1: { } K(w) :- Users(w, 'user5').\n"
      "solo2: { } L(v) :- Users(v, 'user6').\n"
      "dead:  { Missing(z) } M(z) :- Users(z, 'user7').",
      &set);
  ASSERT_TRUE(ids.ok());
  BruteForceSolver solver(&db_);
  auto maximum = solver.FindMaximum(set);
  ASSERT_TRUE(maximum.has_value());
  EXPECT_EQ(maximum->queries, (std::vector<QueryId>{0, 1}));
}

}  // namespace
}  // namespace entangled
