#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/parser.h"
#include "core/unify.h"

namespace entangled {
namespace {

constexpr size_t kNumVars = 6;

Atom RandomAtom(Rng* rng, const std::string& relation, size_t arity) {
  Atom atom;
  atom.relation = relation;
  for (size_t i = 0; i < arity; ++i) {
    switch (rng->NextBounded(3)) {
      case 0:
        atom.terms.push_back(
            Term::Var(static_cast<VarId>(rng->NextBounded(kNumVars))));
        break;
      case 1:
        atom.terms.push_back(
            Term::Int(static_cast<int64_t>(rng->NextBounded(3))));
        break;
      default:
        atom.terms.push_back(Term::Str(
            std::string(1, static_cast<char>('a' + rng->NextBounded(3)))));
    }
  }
  return atom;
}

class UnifyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnifyProperty, MguMakesAtomsSyntacticallyEqual) {
  Rng rng(GetParam() * 31337);
  for (int trial = 0; trial < 50; ++trial) {
    size_t arity = 1 + rng.NextBounded(4);
    Atom a = RandomAtom(&rng, "R", arity);
    Atom b = RandomAtom(&rng, "R", arity);
    Substitution subst(kNumVars);
    if (subst.UnifyAtoms(a, b)) {
      EXPECT_EQ(subst.Apply(a), subst.Apply(b))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST_P(UnifyProperty, UnificationIsSymmetric) {
  Rng rng(GetParam() * 271);
  for (int trial = 0; trial < 50; ++trial) {
    size_t arity = 1 + rng.NextBounded(4);
    Atom a = RandomAtom(&rng, "R", arity);
    Atom b = RandomAtom(&rng, "R", arity);
    Substitution ab(kNumVars);
    Substitution ba(kNumVars);
    EXPECT_EQ(ab.UnifyAtoms(a, b), ba.UnifyAtoms(b, a))
        << a.ToString() << " vs " << b.ToString();
  }
}

TEST_P(UnifyProperty, SuccessImpliesPositionwiseUnifiable) {
  Rng rng(GetParam() * 65537);
  for (int trial = 0; trial < 50; ++trial) {
    size_t arity = 1 + rng.NextBounded(4);
    Atom a = RandomAtom(&rng, "R", arity);
    Atom b = RandomAtom(&rng, "R", arity);
    Substitution subst(kNumVars);
    if (subst.UnifyAtoms(a, b)) {
      EXPECT_TRUE(PositionwiseUnifiable(a, b))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST_P(UnifyProperty, ApplyIsIdempotent) {
  Rng rng(GetParam() * 8191);
  for (int trial = 0; trial < 50; ++trial) {
    Substitution subst(kNumVars);
    // Random merge/bind operations.
    for (int op = 0; op < 6; ++op) {
      VarId v = static_cast<VarId>(rng.NextBounded(kNumVars));
      if (rng.NextBool()) {
        subst.UnifyVars(v, static_cast<VarId>(rng.NextBounded(kNumVars)));
      } else {
        subst.BindConstant(v,
                           Value::Int(static_cast<int64_t>(
                               rng.NextBounded(2))));
      }
    }
    Atom atom = RandomAtom(&rng, "R", 3);
    Atom once = subst.Apply(atom);
    Atom twice = subst.Apply(once);
    EXPECT_EQ(once, twice) << atom.ToString();
  }
}

TEST_P(UnifyProperty, ParserPrinterRoundTrip) {
  Rng rng(GetParam() * 131);
  // Random queries through print -> parse -> print: fixpoint after one
  // round trip.
  for (int trial = 0; trial < 10; ++trial) {
    QuerySet set;
    QueryBuilder builder(&set, "q");
    size_t arity = 1 + rng.NextBounded(3);
    std::vector<Term> head_terms;
    VarId v0 = builder.Var("v0");
    head_terms.push_back(Term::Var(v0));
    for (size_t i = 1; i < arity; ++i) {
      head_terms.push_back(rng.NextBool()
                               ? Term::Int(static_cast<int64_t>(
                                     rng.NextBounded(10)))
                               : Term::Str("K" + std::to_string(
                                               rng.NextBounded(3))));
    }
    builder.Head("H", head_terms);
    builder.Body("B", {Term::Var(v0)});
    if (rng.NextBool()) builder.Post("P", {Term::Var(v0)});
    QueryId id = builder.Build();
    std::string printed = set.QueryToString(id);

    QuerySet reparsed;
    auto rid = ParseQuery(printed, &reparsed);
    ASSERT_TRUE(rid.ok()) << printed << " -> " << rid.status();
    EXPECT_EQ(reparsed.QueryToString(*rid), printed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnifyProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace entangled
