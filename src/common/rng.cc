#include "common/rng.h"

#include <numeric>

namespace entangled {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotateLeft(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotateLeft(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotateLeft(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  ENTANGLED_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t draw = Next();
    if (draw >= threshold) return draw % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  ENTANGLED_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::Sample(size_t n, size_t k) {
  ENTANGLED_CHECK_LE(k, n);
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  // Partial Fisher-Yates: the first k positions become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace entangled
