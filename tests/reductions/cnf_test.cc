#include "reductions/cnf.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "reductions/random_sat.h"

namespace entangled {
namespace {

TEST(CnfTest, LiteralBasics) {
  Literal p = Literal::Pos(3);
  Literal n = Literal::Neg(3);
  EXPECT_EQ(p.var(), 3);
  EXPECT_EQ(n.var(), 3);
  EXPECT_TRUE(p.positive());
  EXPECT_FALSE(n.positive());
  EXPECT_EQ(p.Negated(), n);
  EXPECT_EQ(n.Negated(), p);
  EXPECT_EQ(p.ToString(), "x3");
  EXPECT_EQ(n.ToString(), "~x3");
}

TEST(CnfTest, FormulaToString) {
  CnfFormula f;
  f.num_vars = 2;
  f.clauses = {{Literal::Pos(1), Literal::Neg(2)}};
  EXPECT_EQ(f.ToString(), "(x1 | ~x2)");
}

TEST(CnfTest, WellFormedChecks) {
  CnfFormula f;
  f.num_vars = 2;
  f.clauses = {{Literal::Pos(1)}};
  EXPECT_TRUE(f.WellFormed());
  f.clauses.push_back({});
  EXPECT_FALSE(f.WellFormed());  // empty clause
  f.clauses = {{Literal::Pos(3)}};
  EXPECT_FALSE(f.WellFormed());  // variable out of range
}

TEST(CnfTest, SatisfiesEvaluatesClauses) {
  CnfFormula f;
  f.num_vars = 2;
  f.clauses = {{Literal::Pos(1), Literal::Pos(2)},
               {Literal::Neg(1), Literal::Pos(2)}};
  TruthAssignment both_true = {false, true, true};
  TruthAssignment x1_only = {false, true, false};
  TruthAssignment none = {false, false, false};
  EXPECT_TRUE(Satisfies(f, both_true));
  EXPECT_FALSE(Satisfies(f, x1_only));   // second clause fails
  EXPECT_FALSE(Satisfies(f, none));      // first clause fails
  EXPECT_FALSE(Satisfies(f, {false}));   // too short
}

TEST(RandomSatTest, ShapeIsRespected) {
  Rng rng(13);
  CnfFormula f = Random3Sat(6, 10, &rng);
  EXPECT_EQ(f.num_vars, 6);
  EXPECT_EQ(f.clauses.size(), 10u);
  EXPECT_TRUE(f.WellFormed());
  for (const Clause& clause : f.clauses) {
    ASSERT_EQ(clause.size(), 3u);
    EXPECT_NE(clause[0].var(), clause[1].var());
    EXPECT_NE(clause[1].var(), clause[2].var());
    EXPECT_NE(clause[0].var(), clause[2].var());
  }
}

TEST(RandomSatTest, DeterministicUnderSeed) {
  Rng rng1(99), rng2(99);
  CnfFormula a = Random3Sat(5, 8, &rng1);
  CnfFormula b = Random3Sat(5, 8, &rng2);
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(RandomSatTest, KSatGeneralizes) {
  Rng rng(21);
  CnfFormula f = RandomKSat(4, 5, 2, &rng);
  for (const Clause& clause : f.clauses) EXPECT_EQ(clause.size(), 2u);
}

}  // namespace
}  // namespace entangled
