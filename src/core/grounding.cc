#include "core/grounding.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace entangled {

bool CoordinationSolution::Contains(QueryId q) const {
  return std::binary_search(queries.begin(), queries.end(), q);
}

std::vector<Atom> CoordinationSolution::GroundedHeads(const QuerySet& set,
                                                      QueryId q) const {
  std::vector<Atom> result;
  for (const Atom& atom : set.query(q).head) {
    result.push_back(GroundAtom(atom, assignment));
  }
  return result;
}

Atom GroundAtom(const Atom& atom, const Binding& assignment) {
  Atom result;
  result.relation = atom.relation;
  result.terms.reserve(atom.terms.size());
  for (const Term& term : atom.terms) {
    if (term.is_constant()) {
      result.terms.push_back(term);
      continue;
    }
    const Value* value = assignment.Find(term.var());
    ENTANGLED_CHECK(value != nullptr)
        << "variable ?" << term.var() << " of " << atom.ToString()
        << " is unassigned";
    result.terms.push_back(Term::Const(*value));
  }
  return result;
}

std::optional<Value> AnyDomainValue(const Database& db) {
  for (const std::string& name : db.relation_names()) {
    const Relation* relation = db.Find(name);
    if (!relation->empty()) return relation->row(0)[0];
  }
  return std::nullopt;
}

std::optional<Binding> CompleteAssignment(const Database& db,
                                          const QuerySet& set,
                                          const std::vector<QueryId>& queries,
                                          Substitution* subst,
                                          const Binding& witness) {
  ENTANGLED_CHECK(subst != nullptr);
  Binding assignment;
  std::optional<Value> fallback;
  bool fallback_computed = false;
  for (QueryId q : queries) {
    for (VarId v : set.query(q).Variables()) {
      Term resolved = subst->Resolve(Term::Var(v));
      if (resolved.is_constant()) {
        assignment.emplace(v, resolved.constant());
        continue;
      }
      const Value* bound = witness.Find(resolved.var());
      if (bound != nullptr) {
        assignment.emplace(v, *bound);
        continue;
      }
      if (!fallback_computed) {
        fallback = AnyDomainValue(db);
        fallback_computed = true;
      }
      if (!fallback.has_value()) return std::nullopt;  // empty domain
      assignment.emplace(v, *fallback);
    }
  }
  return assignment;
}

std::string SolutionToString(const QuerySet& set,
                             const CoordinationSolution& solution) {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < solution.queries.size(); ++i) {
    if (i > 0) out << ", ";
    const std::string& name = set.query(solution.queries[i]).name;
    out << (name.empty() ? "q" + std::to_string(solution.queries[i]) : name);
  }
  out << "}";
  // Render only variables belonging to the chosen queries, in id order.
  std::vector<VarId> vars;
  for (QueryId q : solution.queries) {
    for (VarId v : set.query(q).Variables()) vars.push_back(v);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  out << " with h = {";
  bool first = true;
  for (VarId v : vars) {
    const Value* value = solution.assignment.Find(v);
    if (value == nullptr) continue;
    if (!first) out << ", ";
    out << set.var_name(v) << " -> " << value->ToString(/*quote=*/true);
    first = false;
  }
  out << "}";
  return out.str();
}

}  // namespace entangled
