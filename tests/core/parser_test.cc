#include "core/parser.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(ParserTest, GwynethQueryFromThePaper) {
  QuerySet set;
  auto id = ParseQuery(
      "q1: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).", &set);
  ASSERT_TRUE(id.ok()) << id.status();
  const EntangledQuery& q = set.query(*id);
  EXPECT_EQ(q.name, "q1");
  ASSERT_EQ(q.postconditions.size(), 1u);
  ASSERT_EQ(q.head.size(), 1u);
  ASSERT_EQ(q.body.size(), 1u);
  EXPECT_EQ(q.postconditions[0].relation, "R");
  EXPECT_EQ(q.postconditions[0].terms[0], Term::Str("Chris"));
  EXPECT_TRUE(q.postconditions[0].terms[1].is_variable());
  // The same variable x is shared between postcondition and head.
  EXPECT_EQ(q.postconditions[0].terms[1], q.head[0].terms[1]);
  EXPECT_EQ(q.body[0].relation, "Flights");
  EXPECT_EQ(q.body[0].terms[1], Term::Str("Zurich"));
}

TEST(ParserTest, EmptyPostconditionsAndBody) {
  QuerySet set;
  auto id = ParseQuery("{ } R(Chris, y) :- Flights(y, Zurich).", &set);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_TRUE(set.query(*id).postconditions.empty());

  auto id2 = ParseQuery("{C(1)} R(x) :- .", &set);
  ASSERT_TRUE(id2.ok()) << id2.status();
  EXPECT_TRUE(set.query(*id2).body.empty());
}

TEST(ParserTest, DefaultNameAssigned) {
  QuerySet set;
  auto id = ParseQuery("{ } H(x) :- D(x).", &set);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(set.query(*id).name, "q0");
}

TEST(ParserTest, NumbersAndQuotedStrings) {
  QuerySet set;
  auto id = ParseQuery(
      "q: { R(1) } H(-5, 'New York', \"a b\") :- D(0).", &set);
  ASSERT_TRUE(id.ok()) << id.status();
  const EntangledQuery& q = set.query(*id);
  EXPECT_EQ(q.postconditions[0].terms[0], Term::Int(1));
  EXPECT_EQ(q.head[0].terms[0], Term::Int(-5));
  EXPECT_EQ(q.head[0].terms[1], Term::Str("New York"));
  EXPECT_EQ(q.head[0].terms[2], Term::Str("a b"));
}

TEST(ParserTest, CaseDistinguishesVariablesFromConstants) {
  QuerySet set;
  auto id = ParseQuery("q: { } H(x, Xavier, yoga) :- .", &set);
  ASSERT_TRUE(id.ok());
  const Atom& head = set.query(*id).head[0];
  EXPECT_TRUE(head.terms[0].is_variable());
  EXPECT_EQ(head.terms[1], Term::Str("Xavier"));
  EXPECT_TRUE(head.terms[2].is_variable());
}

TEST(ParserTest, AnonymousVariablesAreFreshEachTime) {
  QuerySet set;
  auto id = ParseQuery("q: { } H(_, _) :- .", &set);
  ASSERT_TRUE(id.ok());
  const Atom& head = set.query(*id).head[0];
  ASSERT_TRUE(head.terms[0].is_variable());
  ASSERT_TRUE(head.terms[1].is_variable());
  EXPECT_NE(head.terms[0].var(), head.terms[1].var());
}

TEST(ParserTest, QueriesAreStandardizedApart) {
  QuerySet set;
  auto ids = ParseQueries(
      "a: { } H(x) :- D(x).\n"
      "b: { } H(x) :- D(x).",
      &set);
  ASSERT_TRUE(ids.ok());
  VarId xa = set.query((*ids)[0]).head[0].terms[0].var();
  VarId xb = set.query((*ids)[1]).head[0].terms[0].var();
  EXPECT_NE(xa, xb);
  EXPECT_EQ(set.var_name(xa), "x");
  EXPECT_EQ(set.var_name(xb), "x");
}

TEST(ParserTest, SameVariableSharedWithinQuery) {
  QuerySet set;
  auto id = ParseQuery("q: { } H(x, x) :- D(x).", &set);
  ASSERT_TRUE(id.ok());
  const EntangledQuery& q = set.query(*id);
  EXPECT_EQ(q.head[0].terms[0], q.head[0].terms[1]);
  EXPECT_EQ(q.head[0].terms[0], q.body[0].terms[0]);
}

TEST(ParserTest, CommentsAreSkipped) {
  QuerySet set;
  auto ids = ParseQueries(
      "% leading comment\n"
      "q: { } H(x) :- D(x). // trailing comment\n"
      "% another\n",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  EXPECT_EQ(ids->size(), 1u);
}

TEST(ParserTest, MultipleQueriesInOrder) {
  QuerySet set;
  auto ids = ParseQueries(
      "one: { } A(x) :- D(x). two: { } B(y) :- D(y). three: {} C(z) :- .",
      &set);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 3u);
  EXPECT_EQ(set.query((*ids)[0]).name, "one");
  EXPECT_EQ(set.query((*ids)[2]).name, "three");
}

TEST(ParserTest, ZeroArityAtomAllowed) {
  QuerySet set;
  auto id = ParseQuery("q: { } H() :- .", &set);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(set.query(*id).head[0].arity(), 0u);
}

TEST(ParserTest, ErrorsCarryPositions) {
  QuerySet set;
  auto missing_dot = ParseQuery("q: { } H(x) :- D(x)", &set);
  ASSERT_FALSE(missing_dot.ok());
  EXPECT_NE(missing_dot.status().message().find("line 1"),
            std::string::npos);

  auto bad_char = ParseQuery("q: { } H(x) :- D(x) & E(x).", &set);
  ASSERT_FALSE(bad_char.ok());
  EXPECT_NE(bad_char.status().message().find("unexpected character"),
            std::string::npos);
}

TEST(ParserTest, ErrorOnMissingBrace) {
  QuerySet set;
  EXPECT_FALSE(ParseQuery("q: R(x) :- D(x).", &set).ok());
}

TEST(ParserTest, ErrorOnUnterminatedString) {
  QuerySet set;
  auto result = ParseQuery("q: { } H('oops) :- .", &set);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unterminated"),
            std::string::npos);
}

TEST(ParserTest, ParseQueryRejectsMultiple) {
  QuerySet set;
  auto result = ParseQuery("a: {} H(x) :- . b: {} H(y) :- .", &set);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ParserTest, RoundTripThroughPrinter) {
  QuerySet set;
  const std::string text =
      "qG: {R('C', y1), Q('C', y2)} R('G', y1), Q('G', y2) :- "
      "F(y1, 'Paris'), H(y2, 'Paris').";
  auto id = ParseQuery(text, &set);
  ASSERT_TRUE(id.ok()) << id.status();
  // Printing and re-parsing yields a structurally identical query.
  std::string printed = set.QueryToString(*id);
  QuerySet set2;
  auto id2 = ParseQuery(printed, &set2);
  ASSERT_TRUE(id2.ok()) << id2.status() << " printed: " << printed;
  EXPECT_EQ(set2.QueryToString(*id2), printed);
}

}  // namespace
}  // namespace entangled
