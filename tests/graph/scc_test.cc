#include "graph/scc.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/condensation.h"
#include "graph/generators.h"
#include "graph/topological.h"

namespace entangled {
namespace {

/// Components as canonical sorted member lists, order-insensitive.
std::vector<std::vector<NodeId>> CanonicalComponents(const SccResult& scc) {
  std::vector<std::vector<NodeId>> components = scc.members;
  std::sort(components.begin(), components.end());
  return components;
}

TEST(SccTest, SingletonGraph) {
  Digraph g(1);
  SccResult scc = TarjanScc(g);
  EXPECT_EQ(scc.num_components(), 1);
  EXPECT_EQ(scc.members[0], (std::vector<NodeId>{0}));
}

TEST(SccTest, ChainHasSingletonComponents) {
  SccResult scc = TarjanScc(MakeChain(5));
  EXPECT_EQ(scc.num_components(), 5);
}

TEST(SccTest, CycleIsOneComponent) {
  SccResult scc = TarjanScc(MakeCycle(6));
  EXPECT_EQ(scc.num_components(), 1);
  EXPECT_EQ(scc.members[0].size(), 6u);
}

TEST(SccTest, SelfLoopIsItsOwnComponent) {
  Digraph g(2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  SccResult scc = TarjanScc(g);
  EXPECT_EQ(scc.num_components(), 2);
}

TEST(SccTest, TwoCyclesBridge) {
  // 0 <-> 1 -> 2 <-> 3.
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);
  SccResult scc = TarjanScc(g);
  EXPECT_EQ(scc.num_components(), 2);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[2], scc.component_of[3]);
  EXPECT_NE(scc.component_of[0], scc.component_of[2]);
  // Pop order is reverse topological: sink {2,3} must be component 0.
  EXPECT_EQ(scc.component_of[2], 0);
}

TEST(SccTest, ComponentIdsAreReverseTopological) {
  // Every edge of the condensation must go from higher id to lower id.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Digraph g = MakeErdosRenyi(30, 0.08, &rng);
    SccResult scc = TarjanScc(g);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v : g.Successors(u)) {
        if (scc.component_of[u] != scc.component_of[v]) {
          EXPECT_GT(scc.component_of[u], scc.component_of[v]);
        }
      }
    }
  }
}

TEST(SccTest, FlightHotelExampleComponents) {
  // The §2.2 coordination graph: qW -> {qJ, qC}, qJ -> {qC, qG},
  // qC <-> qG (nodes 0=qC 1=qG 2=qJ 3=qW).
  Digraph g(4);
  g.AddEdge(0, 1);  // qC needs qG
  g.AddEdge(1, 0);  // qG needs qC
  g.AddEdge(2, 0);  // qJ needs qC
  g.AddEdge(2, 1);  // qJ needs qG
  g.AddEdge(3, 0);  // qW needs qC
  g.AddEdge(3, 2);  // qW needs qJ
  SccResult scc = TarjanScc(g);
  auto components = CanonicalComponents(scc);
  EXPECT_EQ(components, (std::vector<std::vector<NodeId>>{
                            {0, 1}, {2}, {3}}));
}

TEST(SccTest, MatchesNaiveOnRandomGraphs) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    NodeId n = static_cast<NodeId>(2 + rng.NextBounded(25));
    Digraph g = MakeErdosRenyi(n, rng.NextDouble() * 0.3, &rng);
    SccResult tarjan = TarjanScc(g);
    SccResult naive = NaiveScc(g);
    EXPECT_EQ(CanonicalComponents(tarjan), CanonicalComponents(naive))
        << g.ToString();
    // Both numberings must be reverse topological (they may differ in
    // tie-breaks; the property is what matters).
    for (const SccResult& scc : {tarjan, naive}) {
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v : g.Successors(u)) {
          if (scc.component_of[u] != scc.component_of[v]) {
            EXPECT_GT(scc.component_of[u], scc.component_of[v])
                << g.ToString();
          }
        }
      }
    }
  }
}

TEST(SccTest, DeepChainDoesNotOverflowStack) {
  // 50k nodes would crash a recursive Tarjan; the iterative one is fine.
  SccResult scc = TarjanScc(MakeChain(50000));
  EXPECT_EQ(scc.num_components(), 50000);
}

TEST(CondensationTest, CondensedGraphIsDag) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Digraph g = MakeErdosRenyi(25, 0.15, &rng);
    SccResult scc = TarjanScc(g);
    Digraph condensed = Condense(g, scc);
    EXPECT_EQ(condensed.num_nodes(), scc.num_components());
    EXPECT_TRUE(TopologicalOrder(condensed).ok()) << condensed.ToString();
  }
}

TEST(CondensationTest, ParallelEdgesCollapse) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // component A = {0,1}
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);  // component B = {2,3}
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);  // two A->B edges in the original
  SccResult scc = TarjanScc(g);
  Digraph condensed = Condense(g, scc);
  EXPECT_EQ(condensed.num_nodes(), 2);
  EXPECT_EQ(condensed.num_edges(), 1);
}

TEST(CondensationTest, SelfLoopsDropped) {
  Digraph g(2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  SccResult scc = TarjanScc(g);
  Digraph condensed = Condense(g, scc);
  EXPECT_EQ(condensed.num_edges(), 1);
  for (NodeId c = 0; c < condensed.num_nodes(); ++c) {
    EXPECT_FALSE(condensed.HasEdge(c, c));
  }
}

}  // namespace
}  // namespace entangled
