#ifndef ENTANGLED_DB_VALUE_H_
#define ENTANGLED_DB_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

namespace entangled {

/// \brief A dynamically-typed database value: a 64-bit integer or a
/// string.
///
/// The coordination algorithms are schema-agnostic, so relations hold
/// dynamically typed tuples.  Values order integers before strings
/// (arbitrary but total), which makes scan order — and therefore the
/// choose-1 witness the evaluator returns — deterministic.
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kString = 1 };

  /// Default-constructs the integer 0 (needed for container resizing).
  Value() : repr_(int64_t{0}) {}

  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  static Value Str(std::string_view v) { return Value(std::string(v)); }
  static Value Str(const char* v) { return Value(std::string(v)); }

  Kind kind() const {
    return repr_.index() == 0 ? Kind::kInt : Kind::kString;
  }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_string() const { return kind() == Kind::kString; }

  /// Accessors; CHECK-fail on kind mismatch.
  int64_t AsInt() const;
  const std::string& AsString() const;

  /// Renders the value; strings are quoted only when `quote` is set.
  std::string ToString(bool quote = false) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.repr_ < b.repr_;
  }

  size_t Hash() const;

 private:
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}

  std::variant<int64_t, std::string> repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace entangled

namespace std {
template <>
struct hash<entangled::Value> {
  size_t operator()(const entangled::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // ENTANGLED_DB_VALUE_H_
