#include "core/grounding.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/unify.h"

namespace entangled {
namespace {

TEST(GroundAtomTest, ReplacesVariablesAndKeepsConstants) {
  Binding assignment;
  assignment.emplace(0, Value::Int(101));
  Atom atom("R", {Term::Str("Chris"), Term::Var(0)});
  Atom ground = GroundAtom(atom, assignment);
  EXPECT_EQ(ground, Atom("R", {Term::Str("Chris"), Term::Int(101)}));
}

TEST(GroundAtomTest, GroundAtomIsFixpoint) {
  Binding assignment;
  Atom atom("R", {Term::Int(1)});
  EXPECT_EQ(GroundAtom(atom, assignment), atom);
}

TEST(GroundAtomDeathTest, UnboundVariableAborts) {
  Binding assignment;
  Atom atom("R", {Term::Var(7)});
  EXPECT_DEATH(GroundAtom(atom, assignment), "unassigned");
}

TEST(SolutionTest, ContainsUsesBinarySearch) {
  CoordinationSolution solution;
  solution.queries = {1, 3, 5};
  EXPECT_TRUE(solution.Contains(3));
  EXPECT_FALSE(solution.Contains(2));
  EXPECT_FALSE(solution.Contains(0));
}

TEST(SolutionTest, GroundedHeadsGroundEveryHeadAtom) {
  QuerySet set;
  auto id = ParseQuery("q: { } R(x), Q(x, 7) :- D(x).", &set);
  ASSERT_TRUE(id.ok());
  VarId x = set.query(*id).head[0].terms[0].var();
  CoordinationSolution solution;
  solution.queries = {*id};
  solution.assignment.emplace(x, Value::Int(3));
  auto heads = solution.GroundedHeads(set, *id);
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], Atom("R", {Term::Int(3)}));
  EXPECT_EQ(heads[1], Atom("Q", {Term::Int(3), Term::Int(7)}));
}

TEST(AnyDomainValueTest, FindsFirstValueSkippingEmptyRelations) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("Empty", {"a"}).ok());
  Relation* full = *db.CreateRelation("Full", {"a"});
  ASSERT_TRUE(full->Insert({Value::Str("v")}).ok());
  auto value = AnyDomainValue(db);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, Value::Str("v"));
}

TEST(AnyDomainValueTest, EmptyDatabaseHasNoDomain) {
  Database db;
  EXPECT_FALSE(AnyDomainValue(db).has_value());
  ASSERT_TRUE(db.CreateRelation("Empty", {"a"}).ok());
  EXPECT_FALSE(AnyDomainValue(db).has_value());
}

TEST(CompleteAssignmentTest, ResolvesThroughSubstitutionAndWitness) {
  Database db;
  Relation* d = *db.CreateRelation("D", {"v"});
  ASSERT_TRUE(d->Insert({Value::Int(9)}).ok());

  QuerySet set;
  auto id = ParseQuery("q: { } H(a, b, c) :- D(b).", &set);
  ASSERT_TRUE(id.ok());
  VarId a = set.query(*id).head[0].terms[0].var();
  VarId b = set.query(*id).head[0].terms[1].var();
  VarId c = set.query(*id).head[0].terms[2].var();

  Substitution subst(set.num_vars());
  ASSERT_TRUE(subst.BindConstant(a, Value::Int(42)));  // via unification
  Binding witness;
  witness.emplace(subst.Find(b), Value::Int(9));  // via the database

  auto assignment = CompleteAssignment(db, set, {*id}, &subst, witness);
  ASSERT_TRUE(assignment.has_value());
  EXPECT_EQ(assignment->at(a), Value::Int(42));
  EXPECT_EQ(assignment->at(b), Value::Int(9));
  EXPECT_EQ(assignment->at(c), Value::Int(9));  // fallback domain value
}

TEST(CompleteAssignmentTest, FailsOnlyOnEmptyDomainWithFreeVars) {
  Database db;  // empty: no domain values at all
  QuerySet set;
  auto id = ParseQuery("q: { } H(z) :- .", &set);
  ASSERT_TRUE(id.ok());
  Substitution subst(set.num_vars());
  EXPECT_FALSE(CompleteAssignment(db, set, {*id}, &subst, {}).has_value());

  // But with every variable pinned, the empty domain does not matter.
  VarId z = set.query(*id).head[0].terms[0].var();
  ASSERT_TRUE(subst.BindConstant(z, Value::Int(1)));
  EXPECT_TRUE(CompleteAssignment(db, set, {*id}, &subst, {}).has_value());
}

TEST(SolutionToStringTest, OmitsForeignVariables) {
  QuerySet set;
  auto ids = ParseQueries(
      "a: { } H(x) :- D(x).\n"
      "b: { } K(y) :- D(y).",
      &set);
  ASSERT_TRUE(ids.ok());
  VarId x = set.query((*ids)[0]).head[0].terms[0].var();
  VarId y = set.query((*ids)[1]).head[0].terms[0].var();
  CoordinationSolution solution;
  solution.queries = {(*ids)[0]};  // only query a
  solution.assignment.emplace(x, Value::Int(1));
  solution.assignment.emplace(y, Value::Int(2));  // stray entry
  std::string rendered = SolutionToString(set, solution);
  EXPECT_NE(rendered.find("x -> 1"), std::string::npos);
  EXPECT_EQ(rendered.find("y"), std::string::npos);
}

}  // namespace
}  // namespace entangled
