// Property: on fully random (unsafe, non-unique, cyclic) instances the
// complete backtracking GenericSolver agrees with the subset-
// enumeration oracle on *existence* of a coordinating set, and its
// solutions always survive the independent Definition-1 validator.

#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "algo/generic_solver.h"
#include "common/rng.h"
#include "core/validator.h"

namespace entangled {
namespace {

/// Random instance: a small tag table plus queries whose answer atoms
/// are drawn from a tiny pool of relations/constants, so postconditions
/// collide with several heads (unsafety) and cycles are common.
struct RandomInstance {
  Database db;
  QuerySet set;
};

void BuildRandomInstance(uint64_t seed, RandomInstance* instance) {
  Rng rng(seed);
  Relation* table = *instance->db.CreateRelation("T", {"id", "tag"});
  const int num_rows = 4 + static_cast<int>(rng.NextBounded(5));
  for (int r = 0; r < num_rows; ++r) {
    ASSERT_TRUE(table
                    ->Insert({Value::Int(r),
                              Value::Str("t" + std::to_string(
                                                   rng.NextBounded(3)))})
                    .ok());
  }
  const size_t num_queries = 2 + rng.NextBounded(4);  // 2..5
  const std::vector<std::string> relations = {"A", "B"};
  auto random_term = [&](QueryBuilder* b, int index) {
    switch (rng.NextBounded(3)) {
      case 0:
        return Term::Var(b->Var("v" + std::to_string(index)));
      case 1:
        return Term::Int(static_cast<int64_t>(rng.NextBounded(2)));
      default:
        return Term::Str("k" + std::to_string(rng.NextBounded(2)));
    }
  };
  for (size_t qi = 0; qi < num_queries; ++qi) {
    QueryBuilder b(&instance->set, "q" + std::to_string(qi));
    int vc = 0;
    // Head: one or two answer atoms.
    size_t heads = 1 + rng.NextBounded(2);
    for (size_t h = 0; h < heads; ++h) {
      b.Head(rng.Choice(relations),
             {random_term(&b, vc++), random_term(&b, vc++)});
    }
    // 0..2 postconditions.
    size_t posts = rng.NextBounded(3);
    for (size_t p = 0; p < posts; ++p) {
      b.Post(rng.Choice(relations),
             {random_term(&b, vc++), random_term(&b, vc++)});
    }
    // 0..1 body atoms over the table.
    if (rng.NextBool(0.7)) {
      Term tag = rng.NextBool(0.3)
                     ? Term::Str("missing")
                     : Term::Str("t" + std::to_string(rng.NextBounded(3)));
      b.Body("T", {Term::Var(b.Var("row" + std::to_string(qi))), tag});
    }
    b.Build();
  }
}

class GenericVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GenericVsBruteForce, ExistenceAgreesAndSolutionsValidate) {
  RandomInstance instance;
  BuildRandomInstance(GetParam() * 6151, &instance);

  GenericSolverOptions options;
  options.max_expansions = 500'000;
  GenericSolver solver(&instance.db, options);
  auto generic = solver.FindAny(instance.set);
  if (generic.status().IsOutOfRange()) {
    GTEST_SKIP() << "search budget exhausted on this draw";
  }
  ASSERT_TRUE(generic.ok() || generic.status().IsNotFound())
      << generic.status();

  BruteForceSolver brute(&instance.db);
  auto oracle = brute.FindAny(instance.set);

  EXPECT_EQ(generic.ok(), oracle.has_value())
      << instance.set.ToString() << "generic: " << generic.status();
  if (generic.ok()) {
    EXPECT_TRUE(ValidateSolution(instance.db, instance.set, *generic).ok())
        << instance.set.ToString();
  }
  if (oracle.has_value()) {
    EXPECT_TRUE(ValidateSolution(instance.db, instance.set, *oracle).ok())
        << instance.set.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomUnsafeInstances, GenericVsBruteForce,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

}  // namespace
}  // namespace entangled
