// Durability overhead and recovery-tail economics of the write-ahead
// log (storage/durable_service.h).
//
// Series 1 — admission throughput: submissions/sec of a seeded
// generator stream through the durability decorator under each fsync
// policy, against the bare engine (no WAL at all).  evaluate_every=0
// keeps solver cost out of the loop: the gap is logging + (policy-
// dependent) fsync(2).  kNone should track the baseline closely,
// kEveryRecord pays one fsync per admitted event — the classic
// durability-horizon/throughput trade the policy enum documents.
//
// Series 2 — recovery replay length: the same stream recorded once
// with only the genesis snapshot (recovery replays the whole log) and
// once with periodic snapshot rotation (recovery replays only the tail
// past the newest snapshot).  The counts are deterministic, so the
// bench gates the whole point of snapshots outright: the full-log
// replay must re-apply at least 10x more events than snapshot + tail.

#include <dirent.h>
#include <unistd.h>

#include <cstddef>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "storage/durable_service.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "system/engine.h"
#include "workload/generator.h"

namespace entangled {
namespace {

constexpr size_t kNumQueries = 600;
constexpr uint64_t kSnapshotEvery = 40;
constexpr int kReps = 2;

/// mkdtemp-backed scratch directory, recursively removed on scope exit
/// (each timed run wants a fresh genesis, not an append to the last).
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/entangled_bench_wal_XXXXXX";
    char* made = mkdtemp(tmpl);
    ENTANGLED_CHECK(made != nullptr) << "mkdtemp failed";
    path_ = made;
  }
  ~TempDir() {
    DIR* dir = opendir(path_.c_str());
    if (dir != nullptr) {
      while (dirent* entry = readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct ReplayCounters {
  size_t submitted = 0;
  WalStats wal;
};

/// Streams the generated events through `service` (the bare engine or
/// the decorator).  Cadence toggles are skipped — they would
/// reintroduce solver cost into what is an admission/logging bench.
size_t StreamEvents(CoordinationService* service,
                    const std::vector<WorkloadEvent>& events) {
  size_t submitted = 0;
  for (const WorkloadEvent& event : events) {
    switch (event.kind) {
      case WorkloadEvent::Kind::kSubmit: {
        auto id = service->Submit(event.texts.front());
        ENTANGLED_CHECK(id.ok()) << id.status().ToString();
        ++submitted;
        break;
      }
      case WorkloadEvent::Kind::kSubmitBatch: {
        auto ids = service->SubmitBatch(event.texts);
        ENTANGLED_CHECK(ids.ok()) << ids.status().ToString();
        submitted += event.texts.size();
        break;
      }
      case WorkloadEvent::Kind::kCancel: {
        const std::vector<QueryId> pending = service->PendingQueries();
        if (!pending.empty()) {
          service->Cancel(pending[event.cancel_rank % pending.size()]);
        }
        break;
      }
      case WorkloadEvent::Kind::kSetEvaluateEvery:
        break;
      case WorkloadEvent::Kind::kFlush:
        service->Flush();
        break;
    }
  }
  service->Flush();
  return submitted;
}

/// One timed pass through a fresh durability stack; returns the
/// lifetime WAL counters of the run.
ReplayCounters ReplayDurable(const Database& db,
                             const std::vector<WorkloadEvent>& events,
                             FsyncPolicy policy,
                             uint64_t snapshot_every_events) {
  TempDir dir;
  EngineOptions engine_options;
  engine_options.evaluate_every = 0;
  CoordinationEngine engine(&db, engine_options);
  DurabilityOptions durability;
  durability.dir = dir.path();
  durability.fsync = policy;
  durability.snapshot_every_events = snapshot_every_events;
  durability.initial_evaluate_every = 0;
  auto durable = DurableCoordinationService::Create(&engine, &db, durability);
  ENTANGLED_CHECK(durable.ok()) << durable.status().ToString();
  ReplayCounters counters;
  counters.submitted = StreamEvents(durable->get(), events);
  counters.wal = (*durable)->wal_stats();
  return counters;
}

/// Records the stream into `dir`, crashes (scope exit), rehydrates,
/// and returns how many WAL records recovery had to re-apply.
uint64_t RecoveryReplayLength(const Database& db,
                              const std::vector<WorkloadEvent>& events,
                              const std::string& dir,
                              uint64_t snapshot_every_events) {
  {
    EngineOptions engine_options;
    engine_options.evaluate_every = 0;
    CoordinationEngine engine(&db, engine_options);
    DurabilityOptions durability;
    durability.dir = dir;
    durability.fsync = FsyncPolicy::kNone;
    durability.snapshot_every_events = snapshot_every_events;
    durability.initial_evaluate_every = 0;
    auto durable =
        DurableCoordinationService::Create(&engine, &db, durability);
    ENTANGLED_CHECK(durable.ok()) << durable.status().ToString();
    StreamEvents(durable->get(), events);
  }  // crash: the stack dies with the log on disk

  auto state = ReadDurableState(dir);
  ENTANGLED_CHECK(state.ok()) << state.status().ToString();
  ENTANGLED_CHECK(!state->report.corruption_detected)
      << state->report.corruption_detail;
  Database recovered_db;
  ENTANGLED_CHECK(
      BuildDatabaseFromSnapshot(state->snapshot, &recovered_db).ok());
  EngineOptions engine_options;
  engine_options.evaluate_every = 0;
  CoordinationEngine engine(&recovered_db, engine_options);
  DurabilityOptions durability;
  durability.dir = dir;
  durability.fsync = FsyncPolicy::kNone;
  durability.initial_evaluate_every = 0;
  auto durable =
      DurableCoordinationService::Create(&engine, &recovered_db, durability);
  ENTANGLED_CHECK(durable.ok()) << durable.status().ToString();
  Status recovered = (*durable)->Recover(std::move(*state), nullptr);
  ENTANGLED_CHECK(recovered.ok()) << recovered.ToString();
  const RecoveryReport& report = (*durable)->recovery_report();
  ENTANGLED_CHECK(report.anomalies == 0) << report.ToString();
  return report.replayed_events;
}

}  // namespace
}  // namespace entangled

int main() {
  using namespace entangled;

  GeneratorOptions gen;
  gen.seed = 13;
  gen.num_queries = kNumQueries;
  gen.batch_rate = 0.3;
  gen.cancel_rate = 0.2;
  WorkloadGenerator generator(gen);
  Database db;
  ENTANGLED_CHECK(generator.BuildDatabase(&db).ok());
  const GeneratedWorkload workload = generator.Generate();

  benchutil::PrintSeriesHeader(
      "WAL admission throughput by fsync policy",
      {"variant", "time_ms", "submits_per_sec", "wal_records", "fsyncs"});

  // Baseline: the bare engine, no durability decorator at all.
  size_t baseline_submitted = 0;
  const double baseline_ms = benchutil::MeanMillis(kReps, [&] {
    EngineOptions engine_options;
    engine_options.evaluate_every = 0;
    CoordinationEngine engine(&db, engine_options);
    baseline_submitted = StreamEvents(&engine, workload.events);
  });
  const double baseline_qps =
      1000.0 * static_cast<double>(baseline_submitted) / baseline_ms;
  std::printf("no_wal,%.3f,%.0f,0,0\n", baseline_ms, baseline_qps);
  benchutil::PrintJsonRecord(
      "wal_no_wal", {{"queries", static_cast<double>(baseline_submitted)},
                     {"time_ms", baseline_ms},
                     {"submits_per_sec", baseline_qps}});

  for (const FsyncPolicy policy :
       {FsyncPolicy::kNone, FsyncPolicy::kEveryFlush,
        FsyncPolicy::kEveryRecord}) {
    ReplayCounters counters;
    const double ms = benchutil::MeanMillis(kReps, [&] {
      counters = ReplayDurable(db, workload.events, policy,
                               /*snapshot_every_events=*/0);
    });
    const double qps =
        1000.0 * static_cast<double>(counters.submitted) / ms;
    std::printf("fsync_%s,%.3f,%.0f,%llu,%llu\n", FsyncPolicyName(policy),
                ms, qps,
                static_cast<unsigned long long>(counters.wal.appended_records),
                static_cast<unsigned long long>(counters.wal.fsyncs));
    benchutil::PrintJsonRecord(
        std::string("wal_fsync_") + FsyncPolicyName(policy),
        {{"queries", static_cast<double>(counters.submitted)},
         {"time_ms", ms},
         {"submits_per_sec", qps},
         {"wal_records", static_cast<double>(counters.wal.appended_records)},
         {"wal_bytes", static_cast<double>(counters.wal.bytes)},
         {"fsyncs", static_cast<double>(counters.wal.fsyncs)}});
  }

  benchutil::PrintSeriesHeader(
      "Recovery replay length: genesis-only vs periodic snapshots",
      {"variant", "replayed_events"});
  uint64_t full_replay = 0;
  {
    TempDir dir;
    full_replay = RecoveryReplayLength(db, workload.events, dir.path(),
                                       /*snapshot_every_events=*/0);
  }
  uint64_t tail_replay = 0;
  {
    TempDir dir;
    tail_replay = RecoveryReplayLength(db, workload.events, dir.path(),
                                       kSnapshotEvery);
  }
  std::printf("genesis_only,%llu\n",
              static_cast<unsigned long long>(full_replay));
  std::printf("snapshot_every_%llu,%llu\n",
              static_cast<unsigned long long>(kSnapshotEvery),
              static_cast<unsigned long long>(tail_replay));
  benchutil::PrintJsonRecord(
      "wal_recovery_full",
      {{"replayed_events", static_cast<double>(full_replay)}});
  benchutil::PrintJsonRecord(
      "wal_recovery_snapshot",
      {{"snapshot_every", static_cast<double>(kSnapshotEvery)},
       {"replayed_events", static_cast<double>(tail_replay)}});

  // The deterministic gate: periodic snapshots must shorten the replay
  // tail by at least 10x, or rotation is not pulling its weight.
  ENTANGLED_CHECK(full_replay >= 10 * (tail_replay > 0 ? tail_replay : 1))
      << "snapshot rotation only saved " << full_replay << " -> "
      << tail_replay << " replayed events; widen the stream or shorten "
      << "the rotation interval";
  benchutil::PrintNote(
      "gate: genesis-only replay >= 10x snapshot+tail replay — held");
  return 0;
}
