#include "graph/generators.h"

#include <algorithm>

#include "common/logging.h"

namespace entangled {

Digraph MakeChain(NodeId n) {
  Digraph graph(n);
  for (NodeId v = 0; v + 1 < n; ++v) graph.AddEdge(v, v + 1);
  return graph;
}

Digraph MakeCycle(NodeId n) {
  Digraph graph(n);
  if (n == 0) return graph;
  for (NodeId v = 0; v < n; ++v) graph.AddEdge(v, (v + 1) % n);
  return graph;
}

Digraph MakeComplete(NodeId n) {
  Digraph graph(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) graph.AddEdge(u, v);
    }
  }
  return graph;
}

Digraph MakeErdosRenyi(NodeId n, double p, Rng* rng) {
  ENTANGLED_CHECK(rng != nullptr);
  Digraph graph(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v && rng->NextBool(p)) graph.AddEdge(u, v);
    }
  }
  return graph;
}

Digraph MakeScaleFree(NodeId n, int edges_per_node, Rng* rng) {
  ENTANGLED_CHECK(rng != nullptr);
  ENTANGLED_CHECK_GE(edges_per_node, 1);
  Digraph graph(n);
  if (n <= 1) return graph;

  // Preferential attachment via the repeated-endpoints trick: every edge
  // endpoint is appended to `attachment`, so drawing a uniform element
  // of `attachment` is a draw proportional to degree.  Seeding each node
  // once gives the customary (in-degree + 1) smoothing so isolated early
  // nodes stay reachable.
  std::vector<NodeId> attachment;
  attachment.reserve(static_cast<size_t>(n) *
                     static_cast<size_t>(edges_per_node + 1));
  attachment.push_back(0);
  for (NodeId v = 1; v < n; ++v) {
    int edges = std::min<int>(edges_per_node, v);
    std::vector<NodeId> chosen;
    while (static_cast<int>(chosen.size()) < edges) {
      NodeId target = rng->Choice(attachment);
      if (target == v) continue;
      if (std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        continue;
      }
      chosen.push_back(target);
    }
    for (NodeId target : chosen) {
      graph.AddEdge(v, target);
      attachment.push_back(target);  // target gains in-degree weight
    }
    attachment.push_back(v);  // smoothing seed for the new node
  }
  return graph;
}

Digraph MakeRandomKOut(NodeId n, int k, Rng* rng) {
  ENTANGLED_CHECK(rng != nullptr);
  ENTANGLED_CHECK_GE(k, 0);
  Digraph graph(n);
  if (n <= 1) return graph;
  for (NodeId u = 0; u < n; ++u) {
    int out = std::min<int>(k, n - 1);
    // Draw `out` distinct targets != u.
    std::vector<size_t> draws =
        rng->Sample(static_cast<size_t>(n - 1), static_cast<size_t>(out));
    for (size_t d : draws) {
      NodeId v = static_cast<NodeId>(d);
      if (v >= u) v = static_cast<NodeId>(d + 1);  // skip u
      graph.AddEdge(u, v);
    }
  }
  return graph;
}

}  // namespace entangled
