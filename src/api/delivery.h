#ifndef ENTANGLED_API_DELIVERY_H_
#define ENTANGLED_API_DELIVERY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/grounding.h"
#include "core/query.h"
#include "db/atom.h"
#include "db/binding.h"

namespace entangled {

/// \brief One participant of a delivered coordinating set, fully
/// materialized for the client who posed it.
struct DeliveredQuery {
  QueryId id = -1;    ///< service-global query id
  std::string name;   ///< display name the query was submitted under
  std::string text;   ///< the query, re-rendered in the paper's syntax
  /// The grounded head atoms under the witness — the "answers" returned
  /// to the user (e.g. R(101, 'Gwyneth') carries the chosen flight id).
  std::vector<Atom> answers;
};

/// \brief A self-contained delivery event: one coordinating set, with
/// everything a client needs materialized into owned data.
///
/// This is the only thing the coordination services hand to the outside
/// world.  Unlike the old `(const QuerySet&, const CoordinationSolution&)`
/// callback signature, a Delivery holds no references into the engine:
/// query texts, display names, grounded answers, the witness values, and
/// the witness variables' display names are all copied out at delivery
/// time.  A captured Delivery therefore stays valid after any subsequent
/// Cancel/Flush/shard migration — there is nothing left to dangle.
///
/// (`Value` strings are interned in the process-wide GlobalValueInterner,
/// whose storage is append-only and stable for the process lifetime, so
/// owning the 16-byte PODs really does own the strings.)
struct Delivery {
  /// Zero-based position of this delivery in the service's delivery
  /// stream.  Deterministic: the oracle, the incremental engine at any
  /// flush_threads, and the sharded engine at any shard_threads assign
  /// the same sequence to the same coordinating set.
  uint64_t sequence = 0;

  /// The coordinating set, ascending by id.
  std::vector<DeliveredQuery> queries;

  /// The Definition-1 witness h, keyed by service-global variable ids.
  /// Values are owned PODs; iteration (Binding::ForEach) is ascending.
  Binding witness;

  /// Display name of every bound witness variable, ascending by
  /// variable id (aligned with `witness`'s iteration order).
  std::vector<std::pair<VarId, std::string>> witness_names;

  /// The participant ids, ascending (the old `solution.queries`).
  std::vector<QueryId> QueryIds() const;

  /// The participant with the given id, or nullptr.
  const DeliveredQuery* Find(QueryId id) const;

  /// Human-readable multi-line rendering (one line per participant plus
  /// the witness).
  std::string ToString() const;
};

/// \brief Materializes a Delivery from an engine-internal solution:
/// copies out names and texts from `set`, grounds every participant's
/// head atoms under the witness, and records the witness variables'
/// display names.  `solution` must use `set`'s id and variable
/// namespaces (the services translate shard-local solutions to global
/// ids before calling this).
Delivery MakeDelivery(const QuerySet& set,
                      const CoordinationSolution& solution,
                      uint64_t sequence);

/// \brief MakeDelivery's inverse view: the engine-facing (ids +
/// witness) form of a delivery — what Definition-1 re-validation
/// (ValidateSolution against the service's master set) consumes.
CoordinationSolution SolutionFromDelivery(const Delivery& delivery);

}  // namespace entangled

#endif  // ENTANGLED_API_DELIVERY_H_
