#ifndef ENTANGLED_CORE_UNIFY_H_
#define ENTANGLED_CORE_UNIFY_H_

#include <optional>
#include <vector>

#include "db/atom.h"

namespace entangled {

/// \brief A substitution over a fixed variable universe, maintained as a
/// union-find of variable classes with at most one constant per class.
///
/// Because entangled-query atoms are flat (no function symbols), the
/// Most General Unifier reduces to merging variable classes and binding
/// classes to constants — near-linear time, no occurs check needed.
/// This is the engine behind both the paper's MGU step (§2.3) and the
/// per-component combined queries of the SCC algorithm (§4).
class Substitution {
 public:
  /// Identity substitution over variables 0..num_vars-1.
  explicit Substitution(size_t num_vars);

  size_t num_vars() const { return parent_.size(); }

  /// Representative variable of v's class (path-compressing).
  VarId Find(VarId v);

  /// Constant bound to v's class, or nullptr.
  const Value* ConstantOf(VarId v);

  /// Merges the classes of a and b; false on constant clash.
  bool UnifyVars(VarId a, VarId b);

  /// Binds v's class to `value`; false on clash with a different
  /// constant.
  bool BindConstant(VarId v, const Value& value);

  /// Unifies two terms; false when impossible.
  bool UnifyTerms(const Term& a, const Term& b);

  /// Unifies two atoms positionwise; false on relation/arity mismatch or
  /// term clash.  May leave partial bindings behind on failure — callers
  /// that need transactionality take a copy first (coordination
  /// instances are small; the paper's algorithms abandon the whole
  /// component on failure anyway).
  bool UnifyAtoms(const Atom& a, const Atom& b);

  /// Unifies the atom lists pairwise (requires equal lengths).
  bool UnifyAtomLists(const std::vector<Atom>& as,
                      const std::vector<Atom>& bs);

  /// Rewrites a term to its class constant (if any) or representative
  /// variable.
  Term Resolve(const Term& term);

  /// Applies Resolve to every term of the atom.
  Atom Apply(const Atom& atom);
  std::vector<Atom> ApplyAll(const std::vector<Atom>& atoms);

 private:
  std::vector<VarId> parent_;
  std::vector<int32_t> rank_;
  // Engaged entry = constant of the class whose representative this is.
  std::vector<std::optional<Value>> constant_;
};

/// \brief Convenience MGU of two atoms over `num_vars` variables;
/// nullopt when they do not unify.
std::optional<Substitution> MostGeneralUnifier(const Atom& a, const Atom& b,
                                               size_t num_vars);

}  // namespace entangled

#endif  // ENTANGLED_CORE_UNIFY_H_
