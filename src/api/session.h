#ifndef ENTANGLED_API_SESSION_H_
#define ENTANGLED_API_SESSION_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/delivery.h"
#include "common/metrics.h"
#include "system/engine.h"

namespace entangled {

/// \brief Identifier of a ClientSession within its SessionManager.
using SessionId = int64_t;

/// \brief Why a session refused a submission.  Typed so servers can map
/// rejections to protocol errors without parsing message strings.
enum class RejectReason : uint8_t {
  kNone = 0,        ///< not rejected
  kParseError,      ///< the text is not a well-formed entangled query
  kDuplicateHead,   ///< two head atoms of the query unify with each other
  kUnsafe,          ///< a postcondition unifies with >1 of the query's
                    ///< own heads (Definition 2, violated in isolation)
  kSessionClosed,   ///< the session was closed
  kQuotaPending,    ///< a pending-query quota is exhausted (per-session
                    ///< SessionOptions::max_pending or the manager-wide
                    ///< ManagerOptions::global_pending_ceiling)
  kQuotaRate,       ///< the session's token bucket is empty
                    ///< (SessionOptions::max_queries_per_sec)
  kQuotaFootprint,  ///< the query's body is wider than
                    ///< SessionOptions::max_body_atoms allows
  kOverloaded,      ///< the front door is shedding load (a high-water
                    ///< mark was crossed; recovery is hysteretic)
  kInternal,        ///< the service failed for another reason
};

/// Every RejectReason, for exhaustive iteration (metrics counters, the
/// round-trip name test).  Must list each enumerator exactly once.
inline constexpr RejectReason kAllRejectReasons[] = {
    RejectReason::kNone,          RejectReason::kParseError,
    RejectReason::kDuplicateHead, RejectReason::kUnsafe,
    RejectReason::kSessionClosed, RejectReason::kQuotaPending,
    RejectReason::kQuotaRate,     RejectReason::kQuotaFootprint,
    RejectReason::kOverloaded,    RejectReason::kInternal,
};
inline constexpr size_t kNumRejectReasons =
    sizeof(kAllRejectReasons) / sizeof(kAllRejectReasons[0]);

/// Stable lowercase name ("parse_error", "unsafe", ...).
const char* RejectReasonName(RejectReason reason);

/// \brief Typed outcome of ClientSession::Submit.
struct SubmitOutcome {
  QueryId id = -1;  ///< service-global id; valid when ok()
  RejectReason reason = RejectReason::kNone;
  std::string message;  ///< human-readable detail when rejected

  bool ok() const { return reason == RejectReason::kNone; }
  explicit operator bool() const { return ok(); }
};

/// \brief Typed outcome of ClientSession::SubmitBatch.  Admission is
/// all-or-nothing: on rejection nothing from the batch was admitted and
/// `rejected_index` names the offending text.
struct BatchOutcome {
  std::vector<QueryId> ids;  ///< in input order; valid when ok()
  RejectReason reason = RejectReason::kNone;
  std::string message;
  size_t rejected_index = 0;  ///< offending position when rejected

  bool ok() const { return reason == RejectReason::kNone; }
  explicit operator bool() const { return ok(); }
};

class SessionManager;

/// \brief One event routed to one session: a coordinating set that
/// includes at least one of the session's queries.  The Delivery is
/// shared (read-only) between every owning session; `own_queries` is
/// this session's slice of it.
struct SessionEvent {
  SessionId session = -1;
  std::shared_ptr<const Delivery> delivery;
  std::vector<QueryId> own_queries;  ///< this session's members, ascending
};

/// \brief Per-session admission policy.
struct SessionOptions {
  std::string label;  ///< display name for operators ("" = "s<id>")

  /// Reject queries that are defective in isolation *before* they reach
  /// the engine: a duplicate-head query double-books one answer slot,
  /// and a self-unsafe query (one of its own postconditions unifies
  /// with two of its own heads) poisons every component it ever joins —
  /// Definition 2 can never hold for a set containing it.  Both checks
  /// are per-query only, so they accept exactly what the engine accepts
  /// on any single-head query (in particular everything the workload
  /// generator emits); disable them to forward texts verbatim.
  bool reject_defective = true;

  // ---- per-session quotas (0 = unlimited).  Every quota rejection is
  // a typed outcome (kQuotaPending / kQuotaRate / kQuotaFootprint):
  // nothing throws, nothing is silently dropped, and the metrics
  // snapshot counts every bounce. ----

  /// Most queries this session may hold pending at once.  A batch is
  /// admitted only when the *whole* batch fits (all-or-nothing, like
  /// every other batch failure).
  size_t max_pending = 0;

  /// Sustained queries/second this session may submit, enforced by a
  /// token bucket (burst = max(1, ceil(rate)) tokens; one token per
  /// query text, so a batch of k costs k).  Tokens are spent only on
  /// accepted submissions — a rejected text never burns budget.  Time
  /// comes from ManagerOptions::clock_nanos, so tests inject a clock.
  double max_queries_per_sec = 0;

  /// Widest query body (in body atoms) this session may submit — the
  /// per-participant footprint bound motivated by the paper's hardness
  /// results: solver cost explodes with footprint width, so one
  /// adversarial session must not be able to inject wide queries that
  /// blow up evaluation for every tenant.
  size_t max_body_atoms = 0;
};

/// \brief Manager-wide admission policy (ManagerOptions to
/// SessionManager's constructor; all limits default to off).
struct ManagerOptions {
  /// Most queries pending across *all* sessions; submissions beyond it
  /// bounce with kQuotaPending.  Counted from the manager's own
  /// bookkeeping (the per-session pending sets), so the check is O(1)
  /// and never forces an intake drain.
  size_t global_pending_ceiling = 0;

  /// Overload shedding: once the manager-tracked global pending count
  /// reaches `shed_high_water`, Submit/SubmitBatch reject with
  /// kOverloaded *before* touching the service, and keep rejecting
  /// until pending falls back to `shed_low_water` (default: half the
  /// high-water mark) — hysteresis, so recovery is a clean edge instead
  /// of flapping at the mark.  Cancels, deliveries, and Flush() remain
  /// admissible throughout: they are how the backlog drains.
  size_t shed_high_water = 0;
  size_t shed_low_water = 0;

  /// Same shedding trigger on the service's intake-queue depth
  /// (CoordinationService::IntakeDepth — validated-but-undrained
  /// submissions).  Only meaningful over an AdmitsDeferred service;
  /// recovery requires the depth back under half the mark.  The read is
  /// passive, so arming this never defeats the non-blocking intake.
  size_t shed_intake_high_water = 0;

  /// Monotonic clock for the rate quotas, nanoseconds.  Null (the
  /// default) reads std::chrono::steady_clock; tests inject a manual
  /// clock so token-bucket behaviour is deterministic.
  std::function<uint64_t()> clock_nanos;
};

/// \brief A client's handle on the coordination service: the unit of
/// multi-tenant isolation the Youtopia module (§6.1) assumes.  All
/// traffic goes through the owning SessionManager's service; a session
/// adds ownership (you can only cancel or enumerate your own queries),
/// typed submit outcomes, and a per-session event stream.
///
/// Events can be consumed two ways:
///  * **Pull** — PollEvents() drains the buffered events.  This is the
///    front door for async servers and CLIs: polling happens outside
///    any engine call, so handlers are free to Submit/Cancel/Flush.
///  * **Push** — set_event_callback() observes each event at enqueue
///    time.  Push handlers run inside the service's delivery path and
///    must not re-enter it (same contract as
///    CoordinationService::set_delivery_callback).
/// Both observe the same stream in the same order: an event is always
/// buffered, and the push hook (when set) fires as it is buffered.
///
/// Sessions are created by SessionManager::Open and owned by the
/// manager; the manager must outlive every handle.  Like the services
/// beneath it, the session API is single-threaded.
class ClientSession {
 public:
  using EventCallback = std::function<void(const SessionEvent&)>;

  SessionId id() const { return id_; }
  const std::string& label() const { return options_.label; }
  bool open() const { return open_; }

  /// Submits one query in the paper's concrete syntax.  On success the
  /// query belongs to this session; rejection reasons are typed
  /// (RejectReason) instead of a bare status.
  ///
  /// When the underlying service admits deferred submissions
  /// (CoordinationService::AdmitsDeferred — an engine with an armed
  /// intake queue), the call validates and enqueues without waiting on
  /// any in-progress flush: the returned id is final, the query counts
  /// as pending immediately, but coordination happens at the service's
  /// next flush or read boundary rather than inside this call.
  SubmitOutcome Submit(const std::string& query_text);

  /// All-or-nothing batch submission (one Flush after the whole batch
  /// lands, exactly like CoordinationService::SubmitBatch).
  BatchOutcome SubmitBatch(const std::vector<std::string>& query_texts);

  /// Withdraws one of *this session's* pending queries.  False when the
  /// id is unknown, not pending, or owned by another session.
  bool Cancel(QueryId id);

  /// This session's pending queries, ascending.  Under deferred
  /// admission, queued-but-not-yet-drained submissions are included:
  /// "pending" means submitted and not yet delivered or cancelled,
  /// regardless of whether the service has drained its intake.
  std::vector<QueryId> PendingQueries() const;
  size_t num_pending() const { return pending_.size(); }
  /// Whether `id` is one of this session's *pending* queries (delivered
  /// and cancelled queries drop out; for lifetime ownership — which
  /// survives retirement — ask SessionManager::OwnerOf).
  bool HasPending(QueryId id) const { return pending_.count(id) > 0; }

  /// Drains the buffered events, in delivery order.
  std::vector<SessionEvent> PollEvents();
  size_t num_buffered_events() const { return events_.size(); }

  /// Optional push notification; see the class comment for the
  /// reentrancy contract.  Events already buffered are not replayed.
  void set_event_callback(EventCallback callback) {
    event_callback_ = std::move(callback);
  }

  /// Lifetime counters (for operator surfaces like the CLI `sessions`
  /// table).
  uint64_t submitted() const { return submitted_; }
  uint64_t deliveries() const { return deliveries_; }

  /// Closes the session: every pending query is bulk-cancelled, and
  /// further submissions are rejected with kSessionClosed.  Buffered
  /// events stay pollable so a disconnecting client can drain them.
  void Close();

 private:
  friend class SessionManager;
  ClientSession(SessionManager* manager, SessionId id, SessionOptions options)
      : manager_(manager), id_(id), options_(std::move(options)) {}

  SessionManager* manager_;
  SessionId id_;
  SessionOptions options_;
  bool open_ = true;
  std::unordered_set<QueryId> pending_;
  std::deque<SessionEvent> events_;
  EventCallback event_callback_;
  uint64_t submitted_ = 0;
  uint64_t deliveries_ = 0;
  // Token bucket (SessionOptions::max_queries_per_sec); managed by the
  // manager, which owns the clock.  Initialized full on first use.
  double tokens_ = 0;
  uint64_t last_refill_ns_ = 0;
  bool bucket_primed_ = false;
};

/// \brief The multi-client front door over any CoordinationService
/// (single or sharded): owns the client sessions, tracks which session
/// owns which query, and routes every Delivery to all owning sessions —
/// a coordinating set spanning sessions notifies every owner, each with
/// its own `own_queries` slice of the shared event.
///
/// The manager installs itself as the service's delivery callback on
/// construction and detaches on destruction.  While it is attached the
/// manager owns the service's traffic: submitting directly on the
/// service is unsupported (a direct query delivered *outside* any
/// session call is routed to nobody, but one delivered during a
/// session's Submit would be attributed to that session — the manager
/// cannot tell a mid-call id it has not registered yet from a foreign
/// one).
class SessionManager {
 public:
  explicit SessionManager(CoordinationService* service,
                          ManagerOptions options = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session.  The returned handle is owned by the manager and
  /// valid until the manager is destroyed (Close()d sessions keep their
  /// handle; ids are never reused).
  ClientSession* Open(SessionOptions options = {});

  /// Closes the session (bulk-cancelling its pending queries); false
  /// when the id is unknown or already closed.
  bool Close(SessionId id);

  /// The session with the given id (open or closed), or nullptr.
  ClientSession* Find(SessionId id);
  const ClientSession* Find(SessionId id) const;

  /// The session that submitted the query (still valid after the query
  /// delivered or cancelled), or -1 for queries the manager never saw.
  SessionId OwnerOf(QueryId id) const;

  /// Recovery adoption (storage/durable_service.h): re-binds a
  /// rehydrated query to the session that owned it pre-crash, marking
  /// it session-pending when the service still holds it.  Safe to call
  /// more than once per query (the durable replay adopts before *and*
  /// after applying a submission, so a delivery fired inside the apply
  /// already routes correctly).  Returns false — leaving the query
  /// owner-less but service-pending — when the session was never
  /// reopened or is closed.
  bool AdoptRecovered(SessionId session, QueryId id);

  /// Recovery counterpart of a replayed cancel: clears the owning
  /// session's pending entry (no-op for unowned queries).
  void UnadoptRecovered(QueryId id);

  /// Every session ever opened, ascending by id.
  std::vector<const ClientSession*> sessions() const;
  size_t num_sessions() const { return sessions_.size(); }
  size_t num_open_sessions() const { return num_open_; }

  // ----- service passthroughs (all sessions combined) -----
  size_t Flush();
  void set_evaluate_every(size_t n) { service_->set_evaluate_every(n); }
  std::vector<QueryId> PendingQueries() const {
    return service_->PendingQueries();
  }
  size_t num_pending() const { return service_->num_pending(); }
  EngineStats StatsSnapshot() const { return service_->StatsSnapshot(); }
  CoordinationService* service() const { return service_; }

  // ----- observability -----

  /// Whether overload shedding is currently engaged (kOverloaded
  /// rejections until the low-water mark is reached).
  bool shedding() const { return shedding_; }

  /// One self-contained observability snapshot (common/metrics.h):
  /// engine counters, a counter per RejectReason, shed state, the
  /// per-entry-point latency histograms (submit / submit_batch /
  /// cancel / flush / poll_events) plus the engine's eval histogram,
  /// and the service gauges (per-shard rows on a sharded service).
  /// The snapshot owns every byte — nothing references manager or
  /// engine internals — and Metrics().ToJson() is the stable JSON
  /// document the CLI `metrics` subcommand, the benches, and the
  /// stress harness consume.  Reading it is a service read boundary
  /// (queued intake is drained, like num_pending()).
  MetricsSnapshot Metrics() const;

 private:
  friend class ClientSession;

  /// Service delivery hook: route the event to every owning session.
  void OnDelivery(const Delivery& delivery);

  /// Records `session` as the owner of `id` (and as pending when the
  /// service still holds it).
  void RegisterOwnership(QueryId id, ClientSession* session);

  SubmitOutcome SubmitFor(ClientSession* session,
                          const std::string& query_text);
  BatchOutcome SubmitBatchFor(ClientSession* session,
                              const std::vector<std::string>& query_texts);
  bool CancelFor(ClientSession* session, QueryId id);
  void CloseSession(ClientSession* session);

  // ----- quotas, shedding, and pending accounting -----

  uint64_t NowNanos() const;

  /// Admission gate shared by Submit and SubmitBatch (`count` = query
  /// texts being admitted): overload shedding (with the hysteresis
  /// update), the global pending ceiling, the session pending quota,
  /// and the rate quota, in that order.  kNone when admissible;
  /// `message` receives the detail otherwise.  Does not spend tokens —
  /// SpendTokens runs only after the service accepted.
  RejectReason AdmissionCheck(ClientSession* session, size_t count,
                              std::string* message);

  /// Re-evaluates the hysteretic shedding state against the current
  /// load; returns whether submissions are currently shed.
  bool UpdateShedding();

  /// Refills `session`'s token bucket from the clock, then reports
  /// whether `cost` tokens are available / spends them.
  void RefillBucket(ClientSession* session);
  void SpendTokens(ClientSession* session, double cost);

  /// Pending-set bookkeeping: every insert/erase of a session's
  /// pending_ goes through these so tracked_pending_ (the O(1) global
  /// count quotas and shedding read) never drifts.
  void MarkPending(ClientSession* session, QueryId id);
  void UnmarkPending(ClientSession* session, QueryId id);

  /// Marks `id` delivered.  RegisterOwnership consults this on the
  /// deferred-admission path: the service contract permits retiring an
  /// id *inside* the submitting call (the inline engines deliver
  /// per-arrival; a full intake ring drains — and delivers — inline),
  /// and a retired id must not be optimistically inserted as pending
  /// afterwards — that phantom entry would never clear and the session
  /// pendings would stop tiling the service's pending set.
  void MarkRetired(QueryId id);
  bool IsRetired(QueryId id) const;

  void CountReject(RejectReason reason);

  CoordinationService* service_;
  ManagerOptions options_;
  std::vector<std::unique_ptr<ClientSession>> sessions_;  // index == id
  size_t num_open_ = 0;
  std::vector<SessionId> owner_;  // per service-global QueryId; -1 unknown
  std::vector<bool> retired_;     // per service-global QueryId: delivered
  /// Session whose Submit/SubmitBatch is currently inside the service:
  /// deliveries fired *during* that call can contain ids the manager
  /// has not registered yet (the service assigns them mid-call), and
  /// they all belong to this submitter.
  SessionId current_submitter_ = -1;

  // ----- admission-control state -----
  size_t tracked_pending_ = 0;  ///< sum of per-session pending_.size()
  bool shedding_ = false;
  uint64_t shed_transitions_ = 0;  ///< times shedding engaged

  // ----- metrics -----
  std::array<uint64_t, kNumRejectReasons> reject_counts_{};
  LatencyHistogram lat_submit_;
  LatencyHistogram lat_submit_batch_;
  LatencyHistogram lat_cancel_;
  LatencyHistogram lat_flush_;
  LatencyHistogram lat_poll_events_;
};

}  // namespace entangled

#endif  // ENTANGLED_API_SESSION_H_
