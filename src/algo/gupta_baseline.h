#ifndef ENTANGLED_ALGO_GUPTA_BASELINE_H_
#define ENTANGLED_ALGO_GUPTA_BASELINE_H_

#include "algo/stats.h"
#include "common/result.h"
#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"

namespace entangled {

/// \brief The baseline evaluation algorithm of Gupta et al. [SIGMOD'11]
/// as summarized in paper §2.3: requires the query set to be both *safe*
/// and *unique*.
///
/// It computes the Most General Unifier across all queries (traversing
/// the extended coordination graph), builds one combined conjunctive
/// query from the unified heads and bodies, and issues it to the
/// database; a witness grounds the entire set at once.
///
/// Uniqueness means all-or-nothing: when the combined query fails, no
/// coordinating set exists.  The SCC Coordination Algorithm subsumes
/// this baseline; it is implemented for comparison benchmarks (ablation
/// A1 in DESIGN.md).
class GuptaBaseline {
 public:
  explicit GuptaBaseline(const Database* db);

  /// OK with the full set, NotFound when unification or grounding fails,
  /// FailedPrecondition when the set is not safe+unique.
  Result<CoordinationSolution> Solve(const QuerySet& set);

  const SolverStats& stats() const { return stats_; }

 private:
  const Database* db_;
  SolverStats stats_;
};

}  // namespace entangled

#endif  // ENTANGLED_ALGO_GUPTA_BASELINE_H_
