#ifndef ENTANGLED_COMMON_THREAD_POOL_H_
#define ENTANGLED_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace entangled {

/// \brief A fixed-size pool of worker threads with two entry points:
/// a FIFO closure queue (Submit/Wait) and a chunked work-stealing
/// parallel-for (RunChunked).
///
/// Submit/Wait serves coarse fan-out — the sharded front door's "flush
/// these shards concurrently".  Completion is **count-based**: one
/// submitted/completed counter pair instead of a per-task in-flight
/// census, so a worker finishing a task publishes one atomic increment
/// and touches the mutex only when it is the last task of a batch and a
/// waiter is actually armed (the old scheme locked twice per task and
/// `notify_all`ed on every drain).
///
/// RunChunked serves fine fan-out — the engine's "evaluate these K
/// dirty components".  The index space is sliced into one contiguous
/// run per participant; each participant drains its own run in chunks
/// of `chunk` indices (one atomic fetch_add per chunk, not one closure
/// per component), then steals chunks from other runs until everything
/// is claimed.  The **calling thread participates**, which makes nested
/// use safe: a worker running a shard flush can RunChunked that shard's
/// components and is guaranteed progress even when every other worker
/// is busy — whoever claims a chunk runs it to completion without
/// blocking, so the claimant chain always terminates.
///
/// Results travel through whatever the closures capture; ordering is
/// the caller's responsibility — the engine keeps its outputs
/// deterministic by *applying* results in a fixed order regardless of
/// completion order (see system/engine.cc).
///
/// Submit() and RunChunked() are thread-safe.  Destruction drains the
/// queue: queued tasks still run before the workers exit.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    ENTANGLED_CHECK_GT(num_threads, 0u);
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_worker_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; it will run on some worker thread.
  void Submit(std::function<void()> task) {
    ENTANGLED_CHECK(task != nullptr);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      submitted_.fetch_add(1, std::memory_order_relaxed);
      queue_.push_back(std::move(task));
    }
    wake_worker_.notify_one();
  }

  /// Blocks until every submitted task has finished running.  Tasks
  /// submitted concurrently with Wait() may or may not be covered; the
  /// intended pattern is submit-batch-then-wait from one coordinating
  /// thread.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    // seq_cst on the waiter flag vs. the completion counter closes the
    // store-load race against WorkerLoop's "skip the mutex when nobody
    // waits" fast path.
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    idle_.wait(lock, [this] {
      return completed_.load(std::memory_order_seq_cst) ==
             submitted_.load(std::memory_order_seq_cst);
    });
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Chunked work-stealing parallel-for: invokes `fn(i)` exactly once
  /// for every i in [0, count), on the calling thread plus up to
  /// num_threads() helpers, claiming `chunk` consecutive indices per
  /// atomic op.  Returns once every index has finished; the callees'
  /// writes are visible to the caller.  `fn` must be safe to invoke
  /// concurrently for distinct indices and must not block on the pool.
  void RunChunked(size_t count, size_t chunk,
                  const std::function<void(size_t)>& fn) {
    if (count == 0) return;
    if (chunk == 0) chunk = 1;
    size_t chunks = (count + chunk - 1) / chunk;
    size_t helpers = workers_.size();
    if (helpers + 1 > chunks) helpers = chunks - 1;
    if (helpers == 0) {  // serial fast path: nothing to steal, no job state
      for (size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    auto job = std::make_shared<ChunkJob>();
    job->fn = &fn;
    job->count = count;
    job->chunk = chunk;
    job->num_runs = helpers + 1;
    job->runs.reset(new ChunkJob::Run[job->num_runs]);
    size_t base = count / job->num_runs;
    size_t rem = count % job->num_runs;
    size_t start = 0;
    for (size_t r = 0; r < job->num_runs; ++r) {
      size_t len = base + (r < rem ? 1 : 0);
      job->runs[r].next.store(start, std::memory_order_relaxed);
      job->runs[r].end = start + len;
      start += len;
    }
    // Helpers hold the job alive via shared_ptr: a closure that runs
    // after the job already drained finds every run dry and returns.
    // `fn` itself is only dereferenced for claimed indices, all of
    // which complete before the caller's wait below returns.
    for (size_t h = 0; h < helpers; ++h) {
      Submit([job] { Participate(*job); });
    }
    Participate(*job);
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done.wait(lock, [&job] {
      return job->completed.load(std::memory_order_acquire) == job->count;
    });
  }

 private:
  struct ChunkJob {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    size_t chunk = 1;
    struct alignas(64) Run {
      std::atomic<size_t> next{0};
      size_t end = 0;
    };
    std::unique_ptr<Run[]> runs;
    size_t num_runs = 0;
    std::atomic<size_t> arrivals{0};   ///< assigns each participant a run
    std::atomic<size_t> completed{0};  ///< indices finished
    std::mutex mutex;
    std::condition_variable done;
  };

  /// Drains the participant's own run, then steals chunks round-robin
  /// from the others.  Never blocks.
  static void Participate(ChunkJob& job) {
    const size_t mine =
        job.arrivals.fetch_add(1, std::memory_order_relaxed) % job.num_runs;
    size_t finished = 0;
    for (size_t r = 0; r < job.num_runs; ++r) {
      ChunkJob::Run& run = job.runs[(mine + r) % job.num_runs];
      for (;;) {
        size_t i = run.next.fetch_add(job.chunk, std::memory_order_relaxed);
        if (i >= run.end) break;
        size_t stop = i + job.chunk < run.end ? i + job.chunk : run.end;
        finished += stop - i;
        for (; i < stop; ++i) (*job.fn)(i);
      }
    }
    if (finished == 0) return;
    // Release pairs with the caller's acquire so every fn(i) write is
    // visible once the wait returns; the mutex hop only happens for
    // whoever retires the last index.
    size_t done_total =
        job.completed.fetch_add(finished, std::memory_order_acq_rel) +
        finished;
    if (done_total == job.count) {
      std::lock_guard<std::mutex> lock(job.mutex);
      job.done.notify_one();  // exactly one waiter: the RunChunked caller
    }
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_worker_.wait(lock,
                          [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      uint64_t done = completed_.fetch_add(1, std::memory_order_seq_cst) + 1;
      if (waiters_.load(std::memory_order_seq_cst) != 0 &&
          done == submitted_.load(std::memory_order_seq_cst)) {
        // Lock so the notify cannot slip between a waiter's predicate
        // check and its sleep; notify_all because several threads may
        // Wait() on the same batch boundary (rare, once per batch).
        std::lock_guard<std::mutex> lock(mutex_);
        idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_worker_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> waiters_{0};
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace entangled

#endif  // ENTANGLED_COMMON_THREAD_POOL_H_
