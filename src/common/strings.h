#ifndef ENTANGLED_COMMON_STRINGS_H_
#define ENTANGLED_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace entangled {

/// Concatenates the string representations of all arguments.  Numeric
/// types go through operator<< so doubles keep their default formatting.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  ((out << args), ...);
  return out.str();
}

/// Joins `pieces` with `separator` ("a", ",", {"a","b"} -> "a,b").
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Joins arbitrary items with `separator` after streaming each through
/// operator<<.
template <typename Container>
std::string JoinStreamed(const Container& items, std::string_view separator) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << separator;
    out << item;
    first = false;
  }
  return out.str();
}

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Whether `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

}  // namespace entangled

#endif  // ENTANGLED_COMMON_STRINGS_H_
