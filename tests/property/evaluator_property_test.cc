// Property: the index-accelerated backtracking evaluator agrees with a
// dead-simple reference join (nested loops over raw rows, no indexes,
// no atom reordering) on random conjunctive queries — same solution
// count, and FindOne's witness actually satisfies the body.

#include <optional>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/evaluator.h"

namespace entangled {
namespace {

/// Reference semantics: try every row combination in input order.
uint64_t NaiveCount(const Database& db, const std::vector<Atom>& body,
                    Binding* binding, size_t index) {
  if (index == body.size()) return 1;
  const Atom& atom = body[index];
  const Relation& relation = *db.Find(atom.relation);
  uint64_t count = 0;
  for (RowView row : relation.rows()) {
    std::vector<VarId> bound_here;
    bool match = true;
    for (size_t i = 0; i < atom.terms.size() && match; ++i) {
      const Term& term = atom.terms[i];
      if (term.is_constant()) {
        match = term.constant() == row[i];
      } else {
        const Value* bound = binding->Find(term.var());
        if (bound == nullptr) {
          binding->emplace(term.var(), row[i]);
          bound_here.push_back(term.var());
        } else {
          match = *bound == row[i];
        }
      }
    }
    if (match) count += NaiveCount(db, body, binding, index + 1);
    for (VarId v : bound_here) binding->erase(v);
  }
  return count;
}

bool SatisfiesBody(const Database& db, const std::vector<Atom>& body,
                   const Binding& witness) {
  for (const Atom& atom : body) {
    const Relation& relation = *db.Find(atom.relation);
    bool found = false;
    for (RowView row : relation.rows()) {
      bool match = true;
      for (size_t i = 0; i < atom.terms.size() && match; ++i) {
        const Term& term = atom.terms[i];
        const Value& expected =
            term.is_constant() ? term.constant() : witness.at(term.var());
        match = expected == row[i];
      }
      if (match) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

class EvaluatorVsNaive : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvaluatorVsNaive, CountsAgreeAndWitnessesSatisfy) {
  Rng rng(GetParam() * 2467);
  Database db;
  // Two small relations with colliding values so joins are non-trivial.
  for (const char* name : {"P", "Q"}) {
    size_t arity = 2 + rng.NextBounded(2);
    std::vector<std::string> columns;
    for (size_t c = 0; c < arity; ++c) {
      columns.push_back("c" + std::to_string(c));
    }
    Relation* relation = *db.CreateRelation(name, columns);
    size_t rows = 3 + rng.NextBounded(6);
    for (size_t r = 0; r < rows; ++r) {
      Tuple tuple;
      for (size_t c = 0; c < arity; ++c) {
        tuple.push_back(Value::Int(static_cast<int64_t>(
            rng.NextBounded(4))));
      }
      ASSERT_TRUE(relation->Insert(std::move(tuple)).ok());
    }
  }

  Evaluator evaluator(&db);
  for (int trial = 0; trial < 20; ++trial) {
    // Random body: 1..3 atoms over P/Q, terms drawn from 4 variables
    // and small constants.
    std::vector<Atom> body;
    size_t num_atoms = 1 + rng.NextBounded(3);
    for (size_t a = 0; a < num_atoms; ++a) {
      const char* name = rng.NextBool() ? "P" : "Q";
      const Relation& relation = *db.Find(name);
      Atom atom;
      atom.relation = name;
      for (size_t c = 0; c < relation.arity(); ++c) {
        if (rng.NextBool(0.6)) {
          atom.terms.push_back(
              Term::Var(static_cast<VarId>(rng.NextBounded(4))));
        } else {
          atom.terms.push_back(Term::Int(
              static_cast<int64_t>(rng.NextBounded(4))));
        }
      }
      body.push_back(std::move(atom));
    }

    Binding scratch;
    uint64_t expected = NaiveCount(db, body, &scratch, 0);
    EXPECT_EQ(evaluator.CountSolutions(body), expected);

    auto witness = evaluator.FindOne(body);
    EXPECT_EQ(witness.has_value(), expected > 0);
    if (witness.has_value()) {
      EXPECT_TRUE(SatisfiesBody(db, body, *witness));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomJoins, EvaluatorVsNaive,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace entangled
