#include "workload/scenarios.h"

#include "common/logging.h"
#include "core/parser.h"

namespace entangled {
namespace {

void MustInsert(Relation* relation, Tuple tuple) {
  Status status = relation->Insert(std::move(tuple));
  ENTANGLED_CHECK(status.ok()) << status.ToString();
}

}  // namespace

FlightHotelIds BuildFlightHotelScenario(Database* db, QuerySet* set) {
  ENTANGLED_CHECK(db != nullptr && set != nullptr);
  Relation* flights = *db->CreateRelation("F", {"flightId", "destination"});
  Relation* hotels = *db->CreateRelation("H", {"hotelId", "location"});
  int64_t fid = 100, hid = 200;
  for (const char* city : {"Paris", "Athens", "Madrid", "Zurich"}) {
    MustInsert(flights, {Value::Int(fid++), Value::Str(city)});
    MustInsert(flights, {Value::Int(fid++), Value::Str(city)});
    MustInsert(hotels, {Value::Int(hid++), Value::Str(city)});
  }

  // Figure 1, verbatim (C, G, J, W are the band members; the answer
  // relations R and Q coordinate flights and hotels respectively).
  auto ids = ParseQueries(R"(
    qC: { R(G, x1) }           R(C, x1), Q(C, x2) :- F(x1, x), H(x2, x).
    qG: { R(C, y1), Q(C, y2) } R(G, y1), Q(G, y2) :- F(y1, Paris), H(y2, Paris).
    qJ: { R(C, z1), R(G, z1) } R(J, z1), Q(J, z2) :- F(z1, Athens), H(z2, Athens).
    qW: { R(C, w1), Q(J, w2) } R(W, w1), Q(W, w2) :- F(w1, Madrid), H(w2, Madrid).
  )",
                          set);
  ENTANGLED_CHECK(ids.ok()) << ids.status().ToString();
  ENTANGLED_CHECK_EQ(ids->size(), 4u);
  return FlightHotelIds{(*ids)[0], (*ids)[1], (*ids)[2], (*ids)[3]};
}

MovieScenario BuildMovieScenario(Database* db) {
  ENTANGLED_CHECK(db != nullptr);
  // Friendships (table C of §5), directed as listed in the paper.
  Relation* friends = *db->CreateRelation("C", {"user", "friend"});
  const std::vector<std::pair<const char*, const char*>> pairs = {
      {"Chris", "Jonny"}, {"Chris", "Guy"},  {"Guy", "Chris"},
      {"Guy", "Jonny"},   {"Jonny", "Chris"}, {"Jonny", "Will"},
      {"Will", "Chris"},  {"Will", "Guy"},
  };
  for (const auto& [user, fr] : pairs) {
    MustInsert(friends, {Value::Str(user), Value::Str(fr)});
  }
  // Cinemas table M = (movie_id, cinema, movie): Hugo plays at Regal,
  // AMC and Cinemark; Contagion at Regal; Project X at AMC.
  Relation* movies =
      *db->CreateRelation("M", {"movie_id", "cinema", "movie"});
  MustInsert(movies, {Value::Int(1), Value::Str("Regal"),
                      Value::Str("Contagion")});
  MustInsert(movies, {Value::Int(2), Value::Str("Regal"),
                      Value::Str("Hugo")});
  MustInsert(movies, {Value::Int(3), Value::Str("AMC"),
                      Value::Str("Project X")});
  MustInsert(movies,
             {Value::Int(4), Value::Str("AMC"), Value::Str("Hugo")});
  MustInsert(movies, {Value::Int(5), Value::Str("Cinemark"),
                      Value::Str("Hugo")});

  MovieScenario scenario;
  scenario.schema.thing_relation = "M";
  scenario.schema.friends_relation = "C";
  scenario.schema.coordination_attrs = {1};  // the cinema column

  // qc: Chris wants Contagion at Regal, with Will (a constant partner —
  // note Will is not Chris's friend, which is allowed).
  ConsistentQuery chris;
  chris.user = "Chris";
  chris.self_spec = {Value::Str("Regal"), Value::Str("Contagion")};
  chris.partners = {PartnerSpec::User("Will")};
  // qg: Guy wants Project X at AMC, with any friend.
  ConsistentQuery guy;
  guy.user = "Guy";
  guy.self_spec = {Value::Str("AMC"), Value::Str("Project X")};
  guy.partners = {PartnerSpec::AnyFriend()};
  // qj / qw: Jonny and Will want Hugo anywhere, with any friend.
  ConsistentQuery jonny;
  jonny.user = "Jonny";
  jonny.self_spec = {std::nullopt, Value::Str("Hugo")};
  jonny.partners = {PartnerSpec::AnyFriend()};
  ConsistentQuery will;
  will.user = "Will";
  will.self_spec = {std::nullopt, Value::Str("Hugo")};
  will.partners = {PartnerSpec::AnyFriend()};

  scenario.queries = {std::move(chris), std::move(guy), std::move(jonny),
                      std::move(will)};
  return scenario;
}

ConcertScenario BuildConcertScenario(Database* db, size_t num_fans,
                                     Rng* rng) {
  ENTANGLED_CHECK(db != nullptr && rng != nullptr);
  ENTANGLED_CHECK_GE(num_fans, 2u);
  ConcertScenario scenario;
  scenario.tour_stops = {"Zurich", "Paris", "Berlin", "London"};
  const std::vector<std::string> days = {"Jun14", "Jun15", "Jun21"};
  const std::vector<std::string> homes = {"NYC", "SFO", "TLV", "NRT",
                                          "GRU"};
  const std::vector<std::string> airlines = {"AirAlpha", "AirBravo"};

  // Flights(fid, destination, day, source, airline): every home city
  // reaches every tour stop on every concert day, alternating airlines.
  Relation* flights = *db->CreateRelation(
      "Flights", {"fid", "destination", "day", "source", "airline"});
  int64_t fid = 1000;
  for (const std::string& home : homes) {
    for (const std::string& stop : scenario.tour_stops) {
      for (const std::string& day : days) {
        MustInsert(flights,
                   {Value::Int(fid), Value::Str(stop), Value::Str(day),
                    Value::Str(home),
                    Value::Str(airlines[static_cast<size_t>(fid) %
                                        airlines.size()])});
        ++fid;
      }
    }
  }

  // Friendship ring with a chord: fan i knows fan i+1 and fan i+2.
  Relation* friends = *db->CreateRelation("Fans", {"user", "friend"});
  for (size_t i = 0; i < num_fans; ++i) {
    scenario.fans.push_back("fan" + std::to_string(i));
  }
  for (size_t i = 0; i < num_fans; ++i) {
    for (size_t step : {size_t{1}, size_t{2}}) {
      size_t j = (i + step) % num_fans;
      if (j == i) continue;
      MustInsert(friends, {Value::Str(scenario.fans[i]),
                           Value::Str(scenario.fans[j])});
    }
  }

  scenario.schema.thing_relation = "Flights";
  scenario.schema.friends_relation = "Fans";
  scenario.schema.coordination_attrs = {1, 2};  // destination, day

  // Fans live in different cities (origin is a personal, non-shared
  // constraint); some pin the concert city, some their airline.
  for (size_t i = 0; i < num_fans; ++i) {
    ConsistentQuery q;
    q.user = scenario.fans[i];
    q.self_spec.assign(4, std::nullopt);
    q.self_spec[2] = Value::Str(homes[i % homes.size()]);  // source
    if (i % 3 == 0) {
      q.self_spec[0] =
          Value::Str(rng->Choice(scenario.tour_stops));  // destination
    }
    if (i % 5 == 0) {
      q.self_spec[3] = Value::Str(airlines[i % airlines.size()]);
    }
    q.partners.push_back(PartnerSpec::AnyFriend());
    scenario.queries.push_back(std::move(q));
  }
  return scenario;
}

}  // namespace entangled
