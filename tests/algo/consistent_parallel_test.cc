// The §6.2 future-work enhancement: per-value cleaning runs on worker
// threads.  The contract is bit-for-bit equality with the sequential
// algorithm — same agreed value, same members, same option lists.

#include <gtest/gtest.h>

#include "algo/consistent.h"
#include "common/rng.h"
#include "workload/consistent_workloads.h"
#include "workload/scenarios.h"

namespace entangled {
namespace {

ConsistentOptions Threads(int n) {
  ConsistentOptions options;
  options.num_threads = n;
  return options;
}

void ExpectSameSolution(const Result<ConsistentSolution>& a,
                        const Result<ConsistentSolution>& b) {
  ASSERT_EQ(a.ok(), b.ok()) << a.status() << " vs " << b.status();
  if (!a.ok()) return;
  EXPECT_EQ(a->agreed_value, b->agreed_value);
  ASSERT_EQ(a->size(), b->size());
  for (size_t m = 0; m < a->members.size(); ++m) {
    EXPECT_EQ(a->members[m].query_index, b->members[m].query_index);
    EXPECT_EQ(a->members[m].self_row, b->members[m].self_row);
    EXPECT_EQ(a->members[m].partner_queries,
              b->members[m].partner_queries);
  }
}

TEST(ConsistentParallelTest, MovieExampleIdenticalAcrossThreadCounts) {
  Database db;
  MovieScenario scenario = BuildMovieScenario(&db);
  ConsistentCoordinator sequential(&db, scenario.schema, Threads(1));
  auto base = sequential.Solve(scenario.queries);
  for (int threads : {2, 3, 8}) {
    ConsistentCoordinator parallel(&db, scenario.schema, Threads(threads));
    auto result = parallel.Solve(scenario.queries);
    ExpectSameSolution(base, result);
    EXPECT_EQ(sequential.value_outcomes(), parallel.value_outcomes());
  }
}

TEST(ConsistentParallelTest, WorstCaseWorkloadIdentical) {
  Database db;
  ASSERT_TRUE(InstallDistinctFlightsTable(&db, "Flights", 300).ok());
  ASSERT_TRUE(
      InstallCompleteFriends(&db, "Friends", MakeUserNames(20)).ok());
  ConsistentSchema schema = MakeFlightSchema("Flights", "Friends");
  auto queries = MakeWorstCaseConsistentQueries(20, 4);

  ConsistentCoordinator sequential(&db, schema, Threads(1));
  ConsistentCoordinator parallel(&db, schema, Threads(4));
  auto a = sequential.Solve(queries);
  auto b = parallel.Solve(queries);
  ExpectSameSolution(a, b);
  EXPECT_EQ(sequential.stats().candidate_values,
            parallel.stats().candidate_values);
}

TEST(ConsistentParallelTest, RandomInstancesIdentical) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 127);
    Database db;
    ConsistentSchema schema = MakeFlightSchema("Flights", "Friends");
    ASSERT_TRUE(InstallFlightsGrid(&db, "Flights",
                                   {"Paris", "Rome", "Oslo"},
                                   {"d1", "d2"}, 2, {"NYC", "SFO"},
                                   {"AirA"})
                    .ok());
    size_t num_users = 3 + rng.NextBounded(4);
    auto users = MakeUserNames(num_users);
    Relation* friends = *db.CreateRelation("Friends", {"user", "friend"});
    for (const auto& a : users) {
      for (const auto& b : users) {
        if (a != b && rng.NextBool(0.5)) {
          ASSERT_TRUE(friends->Insert({Value::Str(a), Value::Str(b)}).ok());
        }
      }
    }
    auto queries = MakeWorstCaseConsistentQueries(num_users, 4);
    for (auto& q : queries) {
      if (rng.NextBool(0.3)) q.self_spec[0] = Value::Str("Paris");
    }
    ConsistentCoordinator sequential(&db, schema, Threads(1));
    ConsistentCoordinator parallel(&db, schema, Threads(3));
    ExpectSameSolution(sequential.Solve(queries), parallel.Solve(queries));
  }
}

TEST(ConsistentParallelTest, MoreThreadsThanValuesIsFine) {
  Database db;
  ASSERT_TRUE(InstallFlightsGrid(&db, "Flights", {"Paris"}, {"d1"}, 1,
                                 {"NYC"}, {"AirA"})
                  .ok());
  ASSERT_TRUE(
      InstallCompleteFriends(&db, "Friends", MakeUserNames(2)).ok());
  ConsistentCoordinator coordinator(
      &db, MakeFlightSchema("Flights", "Friends"), Threads(16));
  auto result = coordinator.Solve(MakeWorstCaseConsistentQueries(2, 4));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2u);
}

}  // namespace
}  // namespace entangled
