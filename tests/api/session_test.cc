// Coverage for the session front door (api/session.h): typed submit
// outcomes, per-session ownership and cancellation, cross-session
// delivery routing, push-vs-poll stream equality, session teardown, and
// the same behaviour over the sharded engine.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "common/metrics.h"
#include "system/engine.h"
#include "system/sharded_engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

uint64_t Counter(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [key, value] : snap.counters) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "no counter named " << name;
  return 0;
}

const LatencyHistogram& Histogram(const MetricsSnapshot& snap,
                                  const std::string& name) {
  for (const auto& [key, hist] : snap.latency) {
    if (key == name) return hist;
  }
  static const LatencyHistogram kEmpty;
  ADD_FAILURE() << "no histogram named " << name;
  return kEmpty;
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 32).ok());
  }

  static std::string PairA(const std::string& rel) {
    return "a_" + rel + ": { " + rel + "(Bob, x) } " + rel +
           "(Alice, x) :- Users(x, 'user3').";
  }
  static std::string PairB(const std::string& rel) {
    return "b_" + rel + ": { " + rel + "(Alice, y) } " + rel +
           "(Bob, y) :- Users(y, 'user3').";
  }
  static std::string Stuck(const std::string& tag) {
    return "s_" + tag + ": { S(Never" + tag + ", x) } S(" + tag +
           ", x) :- Users(x, 'user7').";
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// Typed outcomes
// ---------------------------------------------------------------------------

TEST_F(SessionTest, TypedRejectionReasons) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();

  // Parse error.
  SubmitOutcome bad = session->Submit("not a query");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.reason, RejectReason::kParseError);
  EXPECT_FALSE(bad.message.empty());
  EXPECT_STREQ(RejectReasonName(bad.reason), "parse_error");

  // Duplicate heads: R(A, x) and R(A, y) book the same answer slot.
  SubmitOutcome dup = session->Submit(
      "dup: { } R(A, x), R(A, y) :- Users(x, 'user1'), Users(y, 'user1').");
  EXPECT_EQ(dup.reason, RejectReason::kDuplicateHead);

  // Self-unsafe: the postcondition R(p, q) unifies with both own heads
  // (which are not unifiable with each other — A vs B).
  SubmitOutcome unsafe = session->Submit(
      "selfunsafe: { R(p, q) } R(A, x), R(B, y) :- Users(x, 'user1'), "
      "Users(y, 'user1').");
  EXPECT_EQ(unsafe.reason, RejectReason::kUnsafe);

  // Nothing defective was admitted.
  EXPECT_EQ(manager.StatsSnapshot().submitted, 0u);
  EXPECT_EQ(session->num_pending(), 0u);

  // The checks are policy: a session that forwards verbatim admits the
  // same texts (the *set*-level unsafety is then the engine's business,
  // exactly as before the session layer existed).
  SessionOptions verbatim;
  verbatim.reject_defective = false;
  ClientSession* raw = manager.Open(verbatim);
  EXPECT_TRUE(raw->Submit(
                     "dup: { } R(A, x), R(A, y) :- Users(x, 'user1'), "
                     "Users(y, 'user1').")
                  .ok());
}

TEST_F(SessionTest, BatchOutcomeNamesTheOffendingText) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();

  BatchOutcome outcome = session->SubmitBatch(
      {PairA("P"), "garbage in the middle", PairB("P")});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.reason, RejectReason::kParseError);
  EXPECT_EQ(outcome.rejected_index, 1u);
  // All-or-nothing: nothing from the batch landed.
  EXPECT_EQ(manager.num_pending(), 0u);
  EXPECT_EQ(session->num_pending(), 0u);

  BatchOutcome good = session->SubmitBatch({PairA("P"), PairB("P")});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.ids.size(), 2u);
  // The pair coordinated inside the batch flush: one event, no pending.
  EXPECT_EQ(session->num_buffered_events(), 1u);
  EXPECT_EQ(session->num_pending(), 0u);
}

TEST_F(SessionTest, ClosedSessionRejectsSubmissions) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();
  ASSERT_TRUE(session->Submit(Stuck("T0")).ok());
  ASSERT_EQ(manager.num_pending(), 1u);

  session->Close();
  EXPECT_FALSE(session->open());
  // Teardown bulk-cancelled the pending query, in the engine too.
  EXPECT_EQ(manager.num_pending(), 0u);
  EXPECT_EQ(manager.StatsSnapshot().cancelled, 1u);

  SubmitOutcome rejected = session->Submit(Stuck("T1"));
  EXPECT_EQ(rejected.reason, RejectReason::kSessionClosed);
  EXPECT_EQ(session->SubmitBatch({Stuck("T1")}).reason,
            RejectReason::kSessionClosed);
  EXPECT_EQ(manager.num_open_sessions(), 0u);
  EXPECT_FALSE(manager.Close(session->id()));  // already closed
}

// ---------------------------------------------------------------------------
// Ownership & routing
// ---------------------------------------------------------------------------

TEST_F(SessionTest, CoordinatingSetSpanningSessionsNotifiesEveryOwner) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  SessionManager manager(&engine);
  ClientSession* alice = manager.Open({/*label=*/"alice"});
  ClientSession* bob = manager.Open({/*label=*/"bob"});

  SubmitOutcome a = alice->Submit(PairA("P"));
  SubmitOutcome b = bob->Submit(PairB("P"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(manager.OwnerOf(a.id), alice->id());
  EXPECT_EQ(manager.OwnerOf(b.id), bob->id());

  EXPECT_EQ(manager.Flush(), 1u);
  std::vector<SessionEvent> alice_events = alice->PollEvents();
  std::vector<SessionEvent> bob_events = bob->PollEvents();
  ASSERT_EQ(alice_events.size(), 1u);
  ASSERT_EQ(bob_events.size(), 1u);
  // Both observe the same self-contained event...
  EXPECT_EQ(alice_events[0].delivery->QueryIds(),
            (std::vector<QueryId>{a.id, b.id}));
  EXPECT_EQ(alice_events[0].delivery->sequence,
            bob_events[0].delivery->sequence);
  // ...each with its own slice.
  EXPECT_EQ(alice_events[0].own_queries, (std::vector<QueryId>{a.id}));
  EXPECT_EQ(bob_events[0].own_queries, (std::vector<QueryId>{b.id}));
  // Ownership survives retirement (operator introspection).
  EXPECT_EQ(manager.OwnerOf(a.id), alice->id());
}

TEST_F(SessionTest, CancelIsOwnershipScoped) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  ClientSession* alice = manager.Open();
  ClientSession* bob = manager.Open();
  SubmitOutcome stuck = alice->Submit(Stuck("T0"));
  ASSERT_TRUE(stuck.ok());

  EXPECT_FALSE(bob->Cancel(stuck.id));   // not bob's query
  EXPECT_TRUE(manager.service()->IsPending(stuck.id));
  EXPECT_TRUE(alice->Cancel(stuck.id));  // the owner may withdraw
  EXPECT_FALSE(manager.service()->IsPending(stuck.id));
  EXPECT_FALSE(alice->Cancel(stuck.id));  // no longer pending
}

TEST_F(SessionTest, ImmediateDeliveryDuringSubmitIsRoutedToSubmitter) {
  CoordinationEngine engine(&db_);  // evaluate_every = 1
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();
  // The loner coordinates *inside* Submit — before the session even
  // learns the id — and must still land in this session's stream.
  SubmitOutcome solo = session->Submit("solo: { } K(w) :- Users(w, 'user5').");
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(session->num_pending(), 0u);
  std::vector<SessionEvent> events = session->PollEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].own_queries, (std::vector<QueryId>{solo.id}));
  EXPECT_EQ(manager.OwnerOf(solo.id), session->id());
}

// ---------------------------------------------------------------------------
// Push vs pull
// ---------------------------------------------------------------------------

TEST_F(SessionTest, PushStreamEqualsPollDrain) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();
  std::vector<uint64_t> pushed;
  session->set_event_callback([&](const SessionEvent& event) {
    pushed.push_back(event.delivery->sequence);
  });

  ASSERT_TRUE(session->Submit(PairA("P")).ok());
  ASSERT_TRUE(session->Submit(PairB("P")).ok());
  ASSERT_TRUE(session->Submit("solo: { } K(w) :- Users(w, 'user5').").ok());
  EXPECT_EQ(manager.Flush(), 2u);

  std::vector<SessionEvent> polled = session->PollEvents();
  ASSERT_EQ(polled.size(), pushed.size());
  for (size_t i = 0; i < polled.size(); ++i) {
    EXPECT_EQ(polled[i].delivery->sequence, pushed[i]);
  }
  // The drain consumed the buffer.
  EXPECT_TRUE(session->PollEvents().empty());
  EXPECT_EQ(session->deliveries(), 2u);
}

// ---------------------------------------------------------------------------
// Sessions over the sharded front door
// ---------------------------------------------------------------------------

TEST_F(SessionTest, WorksUnchangedOverShardedEngine) {
  ShardedEngineOptions options;
  options.engine.evaluate_every = 0;
  ShardedCoordinationEngine engine(&db_, options);
  SessionManager manager(&engine);
  ClientSession* alice = manager.Open();
  ClientSession* bob = manager.Open();

  // Two pairs in footprint-disjoint relations: distinct shards, both
  // sessions entangled with each other in both.
  SubmitOutcome p1 = alice->Submit(PairA("P"));
  SubmitOutcome p2 = bob->Submit(PairB("P"));
  SubmitOutcome q1 = bob->Submit(PairA("Q"));
  SubmitOutcome q2 = alice->Submit(PairB("Q"));
  ASSERT_TRUE(p1.ok() && p2.ok() && q1.ok() && q2.ok());
  EXPECT_EQ(manager.Flush(), 2u);

  std::vector<SessionEvent> alice_events = alice->PollEvents();
  std::vector<SessionEvent> bob_events = bob->PollEvents();
  ASSERT_EQ(alice_events.size(), 2u);
  ASSERT_EQ(bob_events.size(), 2u);
  // Cross-shard deliveries arrive merged by global schedule key, so
  // both sessions observe the same order: P's set first.
  EXPECT_EQ(alice_events[0].delivery->QueryIds(),
            (std::vector<QueryId>{p1.id, p2.id}));
  EXPECT_EQ(alice_events[1].delivery->QueryIds(),
            (std::vector<QueryId>{q1.id, q2.id}));
  EXPECT_EQ(alice_events[0].own_queries, (std::vector<QueryId>{p1.id}));
  EXPECT_EQ(alice_events[1].own_queries, (std::vector<QueryId>{q2.id}));
  EXPECT_EQ(bob_events[0].own_queries, (std::vector<QueryId>{p2.id}));

  // Session teardown bulk-cancels across shards.
  SubmitOutcome s0 = alice->Submit(Stuck("T0"));
  SubmitOutcome s1 = alice->Submit("s_U: { U(NeverU, x) } U(TU, x) :- "
                                   "Users(x, 'user7').");
  ASSERT_TRUE(s0.ok() && s1.ok());
  ASSERT_EQ(manager.num_pending(), 2u);
  manager.Close(alice->id());
  EXPECT_EQ(manager.num_pending(), 0u);
  EXPECT_EQ(manager.StatsSnapshot().cancelled, 2u);
}

// ---------------------------------------------------------------------------
// Admission quotas
// ---------------------------------------------------------------------------

TEST_F(SessionTest, PendingQuotaBouncesTyped) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  SessionOptions quota;
  quota.max_pending = 2;
  ClientSession* session = manager.Open(quota);

  SubmitOutcome first = session->Submit(Stuck("T0"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(session->Submit(Stuck("T1")).ok());
  SubmitOutcome third = session->Submit(Stuck("T2"));
  EXPECT_EQ(third.reason, RejectReason::kQuotaPending);
  EXPECT_FALSE(third.message.empty());
  // The bounce happened before the service saw the text.
  EXPECT_EQ(manager.StatsSnapshot().submitted, 2u);

  // Quotas are per-session: another tenant is unaffected.
  ClientSession* other = manager.Open();
  EXPECT_TRUE(other->Submit(Stuck("T3")).ok());

  // A batch is all-or-nothing against the quota: one free slot does not
  // admit a batch of two, but still admits a single.
  ASSERT_TRUE(session->Cancel(first.id));
  EXPECT_EQ(session->SubmitBatch({Stuck("T4"), Stuck("T5")}).reason,
            RejectReason::kQuotaPending);
  EXPECT_EQ(session->num_pending(), 1u);
  EXPECT_TRUE(session->Submit(Stuck("T6")).ok());
}

TEST_F(SessionTest, RateQuotaIsATokenBucketOnTheInjectedClock) {
  uint64_t now = 0;
  ManagerOptions manager_options;
  manager_options.clock_nanos = [&now] { return now; };
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine, manager_options);
  SessionOptions quota;
  quota.max_queries_per_sec = 2.0;  // burst = 2 tokens
  ClientSession* session = manager.Open(quota);

  // The bucket primes full: the burst passes, then the bucket is dry.
  ASSERT_TRUE(session->Submit(Stuck("T0")).ok());
  ASSERT_TRUE(session->Submit(Stuck("T1")).ok());
  SubmitOutcome dry = session->Submit(Stuck("T2"));
  EXPECT_EQ(dry.reason, RejectReason::kQuotaRate);

  now += 250'000'000;  // 0.25 s at 2/s = half a token: still short
  EXPECT_EQ(session->Submit(Stuck("T2")).reason, RejectReason::kQuotaRate);
  now += 250'000'000;  // a full token has now accrued
  ASSERT_TRUE(session->Submit(Stuck("T2")).ok());

  // Tokens are spent only on accepted submissions: a rejected text
  // leaves the budget intact for the next valid one.
  now += 500'000'000;  // one token
  EXPECT_EQ(session->Submit("not a query").reason, RejectReason::kParseError);
  ASSERT_TRUE(session->Submit(Stuck("T3")).ok());

  // A batch costs one token per member, all-or-nothing.
  now += 500'000'000;  // one token: a batch of two must wait
  EXPECT_EQ(session->SubmitBatch({Stuck("T4"), Stuck("T5")}).reason,
            RejectReason::kQuotaRate);
  now += 500'000'000;  // two tokens (the burst cap)
  EXPECT_TRUE(session->SubmitBatch({Stuck("T4"), Stuck("T5")}).ok());
}

TEST_F(SessionTest, FootprintQuotaBoundsBodyWidth) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  SessionOptions quota;
  quota.max_body_atoms = 1;
  ClientSession* session = manager.Open(quota);

  const std::string wide =
      "wide: { } R(x, y) :- Users(x, 'user1'), Users(y, 'user2').";
  ASSERT_TRUE(session->Submit(Stuck("T0")).ok());  // one body atom: fits
  SubmitOutcome bounced = session->Submit(wide);
  EXPECT_EQ(bounced.reason, RejectReason::kQuotaFootprint);
  EXPECT_FALSE(bounced.message.empty());

  // In a batch the offending position is named and nothing lands.
  BatchOutcome batch = session->SubmitBatch({Stuck("T1"), wide});
  EXPECT_EQ(batch.reason, RejectReason::kQuotaFootprint);
  EXPECT_EQ(batch.rejected_index, 1u);
  EXPECT_EQ(session->num_pending(), 1u);

  // The footprint quota alone does not opt the session into pre-engine
  // validation: a verbatim session still forwards unparseable texts and
  // the *service's* rejection is classified, while parseable-but-wide
  // texts bounce on the quota.
  SessionOptions verbatim;
  verbatim.reject_defective = false;
  verbatim.max_body_atoms = 1;
  ClientSession* raw = manager.Open(verbatim);
  EXPECT_EQ(raw->Submit("not a query").reason, RejectReason::kParseError);
  EXPECT_EQ(raw->Submit(wide).reason, RejectReason::kQuotaFootprint);
}

TEST_F(SessionTest, GlobalPendingCeilingSpansSessions) {
  ManagerOptions manager_options;
  manager_options.global_pending_ceiling = 2;
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine, manager_options);
  ClientSession* alice = manager.Open();
  ClientSession* bob = manager.Open();

  SubmitOutcome first = alice->Submit(Stuck("T0"));
  SubmitOutcome second = alice->Submit(Stuck("T1"));
  ASSERT_TRUE(first.ok() && second.ok());
  // Bob has no per-session quota, but the manager-wide ceiling is hit.
  EXPECT_EQ(bob->Submit(Stuck("T2")).reason, RejectReason::kQuotaPending);

  // Cancellation frees global capacity.
  ASSERT_TRUE(alice->Cancel(first.id));
  SubmitOutcome third = bob->Submit(Stuck("T2"));
  ASSERT_TRUE(third.ok());

  // Delivery frees capacity too: with the ceiling clear, a pair that
  // coordinates inside Submit occupies its slots only until delivery.
  ASSERT_TRUE(alice->Cancel(second.id));
  ASSERT_TRUE(bob->Cancel(third.id));
  ASSERT_TRUE(alice->Submit(PairA("P")).ok());
  ASSERT_TRUE(alice->Submit(PairB("P")).ok());  // coordinates; slots free
  EXPECT_EQ(manager.num_pending(), 0u);
  EXPECT_TRUE(alice->Submit(Stuck("T3")).ok());
  EXPECT_TRUE(bob->Submit(Stuck("T4")).ok());
}

// ---------------------------------------------------------------------------
// Overload shedding
// ---------------------------------------------------------------------------

TEST_F(SessionTest, SheddingEngagesAtHighWaterAndRecoversAtLowWater) {
  ManagerOptions manager_options;
  manager_options.shed_high_water = 4;  // low water defaults to 2
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine, manager_options);
  ClientSession* session = manager.Open();

  std::vector<QueryId> ids;
  for (int i = 0; i < 4; ++i) {
    SubmitOutcome outcome = session->Submit(Stuck("T" + std::to_string(i)));
    ASSERT_TRUE(outcome.ok()) << outcome.message;
    ids.push_back(outcome.id);
  }
  EXPECT_FALSE(manager.shedding());

  // The fifth submission finds pending at the high-water mark: shed.
  SubmitOutcome shed = session->Submit(Stuck("T4"));
  EXPECT_EQ(shed.reason, RejectReason::kOverloaded);
  EXPECT_TRUE(manager.shedding());

  // Hysteresis: one cancel is not recovery (3 > low water 2)...
  ASSERT_TRUE(session->Cancel(ids[0]));
  EXPECT_EQ(session->Submit(Stuck("T4")).reason, RejectReason::kOverloaded);
  // ...but draining to the low-water mark is.
  ASSERT_TRUE(session->Cancel(ids[1]));
  SubmitOutcome recovered = session->Submit(Stuck("T4"));
  EXPECT_TRUE(recovered.ok()) << recovered.message;
  EXPECT_FALSE(manager.shedding());

  MetricsSnapshot snap = manager.Metrics();
  EXPECT_EQ(Counter(snap, "shed.transitions"), 1u);
  EXPECT_EQ(Counter(snap, "reject.overloaded"), 2u);
  EXPECT_EQ(Counter(snap, "shed.events"), 2u);
  EXPECT_EQ(Counter(snap, "shed.active"), 0u);
}

// ---------------------------------------------------------------------------
// Pending-count tiling under deferred intake (regression)
// ---------------------------------------------------------------------------

TEST_F(SessionTest, DeferredIntakePendingTilesAcrossMidCallDelivery) {
  EngineOptions options;
  options.intake_capacity = 2;
  options.evaluate_every = 1;
  CoordinationEngine engine(&db_, options);
  ASSERT_TRUE(engine.AdmitsDeferred());
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();

  // Two queued (validated-but-undrained) submissions count as pending
  // immediately — on the session and in the passive service gauges.
  SubmitOutcome a = session->Submit(PairA("P"));
  SubmitOutcome b = session->Submit(PairB("P"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(session->num_pending(), 2u);
  EXPECT_EQ(engine.GaugesSnapshot().pending, 2u);
  EXPECT_EQ(engine.GaugesSnapshot().intake_depth, 2u);

  // The third submission lands on a full ring: the service drains
  // inline and the queued pair coordinates *during this call*.  The
  // session view must shed the delivered ids and keep only the new one.
  SubmitOutcome c = session->Submit(Stuck("T0"));
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(session->HasPending(a.id));
  EXPECT_FALSE(session->HasPending(b.id));
  EXPECT_TRUE(session->HasPending(c.id));
  EXPECT_EQ(session->num_buffered_events(), 1u);
  // Tiling: the manager (service) count equals the session sum.
  EXPECT_EQ(manager.num_pending(), session->num_pending());
  EXPECT_EQ(session->PendingQueries(), (std::vector<QueryId>{c.id}));

  // Same shape through SubmitBatch: the batch's pushes overflow the
  // ring mid-call (delivering the earlier queued pair) and the batch's
  // own ids register cleanly afterwards.
  SubmitOutcome d = session->Submit(PairA("Q"));
  SubmitOutcome e = session->Submit(PairB("Q"));
  ASSERT_TRUE(d.ok() && e.ok());
  BatchOutcome batch = session->SubmitBatch({Stuck("T1"), Stuck("T2")});
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(session->HasPending(d.id));
  EXPECT_FALSE(session->HasPending(e.id));
  EXPECT_TRUE(session->HasPending(batch.ids[0]));
  EXPECT_TRUE(session->HasPending(batch.ids[1]));
  EXPECT_EQ(session->num_pending(), 3u);  // T0, T1, T2
  // Passive gauges tile before any drain is forced...
  EXPECT_EQ(engine.GaugesSnapshot().pending, 3u);
  // ...and the read-boundary count agrees after the drain.
  EXPECT_EQ(manager.num_pending(), 3u);
  EXPECT_EQ(manager.num_pending(), session->num_pending());
}

// ---------------------------------------------------------------------------
// PollEvents after Close
// ---------------------------------------------------------------------------

TEST_F(SessionTest, BufferedEventsDrainExactlyOnceAfterClose) {
  CoordinationEngine engine(&db_);  // evaluate_every = 1
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();
  SubmitOutcome a = session->Submit(PairA("P"));
  SubmitOutcome b = session->Submit(PairB("P"));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(session->Submit(Stuck("T0")).ok());  // pending at close
  ASSERT_EQ(session->num_buffered_events(), 1u);

  session->Close();
  EXPECT_FALSE(session->open());
  EXPECT_EQ(manager.num_pending(), 0u);  // the stuck query was cancelled

  // The delivery buffered before Close drains exactly once.
  std::vector<SessionEvent> events = session->PollEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].own_queries, (std::vector<QueryId>{a.id, b.id}));
  EXPECT_TRUE(session->PollEvents().empty());
  EXPECT_EQ(session->num_buffered_events(), 0u);
}

TEST_F(SessionTest, BufferedEventsDrainExactlyOnceAfterCloseSharded) {
  ShardedEngineOptions options;
  options.engine.evaluate_every = 0;
  ShardedCoordinationEngine engine(&db_, options);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();
  SubmitOutcome a = session->Submit(PairA("P"));
  SubmitOutcome b = session->Submit(PairB("P"));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(manager.Flush(), 1u);
  ASSERT_TRUE(session->Submit(Stuck("T0")).ok());
  ASSERT_EQ(session->num_buffered_events(), 1u);

  session->Close();
  EXPECT_FALSE(session->open());
  EXPECT_EQ(manager.num_pending(), 0u);

  std::vector<SessionEvent> events = session->PollEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].own_queries, (std::vector<QueryId>{a.id, b.id}));
  EXPECT_TRUE(session->PollEvents().empty());
}

// ---------------------------------------------------------------------------
// RejectReason round-trip
// ---------------------------------------------------------------------------

TEST(RejectReasonTest, EveryReasonHasAUniqueNonNullName) {
  EXPECT_EQ(kNumRejectReasons, 10u);
  std::set<std::string> names;
  for (RejectReason reason : kAllRejectReasons) {
    const char* name = RejectReasonName(reason);
    ASSERT_NE(name, nullptr);
    ASSERT_FALSE(std::string(name).empty());
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate RejectReason name: " << name;
  }
  EXPECT_EQ(names.size(), kNumRejectReasons);
}

// ---------------------------------------------------------------------------
// Metrics snapshot
// ---------------------------------------------------------------------------

TEST_F(SessionTest, MetricsSnapshotCountsEveryBounceAndCall) {
  CoordinationEngine engine(&db_);
  SessionManager manager(&engine);
  SessionOptions quota;
  quota.max_pending = 1;
  ClientSession* session = manager.Open(quota);

  SubmitOutcome first = session->Submit(Stuck("T0"));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(session->Submit(Stuck("T1")).reason, RejectReason::kQuotaPending);
  ASSERT_TRUE(session->Cancel(first.id));
  EXPECT_EQ(session->Submit("not a query").reason, RejectReason::kParseError);
  // The pair would not fit under the quota'd session's max_pending=1, so
  // it rides through an unconstrained sibling session.
  ClientSession* roomy = manager.Open();
  ASSERT_TRUE(roomy->SubmitBatch({PairA("P"), PairB("P")}).ok());
  session->PollEvents();
  manager.Flush();

  MetricsSnapshot snap = manager.Metrics();
  EXPECT_EQ(Counter(snap, "reject.quota_pending"), 1u);
  EXPECT_EQ(Counter(snap, "reject.parse_error"), 1u);
  EXPECT_EQ(Counter(snap, "reject.none"), 0u);
  EXPECT_EQ(Counter(snap, "reject.overloaded"), 0u);
  EXPECT_EQ(Counter(snap, "engine.submitted"), 3u);  // T0 + the pair
  EXPECT_EQ(Counter(snap, "engine.cancelled"), 1u);
  EXPECT_EQ(Counter(snap, "sessions.opened"), 2u);
  EXPECT_EQ(Counter(snap, "sessions.open"), 2u);
  EXPECT_EQ(Counter(snap, "shed.active"), 0u);

  // Per-entry-point histograms count calls, including rejected ones.
  EXPECT_EQ(Histogram(snap, "submit").count(), 3u);
  EXPECT_EQ(Histogram(snap, "submit_batch").count(), 1u);
  EXPECT_EQ(Histogram(snap, "cancel").count(), 1u);
  EXPECT_EQ(Histogram(snap, "flush").count(), 1u);
  EXPECT_EQ(Histogram(snap, "poll_events").count(), 1u);
  // The engine's evaluation histogram rides along: one sample per
  // component evaluation the engine counted.
  EXPECT_EQ(Histogram(snap, "eval").count(),
            Counter(snap, "engine.evaluations"));
  EXPECT_GT(Histogram(snap, "eval").count(), 0u);

  // Everything outside the timing fields is deterministic: a second
  // snapshot of the same state repeats the counters and gauges exactly.
  MetricsSnapshot again = manager.Metrics();
  EXPECT_EQ(snap.counters, again.counters);
  EXPECT_EQ(snap.gauges.pending, again.gauges.pending);
  EXPECT_EQ(snap.gauges.live_shards, again.gauges.live_shards);

  // The document serializes with all three sections.
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{"), std::string::npos);
  EXPECT_NE(json.find("\"reject.quota_pending\":1"), std::string::npos);
}

TEST_F(SessionTest, MetricsSnapshotCarriesPerShardGauges) {
  ShardedEngineOptions options;
  options.engine.evaluate_every = 0;
  ShardedCoordinationEngine engine(&db_, options);
  SessionManager manager(&engine);
  ClientSession* session = manager.Open();
  ASSERT_TRUE(session->Submit(PairA("P")).ok());
  ASSERT_TRUE(session->Submit(PairB("P")).ok());
  // Two stuck queries in disjoint answer relations: each keeps its own
  // shard alive after the delivered pair's shard is garbage-collected.
  ASSERT_TRUE(session->Submit(Stuck("T0")).ok());
  ASSERT_TRUE(
      session->Submit("s_R: { R(NeverR, x) } R(Tr, x) :- Users(x, 'user7').")
          .ok());
  manager.Flush();

  MetricsSnapshot snap = manager.Metrics();
  EXPECT_EQ(snap.gauges.live_shards, snap.gauges.shards.size());
  EXPECT_EQ(snap.gauges.shards.size(), 2u);  // S-footprint and R-footprint
  uint64_t shard_pending = 0;
  for (const ShardGauge& shard : snap.gauges.shards) {
    shard_pending += shard.pending;
  }
  EXPECT_EQ(shard_pending, snap.gauges.pending);
  EXPECT_EQ(snap.gauges.pending, 2u);  // only the stuck queries survive
}

}  // namespace
}  // namespace entangled
