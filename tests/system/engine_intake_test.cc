// Deferred admission through the engine's intake queue.  Arming
// `EngineOptions::intake_capacity` must not change a single delivered
// byte: submissions are validated and ticketed on the calling thread,
// queued, and admitted at the next flush/read boundary in ticket order,
// with ids identical to what the inline path would have assigned.  The
// concurrency tests additionally pin down the one multi-threaded
// guarantee the intake adds: a producer thread submitting while the
// owner reads never tears the pending set — every snapshot is a
// contiguous prefix of the eventual id sequence.

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

/// A query whose postcondition nobody ever answers: it stays pending
/// through any number of evaluations, which makes pending-set shapes
/// deterministic under concurrency.
std::string StuckQuery(int i) {
  const std::string rel = "Stuck" + std::to_string(i);
  return rel + ": { Nobody" + rel + "(m) } " + rel +
         "(s) :- Users(s, 'user1').";
}

/// A pool mixing loners (coordinate alone), stuck queries, and
/// mutually-entangled pairs, for the deferred-vs-inline differential.
std::vector<std::string> MakePool(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> texts;
  int group = 0;
  const size_t num_groups = 8 + rng.NextBounded(5);
  for (size_t g = 0; g < num_groups; ++g) {
    const std::string rel = "G" + std::to_string(group++);
    const std::string handle =
        "'user" + std::to_string(rng.NextBounded(8)) + "'";
    switch (rng.NextBounded(3)) {
      case 0:  // loner
        texts.push_back(rel + "solo: { } " + rel + "(s) :- Users(s, " +
                        handle + ").");
        break;
      case 1:  // stuck
        texts.push_back(rel + "stuck: { Nobody" + rel + "(m) } " + rel +
                        "(s) :- Users(s, " + handle + ").");
        break;
      default:  // pair
        texts.push_back(rel + "a: { " + rel + "(B, x) } " + rel +
                        "(A, x) :- Users(x, " + handle + ").");
        texts.push_back(rel + "b: { " + rel + "(A, y) } " + rel +
                        "(B, y) :- Users(y, " + handle + ").");
        break;
    }
  }
  return texts;
}

struct LoggedDelivery {
  std::vector<QueryId> queries;
  Binding assignment;

  friend bool operator==(const LoggedDelivery& a, const LoggedDelivery& b) {
    return a.queries == b.queries && a.assignment == b.assignment;
  }
};

struct RunResult {
  std::vector<LoggedDelivery> log;
  std::vector<QueryId> final_pending;
  std::vector<QueryId> submitted_ids;
  uint64_t submitted = 0;
  uint64_t cancelled = 0;
};

/// Single-threaded randomized interleaving of submit / cancel / flush /
/// set_evaluate_every, identical across engine configurations.
RunResult RunInterleaving(const Database& db, EngineOptions options,
                          const std::vector<std::string>& texts,
                          uint64_t op_seed) {
  CoordinationEngine engine(&db, options);
  RunResult run;
  engine.set_delivery_callback([&](const Delivery& delivery) {
    std::vector<QueryId> ids = delivery.QueryIds();
    run.log.push_back(LoggedDelivery{std::move(ids), delivery.witness});
  });
  Rng rng(op_seed);
  size_t next_text = 0;
  while (next_text < texts.size()) {
    const uint64_t draw = rng.NextBounded(12);
    if (draw < 7) {
      auto id = engine.Submit(texts[next_text++]);
      EXPECT_TRUE(id.ok()) << id.status();
      if (!id.ok()) break;
      run.submitted_ids.push_back(*id);
    } else if (draw < 9) {
      std::vector<QueryId> pending = engine.PendingQueries();
      if (!pending.empty()) {
        engine.Cancel(pending[rng.NextBounded(64) % pending.size()]);
      }
    } else if (draw < 10) {
      engine.set_evaluate_every(rng.NextBounded(3));
    } else {
      engine.Flush();
    }
  }
  engine.Flush();
  run.final_pending = engine.PendingQueries();
  run.submitted = engine.stats().submitted;
  run.cancelled = engine.stats().cancelled;
  return run;
}

class EngineIntakeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }
  Database db_;
};

// Arming the intake (any capacity) must reproduce the inline path's
// exact ids, delivery log, witnesses, and pending set.
TEST_F(EngineIntakeTest, DeferredMatchesInlineByteForByte) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::vector<std::string> texts = MakePool(seed * 977);
    EngineOptions inline_path;
    inline_path.evaluate_every = 1;
    RunResult base = RunInterleaving(db_, inline_path, texts, seed * 131);
    for (size_t capacity : {size_t{4}, size_t{64}}) {
      EngineOptions deferred = inline_path;
      deferred.intake_capacity = capacity;
      RunResult run = RunInterleaving(db_, deferred, texts, seed * 131);
      EXPECT_EQ(base.submitted_ids, run.submitted_ids)
          << "seed=" << seed << " capacity=" << capacity;
      EXPECT_EQ(base.log, run.log)
          << "seed=" << seed << " capacity=" << capacity;
      EXPECT_EQ(base.final_pending, run.final_pending)
          << "seed=" << seed << " capacity=" << capacity;
      EXPECT_EQ(base.submitted, run.submitted);
      EXPECT_EQ(base.cancelled, run.cancelled);
    }
  }
}

// A queued (not yet drained) submission is visible to every read and
// cancellable exactly like an admitted one.
TEST_F(EngineIntakeTest, QueuedSubmissionIsPendingAndCancellable) {
  EngineOptions options;
  options.evaluate_every = 0;
  options.intake_capacity = 8;
  CoordinationEngine engine(&db_, options);
  auto a = engine.Submit(StuckQuery(0));
  auto b = engine.Submit(StuckQuery(1));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, 0);
  EXPECT_EQ(*b, 1);
  EXPECT_TRUE(engine.IsPending(0));
  EXPECT_TRUE(engine.IsPending(1));
  EXPECT_TRUE(engine.Cancel(0));
  EXPECT_FALSE(engine.Cancel(0));  // already cancelled
  EXPECT_EQ(engine.num_pending(), 1u);
  EXPECT_EQ(engine.PendingQueries(), std::vector<QueryId>{1});
  EXPECT_EQ(engine.stats().submitted, 2u);
  EXPECT_EQ(engine.stats().cancelled, 1u);
}

// The torn-pending-set test: a producer thread submits stuck queries
// while the owner thread reads and flushes.  Ids are ticketed at
// enqueue, drains admit in ticket order, and nothing ever delivers —
// so every owner-side snapshot must be exactly [0, k) for some k, and
// the producer must observe the ticketed ids in submission order.
TEST_F(EngineIntakeTest, ConcurrentSubmitNeverTearsThePendingSet) {
  constexpr int kQueries = 400;
  EngineOptions options;
  options.evaluate_every = 0;
  options.intake_capacity = 32;  // small ring: forces wraparound + spins
  CoordinationEngine engine(&db_, options);

  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (int i = 0; i < kQueries; ++i) {
      auto id = engine.Submit(StuckQuery(i));
      EXPECT_TRUE(id.ok()) << id.status();
      if (!id.ok()) break;
      // Ticket order == submission order for a single producer.
      EXPECT_EQ(*id, static_cast<QueryId>(i));
    }
    done.store(true, std::memory_order_release);
  });

  // Each PendingQueries() drains whatever is queued at that instant;
  // since nothing ever delivers, every snapshot must be exactly [0, k).
  // (Two consecutive reads may legitimately see different k — the
  // producer keeps racing in between — so only the prefix shape of one
  // snapshot is checked, never cross-call agreement.)
  int reads = 0;
  bool torn = false;
  while (!done.load(std::memory_order_acquire) && !torn) {
    std::vector<QueryId> snapshot = engine.PendingQueries();
    for (size_t i = 0; i < snapshot.size(); ++i) {
      if (snapshot[i] != static_cast<QueryId>(i)) {
        torn = true;
        break;
      }
    }
    if (++reads % 7 == 0) engine.Flush();  // drains must interleave too
  }
  // Keep draining until the producer finishes (it may be spinning on a
  // full ring), then join before asserting.
  while (!done.load(std::memory_order_acquire)) engine.num_pending();
  producer.join();
  EXPECT_FALSE(torn) << "pending snapshot was not a contiguous id prefix";

  std::vector<QueryId> final_pending = engine.PendingQueries();
  ASSERT_EQ(final_pending.size(), static_cast<size_t>(kQueries));
  for (int i = 0; i < kQueries; ++i) {
    EXPECT_EQ(final_pending[static_cast<size_t>(i)],
              static_cast<QueryId>(i));
  }
  EXPECT_EQ(engine.stats().submitted, static_cast<uint64_t>(kQueries));
}

// Two producers race into the same intake: the union of returned ids
// must be exactly [0, 2M) with each producer's own ids strictly
// increasing, and the engine must admit all of them.
TEST_F(EngineIntakeTest, TwoProducersGetDisjointTicketedIds) {
  constexpr int kPerProducer = 200;
  EngineOptions options;
  options.evaluate_every = 0;
  options.intake_capacity = 64;
  CoordinationEngine engine(&db_, options);

  std::vector<std::vector<QueryId>> ids(2);
  std::atomic<int> running{2};
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto id = engine.Submit(StuckQuery(p * kPerProducer + i));
        EXPECT_TRUE(id.ok()) << id.status();
        if (!id.ok()) break;
        ids[static_cast<size_t>(p)].push_back(*id);
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }
  // Keep draining so producers never wedge on a full ring.
  while (running.load(std::memory_order_acquire) != 0) {
    engine.num_pending();
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();

  std::vector<QueryId> all;
  for (const auto& own : ids) {
    for (size_t i = 1; i < own.size(); ++i) {
      EXPECT_LT(own[i - 1], own[i]) << "producer ids not increasing";
    }
    all.insert(all.end(), own.begin(), own.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(2 * kPerProducer));
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<QueryId>(i));
  }
  EXPECT_EQ(engine.num_pending(), static_cast<size_t>(2 * kPerProducer));
}

}  // namespace
}  // namespace entangled
