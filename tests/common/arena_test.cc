#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace entangled {
namespace {

bool IsAligned(const void* p, size_t align) {
  return reinterpret_cast<uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena(1024);
  // Interleave odd sizes with strict alignments.
  void* a = arena.Allocate(1, 1);
  void* b = arena.Allocate(3, 8);
  void* c = arena.Allocate(7, 64);
  void* d = arena.Allocate(5, 16);
  EXPECT_TRUE(IsAligned(b, 8));
  EXPECT_TRUE(IsAligned(c, 64));
  EXPECT_TRUE(IsAligned(d, 16));
  // Distinct non-overlapping regions: write patterns and verify.
  std::memset(a, 0xAA, 1);
  std::memset(b, 0xBB, 3);
  std::memset(c, 0xCC, 7);
  std::memset(d, 0xDD, 5);
  EXPECT_EQ(static_cast<unsigned char*>(a)[0], 0xAA);
  EXPECT_EQ(static_cast<unsigned char*>(b)[2], 0xBB);
  EXPECT_EQ(static_cast<unsigned char*>(c)[6], 0xCC);
  EXPECT_EQ(static_cast<unsigned char*>(d)[4], 0xDD);
}

TEST(ArenaTest, TypedHelpersAlign) {
  Arena arena;
  struct alignas(32) Wide {
    double d[4];
  };
  Wide* w = arena.AllocateArray<Wide>(3);
  EXPECT_TRUE(IsAligned(w, 32));
  int* n = arena.New<int>(41);
  EXPECT_EQ(*n, 41);
}

TEST(ArenaTest, ResetReusesPrimaryBlock) {
  Arena arena(4096);
  void* first = arena.Allocate(64);
  size_t reserved = arena.bytes_reserved();
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    void* p = arena.Allocate(64);
    // Same storage comes back: the primary block is retained and the
    // cursor rewinds, so steady-state rounds never touch the heap.
    EXPECT_EQ(p, first);
    for (int i = 0; i < 50; ++i) arena.Allocate(64);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
    EXPECT_EQ(arena.overflow_blocks(), 0u);
  }
}

TEST(ArenaTest, OverflowGrowsAndResetReleases) {
  Arena arena(1024);
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  EXPECT_GT(arena.overflow_blocks(), 0u);
  EXPECT_GT(arena.bytes_reserved(), 1024u);
  arena.Reset();
  EXPECT_EQ(arena.overflow_blocks(), 0u);
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(ArenaTest, LargeAllocationFallback) {
  Arena arena(1024);
  void* small = arena.Allocate(16);
  std::memset(small, 0x11, 16);
  // Far larger than any block-doubling step: gets a dedicated block.
  size_t huge = 8u << 20;
  void* big = arena.Allocate(huge, 64);
  EXPECT_TRUE(IsAligned(big, 64));
  std::memset(big, 0x22, huge);  // must be fully usable
  // The dedicated block must not have stranded the primary cursor:
  // small allocations continue from the primary block.
  void* after = arena.Allocate(16);
  EXPECT_EQ(static_cast<char*>(after) - static_cast<char*>(small), 16);
  arena.Reset();
  EXPECT_EQ(arena.overflow_blocks(), 0u);
}

TEST(ArenaTest, ArenaAllocatorWorksWithVector) {
  Arena arena(1 << 16);
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
  EXPECT_GT(arena.bytes_used(), 1000 * sizeof(int) - 1);
  v = std::vector<int, ArenaAllocator<int>>{ArenaAllocator<int>(&arena)};
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(ArenaTest, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace entangled
