// The §2.2 flight–hotel scenario (Figure 1) served through the session
// front door: Coldplay's Chris, Guy, Jonny and Will each open a
// ClientSession and try to book a joint vacation.  The set is safe but
// NOT unique, so the original Gupta et al. algorithm cannot evaluate it
// — the engine's SCC algorithm coordinates {qC, qG} on Paris, and the
// per-session pending counts show Jonny's and Will's requests still
// waiting.
//
// Build & run:  ./build/examples/flight_hotel

#include <iostream>
#include <vector>

#include "core/coordination_graph.h"
#include "core/properties.h"
#include "example_common.h"
#include "workload/scenarios.h"

using namespace entangled;
using namespace entangled::examples;

namespace {

/// Submits each scenario query from its owner's session (the query
/// names are qC/qG/qJ/qW — the owner is the suffix).  Texts are
/// re-rendered from the scenario set: session submissions and Delivery
/// texts round-trip through the same concrete syntax.
Status RunFrontDoor(const Database& db, const QuerySet& queries) {
  ExampleFrontDoor door(&db);
  for (QueryId id = 0; id < static_cast<QueryId>(queries.size()); ++id) {
    ClientSession* session = door.Connect(queries.query(id).name);
    door.SubmitOrDie(session, queries.QueryToString(id));
  }
  std::cout << "\ncoordinating sets delivered: " << door.Coordinate()
            << "\n";
  return door.PrintInboxes();
}

}  // namespace

int main() {
  Database db;
  QuerySet queries;
  FlightHotelIds ids = BuildFlightHotelScenario(&db, &queries);

  PrintBanner("The flight-hotel coordination example (paper §2.2)");
  std::cout << queries.ToString() << "\n";

  ExtendedCoordinationGraph ecg(queries);
  std::cout << "Extended coordination graph (Figure 2):\n"
            << ecg.ToString(queries) << "\n\n";
  std::cout << "safe set?   " << (IsSafeSet(queries) ? "yes" : "no") << "\n";
  std::cout << "unique set? " << (IsUniqueSet(queries) ? "yes" : "no")
            << "  (qW is reachable from nobody, so Gupta et al. cannot "
               "run)\n\n";

  Status valid = RunFrontDoor(db, queries);
  if (!valid.ok()) {
    std::cerr << "validation failed: " << valid << "\n";
    return 1;
  }

  std::cout << "\nWhy Jonny and Will stay home:\n"
            << "  qJ unifies its flight with the Paris flight of {qC, qG}\n"
            << "  but its own body requires that flight to reach Athens -\n"
            << "  the combined query has no witness, so qJ's component\n"
            << "  fails, and qW fails transitively (it needs qJ's hotel).\n";

  // What the world looks like if Guy relaxes: everyone to Athens.  The
  // variation edits Guy's body and replays the whole scenario through a
  // fresh front door.
  std::cout << "\n== Variation: Guy agrees to Athens ==\n";
  Database db2;
  QuerySet queries2;
  BuildFlightHotelScenario(&db2, &queries2);
  for (Atom& atom : queries2.mutable_query(ids.qg).body) {
    for (Term& term : atom.terms) {
      if (term.is_constant() && term.constant() == Value::Str("Paris")) {
        term = Term::Str("Athens");
      }
    }
  }
  Status valid2 = RunFrontDoor(db2, queries2);
  return ReportValidation(valid.ok() ? valid2 : valid);
}
