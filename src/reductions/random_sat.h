#ifndef ENTANGLED_REDUCTIONS_RANDOM_SAT_H_
#define ENTANGLED_REDUCTIONS_RANDOM_SAT_H_

#include "common/rng.h"
#include "reductions/cnf.h"

namespace entangled {

/// \brief A uniformly random k-SAT formula: each clause draws k distinct
/// variables and independent polarities.  num_vars >= k >= 1.
CnfFormula RandomKSat(int32_t num_vars, int32_t num_clauses, int32_t k,
                      Rng* rng);

/// \brief Random 3SAT (the paper's reductions are from 3SAT).
inline CnfFormula Random3Sat(int32_t num_vars, int32_t num_clauses,
                             Rng* rng) {
  return RandomKSat(num_vars, num_clauses, 3, rng);
}

}  // namespace entangled

#endif  // ENTANGLED_REDUCTIONS_RANDOM_SAT_H_
