#include "workload/generator.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "db/relation.h"

namespace entangled {

const char* TopologyName(GraphTopology topology) {
  switch (topology) {
    case GraphTopology::kChain:
      return "chain";
    case GraphTopology::kStar:
      return "star";
    case GraphTopology::kClique:
      return "clique";
    case GraphTopology::kErdosRenyi:
      return "erdos_renyi";
  }
  return "unknown";
}

std::vector<GraphTopology> AllTopologies() {
  return {GraphTopology::kChain, GraphTopology::kStar, GraphTopology::kClique,
          GraphTopology::kErdosRenyi};
}

namespace {

// Salts separating the generator's independent RNG streams: the
// database stream and the event stream must not share draws, so a row
// shuffle can rebuild the database without disturbing the events.
constexpr uint64_t kDbSalt = 0x6db5a17f00d5eedULL;
constexpr uint64_t kEventSalt = 0x0e7e9151a1755eedULL;

/// The deterministic content behind one database relation, kept in
/// generator-internal form so query construction can reference actual
/// rows (guaranteeing satisfiable bodies) without reading the Database.
struct RelationSpec {
  std::string name;
  std::vector<std::string> columns;
  std::vector<Tuple> rows;  // unshuffled; shuffling is insertion-only
};

/// Renders a constant cell as a term in the paper's concrete syntax.
std::string TermText(const Value& value) {
  if (value.is_int()) return std::to_string(value.AsInt());
  return "'" + value.AsString() + "'";
}

/// One body atom under construction: relation + per-position term
/// texts ("x", "_", "17", "'t0c1_3'").
struct BodyAtom {
  size_t relation;
  std::vector<std::string> terms;

  std::string Render(const std::vector<RelationSpec>& specs) const {
    std::string out = specs[relation].name + "(";
    for (size_t i = 0; i < terms.size(); ++i) {
      if (i > 0) out += ", ";
      out += terms[i];
    }
    return out + ")";
  }
};

}  // namespace

WorkloadGenerator::WorkloadGenerator(GeneratorOptions options)
    : options_(std::move(options)) {
  ENTANGLED_CHECK_GE(options_.num_relations, 1u);
  ENTANGLED_CHECK_GE(options_.min_arity, 1u);
  ENTANGLED_CHECK_GE(options_.max_arity, options_.min_arity);
  ENTANGLED_CHECK_GE(options_.rows_per_relation, 1u);
  ENTANGLED_CHECK_GE(options_.population, 1u);
  ENTANGLED_CHECK_GE(options_.tags_per_column, 1u);
  ENTANGLED_CHECK_GE(options_.max_body_atoms, 1u);
  ENTANGLED_CHECK_GE(options_.min_group, 1u);
  ENTANGLED_CHECK_GE(options_.max_group, options_.min_group);
  ENTANGLED_CHECK_GE(options_.max_batch, 2u);
  if (!options_.symbol_prefix.empty()) {
    // Tag constants are rendered as bare identifiers; a prefixed tag
    // must still lex as a string constant (uppercase first letter).
    ENTANGLED_CHECK(
        std::isupper(static_cast<unsigned char>(options_.symbol_prefix[0])))
        << "symbol_prefix must start with an uppercase letter";
  }
}

// ---------------------------------------------------------------------------
// Database stream
// ---------------------------------------------------------------------------

static std::vector<RelationSpec> BuildSpecs(const GeneratorOptions& o) {
  Rng rng(o.seed ^ kDbSalt);
  std::vector<RelationSpec> specs;
  specs.reserve(o.num_relations);
  for (size_t r = 0; r < o.num_relations; ++r) {
    RelationSpec spec;
    spec.name = "R" + std::to_string(r);
    const size_t arity =
        o.min_arity +
        static_cast<size_t>(rng.NextBounded(o.max_arity - o.min_arity + 1));
    spec.columns.push_back("id");
    for (size_t c = 1; c < arity; ++c) {
      spec.columns.push_back("c" + std::to_string(c));
    }
    spec.rows.reserve(o.rows_per_relation);
    for (size_t i = 0; i < o.rows_per_relation; ++i) {
      Tuple row;
      row.reserve(arity);
      row.push_back(Value::Int(
          static_cast<int64_t>(rng.NextBounded(o.population))));
      for (size_t c = 1; c < arity; ++c) {
        // Small per-column tag pools give columns shared join values.
        const std::string tag = "t" + std::to_string(r) + "c" +
                                std::to_string(c) + "_" +
                                std::to_string(rng.NextBounded(
                                    o.tags_per_column));
        row.push_back(Value::Str(o.symbol_prefix + tag));
      }
      spec.rows.push_back(std::move(row));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

Status WorkloadGenerator::BuildDatabase(Database* db) const {
  ENTANGLED_CHECK(db != nullptr);
  std::vector<RelationSpec> specs = BuildSpecs(options_);
  for (size_t r = 0; r < specs.size(); ++r) {
    RelationSpec& spec = specs[r];
    auto relation = db->CreateRelation(spec.name, spec.columns);
    if (!relation.ok()) return relation.status();
    if (options_.row_shuffle_seed != 0) {
      Rng shuffle(options_.row_shuffle_seed ^ (kDbSalt + r));
      shuffle.Shuffle(&spec.rows);
    }
    ENTANGLED_RETURN_IF_ERROR((*relation)->InsertAll(std::move(spec.rows)));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Event stream
// ---------------------------------------------------------------------------

GeneratedWorkload WorkloadGenerator::Generate() const {
  const GeneratorOptions& o = options_;
  const std::vector<RelationSpec> specs = BuildSpecs(o);
  Rng rng(o.seed ^ kEventSalt);

  auto tag = [&o](size_t group, size_t member) {
    return o.symbol_prefix + "G" + std::to_string(group) + "M" +
           std::to_string(member);
  };
  auto answer_rel = [&o](size_t group) {
    const size_t space =
        o.relation_partitions == 0 ? group : group % o.relation_partitions;
    return "A" + std::to_string(space);
  };

  // A satisfiable body atom: a real row of a random relation with the
  // given variable (or wildcard) text at one position.
  auto row_atom = [&](size_t relation, size_t row, size_t var_pos,
                      const std::string& var_text) {
    const RelationSpec& spec = specs[relation];
    BodyAtom atom;
    atom.relation = relation;
    for (size_t i = 0; i < spec.columns.size(); ++i) {
      atom.terms.push_back(i == var_pos ? var_text
                                        : TermText(spec.rows[row][i]));
    }
    return atom;
  };
  auto random_site = [&]() {
    const size_t relation = static_cast<size_t>(rng.NextBounded(specs.size()));
    const size_t row = static_cast<size_t>(
        rng.NextBounded(specs[relation].rows.size()));
    const size_t pos = static_cast<size_t>(
        rng.NextBounded(specs[relation].columns.size()));
    return std::array<size_t, 3>{relation, row, pos};
  };

  size_t missing_counter = 0;
  size_t storm_ordinal = 0;  // queries generated so far (bridge_storm)

  // ---- carve the query budget into entanglement groups ----
  struct Member {
    size_t group = 0;
    size_t index = 0;                ///< member index within the group
    size_t head_tag_of = 0;          ///< twin: duplicates this member's tag
    std::vector<size_t> targets;     ///< in-group post targets
    std::vector<std::pair<size_t, size_t>> bridges;  ///< (group, member)
    std::vector<BodyAtom> body;
    bool twin = false;
  };
  std::vector<std::vector<Member>> groups;
  size_t budget = o.num_queries;
  while (budget > 0) {
    const size_t hi = std::min(o.max_group, budget);
    const size_t lo = std::min(o.min_group, hi);
    const size_t size =
        lo + static_cast<size_t>(rng.NextBounded(hi - lo + 1));
    const size_t g = groups.size();
    std::vector<Member> members(size);
    for (size_t m = 0; m < size; ++m) {
      members[m].group = g;
      members[m].index = m;
      members[m].head_tag_of = m;
    }
    // Topology: which member posts on which member's head.  Tags are
    // unique per member, so each post unifies with exactly one head —
    // generated components are safe by construction.
    switch (o.topology) {
      case GraphTopology::kChain:
        for (size_t m = 0; m + 1 < size; ++m) members[m].targets = {m + 1};
        break;
      case GraphTopology::kStar:
        for (size_t m = 1; m < size; ++m) members[m].targets = {0};
        break;
      case GraphTopology::kClique:
        for (size_t m = 0; m < size; ++m) {
          for (size_t j = 0; j < size; ++j) {
            if (j != m) members[m].targets.push_back(j);
          }
        }
        break;
      case GraphTopology::kErdosRenyi:
        for (size_t m = 0; m < size; ++m) {
          for (size_t j = 0; j < size; ++j) {
            if (j != m && rng.NextBool(o.er_edge_prob)) {
              members[m].targets.push_back(j);
            }
          }
        }
        break;
    }
    // Cross-group bridge: one member gains a post into an earlier
    // group, merging the two weakly connected components.  Twins are
    // excluded as targets: a twin's head repeats another member's tag,
    // so aiming at its own (never-emitted) tag would leave the bridge
    // post unsatisfiable and the components unmerged.
    if (g > 0 && rng.NextBool(o.sharing_density)) {
      const size_t src = static_cast<size_t>(rng.NextBounded(size));
      const size_t tgt_group = static_cast<size_t>(rng.NextBounded(g));
      size_t tgt_count = groups[tgt_group].size();
      while (tgt_count > 0 && groups[tgt_group][tgt_count - 1].twin) {
        --tgt_count;  // twins sit at the tail of their group
      }
      const size_t tgt_member =
          static_cast<size_t>(rng.NextBounded(tgt_count));
      members[src].bridges.push_back({tgt_group, tgt_member});
    }
    // Bridge storm: every bridge_storm-th query (a running count over
    // the whole stream, no RNG draws — seeds stay metamorphic-safe)
    // posts into the two most recent earlier groups, so its arrival
    // unites three relation groups at once.  Member 0 is never a twin,
    // so the bridge posts always unify with exactly one head.
    for (size_t m = 0; m < size; ++m) {
      ++storm_ordinal;
      if (o.bridge_storm == 0 || g < 2) continue;
      if (storm_ordinal % o.bridge_storm != 0) continue;
      members[m].bridges.push_back({g - 1, 0});
      members[m].bridges.push_back({g - 2, 0});
    }
    // Unsafe twin: a duplicate head tag makes every post aimed at the
    // twinned member unify with two heads (Definition 2 violation);
    // the component stays stuck until a cancellation resolves it.
    if (size >= 2 && rng.NextBool(o.unsafe_rate)) {
      Member twin;
      twin.group = g;
      twin.index = size;
      twin.twin = true;
      twin.head_tag_of = static_cast<size_t>(rng.NextBounded(size));
      members.push_back(std::move(twin));
    }
    budget -= std::min(budget, size);

    // Bodies.  Members reusing the group's template atom share a
    // guaranteed common witness, so the group can actually coordinate;
    // members drawing their own site may or may not intersect.
    const auto group_site = random_site();
    for (Member& member : members) {
      const bool head_only = rng.NextBool(o.head_only_var_rate);
      const bool use_template = rng.NextBool(o.template_rate);
      const bool stuck = rng.NextBool(o.stuck_body_rate);
      const auto own_site = random_site();
      if (!head_only) {
        const auto& site = use_template ? group_site : own_site;
        BodyAtom atom = row_atom(site[0], site[1], site[2], "x");
        if (stuck && atom.terms.size() >= 2) {
          // Overwrite one constant with a value no relation contains:
          // the body can never ground, so the member never coordinates.
          size_t pos = (site[2] + 1) % atom.terms.size();
          atom.terms[pos] = "'" + o.symbol_prefix + "missing" +
                            std::to_string(missing_counter++) + "'";
        }
        member.body.push_back(std::move(atom));
      }
      for (size_t extra = 1; extra < o.max_body_atoms; ++extra) {
        if (!rng.NextBool(0.4)) continue;
        const auto site = random_site();
        member.body.push_back(row_atom(site[0], site[1], site[2], "_"));
      }
    }
    groups.push_back(std::move(members));
  }

  // ---- render texts ----
  std::vector<std::string> texts;
  for (const auto& members : groups) {
    for (const Member& member : members) {
      const size_t g = member.group;
      std::ostringstream out;
      out << "q" << g << "_" << (member.twin ? "t" : "")
          << member.index << ": { ";
      bool first = true;
      for (size_t j : member.targets) {
        out << (first ? "" : ", ") << answer_rel(g) << "(" << tag(g, j)
            << ", x)";
        first = false;
      }
      for (const auto& [bg, bm] : member.bridges) {
        out << (first ? "" : ", ") << answer_rel(bg) << "(" << tag(bg, bm)
            << ", xb)";
        first = false;
      }
      out << " } " << answer_rel(g) << "(" << tag(g, member.head_tag_of)
          << ", x) :- ";
      for (size_t i = 0; i < member.body.size(); ++i) {
        out << (i == 0 ? "" : ", ") << member.body[i].Render(specs);
      }
      out << ".";
      texts.push_back(out.str());
    }
  }
  rng.Shuffle(&texts);

  // ---- interleave arrivals with cancels, flushes, cadence switches ----
  GeneratedWorkload workload;
  workload.num_queries = texts.size();
  workload.num_groups = groups.size();
  size_t next = 0;
  while (next < texts.size()) {
    WorkloadEvent event;
    const size_t remaining = texts.size() - next;
    if (remaining >= 2 && rng.NextBool(o.batch_rate)) {
      event.kind = WorkloadEvent::Kind::kSubmitBatch;
      const size_t size = std::min(
          remaining,
          size_t{2} + static_cast<size_t>(rng.NextBounded(o.max_batch - 1)));
      for (size_t i = 0; i < size; ++i) event.texts.push_back(texts[next++]);
    } else {
      event.kind = WorkloadEvent::Kind::kSubmit;
      event.texts.push_back(texts[next++]);
    }
    workload.events.push_back(std::move(event));

    if (rng.NextBool(o.cancel_rate)) {
      WorkloadEvent cancel;
      cancel.kind = WorkloadEvent::Kind::kCancel;
      cancel.cancel_rank = static_cast<size_t>(rng.NextBounded(1024));
      workload.events.push_back(std::move(cancel));
    }
    if (rng.NextBool(o.eval_every_rate)) {
      WorkloadEvent cadence;
      cadence.kind = WorkloadEvent::Kind::kSetEvaluateEvery;
      cadence.evaluate_every = static_cast<size_t>(rng.NextBounded(4));
      workload.events.push_back(std::move(cadence));
    }
    if (rng.NextBool(o.flush_rate)) {
      WorkloadEvent flush;
      flush.kind = WorkloadEvent::Kind::kFlush;
      workload.events.push_back(std::move(flush));
    }
  }
  WorkloadEvent final_flush;
  final_flush.kind = WorkloadEvent::Kind::kFlush;
  workload.events.push_back(std::move(final_flush));
  return workload;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string EventToString(const WorkloadEvent& event) {
  std::ostringstream out;
  switch (event.kind) {
    case WorkloadEvent::Kind::kSubmit:
      out << "SUBMIT " << event.texts.front();
      break;
    case WorkloadEvent::Kind::kSubmitBatch:
      out << "BATCH[" << event.texts.size() << "]";
      for (const std::string& text : event.texts) out << " | " << text;
      break;
    case WorkloadEvent::Kind::kCancel:
      out << "CANCEL rank=" << event.cancel_rank;
      break;
    case WorkloadEvent::Kind::kSetEvaluateEvery:
      out << "EVAL_EVERY " << event.evaluate_every;
      break;
    case WorkloadEvent::Kind::kFlush:
      out << "FLUSH";
      break;
  }
  return out.str();
}

std::string WorkloadToString(const GeneratedWorkload& workload) {
  std::ostringstream out;
  for (size_t i = 0; i < workload.events.size(); ++i) {
    out << "  [" << i << "] " << EventToString(workload.events[i]) << "\n";
  }
  return out.str();
}

}  // namespace entangled
