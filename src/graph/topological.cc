#include "graph/topological.h"

#include <algorithm>
#include <queue>

namespace entangled {

Result<std::vector<NodeId>> TopologicalOrder(const Digraph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<int> in_degree(static_cast<size_t>(n), 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.Successors(u)) {
      ++in_degree[static_cast<size_t>(v)];
    }
  }
  // Min-heap keyed on node id for a deterministic order.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>>
      ready;
  for (NodeId v = 0; v < n; ++v) {
    if (in_degree[static_cast<size_t>(v)] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    NodeId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (NodeId v : graph.Successors(u)) {
      if (--in_degree[static_cast<size_t>(v)] == 0) ready.push(v);
    }
  }
  if (order.size() != static_cast<size_t>(n)) {
    return Status::FailedPrecondition("graph has a cycle; ", order.size(),
                                      " of ", n, " nodes ordered");
  }
  return order;
}

Result<std::vector<NodeId>> ReverseTopologicalOrder(const Digraph& graph) {
  auto order = TopologicalOrder(graph);
  if (!order.ok()) return order.status();
  std::vector<NodeId> reversed = std::move(order).value();
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

bool IsTopologicalOrder(const Digraph& graph,
                        const std::vector<NodeId>& order) {
  if (order.size() != static_cast<size_t>(graph.num_nodes())) return false;
  std::vector<NodeId> position(order.size(), -1);
  for (size_t i = 0; i < order.size(); ++i) {
    NodeId v = order[i];
    if (v < 0 || v >= graph.num_nodes()) return false;
    if (position[static_cast<size_t>(v)] != -1) return false;  // duplicate
    position[static_cast<size_t>(v)] = static_cast<NodeId>(i);
  }
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.Successors(u)) {
      if (position[static_cast<size_t>(u)] >=
          position[static_cast<size_t>(v)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace entangled
