// The §5 movie-night example solved with the Consistent Coordination
// Algorithm: every band member wants to share a cab to *some* cinema
// with a friend, but they disagree about movies.  The resulting
// entangled queries are UNSAFE (friend variables match many heads), yet
// because everyone coordinates on the same attribute — the cinema — the
// algorithm runs in polynomial time.
//
// Build & run:  ./build/examples/movie_night

#include <iostream>

#include "algo/consistent.h"
#include "core/properties.h"
#include "example_common.h"
#include "workload/scenarios.h"

using namespace entangled;
using namespace entangled::examples;

int main() {
  Database db;
  MovieScenario scenario = BuildMovieScenario(&db);

  PrintBanner("Movie night (paper §5)");
  std::cout << "Cinema table M(movie_id, cinema, movie):\n";
  const Relation& movies = **db.Get("M");
  for (RowView row : movies.rows()) {
    std::cout << "  " << TupleToString(row) << "\n";
  }
  std::cout << "\nQueries (structured A-consistent form, A = {cinema}):\n";
  for (const ConsistentQuery& q : scenario.queries) {
    std::cout << "  " << q.user << ": ";
    std::cout << (q.self_spec[0] ? q.self_spec[0]->ToString()
                                 : std::string("any cinema"));
    std::cout << ", movie "
              << (q.self_spec[1] ? q.self_spec[1]->ToString()
                                 : std::string("any"));
    std::cout << ", with " << q.partners[0].ToString() << "\n";
  }

  // The same queries in the paper's general entangled-query form — and
  // proof that they are unsafe.
  QuerySet general;
  ConsistentConversion conversion =
      ToEntangledQueries(scenario.schema, scenario.queries, &general);
  std::cout << "\nAs general entangled queries:\n" << general.ToString();
  std::cout << "safe set? " << (IsSafeSet(general) ? "yes" : "no")
            << "  (friend variables match many heads)\n\n";

  ConsistentCoordinator coordinator(&db, scenario.schema);
  auto solution = coordinator.Solve(scenario.queries);
  if (!solution.ok()) {
    std::cerr << "no coordination: " << solution.status() << "\n";
    return 1;
  }

  std::cout << "Candidate cinemas and surviving group sizes:\n";
  for (const auto& [value, survivors] : coordinator.value_outcomes()) {
    std::cout << "  " << value[0] << ": " << survivors
              << (survivors == 0 ? "  (cleaning removed everyone)" : "")
              << "\n";
  }

  std::cout << "\nChosen cinema: " << solution->agreed_value[0] << "\n";
  for (const ConsistentMember& member : solution->members) {
    const ConsistentQuery& q = scenario.queries[member.query_index];
    RowView row = movies.row(member.self_row);
    std::cout << "  " << q.user << " watches " << row[2] << " at "
              << row[1] << " (ticket " << row[0] << "), sharing a cab with "
              << scenario.queries[member.partner_queries[0][0]].user << "\n";
  }

  // Cross-validate through the generic Definition-1 validator.
  CoordinationSolution translated = ToCoordinationSolution(
      db, scenario.schema, scenario.queries, conversion, *solution);
  std::cout << "stats: " << coordinator.stats().ToString() << "\n";
  return ReportValidation(ValidateSolution(db, general, translated));
}
