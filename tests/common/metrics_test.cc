// Coverage for the observability primitives (common/metrics.h): the
// power-of-two latency histogram (bucketing, quantile bounds, merges)
// and the MetricsSnapshot JSON serializer (exact stable document,
// escaping, empty snapshot).

#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace entangled {
namespace {

TEST(LatencyHistogramTest, BucketsByBitWidth) {
  LatencyHistogram h;
  h.Record(0);     // bucket 0 (bit width of 0)
  h.Record(1);     // bucket 1: [1, 2)
  h.Record(2);     // bucket 2: [2, 4)
  h.Record(3);     // bucket 2
  h.Record(1024);  // bucket 11: [1024, 2048)

  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.total_ns(), 1030u);
  EXPECT_EQ(h.max_ns(), 1024u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);

  EXPECT_EQ(LatencyHistogram::BucketUpperBoundNs(1), 2u);
  EXPECT_EQ(LatencyHistogram::BucketUpperBoundNs(11), 2048u);
  // The final bucket is unbounded.
  EXPECT_EQ(LatencyHistogram::BucketUpperBoundNs(31), ~uint64_t{0});
}

TEST(LatencyHistogramTest, NegativeSamplesClampToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.total_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(LatencyHistogramTest, HugeSamplesLandInTheLastBucket) {
  LatencyHistogram h;
  h.Record(static_cast<int64_t>(uint64_t{1} << 62));
  EXPECT_EQ(h.bucket(LatencyHistogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(h.ApproxQuantileNs(0.5), ~uint64_t{0});
}

TEST(LatencyHistogramTest, QuantileReportsBucketUpperEdge) {
  LatencyHistogram h;
  EXPECT_EQ(h.ApproxQuantileNs(0.5), 0u);  // empty

  h.Record(1);  // bucket 1, edge 2
  h.Record(2);  // bucket 2, edge 4
  h.Record(4);  // bucket 3, edge 8
  // p50 rank = 1 of 3: the first sample's bucket edge.
  EXPECT_EQ(h.ApproxQuantileNs(0.5), 2u);
  EXPECT_EQ(h.ApproxQuantileNs(0.0), 2u);  // rank clamps to 1
  EXPECT_EQ(h.ApproxQuantileNs(1.0), 8u);
  EXPECT_EQ(h.ApproxQuantileNs(2.0), 8u);  // p clamps to 1
}

TEST(LatencyHistogramTest, MergeIsFieldWise) {
  LatencyHistogram a;
  a.Record(1);
  a.Record(100);
  LatencyHistogram b;
  b.Record(3);
  b.Record(5000);

  a += b;
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.total_ns(), 5104u);
  EXPECT_EQ(a.max_ns(), 5000u);
  EXPECT_EQ(a.bucket(1), 1u);   // 1
  EXPECT_EQ(a.bucket(2), 1u);   // 3
  EXPECT_EQ(a.bucket(7), 1u);   // 100 in [64, 128)
  EXPECT_EQ(a.bucket(13), 1u);  // 5000 in [4096, 8192)
}

TEST(MetricsSnapshotTest, ToJsonIsTheExactDocumentedDocument) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("a", 1);
  snap.counters.emplace_back("b", 2);
  LatencyHistogram h;
  h.Record(1);
  h.Record(1000);
  snap.latency.emplace_back("h", h);
  snap.gauges.pending = 3;
  snap.gauges.intake_depth = 1;
  snap.gauges.live_shards = 2;
  snap.gauges.group_merges = 4;
  snap.gauges.queries_migrated = 5;
  snap.gauges.queries_retained = 7;
  snap.gauges.merge_events = 6;
  snap.gauges.merge_migrated_max = 3;
  snap.gauges.shards.push_back(ShardGauge{0, 1, 2});
  snap.gauges.shards.push_back(ShardGauge{3, 2, 9});

  EXPECT_EQ(
      snap.ToJson(),
      "{\"counters\":{\"a\":1,\"b\":2},"
      "\"gauges\":{\"pending\":3,\"intake_depth\":1,\"live_shards\":2,"
      "\"group_merges\":4,\"queries_migrated\":5,\"queries_retained\":7,"
      "\"merge_events\":6,\"merge_migrated_max\":3,"
      "\"shards\":[{\"slot\":0,\"pending\":1,\"evaluations\":2},"
      "{\"slot\":3,\"pending\":2,\"evaluations\":9}]},"
      "\"latency\":{\"h\":{\"count\":2,\"total_ns\":1001,\"max_ns\":1000,"
      "\"p50_ns\":2,\"p99_ns\":2,\"buckets\":[[1,1],[10,1]]}}}");
}

TEST(MetricsSnapshotTest, EmptySnapshotSerializesAllSections) {
  MetricsSnapshot snap;
  EXPECT_EQ(snap.ToJson(),
            "{\"counters\":{},"
            "\"gauges\":{\"pending\":0,\"intake_depth\":0,\"live_shards\":0,"
            "\"group_merges\":0,\"queries_migrated\":0,\"queries_retained\":0,"
            "\"merge_events\":0,\"merge_migrated_max\":0,\"shards\":[]},"
            "\"latency\":{}}");
}

TEST(MetricsSnapshotTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace entangled
