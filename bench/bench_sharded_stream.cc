// Sharded front door throughput: submissions/sec through the
// ShardedCoordinationEngine versus the single CoordinationEngine on a
// partitioned workload with a 10k stuck backlog.
//
// Scenario: 10k stuck singleton queries (each in a private answer
// relation — 10k one-query shards on the sharded path, exercising the
// routing table at scale) sit pending while coordinating traffic
// streams through 4 relation partitions N0..N3: every round submits one
// G-query *open* chain per partition and then flushes.  An open chain
// is the paper's nested-reachable-sets shape: the SCC sweep issues one
// database query per chain position over a combined query that grows
// linearly towards the head, Θ(G²) grounded atoms per component — so a
// flush carries substantial evaluation work per parsed arrival, which
// is exactly the regime where sharding pays.  Chains in different
// partitions have disjoint relation footprints, so the sharded engine
// holds one shard per partition and fans the per-partition flush work —
// component evaluation *and* retirement/repartition bookkeeping — out
// on its shard pool.  The single engine performs identical component
// work but applies every outcome on the calling thread; its
// flush_threads option parallelizes only the solve step.
//
// The headline series sweeps the shard-pool width at a fixed 4-way
// partitioning.  Speedups over the single-engine path require hardware
// parallelism; the >= 2x gate becomes a hard failure only under
// ENTANGLED_BENCH_STRICT=1 on a >= 4-thread host (parallel-speedup
// bars are too noisy for shared CI runners to gate every push on).
// Single-core containers record the overhead-only numbers, which also
// bound the routing cost.

#include <cstddef>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "system/engine.h"
#include "system/sharded_engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

constexpr size_t kSocialRows = 4096;
constexpr size_t kBacklog = 10000;
constexpr size_t kPartitions = 4;
constexpr size_t kChainLength = 48;
constexpr size_t kRounds = 12;

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    ENTANGLED_CHECK(InstallSocialTable(database, "Users", kSocialRows).ok());
    return database;
  }();
  return *db;
}

/// A stuck query in a private answer relation: pends forever, never
/// entangles with anything.
std::string StuckQuery(size_t i) {
  return "w" + std::to_string(i) + ": { Dead" + std::to_string(i) +
         "(m) } W" + std::to_string(i) + "(s) :- Users(s, 'user" +
         std::to_string(i % 97) + "').";
}

/// Member k of the round-`c` open chain in partition `p`: posts on
/// member k+1 through relation N<p> (the last member posts on nothing
/// and anchors the sweep), so R(member 0) is the whole chain and it
/// coordinates as one set.  Two indexed body atoms per member give the
/// nested combined queries real grounding work.
std::string ChainQuery(size_t p, size_t c, size_t k) {
  const std::string rel = "N" + std::to_string(p);
  auto tag = [&](size_t member) {
    return "C" + std::to_string(p) + "x" + std::to_string(c) + "x" +
           std::to_string(member);
  };
  // The post rides its own variable z (bound through the successor's
  // head at unification time); x stays member-local so each member's
  // body grounds against its own handle.
  const std::string posts =
      k + 1 < kChainLength ? rel + "(" + tag(k + 1) + ", z)" : std::string();
  return "c" + std::to_string(p) + "_" + std::to_string(c) + "_" +
         std::to_string(k) + ": { " + posts + " } " + rel + "(" + tag(k) +
         ", x) :- Users(x, 'user" + std::to_string((c + k) % 97) +
         "'), Users(y, 'user" + std::to_string((c * 7 + k + 3) % 97) +
         "').";
}

struct StreamOutcome {
  double seconds = 0;
  size_t arrivals = 0;
  uint64_t sets = 0;
  double qps() const { return arrivals / seconds; }
};

/// Preloads the backlog (and settles it with one untimed flush), then
/// streams `kRounds` rounds of one chain per partition + Flush through
/// `engine`, timing the submit+flush loop.
StreamOutcome RunStream(CoordinationService* engine) {
  engine->set_evaluate_every(0);
  for (size_t i = 0; i < kBacklog; ++i) {
    ENTANGLED_CHECK(engine->Submit(StuckQuery(i)).ok());
  }
  engine->Flush();  // settle: every stuck component evaluates once

  StreamOutcome outcome;
  WallTimer timer;
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t p = 0; p < kPartitions; ++p) {
      for (size_t k = 0; k < kChainLength; ++k) {
        ENTANGLED_CHECK(engine->Submit(ChainQuery(p, round, k)).ok());
        ++outcome.arrivals;
      }
    }
    const size_t delivered = engine->Flush();
    ENTANGLED_CHECK_EQ(delivered, kPartitions)
        << "every partition's chain must coordinate each round";
  }
  outcome.seconds = timer.ElapsedSeconds();
  outcome.sets = engine->StatsSnapshot().coordinating_sets;
  ENTANGLED_CHECK_EQ(engine->num_pending(), kBacklog)
      << "the stuck backlog must survive untouched";
  return outcome;
}

void ShardedStreamSeries() {
  benchutil::PrintSeriesHeader(
      "Sharded stream: submissions/sec at a 10k stuck backlog, one "
      "coordinating chain per partition per flush, 4 relation partitions",
      {"engine", "threads", "qps", "speedup_vs_single"});

  EngineOptions single_options;
  single_options.evaluate_every = 0;
  CoordinationEngine single(&SocialDb(), single_options);
  StreamOutcome base = RunStream(&single);

  auto report = [&](const std::string& engine_label, size_t threads,
                    const StreamOutcome& outcome) {
    const double speedup = outcome.qps() / base.qps();
    benchutil::PrintRow({static_cast<double>(engine_label == "sharded"),
                         static_cast<double>(threads), outcome.qps(),
                         speedup});
    benchutil::PrintJsonRecord(
        "sharded_stream",
        {{"sharded", engine_label == "sharded" ? 1.0 : 0.0},
         {"threads", static_cast<double>(threads)},
         {"partitions", static_cast<double>(kPartitions)},
         {"backlog", static_cast<double>(kBacklog)},
         {"arrivals", static_cast<double>(outcome.arrivals)},
         {"qps", outcome.qps()},
         {"speedup_vs_single", speedup},
         {"hardware_threads",
          static_cast<double>(std::thread::hardware_concurrency())}});
    return speedup;
  };
  report("single", 1, base);

  double speedup_at_4 = 0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedEngineOptions options;
    options.engine.evaluate_every = 0;
    options.shard_threads = threads;
    ShardedCoordinationEngine sharded(&SocialDb(), options);
    StreamOutcome outcome = RunStream(&sharded);
    const double speedup = report("sharded", threads, outcome);
    if (threads == 4) speedup_at_4 = speedup;
  }

  // The >= 2x gate needs real hardware parallelism AND a quiet host, so
  // it is a hard failure only when explicitly armed (perf-gate runs set
  // ENTANGLED_BENCH_STRICT=1 on a >= 4-thread machine); everywhere else
  // the speedup is recorded in the BENCH_JSON trajectory instead of
  // aborting CI on a noisy shared runner.
  const unsigned hardware = std::thread::hardware_concurrency();
  const char* strict = std::getenv("ENTANGLED_BENCH_STRICT");
  const bool strict_armed = strict != nullptr && strict[0] != '\0' &&
                            strict[0] != '0';
  if (hardware >= 4 && strict_armed) {
    ENTANGLED_CHECK_GE(speedup_at_4, 2.0)
        << "the sharded front door must sustain >= 2x submissions/sec "
           "over the single-engine path on the 4-partition workload";
  } else if (hardware < 4) {
    benchutil::PrintNote(
        "only " + std::to_string(hardware) +
        " hardware thread(s): shard-pool parallelism cannot materialize, "
        "so the >= 2x gate is disarmed and the numbers above measure "
        "routing + migration overhead only");
  } else {
    benchutil::PrintNote(
        "speedup_at_4_threads=" + std::to_string(speedup_at_4) +
        "; set ENTANGLED_BENCH_STRICT=1 to turn the >= 2x bar into a "
        "hard failure");
  }
  benchutil::PrintNote(
      "independent shards flush whole (solve + retire + repartition) on "
      "the shard pool; the single engine parallelizes only the solve "
      "step and applies outcomes serially");
}

}  // namespace
}  // namespace entangled

int main() {
  entangled::ShardedStreamSeries();
  return 0;
}
