// Shard merges: bridge arrivals/sec against a growing resident group,
// small-into-large migration vs the rebuild-everything baseline.
//
// Scenario: one heavy relation group holds kResidents stuck queries
// (each its own component, all sharing relation G's footprint).  Each
// timed arrival first plants a stuck loner in a fresh relation Xi, then
// submits a bridge whose footprint spans Xi and G — so every bridge
// forces a two-shard merge.  Under the small-into-large policy the
// heavy shard survives and only the loner (plus nothing else) migrates:
// O(1) per bridge, and the residents' memoized component state rides
// along untouched.  Under ShardedEngineOptions::rebuild_merges the
// whole union is replayed into a fresh engine every time: O(residents)
// per bridge, quadratic over the stream.
//
// The gate is count-based, not time-based (robust on throttled CI
// hardware): the rebuild baseline must migrate >= 5x more queries than
// the small-into-large policy over the identical stream — the ISSUE's
// O(smaller-side) acceptance bar.  Wall-clock arrivals/sec is reported
// for the perf trajectory alongside.
//
// migrated_ratio = queries_migrated(rebuild) / queries_migrated(migrate).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "system/sharded_engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

constexpr size_t kSocialRows = 4096;
constexpr size_t kResidents = 64;  ///< stuck queries in the heavy group
constexpr size_t kBridges = 64;    ///< timed merge-forcing arrivals

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    ENTANGLED_CHECK(InstallSocialTable(database, "Users", kSocialRows).ok());
    return database;
  }();
  return *db;
}

/// Resident `i`: a pending sink in the shared heavy relation G — no
/// postconditions (so evaluation reaches it and records its verdict in
/// the component memo; a dead post would be pre-cleaned before any
/// state is built) and an ungroundable multi-atom body, so it pends
/// forever as its own evaluated component.  Under the rebuild baseline
/// every merge re-grounds all resident bodies in the fresh shard;
/// small-into-large never touches them again.
std::string Resident(size_t i) {
  const std::string tag = "T" + std::to_string(i);
  return "g" + std::to_string(i) + ": { } G(" + tag +
         ", y) :- Users(y, 'nouser'), Users(y2, 'user1'), "
         "Users(y3, 'user2').";
}

/// The stuck loner bridge `i` will pull into the heavy group.
std::string Loner(size_t i) {
  const std::string rel = "X" + std::to_string(i);
  return "l" + std::to_string(i) + ": { " + rel + "(NeverL, x) } " + rel +
         "(L, x) :- Users(x, 'user7').";
}

/// Bridge `i`: footprint spans X<i> and G, so its arrival merges the
/// loner's shard into the heavy one (or rebuilds the union, under the
/// baseline).
std::string Bridge(size_t i) {
  const std::string rel = "X" + std::to_string(i);
  return "b" + std::to_string(i) + ": { " + rel + "(NeverL, x), G(NeverT0, "
         "x) } B(Tb" + std::to_string(i) + ", x) :- Users(x, 'user7').";
}

struct MergeOutcome {
  double seconds = 0;
  ShardedStats stats;
  uint64_t cache_hits = 0;
  double arrivals_per_sec() const { return kBridges / seconds; }
};

MergeOutcome RunStream(bool rebuild_merges) {
  ShardedEngineOptions options;
  options.rebuild_merges = rebuild_merges;
  options.engine.evaluate_every = 0;
  ShardedCoordinationEngine engine(&SocialDb(), options);

  // Untimed setup: the resident group, evaluated once so every
  // component carries memoized solver state into the merge storm.
  for (size_t i = 0; i < kResidents; ++i) {
    ENTANGLED_CHECK(engine.Submit(Resident(i)).ok());
  }
  ENTANGLED_CHECK_EQ(engine.Flush(), size_t{0});
  ENTANGLED_CHECK_EQ(engine.num_pending(), kResidents);

  // Timed: each iteration plants a loner shard and bridges it into the
  // heavy group — one forced merge per bridge, then a flush so the
  // merged shard re-settles (the post-merge evaluation a live service
  // would pay).
  MergeOutcome outcome;
  WallTimer timer;
  for (size_t i = 0; i < kBridges; ++i) {
    ENTANGLED_CHECK(engine.Submit(Loner(i)).ok());
    ENTANGLED_CHECK(engine.Submit(Bridge(i)).ok());
    engine.Flush();
  }
  outcome.seconds = timer.ElapsedSeconds();
  ENTANGLED_CHECK_EQ(engine.num_pending(), kResidents + 2 * kBridges);
  ENTANGLED_CHECK_EQ(engine.num_live_shards(), size_t{1});
  outcome.stats = engine.sharded_stats();
  outcome.cache_hits = engine.StatsSnapshot().eval_cache_hits;
  return outcome;
}

void ShardMergeSeries() {
  benchutil::PrintSeriesHeader(
      "Shard merges: " + std::to_string(kBridges) +
          " bridge arrivals into a " + std::to_string(kResidents) +
          "-resident group, small-into-large vs rebuild",
      {"rebuild", "arrivals_per_sec", "migrated", "retained",
       "migrated_max", "ratio_vs_migrate"});

  MergeOutcome migrate = RunStream(false);
  MergeOutcome rebuild = RunStream(true);
  const double migrated_ratio =
      static_cast<double>(rebuild.stats.queries_migrated) /
      static_cast<double>(migrate.stats.queries_migrated);
  const double speedup =
      migrate.arrivals_per_sec() / rebuild.arrivals_per_sec();
  for (const auto* o : {&migrate, &rebuild}) {
    const bool is_rebuild = o == &rebuild;
    benchutil::PrintRow(
        {is_rebuild ? 1.0 : 0.0, o->arrivals_per_sec(),
         static_cast<double>(o->stats.queries_migrated),
         static_cast<double>(o->stats.queries_retained),
         static_cast<double>(o->stats.merge_migrated_max),
         is_rebuild ? migrated_ratio : 1.0});
    benchutil::PrintJsonRecord(
        "shard_merge",
        {{"rebuild_merges", is_rebuild ? 1.0 : 0.0},
         {"residents", static_cast<double>(kResidents)},
         {"bridges", static_cast<double>(kBridges)},
         {"arrivals_per_sec", o->arrivals_per_sec()},
         {"merge_events", static_cast<double>(o->stats.merge_events)},
         {"queries_migrated", static_cast<double>(o->stats.queries_migrated)},
         {"queries_retained", static_cast<double>(o->stats.queries_retained)},
         {"merge_migrated_max",
          static_cast<double>(o->stats.merge_migrated_max)},
         {"eval_cache_hits", static_cast<double>(o->cache_hits)},
         {"migrated_ratio_vs_migrate", is_rebuild ? migrated_ratio : 1.0},
         {"speedup_vs_rebuild", is_rebuild ? 1.0 : speedup}});
  }

  // Identical logical outcome either way...
  ENTANGLED_CHECK_EQ(migrate.stats.merge_events, rebuild.stats.merge_events);
  ENTANGLED_CHECK_EQ(migrate.stats.merge_events,
                     static_cast<uint64_t>(kBridges));
  // ...but the rebuild baseline re-homes the whole union per merge
  // while small-into-large moves only the loner: >= 5x fewer
  // migrations is the acceptance bar (the true gap grows with the
  // resident group — ~128x at these sizes).
  ENTANGLED_CHECK_GE(migrated_ratio, 5.0)
      << "small-into-large merges must migrate >= 5x fewer queries than "
         "the rebuild baseline";
  // Per-merge high-water mark: the survivor never rebuilt.
  ENTANGLED_CHECK_LE(migrate.stats.merge_migrated_max, uint64_t{2});
  benchutil::PrintNote(
      "rebuild migrated " + std::to_string(rebuild.stats.queries_migrated) +
      " queries vs " + std::to_string(migrate.stats.queries_migrated) +
      " small-into-large (" + std::to_string(migrated_ratio) +
      "x); survivor retained " +
      std::to_string(migrate.stats.queries_retained) +
      " queries in place across " +
      std::to_string(migrate.stats.merge_events) + " merges");
}

}  // namespace
}  // namespace entangled

int main() {
  entangled::ShardMergeSeries();
  return 0;
}
