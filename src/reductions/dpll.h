#ifndef ENTANGLED_REDUCTIONS_DPLL_H_
#define ENTANGLED_REDUCTIONS_DPLL_H_

#include <cstdint>
#include <optional>

#include "reductions/cnf.h"

namespace entangled {

/// \brief Statistics of one DPLL run.
struct DpllStats {
  uint64_t decisions = 0;
  uint64_t unit_propagations = 0;
  uint64_t pure_eliminations = 0;
  uint64_t backtracks = 0;
};

/// \brief A classic DPLL SAT solver (unit propagation + pure-literal
/// elimination + first-unassigned branching).
///
/// The substrate that makes the paper's hardness constructions (§3,
/// Appendix A/B) *executable*: property tests check that a formula is
/// satisfiable iff its entangled-query encoding has a coordinating set,
/// and benchmarks compare coordination-based SAT solving against
/// direct search.
class DpllSolver {
 public:
  DpllSolver() = default;

  /// A satisfying assignment (indexed 1..num_vars), or nullopt when
  /// unsatisfiable.
  std::optional<TruthAssignment> Solve(const CnfFormula& formula);

  const DpllStats& stats() const { return stats_; }

 private:
  DpllStats stats_;
};

}  // namespace entangled

#endif  // ENTANGLED_REDUCTIONS_DPLL_H_
