#ifndef ENTANGLED_DB_EVALUATOR_H_
#define ENTANGLED_DB_EVALUATOR_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/atom.h"
#include "db/binding.h"
#include "db/database.h"

namespace entangled {

/// \brief Conjunctive-query evaluator over an in-memory Database.
///
/// This is the only channel through which the coordination algorithms
/// touch data: each FindOne call corresponds to one "query issued to the
/// database" in the paper's cost accounting (§4, §5), and increments
/// Database::stats().
///
/// Evaluation is a backtracking join.  Atoms are ordered greedily
/// (most-bound first, smaller relations first) and candidate rows are
/// produced through lazily-built single-column hash indexes whenever at
/// least one position of the atom is bound.  The inner loop touches
/// only contiguous PODs: interned 16-byte Values read from the
/// relation's flat row arena, matched against a dense Binding, with a
/// shared trail for O(bound-this-row) backtracking.
class Evaluator {
 public:
  explicit Evaluator(const Database* db);

  /// Verifies that every atom references an existing relation with the
  /// right arity.
  Status Validate(const std::vector<Atom>& body) const;

  /// Finds one assignment extending `initial` that makes every body atom
  /// a tuple of the database (choose-1 semantics: the witness is the
  /// first in deterministic scan order).  Returns nullopt when the query
  /// is unsatisfiable.  CHECK-fails on schema mismatches; call
  /// Validate() first for untrusted input.
  std::optional<Binding> FindOne(const std::vector<Atom>& body,
                                 const Binding& initial = {}) const;

  /// Whether at least one satisfying assignment exists.
  bool Satisfiable(const std::vector<Atom>& body,
                   const Binding& initial = {}) const;

  /// Enumerates the distinct projections of all satisfying assignments
  /// onto `projection`, in first-found order.  Every projection variable
  /// must occur in `body`.
  std::vector<std::vector<Value>> EnumerateDistinct(
      const std::vector<Atom>& body, const std::vector<VarId>& projection,
      const Binding& initial = {}) const;

  /// Counts satisfying assignments (used by tests; exponential output
  /// sensitivity, prefer EnumerateDistinct elsewhere).
  uint64_t CountSolutions(const std::vector<Atom>& body,
                          const Binding& initial = {}) const;

  const Database* db() const { return db_; }

 private:
  // Shared backtracking driver; `on_solution` returns true to stop.
  template <typename Callback>
  void Search(const std::vector<Atom>& body, const Binding& initial,
              Callback&& on_solution) const;

  std::vector<size_t> OrderAtoms(
      const std::vector<Atom>& body,
      const std::vector<const Relation*>& relations,
      const Binding& initial) const;

  const Database* db_;
};

}  // namespace entangled

#endif  // ENTANGLED_DB_EVALUATOR_H_
