#ifndef ENTANGLED_COMMON_RESULT_H_
#define ENTANGLED_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace entangled {

/// \brief Either a value of type T or a non-OK Status (an arrow::Result /
/// absl::StatusOr analogue).
///
///     Result<int> ParsePort(const std::string& s);
///     ...
///     auto port = ParsePort(s);
///     if (!port.ok()) return port.status();
///     Use(*port);
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status; CHECK-fails on OK status
  /// because an OK Result must carry a value.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    ENTANGLED_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const { return ok(); }

  /// Returns OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Value accessors; CHECK-fail when holding an error.
  const T& value() const& {
    ENTANGLED_CHECK(ok()) << "Result::value() on error: "
                          << std::get<Status>(repr_).ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    ENTANGLED_CHECK(ok()) << "Result::value() on error: "
                          << std::get<Status>(repr_).ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    ENTANGLED_CHECK(ok()) << "Result::value() on error: "
                          << std::get<Status>(repr_).ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `expr` (a Result<T>), propagating its error or binding its
/// value to `lhs`.
#define ENTANGLED_ASSIGN_OR_RETURN(lhs, expr)               \
  ENTANGLED_ASSIGN_OR_RETURN_IMPL(                          \
      ENTANGLED_CONCAT_(_result_, __LINE__), lhs, expr)

#define ENTANGLED_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define ENTANGLED_CONCAT_(a, b) ENTANGLED_CONCAT_IMPL_(a, b)
#define ENTANGLED_CONCAT_IMPL_(a, b) a##b

}  // namespace entangled

#endif  // ENTANGLED_COMMON_RESULT_H_
