#include "core/properties.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "workload/entangled_workloads.h"
#include "workload/scenarios.h"

namespace entangled {
namespace {

/// q_i coordinating with the next via R(user<i+1>, y), over a tiny
/// social table.
QuerySet MakeChainSet(int n) {
  QuerySet set;
  MakeListWorkload(n, "Users", &set);
  return set;
}

TEST(PropertiesTest, FlightHotelIsSafeNotUnique) {
  Database db;
  QuerySet set;
  BuildFlightHotelScenario(&db, &set);
  EXPECT_TRUE(IsSafeSet(set));
  EXPECT_FALSE(IsUniqueSet(set));  // qW is reachable from nobody
}

TEST(PropertiesTest, GwynethBreaksUniquenessNotSafety) {
  // Example 1: the band cycle alone is safe and unique; adding
  // Gwyneth's request to fly with Chris keeps it safe, kills
  // uniqueness.
  QuerySet set;
  QueryBuilder bc(&set, "chris");
  VarId x = bc.Var("x");
  bc.Post("R", {Term::Str("Guy"), Term::Var(x)});
  bc.Head("R", {Term::Str("Chris"), Term::Var(x)});
  bc.Body("F", {Term::Var(x)});
  bc.Build();
  QueryBuilder bg(&set, "guy");
  VarId y = bg.Var("y");
  bg.Post("R", {Term::Str("Chris"), Term::Var(y)});
  bg.Head("R", {Term::Str("Guy"), Term::Var(y)});
  bg.Body("F", {Term::Var(y)});
  bg.Build();
  EXPECT_TRUE(IsSafeSet(set));
  EXPECT_TRUE(IsUniqueSet(set));

  QueryBuilder bp(&set, "gwyneth");
  VarId z = bp.Var("z");
  bp.Post("R", {Term::Str("Chris"), Term::Var(z)});
  bp.Head("R", {Term::Str("Gwyneth"), Term::Var(z)});
  bp.Body("F", {Term::Var(z)});
  bp.Build();
  EXPECT_TRUE(IsSafeSet(set));
  EXPECT_FALSE(IsUniqueSet(set));
}

TEST(PropertiesTest, TwoMatchingHeadsAreUnsafe) {
  QuerySet set;
  QueryBuilder b1(&set, "asker");
  VarId x = b1.Var("x");
  b1.Post("R", {Term::Var(x)});  // variable: unifies with both heads
  b1.Head("H", {Term::Var(x)});
  b1.Build();
  QueryBuilder b2(&set, "a");
  VarId y = b2.Var("y");
  b2.Head("R", {Term::Var(y)});
  b2.Build();
  QueryBuilder b3(&set, "b");
  VarId z = b3.Var("z");
  b3.Head("R", {Term::Var(z)});
  b3.Build();
  EXPECT_FALSE(IsSafeSet(set));
  ExtendedCoordinationGraph ecg(set);
  EXPECT_FALSE(IsSafeQuery(ecg, 0, set));
  EXPECT_TRUE(IsSafeQuery(ecg, 1, set));
}

TEST(PropertiesTest, OwnHeadCountsTowardSafety) {
  // The only matching head is the query's own: still safe (one head).
  QuerySet set;
  QueryBuilder b(&set, "self");
  VarId x = b.Var("x");
  b.Post("R", {Term::Var(x)});
  b.Head("R", {Term::Int(1)});
  b.Build();
  EXPECT_TRUE(IsSafeSet(set));
}

TEST(PropertiesTest, ChainWorkloadSafeNotUnique) {
  QuerySet set = MakeChainSet(5);
  EXPECT_TRUE(IsSafeSet(set));
  EXPECT_FALSE(IsUniqueSet(set));
}

TEST(PropertiesTest, CycleWorkloadSafeAndUnique) {
  QuerySet set;
  MakeCycleWorkload(5, "Users", &set);
  EXPECT_TRUE(IsSafeSet(set));
  EXPECT_TRUE(IsUniqueSet(set));
}

TEST(PropertiesTest, SingleConnectedChain) {
  EXPECT_TRUE(IsSingleConnected(MakeChainSet(6)));
}

TEST(PropertiesTest, TwoPostconditionsBreakSingleConnectedness) {
  Database db;
  QuerySet set;
  BuildFlightHotelScenario(&db, &set);  // qG, qJ, qW have 2 posts
  EXPECT_FALSE(IsSingleConnected(set));
}

TEST(PropertiesTest, TwoSimplePathsBreakSingleConnectedness) {
  // Diamond with <=1 postcondition per query but two paths q0 ~> q3:
  // q0's post matches heads of q1 and q2 (unsafe but one post);
  // q1, q2 each need q3.
  QuerySet set;
  QueryBuilder b0(&set, "q0");
  VarId a = b0.Var("a");
  b0.Post("Mid", {Term::Var(a)});
  b0.Head("Top", {Term::Var(a)});
  b0.Build();
  for (const char* name : {"q1", "q2"}) {
    QueryBuilder b(&set, name);
    VarId v = b.Var("v");
    VarId w = b.Var("w");
    b.Post("Bot", {Term::Var(w)});
    b.Head("Mid", {Term::Var(v)});
    b.Build();
  }
  QueryBuilder b3(&set, "q3");
  VarId z = b3.Var("z");
  b3.Head("Bot", {Term::Var(z)});
  b3.Build();

  EXPECT_FALSE(IsSafeSet(set));        // q0's post has two targets
  EXPECT_FALSE(IsSingleConnected(set));  // two simple paths q0 -> q3
}

TEST(PropertiesTest, UnsafeFanoutCanStillBeSingleConnected) {
  // One post matching two heads, but the branches never reconverge.
  QuerySet set;
  QueryBuilder b0(&set, "root");
  VarId a = b0.Var("a");
  b0.Post("Leaf", {Term::Var(a)});
  b0.Head("Root", {Term::Var(a)});
  b0.Build();
  for (const char* name : {"leaf1", "leaf2"}) {
    QueryBuilder b(&set, name);
    VarId v = b.Var("v");
    b.Head("Leaf", {Term::Var(v)});
    b.Build();
  }
  EXPECT_FALSE(IsSafeSet(set));
  EXPECT_TRUE(IsSingleConnected(set));
}

TEST(PropertiesTest, EmptySetIsTriviallyEverything) {
  QuerySet set;
  EXPECT_TRUE(IsSafeSet(set));
  EXPECT_TRUE(IsUniqueSet(set));
  EXPECT_TRUE(IsSingleConnected(set));
}

}  // namespace
}  // namespace entangled
