#include "core/properties.h"

#include "graph/reachability.h"

namespace entangled {

bool IsSafeQuery(const ExtendedCoordinationGraph& graph, QueryId q,
                 const QuerySet& set) {
  const EntangledQuery& query = set.query(q);
  for (size_t pi = 0; pi < query.postconditions.size(); ++pi) {
    if (graph.EdgesOfPostcondition(q, pi).size() > 1) return false;
  }
  return true;
}

bool IsSafeSet(const QuerySet& set, const ExtendedCoordinationGraph& graph) {
  for (QueryId q = 0; q < static_cast<QueryId>(set.size()); ++q) {
    if (!IsSafeQuery(graph, q, set)) return false;
  }
  return true;
}

bool IsSafeSet(const QuerySet& set) {
  ExtendedCoordinationGraph graph(set);
  return IsSafeSet(set, graph);
}

bool IsUniqueSet(const QuerySet& set) {
  return IsStronglyConnected(BuildCoordinationGraph(set));
}

bool IsSingleConnected(const QuerySet& set) {
  for (const EntangledQuery& q : set.queries()) {
    if (q.postconditions.size() > 1) return false;
  }
  Digraph graph = BuildCoordinationGraph(set);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (u == v) continue;
      if (CountSimplePaths(graph, u, v, /*limit=*/2) > 1) return false;
    }
  }
  return true;
}

}  // namespace entangled
