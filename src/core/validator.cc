#include "core/validator.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "core/unify.h"
#include "db/evaluator.h"

namespace entangled {
namespace {

/// A hashable rendering of a ground atom.
std::string GroundAtomKey(const Atom& atom) {
  std::string key = atom.relation;
  key.push_back('(');
  for (const Term& term : atom.terms) {
    key += term.constant().ToString(/*quote=*/true);
    key.push_back(',');
  }
  key.push_back(')');
  return key;
}

}  // namespace

Status ValidateSolution(const Database& db, const QuerySet& set,
                        const CoordinationSolution& solution) {
  if (solution.queries.empty()) {
    return Status::InvalidArgument("a coordinating set must be non-empty");
  }
  std::vector<QueryId> sorted = solution.queries;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("duplicate query in solution");
  }
  for (QueryId q : sorted) {
    if (q < 0 || static_cast<size_t>(q) >= set.size()) {
      return Status::InvalidArgument("unknown query id ", q);
    }
  }

  // Condition (1): every variable is assigned.
  for (QueryId q : sorted) {
    for (VarId v : set.query(q).Variables()) {
      if (!solution.assignment.contains(v)) {
        return Status::FailedPrecondition(
            "condition (1) violated: variable ", set.var_name(v),
            " of query ", set.query(q).name, " is unassigned");
      }
    }
  }

  // Condition (2): grounded body atoms appear in the database instance.
  for (QueryId q : sorted) {
    for (const Atom& atom : set.query(q).body) {
      Atom ground = GroundAtom(atom, solution.assignment);
      const Relation* relation = db.Find(ground.relation);
      if (relation == nullptr) {
        return Status::FailedPrecondition(
            "condition (2) violated: unknown relation ", ground.relation);
      }
      std::vector<std::optional<Value>> pattern;
      pattern.reserve(ground.terms.size());
      for (const Term& term : ground.terms) {
        pattern.emplace_back(term.constant());
      }
      if (!relation->AnyMatch(pattern)) {
        return Status::FailedPrecondition(
            "condition (2) violated: grounded body atom ",
            ground.ToString(), " of query ", set.query(q).name,
            " is not in the database");
      }
    }
  }

  // Condition (3): grounded postconditions  ⊆  grounded heads.
  std::unordered_set<std::string> head_keys;
  for (QueryId q : sorted) {
    for (const Atom& atom : set.query(q).head) {
      head_keys.insert(GroundAtomKey(GroundAtom(atom, solution.assignment)));
    }
  }
  for (QueryId q : sorted) {
    for (const Atom& atom : set.query(q).postconditions) {
      Atom ground = GroundAtom(atom, solution.assignment);
      if (head_keys.find(GroundAtomKey(ground)) == head_keys.end()) {
        return Status::FailedPrecondition(
            "condition (3) violated: grounded postcondition ",
            ground.ToString(), " of query ", set.query(q).name,
            " matches no grounded head in the set");
      }
    }
  }
  return Status::OK();
}

namespace {

struct PostRef {
  QueryId query;
  size_t index;
};

struct HeadRef {
  QueryId query;
  size_t index;
};

}  // namespace

std::optional<Binding> FindCoordinatingWitness(
    const Database& db, const QuerySet& set,
    const std::vector<QueryId>& subset) {
  if (subset.empty()) return std::nullopt;
  std::vector<PostRef> posts;
  std::vector<HeadRef> heads;
  std::vector<Atom> combined_body;
  for (QueryId q : subset) {
    const EntangledQuery& query = set.query(q);
    for (size_t i = 0; i < query.postconditions.size(); ++i) {
      posts.push_back({q, i});
    }
    for (size_t i = 0; i < query.head.size(); ++i) heads.push_back({q, i});
    combined_body.insert(combined_body.end(), query.body.begin(),
                         query.body.end());
  }

  // Enumerate postcondition -> head matchings with an explicit stack;
  // for each complete, consistent matching try to ground the combined
  // body (an unsatisfiable body under one matching must not end the
  // search).  Substitutions are copied per branch — subsets handed to
  // the validator are small (tests, reductions), and copies keep
  // backtracking trivially correct.
  struct Frame {
    size_t head_cursor = 0;
    Substitution subst;
    explicit Frame(Substitution s) : subst(std::move(s)) {}
  };
  std::vector<Frame> frames;
  frames.emplace_back(Substitution(set.num_vars()));
  Evaluator evaluator(&db);

  while (!frames.empty()) {
    size_t depth = frames.size() - 1;
    if (depth == posts.size()) {
      // Complete matching: ground the combined body.
      Substitution& subst = frames.back().subst;
      std::vector<Atom> body = subst.ApplyAll(combined_body);
      std::optional<Binding> witness = evaluator.FindOne(body);
      if (witness.has_value()) {
        std::optional<Binding> assignment =
            CompleteAssignment(db, set, subset, &subst, *witness);
        if (assignment.has_value()) return assignment;
      }
      frames.pop_back();
      continue;
    }
    Frame& frame = frames.back();
    const Atom& post = set.query(posts[depth].query)
                           .postconditions[posts[depth].index];
    bool advanced = false;
    while (frame.head_cursor < heads.size()) {
      const HeadRef& href = heads[frame.head_cursor++];
      const Atom& head = set.query(href.query).head[href.index];
      if (!PositionwiseUnifiable(post, head)) continue;
      Substitution branch = frame.subst;
      if (!branch.UnifyAtoms(post, head)) continue;
      frames.emplace_back(std::move(branch));
      advanced = true;
      break;
    }
    if (!advanced) frames.pop_back();
  }
  return std::nullopt;
}

}  // namespace entangled
