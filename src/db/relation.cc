#include "db/relation.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace entangled {
namespace {

const std::vector<RowId>& EmptyRowList() {
  static const std::vector<RowId> kEmpty;
  return kEmpty;
}

bool RowMatches(RowView row,
                const std::vector<std::optional<Value>>& pattern) {
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i].has_value() && row[i] != *pattern[i]) return false;
  }
  return true;
}

}  // namespace

std::string TupleToString(RowView tuple) {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out << ", ";
    out << tuple[i].ToString(/*quote=*/true);
  }
  out << ")";
  return out.str();
}

Relation::Relation(std::string name, std::vector<std::string> column_names)
    : name_(std::move(name)), column_names_(std::move(column_names)) {
  ENTANGLED_CHECK(!column_names_.empty())
      << "relation " << name_ << " needs at least one column";
}

Relation::Relation(const Relation& other)
    : name_(other.name_), column_names_(other.column_names_) {
  std::shared_lock<std::shared_mutex> lock(other.index_mutex_);
  cells_ = other.cells_;
  num_rows_ = other.num_rows_;
  version_ = other.version_;
  column_indexes_ = other.column_indexes_;
  group_indexes_ = other.group_indexes_;
}

Relation::Relation(Relation&& other) noexcept
    : name_(std::move(other.name_)),
      column_names_(std::move(other.column_names_)) {
  std::unique_lock<std::shared_mutex> lock(other.index_mutex_);
  cells_ = std::move(other.cells_);
  num_rows_ = other.num_rows_;
  other.num_rows_ = 0;
  version_ = other.version_;
  column_indexes_ = std::move(other.column_indexes_);
  group_indexes_ = std::move(other.group_indexes_);
}

std::optional<size_t> Relation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return i;
  }
  return std::nullopt;
}

Status Relation::Insert(Tuple tuple) {
  if (tuple.size() != arity()) {
    return Status::InvalidArgument("relation ", name_, " has arity ", arity(),
                                   " but tuple ", TupleToString(tuple),
                                   " has arity ", tuple.size());
  }
  RowId id = static_cast<RowId>(num_rows_);
  // Keep the lazily-built caches consistent.
  std::unique_lock<std::shared_mutex> lock(index_mutex_);
  for (auto& [column, index] : column_indexes_) {
    index[tuple[column]].push_back(id);
  }
  for (auto& [columns, index] : group_indexes_) {
    std::vector<Value> key;
    key.reserve(columns.size());
    for (size_t c : columns) key.push_back(tuple[c]);
    index[std::move(key)].push_back(id);
  }
  cells_.insert(cells_.end(), tuple.begin(), tuple.end());
  ++num_rows_;
  ++version_;
  if (db_version_ != nullptr) {
    db_version_->fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status Relation::InsertAll(std::vector<Tuple> tuples) {
  for (auto& tuple : tuples) {
    ENTANGLED_RETURN_IF_ERROR(Insert(std::move(tuple)));
  }
  return Status::OK();
}

RowView Relation::row(RowId id) const {
  ENTANGLED_CHECK_LT(id, num_rows_);
  return RowView(cell_ptr(id), arity());
}

const Relation::ColumnIndexMap& Relation::EnsureColumnIndex(
    size_t column) const {
  ENTANGLED_CHECK_LT(column, arity());
  {
    // Fast path: already built — shared lock only, so concurrent
    // readers never serialize on a warm index.
    std::shared_lock<std::shared_mutex> lock(index_mutex_);
    auto it = column_indexes_.find(column);
    if (it != column_indexes_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(index_mutex_);
  auto it = column_indexes_.find(column);  // lost a build race?
  if (it != column_indexes_.end()) return it->second;
  ColumnIndexMap index;
  for (RowId id = 0; id < num_rows_; ++id) {
    index[cell_ptr(id)[column]].push_back(id);
  }
  return column_indexes_.emplace(column, std::move(index)).first->second;
}

const std::vector<RowId>& Relation::Probe(size_t column,
                                          const Value& value) const {
  const ColumnIndexMap& index = EnsureColumnIndex(column);
  auto it = index.find(value);
  return it == index.end() ? EmptyRowList() : it->second;
}

std::vector<RowId> Relation::SelectWhere(
    const std::vector<std::optional<Value>>& pattern) const {
  ENTANGLED_CHECK_EQ(pattern.size(), arity());
  // Pick the most selective engaged column to seed the scan.
  std::optional<size_t> best_column;
  size_t best_bucket = num_rows_ + 1;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (!pattern[i].has_value()) continue;
    size_t bucket = Probe(i, *pattern[i]).size();
    if (bucket < best_bucket) {
      best_bucket = bucket;
      best_column = i;
    }
  }
  std::vector<RowId> result;
  if (!best_column.has_value()) {
    // No constraints: every row matches.
    result.resize(num_rows_);
    for (RowId id = 0; id < num_rows_; ++id) result[id] = id;
    return result;
  }
  for (RowId id : Probe(*best_column, *pattern[*best_column])) {
    if (RowMatches(row(id), pattern)) result.push_back(id);
  }
  return result;
}

bool Relation::AnyMatch(
    const std::vector<std::optional<Value>>& pattern) const {
  ENTANGLED_CHECK_EQ(pattern.size(), arity());
  std::optional<size_t> best_column;
  size_t best_bucket = num_rows_ + 1;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (!pattern[i].has_value()) continue;
    size_t bucket = Probe(i, *pattern[i]).size();
    if (bucket < best_bucket) {
      best_bucket = bucket;
      best_column = i;
    }
  }
  if (!best_column.has_value()) return num_rows_ > 0;
  for (RowId id : Probe(*best_column, *pattern[*best_column])) {
    if (RowMatches(row(id), pattern)) return true;
  }
  return false;
}

std::vector<Value> Relation::DistinctValues(size_t column) const {
  ENTANGLED_CHECK_LT(column, arity());
  std::vector<Value> result;
  std::unordered_set<Value> seen;
  for (RowId id = 0; id < num_rows_; ++id) {
    const Value& value = cell_ptr(id)[column];
    if (seen.insert(value).second) result.push_back(value);
  }
  return result;
}

const std::unordered_map<std::vector<Value>, std::vector<RowId>, VectorHash>&
Relation::GroupBy(const std::vector<size_t>& columns) const {
  for (size_t c : columns) ENTANGLED_CHECK_LT(c, arity());
  {
    std::shared_lock<std::shared_mutex> lock(index_mutex_);
    auto it = group_indexes_.find(columns);
    if (it != group_indexes_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(index_mutex_);
  auto it = group_indexes_.find(columns);  // lost a build race?
  if (it != group_indexes_.end()) return it->second;
  GroupIndexMap index;
  for (RowId id = 0; id < num_rows_; ++id) {
    std::vector<Value> key;
    key.reserve(columns.size());
    for (size_t c : columns) key.push_back(cell_ptr(id)[c]);
    index[std::move(key)].push_back(id);
  }
  return group_indexes_.emplace(columns, std::move(index)).first->second;
}

std::vector<std::vector<Value>> Relation::GroupKeys(
    const std::vector<size_t>& columns) const {
  const GroupIndexMap& groups = GroupBy(columns);
  std::vector<std::vector<Value>> keys;
  keys.reserve(groups.size());
  std::unordered_set<std::vector<Value>, VectorHash> seen;
  for (RowId id = 0; id < num_rows_; ++id) {
    std::vector<Value> key;
    key.reserve(columns.size());
    for (size_t c : columns) key.push_back(cell_ptr(id)[c]);
    if (seen.insert(key).second) keys.push_back(std::move(key));
  }
  return keys;
}

}  // namespace entangled
