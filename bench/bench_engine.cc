// Ablation A5 — Youtopia-style arrival-loop throughput (§6.1 system
// context, and the paper's future-work question about on-line
// processing).
//
// A stream of mutually-entangled query pairs arrives at the engine.
// Two policies: evaluate the affected component on every arrival (the
// Youtopia behaviour) versus buffering the whole stream and flushing
// once.  Eager evaluation re-examines pending queries repeatedly;
// batching amortizes graph construction — the classic
// latency/throughput trade.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "common/logging.h"
#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    ENTANGLED_CHECK(
        InstallSocialTable(database, "Users", kSlashdotTableSize).ok());
    return database;
  }();
  return *db;
}

/// 2*num_pairs arrivals; pair i's two queries name each other through a
/// dedicated answer relation, so each pair coordinates on its own.
std::vector<std::string> MakePairStream(int num_pairs) {
  std::vector<std::string> arrivals;
  for (int i = 0; i < num_pairs; ++i) {
    const std::string rel = "P" + std::to_string(i);
    const std::string handle = "'user" + std::to_string(i) + "'";
    arrivals.push_back("a" + std::to_string(i) + ": { " + rel + "(Bob, x) } " +
                       rel + "(Alice, x) :- Users(x, " + handle + ").");
    arrivals.push_back("b" + std::to_string(i) + ": { " + rel +
                       "(Alice, y) } " + rel + "(Bob, y) :- Users(y, " +
                       handle + ").");
  }
  return arrivals;
}

struct Outcome {
  double ms;
  uint64_t sets;
  uint64_t evaluations;
  uint64_t db_queries;
};

Outcome RunEager(const std::vector<std::string>& arrivals) {
  CoordinationEngine engine(&SocialDb());
  WallTimer timer;
  for (const std::string& text : arrivals) {
    auto id = engine.Submit(text);
    ENTANGLED_CHECK(id.ok()) << id.status();
  }
  return {timer.ElapsedMillis(), engine.stats().coordinating_sets,
          engine.stats().evaluations, engine.stats().db_queries};
}

Outcome RunBatched(const std::vector<std::string>& arrivals) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&SocialDb(), options);
  WallTimer timer;
  for (const std::string& text : arrivals) {
    auto id = engine.Submit(text);
    ENTANGLED_CHECK(id.ok()) << id.status();
  }
  engine.Flush();
  return {timer.ElapsedMillis(), engine.stats().coordinating_sets,
          engine.stats().evaluations, engine.stats().db_queries};
}

void PrintPaperSeries() {
  benchutil::PrintSeriesHeader(
      "Ablation A5: engine throughput, eager (per-arrival) vs batched "
      "(single flush) evaluation",
      {"num_pairs", "eager_ms", "batched_ms", "eager_qps",
       "batched_qps"});
  RunEager(MakePairStream(2));  // warm-up: social-table index build
  for (int pairs : {10, 25, 50, 100}) {
    std::vector<std::string> arrivals = MakePairStream(pairs);
    Outcome eager = RunEager(arrivals);
    Outcome batched = RunBatched(arrivals);
    ENTANGLED_CHECK_EQ(eager.sets, static_cast<uint64_t>(pairs));
    ENTANGLED_CHECK_EQ(batched.sets, static_cast<uint64_t>(pairs));
    const double n = 2.0 * pairs;
    benchutil::PrintRow({static_cast<double>(pairs), eager.ms, batched.ms,
                         n / (eager.ms / 1e3), n / (batched.ms / 1e3)});
    // Machine-readable record for perf-trajectory tracking: ops/sec
    // plus the paper's hardware-independent cost (db round-trips).
    benchutil::PrintJsonRecord(
        "engine_eager",
        {{"num_pairs", static_cast<double>(pairs)},
         {"ms", eager.ms},
         {"qps", n / (eager.ms / 1e3)},
         {"evaluations", static_cast<double>(eager.evaluations)},
         {"db_queries", static_cast<double>(eager.db_queries)}});
    benchutil::PrintJsonRecord(
        "engine_batched",
        {{"num_pairs", static_cast<double>(pairs)},
         {"ms", batched.ms},
         {"qps", n / (batched.ms / 1e3)},
         {"evaluations", static_cast<double>(batched.evaluations)},
         {"db_queries", static_cast<double>(batched.db_queries)}});
  }
  benchutil::PrintNote(
      "both modes deliver every pair; eager retires pairs on arrival and "
      "keeps the pending set tiny, while a single flush re-walks the full "
      "pending set per component - for independent pairs, eager wins");
}

void BM_EngineEager(benchmark::State& state) {
  std::vector<std::string> arrivals =
      MakePairStream(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunEager(arrivals).sets);
  }
}
BENCHMARK(BM_EngineEager)->Arg(25);

void BM_EngineBatched(benchmark::State& state) {
  std::vector<std::string> arrivals =
      MakePairStream(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBatched(arrivals).sets);
  }
}
BENCHMARK(BM_EngineBatched)->Arg(25);

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
