#include "algo/single_connected.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/validator.h"
#include "workload/entangled_workloads.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class SingleConnectedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }
  Database db_;
};

TEST_F(SingleConnectedTest, SolvesChain) {
  QuerySet set;
  MakeListWorkload(5, "Users", &set);
  SingleConnectedSolver solver(&db_);
  auto result = solver.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());
}

TEST_F(SingleConnectedTest, SolvesUnsafeFanoutTree) {
  // One postcondition, two alternative heads, branches never
  // reconverge: the defining shape of Qsc (unsafe yet tractable).
  QuerySet set;
  auto ids = ParseQueries(
      "root:  { R(f) } H(x)  :- Users(x, 'user0').\n"
      "leaf1: { }      R(ya) :- Users(ya, 'ghost').\n"
      "leaf2: { }      R(yb) :- Users(yb, 'user2').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  SingleConnectedSolver solver(&db_);
  auto result = solver.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());
  // Linear database work on tree instances (Theorem 3's promise): at
  // most one grounding attempt per alternative plus one per seed.
  EXPECT_LE(solver.stats().db_queries, 2u * set.size());
}

TEST_F(SingleConnectedTest, RejectsTwoPostconditions) {
  QuerySet set;
  auto ids = ParseQueries(
      "a: { R(x), S(x) } H(x) :- Users(x, 'user0').\n"
      "b: { } R(y) :- Users(y, 'user1').\n"
      "c: { } S(z) :- Users(z, 'user1').",
      &set);
  ASSERT_TRUE(ids.ok());
  SingleConnectedSolver solver(&db_);
  EXPECT_TRUE(solver.Solve(set).status().IsFailedPrecondition());
}

TEST_F(SingleConnectedTest, RejectsDiamond) {
  QuerySet set;
  auto ids = ParseQueries(
      "q0: { Mid(a) } Top(a) :- Users(a, 'user0').\n"
      "q1: { Bot(w1) } Mid(v1) :- Users(v1, 'user1').\n"
      "q2: { Bot(w2) } Mid(v2) :- Users(v2, 'user2').\n"
      "q3: { } Bot(z) :- Users(z, 'user3').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  SingleConnectedSolver solver(&db_);
  EXPECT_TRUE(solver.Solve(set).status().IsFailedPrecondition());
}

TEST_F(SingleConnectedTest, NotFoundPropagates) {
  QuerySet set;
  auto ids = ParseQueries(
      "a: { Missing(x) } R(A, x) :- Users(x, 'user1').", &set);
  ASSERT_TRUE(ids.ok());
  SingleConnectedSolver solver(&db_);
  EXPECT_TRUE(solver.Solve(set).status().IsNotFound());
}

TEST_F(SingleConnectedTest, EmptySetIsNotFound) {
  QuerySet set;
  SingleConnectedSolver solver(&db_);
  EXPECT_TRUE(solver.Solve(set).status().IsNotFound());
}

}  // namespace
}  // namespace entangled
