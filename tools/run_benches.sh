#!/usr/bin/env bash
# Runs every BENCH_JSON-emitting bench and persists its records as
# BENCH_<name>.json at the repo root — one JSON object per line,
# greppable and diffable, so the perf trajectory survives across PRs
# (CI uploads the same files as an artifact).
#
# Usage: tools/run_benches.sh [build_dir]   (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

# Benches that emit BENCH_JSON records (bench_util.h PrintJsonRecord).
benches=(
  bench_eval_hotpath
  bench_incremental_stream
  bench_engine
  bench_scenarios
  bench_sharded_stream
  bench_flush_pipeline
  bench_delta_eval
  bench_session_quota
  bench_shard_merge
  bench_wal
)

status=0
for bench in "${benches[@]}"; do
  binary="$build_dir/$bench"
  if [[ ! -x "$binary" ]]; then
    echo "SKIP $bench: $binary not built" >&2
    status=1
    continue
  fi
  out="$repo_root/BENCH_${bench#bench_}.json"
  echo "== $bench -> ${out#$repo_root/}"
  # Keep the human-readable output on stderr for the CI log; the
  # BENCH_JSON payloads (tag stripped) land in the committed file.
  # Stage through a temp file so a failing bench (an internal CHECK
  # gate, say) or one that emits no records never truncates the
  # committed baseline, and the remaining benches still run.
  tmp="$(mktemp)"
  if ! "$binary" | tee /dev/stderr | { grep '^BENCH_JSON ' || true; } \
      | sed 's/^BENCH_JSON //' > "$tmp"; then
    echo "FAIL $bench: bench exited non-zero; $out left untouched" >&2
    rm -f "$tmp"
    status=1
    continue
  fi
  if [[ ! -s "$tmp" ]]; then
    echo "FAIL $bench: no BENCH_JSON records emitted; $out left untouched" >&2
    rm -f "$tmp"
    status=1
    continue
  fi
  mv "$tmp" "$out"
done

# ---------------------------------------------------------------------------
# Metrics-snapshot JSON: validate the schema the README documents and
# check that two identical runs agree on every field except wall-clock
# timings (keys ending `_ns`, histogram `buckets`).
# ---------------------------------------------------------------------------
cli="$build_dir/entangled_cli"
if [[ ! -x "$cli" ]]; then
  echo "SKIP metrics validation: $cli not built" >&2
  status=1
else
  echo "== entangled_cli metrics: schema + stability"
  snap_a="$(mktemp)"
  snap_b="$(mktemp)"
  if "$cli" metrics --seed 7 --num-queries 64 --sessions 3 \
        --max-pending 4 > "$snap_a" \
     && "$cli" metrics --seed 7 --num-queries 64 --sessions 3 \
        --max-pending 4 > "$snap_b" \
     && python3 - "$snap_a" "$snap_b" <<'PY'
import json, sys

def load(path):
    with open(path) as f:
        return json.load(f)

a, b = load(sys.argv[1]), load(sys.argv[2])

# --- schema: the shape the README documents ---
for doc in (a, b):
    assert set(doc) == {"counters", "gauges", "latency"}, sorted(doc)
    counters = doc["counters"]
    for key in ("engine.submitted", "engine.rejected", "sessions.open",
                "reject.quota_pending", "reject.overloaded",
                "shed.transitions", "shed.active"):
        assert key in counters, f"missing counter {key}"
        assert isinstance(counters[key], int), key
    gauges = doc["gauges"]
    for key in ("pending", "intake_depth", "live_shards", "group_merges",
                "queries_migrated", "queries_retained", "merge_events",
                "merge_migrated_max", "shards"):
        assert key in gauges, f"missing gauge {key}"
    for row in gauges["shards"]:
        assert set(row) == {"slot", "pending", "evaluations"}, row
    latency = doc["latency"]
    for name in ("submit", "submit_batch", "cancel", "flush",
                 "poll_events", "eval"):
        assert name in latency, f"missing histogram {name}"
        hist = latency[name]
        assert set(hist) == {"count", "total_ns", "max_ns", "p50_ns",
                             "p99_ns", "buckets"}, sorted(hist)
        assert sum(n for _, n in hist["buckets"]) == hist["count"], name

# --- stability: drop timing-only fields, require exact equality ---
def strip(node):
    if isinstance(node, dict):
        return {k: strip(v) for k, v in node.items()
                if not k.endswith("_ns") and k != "buckets"}
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node

sa, sb = strip(a), strip(b)
assert sa == sb, "metrics snapshot is not stable across identical runs"
# The quota-armed profile must actually exercise the reject counters.
assert a["counters"]["reject.quota_pending"] > 0, "no quota bounces"
print("metrics snapshot: schema OK, stable across runs")
PY
  then
    :
  else
    echo "FAIL entangled_cli metrics: schema/stability check failed" >&2
    status=1
  fi
  rm -f "$snap_a" "$snap_b"
fi

# ---------------------------------------------------------------------------
# Durability counters: a --record run must surface the wal.*/snapshot.*
# counters in the metrics snapshot, and replaying the recorded
# directory must surface non-zero recovery.* counters.
# ---------------------------------------------------------------------------
if [[ -x "$cli" ]]; then
  echo "== entangled_cli --record/replay: durability counter schema"
  rec_root="$(mktemp -d)"
  snap_rec="$(mktemp)"
  snap_replay="$(mktemp)"
  if "$cli" metrics --seed 7 --num-queries 64 --sessions 3 \
        --record "$rec_root/wal" > "$snap_rec" \
     && "$cli" replay "$rec_root/wal" --quiet > "$snap_replay" \
     && python3 - "$snap_rec" "$snap_replay" <<'PY'
import json, sys

def load(path):
    with open(path) as f:
        return json.load(f)

recorded, replayed = load(sys.argv[1]), load(sys.argv[2])
keys = ("wal.appended_records", "wal.bytes", "wal.fsyncs",
        "snapshot.count", "recovery.replayed_events",
        "recovery.truncated_bytes")
for doc, label in ((recorded, "recorded"), (replayed, "replayed")):
    counters = doc["counters"]
    for key in keys:
        assert key in counters, f"{label}: missing counter {key}"
        assert isinstance(counters[key], int), f"{label}: {key}"
rc = recorded["counters"]
assert rc["wal.appended_records"] > 0, "recording logged nothing"
assert rc["wal.bytes"] > rc["wal.appended_records"], "framing overhead?"
assert rc["snapshot.count"] >= 1, "no genesis snapshot"
assert rc["recovery.replayed_events"] == 0, "fresh recording replayed?"
pc = replayed["counters"]
assert pc["recovery.replayed_events"] == rc["wal.appended_records"], (
    "replay re-applied %d of %d recorded events"
    % (pc["recovery.replayed_events"], rc["wal.appended_records"]))
print("durability counters: schema OK, replay re-applied "
      f'{pc["recovery.replayed_events"]} events')
PY
  then
    :
  else
    echo "FAIL entangled_cli --record/replay: durability counters" >&2
    status=1
  fi
  rm -rf "$rec_root"
  rm -f "$snap_rec" "$snap_replay"
fi
exit "$status"
