// Figure 8 — "Processing Time as a Function of Number of Queries"
// (§6.2).
//
// The more realistic §6.2 configuration: the Flights table is fixed at
// 100 tuples (each a distinct destination/day combination), friendships
// are complete, every tuple satisfies every query, and the number of
// queries sweeps 10..100.  The paper reports time linear in the number
// of queries.

#include <benchmark/benchmark.h>

#include <memory>

#include "algo/consistent.h"
#include "bench_util.h"
#include "common/logging.h"
#include "workload/consistent_workloads.h"

namespace entangled {
namespace {

constexpr size_t kTableRows = 100;

std::unique_ptr<Database> MakeDb(size_t num_queries) {
  auto db = std::make_unique<Database>();
  ENTANGLED_CHECK(
      InstallDistinctFlightsTable(db.get(), "Flights", kTableRows).ok());
  ENTANGLED_CHECK(InstallCompleteFriends(db.get(), "Friends",
                                         MakeUserNames(num_queries))
                      .ok());
  return db;
}

SolverStats RunOnce(const Database& db, size_t num_queries) {
  ConsistentCoordinator coordinator(&db,
                                    MakeFlightSchema("Flights", "Friends"));
  auto result =
      coordinator.Solve(MakeWorstCaseConsistentQueries(num_queries, 4));
  ENTANGLED_CHECK(result.ok()) << result.status();
  ENTANGLED_CHECK_EQ(result->size(), num_queries);
  return coordinator.stats();
}

void PrintPaperSeries() {
  benchutil::PrintSeriesHeader(
      "Figure 8: consistent algorithm processing time vs number of "
      "queries (100-tuple Flights table, complete friendships)",
      {"num_queries", "time_ms", "db_queries", "cleaning_rounds"});
  for (size_t n = 10; n <= 100; n += 10) {
    std::unique_ptr<Database> db = MakeDb(n);
    SolverStats stats;
    double ms = benchutil::MeanMillis(3, [&] { stats = RunOnce(*db, n); });
    benchutil::PrintRow({static_cast<double>(n), ms,
                         static_cast<double>(stats.db_queries),
                         static_cast<double>(stats.cleaning_rounds)});
  }
  benchutil::PrintNote("expected shape: linear in the number of queries");
}

void BM_ConsistentQueries(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::unique_ptr<Database> db = MakeDb(n);
  for (auto _ : state) {
    RunOnce(*db, n);
  }
}
BENCHMARK(BM_ConsistentQueries)->Arg(10)->Arg(55)->Arg(100);

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
