// Directed coverage for the sharded front door
// (system/sharded_engine.h): byte-identical behaviour against a single
// CoordinationEngine over the same stream (deliveries, witnesses,
// pending sets, order), stats aggregation across migrations and GC,
// per-arrival cadence, and the callback-reentrancy contract with
// entry-point-named failures.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/query.h"
#include "db/binding.h"
#include "system/engine.h"
#include "system/sharded_engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

/// One recorded delivery, in global ids.
struct LoggedDelivery {
  std::vector<QueryId> queries;
  Binding assignment;
};

class ShardedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 32).ok());
  }

  /// Mutually entangled pair through answer relation `rel`: both
  /// deliver as soon as the second one arrives.
  static std::vector<std::string> Pair(const std::string& rel) {
    return {
        "a_" + rel + ": { " + rel + "(Bob, x) } " + rel +
            "(Alice, x) :- Users(x, 'user3').",
        "b_" + rel + ": { " + rel + "(Alice, y) } " + rel +
            "(Bob, y) :- Users(y, 'user3').",
    };
  }

  /// A pending query that never coordinates (its post is unanswered).
  static std::string Stuck(const std::string& rel, const std::string& tag) {
    return "s_" + rel + ": { " + rel + "(Never" + tag + ", x) } " + rel +
           "(" + tag + ", x) :- Users(x, 'user7').";
  }

  Database db_;
};

/// Replays the same hand-written stream — pairs in disjoint relations,
/// a stuck query, cancels, a k-way bridge forcing migration, explicit
/// flushes — on the single engine and on sharded variants, asserting
/// byte-identical logs, witnesses, and pending sets.
TEST_F(ShardedEngineTest, MatchesSingleEngineByteForByte) {
  auto drive = [&](CoordinationService* engine,
                   std::vector<LoggedDelivery>* log) {
    engine->set_delivery_callback([log](const Delivery& delivery) {
      log->push_back(LoggedDelivery{delivery.QueryIds(), delivery.witness});
    });
    // Disjoint pairs under eager evaluation.
    for (const std::string& text : Pair("P")) {
      ASSERT_TRUE(engine->Submit(text).ok());
    }
    ASSERT_TRUE(engine->Submit(Stuck("S", "T0")).ok());
    // A backlog admitted without evaluation, then flushed at once.
    engine->set_evaluate_every(0);
    for (const std::string& text : Pair("Q")) {
      ASSERT_TRUE(engine->Submit(text).ok());
    }
    ASSERT_TRUE(engine->Submit(Stuck("R", "T1")).ok());
    engine->Flush();
    // A bridge spanning S and R migrates both stuck queries into one
    // shard (on the sharded engine) without disturbing ids.
    ASSERT_TRUE(engine
                    ->Submit("br: { S(NeverT0, x), R(NeverT1, x) } "
                             "B(Tb, x) :- Users(x, 'user7').")
                    .ok());
    engine->set_evaluate_every(1);
    // A batch holding one more coordinating pair.
    ASSERT_TRUE(engine->SubmitBatch(Pair("V")).ok());
    engine->Cancel(engine->PendingQueries().front());
    engine->Flush();
  };

  CoordinationEngine single(&db_);
  std::vector<LoggedDelivery> single_log;
  drive(&single, &single_log);

  for (size_t shard_threads : {size_t{1}, size_t{4}}) {
    ShardedEngineOptions options;
    options.shard_threads = shard_threads;
    ShardedCoordinationEngine sharded(&db_, options);
    std::vector<LoggedDelivery> sharded_log;
    drive(&sharded, &sharded_log);

    ASSERT_EQ(single_log.size(), sharded_log.size())
        << "shard_threads=" << shard_threads;
    for (size_t i = 0; i < single_log.size(); ++i) {
      EXPECT_EQ(single_log[i].queries, sharded_log[i].queries)
          << "delivery " << i << " at shard_threads=" << shard_threads;
      EXPECT_EQ(single_log[i].assignment, sharded_log[i].assignment)
          << "witness " << i << " at shard_threads=" << shard_threads;
    }
    EXPECT_EQ(single.PendingQueries(), sharded.PendingQueries());
    EXPECT_EQ(single.num_pending(), sharded.num_pending());

    const EngineStats s = single.StatsSnapshot();
    const EngineStats v = sharded.StatsSnapshot();
    EXPECT_EQ(s.submitted, v.submitted);
    EXPECT_EQ(s.cancelled, v.cancelled);
    EXPECT_EQ(s.coordinating_sets, v.coordinating_sets);
    EXPECT_EQ(s.coordinated_queries, v.coordinated_queries);
  }
}

TEST_F(ShardedEngineTest, StatsAggregateAcrossMigrationAndGc) {
  ShardedCoordinationEngine engine(&db_);
  // Two deliveries in separate shards (each GCs its shard), then a
  // migration-inducing bridge between two stuck queries.
  for (const std::string& text : Pair("P")) {
    ASSERT_TRUE(engine.Submit(text).ok());
  }
  for (const std::string& text : Pair("Q")) {
    ASSERT_TRUE(engine.Submit(text).ok());
  }
  ASSERT_TRUE(engine.Submit(Stuck("S", "T0")).ok());
  ASSERT_TRUE(engine.Submit(Stuck("R", "T1")).ok());
  ASSERT_TRUE(engine
                  .Submit("br: { S(NeverT0, x), R(NeverT1, x) } "
                          "B(Tb, x) :- Users(x, 'user7').")
                  .ok());

  const EngineStats stats = engine.StatsSnapshot();
  EXPECT_EQ(stats.submitted, 7u);
  EXPECT_EQ(stats.coordinating_sets, 2u);
  EXPECT_EQ(stats.coordinated_queries, 4u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_GE(stats.evaluations, 2u);  // includes retired shards' counters

  const ShardedStats& sharded = engine.sharded_stats();
  EXPECT_EQ(sharded.shards_gced, 2u);       // each delivered pair drained one
  EXPECT_EQ(sharded.group_merges, 1u);      // the bridge
  // Small-into-large: one stuck query moved into the other's shard, the
  // survivor's stayed put.
  EXPECT_EQ(sharded.queries_migrated, 1u);
  EXPECT_EQ(sharded.queries_retained, 1u);
  EXPECT_EQ(sharded.merge_events, 1u);
  EXPECT_EQ(sharded.merge_migrated_max, 1u);
  EXPECT_EQ(engine.num_pending(), 3u);
  EXPECT_EQ(engine.num_live_shards(), 1u);

  // The observability counters survive the same churn.  The evaluation
  // histogram aggregates one sample per evaluation — including those
  // run by the two shards GC has since dissolved — and front-door parse
  // failures land in `rejected` without disturbing anything else.
  EXPECT_EQ(stats.eval_latency.count(), stats.evaluations);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_FALSE(engine.Submit("not a query").ok());
  EXPECT_FALSE(engine.SubmitBatch({Stuck("S", "T2"), "also bad"}).ok());
  const EngineStats after = engine.StatsSnapshot();
  EXPECT_EQ(after.rejected, 2u);
  EXPECT_EQ(after.submitted, stats.submitted);  // nothing half-admitted
  EXPECT_EQ(after.evaluations, stats.evaluations);
  EXPECT_EQ(after.eval_latency.count(), stats.eval_latency.count());

  // The gauges view agrees with the aggregate: one live (merged) shard
  // holding every survivor, and the merge/migration history.
  const ServiceGauges gauges = engine.GaugesSnapshot();
  EXPECT_EQ(gauges.live_shards, 1u);
  ASSERT_EQ(gauges.shards.size(), 1u);
  EXPECT_EQ(gauges.shards[0].pending, 3u);
  EXPECT_EQ(gauges.pending, 3u);
  EXPECT_EQ(gauges.intake_depth, 0u);
  EXPECT_EQ(gauges.group_merges, 1u);
  EXPECT_EQ(gauges.queries_migrated, 1u);
  EXPECT_EQ(gauges.queries_retained, 1u);
  EXPECT_EQ(gauges.merge_events, 1u);
  EXPECT_EQ(gauges.merge_migrated_max, 1u);
}

TEST(EngineStatsTest, MergeFoldsRejectionsAndEvalHistogram) {
  EngineStats a;
  a.rejected = 1;
  a.evaluations = 2;
  a.eval_latency.Record(10);
  a.eval_latency.Record(700);
  EngineStats b;
  b.rejected = 2;
  b.evaluations = 1;
  b.eval_latency.Record(20);

  a += b;
  EXPECT_EQ(a.rejected, 3u);
  EXPECT_EQ(a.evaluations, 3u);
  EXPECT_EQ(a.eval_latency.count(), 3u);
  EXPECT_EQ(a.eval_latency.total_ns(), 730u);
  EXPECT_EQ(a.eval_latency.max_ns(), 700u);
}

TEST_F(ShardedEngineTest, EvaluateEveryCadenceCountsAcrossShards) {
  ShardedEngineOptions options;
  options.engine.evaluate_every = 2;
  ShardedCoordinationEngine engine(&db_, options);
  size_t deliveries = 0;
  engine.set_delivery_callback(
      [&deliveries](const Delivery&) { ++deliveries; });
  std::vector<std::string> pair = Pair("P");
  // Arrival 1 (no evaluation yet), arrival 2 — the cadence fires on the
  // pair's second half even though the two arrivals share a shard and
  // an unrelated arrival pattern would have routed elsewhere; the count
  // is front-door-global exactly like a single engine's.
  ASSERT_TRUE(engine.Submit(pair[0]).ok());
  EXPECT_EQ(deliveries, 0u);
  ASSERT_TRUE(engine.Submit(pair[1]).ok());
  EXPECT_EQ(deliveries, 1u);

  // Now interleave across shards: stuck arrival in S (count 1), pair
  // half in Q (count 2 -> evaluates only the Q arrival's component).
  std::vector<std::string> q_pair = Pair("Q");
  ASSERT_TRUE(engine.Submit(Stuck("S", "T0")).ok());
  ASSERT_TRUE(engine.Submit(q_pair[0]).ok());
  EXPECT_EQ(deliveries, 1u);
  ASSERT_TRUE(engine.Submit(q_pair[1]).ok());
  EXPECT_EQ(deliveries, 1u);  // cadence at 1 of 2: not evaluated yet
  engine.Flush();
  EXPECT_EQ(deliveries, 2u);
}

using ShardedEngineDeathTest = ShardedEngineTest;

TEST_F(ShardedEngineDeathTest, ReentrantSubmitDiesNamingEntryPoint) {
  ShardedCoordinationEngine engine(&db_);
  engine.set_delivery_callback([&engine](const Delivery&) {
    (void)engine.Submit("late: { } K(v) :- Users(v, 'user1').");
  });
  std::vector<std::string> pair = Pair("P");
  ASSERT_TRUE(engine.Submit(pair[0]).ok());
  EXPECT_DEATH(engine.Submit(pair[1]),
               "Submit called from inside a delivery callback");
}

TEST_F(ShardedEngineDeathTest, ReentrantFlushDiesNamingEntryPoint) {
  ShardedCoordinationEngine engine(&db_);
  engine.set_delivery_callback(
      [&engine](const Delivery&) { engine.Flush(); });
  std::vector<std::string> pair = Pair("P");
  ASSERT_TRUE(engine.Submit(pair[0]).ok());
  EXPECT_DEATH(engine.Submit(pair[1]),
               "Flush called from inside a delivery callback");
}

}  // namespace
}  // namespace entangled
