#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitCoversInFlightTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    // No Wait(): destruction must still run everything queued.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SingleThreadPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, WaitReusableAfterIdle) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted: returns immediately
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  pool.Wait();  // count-based: already-drained batches stay drained
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, RunChunkedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t count : {1u, 7u, 64u, 1000u}) {
    for (size_t chunk : {1u, 8u, 1024u}) {
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) h.store(0);
      pool.RunChunked(count, chunk,
                      [&hits](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "count=" << count << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, RunChunkedWritesVisibleToCaller) {
  ThreadPool pool(4);
  std::vector<uint64_t> out(5000, 0);  // plain writes, distinct slots
  pool.RunChunked(out.size(), 16,
                  [&out](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, RunChunkedZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.RunChunked(0, 4, [](size_t) { FAIL() << "must not be invoked"; });
}

TEST(ThreadPoolTest, RunChunkedNestedInsideSubmittedTask) {
  // A worker running a coarse task (a shard flush) starts a chunked
  // run on the same pool; the caller participates, so this completes
  // even when every worker is busy with coarse tasks.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&pool, &total] {
      pool.RunChunked(100, 8, [&total](size_t) { total.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPoolTest, RunChunkedInterleavesWithSubmit) {
  ThreadPool pool(3);
  std::atomic<int> submitted{0};
  std::atomic<int> chunked{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&submitted] { ++submitted; });
  }
  pool.RunChunked(500, 4, [&chunked](size_t) { ++chunked; });
  pool.Wait();
  EXPECT_EQ(submitted.load(), 50);
  EXPECT_EQ(chunked.load(), 500);
}

}  // namespace
}  // namespace entangled
