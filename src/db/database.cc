#include "db/database.h"

namespace entangled {

Result<Relation*> Database::CreateRelation(
    const std::string& name, std::vector<std::string> column_names) {
  if (Contains(name)) {
    return Status::AlreadyExists("relation ", name, " already exists");
  }
  if (column_names.empty()) {
    return Status::InvalidArgument("relation ", name, " needs columns");
  }
  auto relation = std::make_unique<Relation>(name, std::move(column_names));
  Relation* ptr = relation.get();
  ptr->BindDatabaseVersion(&version_);
  relations_.emplace(name, std::move(relation));
  names_.push_back(name);
  version_.fetch_add(1, std::memory_order_relaxed);
  return ptr;
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Relation* Database::FindMutable(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Result<const Relation*> Database::Get(const std::string& name) const {
  const Relation* relation = Find(name);
  if (relation == nullptr) {
    return Status::NotFound("no relation named ", name);
  }
  return relation;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, relation] : relations_) total += relation->size();
  return total;
}

}  // namespace entangled
