// Snapshot round-trips, fact capture/rebuild, directory listing, and
// the atomic-rename crash simulation (storage/snapshot.h).

#include "storage/snapshot.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/value.h"

namespace entangled {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/entangled_snap_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made;
  }
  ~TempDir() {
    DIR* dir = opendir(path_.c_str());
    if (dir != nullptr) {
      while (dirent* entry = readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SnapshotState SampleState() {
  SnapshotState state;
  state.epoch = 4;
  state.next_durable_id = 11;
  state.next_durable_var = 23;
  state.next_sequence = 6;
  state.evaluate_every = 2;
  state.cadence_phase = 1;
  state.total_events = 19;
  SnapshotRelation fact;
  fact.name = "fact";
  fact.columns = {"who", "score"};
  fact.rows = {{Value::Str("ada"), Value::Int(3)},
               {Value::Str("max"), Value::Int(-7)}};
  state.relations.push_back(fact);
  SnapshotRelation empty;
  empty.name = "unused";
  empty.columns = {"x"};
  state.relations.push_back(empty);
  SnapshotPendingQuery pending;
  pending.id = 9;
  pending.session = 1;
  pending.var_start = 17;
  pending.var_count = 2;
  pending.text = "q9: answers(X) :- fact(X, Y)";
  state.pending.push_back(pending);
  return state;
}

void ExpectStatesEqual(const SnapshotState& a, const SnapshotState& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.next_durable_id, b.next_durable_id);
  EXPECT_EQ(a.next_durable_var, b.next_durable_var);
  EXPECT_EQ(a.next_sequence, b.next_sequence);
  EXPECT_EQ(a.evaluate_every, b.evaluate_every);
  EXPECT_EQ(a.cadence_phase, b.cadence_phase);
  EXPECT_EQ(a.total_events, b.total_events);
  ASSERT_EQ(a.relations.size(), b.relations.size());
  for (size_t i = 0; i < a.relations.size(); ++i) {
    EXPECT_EQ(a.relations[i].name, b.relations[i].name);
    EXPECT_EQ(a.relations[i].columns, b.relations[i].columns);
    ASSERT_EQ(a.relations[i].rows.size(), b.relations[i].rows.size());
    for (size_t r = 0; r < a.relations[i].rows.size(); ++r) {
      EXPECT_EQ(a.relations[i].rows[r], b.relations[i].rows[r]);
    }
  }
  ASSERT_EQ(a.pending.size(), b.pending.size());
  for (size_t i = 0; i < a.pending.size(); ++i) {
    EXPECT_EQ(a.pending[i].id, b.pending[i].id);
    EXPECT_EQ(a.pending[i].session, b.pending[i].session);
    EXPECT_EQ(a.pending[i].var_start, b.pending[i].var_start);
    EXPECT_EQ(a.pending[i].var_count, b.pending[i].var_count);
    EXPECT_EQ(a.pending[i].text, b.pending[i].text);
  }
}

TEST(SnapshotTest, RoundTrips) {
  TempDir dir;
  const SnapshotState state = SampleState();
  ASSERT_TRUE(WriteSnapshot(state, dir.path()).ok());
  auto loaded = LoadSnapshot(SnapshotPath(dir.path(), state.epoch));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectStatesEqual(state, *loaded);
}

TEST(SnapshotTest, FactCaptureAndRebuildRoundTrip) {
  Database db;
  auto rel = db.CreateRelation("edge", {"src", "dst"});
  ASSERT_TRUE(rel.ok());
  (*rel)->Insert({Value::Str("a"), Value::Str("b")});
  (*rel)->Insert({Value::Str("b"), Value::Str("c")});
  auto scores = db.CreateRelation("score", {"who", "n"});
  ASSERT_TRUE(scores.ok());
  (*scores)->Insert({Value::Str("a"), Value::Int(12)});

  SnapshotState state;
  CaptureDatabaseFacts(db, &state);
  ASSERT_EQ(state.relations.size(), 2u);

  Database rebuilt;
  ASSERT_TRUE(BuildDatabaseFromSnapshot(state, &rebuilt).ok());
  EXPECT_EQ(rebuilt.relation_count(), db.relation_count());
  SnapshotState recaptured;
  CaptureDatabaseFacts(rebuilt, &recaptured);
  ASSERT_EQ(recaptured.relations.size(), state.relations.size());
  for (size_t i = 0; i < state.relations.size(); ++i) {
    EXPECT_EQ(recaptured.relations[i].name, state.relations[i].name);
    EXPECT_EQ(recaptured.relations[i].columns, state.relations[i].columns);
    ASSERT_EQ(recaptured.relations[i].rows.size(),
              state.relations[i].rows.size());
    for (size_t r = 0; r < state.relations[i].rows.size(); ++r) {
      EXPECT_EQ(recaptured.relations[i].rows[r], state.relations[i].rows[r]);
    }
  }
}

TEST(SnapshotTest, UncommittedTempIsInvisibleToRecovery) {
  TempDir dir;
  SnapshotState genesis = SampleState();
  genesis.epoch = 0;
  ASSERT_TRUE(WriteSnapshot(genesis, dir.path()).ok());

  // Crash simulation: the next snapshot is fully written to its temp
  // path but the process dies before the rename.  Recovery must list
  // only the committed epoch — the temp file is ignorable garbage.
  SnapshotState next = SampleState();
  next.epoch = 1;
  auto temp = WriteSnapshotToTemp(next, dir.path());
  ASSERT_TRUE(temp.ok()) << temp.status().ToString();
  auto listing = ListStorageDir(dir.path());
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->snapshot_epochs, std::vector<uint64_t>{0});

  // The rename commits it; both epochs are visible and epoch 1 loads
  // byte-identically to what the temp held.
  ASSERT_TRUE(CommitSnapshot(*temp, SnapshotPath(dir.path(), 1)).ok());
  listing = ListStorageDir(dir.path());
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->snapshot_epochs, (std::vector<uint64_t>{0, 1}));
  auto loaded = LoadSnapshot(SnapshotPath(dir.path(), 1));
  ASSERT_TRUE(loaded.ok());
  ExpectStatesEqual(next, *loaded);
}

TEST(SnapshotTest, BitFlipFailsTheLoadWithATypedError) {
  TempDir dir;
  const SnapshotState state = SampleState();
  ASSERT_TRUE(WriteSnapshot(state, dir.path()).ok());
  const std::string path = SnapshotPath(dir.path(), state.epoch);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(40);  // somewhere inside the payload
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(40);
    f.write(&byte, 1);
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_FALSE(loaded.status().message().empty());
}

TEST(SnapshotTest, ListingIgnoresForeignFiles) {
  TempDir dir;
  SnapshotState state = SampleState();
  state.epoch = 2;
  ASSERT_TRUE(WriteSnapshot(state, dir.path()).ok());
  {
    std::ofstream junk(dir.path() + "/README.txt");
    junk << "not storage\n";
    std::ofstream tmp(dir.path() + "/snapshot-0000000009.snap.tmp");
    tmp << "torn temp\n";
  }
  auto listing = ListStorageDir(dir.path());
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->snapshot_epochs, std::vector<uint64_t>{2});
  EXPECT_TRUE(listing->wal_epochs.empty());
}

}  // namespace
}  // namespace entangled
