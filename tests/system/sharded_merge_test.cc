// Directed coverage for the small-into-large shard-merge path
// (system/sharded_engine.h): differential k-way merges over streams
// whose global ids interleave across shards — held byte-identical to a
// single CoordinationEngine AND to the rebuild-merge baseline
// (ShardedEngineOptions::rebuild_merges) — plus memoized component
// state surviving a merge in the surviving shard (eval_cache_hits),
// and bridge-then-cancel churn that recycles freed shard slots.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/binding.h"
#include "system/engine.h"
#include "system/sharded_engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

/// One recorded delivery, in global ids.
struct LoggedDelivery {
  std::vector<QueryId> queries;
  Binding assignment;
};

class ShardedMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 32).ok());
  }

  /// Mutually entangled pair through answer relation `rel`: both
  /// deliver as soon as the second one arrives.
  static std::vector<std::string> Pair(const std::string& rel) {
    return {
        "a_" + rel + ": { " + rel + "(Bob, x) } " + rel +
            "(Alice, x) :- Users(x, 'user3').",
        "b_" + rel + ": { " + rel + "(Alice, y) } " + rel +
            "(Bob, y) :- Users(y, 'user3').",
    };
  }

  /// A pending query that never coordinates (its post is unanswered).
  static std::string Stuck(const std::string& rel, const std::string& tag) {
    return "s_" + rel + tag + ": { " + rel + "(Never" + tag + ", x) } " +
           rel + "(" + tag + ", x) :- Users(x, 'user7').";
  }

  /// A pending query that joins `rel`'s tag component: its post unifies
  /// with the Stuck(rel, tag) head, so it extends that component
  /// without resolving it (Stuck's own post stays unanswered).
  static std::string Joiner(const std::string& rel, const std::string& tag) {
    return "j_" + rel + tag + ": { " + rel + "(" + tag + ", x) } " + rel +
           "(J" + tag + ", x) :- Users(x, 'user7').";
  }

  /// A memo-recording pending query: no postconditions (so it survives
  /// postcondition pre-cleaning and the SCC sweep reaches it — a Stuck
  /// query's dead post would prune it before any memo entry is written)
  /// and an ungroundable body, so each evaluation records a replayable
  /// failed-grounding verdict in the component's EvalMemo.
  static std::string Sink(const std::string& rel, const std::string& tag) {
    return "k_" + rel + tag + ": { } " + rel + "(" + tag +
           ", y) :- Users(y, 'nouser'), Users(y2, 'user1').";
  }

  Database db_;
};

/// The differential: a stream whose arrivals interleave across three
/// relation groups (so every shard's local ids map to *non-contiguous*
/// global ids), then a k-way bridge merging all three shards at once,
/// then more interleaved traffic, joins into merged components,
/// cancels, and coordinating pairs.  The single engine, the
/// small-into-large sharded engine (both pool widths), and the
/// rebuild-merge baseline must agree byte for byte.
TEST_F(ShardedMergeTest, KWayMergeWithInterleavedIdsMatchesSingleEngine) {
  auto drive = [&](CoordinationService* engine,
                   std::vector<LoggedDelivery>* log) {
    engine->set_delivery_callback([log](const Delivery& delivery) {
      log->push_back(LoggedDelivery{delivery.QueryIds(), delivery.witness});
    });
    engine->set_evaluate_every(0);
    // Interleaved arrivals: shard S gets global ids {0,3,6,7}, shard R
    // {1,4}, shard W {2,5} — no shard's table is globally contiguous.
    ASSERT_TRUE(engine->Submit(Stuck("S", "T0")).ok());
    ASSERT_TRUE(engine->Submit(Stuck("R", "U0")).ok());
    ASSERT_TRUE(engine->Submit(Stuck("W", "V0")).ok());
    ASSERT_TRUE(engine->Submit(Stuck("S", "T1")).ok());
    ASSERT_TRUE(engine->Submit(Stuck("R", "U1")).ok());
    ASSERT_TRUE(engine->Submit(Stuck("W", "V1")).ok());
    ASSERT_TRUE(engine->Submit(Stuck("S", "T2")).ok());
    ASSERT_TRUE(engine->Submit(Stuck("S", "T3")).ok());
    engine->Flush();
    // The 4-way bridge: its footprint spans S, R, and W (plus its own
    // head relation B), uniting every live group in one arrival.  S is
    // the heavy side and must survive with R's and W's queries
    // migrating in — invisible in every output below.
    ASSERT_TRUE(engine
                    ->Submit("br: { S(NeverT0, x), R(NeverU0, x), "
                             "W(NeverV0, x) } B(Tb, x) :- "
                             "Users(x, 'user7').")
                    .ok());
    // A second bridge posting into *heads* (T3's and V1's): a real
    // coordination component spanning a native survivor query and a
    // migrated one, so the solver orders mixed-origin members by key.
    ASSERT_TRUE(engine
                    ->Submit("br2: { S(T3, x), W(V1, x) } C(Tc, x) :- "
                             "Users(x, 'user7').")
                    .ok());
    // Post-merge traffic: joins extending a migrated component (U1) and
    // an untouched survivor component (T2), landing interleaved with a
    // coordinating pair in a fresh relation.
    ASSERT_TRUE(engine->Submit(Joiner("R", "U1")).ok());
    ASSERT_TRUE(engine->Submit(Pair("P")[0]).ok());
    ASSERT_TRUE(engine->Submit(Joiner("S", "T2")).ok());
    ASSERT_TRUE(engine->Submit(Pair("P")[1]).ok());
    engine->Flush();
    // Cancels by pending rank: same rank -> same global id everywhere.
    ASSERT_TRUE(engine->Cancel(engine->PendingQueries().front()));
    engine->set_evaluate_every(1);
    ASSERT_TRUE(engine->SubmitBatch(Pair("V")).ok());
    engine->Flush();
  };

  CoordinationEngine single(&db_);
  std::vector<LoggedDelivery> single_log;
  drive(&single, &single_log);

  uint64_t migrated_small_into_large = 0;
  uint64_t migrated_rebuild = 0;
  for (bool rebuild : {false, true}) {
    for (size_t shard_threads : {size_t{1}, size_t{4}}) {
      ShardedEngineOptions options;
      options.shard_threads = shard_threads;
      options.rebuild_merges = rebuild;
      ShardedCoordinationEngine sharded(&db_, options);
      std::vector<LoggedDelivery> sharded_log;
      drive(&sharded, &sharded_log);

      const std::string which = std::string(rebuild ? "rebuild" : "migrate") +
                                "/threads=" + std::to_string(shard_threads);
      ASSERT_EQ(single_log.size(), sharded_log.size()) << which;
      for (size_t i = 0; i < single_log.size(); ++i) {
        EXPECT_EQ(single_log[i].queries, sharded_log[i].queries)
            << "delivery " << i << " at " << which;
        EXPECT_EQ(single_log[i].assignment, sharded_log[i].assignment)
            << "witness " << i << " at " << which;
      }
      EXPECT_EQ(single.PendingQueries(), sharded.PendingQueries()) << which;
      EXPECT_EQ(single.num_pending(), sharded.num_pending()) << which;
      // ComponentOf must report sorted global ids even though the
      // survivor's local order interleaves migrated and native queries.
      for (QueryId id : sharded.PendingQueries()) {
        std::vector<QueryId> component = sharded.ComponentOf(id);
        EXPECT_TRUE(std::is_sorted(component.begin(), component.end()))
            << which << " ComponentOf(" << id << ")";
        EXPECT_EQ(component, single.ComponentOf(id)) << which;
      }

      EXPECT_EQ(sharded.sharded_stats().merge_events, 1u) << which;
      if (shard_threads == 1) {
        (rebuild ? migrated_rebuild : migrated_small_into_large) =
            sharded.sharded_stats().queries_migrated;
      }
      if (rebuild) {
        // The baseline rebuilds the union: every query moves.
        EXPECT_EQ(sharded.sharded_stats().queries_retained, 0u) << which;
      } else {
        // Small-into-large: S's four queries stay put, R's and W's four
        // (2 + 2, including both bridged tags) migrate.
        EXPECT_EQ(sharded.sharded_stats().queries_retained, 4u) << which;
        EXPECT_EQ(sharded.sharded_stats().queries_migrated, 4u) << which;
        EXPECT_EQ(sharded.sharded_stats().merge_migrated_max, 4u) << which;
      }
    }
  }
  EXPECT_LT(migrated_small_into_large, migrated_rebuild);
}

/// Memo retention: the surviving shard's evaluated-component state
/// (EvalMemo sweep verdicts) must survive a merge, so post-merge
/// re-evaluation of an extended survivor component serves sweep steps
/// from the memo.  The rebuild baseline discards everything, so the
/// same stream records strictly fewer cache hits.
TEST_F(ShardedMergeTest, SurvivorKeepsMemoizedComponentStateAcrossMerge) {
  auto run = [&](bool rebuild) -> std::vector<uint64_t> {
    ShardedEngineOptions options;
    options.rebuild_merges = rebuild;
    ShardedCoordinationEngine engine(&db_, options);
    engine.set_evaluate_every(0);
    // A heavy S shard with four evaluated sink components (the flush
    // records each one's failed-grounding verdict in its memo), and a
    // light R shard.
    for (const char* tag : {"T0", "T1", "T2", "T3"}) {
      EXPECT_TRUE(engine.Submit(Sink("S", tag)).ok());
    }
    EXPECT_TRUE(engine.Submit(Sink("R", "U0")).ok());
    engine.Flush();
    const uint64_t hits_before = engine.StatsSnapshot().eval_cache_hits;
    // The bridge's footprint merges R's shard into S's (its posts name
    // tags no head answers, so no coordination edge forms and no
    // component is disturbed — the merge itself is the only event).
    // S's components keep their memos; R's U0 re-indexes from scratch
    // in the survivor (the O(smaller-side) cost).
    EXPECT_TRUE(engine
                    .Submit("br: { S(NeverT0, x), R(NeverU0, x) } "
                            "B(Tb, x) :- Users(x, 'user7').")
                    .ok());
    // Extend the survivor component T1 with a post into its head and
    // re-flush: the sweep of the grown component reaches R(sink)
    // first, and the survivor serves that step from the memo it
    // recorded before the merge.
    EXPECT_TRUE(engine.Submit(Joiner("S", "T1")).ok());
    engine.Flush();
    const uint64_t hits_after = engine.StatsSnapshot().eval_cache_hits;
    return {hits_before, hits_after};
  };

  const std::vector<uint64_t> migrate = run(/*rebuild=*/false);
  const std::vector<uint64_t> rebuild = run(/*rebuild=*/true);
  // Post-merge, the survivor serves sweep steps from memos it held
  // before the merge.
  EXPECT_GT(migrate[1], migrate[0]);
  // The rebuild baseline destroyed those memos, so the identical
  // stream finds strictly fewer hits.
  EXPECT_GT(migrate[1] - migrate[0], rebuild[1] - rebuild[0]);
}

/// Bridge-then-cancel churn: merges followed by cancels drain shards,
/// free their slots, and the next wave reuses them.  Stale locators
/// naming recycled slots must never leak into lookups, and the slot
/// table must stay bounded by the live width, not the churn count.
TEST_F(ShardedMergeTest, BridgeThenCancelChurnRecyclesSlots)  {
  ShardedCoordinationEngine engine(&db_);
  engine.set_evaluate_every(0);
  int64_t max_slot = 0;
  for (int round = 0; round < 6; ++round) {
    const std::string x = "X" + std::to_string(round);
    const std::string y = "Y" + std::to_string(round);
    ASSERT_TRUE(engine.Submit(Stuck(x, "T")).ok());
    ASSERT_TRUE(engine.Submit(Stuck(y, "U")).ok());
    ASSERT_EQ(engine.num_live_shards(), 2u);
    ASSERT_TRUE(engine
                    .Submit("br" + std::to_string(round) + ": { " + x +
                            "(NeverT, x), " + y + "(NeverU, x) } B" +
                            std::to_string(round) +
                            "(Tb, x) :- Users(x, 'user7').")
                    .ok());
    ASSERT_EQ(engine.num_live_shards(), 1u);
    for (const ShardGauge& row : engine.GaugesSnapshot().shards) {
      max_slot = std::max(max_slot, row.slot);
    }
    // Cancel everything; the merged shard drains and GCs, freeing its
    // slot for the next round.
    std::vector<QueryId> pending = engine.PendingQueries();
    for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
      ASSERT_TRUE(engine.Cancel(*it));
    }
    ASSERT_EQ(engine.num_live_shards(), 0u);
    ASSERT_EQ(engine.num_pending(), 0u);
  }
  const ShardedStats& stats = engine.sharded_stats();
  EXPECT_EQ(stats.merge_events, 6u);
  EXPECT_EQ(stats.queries_migrated, 6u);  // one light side per round
  EXPECT_EQ(stats.queries_retained, 6u);
  EXPECT_EQ(stats.merge_migrated_max, 1u);
  EXPECT_EQ(stats.shards_created, 12u);
  // Slot recycling: 12 shards ever created, but the table never grew
  // past the first round's width.
  EXPECT_LE(max_slot, 1);

  // Freed slots still work end to end: a coordinating pair lands in a
  // recycled slot and delivers.
  size_t deliveries = 0;
  engine.set_delivery_callback([&](const Delivery&) { ++deliveries; });
  engine.set_evaluate_every(1);
  for (const std::string& text : Pair("Z")) {
    ASSERT_TRUE(engine.Submit(text).ok());
  }
  EXPECT_EQ(deliveries, 1u);
  EXPECT_EQ(engine.num_pending(), 0u);
}

}  // namespace
}  // namespace entangled
