#include "reductions/cnf.h"

#include <sstream>

namespace entangled {

std::string CnfFormula::ToString() const {
  std::ostringstream out;
  for (size_t c = 0; c < clauses.size(); ++c) {
    if (c > 0) out << " & ";
    out << "(";
    for (size_t i = 0; i < clauses[c].size(); ++i) {
      if (i > 0) out << " | ";
      out << clauses[c][i].ToString();
    }
    out << ")";
  }
  return out.str();
}

bool CnfFormula::WellFormed() const {
  for (const Clause& clause : clauses) {
    if (clause.empty()) return false;
    for (const Literal& literal : clause) {
      if (literal.encoded == 0 || literal.var() > num_vars) return false;
    }
  }
  return true;
}

bool Satisfies(const CnfFormula& formula,
               const TruthAssignment& assignment) {
  if (assignment.size() < static_cast<size_t>(formula.num_vars) + 1) {
    return false;
  }
  for (const Clause& clause : formula.clauses) {
    bool satisfied = false;
    for (const Literal& literal : clause) {
      if (assignment[static_cast<size_t>(literal.var())] ==
          literal.positive()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

}  // namespace entangled
