// The §2.2 flight–hotel scenario (Figure 1) solved with the SCC
// Coordination Algorithm (§4): Coldplay's Chris, Guy, Jonny and Will
// try to book a joint vacation.  The set is safe but NOT unique, so the
// original Gupta et al. algorithm cannot evaluate it — the SCC
// algorithm coordinates {qC, qG} on Paris and correctly reports that
// Jonny's and Will's requirements cannot be met.
//
// Build & run:  ./build/examples/flight_hotel

#include <iostream>

#include "algo/scc_coordination.h"
#include "core/coordination_graph.h"
#include "core/properties.h"
#include "core/validator.h"
#include "workload/scenarios.h"

using namespace entangled;

int main() {
  Database db;
  QuerySet queries;
  FlightHotelIds ids = BuildFlightHotelScenario(&db, &queries);

  std::cout << "== The flight-hotel coordination example (paper §2.2) ==\n\n"
            << queries.ToString() << "\n";

  ExtendedCoordinationGraph ecg(queries);
  std::cout << "Extended coordination graph (Figure 2):\n"
            << ecg.ToString(queries) << "\n\n";
  std::cout << "safe set?   " << (IsSafeSet(queries) ? "yes" : "no") << "\n";
  std::cout << "unique set? " << (IsUniqueSet(queries) ? "yes" : "no")
            << "  (qW is reachable from nobody, so Gupta et al. cannot "
               "run)\n\n";

  SccCoordinator coordinator(&db);
  auto solution = coordinator.Solve(queries);
  if (!solution.ok()) {
    std::cerr << "no coordination: " << solution.status() << "\n";
    return 1;
  }

  std::cout << "Coordinating set found: "
            << SolutionToString(queries, *solution) << "\n";
  for (QueryId id : solution->queries) {
    for (const Atom& answer : solution->GroundedHeads(queries, id)) {
      std::cout << "  booked " << answer << "\n";
    }
  }

  std::cout << "\nWhy Jonny and Will stay home:\n"
            << "  qJ unifies its flight with the Paris flight of {qC, qG}\n"
            << "  but its own body requires that flight to reach Athens -\n"
            << "  the combined query has no witness, so qJ's component\n"
            << "  fails, and qW fails transitively (it needs qJ's hotel).\n";

  std::cout << "\nstats: " << coordinator.stats().ToString() << "\n";
  std::cout << "validation: "
            << ValidateSolution(db, queries, *solution) << "\n";

  // What the world looks like if Guy relaxes: everyone to Athens.
  std::cout << "\n== Variation: Guy agrees to Athens ==\n";
  Database db2;
  QuerySet queries2;
  BuildFlightHotelScenario(&db2, &queries2);
  // Rewrite Guy's body from Paris to Athens.
  for (Atom& atom : queries2.mutable_query(ids.qg).body) {
    for (Term& term : atom.terms) {
      if (term.is_constant() && term.constant() == Value::Str("Paris")) {
        term = Term::Str("Athens");
      }
    }
  }
  SccCoordinator coordinator2(&db2);
  auto solution2 = coordinator2.Solve(queries2);
  if (solution2.ok()) {
    std::cout << "now coordinating: "
              << SolutionToString(queries2, *solution2) << "\n";
  } else {
    std::cout << "still no luck: " << solution2.status() << "\n";
  }
  return 0;
}
