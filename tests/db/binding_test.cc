#include "db/binding.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(BindingTest, StartsEmpty) {
  Binding binding;
  EXPECT_TRUE(binding.empty());
  EXPECT_EQ(binding.size(), 0u);
  EXPECT_FALSE(binding.contains(0));
  EXPECT_EQ(binding.Find(3), nullptr);
}

TEST(BindingTest, EmplaceBindsOnceExistingWins) {
  Binding binding;
  EXPECT_TRUE(binding.emplace(2, Value::Int(7)));
  EXPECT_FALSE(binding.emplace(2, Value::Int(9)));  // map semantics
  EXPECT_EQ(binding.at(2), Value::Int(7));
  EXPECT_EQ(binding.size(), 1u);
}

TEST(BindingTest, SetOverwrites) {
  Binding binding;
  binding.Set(1, Value::Str("a"));
  binding.Set(1, Value::Str("b"));
  EXPECT_EQ(binding.at(1), Value::Str("b"));
  EXPECT_EQ(binding.size(), 1u);
}

TEST(BindingTest, GrowsOnDemandAcrossBitmapWords) {
  Binding binding;
  binding.emplace(0, Value::Int(1));
  binding.emplace(63, Value::Int(2));
  binding.emplace(64, Value::Int(3));   // second bitmap word
  binding.emplace(200, Value::Int(4));  // fourth bitmap word
  EXPECT_EQ(binding.size(), 4u);
  EXPECT_EQ(binding.at(63), Value::Int(2));
  EXPECT_EQ(binding.at(64), Value::Int(3));
  EXPECT_EQ(binding.at(200), Value::Int(4));
  EXPECT_FALSE(binding.contains(65));
  EXPECT_FALSE(binding.contains(199));
}

TEST(BindingTest, EraseUnbinds) {
  Binding binding;
  binding.emplace(5, Value::Int(1));
  EXPECT_TRUE(binding.erase(5));
  EXPECT_FALSE(binding.erase(5));  // already unbound
  EXPECT_FALSE(binding.contains(5));
  EXPECT_TRUE(binding.empty());
  // Unbinding never shrinks capacity; rebinding works.
  EXPECT_TRUE(binding.emplace(5, Value::Int(2)));
  EXPECT_EQ(binding.at(5), Value::Int(2));
}

/// The evaluator's backtracking discipline: bind a row's variables,
/// recurse, then unwind the trail to a mark — the binding must come
/// back exactly to its pre-row state.
TEST(BindingTest, TrailBacktrackRestoresState) {
  Binding binding;
  binding.emplace(0, Value::Str("keep"));
  Binding before = binding;

  std::vector<VarId> trail;
  const size_t mark = trail.size();
  for (VarId v : {1, 2, 3}) {
    if (binding.emplace(v, Value::Int(v * 10))) trail.push_back(v);
  }
  // Rebinding an engaged variable does not grow the trail.
  EXPECT_FALSE(binding.emplace(0, Value::Str("clobber")));
  EXPECT_EQ(trail.size(), 3u);
  EXPECT_EQ(binding.size(), 4u);

  while (trail.size() > mark) {
    binding.erase(trail.back());
    trail.pop_back();
  }
  EXPECT_EQ(binding, before);
  EXPECT_EQ(binding.at(0), Value::Str("keep"));
}

TEST(BindingTest, ForEachAscendingOrder) {
  Binding binding;
  binding.emplace(70, Value::Int(3));
  binding.emplace(4, Value::Int(1));
  binding.emplace(63, Value::Int(2));
  std::vector<VarId> order;
  binding.ForEach([&](VarId var, const Value& value) {
    order.push_back(var);
    EXPECT_EQ(value, binding.at(var));
  });
  EXPECT_EQ(order, (std::vector<VarId>{4, 63, 70}));
  EXPECT_EQ(binding.Vars(), order);
}

TEST(BindingTest, EqualityIgnoresCapacity) {
  Binding a;
  a.emplace(1, Value::Int(5));
  Binding b;
  b.Reserve(1000);  // different capacity, same content
  b.emplace(1, Value::Int(5));
  EXPECT_EQ(a, b);
  b.emplace(2, Value::Int(6));
  EXPECT_NE(a, b);
  b.erase(2);
  EXPECT_EQ(a, b);
  b.Set(1, Value::Int(7));
  EXPECT_NE(a, b);
}

/// Witness translation back into an engine's global variable space
/// binds ids that grow with the engine's lifetime; storage must snap
/// to the component's id window, not stretch from zero.
TEST(BindingTest, HighIdsUseWindowedStorage) {
  Binding binding;
  for (VarId v = 1000000; v < 1000004; ++v) {
    binding.emplace(v, Value::Int(v));
  }
  EXPECT_EQ(binding.size(), 4u);
  EXPECT_GE(binding.base(), 999936);  // 64-aligned, near the window
  EXPECT_LE(binding.capacity(), 256u);
  EXPECT_EQ(binding.at(1000002), Value::Int(1000002));
  EXPECT_FALSE(binding.contains(0));
  EXPECT_FALSE(binding.contains(999999));
  EXPECT_EQ(binding.Vars(),
            (std::vector<VarId>{1000000, 1000001, 1000002, 1000003}));
}

TEST(BindingTest, WindowGrowsDownward) {
  Binding binding;
  binding.emplace(500, Value::Int(1));
  binding.emplace(100, Value::Int(2));  // below the initial base
  binding.emplace(700, Value::Int(3));  // above the window
  EXPECT_EQ(binding.at(500), Value::Int(1));
  EXPECT_EQ(binding.at(100), Value::Int(2));
  EXPECT_EQ(binding.at(700), Value::Int(3));
  EXPECT_EQ(binding.Vars(), (std::vector<VarId>{100, 500, 700}));

  Binding same;
  same.emplace(100, Value::Int(2));
  same.emplace(500, Value::Int(1));
  same.emplace(700, Value::Int(3));
  EXPECT_EQ(binding, same);  // content equality ignores window layout
}

TEST(BindingTest, MoveLeavesSourceEmpty) {
  Binding source;
  source.emplace(3, Value::Str("x"));
  Binding target = std::move(source);
  EXPECT_EQ(target.at(3), Value::Str("x"));
  EXPECT_TRUE(source.empty());           // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(source.erase(3));         // harmless on moved-from
  EXPECT_FALSE(source.contains(3));
}

}  // namespace
}  // namespace entangled
