#ifndef ENTANGLED_SYSTEM_ENGINE_H_
#define ENTANGLED_SYSTEM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "algo/scc_coordination.h"
#include "common/result.h"
#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"

namespace entangled {

/// \brief Engine work counters.
struct EngineStats {
  uint64_t submitted = 0;            ///< queries accepted
  uint64_t evaluations = 0;          ///< component evaluations run
  uint64_t coordinated_queries = 0;  ///< queries retired in solutions
  uint64_t coordinating_sets = 0;    ///< solutions delivered
  uint64_t unsafe_components = 0;    ///< components skipped as unsafe
  uint64_t db_queries = 0;           ///< conjunctive queries issued
};

/// \brief Options for CoordinationEngine.
struct EngineOptions {
  /// Evaluate the arriving query's connected component after every
  /// `evaluate_every` submissions (1 = the Youtopia behaviour described
  /// in §6.1: "when a new query arrives ... calls an evaluation method
  /// on the connected component").  0 disables automatic evaluation;
  /// call Flush().
  size_t evaluate_every = 1;

  /// Passed through to the SCC Coordination Algorithm.
  SccOptions scc;
};

/// \brief The Youtopia-style coordination module (§6.1): queries arrive
/// one at a time, the engine maintains the coordination graph
/// incrementally, evaluates the affected connected component with the
/// SCC Coordination Algorithm, delivers any coordinating set found
/// through a callback, and retires its queries.
///
/// Single-threaded by design; the database outlives the engine.
class CoordinationEngine {
 public:
  /// Invoked with the engine's master query set and each solution found
  /// (query ids refer to that master set).
  using SolutionCallback =
      std::function<void(const QuerySet&, const CoordinationSolution&)>;

  CoordinationEngine(const Database* db, EngineOptions options = {});

  void set_solution_callback(SolutionCallback callback) {
    callback_ = std::move(callback);
  }

  /// Submits one query in the paper's concrete syntax (core/parser.h).
  Result<QueryId> Submit(const std::string& query_text);

  /// Submits a pre-built query whose variables were allocated through
  /// NewVar() on mutable_queries().
  QueryId SubmitQuery(EntangledQuery query);

  /// Evaluates every pending component; returns the number of
  /// coordinating sets delivered.
  size_t Flush();

  /// Master query set (all queries ever submitted; retired ones keep
  /// their slots).  Use NewVar() here before SubmitQuery.
  QuerySet* mutable_queries() { return &all_; }
  const QuerySet& queries() const { return all_; }

  /// Queries awaiting coordination.
  std::vector<QueryId> PendingQueries() const;
  bool IsPending(QueryId id) const;

  const EngineStats& stats() const { return stats_; }

 private:
  /// Runs the SCC algorithm on the pending component containing `root`;
  /// returns true when a solution was delivered.
  bool EvaluateComponentOf(QueryId root);

  /// Pending queries weakly connected to `root` in the coordination
  /// graph (including `root`).
  std::vector<QueryId> ComponentOf(QueryId root) const;

  const Database* db_;
  EngineOptions options_;
  QuerySet all_;
  std::vector<bool> pending_;  // per query id in all_
  size_t since_last_eval_ = 0;
  SolutionCallback callback_;
  EngineStats stats_;
};

}  // namespace entangled

#endif  // ENTANGLED_SYSTEM_ENGINE_H_
