// Generated-scenario throughput sweep: replays randomized workloads
// from the WorkloadGenerator (one run per topology x stream size) on
// the incremental engine and reports wall time, event throughput, and
// delivery counts.  Emits one BENCH_JSON record per configuration, so
// the committed BENCH_scenarios.json baseline tracks how engine
// changes move synthetic-workload throughput across interaction-graph
// shapes — the axes related work singles out as the hardness drivers.

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "system/engine.h"
#include "testing/stress_harness.h"
#include "workload/generator.h"

namespace entangled {
namespace {

struct Outcome {
  double ms = 0;
  uint64_t deliveries = 0;
  uint64_t evaluations = 0;
  uint64_t db_queries = 0;
  uint64_t eval_cache_hits = 0;
  uint64_t evaluations_avoided = 0;
};

/// Relation mutated by the churn epilogue below.  No generated query
/// ever reads it, so the inserts change no outcome — they only make
/// the database version move between flushes.
constexpr char kChurnRelation[] = "BenchChurn";

Outcome Replay(Database* db, const GeneratedWorkload& workload,
               size_t flush_threads) {
  EngineOptions options;
  options.incremental = true;
  options.flush_threads = flush_threads;
  CoordinationEngine engine(db, options);
  WallTimer timer;
  const std::string error = ReplayWorkloadEvents(&engine, workload.events);
  ENTANGLED_CHECK(error.empty()) << error;
  // Database-churn epilogue: a fact lands in a relation nobody reads,
  // then a flush.  The version bump dirties every live component, and
  // delta evaluation's stamps prove each one unchanged — the steady
  // state of a long-lived stream over a mutating database, and what
  // keeps evaluations_avoided nonzero in the committed baseline.
  ENTANGLED_CHECK(
      db->FindMutable(kChurnRelation)->Insert({Value::Int(1)}).ok());
  engine.Flush();
  Outcome outcome;
  outcome.ms = timer.ElapsedMillis();
  outcome.deliveries = engine.stats().coordinating_sets;
  outcome.evaluations = engine.stats().evaluations;
  outcome.db_queries = engine.stats().db_queries;
  outcome.eval_cache_hits = engine.stats().eval_cache_hits;
  outcome.evaluations_avoided = engine.stats().evaluations_avoided;
  return outcome;
}

void RunSweep() {
  benchutil::PrintSeriesHeader(
      "Generated-scenario sweep: incremental engine over topologies",
      {"topology", "queries", "threads", "events", "time_ms", "events_per_s",
       "deliveries"});
  for (GraphTopology topology : AllTopologies()) {
    for (size_t num_queries : {size_t{50}, size_t{150}}) {
      GeneratorOptions options;
      options.seed = 0xBE9C + static_cast<uint64_t>(topology) * 131 +
                     num_queries;
      options.topology = topology;
      options.num_queries = num_queries;
      options.population = 96;
      options.rows_per_relation = 192;
      options.batch_rate = 0.3;
      options.cancel_rate = 0.1;
      options.sharing_density = 0.2;
      options.eval_every_rate = 0.1;
      WorkloadGenerator generator(options);
      Database db;
      ENTANGLED_CHECK(generator.BuildDatabase(&db).ok());
      ENTANGLED_CHECK(db.CreateRelation(kChurnRelation, {"v"}).ok());
      GeneratedWorkload workload = generator.Generate();

      for (size_t threads : {size_t{1}, size_t{4}}) {
        Outcome outcome;
        const double ms = benchutil::MeanMillis(
            3, [&] { outcome = Replay(&db, workload, threads); });
        const double events_per_s =
            ms > 0 ? 1000.0 * static_cast<double>(workload.events.size()) / ms
                   : 0;
        benchutil::PrintRow({static_cast<double>(topology),
                             static_cast<double>(workload.num_queries),
                             static_cast<double>(threads),
                             static_cast<double>(workload.events.size()), ms,
                             events_per_s,
                             static_cast<double>(outcome.deliveries)});
        benchutil::PrintJsonRecord(
            std::string("scenarios_") + TopologyName(topology),
            {{"num_queries", static_cast<double>(workload.num_queries)},
             {"threads", static_cast<double>(threads)},
             {"events", static_cast<double>(workload.events.size())},
             {"ms", ms},
             {"events_per_s", events_per_s},
             {"deliveries", static_cast<double>(outcome.deliveries)},
             {"evaluations", static_cast<double>(outcome.evaluations)},
             {"db_queries", static_cast<double>(outcome.db_queries)},
             {"eval_cache_hits",
              static_cast<double>(outcome.eval_cache_hits)},
             {"evaluations_avoided",
              static_cast<double>(outcome.evaluations_avoided)}});
      }
    }
  }
}

}  // namespace
}  // namespace entangled

int main() {
  entangled::RunSweep();
  return 0;
}
