#ifndef ENTANGLED_WORKLOAD_GENERATOR_H_
#define ENTANGLED_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/database.h"

namespace entangled {

/// \brief Shape of the query-sharing structure a generated scenario
/// drapes over each entanglement group (related work shows coordination
/// hardness is highly sensitive to exactly this shape).
enum class GraphTopology {
  kChain,       ///< q0 <- q1 <- ... <- qk: nested reachable sets
  kStar,        ///< spokes all waiting on one hub's head
  kClique,      ///< pairwise mutual entanglement (one SCC)
  kErdosRenyi,  ///< each directed (post -> head) pair with prob p
};

const char* TopologyName(GraphTopology topology);

/// All topologies, for sweeps.
std::vector<GraphTopology> AllTopologies();

/// \brief Knobs of one randomized coordination workload.  Every field
/// participates in generation deterministically: the same options (and
/// in particular the same `seed`) always produce the same database and
/// the same event stream, bit for bit.
struct GeneratorOptions {
  uint64_t seed = 1;
  GraphTopology topology = GraphTopology::kErdosRenyi;

  // ---- database shape ----
  size_t population = 48;         ///< distinct integer entity ids
  size_t num_relations = 3;       ///< body relations R0..R{n-1}
  size_t min_arity = 2;           ///< relation arity lower bound
  size_t max_arity = 3;           ///< relation arity upper bound
  size_t rows_per_relation = 96;  ///< cardinality of each relation
  size_t tags_per_column = 6;     ///< distinct strings per text column

  // ---- query shape ----
  size_t num_queries = 24;     ///< total submissions in the stream
  size_t max_body_atoms = 2;   ///< body atoms per query (>= 1)
  double stuck_body_rate = 0.08;  ///< body names a value not in the db
  double head_only_var_rate = 0.1;  ///< head var unconstrained by body
  double unsafe_rate = 0.0;    ///< group gains a duplicate-head twin

  // ---- sharing structure ----
  size_t min_group = 2;         ///< entanglement group size bounds
  size_t max_group = 5;
  double template_rate = 0.7;   ///< member reuses the group's body atom
  double sharing_density = 0.0; ///< bridge post into an earlier group
  /// When non-zero, every `bridge_storm`-th query (counted across the
  /// whole stream) gains posts into the two most recent earlier groups,
  /// forcing a k-way group merge the moment it arrives — the
  /// merge-churn stressor for the sharded front door's small-into-large
  /// migration path.  Deterministic and draw-free: no RNG draws depend
  /// on it, so the same seed generates the same scenario with the storm
  /// bridges layered on top.
  size_t bridge_storm = 0;
  double er_edge_prob = 0.4;    ///< kErdosRenyi edge probability
  /// Folds the per-group answer-relation namespaces together: group `g`
  /// coordinates through `A<g % relation_partitions>` instead of its
  /// own `A<g>` (0 keeps one relation per group).  Head tags stay
  /// unique per (group, member), so which sets coordinate is entirely
  /// unaffected — only the *relation footprints* coarsen, which is
  /// exactly the knob the sharded engine's router keys on: 0 leaves
  /// every unbridged group footprint-disjoint (maximum sharding), a
  /// small value yields a few wide relation groups, and 1 is the
  /// pathological all-merge case where every query lands in one shard.
  /// No RNG draws depend on it, so the same seed generates the same
  /// scenario up to the relation renaming.
  size_t relation_partitions = 0;

  // ---- arrival mix ----
  double batch_rate = 0.25;       ///< chunk arrives via SubmitBatch
  size_t max_batch = 5;           ///< queries per batch (>= 2)
  double cancel_rate = 0.1;       ///< Cancel event after a chunk
  double flush_rate = 0.15;       ///< explicit Flush event after a chunk
  double eval_every_rate = 0.05;  ///< set_evaluate_every toggle

  // ---- metamorphic hooks (used by the stress harness) ----
  /// Prepended to every generated string constant — answer-relation
  /// tags, text-column tag pools, and deliberately-missing constants —
  /// in both the database and the query texts.  Must start with an
  /// uppercase letter (tags must still lex as constants) or be empty.
  /// Generation consumes identical RNG draws regardless of the prefix,
  /// so a prefixed scenario is the same scenario up to symbol renaming.
  std::string symbol_prefix;
  /// When non-zero, each relation's rows are shuffled (seeded by this
  /// value) before insertion.  Row order never affects which sets
  /// coordinate, only which witness the evaluator happens to find.
  uint64_t row_shuffle_seed = 0;
};

/// \brief One step of a generated scenario, mirroring the engine's
/// public surface (Submit / SubmitBatch / Cancel / set_evaluate_every /
/// Flush).  Cancellation targets a *rank* into the engine's sorted
/// pending list at replay time, so the same event stream selects the
/// same query on every engine being compared.
struct WorkloadEvent {
  enum class Kind : uint8_t {
    kSubmit,
    kSubmitBatch,
    kCancel,
    kSetEvaluateEvery,
    kFlush,
  };

  Kind kind = Kind::kFlush;
  std::vector<std::string> texts;  ///< kSubmit: 1 text; kSubmitBatch: >= 2
  size_t cancel_rank = 0;          ///< kCancel: index into sorted pending
  size_t evaluate_every = 0;       ///< kSetEvaluateEvery: new cadence
};

/// \brief A generated event stream plus its summary counts.
struct GeneratedWorkload {
  std::vector<WorkloadEvent> events;
  size_t num_queries = 0;  ///< total query texts across submit events
  size_t num_groups = 0;   ///< entanglement groups generated
};

/// One event on one line ("SUBMIT q0_1: {...} ...", "CANCEL rank=5").
std::string EventToString(const WorkloadEvent& event);

/// The whole stream, one "[i] EVENT" line per event.
std::string WorkloadToString(const GeneratedWorkload& workload);

/// \brief Produces seeded, parameterized coordination workloads: a
/// synthetic database plus an event stream of query arrivals (single
/// and batched), cancellations, cadence switches, and flushes whose
/// query-sharing structure follows the requested topology.
///
/// Queries are emitted in the paper's concrete syntax, so any engine
/// replaying the stream parses them through the production path.  Group
/// `g` coordinates through a dedicated answer relation `A<g>` whose
/// head tags `G<g>M<m>` are unique per member, keeping generated
/// components safe by construction; `unsafe_rate` deliberately breaks
/// that with duplicate-head twins, and `sharing_density` bridges
/// otherwise-independent groups into larger components.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(GeneratorOptions options);

  const GeneratorOptions& options() const { return options_; }

  /// Installs the scenario's relations into `*db`.  Deterministic from
  /// the options; independent of Generate()'s RNG stream, so the same
  /// seed can rebuild the database under a different row shuffle.
  Status BuildDatabase(Database* db) const;

  /// The event stream.  Deterministic from the options.
  GeneratedWorkload Generate() const;

 private:
  GeneratorOptions options_;
};

}  // namespace entangled

#endif  // ENTANGLED_WORKLOAD_GENERATOR_H_
