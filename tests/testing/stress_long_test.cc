// The nightly-style deep stress sweep (registered with ctest as
// `stress_long`, label `long`).  Unarmed it skips in milliseconds so
// the tier-1 run stays fast; arm the real sweep with
//
//   ENTANGLED_STRESS_LONG=1 ctest --test-dir build -L long
//
// which runs a few hundred seeded scenarios across every topology with
// larger populations, deeper streams, and all metamorphic variants.

#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "testing/stress_harness.h"
#include "workload/generator.h"

namespace entangled {
namespace {

bool LongSweepArmed() {
  const char* armed = std::getenv("ENTANGLED_STRESS_LONG");
  return armed != nullptr && armed[0] != '\0' && armed[0] != '0';
}

TEST(StressLong, DeepSweep) {
  if (!LongSweepArmed()) {
    GTEST_SKIP() << "set ENTANGLED_STRESS_LONG=1 to arm the deep sweep";
  }
  size_t scenarios = 0;
  for (GraphTopology topology : AllTopologies()) {
    for (uint64_t seed = 1; seed <= 24; ++seed) {
      // Cross the kill-and-rehydrate differential into the sweep: the
      // crash point walks the stream with the seed (the harness takes
      // it modulo events+1, so every region — genesis, mid-stream,
      // past-the-end — gets hit across the sweep).
      StressOptions stress;
      stress.crash_at_event = 5 + 17 * seed;
      StressHarness harness(stress);
      GeneratorOptions options;
      options.seed = 0xBEEF0000 + 1000 * static_cast<uint64_t>(topology) +
                     seed;
      options.topology = topology;
      options.num_queries = 60 + 10 * (seed % 5);
      options.population = 128;
      options.rows_per_relation = 256;
      options.num_relations = 4;
      options.cancel_rate = 0.05 * static_cast<double>(seed % 7);
      options.batch_rate = 0.1 * static_cast<double>(seed % 8);
      options.sharing_density = 0.15 * static_cast<double>(seed % 4);
      options.unsafe_rate = 0.1 * static_cast<double>(seed % 3);
      options.eval_every_rate = 0.1;
      // Cycle the answer-relation namespace width so the sharded
      // variants sweep everything from one-shard-per-group to the
      // pathological everything-in-one-shard case.
      static constexpr size_t kPartitions[] = {0, 1, 4, 16};
      options.relation_partitions = kPartitions[seed % 4];
      // Cross in merge churn on a third of the seeds: frequent k-way
      // bridges drive the small-into-large migration path (and its
      // rebuild-merge baseline) through deep merge chains.
      static constexpr size_t kStorms[] = {0, 4, 7};
      options.bridge_storm = kStorms[seed % 3];
      StressReport report = harness.RunScenario(options);
      ASSERT_TRUE(report.ok)
          << TopologyName(topology) << " seed=" << options.seed << ": "
          << report.failure << "\n"
          << report.reproduction;
      ++scenarios;
    }
  }
  std::printf("stress_long: %zu scenarios verified\n", scenarios);
}

}  // namespace
}  // namespace entangled
