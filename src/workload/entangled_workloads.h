#ifndef ENTANGLED_WORKLOAD_ENTANGLED_WORKLOADS_H_
#define ENTANGLED_WORKLOAD_ENTANGLED_WORKLOADS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/query.h"
#include "graph/digraph.h"

namespace entangled {

/// \brief Emits one entangled query per node of `structure` into `*set`
/// (§6.1's workload shape): node i's query is
///
///   { R(user<j1>, y1), R(user<j2>, y2), ... }  R(user<i>, x) :-
///       <table>(x, 'user<i>')
///
/// with one postcondition per successor j of i in `structure`.  Every
/// body is satisfiable (the handle exists — "the most demanding
/// scenario"), the set is safe by construction (the first answer-atom
/// position is a distinct constant per query), and it is *not* unique
/// whenever `structure` is not strongly connected.
///
/// Returns the query ids in node order.
std::vector<QueryId> MakeStructuredWorkload(const Digraph& structure,
                                            const std::string& table,
                                            QuerySet* set);

/// \brief The Figure-4 "list structure": a chain of n queries, each
/// coordinating with the next, the last with nobody — the worst case
/// for the SCC algorithm (n singleton SCCs, a different coordinating
/// set per suffix, n database queries).
std::vector<QueryId> MakeListWorkload(int n, const std::string& table,
                                      QuerySet* set);

/// \brief The Figures-5/6 workload: coordination partners follow a
/// directed Barabási–Albert scale-free network [1] of n nodes.
std::vector<QueryId> MakeScaleFreeWorkload(int n, int edges_per_node,
                                           const std::string& table,
                                           Rng* rng, QuerySet* set);

/// \brief A safe *and unique* workload (a directed cycle): the regime
/// the Gupta et al. baseline supports, used by ablation A1.
std::vector<QueryId> MakeCycleWorkload(int n, const std::string& table,
                                       QuerySet* set);

}  // namespace entangled

#endif  // ENTANGLED_WORKLOAD_ENTANGLED_WORKLOADS_H_
