#ifndef ENTANGLED_SYSTEM_ENGINE_H_
#define ENTANGLED_SYSTEM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "algo/scc_coordination.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/coordination_graph.h"
#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"

namespace entangled {

/// \brief Engine work counters.
struct EngineStats {
  uint64_t submitted = 0;            ///< queries accepted
  uint64_t cancelled = 0;            ///< pending queries withdrawn
  uint64_t evaluations = 0;          ///< component evaluations run
  uint64_t coordinated_queries = 0;  ///< queries retired in solutions
  uint64_t coordinating_sets = 0;    ///< solutions delivered
  uint64_t unsafe_components = 0;    ///< components skipped as unsafe
  uint64_t db_queries = 0;           ///< conjunctive queries issued
};

/// \brief Test-only fault injection.  Each flag disables one
/// maintenance step of the incremental core so the stress harness's
/// negative tests (tests/testing/) can prove the differential harness
/// actually detects the resulting divergence.  Never set in
/// production code.
struct EngineFaultInjection {
  /// Cancel() still retires the query from the incremental index, but
  /// the surviving fragments of its component lose their dirty marks —
  /// so a component that a cancellation made safe (or coordinable) is
  /// never re-examined, and the engine silently misses deliveries the
  /// from-scratch oracle makes.
  bool lose_dirty_on_cancel = false;
};

/// \brief Options for CoordinationEngine.
struct EngineOptions {
  /// Evaluate the arriving query's connected component after every
  /// `evaluate_every` submissions (1 = the Youtopia behaviour described
  /// in §6.1: "when a new query arrives ... calls an evaluation method
  /// on the connected component").  0 disables automatic evaluation;
  /// call Flush().
  size_t evaluate_every = 1;

  /// Maintain the coordination graph and its weakly-connected-component
  /// partition incrementally (persistent per-relation unification index,
  /// union-find component lookup, dirty-component scheduling).  When
  /// false the engine falls back to the from-scratch path — rebuild the
  /// graph over all pending queries on every evaluation — which exists
  /// as the reference implementation for differential tests and as the
  /// baseline for bench_incremental_stream.  Both paths deliver
  /// identical coordinating sets in identical order.
  bool incremental = true;

  /// Worker threads used by Flush() to evaluate independent dirty
  /// components concurrently (1 = evaluate on the calling thread).
  /// Components are disjoint query sets evaluated against the shared
  /// read-only database, and results are *applied* in deterministic
  /// component order, so outputs do not depend on the thread count.
  /// Only the incremental path parallelizes.
  size_t flush_threads = 1;

  /// Passed through to the SCC Coordination Algorithm.
  SccOptions scc;

  /// Test-only fault injection (see EngineFaultInjection).
  EngineFaultInjection fault;
};

/// \brief The Youtopia-style coordination module (§6.1): queries arrive
/// one at a time, the engine maintains the coordination graph
/// incrementally, evaluates the affected connected component with the
/// SCC Coordination Algorithm, delivers any coordinating set found
/// through a callback, and retires its queries.
///
/// The incremental core keeps three persistent structures in sync:
///
///  * an ExtendedCoordinationGraph over the pending queries, updated per
///    arrival through its per-relation unification index (AddQuery) and
///    per delivery (RetireQueries);
///  * a union-find over the graph's weakly connected components, so
///    "which component does this query belong to" is an index lookup
///    instead of a graph rebuild + BFS;
///  * a dirty-component worklist: only components whose membership
///    changed since their last evaluation are re-examined by Flush().
///
/// Submission is amortized near O(degree of the arriving query); the
/// from-scratch path this replaces was O(pending²) per arrival.
///
/// The public API is single-threaded; Flush() may fan evaluation out to
/// an internal thread pool (EngineOptions::flush_threads), but callbacks
/// always run on the calling thread (and must not re-enter the engine —
/// see set_solution_callback).  The database outlives the engine and
/// must not be mutated while the engine runs.
class CoordinationEngine {
 public:
  /// Invoked with the engine's master query set and each solution found
  /// (query ids refer to that master set).
  using SolutionCallback =
      std::function<void(const QuerySet&, const CoordinationSolution&)>;

  CoordinationEngine(const Database* db, EngineOptions options = {});

  /// Deliveries are notifications, not extension points: the callback
  /// must not re-enter the engine (Submit/Cancel/Flush CHECK-fail when
  /// called from inside it, since in-flight component evaluations would
  /// be applied against state the callback just changed).  Queue any
  /// follow-up work and run it after the delivering call returns.
  void set_solution_callback(SolutionCallback callback) {
    callback_ = std::move(callback);
  }

  /// Changes the automatic-evaluation cadence at runtime (e.g. admit a
  /// large backlog without evaluation, then switch to per-arrival).
  void set_evaluate_every(size_t evaluate_every) {
    options_.evaluate_every = evaluate_every;
  }

  /// Submits one query in the paper's concrete syntax (core/parser.h).
  Result<QueryId> Submit(const std::string& query_text);

  /// Submits a pre-built query whose variables were allocated through
  /// NewVar() on mutable_queries().
  QueryId SubmitQuery(EntangledQuery query);

  /// Admits a whole batch of queries before any evaluation runs, then —
  /// when automatic evaluation is enabled — flushes once.  Returns the
  /// ids of all admitted queries, or the first parse error.  Admission
  /// is all-or-nothing: on error nothing from the batch was admitted.
  Result<std::vector<QueryId>> SubmitBatch(
      const std::vector<std::string>& query_texts);

  /// Withdraws a pending query (a user abandoning a request).  Returns
  /// false when the id is unknown or no longer pending.  The rest of its
  /// component is re-marked dirty: shrinking a component can turn an
  /// unsafe set safe, so it may coordinate on the next evaluation.
  bool Cancel(QueryId id);

  /// Evaluates every dirty pending component (every pending component on
  /// the from-scratch path); returns the number of coordinating sets
  /// delivered.
  size_t Flush();

  /// Master query set (all queries ever submitted; retired ones keep
  /// their slots).  Use NewVar() here before SubmitQuery.
  QuerySet* mutable_queries() { return &all_; }
  const QuerySet& queries() const { return all_; }

  /// Queries awaiting coordination.
  std::vector<QueryId> PendingQueries() const;
  bool IsPending(QueryId id) const;

  /// Pending queries weakly connected to `id` in the coordination graph
  /// (including `id`, which must be pending), sorted ascending.  An
  /// index lookup on the incremental path; a graph rebuild + BFS on the
  /// from-scratch path.
  std::vector<QueryId> ComponentOf(QueryId id) const;

  const EngineStats& stats() const { return stats_; }

 private:
  /// A component evaluation prepared on the coordinating thread: the
  /// component's queries renumbered into a standalone QuerySet plus the
  /// matching slice of the persistent graph, so workers touch no shared
  /// engine state.
  struct EvalTask {
    QueryId min_id = -1;              ///< smallest member (schedule key)
    std::vector<QueryId> original;    ///< local id -> engine id
    std::vector<VarId> original_vars; ///< local var -> engine var
    QuerySet subset;
    std::vector<ExtendedEdge> edges;  ///< local ids, canonical order
  };

  /// What a worker hands back; applied on the coordinating thread.
  struct EvalOutcome {
    bool ok = false;
    CoordinationSolution solution;  ///< local ids; valid when ok
    bool unsafe = false;            ///< FailedPrecondition (safety)
    uint64_t db_queries = 0;
  };

  /// Shared admission path after `id` was appended to all_.
  void Admit(QueryId id);

  /// CHECK-fails when called from inside a solution callback.
  void CheckNotReentrant() const;

  /// Union-find over engine ids (weak connectivity of pending queries).
  QueryId FindRoot(QueryId q) const;
  void UnionComps(QueryId a, QueryId b);

  /// Removes delivered/cancelled queries from the incremental index and
  /// re-partitions the survivors of their component.  The resulting
  /// component roots are marked dirty and returned (sorted by smallest
  /// member id).
  std::vector<QueryId> RetireAndRepartition(
      const std::vector<QueryId>& retired);

  EvalTask BuildTask(QueryId root) const;
  EvalOutcome RunTask(const EvalTask& task) const;
  /// Applies one outcome: delivers + retires on success.  Returns
  /// whether a coordinating set was delivered; on delivery the
  /// repartitioned fragment roots land in `new_roots` when non-null.
  bool ApplyOutcome(const EvalTask& task, EvalOutcome outcome,
                    std::vector<QueryId>* new_roots = nullptr);

  /// Evaluates the (single) component of `root` on the calling thread.
  bool EvaluateComponentOf(QueryId root);

  size_t IncrementalFlush();

  // ---- from-scratch reference path (options_.incremental == false) ----
  bool LegacyEvaluateComponentOf(QueryId root);
  std::vector<QueryId> LegacyComponentOf(QueryId root) const;
  size_t LegacyFlush();

  const Database* db_;
  EngineOptions options_;
  QuerySet all_;
  std::vector<bool> pending_;  // per query id in all_
  size_t since_last_eval_ = 0;
  SolutionCallback callback_;
  bool in_callback_ = false;
  EngineStats stats_;

  // ---- incremental core ----
  ExtendedCoordinationGraph graph_;      // over pending queries only
  mutable std::vector<QueryId> uf_parent_;
  std::vector<uint32_t> uf_size_;
  std::vector<QueryId> comp_min_;        // at roots: smallest member id
  std::vector<std::vector<QueryId>> comp_members_;  // at roots
  std::unordered_set<QueryId> dirty_roots_;
  std::unique_ptr<ThreadPool> pool_;     // lazily created by Flush()
};

}  // namespace entangled

#endif  // ENTANGLED_SYSTEM_ENGINE_H_
