// Tests for the §5-Discussion generalizations of the Consistent
// Coordination Algorithm: "at least k friends" requirements (not
// expressible in entangled-query syntax) and partners drawn from
// multiple binary relations.

#include <gtest/gtest.h>

#include "algo/consistent.h"
#include "core/validator.h"
#include "workload/consistent_workloads.h"

namespace entangled {
namespace {

class GeneralizationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakeFlightSchema("Flights", "Friends");
    ASSERT_TRUE(InstallFlightsGrid(&db_, "Flights", {"Paris"}, {"d1"}, 2,
                                   {"NYC"}, {"AirA"})
                    .ok());
    friends_ = *db_.CreateRelation("Friends", {"user", "friend"});
    buddies_ = *db_.CreateRelation("Buddies", {"user", "friend"});
  }

  void Befriend(Relation* relation, const std::string& a,
                const std::string& b) {
    ASSERT_TRUE(relation->Insert({Value::Str(a), Value::Str(b)}).ok());
  }

  ConsistentQuery Wildcard(const std::string& user) {
    ConsistentQuery q;
    q.user = user;
    q.self_spec.assign(4, std::nullopt);
    return q;
  }

  Database db_;
  ConsistentSchema schema_;
  Relation* friends_ = nullptr;
  Relation* buddies_ = nullptr;
};

TEST_F(GeneralizationsTest, KFriendsSatisfiedWhenEnoughSurvive) {
  // u0 needs two friends; u1 and u2 are both friends and present.
  std::vector<ConsistentQuery> queries = {Wildcard("u0"), Wildcard("u1"),
                                          Wildcard("u2")};
  queries[0].partners = {PartnerSpec::KFriends(2)};
  Befriend(friends_, "u0", "u1");
  Befriend(friends_, "u0", "u2");
  Befriend(friends_, "u1", "u0");
  Befriend(friends_, "u2", "u0");
  queries[1].partners = {PartnerSpec::AnyFriend()};
  queries[2].partners = {PartnerSpec::AnyFriend()};

  ConsistentCoordinator coordinator(&db_, schema_);
  auto result = coordinator.Solve(queries);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 3u);
  const ConsistentMember* u0 = result->FindMember(0);
  ASSERT_NE(u0, nullptr);
  ASSERT_EQ(u0->partner_queries.size(), 1u);
  // Two *distinct* partners chosen.
  ASSERT_EQ(u0->partner_queries[0].size(), 2u);
  EXPECT_NE(u0->partner_queries[0][0], u0->partner_queries[0][1]);
}

TEST_F(GeneralizationsTest, KFriendsFailsWhenOnlyOneSurvives) {
  std::vector<ConsistentQuery> queries = {Wildcard("u0"), Wildcard("u1")};
  queries[0].partners = {PartnerSpec::KFriends(2)};
  queries[1].partners = {PartnerSpec::AnyFriend()};
  Befriend(friends_, "u0", "u1");
  Befriend(friends_, "u1", "u0");

  ConsistentCoordinator coordinator(&db_, schema_);
  // u0 cannot muster two friends; u1 then loses its only friend too.
  EXPECT_TRUE(coordinator.Solve(queries).status().IsNotFound());
}

TEST_F(GeneralizationsTest, KFriendsRemovalCascades) {
  // u0 needs 2 friends (u1, u2); u2's spec is unsatisfiable, so u0
  // drops to one surviving friend and must be removed, which then
  // removes u1 (whose only friend is u0).
  std::vector<ConsistentQuery> queries = {Wildcard("u0"), Wildcard("u1"),
                                          Wildcard("u2")};
  queries[0].partners = {PartnerSpec::KFriends(2)};
  queries[1].partners = {PartnerSpec::AnyFriend()};
  queries[2].self_spec[0] = Value::Str("Atlantis");  // no such flight
  Befriend(friends_, "u0", "u1");
  Befriend(friends_, "u0", "u2");
  Befriend(friends_, "u1", "u0");

  ConsistentCoordinator coordinator(&db_, schema_);
  EXPECT_TRUE(coordinator.Solve(queries).status().IsNotFound());
}

TEST_F(GeneralizationsTest, PartnersFromMultipleRelations) {
  // u0 wants one friend AND one study buddy; the two relations resolve
  // to different users.
  std::vector<ConsistentQuery> queries = {Wildcard("u0"), Wildcard("u1"),
                                          Wildcard("u2")};
  queries[0].partners = {PartnerSpec::AnyFriend(),
                         PartnerSpec::AnyFriend("Buddies")};
  queries[1].partners = {};
  queries[2].partners = {};
  Befriend(friends_, "u0", "u1");
  Befriend(buddies_, "u0", "u2");

  ConsistentCoordinator coordinator(&db_, schema_);
  auto result = coordinator.Solve(queries);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 3u);
  const ConsistentMember* u0 = result->FindMember(0);
  ASSERT_NE(u0, nullptr);
  ASSERT_EQ(u0->partner_queries.size(), 2u);
  EXPECT_EQ(u0->partner_queries[0], (std::vector<size_t>{1}));  // friend
  EXPECT_EQ(u0->partner_queries[1], (std::vector<size_t>{2}));  // buddy
}

TEST_F(GeneralizationsTest, AlternateRelationOnlyCountsItsOwnEdges) {
  // u0 needs a Buddy, but only has a Friend: not satisfiable.
  std::vector<ConsistentQuery> queries = {Wildcard("u0"), Wildcard("u1")};
  queries[0].partners = {PartnerSpec::AnyFriend("Buddies")};
  queries[1].partners = {};
  Befriend(friends_, "u0", "u1");

  ConsistentCoordinator coordinator(&db_, schema_);
  auto result = coordinator.Solve(queries);
  // u1 (no requirements) still coordinates alone.
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->ContainsQuery(1));
}

TEST_F(GeneralizationsTest, KFriendsConversionEmitsKSlots) {
  std::vector<ConsistentQuery> queries = {Wildcard("u0"), Wildcard("u1"),
                                          Wildcard("u2")};
  queries[0].partners = {PartnerSpec::KFriends(2)};
  QuerySet set;
  ConsistentConversion conversion =
      ToEntangledQueries(schema_, queries, &set);
  const EntangledQuery& q0 = set.query(conversion.query_ids[0]);
  EXPECT_EQ(q0.postconditions.size(), 2u);
  // Body: own S atom + 2 x (F atom + partner S atom).
  EXPECT_EQ(q0.body.size(), 5u);
  ASSERT_EQ(conversion.vars[0].spec_slots.size(), 1u);
  EXPECT_EQ(conversion.vars[0].spec_slots[0].size(), 2u);
}

TEST_F(GeneralizationsTest, KFriendsSolutionValidatesAfterConversion) {
  std::vector<ConsistentQuery> queries = {Wildcard("u0"), Wildcard("u1"),
                                          Wildcard("u2")};
  queries[0].partners = {PartnerSpec::KFriends(2)};
  queries[1].partners = {PartnerSpec::AnyFriend()};
  queries[2].partners = {PartnerSpec::User("u0")};
  Befriend(friends_, "u0", "u1");
  Befriend(friends_, "u0", "u2");
  Befriend(friends_, "u1", "u0");

  ConsistentCoordinator coordinator(&db_, schema_);
  auto result = coordinator.Solve(queries);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 3u);

  QuerySet set;
  ConsistentConversion conversion =
      ToEntangledQueries(schema_, queries, &set);
  CoordinationSolution translated =
      ToCoordinationSolution(db_, schema_, queries, conversion, *result);
  EXPECT_TRUE(ValidateSolution(db_, set, translated).ok())
      << set.ToString();
}

TEST_F(GeneralizationsTest, ValidateInputRejectsBadGeneralizations) {
  std::vector<ConsistentQuery> queries = {Wildcard("u0")};
  ConsistentCoordinator coordinator(&db_, schema_);

  queries[0].partners = {PartnerSpec::KFriends(0)};
  EXPECT_TRUE(coordinator.Solve(queries).status().IsInvalidArgument());

  queries[0].partners = {PartnerSpec::AnyFriend("NoSuchRelation")};
  EXPECT_TRUE(coordinator.Solve(queries).status().IsNotFound());

  ASSERT_TRUE(db_.CreateRelation("Ternary", {"a", "b", "c"}).ok());
  queries[0].partners = {PartnerSpec::AnyFriend("Ternary")};
  EXPECT_TRUE(coordinator.Solve(queries).status().IsInvalidArgument());
}

TEST_F(GeneralizationsTest, PartnerSpecToString) {
  EXPECT_EQ(PartnerSpec::User("Ann").ToString(), "Ann");
  EXPECT_EQ(PartnerSpec::AnyFriend().ToString(), "<any of my friends>");
  EXPECT_EQ(PartnerSpec::KFriends(3).ToString(),
            "<at least 3 of my friends>");
  EXPECT_EQ(PartnerSpec::KFriends(2, "Buddies").ToString(),
            "<at least 2 of my Buddies>");
}

}  // namespace
}  // namespace entangled
