#ifndef ENTANGLED_COMMON_INTERNER_H_
#define ENTANGLED_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace entangled {

/// \brief Integer handle for an interned string.  Symbols from the same
/// StringInterner compare equal iff the underlying strings are equal.
using Symbol = int32_t;

/// \brief Sentinel for "no symbol".
inline constexpr Symbol kInvalidSymbol = -1;

/// \brief A bidirectional string <-> integer map.
///
/// Relation names and attribute names are interned so that atom
/// comparison and graph construction work on integers.  Not thread-safe;
/// each QuerySet/Database owns its own interner or shares one
/// single-threadedly.
class StringInterner {
 public:
  StringInterner() = default;

  /// Returns the symbol for `text`, interning it on first use.
  Symbol Intern(std::string_view text);

  /// Returns the symbol for `text`, or kInvalidSymbol if never interned.
  Symbol Lookup(std::string_view text) const;

  /// Returns the string for `symbol`; CHECK-fails on invalid symbols.
  const std::string& ToString(Symbol symbol) const;

  /// Whether `symbol` names an interned string.
  bool Contains(Symbol symbol) const {
    return symbol >= 0 && static_cast<size_t>(symbol) < strings_.size();
  }

  /// Number of distinct interned strings.
  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, Symbol> index_;
  std::vector<std::string> strings_;
};

}  // namespace entangled

#endif  // ENTANGLED_COMMON_INTERNER_H_
