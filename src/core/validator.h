#ifndef ENTANGLED_CORE_VALIDATOR_H_
#define ENTANGLED_CORE_VALIDATOR_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"

namespace entangled {

/// \brief Checks Definition 1 for a concrete (subset, assignment) pair:
/// (0) the subset is non-empty, (1) every variable of the subset is
/// assigned, (2) every grounded body atom is a database tuple, (3) the
/// grounded postconditions are a subset of the grounded heads.
///
/// This is the oracle the whole test suite trusts: it shares no code
/// with any solver (no unification, no graphs — just syntactic
/// grounding and lookups).
Status ValidateSolution(const Database& db, const QuerySet& set,
                        const CoordinationSolution& solution);

/// \brief Decides whether `subset` is a coordinating set, returning a
/// witnessing assignment when it is.
///
/// Backtracks over postcondition -> head matchings (within the subset),
/// unifies each matched pair, grounds the combined bodies against the
/// database, and finally assigns any leftover free variables an
/// arbitrary domain value (Definition 1 only requires *some* value from
/// the domain of I).  Worst-case exponential in the number of
/// postconditions — this is the reference semantics, not a production
/// solver.
std::optional<Binding> FindCoordinatingWitness(
    const Database& db, const QuerySet& set,
    const std::vector<QueryId>& subset);

}  // namespace entangled

#endif  // ENTANGLED_CORE_VALIDATOR_H_
