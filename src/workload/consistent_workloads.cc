#include "workload/consistent_workloads.h"

namespace entangled {

ConsistentSchema MakeFlightSchema(const std::string& flights_relation,
                                  const std::string& friends_relation) {
  ConsistentSchema schema;
  schema.thing_relation = flights_relation;
  schema.friends_relation = friends_relation;
  schema.coordination_attrs = {1, 2};  // destination, day
  return schema;
}

Status InstallDistinctFlightsTable(Database* db, const std::string& name,
                                   size_t num_rows) {
  auto relation = db->CreateRelation(
      name, {"fid", "destination", "day", "source", "airline"});
  if (!relation.ok()) return relation.status();
  for (size_t i = 0; i < num_rows; ++i) {
    ENTANGLED_RETURN_IF_ERROR((*relation)->Insert(
        {Value::Int(static_cast<int64_t>(i)),
         Value::Str("city" + std::to_string(i)),
         Value::Str("day" + std::to_string(i)),
         Value::Str("src" + std::to_string(i % 7)),
         Value::Str("air" + std::to_string(i % 3))}));
  }
  return Status::OK();
}

Status InstallFlightsGrid(Database* db, const std::string& name,
                          const std::vector<std::string>& destinations,
                          const std::vector<std::string>& days,
                          size_t flights_per_combo,
                          const std::vector<std::string>& sources,
                          const std::vector<std::string>& airlines) {
  if (destinations.empty() || days.empty() || sources.empty() ||
      airlines.empty()) {
    return Status::InvalidArgument("empty attribute pool for flights grid");
  }
  auto relation = db->CreateRelation(
      name, {"fid", "destination", "day", "source", "airline"});
  if (!relation.ok()) return relation.status();
  int64_t fid = 0;
  for (const std::string& destination : destinations) {
    for (const std::string& day : days) {
      for (size_t i = 0; i < flights_per_combo; ++i) {
        ENTANGLED_RETURN_IF_ERROR((*relation)->Insert(
            {Value::Int(fid), Value::Str(destination), Value::Str(day),
             Value::Str(sources[static_cast<size_t>(fid) % sources.size()]),
             Value::Str(
                 airlines[static_cast<size_t>(fid) % airlines.size()])}));
        ++fid;
      }
    }
  }
  return Status::OK();
}

Status InstallCompleteFriends(Database* db, const std::string& name,
                              const std::vector<std::string>& users) {
  auto relation = db->CreateRelation(name, {"user", "friend"});
  if (!relation.ok()) return relation.status();
  for (const std::string& a : users) {
    for (const std::string& b : users) {
      if (a == b) continue;
      ENTANGLED_RETURN_IF_ERROR(
          (*relation)->Insert({Value::Str(a), Value::Str(b)}));
    }
  }
  return Status::OK();
}

std::vector<std::string> MakeUserNames(size_t n) {
  std::vector<std::string> users;
  users.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    users.push_back("user" + std::to_string(i));
  }
  return users;
}

std::vector<ConsistentQuery> MakeWorstCaseConsistentQueries(
    size_t n, size_t num_attributes) {
  std::vector<ConsistentQuery> queries;
  queries.reserve(n);
  for (const std::string& user : MakeUserNames(n)) {
    ConsistentQuery q;
    q.user = user;
    q.self_spec.assign(num_attributes, std::nullopt);
    q.partners.push_back(PartnerSpec::AnyFriend());
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace entangled
