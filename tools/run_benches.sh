#!/usr/bin/env bash
# Runs every BENCH_JSON-emitting bench and persists its records as
# BENCH_<name>.json at the repo root — one JSON object per line,
# greppable and diffable, so the perf trajectory survives across PRs
# (CI uploads the same files as an artifact).
#
# Usage: tools/run_benches.sh [build_dir]   (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

# Benches that emit BENCH_JSON records (bench_util.h PrintJsonRecord).
benches=(
  bench_eval_hotpath
  bench_incremental_stream
  bench_engine
  bench_scenarios
  bench_sharded_stream
  bench_flush_pipeline
  bench_delta_eval
)

status=0
for bench in "${benches[@]}"; do
  binary="$build_dir/$bench"
  if [[ ! -x "$binary" ]]; then
    echo "SKIP $bench: $binary not built" >&2
    status=1
    continue
  fi
  out="$repo_root/BENCH_${bench#bench_}.json"
  echo "== $bench -> ${out#$repo_root/}"
  # Keep the human-readable output on stderr for the CI log; the
  # BENCH_JSON payloads (tag stripped) land in the committed file.
  # Stage through a temp file so a failing bench (an internal CHECK
  # gate, say) or one that emits no records never truncates the
  # committed baseline, and the remaining benches still run.
  tmp="$(mktemp)"
  if ! "$binary" | tee /dev/stderr | { grep '^BENCH_JSON ' || true; } \
      | sed 's/^BENCH_JSON //' > "$tmp"; then
    echo "FAIL $bench: bench exited non-zero; $out left untouched" >&2
    rm -f "$tmp"
    status=1
    continue
  fi
  if [[ ! -s "$tmp" ]]; then
    echo "FAIL $bench: no BENCH_JSON records emitted; $out left untouched" >&2
    rm -f "$tmp"
    status=1
    continue
  fi
  mv "$tmp" "$out"
done
exit "$status"
