#ifndef ENTANGLED_REDUCTIONS_THEOREM1_H_
#define ENTANGLED_REDUCTIONS_THEOREM1_H_

#include <vector>

#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"
#include "reductions/cnf.h"

namespace entangled {

/// \brief The Theorem-1 construction: reduces 3SAT to Entangled(Qall)
/// over a database holding only the unary relation D = {0, 1}, so every
/// conjunctive query is trivially decidable — the hardness lives
/// entirely in choosing the coordinating set.
///
/// Per formula with clauses C1..Ck over variables x1..xm:
///   Clause-Query : {C1(1),...,Ck(1)}  C(1)            :- ∅
///   xi-Val       : {C(1)}             Ri(x)           :- D(x)
///   xi-True      : {Ri(1)}            ⋀_{xi∈Cj} Cj(1) :- ∅
///   xi-False     : {Ri(0)}            ⋀_{¬xi∈Cj} Cj(1):- ∅
///
/// The formula is satisfiable iff the encoding has a coordinating set
/// (Appendix A).
struct Theorem1Encoding {
  QueryId clause_query;
  std::vector<QueryId> val_queries;    ///< per variable, 1-based offset 0
  std::vector<QueryId> true_queries;   ///< per variable
  std::vector<QueryId> false_queries;  ///< per variable

  /// Reads a truth assignment back from a coordinating set: variable i
  /// is true iff its xi-True query participates (variables mentioned by
  /// neither polarity query default to true, as in the proof of
  /// Theorem 1).
  TruthAssignment DecodeAssignment(const CnfFormula& formula,
                                   const CoordinationSolution& sol) const;
};

/// \brief Builds the Theorem-1 instance: installs D = {0,1} into `*db`
/// (creating relation "D") and appends the queries to `*set`.
Theorem1Encoding EncodeTheorem1(const CnfFormula& formula, QuerySet* set,
                                Database* db);

}  // namespace entangled

#endif  // ENTANGLED_REDUCTIONS_THEOREM1_H_
