#include "algo/generic_solver.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "core/coordination_graph.h"
#include "core/unify.h"
#include "db/evaluator.h"

namespace entangled {
namespace {

struct PendingPost {
  QueryId query;
  size_t post_index;
};

/// Search state shared across the recursion.
struct SearchContext {
  const QuerySet* set;
  const ExtendedCoordinationGraph* ecg;
  const Evaluator* evaluator;
  const Database* db;
  uint64_t budget;
  uint64_t expansions = 0;
  uint64_t unifications = 0;
  bool budget_hit = false;

  std::vector<bool> in_set;
  std::vector<QueryId> chosen;  // insertion order, for rollback
  std::vector<PendingPost> pending;

  std::optional<CoordinationSolution> solution;
};

bool SolveRec(SearchContext* ctx, size_t pending_index,
              const Substitution& subst) {
  if (++ctx->expansions > ctx->budget) {
    ctx->budget_hit = true;
    return false;
  }
  const QuerySet& set = *ctx->set;
  if (pending_index == ctx->pending.size()) {
    // Every postcondition is matched: try to ground the combined body.
    Substitution leaf = subst;
    std::vector<Atom> body;
    std::unordered_set<std::string> seen;
    for (QueryId q : ctx->chosen) {
      for (const Atom& atom : set.query(q).body) {
        Atom applied = leaf.Apply(atom);
        std::string key = applied.ToString();
        if (seen.insert(std::move(key)).second) {
          body.push_back(std::move(applied));
        }
      }
    }
    std::optional<Binding> witness = ctx->evaluator->FindOne(body);
    if (!witness.has_value()) return false;
    std::vector<QueryId> queries = ctx->chosen;
    std::sort(queries.begin(), queries.end());
    std::optional<Binding> assignment =
        CompleteAssignment(*ctx->db, set, queries, &leaf, *witness);
    if (!assignment.has_value()) return false;
    ctx->solution = CoordinationSolution{std::move(queries),
                                         std::move(*assignment)};
    return true;
  }

  const PendingPost item = ctx->pending[pending_index];
  const Atom& post =
      set.query(item.query).postconditions[item.post_index];
  for (size_t e :
       ctx->ecg->EdgesOfPostcondition(item.query, item.post_index)) {
    const ExtendedEdge& edge = ctx->ecg->edges()[e];
    const Atom& head = set.query(edge.to).head[edge.head_index];
    ++ctx->unifications;
    Substitution branch = subst;  // copy-on-branch keeps backtracking safe
    if (!branch.UnifyAtoms(post, head)) continue;
    // Pull the head's owner into the candidate set if new; its own
    // postconditions must then be satisfied too.
    bool added = false;
    size_t pending_before = ctx->pending.size();
    if (!ctx->in_set[static_cast<size_t>(edge.to)]) {
      ctx->in_set[static_cast<size_t>(edge.to)] = true;
      ctx->chosen.push_back(edge.to);
      const EntangledQuery& target = set.query(edge.to);
      for (size_t pi = 0; pi < target.postconditions.size(); ++pi) {
        ctx->pending.push_back({edge.to, pi});
      }
      added = true;
    }
    if (SolveRec(ctx, pending_index + 1, branch)) return true;
    if (added) {
      ctx->pending.resize(pending_before);
      ctx->chosen.pop_back();
      ctx->in_set[static_cast<size_t>(edge.to)] = false;
    }
    if (ctx->budget_hit) return false;
  }
  return false;
}

}  // namespace

GenericSolver::GenericSolver(const Database* db,
                             GenericSolverOptions options)
    : db_(db), options_(options) {
  ENTANGLED_CHECK(db != nullptr);
}

Result<CoordinationSolution> GenericSolver::FindContaining(
    const QuerySet& set, QueryId seed) {
  stats_.Reset();
  if (seed < 0 || static_cast<size_t>(seed) >= set.size()) {
    return Status::InvalidArgument("unknown seed query ", seed);
  }
  WallTimer timer;
  ExtendedCoordinationGraph ecg(set);
  Evaluator evaluator(db_);
  const uint64_t db_before = db_->stats().conjunctive_queries;

  SearchContext ctx;
  ctx.set = &set;
  ctx.ecg = &ecg;
  ctx.evaluator = &evaluator;
  ctx.db = db_;
  ctx.budget = options_.max_expansions;
  ctx.in_set.assign(set.size(), false);
  ctx.in_set[static_cast<size_t>(seed)] = true;
  ctx.chosen.push_back(seed);
  const EntangledQuery& query = set.query(seed);
  for (size_t pi = 0; pi < query.postconditions.size(); ++pi) {
    ctx.pending.push_back({seed, pi});
  }
  bool found = SolveRec(&ctx, 0, Substitution(set.num_vars()));

  stats_.unifications = ctx.unifications;
  stats_.db_queries = db_->stats().conjunctive_queries - db_before;
  stats_.graph_nodes = set.size();
  stats_.graph_edges = ecg.edges().size();
  stats_.total_seconds = timer.ElapsedSeconds();
  if (found) return std::move(*ctx.solution);
  if (ctx.budget_hit) {
    return Status::OutOfRange("search budget of ", options_.max_expansions,
                              " expansions exhausted");
  }
  return Status::NotFound("no coordinating set contains query ",
                          set.query(seed).name);
}

Result<CoordinationSolution> GenericSolver::FindAny(const QuerySet& set) {
  if (set.empty()) {
    return Status::NotFound("no coordinating set: the query set is empty");
  }
  SolverStats accumulated;
  WallTimer timer;
  for (QueryId seed = 0; seed < static_cast<QueryId>(set.size()); ++seed) {
    auto result = FindContaining(set, seed);
    accumulated.db_queries += stats_.db_queries;
    accumulated.unifications += stats_.unifications;
    if (result.ok() || !result.status().IsNotFound()) {
      accumulated.graph_nodes = stats_.graph_nodes;
      accumulated.graph_edges = stats_.graph_edges;
      accumulated.total_seconds = timer.ElapsedSeconds();
      stats_ = accumulated;
      return result;
    }
  }
  accumulated.total_seconds = timer.ElapsedSeconds();
  stats_ = accumulated;
  return Status::NotFound("no coordinating set exists for this instance");
}

}  // namespace entangled
