#include "common/strings.h"

#include <cctype>

namespace entangled {

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace entangled
