// Shared scaffolding for the narrated examples, built on the session
// front door (api/session.h): every example that coordinates general
// entangled queries drives them through ClientSessions — one session
// per user, answers consumed from the pull-based PollEvents() drain —
// exactly the surface a real multi-tenant deployment would use.  The
// consistent-algorithm examples (movie night, concert tour, class
// enrollment) share the database/printing helpers.

#ifndef ENTANGLED_EXAMPLES_EXAMPLE_COMMON_H_
#define ENTANGLED_EXAMPLES_EXAMPLE_COMMON_H_

#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/session.h"
#include "common/logging.h"
#include "core/validator.h"
#include "db/database.h"
#include "system/engine.h"

namespace entangled {
namespace examples {

/// Inserts a tuple or aborts the demo (examples have no error story
/// beyond "the walkthrough itself is broken").
inline void InsertOrDie(Relation* relation, Tuple tuple) {
  Status status = relation->Insert(std::move(tuple));
  ENTANGLED_CHECK(status.ok()) << status.ToString();
}

inline void PrintBanner(const std::string& title) {
  std::cout << "== " << title << " ==\n\n";
}

/// "Never trust a solver": prints the independent Definition-1 verdict
/// and converts it to a process exit code.
inline int ReportValidation(const Status& status) {
  std::cout << "\nindependent validation: " << status << "\n";
  return status.ok() ? 0 : 1;
}

/// The session-API bundle every entangled-query example uses: one
/// streaming CoordinationEngine fronted by a SessionManager, one
/// ClientSession per user, answers drained with PollEvents().
class ExampleFrontDoor {
 public:
  explicit ExampleFrontDoor(const Database* db) : db_(db) {
    EngineOptions options;
    options.evaluate_every = 0;  // admit everyone, then coordinate once
    engine_ = std::make_unique<CoordinationEngine>(db, options);
    manager_ = std::make_unique<SessionManager>(engine_.get());
  }

  /// One session per user.
  ClientSession* Connect(const std::string& user) {
    SessionOptions options;
    options.label = user;
    return manager_->Open(std::move(options));
  }

  /// Submits one query text, narrating the typed outcome; aborts the
  /// demo on rejection.
  QueryId SubmitOrDie(ClientSession* session, const std::string& text) {
    SubmitOutcome outcome = session->Submit(text);
    ENTANGLED_CHECK(outcome.ok())
        << session->label() << "'s query rejected ("
        << RejectReasonName(outcome.reason) << "): " << outcome.message;
    std::cout << "  " << session->label() << " submits: " << text << "\n";
    return outcome.id;
  }

  /// Evaluates everything pending; returns delivered coordinating sets.
  size_t Coordinate() { return manager_->Flush(); }

  /// Drains every session's event queue, printing each user's answers
  /// off the self-contained Delivery, and re-validates every delivered
  /// set against Definition 1.  Returns OK when every delivery (if any)
  /// validated.
  Status PrintInboxes() {
    for (SessionId id = 0;
         id < static_cast<SessionId>(manager_->num_sessions()); ++id) {
      ClientSession* s = manager_->Find(id);
      std::vector<SessionEvent> events = s->PollEvents();
      if (events.empty()) {
        std::cout << "  " << s->label() << ": no coordination yet ("
                  << s->num_pending() << " request(s) still pending)\n";
        continue;
      }
      for (const SessionEvent& event : events) {
        const Delivery& delivery = *event.delivery;
        std::cout << "  " << s->label() << " coordinates with {";
        bool first = true;
        for (const DeliveredQuery& q : delivery.queries) {
          std::cout << (first ? "" : ", ") << q.name;
          first = false;
        }
        std::cout << "}:\n";
        for (QueryId own : event.own_queries) {
          for (const Atom& answer : delivery.Find(own)->answers) {
            std::cout << "    answer: " << answer << "\n";
          }
        }
        if (Status valid = ValidateSolution(
                *db_, engine_->queries(), SolutionFromDelivery(delivery));
            !valid.ok()) {
          return valid;
        }
      }
    }
    return Status::OK();
  }

  SessionManager& manager() { return *manager_; }
  const QuerySet& master() const { return engine_->queries(); }

 private:
  const Database* db_;
  std::unique_ptr<CoordinationEngine> engine_;
  std::unique_ptr<SessionManager> manager_;
};

}  // namespace examples
}  // namespace entangled

#endif  // ENTANGLED_EXAMPLES_EXAMPLE_COMMON_H_
