#include "algo/consistent.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/timer.h"

namespace entangled {

bool ConsistentSolution::ContainsQuery(size_t query_index) const {
  return FindMember(query_index) != nullptr;
}

const ConsistentMember* ConsistentSolution::FindMember(
    size_t query_index) const {
  for (const ConsistentMember& member : members) {
    if (member.query_index == query_index) return &member;
  }
  return nullptr;
}

ConsistentCoordinator::ConsistentCoordinator(const Database* db,
                                             ConsistentSchema schema,
                                             ConsistentOptions options)
    : db_(db), schema_(std::move(schema)), options_(options) {
  ENTANGLED_CHECK(db != nullptr);
}

Status ConsistentCoordinator::ValidateInput(
    const std::vector<ConsistentQuery>& queries) const {
  auto thing = db_->Get(schema_.thing_relation);
  if (!thing.ok()) return thing.status();
  auto friends = db_->Get(schema_.friends_relation);
  if (!friends.ok()) return friends.status();
  if ((*friends)->arity() != 2) {
    return Status::InvalidArgument("friends relation ",
                                   schema_.friends_relation,
                                   " must be binary (user, friend)");
  }
  const size_t num_attrs = (*thing)->arity() - 1;
  if (schema_.coordination_attrs.empty()) {
    return Status::InvalidArgument(
        "at least one coordination attribute is required");
  }
  for (size_t column : schema_.coordination_attrs) {
    if (column < 1 || column > num_attrs) {
      return Status::InvalidArgument(
          "coordination attribute column ", column,
          " out of range (1..", num_attrs, "); column 0 is the key");
    }
  }
  std::unordered_set<std::string> users;
  for (size_t i = 0; i < queries.size(); ++i) {
    const ConsistentQuery& q = queries[i];
    if (q.user.empty()) {
      return Status::InvalidArgument("query #", i, " has an empty user");
    }
    if (!users.insert(q.user).second) {
      return Status::InvalidArgument(
          "user ", q.user,
          " submitted more than one query (§5 assumes one each)");
    }
    if (q.self_spec.size() != num_attrs) {
      return Status::InvalidArgument(
          "query of ", q.user, " specifies ", q.self_spec.size(),
          " attributes but ", schema_.thing_relation, " has ", num_attrs);
    }
    for (const PartnerSpec& partner : q.partners) {
      if (partner.kind == PartnerSpec::Kind::kNamedUser) {
        if (partner.user == q.user) {
          return Status::InvalidArgument("user ", q.user,
                                         " cannot partner with themselves");
        }
        if (partner.user.empty()) {
          return Status::InvalidArgument("query of ", q.user,
                                         " has an empty constant partner");
        }
      } else {
        if (partner.min_friends < 1) {
          return Status::InvalidArgument("query of ", q.user,
                                         " requires min_friends >= 1");
        }
        if (!partner.relation.empty()) {
          auto extra = db_->Get(partner.relation);
          if (!extra.ok()) return extra.status();
          if ((*extra)->arity() != 2) {
            return Status::InvalidArgument(
                "partner relation ", partner.relation,
                " must be binary (user, friend)");
          }
        }
      }
    }
  }
  return Status::OK();
}

Result<ConsistentSolution> ConsistentCoordinator::Solve(
    const std::vector<ConsistentQuery>& queries) {
  stats_.Reset();
  value_outcomes_.clear();
  ENTANGLED_RETURN_IF_ERROR(ValidateInput(queries));
  if (queries.empty()) {
    return Status::NotFound("no coordinating set: no queries submitted");
  }
  WallTimer total_timer;
  const Relation& thing = **db_->Get(schema_.thing_relation);
  const size_t n = queries.size();
  const std::vector<size_t>& coord = schema_.coordination_attrs;

  std::unordered_map<std::string, size_t> user_index;
  for (size_t i = 0; i < n; ++i) user_index.emplace(queries[i].user, i);

  // ---- Step 1: option lists V(q), with a witness row per value -------
  // options[i] maps an A-tuple v to the first S-row that matches q_i's
  // self constraints with coordination attributes v.
  using ValueKey = std::vector<Value>;
  std::vector<std::unordered_map<ValueKey, RowId, VectorHash>> options(n);
  std::vector<ValueKey> value_order;  // V(Q), deterministic order
  std::unordered_set<ValueKey, VectorHash> value_seen;

  auto coord_key_of_row = [&](RowView row) {
    ValueKey key;
    key.reserve(coord.size());
    for (size_t c : coord) key.push_back(row[c]);
    return key;
  };
  auto self_pattern = [&](const ConsistentQuery& q) {
    std::vector<std::optional<Value>> pattern(thing.arity());
    for (size_t a = 0; a < q.self_spec.size(); ++a) {
      pattern[a + 1] = q.self_spec[a];
    }
    return pattern;
  };

  for (size_t i = 0; i < n; ++i) {
    const std::vector<std::optional<Value>> pattern =
        self_pattern(queries[i]);
    ++stats_.db_queries;  // one "retrieve my options" query per user
    ++db_->stats().enumerate_queries;
    auto consider = [&](RowId row_id) {
      ValueKey key = coord_key_of_row(thing.row(row_id));
      options[static_cast<size_t>(i)].try_emplace(key, row_id);
      if (value_seen.insert(key).second) value_order.push_back(key);
    };
    if (options_.use_indexes) {
      for (RowId row_id : thing.SelectWhere(pattern)) consider(row_id);
    } else {
      for (RowId row_id = 0; row_id < thing.size(); ++row_id) {
        bool match = true;
        RowView row = thing.row(row_id);
        for (size_t c = 0; c < pattern.size() && match; ++c) {
          if (pattern[c].has_value() && row[c] != *pattern[c]) match = false;
        }
        if (match) consider(row_id);
      }
    }
  }
  stats_.candidate_values = value_order.size();

  // ---- Step 2: pruned coordination graph ----------------------------
  // Nodes: queries with V(q) nonempty.  Constant partners resolve to
  // query indices; friends requirements resolve, per their friendship
  // relation, to the candidate partner queries allowed by it.
  WallTimer graph_timer;
  std::vector<bool> node_alive(n);
  for (size_t i = 0; i < n; ++i) node_alive[i] = !options[i].empty();
  stats_.graph_nodes = n;

  constexpr size_t kNoQuery = static_cast<size_t>(-1);
  struct ResolvedPartner {
    bool is_friends;
    int min_friends;            // kFriends only
    size_t query_index;         // kNamedUser only; kNoQuery if absent
    std::vector<size_t> edges;  // kFriends only: candidate partners
  };
  std::vector<std::vector<ResolvedPartner>> resolved(n);
  // Friend lists are fetched once per (user, relation) pair — §6.2's
  // "second type of query".
  std::unordered_map<std::string, std::vector<size_t>> friend_cache;

  auto friends_of = [&](const std::string& user,
                        const std::string& relation_name)
      -> const std::vector<size_t>& {
    std::string cache_key = relation_name;
    cache_key.push_back('\0');
    cache_key += user;
    auto it = friend_cache.find(cache_key);
    if (it != friend_cache.end()) return it->second;
    ++stats_.db_queries;
    ++db_->stats().enumerate_queries;
    std::vector<size_t> result;
    const Relation& relation = **db_->Get(relation_name);
    for (RowId row_id : relation.Probe(0, Value::Str(user))) {
      const Value& name = relation.row(row_id)[1];
      if (!name.is_string()) continue;
      auto uit = user_index.find(name.AsString());
      if (uit == user_index.end()) continue;
      size_t j = uit->second;
      if (!node_alive[j] || queries[j].user == user) continue;
      if (std::find(result.begin(), result.end(), j) == result.end()) {
        result.push_back(j);
      }
    }
    std::sort(result.begin(), result.end());
    return friend_cache.emplace(std::move(cache_key), std::move(result))
        .first->second;
  };

  for (size_t i = 0; i < n; ++i) {
    const ConsistentQuery& q = queries[i];
    for (const PartnerSpec& partner : q.partners) {
      ResolvedPartner entry;
      if (partner.kind == PartnerSpec::Kind::kNamedUser) {
        entry.is_friends = false;
        entry.min_friends = 0;
        auto it = user_index.find(partner.user);
        size_t j = it == user_index.end() ? kNoQuery : it->second;
        if (j != kNoQuery && !node_alive[j]) j = kNoQuery;
        entry.query_index = j;
        if (j != kNoQuery) ++stats_.graph_edges;
      } else {
        entry.is_friends = true;
        entry.min_friends = partner.min_friends;
        entry.query_index = kNoQuery;
        if (node_alive[i]) {
          const std::string& relation_name = partner.relation.empty()
                                                 ? schema_.friends_relation
                                                 : partner.relation;
          entry.edges = friends_of(q.user, relation_name);
          stats_.graph_edges += entry.edges.size();
        }
      }
      resolved[i].push_back(std::move(entry));
    }
  }
  stats_.graph_seconds = graph_timer.ElapsedSeconds();

  // ---- Steps 3-4: per-value subgraphs and cleaning -------------------
  // CleanValue runs the paper's cleaning phase for one candidate value
  // into a caller-provided buffer; independent across values, so the
  // loop parallelizes trivially (§6.2's future-work enhancement).
  std::atomic<uint64_t> cleaning_rounds{0};
  auto clean_value = [&](const ValueKey& v,
                         std::vector<bool>* in_gv) -> size_t {
    for (size_t i = 0; i < n; ++i) {
      (*in_gv)[i] = node_alive[i] && options[i].count(v) > 0;
    }
    uint64_t rounds = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      ++rounds;
      for (size_t i = 0; i < n; ++i) {
        if (!(*in_gv)[i]) continue;
        bool satisfied = true;
        for (const ResolvedPartner& partner : resolved[i]) {
          if (partner.is_friends) {
            int surviving = 0;
            for (size_t j : partner.edges) {
              if ((*in_gv)[j] && ++surviving >= partner.min_friends) break;
            }
            if (surviving < partner.min_friends) satisfied = false;
          } else {
            if (partner.query_index == kNoQuery ||
                !(*in_gv)[partner.query_index]) {
              satisfied = false;
            }
          }
          if (!satisfied) break;
        }
        if (!satisfied) {
          (*in_gv)[i] = false;
          changed = true;
        }
      }
    }
    cleaning_rounds.fetch_add(rounds, std::memory_order_relaxed);
    size_t survivors = 0;
    for (size_t i = 0; i < n; ++i) {
      if ((*in_gv)[i]) ++survivors;
    }
    return survivors;
  };

  const size_t num_values = value_order.size();
  std::vector<size_t> sizes(num_values, 0);
  const int threads =
      std::max(1, std::min<int>(options_.num_threads,
                                static_cast<int>(num_values)));
  if (threads <= 1) {
    std::vector<bool> in_gv(n);
    for (size_t vi = 0; vi < num_values; ++vi) {
      sizes[vi] = clean_value(value_order[vi], &in_gv);
    }
  } else {
    // Static partition: worker t handles values [t*chunk, ...).  The
    // shared inputs (options, resolved, node_alive) are read-only here;
    // each worker owns its buffer and output slots.
    std::vector<std::thread> workers;
    const size_t chunk = (num_values + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      const size_t begin = static_cast<size_t>(t) * chunk;
      const size_t end = std::min(num_values, begin + chunk);
      if (begin >= end) break;
      workers.emplace_back([&, begin, end] {
        std::vector<bool> in_gv(n);
        for (size_t vi = begin; vi < end; ++vi) {
          sizes[vi] = clean_value(value_order[vi], &in_gv);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  // Deterministic selection regardless of thread count: first value in
  // V(Q) order with the largest surviving set.
  std::optional<ValueKey> best_value;
  size_t best_size = 0;
  for (size_t vi = 0; vi < num_values; ++vi) {
    value_outcomes_.emplace_back(value_order[vi], sizes[vi]);
    if (sizes[vi] > best_size) {
      best_size = sizes[vi];
      best_value = value_order[vi];
    }
  }
  std::vector<size_t> best_survivors;
  if (best_value.has_value()) {
    std::vector<bool> in_gv(n);
    clean_value(*best_value, &in_gv);  // recompute the winner's members
    for (size_t i = 0; i < n; ++i) {
      if (in_gv[i]) best_survivors.push_back(i);
    }
  }
  stats_.cleaning_rounds = cleaning_rounds.load();

  if (!best_value.has_value()) {
    stats_.total_seconds = total_timer.ElapsedSeconds();
    return Status::NotFound(
        "no coordinating set in which all queries agree on the "
        "coordination attributes (and by Proposition 1, none at all)");
  }

  // ---- Step 5: ground the winning set --------------------------------
  ConsistentSolution solution;
  solution.agreed_value = *best_value;
  std::vector<bool> surviving(n, false);
  for (size_t i : best_survivors) surviving[i] = true;
  for (size_t i : best_survivors) {
    ConsistentMember member;
    member.query_index = i;
    // One final per-member query fetches the concrete tuple (§6.2's
    // third query type); the witness row was recorded during step 1.
    ++stats_.db_queries;
    ++db_->stats().conjunctive_queries;
    member.self_row = options[i].at(*best_value);
    for (const ResolvedPartner& partner : resolved[i]) {
      std::vector<size_t> chosen;
      if (partner.is_friends) {
        for (size_t j : partner.edges) {
          if (!surviving[j]) continue;
          chosen.push_back(j);
          if (static_cast<int>(chosen.size()) >= partner.min_friends) break;
        }
        ENTANGLED_CHECK_GE(static_cast<int>(chosen.size()),
                           partner.min_friends)
            << "cleaning left an unsatisfiable friends requirement";
      } else {
        ENTANGLED_CHECK(partner.query_index != kNoQuery &&
                        surviving[partner.query_index])
            << "cleaning left an unsatisfiable constant partner";
        chosen.push_back(partner.query_index);
      }
      member.partner_queries.push_back(std::move(chosen));
    }
    solution.members.push_back(std::move(member));
  }
  stats_.total_seconds = total_timer.ElapsedSeconds();
  return solution;
}

ConsistentConversion ToEntangledQueries(
    const ConsistentSchema& schema,
    const std::vector<ConsistentQuery>& queries, QuerySet* set) {
  ENTANGLED_CHECK(set != nullptr);
  ConsistentConversion conversion;
  std::vector<bool> is_coord;  // per attribute column of S (1-based)

  for (size_t i = 0; i < queries.size(); ++i) {
    const ConsistentQuery& q = queries[i];
    const size_t num_attrs = q.self_spec.size();
    is_coord.assign(num_attrs + 1, false);
    for (size_t c : schema.coordination_attrs) is_coord[c] = true;

    ConsistentConversion::QueryVars vars;
    EntangledQuery eq;
    eq.name = "q_" + q.user;

    // Self atom S(x, a^x_1 ... a^x_d).
    vars.self_key = set->NewVar("x_" + q.user);
    std::vector<Term> self_terms;
    self_terms.push_back(Term::Var(vars.self_key));
    vars.self_attrs.resize(num_attrs);
    std::vector<Term> shared_coord_terms(num_attrs + 1);  // by S column
    for (size_t a = 0; a < num_attrs; ++a) {
      const size_t column = a + 1;
      Term term;
      if (q.self_spec[a].has_value()) {
        term = Term::Const(*q.self_spec[a]);
      } else {
        VarId v = set->NewVar("a_" + q.user + "_" + std::to_string(column));
        vars.self_attrs[a] = v;
        term = Term::Var(v);
      }
      if (is_coord[column]) shared_coord_terms[column] = term;
      self_terms.push_back(term);
    }
    eq.body.emplace_back(schema.thing_relation, std::move(self_terms));

    // Head R(x, User).
    eq.head.emplace_back(
        "R", std::vector<Term>{Term::Var(vars.self_key), Term::Str(q.user)});

    // Partner requirements: each emitted slot contributes one
    // postcondition R(y_i, partner) and a body atom S(y_i, ...); friend
    // slots additionally bind their partner through F(User, f).
    for (size_t p = 0; p < q.partners.size(); ++p) {
      const PartnerSpec& partner = q.partners[p];
      const int slots = partner.is_friend_variable() ? partner.min_friends
                                                     : 1;
      std::vector<size_t> slot_indices;
      for (int s = 0; s < slots; ++s) {
        ConsistentConversion::PartnerVars pvars;
        const std::string suffix =
            "_" + q.user + "_" + std::to_string(p) + "_" +
            std::to_string(s);
        pvars.key = set->NewVar("y" + suffix);
        pvars.attrs.resize(num_attrs);

        Term partner_term;
        if (partner.is_friend_variable()) {
          VarId f = set->NewVar("f" + suffix);
          pvars.friend_name = f;
          partner_term = Term::Var(f);
          const std::string& relation_name = partner.relation.empty()
                                                 ? schema.friends_relation
                                                 : partner.relation;
          eq.body.emplace_back(
              relation_name,
              std::vector<Term>{Term::Str(q.user), Term::Var(f)});
        } else {
          partner_term = Term::Str(partner.user);
        }
        eq.postconditions.emplace_back(
            "R", std::vector<Term>{Term::Var(pvars.key), partner_term});

        std::vector<Term> partner_terms;
        partner_terms.push_back(Term::Var(pvars.key));
        for (size_t a = 0; a < num_attrs; ++a) {
          const size_t column = a + 1;
          if (is_coord[column]) {
            // A-coordinating: same term as the user's own (Def. 7).
            partner_terms.push_back(shared_coord_terms[column]);
          } else {
            // A-non-coordinating: fresh distinct variable (Def. 8).
            VarId w =
                set->NewVar("w" + suffix + "_" + std::to_string(column));
            pvars.attrs[a] = w;
            partner_terms.push_back(Term::Var(w));
          }
        }
        eq.body.emplace_back(schema.thing_relation,
                             std::move(partner_terms));
        slot_indices.push_back(vars.partners.size());
        vars.partners.push_back(std::move(pvars));
      }
      vars.spec_slots.push_back(std::move(slot_indices));
    }
    conversion.query_ids.push_back(set->AddQuery(std::move(eq)));
    conversion.vars.push_back(std::move(vars));
  }
  return conversion;
}

CoordinationSolution ToCoordinationSolution(
    const Database& db, const ConsistentSchema& schema,
    const std::vector<ConsistentQuery>& queries,
    const ConsistentConversion& conversion,
    const ConsistentSolution& solution) {
  const Relation& thing = **db.Get(schema.thing_relation);
  CoordinationSolution result;
  for (const ConsistentMember& member : solution.members) {
    const size_t i = member.query_index;
    const ConsistentConversion::QueryVars& vars = conversion.vars[i];
    result.queries.push_back(conversion.query_ids[i]);
    RowView self_row = thing.row(member.self_row);
    result.assignment.emplace(vars.self_key, self_row[0]);
    for (size_t a = 0; a < vars.self_attrs.size(); ++a) {
      if (vars.self_attrs[a].has_value()) {
        result.assignment.emplace(*vars.self_attrs[a], self_row[a + 1]);
      }
    }
    ENTANGLED_CHECK_EQ(member.partner_queries.size(),
                       vars.spec_slots.size());
    for (size_t p = 0; p < vars.spec_slots.size(); ++p) {
      const std::vector<size_t>& slots = vars.spec_slots[p];
      const std::vector<size_t>& chosen = member.partner_queries[p];
      ENTANGLED_CHECK_GE(chosen.size(), slots.size())
          << "fewer chosen partners than emitted slots";
      for (size_t s = 0; s < slots.size(); ++s) {
        const ConsistentConversion::PartnerVars& pvars =
            vars.partners[slots[s]];
        const size_t j = chosen[s];
        const ConsistentMember* partner_member = solution.FindMember(j);
        ENTANGLED_CHECK(partner_member != nullptr)
            << "partner query " << j << " missing from the solution";
        RowView partner_row = thing.row(partner_member->self_row);
        result.assignment.emplace(pvars.key, partner_row[0]);
        if (pvars.friend_name.has_value()) {
          result.assignment.emplace(*pvars.friend_name,
                                    Value::Str(queries[j].user));
        }
        for (size_t a = 0; a < pvars.attrs.size(); ++a) {
          if (pvars.attrs[a].has_value()) {
            result.assignment.emplace(*pvars.attrs[a],
                                      partner_row[a + 1]);
          }
        }
      }
    }
  }
  std::sort(result.queries.begin(), result.queries.end());
  return result;
}

}  // namespace entangled
