// Ablation A2 — hash-index-backed option lists vs full scans.
//
// The Consistent Coordination Algorithm computes V(q) — the candidate
// coordination values per query — once per query.  With indexes
// enabled, constrained queries probe the relation's lazily-built hash
// indexes; with indexes disabled every V(q) is a full table scan.  On
// the Figure-7 worst case (no constraints) both modes must scan, so
// this bench pins HALF the queries to a single destination, where the
// index pays off.

#include <benchmark/benchmark.h>

#include <memory>

#include "algo/consistent.h"
#include "bench_util.h"
#include "common/logging.h"
#include "workload/consistent_workloads.h"

namespace entangled {
namespace {

constexpr size_t kNumQueries = 50;

struct Setup {
  std::unique_ptr<Database> db;
  std::vector<ConsistentQuery> queries;
};

Setup MakeSetup(size_t table_rows) {
  Setup setup;
  setup.db = std::make_unique<Database>();
  ENTANGLED_CHECK(
      InstallDistinctFlightsTable(setup.db.get(), "Flights", table_rows)
          .ok());
  ENTANGLED_CHECK(InstallCompleteFriends(setup.db.get(), "Friends",
                                         MakeUserNames(kNumQueries))
                      .ok());
  setup.queries = MakeWorstCaseConsistentQueries(kNumQueries, 4);
  // Every user pins destination "city0".  |V(Q)| collapses to one
  // value, making the cleaning phase trivial and isolating the V(q)
  // computation — the phase the index accelerates.
  for (size_t i = 0; i < kNumQueries; ++i) {
    setup.queries[i].self_spec[0] = Value::Str("city0");
  }
  return setup;
}

double RunMode(const Setup& setup, bool use_indexes) {
  ConsistentOptions options;
  options.use_indexes = use_indexes;
  return benchutil::MeanMillis(3, [&] {
    ConsistentCoordinator coordinator(
        setup.db.get(), MakeFlightSchema("Flights", "Friends"), options);
    auto result = coordinator.Solve(setup.queries);
    ENTANGLED_CHECK(result.ok()) << result.status();
  });
}

void PrintPaperSeries() {
  benchutil::PrintSeriesHeader(
      "Ablation A2: consistent algorithm with indexed vs full-scan "
      "option lists (50 queries, all pinned to one destination)",
      {"table_rows", "indexed_ms", "scan_ms", "speedup"});
  for (size_t rows : {200, 400, 600, 800, 1000}) {
    Setup setup = MakeSetup(rows);
    double indexed = RunMode(setup, /*use_indexes=*/true);
    double scan = RunMode(setup, /*use_indexes=*/false);
    benchutil::PrintRow({static_cast<double>(rows), indexed, scan,
                         indexed > 0 ? scan / indexed : 0.0});
  }
  benchutil::PrintNote(
      "expected: indexed time stays flat (hash probes), scan time grows "
      "linearly with the table");
}

void BM_ConsistentIndexed(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<size_t>(state.range(0)));
  ConsistentOptions options;
  options.use_indexes = state.range(1) != 0;
  for (auto _ : state) {
    ConsistentCoordinator coordinator(
        setup.db.get(), MakeFlightSchema("Flights", "Friends"), options);
    benchmark::DoNotOptimize(coordinator.Solve(setup.queries).ok());
  }
}
BENCHMARK(BM_ConsistentIndexed)
    ->Args({1000, 1})
    ->Args({1000, 0});

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
