// The tier-1 stress gate (registered with ctest as `stress_smoke`):
// a fixed-seed sweep of generated scenarios across all four topologies
// and several knob profiles, each differentially verified — the
// incremental engine at flush_threads 1 and 4 *and* the sharded front
// door at shard-pool threads 1 and 4 against the from-scratch oracle —
// with witness validation, EngineStats invariants, and metamorphic
// re-runs.  Kept under ~30 s; the deep sweep lives in
// stress_long_test.cc.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/stress_harness.h"
#include "workload/generator.h"

namespace entangled {
namespace {

/// One knob profile applied across topologies and seeds.
struct Profile {
  const char* name;
  void (*apply)(GeneratorOptions*);
};

const Profile kProfiles[] = {
    {"default", [](GeneratorOptions*) {}},
    {"cancel_heavy",
     [](GeneratorOptions* o) {
       o->cancel_rate = 0.4;
       o->unsafe_rate = 0.3;
     }},
    {"batch_heavy",
     [](GeneratorOptions* o) {
       o->batch_rate = 0.8;
       o->max_batch = 6;
       o->eval_every_rate = 0.2;
     }},
    {"bridged",
     [](GeneratorOptions* o) {
       o->sharing_density = 0.6;
       o->min_group = 3;
     }},
    {"wide_schema",
     [](GeneratorOptions* o) {
       o->num_relations = 5;
       o->min_arity = 1;
       o->max_arity = 4;
       o->max_body_atoms = 3;
       o->stuck_body_rate = 0.2;
     }},
    // Answer-relation namespace widths for the sharded front door: one
    // shard per group is the default elsewhere (relation_partitions=0);
    // these profiles force the all-merge pathological case, a few wide
    // relation groups, and a fine partitioning, with cancels and
    // bridges so shards merge, migrate, and GC mid-stream.
    {"all_merge",
     [](GeneratorOptions* o) {
       o->relation_partitions = 1;
       o->cancel_rate = 0.2;
     }},
    {"partitioned_4",
     [](GeneratorOptions* o) {
       o->relation_partitions = 4;
       o->sharing_density = 0.4;
       o->cancel_rate = 0.2;
     }},
    {"partitioned_16",
     [](GeneratorOptions* o) {
       o->relation_partitions = 16;
       o->batch_rate = 0.5;
     }},
    // Merge churn: every 3rd query bridges the two most recent earlier
    // groups, so k-way shard merges fire constantly — the hot path of
    // the small-into-large migration (and its rebuild-merge baseline,
    // which the harness crosses in on every scenario).
    {"bridge_storm",
     [](GeneratorOptions* o) {
       o->bridge_storm = 3;
       o->min_group = 3;
       o->cancel_rate = 0.2;
     }},
};

TEST(StressSmoke, SweepAllTopologies) {
  StressOptions stress;
  // Every smoke scenario also runs the kill-and-rehydrate differential
  // (durable-wrapped incremental + sharded variants crashed mid-stream
  // and recovered from disk); the modulo in the harness turns this one
  // knob into a stream-dependent crash point per scenario.
  stress.crash_at_event = 11;
  StressHarness harness(stress);
  size_t scenarios = 0;
  size_t total_deliveries = 0;
  for (GraphTopology topology : AllTopologies()) {
    for (const Profile& profile : kProfiles) {
      for (uint64_t seed : {1u, 2u}) {
        GeneratorOptions options;
        options.seed = 1000 * static_cast<uint64_t>(topology) +
                       100 * (&profile - kProfiles) + seed;
        options.topology = topology;
        options.num_queries = 24;
        profile.apply(&options);
        StressReport report = harness.RunScenario(options);
        EXPECT_TRUE(report.ok)
            << TopologyName(topology) << "/" << profile.name
            << " seed=" << options.seed << ": " << report.failure << "\n"
            << report.reproduction;
        ++scenarios;
        total_deliveries += report.deliveries;
      }
    }
  }
  // The acceptance bar: >= 20 distinct seeded scenarios over >= 4
  // topologies, all divergence-free.
  EXPECT_GE(scenarios, 20u);
  EXPECT_EQ(AllTopologies().size(), 4u);
  // The sweep must actually exercise deliveries, not just stuck sets.
  EXPECT_GT(total_deliveries, 0u);
  std::printf("stress_smoke: %zu scenarios, %zu oracle deliveries\n",
              scenarios, total_deliveries);
}

/// The quota-armed profile (tier-1 typed-rejection coverage): every
/// scenario additionally replays through sessions holding a tight
/// per-session pending quota.  The harness requires each bounce to be a
/// typed kQuotaPending outcome counted in the metrics snapshot (no
/// exceptions, no silent drops) and the accepted queries' delivery
/// stream to be byte-identical to an oracle fed only the accepted
/// submissions.
TEST(StressSmoke, QuotaArmedDifferential) {
  StressOptions stress;
  stress.quota_max_session_pending = 3;
  // The quota overlay is the subject; skip the crossings that only
  // re-verify engine internals to keep the tier-1 budget.
  stress.run_metamorphic = false;
  stress.cross_delta_eval = false;
  StressHarness harness(stress);

  size_t scenarios = 0;
  size_t total_bounces = 0;
  for (GraphTopology topology : AllTopologies()) {
    for (uint64_t seed : {1u, 2u}) {
      GeneratorOptions options;
      options.seed = 9000 + 100 * static_cast<uint64_t>(topology) + seed;
      options.topology = topology;
      options.num_queries = 24;
      // Stuck-heavy streams build the pending mass that trips the quota.
      options.stuck_body_rate = 0.3;
      options.cancel_rate = 0.2;
      StressReport report = harness.RunScenario(options);
      EXPECT_TRUE(report.ok)
          << TopologyName(topology) << " seed=" << options.seed << ": "
          << report.failure << "\n"
          << report.reproduction;
      ++scenarios;
      total_bounces += report.quota_bounces;
    }
  }
  EXPECT_GE(scenarios, 8u);
  // The sweep must actually bounce submissions, or the quota paths
  // went untested.
  EXPECT_GT(total_bounces, 0u);
  std::printf("stress_smoke: quota-armed %zu scenarios, %zu bounces\n",
              scenarios, total_bounces);
}

/// Crash-point sweep: one cancel-and-batch-heavy scenario killed and
/// rehydrated at many distinct event indices — including 0 (crash
/// before anything, recover from the genesis snapshot) and past-the-end
/// (crash after the last event, recover, deliver nothing new).  Each
/// recovery must resume delivery sequences and reproduce the oracle
/// stream byte for byte.
TEST(StressSmoke, CrashPointSweep) {
  for (size_t crash_at : {1u, 3u, 7u, 16u, 29u, 53u}) {
    StressOptions stress;
    stress.crash_at_event = crash_at;
    // The durability overlay is the subject; skip the crossings that
    // only re-verify engine internals to keep the tier-1 budget.
    stress.run_metamorphic = false;
    stress.cross_delta_eval = false;
    stress.cross_rebuild_merges = false;
    stress.session_count = 0;
    StressHarness harness(stress);
    GeneratorOptions options;
    options.seed = 4242;
    options.topology = GraphTopology::kErdosRenyi;
    options.num_queries = 24;
    options.cancel_rate = 0.3;
    options.batch_rate = 0.4;
    options.eval_every_rate = 0.2;
    StressReport report = harness.RunScenario(options);
    EXPECT_TRUE(report.ok) << "crash_at_event=" << crash_at << ": "
                           << report.failure << "\n"
                           << report.reproduction;
  }
}

/// A larger single scenario exercising the parallel flush path with a
/// big backlog (evaluate_every toggles + batches build pending mass).
TEST(StressSmoke, BacklogScenario) {
  GeneratorOptions options;
  options.seed = 77;
  options.topology = GraphTopology::kErdosRenyi;
  options.num_queries = 80;
  options.batch_rate = 0.6;
  options.eval_every_rate = 0.3;
  options.cancel_rate = 0.2;
  options.sharing_density = 0.3;
  StressHarness harness;
  StressReport report = harness.RunScenario(options);
  EXPECT_TRUE(report.ok) << report.failure << "\n" << report.reproduction;
  EXPECT_GE(report.submitted, 80u);
}

}  // namespace
}  // namespace entangled
