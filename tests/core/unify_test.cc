#include "core/unify.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(UnifyTest, IdentitySubstitution) {
  Substitution subst(3);
  EXPECT_EQ(subst.Find(0), 0);
  EXPECT_EQ(subst.Find(2), 2);
  EXPECT_EQ(subst.ConstantOf(1), nullptr);
}

TEST(UnifyTest, UnifyVarsMergesClasses) {
  Substitution subst(3);
  EXPECT_TRUE(subst.UnifyVars(0, 1));
  EXPECT_EQ(subst.Find(0), subst.Find(1));
  EXPECT_NE(subst.Find(0), subst.Find(2));
}

TEST(UnifyTest, BindConstantPropagatesThroughClass) {
  Substitution subst(3);
  ASSERT_TRUE(subst.UnifyVars(0, 1));
  ASSERT_TRUE(subst.BindConstant(0, Value::Int(7)));
  ASSERT_NE(subst.ConstantOf(1), nullptr);
  EXPECT_EQ(*subst.ConstantOf(1), Value::Int(7));
}

TEST(UnifyTest, ConstantClashFails) {
  Substitution subst(2);
  ASSERT_TRUE(subst.BindConstant(0, Value::Int(1)));
  EXPECT_FALSE(subst.BindConstant(0, Value::Int(2)));
  EXPECT_TRUE(subst.BindConstant(0, Value::Int(1)));  // same value fine
}

TEST(UnifyTest, MergingBoundClassesChecksConstants) {
  Substitution subst(4);
  ASSERT_TRUE(subst.BindConstant(0, Value::Str("a")));
  ASSERT_TRUE(subst.BindConstant(1, Value::Str("a")));
  EXPECT_TRUE(subst.UnifyVars(0, 1));  // equal constants merge

  ASSERT_TRUE(subst.BindConstant(2, Value::Str("b")));
  ASSERT_TRUE(subst.BindConstant(3, Value::Str("c")));
  EXPECT_FALSE(subst.UnifyVars(2, 3));  // distinct constants clash
}

TEST(UnifyTest, MergePropagatesOneSidedConstant) {
  Substitution subst(2);
  ASSERT_TRUE(subst.BindConstant(1, Value::Int(5)));
  ASSERT_TRUE(subst.UnifyVars(0, 1));
  ASSERT_NE(subst.ConstantOf(0), nullptr);
  EXPECT_EQ(*subst.ConstantOf(0), Value::Int(5));
}

TEST(UnifyTest, UnifyTermsAllCases) {
  Substitution subst(4);
  EXPECT_TRUE(subst.UnifyTerms(Term::Int(3), Term::Int(3)));
  EXPECT_FALSE(subst.UnifyTerms(Term::Int(3), Term::Int(4)));
  EXPECT_TRUE(subst.UnifyTerms(Term::Var(0), Term::Var(1)));
  EXPECT_TRUE(subst.UnifyTerms(Term::Var(2), Term::Str("x")));
  EXPECT_TRUE(subst.UnifyTerms(Term::Str("x"), Term::Var(3)));
  EXPECT_FALSE(subst.UnifyTerms(Term::Var(2), Term::Str("y")));
}

TEST(UnifyTest, UnifyAtomsRelationMismatch) {
  Substitution subst(2);
  Atom a("R", {Term::Var(0)});
  Atom b("S", {Term::Var(1)});
  EXPECT_FALSE(subst.UnifyAtoms(a, b));
  Atom c("R", {Term::Var(0), Term::Var(1)});
  EXPECT_FALSE(subst.UnifyAtoms(a, c));  // arity mismatch
}

TEST(UnifyTest, UnifyAtomsBindsPairwise) {
  Substitution subst(3);
  Atom post("R", {Term::Str("C"), Term::Var(0)});
  Atom head("R", {Term::Var(1), Term::Var(2)});
  ASSERT_TRUE(subst.UnifyAtoms(post, head));
  EXPECT_EQ(*subst.ConstantOf(1), Value::Str("C"));
  EXPECT_EQ(subst.Find(0), subst.Find(2));
}

TEST(UnifyTest, RepeatedVariableMakesPositionwiseInsufficient) {
  // R(x, x) and R(1, 2) are positionwise unifiable (var positions) but
  // truly non-unifiable — exactly the gap between the coordination
  // graph's edge test and real unification.
  Atom a("R", {Term::Var(0), Term::Var(0)});
  Atom b("R", {Term::Int(1), Term::Int(2)});
  EXPECT_TRUE(PositionwiseUnifiable(a, b));
  Substitution subst(1);
  EXPECT_FALSE(subst.UnifyAtoms(a, b));
}

TEST(UnifyTest, ResolveRewritesToRepresentativeOrConstant) {
  Substitution subst(3);
  ASSERT_TRUE(subst.UnifyVars(0, 1));
  ASSERT_TRUE(subst.BindConstant(2, Value::Int(9)));
  Term r0 = subst.Resolve(Term::Var(0));
  Term r1 = subst.Resolve(Term::Var(1));
  EXPECT_TRUE(r0.is_variable());
  EXPECT_EQ(r0, r1);
  EXPECT_EQ(subst.Resolve(Term::Var(2)), Term::Int(9));
  EXPECT_EQ(subst.Resolve(Term::Str("k")), Term::Str("k"));
}

TEST(UnifyTest, ApplyRewritesAtom) {
  Substitution subst(2);
  ASSERT_TRUE(subst.BindConstant(0, Value::Str("Paris")));
  Atom atom("F", {Term::Var(1), Term::Var(0)});
  Atom applied = subst.Apply(atom);
  EXPECT_EQ(applied.relation, "F");
  EXPECT_TRUE(applied.terms[0].is_variable());
  EXPECT_EQ(applied.terms[1], Term::Str("Paris"));
}

TEST(UnifyTest, TransitiveChainBindsAll) {
  Substitution subst(5);
  for (VarId v = 0; v + 1 < 5; ++v) {
    ASSERT_TRUE(subst.UnifyVars(v, v + 1));
  }
  ASSERT_TRUE(subst.BindConstant(4, Value::Int(42)));
  for (VarId v = 0; v < 5; ++v) {
    ASSERT_NE(subst.ConstantOf(v), nullptr);
    EXPECT_EQ(*subst.ConstantOf(v), Value::Int(42));
  }
}

TEST(UnifyTest, MostGeneralUnifierFactory) {
  Atom a("R", {Term::Var(0), Term::Str("x")});
  Atom b("R", {Term::Int(1), Term::Var(1)});
  auto mgu = MostGeneralUnifier(a, b, 2);
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(*mgu->ConstantOf(0), Value::Int(1));
  EXPECT_EQ(*mgu->ConstantOf(1), Value::Str("x"));
  EXPECT_FALSE(
      MostGeneralUnifier(Atom("R", {Term::Int(1)}),
                         Atom("R", {Term::Int(2)}), 0)
          .has_value());
}

TEST(UnifyTest, UnifyAtomListsPairwise) {
  Substitution subst(2);
  std::vector<Atom> as = {Atom("R", {Term::Var(0)}),
                          Atom("S", {Term::Var(1)})};
  std::vector<Atom> bs = {Atom("R", {Term::Int(1)}),
                          Atom("S", {Term::Int(2)})};
  EXPECT_TRUE(subst.UnifyAtomLists(as, bs));
  EXPECT_EQ(*subst.ConstantOf(0), Value::Int(1));
  Substitution fresh(2);
  EXPECT_FALSE(fresh.UnifyAtomLists(as, {bs[0]}));  // length mismatch
}

}  // namespace
}  // namespace entangled
