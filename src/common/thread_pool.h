#ifndef ENTANGLED_COMMON_THREAD_POOL_H_
#define ENTANGLED_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace entangled {

/// \brief A fixed-size pool of worker threads draining a FIFO task
/// queue.
///
/// Deliberately minimal: the engine's parallel Flush() (and any future
/// fan-out work) needs "run these independent closures on N threads and
/// wait", nothing more.  Results travel through whatever the closures
/// capture; ordering guarantees are the caller's responsibility — the
/// engine keeps its outputs deterministic by *applying* results in a
/// fixed order regardless of completion order (see system/engine.cc).
///
/// Submit() is thread-safe.  Destruction drains the queue: queued tasks
/// still run before the workers exit.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    ENTANGLED_CHECK_GT(num_threads, 0u);
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_worker_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; it will run on some worker thread.
  void Submit(std::function<void()> task) {
    ENTANGLED_CHECK(task != nullptr);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
    }
    wake_worker_.notify_one();
  }

  /// Blocks until every submitted task has finished running (queue empty
  /// and no task in flight).  Tasks submitted concurrently with Wait()
  /// may or may not be covered; the intended pattern is
  /// submit-batch-then-wait from one coordinating thread.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_worker_.wait(lock,
                          [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mutex_);
        --in_flight_;
        if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_worker_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace entangled

#endif  // ENTANGLED_COMMON_THREAD_POOL_H_
